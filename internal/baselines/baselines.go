// Package baselines models the existing backscatter systems the paper
// compares mmTag against (§1, §3): RFID, Wi-Fi backscatter, HitchHike and
// BackFi. Each is represented by its spectrum allocation and the
// throughput/range operating point its paper reports, plus a coarse
// envelope model for how its rate degrades with range (backscatter links
// share the R⁻⁴ two-way decay).
package baselines

import (
	"fmt"
	"math"

	"github.com/mmtag/mmtag/internal/units"
)

// System is one reference backscatter system.
type System struct {
	// Name of the system.
	Name string
	// CarrierHz is the operating band.
	CarrierHz float64
	// ChannelHz is the RF channel bandwidth available to the link.
	ChannelHz float64
	// QuotedRateBps is the throughput its paper reports…
	QuotedRateBps float64
	// …at QuotedRangeM meters.
	QuotedRangeM float64
	// Citation is the source of the quoted numbers (the mmTag paper's
	// own characterization in §1/§3).
	Citation string
}

// Paper-quoted reference systems. Rates and ranges are the ones the mmTag
// paper itself uses for comparison.
func RFID() System {
	return System{
		Name:          "RFID (EPC Gen2)",
		CarrierHz:     915e6,
		ChannelHz:     500e3,
		QuotedRateBps: 640e3, // "less than a Mbps"; Gen2 FM0 peak
		QuotedRangeM:  units.FeetToMeters(10),
		Citation:      "mmTag §1/§3 [6,31]",
	}
}

// WiFiBackscatter is Kellogg et al.'s Wi-Fi Backscatter.
func WiFiBackscatter() System {
	return System{
		Name:          "Wi-Fi Backscatter",
		CarrierHz:     2.4e9,
		ChannelHz:     20e6,
		QuotedRateBps: 1e3,
		QuotedRangeM:  units.FeetToMeters(7),
		Citation:      "mmTag §3 [16]",
	}
}

// HitchHike reports 0.3 Mb/s "in the best scenario".
func HitchHike() System {
	return System{
		Name:          "HitchHike",
		CarrierHz:     2.4e9,
		ChannelHz:     20e6,
		QuotedRateBps: 0.3e6,
		QuotedRangeM:  units.FeetToMeters(10),
		Citation:      "mmTag §3 [35]",
	}
}

// BackFi reports 5 Mb/s at 3 ft using full-duplex readers.
func BackFi() System {
	return System{
		Name:          "BackFi",
		CarrierHz:     2.4e9,
		ChannelHz:     20e6,
		QuotedRateBps: 5e6,
		QuotedRangeM:  units.FeetToMeters(3),
		Citation:      "mmTag §3 [4]",
	}
}

// All returns the full comparison set, slowest first.
func All() []System {
	return []System{WiFiBackscatter(), RFID(), HitchHike(), BackFi()}
}

// RateAt returns the envelope throughput at the given range: the quoted
// rate inside the quoted range, then decaying with the two-way R⁻⁴ SNR
// (one octave of range costs 12 dB ⇒ ~16× in rate for a bandwidth-limited
// OOK-class link), floored at zero beyond 4× the quoted range.
func (s System) RateAt(rangeM float64) (float64, error) {
	if rangeM <= 0 {
		return 0, fmt.Errorf("baselines: range must be positive, got %g", rangeM)
	}
	if rangeM <= s.QuotedRangeM {
		return s.QuotedRateBps, nil
	}
	if rangeM > 4*s.QuotedRangeM {
		return 0, nil
	}
	ratio := rangeM / s.QuotedRangeM
	return s.QuotedRateBps * math.Pow(ratio, -4), nil
}

// SpectralAdvantage returns how much raw bandwidth mmTag's 24 GHz ISM
// allocation (bwHz) holds over this system's channel — the "200x more
// than the bandwidth allocated to today's WiFi and RFID" argument of §1.
func (s System) SpectralAdvantage(bwHz float64) float64 {
	if s.ChannelHz == 0 {
		return math.Inf(1)
	}
	return bwHz / s.ChannelHz
}

// Wavelength returns the system's carrier wavelength (meters).
func (s System) Wavelength() float64 { return units.Wavelength(s.CarrierHz) }
