package baselines

import (
	"math"
	"testing"

	"github.com/mmtag/mmtag/internal/units"
)

func TestQuotedNumbersMatchPaper(t *testing.T) {
	// The mmTag paper's own characterization of related systems.
	if r := RFID(); r.QuotedRateBps >= 1e6 {
		t.Error("RFID must be quoted below 1 Mb/s (\"at most one Mbps\")")
	}
	if h := HitchHike(); h.QuotedRateBps != 0.3e6 {
		t.Errorf("HitchHike quoted %g, want 0.3 Mb/s", h.QuotedRateBps)
	}
	b := BackFi()
	if b.QuotedRateBps != 5e6 {
		t.Errorf("BackFi quoted %g, want 5 Mb/s", b.QuotedRateBps)
	}
	if math.Abs(b.QuotedRangeM-units.FeetToMeters(3)) > 1e-12 {
		t.Errorf("BackFi range %g, want 3 ft", b.QuotedRangeM)
	}
	if len(All()) != 4 {
		t.Error("expect 4 baselines")
	}
}

func TestRateEnvelope(t *testing.T) {
	h := HitchHike()
	// Inside quoted range: quoted rate.
	r, err := h.RateAt(h.QuotedRangeM / 2)
	if err != nil || r != h.QuotedRateBps {
		t.Errorf("inside quoted range: %g %v", r, err)
	}
	// Beyond: R⁻⁴ decay.
	r2, _ := h.RateAt(2 * h.QuotedRangeM)
	if math.Abs(r2-h.QuotedRateBps/16) > 1e-9 {
		t.Errorf("double range rate %g, want 1/16 of quoted", r2)
	}
	// Far beyond: dead.
	r3, _ := h.RateAt(5 * h.QuotedRangeM)
	if r3 != 0 {
		t.Errorf("5x range should be dead, got %g", r3)
	}
	if _, err := h.RateAt(0); err == nil {
		t.Error("zero range should fail")
	}
}

func TestSpectralAdvantage(t *testing.T) {
	// Paper §1: mmWave offers ~200× the bandwidth of Wi-Fi/RFID channels.
	// Against RFID's 500 kHz, 2 GHz is 4000×; against Wi-Fi's 20 MHz it
	// is 100× — the "200x" is about total unlicensed allocation; verify
	// the order of magnitude.
	if adv := WiFiBackscatter().SpectralAdvantage(2e9); adv != 100 {
		t.Errorf("Wi-Fi advantage %g", adv)
	}
	if adv := RFID().SpectralAdvantage(2e9); adv != 4000 {
		t.Errorf("RFID advantage %g", adv)
	}
	z := System{}
	if !math.IsInf(z.SpectralAdvantage(1e9), 1) {
		t.Error("zero-channel system advantage should be +Inf")
	}
}

func TestWavelengths(t *testing.T) {
	if wl := RFID().Wavelength(); math.Abs(wl-0.3276) > 0.001 {
		t.Errorf("915 MHz wavelength %g", wl)
	}
	if wl := BackFi().Wavelength(); math.Abs(wl-0.1249) > 0.001 {
		t.Errorf("2.4 GHz wavelength %g", wl)
	}
}

func TestOrdersOfMagnitudeClaim(t *testing.T) {
	// The abstract's claim: mmTag's 1 Gb/s is orders of magnitude above
	// every baseline at comparable (≤ 4 ft) range.
	for _, s := range All() {
		r, err := s.RateAt(units.FeetToMeters(4))
		if err != nil {
			t.Fatal(err)
		}
		if r > 1e9/100 {
			t.Errorf("%s at 4 ft: %g b/s is within 100x of mmTag's 1 Gb/s", s.Name, r)
		}
	}
}
