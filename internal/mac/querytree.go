package mac

import (
	"fmt"

	"github.com/mmtag/mmtag/internal/rng"
)

// QueryTreeResult summarizes a binary query-tree singulation run — the
// deterministic alternative to Aloha used by memoryless RFID
// anti-collision: the reader queries ID prefixes; tags whose ID matches
// respond; collisions split the prefix into its two children.
type QueryTreeResult struct {
	// Tags is the population size.
	Tags int
	// Queries is the number of reader queries issued (the time cost; one
	// query ≈ one slot).
	Queries int
	// Collisions counts queries answered by ≥ 2 tags.
	Collisions int
	// Idle counts queries nobody answered.
	Idle int
	// Resolved is the number of singulated tags (always == Tags; the
	// protocol is deterministic and complete).
	Resolved int
	// MaxDepth is the deepest prefix visited.
	MaxDepth int
}

// Efficiency returns reads per query.
func (r QueryTreeResult) Efficiency() float64 {
	if r.Queries == 0 {
		return 0
	}
	return float64(r.Resolved) / float64(r.Queries)
}

// RunQueryTree singulates nTags tags carrying distinct random idBits-bit
// IDs (drawn from src). It returns an error if nTags exceeds the ID
// space.
func RunQueryTree(nTags, idBits int, src *rng.Source) (QueryTreeResult, error) {
	if nTags < 0 {
		return QueryTreeResult{}, fmt.Errorf("mac: negative tag count %d", nTags)
	}
	if idBits < 1 || idBits > 62 {
		return QueryTreeResult{}, fmt.Errorf("mac: idBits %d out of [1,62]", idBits)
	}
	if uint64(nTags) > uint64(1)<<uint(idBits) {
		return QueryTreeResult{}, fmt.Errorf("mac: %d tags exceed %d-bit ID space", nTags, idBits)
	}
	res := QueryTreeResult{Tags: nTags}
	if nTags == 0 {
		return res, nil
	}
	if src == nil {
		return res, fmt.Errorf("mac: nil randomness source")
	}
	// Draw distinct IDs.
	ids := make(map[uint64]struct{}, nTags)
	for len(ids) < nTags {
		ids[src.Uint64()&((uint64(1)<<uint(idBits))-1)] = struct{}{}
	}
	list := make([]uint64, 0, nTags)
	for id := range ids {
		list = append(list, id)
	}
	// Depth-first prefix search with an explicit stack. A prefix is
	// (value, length); tags match when their top `length` bits equal
	// value.
	type prefix struct {
		val uint64
		len int
	}
	stack := []prefix{{0, 0}}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.Queries++
		if p.len > res.MaxDepth {
			res.MaxDepth = p.len
		}
		matches := 0
		for _, id := range list {
			if id>>(uint(idBits-p.len)) == p.val || p.len == 0 {
				matches++
				if matches > 1 {
					// Early exit is an optimization only; keep counting
					// for exactness? Collision already known; stop.
					break
				}
			}
		}
		// Recount exactly (the loop above may early-exit at 2).
		if matches > 1 {
			matches = 0
			for _, id := range list {
				if p.len == 0 || id>>(uint(idBits-p.len)) == p.val {
					matches++
				}
			}
		}
		switch {
		case matches == 0:
			res.Idle++
		case matches == 1:
			res.Resolved++
		default:
			res.Collisions++
			if p.len < idBits {
				stack = append(stack,
					prefix{p.val<<1 | 1, p.len + 1},
					prefix{p.val << 1, p.len + 1})
			}
		}
	}
	return res, nil
}
