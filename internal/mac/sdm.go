package mac

import (
	"fmt"
	"sort"

	"github.com/mmtag/mmtag/internal/core"
	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/obs/event"
	"github.com/mmtag/mmtag/internal/rng"
)

func init() {
	// Scan-cycle durations: default dwell is 1 ms/tag, so cycles land
	// between 10 µs (switch-only) and seconds (large populations).
	obs.RegisterBuckets("mac_sdm_cycle_seconds",
		1e-5, 1e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 1)
}

// SDMConfig parameterizes the sector-scan schedule.
type SDMConfig struct {
	// DwellS is the air time granted per tag read (seconds).
	DwellS float64
	// BeamSwitchS is the cost of retargeting the beam.
	BeamSwitchS float64
	// Beams is the number of simultaneous beams the reader can form
	// (1 = the paper's single-beam scan; >1 = the MIMO extension of §9).
	Beams int
	// Aloha configures intra-beam collision resolution.
	Aloha AlohaConfig
}

// DefaultSDMConfig returns a 1 ms dwell, 10 µs switch, single-beam
// configuration.
func DefaultSDMConfig() SDMConfig {
	return SDMConfig{DwellS: 1e-3, BeamSwitchS: 10e-6, Beams: 1, Aloha: DefaultAlohaConfig()}
}

// TagShare is one tag's outcome over a scan cycle.
type TagShare struct {
	TagID uint16
	// LinkRateBps is the instantaneous PHY rate while being read.
	LinkRateBps float64
	// AirTimeS is the time the tag transmits per cycle.
	AirTimeS float64
	// GoodputBps is the cycle-averaged throughput including scan and
	// collision overheads.
	GoodputBps float64
}

// SDMResult is a full scan-cycle schedule.
type SDMResult struct {
	// CycleS is the total cycle duration.
	CycleS float64
	// Shares lists every served tag, sorted by descending goodput.
	Shares []TagShare
	// AggregateBps is the sum of goodputs.
	AggregateBps float64
	// OccupiedBeams is the number of beams that contained ≥ 1 tag.
	OccupiedBeams int
	// CollisionOverheadS is the extra air time spent on Aloha resolution
	// in beams holding multiple tags.
	CollisionOverheadS float64
}

// ScheduleSDM builds one scan cycle from the reader's beam readings: each
// occupied beam is visited once; a lone tag in a beam is read directly;
// multiple tags in one beam first run framed Aloha (each slot costing one
// dwell-length burst) and then each gets its dwell. With cfg.Beams > 1,
// occupied beams are striped across the simultaneous beams, dividing the
// cycle time.
func ScheduleSDM(readings []core.BeamReading, cfg SDMConfig, src *rng.Source) (SDMResult, error) {
	if cfg.DwellS <= 0 {
		return SDMResult{}, fmt.Errorf("mac: dwell must be positive")
	}
	if cfg.Beams < 1 {
		return SDMResult{}, fmt.Errorf("mac: need ≥ 1 beam, got %d", cfg.Beams)
	}
	var res SDMResult
	readings = AssignBest(readings)
	// Per-beam service time and shares.
	beamTime := make([]float64, 0)
	for _, br := range readings {
		if len(br.Tags) == 0 {
			continue
		}
		res.OccupiedBeams++
		t := cfg.BeamSwitchS
		if len(br.Tags) > 1 {
			// Intra-beam contention: Aloha slots cost one dwell each.
			ar, err := RunAloha(len(br.Tags), cfg.Aloha, src)
			if err != nil {
				return SDMResult{}, err
			}
			overhead := float64(ar.TotalSlots-ar.SingletonSlots) * cfg.DwellS
			t += overhead
			res.CollisionOverheadS += overhead
		}
		for _, tr := range br.Tags {
			t += cfg.DwellS
			res.Shares = append(res.Shares, TagShare{
				TagID:       tr.TagID,
				LinkRateBps: tr.RateBps,
				AirTimeS:    cfg.DwellS,
			})
		}
		beamTime = append(beamTime, t)
	}
	// Stripe beams across the simultaneous-beam budget: cycle time is the
	// maximum over stripes of the per-stripe sum (longest-processing-time
	// greedy assignment).
	sort.Sort(sort.Reverse(sort.Float64Slice(beamTime)))
	stripes := make([]float64, cfg.Beams)
	for _, bt := range beamTime {
		// Assign to the least-loaded stripe.
		minIdx := 0
		for i := 1; i < len(stripes); i++ {
			if stripes[i] < stripes[minIdx] {
				minIdx = i
			}
		}
		stripes[minIdx] += bt
	}
	for _, s := range stripes {
		if s > res.CycleS {
			res.CycleS = s
		}
	}
	if res.CycleS == 0 {
		return res, nil
	}
	for i := range res.Shares {
		sh := &res.Shares[i]
		sh.GoodputBps = sh.LinkRateBps * sh.AirTimeS / res.CycleS
		res.AggregateBps += sh.GoodputBps
	}
	sort.Slice(res.Shares, func(i, j int) bool {
		return res.Shares[i].GoodputBps > res.Shares[j].GoodputBps
	})
	obs.Inc("mac_sdm_cycles_total")
	obs.Observe("mac_sdm_cycle_seconds", res.CycleS)
	if event.Enabled() {
		event.Emit(0, event.LevelInfo, "mac.sdm", "cycle",
			event.D("tags", len(res.Shares)), event.D("beams", res.OccupiedBeams),
			event.F("cycle_s", res.CycleS), event.F("aggregate_bps", res.AggregateBps))
	}
	return res, nil
}

// AssignBest deduplicates scan readings: a tag visible in several
// adjacent beams (beam overlap) is kept only in the beam where it is
// strongest, so the scheduler serves each tag exactly once.
func AssignBest(readings []core.BeamReading) []core.BeamReading {
	type best struct {
		beam int
		pr   float64
	}
	strongest := map[uint16]best{}
	for bi, br := range readings {
		for _, tr := range br.Tags {
			if b, ok := strongest[tr.TagID]; !ok || tr.ReceivedDBm > b.pr {
				strongest[tr.TagID] = best{beam: bi, pr: tr.ReceivedDBm}
			}
		}
	}
	out := make([]core.BeamReading, len(readings))
	for bi, br := range readings {
		out[bi] = core.BeamReading{BeamRad: br.BeamRad}
		for _, tr := range br.Tags {
			if strongest[tr.TagID].beam == bi {
				out[bi].Tags = append(out[bi].Tags, tr)
			}
		}
	}
	return out
}

// JainFairness returns Jain's fairness index of the tag goodputs
// (1 = perfectly fair, 1/n = one tag hogs everything).
func JainFairness(shares []TagShare) float64 {
	if len(shares) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, s := range shares {
		sum += s.GoodputBps
		sumSq += s.GoodputBps * s.GoodputBps
	}
	if sumSq == 0 {
		return 0
	}
	n := float64(len(shares))
	return sum * sum / (n * sumSq)
}
