// Package mac implements the network layer sketched in paper §9: Spatial
// Division Multiplexing (the reader scans beams and reads tags sector by
// sector), framed slotted Aloha to resolve tags that share a beam ("a
// simple technique … is to use similar MAC protocol as RFIDs such as
// Aloha"), and a multi-beam MIMO extension that reads several sectors
// simultaneously.
package mac

import (
	"fmt"

	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/obs/event"
	"github.com/mmtag/mmtag/internal/rng"
)

// AlohaConfig parameterizes framed slotted Aloha (the RFID Gen2-style
// anti-collision the paper points to).
type AlohaConfig struct {
	// InitialFrame is the first frame's slot count (0 = use the tag
	// count, the optimum when the population is known).
	InitialFrame int
	// MaxRounds bounds the resolution process.
	MaxRounds int
}

// DefaultAlohaConfig returns a conventional configuration.
func DefaultAlohaConfig() AlohaConfig { return AlohaConfig{MaxRounds: 64} }

// AlohaResult summarizes one resolution run.
type AlohaResult struct {
	// Tags is the population size.
	Tags int
	// Rounds is the number of frames used.
	Rounds int
	// TotalSlots counts every slot spent (the time cost).
	TotalSlots int
	// SingletonSlots counts slots with exactly one responder (successful
	// reads).
	SingletonSlots int
	// CollisionSlots counts slots with ≥ 2 responders.
	CollisionSlots int
	// IdleSlots counts empty slots.
	IdleSlots int
	// Resolved is the number of tags read (== Tags unless MaxRounds hit).
	Resolved int
}

// Efficiency returns reads per slot (the classic framed-Aloha metric;
// ≈ 1/e ≈ 0.368 at the optimal frame size).
func (r AlohaResult) Efficiency() float64 {
	if r.TotalSlots == 0 {
		return 0
	}
	return float64(r.SingletonSlots) / float64(r.TotalSlots)
}

// RunAloha simulates framed slotted Aloha until every one of nTags is
// singulated (or MaxRounds elapses). Each round, every unresolved tag
// picks a uniform slot in the current frame; singleton slots resolve
// their tag; the next frame size is the number of still-unresolved tags
// (the standard population estimate).
func RunAloha(nTags int, cfg AlohaConfig, src *rng.Source) (AlohaResult, error) {
	if nTags < 0 {
		return AlohaResult{}, fmt.Errorf("mac: negative tag count %d", nTags)
	}
	res := AlohaResult{Tags: nTags}
	if nTags == 0 {
		return res, nil
	}
	if src == nil {
		return res, fmt.Errorf("mac: nil randomness source")
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 64
	}
	remaining := nTags
	frame := cfg.InitialFrame
	if frame <= 0 {
		frame = nTags
	}
	for round := 0; round < maxRounds && remaining > 0; round++ {
		res.Rounds++
		counts := make([]int, frame)
		for i := 0; i < remaining; i++ {
			counts[src.Intn(frame)]++
		}
		for _, c := range counts {
			switch {
			case c == 0:
				res.IdleSlots++
			case c == 1:
				res.SingletonSlots++
				remaining--
			default:
				res.CollisionSlots++
			}
		}
		res.TotalSlots += frame
		if event.Enabled() {
			event.Emit(0, event.LevelDebug, "mac.aloha", "round",
				event.D("round", res.Rounds), event.D("frame", frame),
				event.D("remaining", remaining))
		}
		if remaining > 0 {
			frame = remaining
			if frame < 1 {
				frame = 1
			}
		}
	}
	res.Resolved = nTags - remaining
	obs.Inc("mac_aloha_runs_total")
	obs.Add("mac_aloha_rounds_total", float64(res.Rounds))
	obs.Add("mac_aloha_slots_total", float64(res.SingletonSlots), obs.L("kind", "singleton"))
	obs.Add("mac_aloha_slots_total", float64(res.CollisionSlots), obs.L("kind", "collision"))
	obs.Add("mac_aloha_slots_total", float64(res.IdleSlots), obs.L("kind", "idle"))
	obs.Add("mac_aloha_unresolved_total", float64(remaining))
	return res, nil
}

// ExpectedSingulationSlots returns the analytic expectation of total
// slots to read n tags with per-round frame size equal to the remaining
// population: n/e tags resolve per n-slot round, so the total is ≈ e·n
// slots. Exposed so experiments can sanity-check the simulation.
func ExpectedSingulationSlots(n int) float64 {
	// Per-round: with frame L = k tags, P(singleton) per slot =
	// (k/L)·(1−1/L)^{k−1} → e⁻¹; expected resolution per round k/e.
	// Summing the geometric-ish recursion numerically:
	total := 0.0
	k := float64(n)
	for k >= 0.5 {
		total += k // frame of size ≈ k slots
		resolved := k * pow1e(k)
		if resolved < 0.1 {
			resolved = 0.1
		}
		k -= resolved
	}
	return total
}

// pow1e returns (1−1/k)^{k−1}, the singleton probability factor, ≈ 1/e
// for large k.
func pow1e(k float64) float64 {
	if k <= 1 {
		return 1
	}
	base := 1 - 1/k
	out := 1.0
	// Integer-ish power is fine for an estimate.
	for i := 0; i < int(k)-1; i++ {
		out *= base
	}
	return out
}
