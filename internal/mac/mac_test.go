package mac

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/mmtag/mmtag/internal/core"
	"github.com/mmtag/mmtag/internal/rng"
)

func TestAlohaResolvesEveryone(t *testing.T) {
	src := rng.New(1)
	for _, n := range []int{1, 2, 5, 20, 100} {
		res, err := RunAloha(n, DefaultAlohaConfig(), src)
		if err != nil {
			t.Fatal(err)
		}
		if res.Resolved != n {
			t.Errorf("n=%d: resolved %d", n, res.Resolved)
		}
		if res.SingletonSlots != n {
			t.Errorf("n=%d: singleton slots %d, want %d", n, res.SingletonSlots, n)
		}
		if res.TotalSlots != res.SingletonSlots+res.CollisionSlots+res.IdleSlots {
			t.Errorf("n=%d: slot accounting inconsistent", n)
		}
	}
}

func TestAlohaEdgeCases(t *testing.T) {
	src := rng.New(2)
	res, err := RunAloha(0, DefaultAlohaConfig(), src)
	if err != nil || res.TotalSlots != 0 || res.Efficiency() != 0 {
		t.Errorf("zero tags: %+v, %v", res, err)
	}
	if _, err := RunAloha(-1, DefaultAlohaConfig(), src); err == nil {
		t.Error("negative tags should fail")
	}
	if _, err := RunAloha(5, DefaultAlohaConfig(), nil); err == nil {
		t.Error("nil source should fail")
	}
	// One tag: exactly one slot.
	res, _ = RunAloha(1, DefaultAlohaConfig(), src)
	if res.TotalSlots != 1 || res.Rounds != 1 {
		t.Errorf("single tag: %+v", res)
	}
}

func TestAlohaEfficiencyNearInverseE(t *testing.T) {
	// With frame = population, framed Aloha reads ≈ 1/e of slots as
	// singletons. Average over many runs.
	src := rng.New(3)
	var eff float64
	const runs = 200
	for i := 0; i < runs; i++ {
		res, _ := RunAloha(50, DefaultAlohaConfig(), src)
		eff += res.Efficiency()
	}
	eff /= runs
	if math.Abs(eff-1/math.E) > 0.05 {
		t.Errorf("mean efficiency %g, want ≈ %g", eff, 1/math.E)
	}
}

func TestAlohaSlotsScaleLinearly(t *testing.T) {
	// E[total slots] ≈ e·n: doubling the population doubles the cost.
	src := rng.New(4)
	mean := func(n int) float64 {
		var s float64
		for i := 0; i < 100; i++ {
			res, _ := RunAloha(n, DefaultAlohaConfig(), src)
			s += float64(res.TotalSlots)
		}
		return s / 100
	}
	m40, m80 := mean(40), mean(80)
	if ratio := m80 / m40; ratio < 1.7 || ratio > 2.3 {
		t.Errorf("slot scaling ratio %g, want ≈2", ratio)
	}
	// And both near e·n.
	if math.Abs(m40-math.E*40) > 0.25*math.E*40 {
		t.Errorf("mean slots %g for 40 tags, want ≈ %g", m40, math.E*40)
	}
	// The analytic helper agrees to within 15%.
	if est := ExpectedSingulationSlots(40); math.Abs(est-m40) > 0.15*m40 {
		t.Errorf("analytic estimate %g vs simulated %g", est, m40)
	}
}

func TestAlohaDeterministicPerSeed(t *testing.T) {
	f := func(seed uint64) bool {
		a, _ := RunAloha(20, DefaultAlohaConfig(), rng.New(seed))
		b, _ := RunAloha(20, DefaultAlohaConfig(), rng.New(seed))
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func mkReadings(beams ...[]core.TagReading) []core.BeamReading {
	out := make([]core.BeamReading, len(beams))
	for i, tags := range beams {
		out[i] = core.BeamReading{BeamRad: float64(i), Tags: tags}
	}
	return out
}

func TestSDMSingleTagPerBeam(t *testing.T) {
	src := rng.New(5)
	readings := mkReadings(
		[]core.TagReading{{TagID: 1, RateBps: 1e9}},
		nil,
		[]core.TagReading{{TagID: 2, RateBps: 1e7}},
	)
	cfg := DefaultSDMConfig()
	res, err := ScheduleSDM(readings, cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.OccupiedBeams != 2 {
		t.Errorf("occupied beams %d", res.OccupiedBeams)
	}
	if len(res.Shares) != 2 {
		t.Fatalf("shares %d", len(res.Shares))
	}
	// Cycle = 2 × (switch + dwell).
	want := 2 * (cfg.BeamSwitchS + cfg.DwellS)
	if math.Abs(res.CycleS-want) > 1e-12 {
		t.Errorf("cycle %g, want %g", res.CycleS, want)
	}
	// The Gb/s tag gets ~half its link rate (two-beam cycle), the slow
	// tag proportionally less.
	if res.Shares[0].TagID != 1 || res.Shares[0].GoodputBps < 4e8 {
		t.Errorf("fast tag goodput %g", res.Shares[0].GoodputBps)
	}
	if res.CollisionOverheadS != 0 {
		t.Error("no collisions expected")
	}
}

func TestSDMContendedBeamPaysOverhead(t *testing.T) {
	src := rng.New(6)
	solo := mkReadings([]core.TagReading{{TagID: 1, RateBps: 1e8}, {TagID: 2, RateBps: 1e8}})
	res, err := ScheduleSDM(solo, DefaultSDMConfig(), src)
	if err != nil {
		t.Fatal(err)
	}
	if res.CollisionOverheadS <= 0 {
		t.Error("two tags in one beam must pay Aloha overhead")
	}
	// Still, both get served.
	if len(res.Shares) != 2 {
		t.Errorf("shares %d", len(res.Shares))
	}
	// Versus the same two tags in separate beams: separated wins.
	sep := mkReadings(
		[]core.TagReading{{TagID: 1, RateBps: 1e8}},
		[]core.TagReading{{TagID: 2, RateBps: 1e8}},
	)
	res2, _ := ScheduleSDM(sep, DefaultSDMConfig(), src)
	if res2.AggregateBps <= res.AggregateBps {
		t.Errorf("SDM separation should beat contention: %g vs %g", res2.AggregateBps, res.AggregateBps)
	}
}

func TestSDMMultiBeamSpeedup(t *testing.T) {
	src := rng.New(7)
	readings := mkReadings(
		[]core.TagReading{{TagID: 1, RateBps: 1e8}},
		[]core.TagReading{{TagID: 2, RateBps: 1e8}},
		[]core.TagReading{{TagID: 3, RateBps: 1e8}},
		[]core.TagReading{{TagID: 4, RateBps: 1e8}},
	)
	cfg := DefaultSDMConfig()
	one, _ := ScheduleSDM(readings, cfg, src)
	cfg.Beams = 4
	four, _ := ScheduleSDM(readings, cfg, src)
	if ratio := one.CycleS / four.CycleS; math.Abs(ratio-4) > 0.01 {
		t.Errorf("4-beam MIMO speedup %g, want 4", ratio)
	}
	if ratio := four.AggregateBps / one.AggregateBps; math.Abs(ratio-4) > 0.01 {
		t.Errorf("aggregate speedup %g, want 4", ratio)
	}
}

func TestSDMValidation(t *testing.T) {
	src := rng.New(8)
	if _, err := ScheduleSDM(nil, SDMConfig{DwellS: 0, Beams: 1}, src); err == nil {
		t.Error("zero dwell should fail")
	}
	if _, err := ScheduleSDM(nil, SDMConfig{DwellS: 1, Beams: 0}, src); err == nil {
		t.Error("zero beams should fail")
	}
	// Empty scene: empty result.
	res, err := ScheduleSDM(nil, DefaultSDMConfig(), src)
	if err != nil || res.CycleS != 0 || len(res.Shares) != 0 {
		t.Errorf("empty scene: %+v %v", res, err)
	}
}

func TestJainFairness(t *testing.T) {
	if JainFairness(nil) != 0 {
		t.Error("empty fairness")
	}
	eq := []TagShare{{GoodputBps: 5}, {GoodputBps: 5}, {GoodputBps: 5}}
	if f := JainFairness(eq); math.Abs(f-1) > 1e-12 {
		t.Errorf("equal shares fairness %g", f)
	}
	hog := []TagShare{{GoodputBps: 10}, {GoodputBps: 0}, {GoodputBps: 0}}
	if f := JainFairness(hog); math.Abs(f-1.0/3) > 1e-12 {
		t.Errorf("hog fairness %g", f)
	}
	if JainFairness([]TagShare{{GoodputBps: 0}}) != 0 {
		t.Error("all-zero shares")
	}
}
