package mac

import (
	"testing"

	"github.com/mmtag/mmtag/internal/core"
	"github.com/mmtag/mmtag/internal/rng"
	"github.com/mmtag/mmtag/internal/units"
)

func arqLink(t *testing.T, ft float64) *core.Link {
	t.Helper()
	l, err := core.NewDefaultLink(units.FeetToMeters(ft))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestARQCleanLink(t *testing.T) {
	l := arqLink(t, 3)
	bw := l.Reader.Bandwidths[2] // 20 MHz: enormous margin
	res, err := RunARQ(l, bw, 10, DefaultARQConfig(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesDelivered != 10 || res.Retransmissions != 0 || res.ResidualErrors != 0 {
		t.Errorf("clean link: %+v", res)
	}
	if res.FirstTryFER != 0 {
		t.Errorf("FER %g", res.FirstTryFER)
	}
	// Goodput fraction = payload bits / burst bits (preamble+header+CRC
	// overhead only): 512/(13+8·72) ≈ 0.87.
	if res.GoodputFraction < 0.8 || res.GoodputFraction > 0.95 {
		t.Errorf("goodput fraction %g", res.GoodputFraction)
	}
	if res.GoodputBps <= 0 || res.GoodputBps > bw.BitRate() {
		t.Errorf("goodput %g", res.GoodputBps)
	}
}

func TestARQMarginalLinkRetransmits(t *testing.T) {
	// 9 ft in the 2 GHz band: budget SNR ≈ 3.5 dB — heavy bit errors, so
	// frames fail and ARQ earns its keep (or exhausts retries).
	l := arqLink(t, 9)
	bw := l.Reader.Bandwidths[0]
	res, err := RunARQ(l, bw, 8, DefaultARQConfig(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstTryFER == 0 {
		t.Error("marginal link should drop frames on first try")
	}
	if res.Retransmissions == 0 && res.ResidualErrors == 0 {
		t.Error("expected retransmissions or residual errors")
	}
	if res.FramesDelivered+res.ResidualErrors != res.FramesOffered {
		t.Error("frame accounting broken")
	}
	// Goodput strictly below the clean-link overhead bound.
	if res.GoodputFraction >= 0.87 {
		t.Errorf("goodput fraction %g did not pay for retransmissions", res.GoodputFraction)
	}
}

func TestARQValidation(t *testing.T) {
	l := arqLink(t, 3)
	bw := l.Reader.Bandwidths[2]
	if _, err := RunARQ(l, bw, 0, DefaultARQConfig(), rng.New(1)); err == nil {
		t.Error("zero frames should fail")
	}
	if _, err := RunARQ(l, bw, 1, ARQConfig{FrameBytes: 0}, rng.New(1)); err == nil {
		t.Error("zero frame bytes should fail")
	}
	if _, err := RunARQ(l, bw, 1, ARQConfig{FrameBytes: 8, MaxRetries: -1}, rng.New(1)); err == nil {
		t.Error("negative retries should fail")
	}
}

func TestARQDeterministic(t *testing.T) {
	l1, l2 := arqLink(t, 7), arqLink(t, 7)
	bw := l1.Reader.Bandwidths[0]
	a, err := RunARQ(l1, bw, 6, DefaultARQConfig(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunARQ(l2, bw, 6, DefaultARQConfig(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("ARQ not deterministic: %+v vs %+v", a, b)
	}
}
