package mac

import (
	"testing"
	"testing/quick"

	"github.com/mmtag/mmtag/internal/rng"
)

func TestQueryTreeResolvesAll(t *testing.T) {
	src := rng.New(1)
	for _, n := range []int{1, 2, 3, 10, 50, 200} {
		r, err := RunQueryTree(n, 32, src)
		if err != nil {
			t.Fatal(err)
		}
		if r.Resolved != n {
			t.Errorf("n=%d: resolved %d", n, r.Resolved)
		}
		if r.Queries < n {
			t.Errorf("n=%d: %d queries cannot resolve %d tags", n, r.Queries, n)
		}
		// Query-tree accounting: every query is idle, singleton or
		// collision.
		if r.Queries != r.Idle+r.Resolved+r.Collisions {
			t.Errorf("n=%d: accounting broken", n)
		}
	}
}

func TestQueryTreeDeterministicCost(t *testing.T) {
	// Classic result: the binary query tree needs ≈ 2.89·n queries for
	// large n (between 2.4n and 3.2n in practice). Average over seeds.
	var total float64
	const runs = 50
	const n = 100
	for seed := uint64(0); seed < runs; seed++ {
		r, err := RunQueryTree(n, 32, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		total += float64(r.Queries)
	}
	mean := total / runs
	if mean < 2.4*n || mean > 3.3*n {
		t.Errorf("query-tree mean cost %.1f for %d tags, want ≈2.9n", mean, n)
	}
}

func TestQueryTreeEdgeCases(t *testing.T) {
	src := rng.New(2)
	r, err := RunQueryTree(0, 16, src)
	if err != nil || r.Queries != 0 {
		t.Errorf("zero tags: %+v %v", r, err)
	}
	if _, err := RunQueryTree(-1, 16, src); err == nil {
		t.Error("negative tags")
	}
	if _, err := RunQueryTree(5, 0, src); err == nil {
		t.Error("zero idBits")
	}
	if _, err := RunQueryTree(5, 63, src); err == nil {
		t.Error("oversized idBits")
	}
	if _, err := RunQueryTree(5, 2, src); err == nil {
		t.Error("population exceeding ID space")
	}
	if _, err := RunQueryTree(5, 16, nil); err == nil {
		t.Error("nil source")
	}
	// Single tag: root query resolves immediately.
	r, _ = RunQueryTree(1, 16, src)
	if r.Queries != 1 || r.Collisions != 0 {
		t.Errorf("single tag: %+v", r)
	}
}

func TestQueryTreeVsAloha(t *testing.T) {
	// Both must resolve everyone; the query tree is deterministic and
	// complete, Aloha is probabilistic. Their costs are the classic
	// ≈2.9n vs ≈e·n — the tree pays ~6% more but never loses a tag to
	// MaxRounds.
	src := rng.New(3)
	const n = 64
	qt, err := RunQueryTree(n, 32, src)
	if err != nil {
		t.Fatal(err)
	}
	al, err := RunAloha(n, DefaultAlohaConfig(), src)
	if err != nil {
		t.Fatal(err)
	}
	if qt.Resolved != n || al.Resolved != n {
		t.Fatal("both protocols must resolve all tags")
	}
	// Sanity: both in the same cost ballpark (2–4 slots/queries per tag).
	for name, cost := range map[string]int{"querytree": qt.Queries, "aloha": al.TotalSlots} {
		per := float64(cost) / n
		if per < 1.5 || per > 4.5 {
			t.Errorf("%s cost %.2f per tag out of ballpark", name, per)
		}
	}
}

func TestQueryTreeEfficiencyProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 1 + int(nRaw)%100
		r, err := RunQueryTree(n, 32, rng.New(seed))
		if err != nil {
			return false
		}
		eff := r.Efficiency()
		return r.Resolved == n && eff > 0 && eff <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
	if (QueryTreeResult{}).Efficiency() != 0 {
		t.Error("zero-query efficiency")
	}
}
