package mac

import (
	"fmt"

	"github.com/mmtag/mmtag/internal/core"
	"github.com/mmtag/mmtag/internal/rng"
	"github.com/mmtag/mmtag/internal/tag"
	"github.com/mmtag/mmtag/internal/units"
)

// ARQConfig parameterizes stop-and-wait ARQ over the backscatter link:
// the reader polls, the tag bursts, a CRC failure triggers a
// retransmission (the reader's poll doubles as the ACK/NAK — downlink
// budget is not the bottleneck in backscatter).
type ARQConfig struct {
	// FrameBytes is the payload per burst.
	FrameBytes int
	// MaxRetries bounds retransmissions per frame (0 = no retries).
	MaxRetries int
}

// DefaultARQConfig returns 64-byte frames with up to 3 retries.
func DefaultARQConfig() ARQConfig { return ARQConfig{FrameBytes: 64, MaxRetries: 3} }

// ARQResult accounts one ARQ run.
type ARQResult struct {
	// FramesOffered / FramesDelivered count attempts at the service
	// level.
	FramesOffered, FramesDelivered int
	// Transmissions counts every burst including retransmissions.
	Transmissions int
	// Retransmissions = Transmissions − FramesOffered (capped by
	// delivery).
	Retransmissions int
	// ResidualErrors counts frames still corrupt after MaxRetries.
	ResidualErrors int
	// FirstTryFER is the per-burst frame error rate.
	FirstTryFER float64
	// GoodputFraction is delivered payload bits over total transmitted
	// burst bits (preamble + header + payload + CRC, all transmissions).
	GoodputFraction float64
	// GoodputBps scales the link's symbol rate by GoodputFraction and
	// the OOK bit/symbol.
	GoodputBps float64
}

// RunARQ delivers nFrames over the waveform-level link at the given
// receiver bandwidth. Every burst is a full synthesis + decode; the
// result is deterministic for a fixed source.
func RunARQ(l *core.Link, bw units.ReaderBandwidth, nFrames int, cfg ARQConfig, src *rng.Source) (ARQResult, error) {
	var res ARQResult
	if nFrames <= 0 {
		return res, fmt.Errorf("mac: need ≥ 1 frame")
	}
	if cfg.FrameBytes <= 0 {
		return res, fmt.Errorf("mac: frame bytes must be positive")
	}
	if cfg.MaxRetries < 0 {
		return res, fmt.Errorf("mac: negative retries")
	}
	burstSymbols := tag.BurstSymbolCount(cfg.FrameBytes)
	payloadBits := 8 * cfg.FrameBytes
	failures := 0
	for f := 0; f < nFrames; f++ {
		res.FramesOffered++
		payload := src.Bytes(make([]byte, cfg.FrameBytes))
		delivered := false
		for attempt := 0; attempt <= cfg.MaxRetries; attempt++ {
			res.Transmissions++
			r, err := l.RunWaveform(payload, bw, src)
			if err != nil {
				return res, err
			}
			ok := r.Decoded && r.BitErrors == 0
			if attempt == 0 && !ok {
				failures++
			}
			if ok {
				delivered = true
				break
			}
		}
		if delivered {
			res.FramesDelivered++
		} else {
			res.ResidualErrors++
		}
	}
	res.Retransmissions = res.Transmissions - res.FramesOffered
	res.FirstTryFER = float64(failures) / float64(res.FramesOffered)
	totalBits := res.Transmissions * burstSymbols // OOK: 1 bit/symbol airtime
	if totalBits > 0 {
		res.GoodputFraction = float64(res.FramesDelivered*payloadBits) / float64(totalBits)
	}
	res.GoodputBps = res.GoodputFraction * bw.BitRate()
	return res, nil
}
