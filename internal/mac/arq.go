package mac

import (
	"fmt"
	"math"

	"github.com/mmtag/mmtag/internal/core"
	"github.com/mmtag/mmtag/internal/dsp"
	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/obs/event"
	"github.com/mmtag/mmtag/internal/obs/signal"
	"github.com/mmtag/mmtag/internal/rng"
	"github.com/mmtag/mmtag/internal/sim"
	"github.com/mmtag/mmtag/internal/tag"
	"github.com/mmtag/mmtag/internal/units"
)

// ARQConfig parameterizes stop-and-wait ARQ over the backscatter link:
// the reader polls, the tag bursts, a CRC failure triggers a
// retransmission (the reader's poll doubles as the ACK/NAK — downlink
// budget is not the bottleneck in backscatter).
type ARQConfig struct {
	// FrameBytes is the payload per burst.
	FrameBytes int
	// MaxRetries bounds retransmissions per frame (0 = no retries).
	MaxRetries int
}

// DefaultARQConfig returns 64-byte frames with up to 3 retries.
func DefaultARQConfig() ARQConfig { return ARQConfig{FrameBytes: 64, MaxRetries: 3} }

func init() {
	// Per-frame delivery latency on the virtual clock: one burst at the
	// 2 GHz bandwidth is ≈ 0.6 µs, and a frame takes 1–4 bursts, so
	// decades from 0.1 µs to 1 ms cover every bandwidth in the paper.
	obs.RegisterBuckets("mac_arq_frame_latency_seconds",
		1e-7, 3e-7, 1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3)
}

// ARQResult accounts one ARQ run.
type ARQResult struct {
	// FramesOffered / FramesDelivered count attempts at the service
	// level.
	FramesOffered, FramesDelivered int
	// Transmissions counts every burst including retransmissions.
	Transmissions int
	// Retransmissions = Transmissions − FramesOffered (capped by
	// delivery).
	Retransmissions int
	// ResidualErrors counts frames still corrupt after MaxRetries.
	ResidualErrors int
	// FirstTryFER is the per-burst frame error rate.
	FirstTryFER float64
	// GoodputFraction is delivered payload bits over total transmitted
	// burst bits (preamble + header + payload + CRC, all transmissions).
	GoodputFraction float64
	// GoodputBps scales the link's symbol rate by GoodputFraction and
	// the OOK bit/symbol.
	GoodputBps float64
	// AirTimeS is the virtual air time of every transmitted burst, as
	// accounted by the discrete-event engine that paces the run.
	AirTimeS float64
}

// RunARQ delivers nFrames over the waveform-level link at the given
// receiver bandwidth. The exchange is paced by a discrete-event engine:
// every burst occupies its real air time (burst symbols / symbol rate)
// on the virtual clock, each decode outcome schedules either the
// retransmission or the next frame, and AirTimeS reports where the time
// went. Every burst is a full synthesis + decode; the result is
// deterministic for a fixed source.
func RunARQ(l *core.Link, bw units.ReaderBandwidth, nFrames int, cfg ARQConfig, src *rng.Source) (ARQResult, error) {
	return RunARQWS(dsp.NewWorkspace(), l, bw, nFrames, cfg, src)
}

// RunARQWS is RunARQ with a caller-owned workspace: every burst in the
// run draws its sample buffers from ws, so the per-burst allocations are
// amortized across the whole exchange. Parallel sweeps pass their
// worker's workspace; results are identical for any ws (including nil,
// which allocates per burst).
func RunARQWS(ws *dsp.Workspace, l *core.Link, bw units.ReaderBandwidth, nFrames int, cfg ARQConfig, src *rng.Source) (ARQResult, error) {
	var res ARQResult
	if nFrames <= 0 {
		return res, fmt.Errorf("mac: need ≥ 1 frame")
	}
	if cfg.FrameBytes <= 0 {
		return res, fmt.Errorf("mac: frame bytes must be positive")
	}
	if cfg.MaxRetries < 0 {
		return res, fmt.Errorf("mac: negative retries")
	}
	symbolRate := bw.BandwidthHz * units.OOKSpectralEfficiency
	if symbolRate <= 0 {
		return res, fmt.Errorf("mac: bandwidth %q has no symbol rate", bw.Label)
	}
	burstSymbols := tag.BurstSymbolCount(cfg.FrameBytes)
	payloadBits := 8 * cfg.FrameBytes
	burstS := float64(burstSymbols) / symbolRate

	eng := sim.NewEngine()
	failures := 0
	var runErr error
	frameIdx, attempt := 0, 0
	// One payload buffer for the whole run: RunWaveform does not retain
	// it, and retransmissions reuse the frame's bytes unchanged.
	payloadBuf := make([]byte, cfg.FrameBytes)
	var payload []byte
	var burst func(now float64)
	burst = func(now float64) {
		if runErr != nil {
			return
		}
		if attempt == 0 {
			payload = src.Bytes(payloadBuf)
			res.FramesOffered++
			obs.IncAt(now, "mac_arq_frames_offered_total")
		}
		res.Transmissions++
		obs.IncAt(now, "mac_arq_transmissions_total")
		r, err := l.RunWaveformWS(ws, payload, bw, src)
		if err != nil {
			runErr = err
			return
		}
		ok := r.Decoded && r.BitErrors == 0
		if attempt == 0 && !ok {
			failures++
		}
		switch {
		case ok:
			res.FramesDelivered++
			obs.IncAt(now, "mac_arq_frames_delivered_total")
			// Frame latency on the virtual clock: the air time of every
			// transmission this frame needed (the poll/ACK turnaround is
			// modeled as free — downlink is not the bottleneck).
			obs.ObserveAt(now, "mac_arq_frame_latency_seconds", float64(attempt+1)*burstS)
			if event.Enabled() {
				event.Emit(now, event.LevelInfo, "mac.arq", "deliver",
					event.D("frame", frameIdx), event.D("attempts", attempt+1),
					event.S("bw", bw.Label))
			}
		case attempt < cfg.MaxRetries:
			attempt++
			obs.IncAt(now, "mac_arq_retries_total")
			if event.Enabled() {
				event.Emit(now, event.LevelInfo, "mac.arq", "retry",
					event.D("frame", frameIdx), event.D("attempt", attempt),
					event.S("bw", bw.Label))
			}
			runErr = eng.After(burstS, 0, burst)
			return
		default:
			res.ResidualErrors++
			obs.IncAt(now, "mac_arq_residual_errors_total")
			if t := signal.Active(); t != nil {
				// The frame is lost for good: preserve its last burst in
				// the flight recorder for post-mortem demodulation.
				t.RecordLastBurst(signal.TriggerARQResidual)
			}
			obs.ObserveAt(now, "mac_arq_frame_latency_seconds", float64(attempt+1)*burstS)
			if event.Enabled() {
				event.Emit(now, event.LevelWarn, "mac.arq", "residual",
					event.D("frame", frameIdx), event.D("attempts", attempt+1),
					event.S("bw", bw.Label))
			}
		}
		frameIdx++
		attempt = 0
		if frameIdx < nFrames {
			runErr = eng.After(burstS, 0, burst)
		}
	}
	if err := eng.After(0, 0, burst); err != nil {
		return res, err
	}
	if _, err := eng.Run(math.Inf(1)); err != nil {
		return res, err
	}
	if runErr != nil {
		return res, runErr
	}
	res.Retransmissions = res.Transmissions - res.FramesOffered
	res.FirstTryFER = float64(failures) / float64(res.FramesOffered)
	res.AirTimeS = float64(res.Transmissions) * burstS
	totalBits := res.Transmissions * burstSymbols // OOK: 1 bit/symbol airtime
	if totalBits > 0 {
		res.GoodputFraction = float64(res.FramesDelivered*payloadBits) / float64(totalBits)
	}
	res.GoodputBps = res.GoodputFraction * bw.BitRate()
	// Frame/transmission counters are folded per burst at virtual time
	// (see the burst closure), so the sampled time series carries the
	// run's shape instead of one end-of-run step.
	return res, nil
}
