package circuit

import (
	"fmt"
	"math"
	"math/cmplx"
)

// PatchElement models one mmTag antenna element near resonance as a
// parallel RLC resonator fed from a Z0 line, with an optional FET switch
// shunting the feed to ground (paper Fig. 4: "simple RF switches to turn
// on and off each antenna by connecting it to its ground").
//
// Near its fundamental resonance a microstrip patch is accurately
// described by a parallel RLC: the resistance is the radiation resistance
// seen at the feed, and Q sets the impedance bandwidth. This is the
// lumped-circuit stand-in for the paper's HFSS model; the default
// constants are calibrated so the S11 curves reproduce paper Fig. 6
// (−15 dB at 24 GHz with the switch off, ≈ −5 dB with it on).
type PatchElement struct {
	// ResonantHz is the patch's resonant frequency (default 24 GHz).
	ResonantHz float64
	// ResistanceOhm is the parallel radiation resistance at resonance.
	ResistanceOhm float64
	// Q is the loaded quality factor of the resonator.
	Q float64
	// Z0 is the feed-line reference impedance.
	Z0 float64
	// Switch models the shunt FET (CEL CE3520K3 in the paper).
	Switch FETSwitch
}

// FETSwitch is the shunt FET modulator: when On, it presents OnResistance
// (plus a small parasitic inductance) from the feed node to ground,
// detuning the element; when off it presents OffCapacitance, a tiny
// perturbation.
type FETSwitch struct {
	// OnResistanceOhm is the effective on-state shunt resistance seen at
	// the feed (channel Ron plus via/line losses).
	OnResistanceOhm float64
	// OnInductanceH is the parasitic series inductance in the on path.
	OnInductanceH float64
	// OffCapacitanceF is the off-state drain-source capacitance.
	OffCapacitanceF float64
}

// DefaultPatchElement returns the element model calibrated to paper
// Fig. 6: switch-off S11 = −15 dB at 24 GHz with a resonance dip matching
// the figure's curvature, switch-on S11 ≈ −5 dB, nearly flat across the
// band.
func DefaultPatchElement() PatchElement {
	return PatchElement{
		ResonantHz:    24e9,
		ResistanceOhm: 71.6, // gives |Γ| = 0.178 ⇒ −15 dB at resonance
		Q:             40,
		Z0:            Z0Default,
		Switch: FETSwitch{
			OnResistanceOhm: 17.4, // parallel with 71.6 gives ≈ −5 dB
			OnInductanceH:   25e-12,
			OffCapacitanceF: 2e-15,
		},
	}
}

// ResonatorZ returns the parallel-RLC impedance at frequency f:
// Z = R / (1 + jQ(f/f0 − f0/f)).
func (p PatchElement) ResonatorZ(f float64) complex128 {
	if f <= 0 {
		return complex(p.ResistanceOhm, 0)
	}
	x := p.Q * (f/p.ResonantHz - p.ResonantHz/f)
	return complex(p.ResistanceOhm, 0) / complex(1, x)
}

// InputImpedance returns the impedance seen at the feed with the switch in
// the given state.
func (p PatchElement) InputImpedance(f float64, switchOn bool) complex128 {
	zp := p.ResonatorZ(f)
	if switchOn {
		zsw := complex(p.Switch.OnResistanceOhm, 0) + InductorZ(p.Switch.OnInductanceH, f)
		return Parallel(zp, zsw)
	}
	if p.Switch.OffCapacitanceF > 0 {
		return Parallel(zp, CapacitorZ(p.Switch.OffCapacitanceF, f))
	}
	return zp
}

// S11 returns the element's reflection coefficient magnitude in dB at
// frequency f for the given switch state — the quantity plotted in paper
// Fig. 6.
func (p PatchElement) S11(f float64, switchOn bool) float64 {
	return S11DB(p.InputImpedance(f, switchOn), p.Z0)
}

// Gamma returns the complex feed reflection coefficient.
func (p PatchElement) Gamma(f float64, switchOn bool) complex128 {
	return ReflectionCoefficient(p.InputImpedance(f, switchOn), p.Z0)
}

// TransmissionAmplitude returns the amplitude coupling of an incident wave
// into the element's feed port, √(1 − |Γ|²): the fraction of the arriving
// field that actually enters the Van Atta line (and, by reciprocity,
// leaves the mirrored element). With the switch on the element is both
// mismatched and internally lossy (the FET dissipates what does enter),
// so the through-path amplitude is further reduced by the switch's
// absorption; we model the on-state through-amplitude as bounded by
// SwitchOnLeakage.
func (p PatchElement) TransmissionAmplitude(f float64, switchOn bool) float64 {
	g := cmplx.Abs(p.Gamma(f, switchOn))
	t := math.Sqrt(math.Max(0, 1-g*g))
	if switchOn {
		// Power not reflected at the feed is mostly burned in the FET
		// rather than coupled onward; only a small leakage survives.
		leak := p.SwitchOnLeakage()
		if t > leak {
			t = leak
		}
	}
	return t
}

// SwitchOnLeakage is the residual through-amplitude when the switch is on
// (an empirical small number: a shorted patch still scatters a little).
// Expressed as amplitude (0.1 ⇒ −20 dB power leakage).
func (p PatchElement) SwitchOnLeakage() float64 { return 0.1 }

// S11Sweep evaluates S11 over [fStart, fStop] with n points for both
// switch states. It returns the frequency grid and the two S11 traces in
// dB — the exact contents of paper Fig. 6.
func (p PatchElement) S11Sweep(fStart, fStop float64, n int) (freq, offDB, onDB []float64, err error) {
	if n < 2 {
		return nil, nil, nil, fmt.Errorf("circuit: sweep needs ≥ 2 points, got %d", n)
	}
	if fStop <= fStart {
		return nil, nil, nil, fmt.Errorf("circuit: sweep stop %v ≤ start %v", fStop, fStart)
	}
	freq = make([]float64, n)
	offDB = make([]float64, n)
	onDB = make([]float64, n)
	for i := 0; i < n; i++ {
		f := fStart + (fStop-fStart)*float64(i)/float64(n-1)
		freq[i] = f
		offDB[i] = p.S11(f, false)
		onDB[i] = p.S11(f, true)
	}
	return freq, offDB, onDB, nil
}

// ModulationDepthDB returns the on/off reflected-power contrast at
// frequency f: the difference between the power re-scattered by the
// retrodirective path in the off state versus the on state, expressed in
// dB. This is the OOK extinction ratio the reader's detector sees from a
// single element.
func (p PatchElement) ModulationDepthDB(f float64) float64 {
	tOff := p.TransmissionAmplitude(f, false)
	tOn := p.TransmissionAmplitude(f, true)
	if tOn == 0 {
		return math.Inf(1)
	}
	return 20 * math.Log10(tOff/tOn)
}
