// Package circuit is the microwave-circuit substrate that stands in for
// the paper's ANSYS HFSS full-wave simulations. It provides complex
// impedance algebra, ABCD two-port cascades, lossy transmission-line
// sections, a parallel-RLC model of a patch-antenna element, and the
// FET-switch model used by mmTag's modulator — enough to compute the
// S11-vs-frequency curves of paper Fig. 6 and the per-element behaviour
// the Van Atta array model builds on.
package circuit

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Z0Default is the reference (feed line) impedance in ohms.
const Z0Default = 50.0

// ReflectionCoefficient returns Γ = (Z − Z0)/(Z + Z0) for a one-port of
// impedance z against reference z0.
func ReflectionCoefficient(z complex128, z0 float64) complex128 {
	d := z + complex(z0, 0)
	if d == 0 {
		return -1
	}
	return (z - complex(z0, 0)) / d
}

// S11DB returns |Γ| in dB (20·log10|Γ|) for impedance z against z0. A
// perfectly matched port returns −∞.
func S11DB(z complex128, z0 float64) float64 {
	g := cmplx.Abs(ReflectionCoefficient(z, z0))
	if g == 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(g)
}

// Parallel combines impedances in parallel. Zero-valued impedances short
// the node (result 0).
func Parallel(zs ...complex128) complex128 {
	var y complex128
	for _, z := range zs {
		if z == 0 {
			return 0
		}
		y += 1 / z
	}
	if y == 0 {
		return cmplx.Inf()
	}
	return 1 / y
}

// Series combines impedances in series.
func Series(zs ...complex128) complex128 {
	var z complex128
	for _, v := range zs {
		z += v
	}
	return z
}

// InductorZ returns the impedance jωL of an inductance l (henry) at
// frequency f (Hz).
func InductorZ(l, f float64) complex128 {
	return complex(0, 2*math.Pi*f*l)
}

// CapacitorZ returns the impedance 1/(jωC) of a capacitance c (farad) at
// frequency f (Hz).
func CapacitorZ(c, f float64) complex128 {
	if c == 0 {
		return cmplx.Inf()
	}
	return complex(0, -1/(2*math.Pi*f*c))
}

// ABCD is a two-port transmission (chain) matrix. Cascading two-ports is
// matrix multiplication; input impedance with a load follows from the
// standard bilinear form.
type ABCD struct {
	A, B, C, D complex128
}

// IdentityABCD is the through-connection two-port.
func IdentityABCD() ABCD { return ABCD{A: 1, D: 1} }

// Cascade returns m·n: the two-port m followed by n.
func (m ABCD) Cascade(n ABCD) ABCD {
	return ABCD{
		A: m.A*n.A + m.B*n.C,
		B: m.A*n.B + m.B*n.D,
		C: m.C*n.A + m.D*n.C,
		D: m.C*n.B + m.D*n.D,
	}
}

// InputImpedance returns the impedance looking into port 1 with zl
// terminating port 2: Zin = (A·Zl + B)/(C·Zl + D).
func (m ABCD) InputImpedance(zl complex128) complex128 {
	den := m.C*zl + m.D
	if den == 0 {
		return cmplx.Inf()
	}
	return (m.A*zl + m.B) / den
}

// SeriesZ returns the ABCD matrix of a series impedance.
func SeriesZ(z complex128) ABCD { return ABCD{A: 1, B: z, C: 0, D: 1} }

// ShuntZ returns the ABCD matrix of a shunt (parallel-to-ground)
// impedance.
func ShuntZ(z complex128) ABCD {
	if z == 0 {
		// A dead short: represent with a very large admittance rather
		// than dividing by zero.
		return ABCD{A: 1, B: 0, C: complex(1e12, 0), D: 1}
	}
	return ABCD{A: 1, B: 0, C: 1 / z, D: 1}
}

// TransmissionLine describes a uniform line section: characteristic
// impedance Z0 (ohms), physical length (meters), relative effective
// permittivity (sets phase velocity), and loss in dB per meter at the
// design frequency.
//
// The paper's Van Atta pairs are joined by exactly such lines ("copper
// strips on a PCB board"); their *equal phase shift across pairs* is the
// φ of paper Eq. 4.
type TransmissionLine struct {
	Z0       float64
	LengthM  float64
	EpsEff   float64 // effective relative permittivity (≥ 1)
	LossDBpM float64 // conductor+dielectric loss, dB/m
}

// PhaseVelocity returns the line's phase velocity in m/s.
func (t TransmissionLine) PhaseVelocity() float64 {
	eps := t.EpsEff
	if eps < 1 {
		eps = 1
	}
	return 299_792_458.0 / math.Sqrt(eps)
}

// ElectricalLengthRad returns the phase shift β·l in radians at frequency
// f.
func (t TransmissionLine) ElectricalLengthRad(f float64) float64 {
	return 2 * math.Pi * f * t.LengthM / t.PhaseVelocity()
}

// PropagationGain returns the complex amplitude factor e^{−γl} applied to
// a wave traversing the line at frequency f: magnitude from the dB/m loss
// and phase −β·l. This is the e^{jφ} (with loss) of paper Eq. 4.
func (t TransmissionLine) PropagationGain(f float64) complex128 {
	ampDB := -t.LossDBpM * t.LengthM
	mag := math.Pow(10, ampDB/20)
	return cmplx.Rect(mag, -t.ElectricalLengthRad(f))
}

// ABCD returns the line's two-port matrix at frequency f, including loss.
func (t TransmissionLine) ABCD(f float64) ABCD {
	beta := t.ElectricalLengthRad(f)
	// Convert dB/m to nepers/m for the attenuation constant.
	alpha := t.LossDBpM * t.LengthM / 8.685889638065035
	gamma := complex(alpha, beta)
	z0 := complex(t.Z0, 0)
	ch := cmplx.Cosh(gamma)
	sh := cmplx.Sinh(gamma)
	return ABCD{A: ch, B: z0 * sh, C: sh / z0, D: ch}
}

// LineForPhase returns a lossless line of characteristic impedance z0
// whose electrical length at frequency f equals the requested phase
// (radians). Used to construct the equal-phase Van Atta interconnects.
func LineForPhase(phase, f, z0, epsEff float64) (TransmissionLine, error) {
	if phase < 0 {
		return TransmissionLine{}, fmt.Errorf("circuit: negative line phase %v", phase)
	}
	if epsEff < 1 {
		return TransmissionLine{}, fmt.Errorf("circuit: EpsEff must be ≥ 1, got %v", epsEff)
	}
	t := TransmissionLine{Z0: z0, EpsEff: epsEff}
	v := t.PhaseVelocity()
	t.LengthM = phase * v / (2 * math.Pi * f)
	return t, nil
}
