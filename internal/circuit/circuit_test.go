package circuit

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestReflectionCoefficient(t *testing.T) {
	// Matched load: Γ = 0.
	if g := ReflectionCoefficient(50, 50); g != 0 {
		t.Errorf("matched: %v", g)
	}
	// Open: Γ → 1, short: Γ = −1.
	if g := ReflectionCoefficient(complex(1e12, 0), 50); math.Abs(real(g)-1) > 1e-9 {
		t.Errorf("open: %v", g)
	}
	if g := ReflectionCoefficient(0, 50); g != -1 {
		t.Errorf("short: %v", g)
	}
	// |Γ| ≤ 1 for any passive (Re Z ≥ 0) impedance.
	f := func(re, im float64) bool {
		re = math.Abs(math.Mod(re, 1e4))
		im = math.Mod(im, 1e4)
		return cmplx.Abs(ReflectionCoefficient(complex(re, im), 50)) <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestS11DBKnownMismatches(t *testing.T) {
	// Z = 71.6 Ω on a 50 Ω line: |Γ| = 21.6/121.6 ⇒ −15.0 dB.
	got := S11DB(71.6, 50)
	if math.Abs(got-(-15.0)) > 0.05 {
		t.Errorf("71.6Ω S11 = %g, want ≈ −15", got)
	}
	if !math.IsInf(S11DB(50, 50), -1) {
		t.Error("matched S11 should be −Inf")
	}
}

func TestParallelSeries(t *testing.T) {
	if z := Parallel(100, 100); z != 50 {
		t.Errorf("parallel: %v", z)
	}
	if z := Series(complex(3, 4), complex(7, -4)); z != 10 {
		t.Errorf("series: %v", z)
	}
	if z := Parallel(100, 0); z != 0 {
		t.Errorf("parallel with short: %v", z)
	}
}

func TestReactances(t *testing.T) {
	// 1 nH at 24 GHz: ωL ≈ 150.8 Ω inductive.
	z := InductorZ(1e-9, 24e9)
	if math.Abs(imag(z)-150.796) > 0.01 || real(z) != 0 {
		t.Errorf("inductor: %v", z)
	}
	// 0.1 pF at 24 GHz: 1/ωC ≈ 66.3 Ω capacitive.
	z = CapacitorZ(0.1e-12, 24e9)
	if math.Abs(imag(z)+66.31) > 0.01 {
		t.Errorf("capacitor: %v", z)
	}
	if !cmplx.IsInf(CapacitorZ(0, 1e9)) {
		t.Error("zero capacitance should be open")
	}
}

func TestABCDCascadeIdentity(t *testing.T) {
	line := TransmissionLine{Z0: 50, LengthM: 0.003, EpsEff: 2.2, LossDBpM: 10}
	m := line.ABCD(24e9)
	id := IdentityABCD()
	got := id.Cascade(m)
	if got != m {
		t.Errorf("identity cascade changed matrix")
	}
	// Input impedance of a matched lossless line is Z0 for any length.
	ll := TransmissionLine{Z0: 50, LengthM: 0.00567, EpsEff: 1}
	zin := ll.ABCD(24e9).InputImpedance(50)
	if cmplx.Abs(zin-50) > 1e-6 {
		t.Errorf("matched line Zin: %v", zin)
	}
}

func TestQuarterWaveTransformer(t *testing.T) {
	// A λ/4 line of impedance Z0 transforms ZL to Z0²/ZL.
	f := 24e9
	line, err := LineForPhase(math.Pi/2, f, 70.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	zin := line.ABCD(f).InputImpedance(100)
	want := 70.7 * 70.7 / 100
	if cmplx.Abs(zin-complex(want, 0)) > 0.01 {
		t.Errorf("quarter-wave transform: %v, want %g", zin, want)
	}
}

func TestSeriesShuntABCD(t *testing.T) {
	// Series Z terminated by load: Zin = Z + ZL.
	zin := SeriesZ(complex(10, 5)).InputImpedance(50)
	if zin != complex(60, 5) {
		t.Errorf("series ABCD: %v", zin)
	}
	// Shunt Z with load: parallel combination.
	zin = ShuntZ(100).InputImpedance(100)
	if cmplx.Abs(zin-50) > 1e-9 {
		t.Errorf("shunt ABCD: %v", zin)
	}
	// A shunt short must pull Zin to ~0.
	zin = ShuntZ(0).InputImpedance(50)
	if cmplx.Abs(zin) > 1e-9 {
		t.Errorf("shunt short: %v", zin)
	}
}

func TestLineForPhase(t *testing.T) {
	f := 24e9
	for _, phase := range []float64{0.1, math.Pi / 2, math.Pi, 2 * math.Pi} {
		line, err := LineForPhase(phase, f, 50, 2.2)
		if err != nil {
			t.Fatal(err)
		}
		if got := line.ElectricalLengthRad(f); math.Abs(got-phase) > 1e-9 {
			t.Errorf("phase %g: got %g", phase, got)
		}
	}
	if _, err := LineForPhase(-1, f, 50, 2.2); err == nil {
		t.Error("negative phase should fail")
	}
	if _, err := LineForPhase(1, f, 50, 0.5); err == nil {
		t.Error("eps < 1 should fail")
	}
}

func TestPropagationGain(t *testing.T) {
	f := 24e9
	line, _ := LineForPhase(math.Pi, f, 50, 1)
	g := line.PropagationGain(f)
	// Lossless π line: magnitude 1, phase −π.
	if math.Abs(cmplx.Abs(g)-1) > 1e-12 {
		t.Errorf("lossless magnitude %g", cmplx.Abs(g))
	}
	if math.Abs(math.Abs(cmplx.Phase(g))-math.Pi) > 1e-9 {
		t.Errorf("phase %g", cmplx.Phase(g))
	}
	// 10·log10(2) dB of loss halves the power.
	line.LossDBpM = 10 * math.Log10(2) / line.LengthM
	g = line.PropagationGain(f)
	if math.Abs(cmplx.Abs(g)-math.Sqrt(0.5)) > 1e-9 {
		t.Errorf("lossy magnitude %g", cmplx.Abs(g))
	}
}
