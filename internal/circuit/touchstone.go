package circuit

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/cmplx"
	"strconv"
	"strings"
)

// OnePortPoint is one row of a one-port S-parameter sweep.
type OnePortPoint struct {
	FreqHz float64
	S11    complex128
}

// WriteS1P writes a one-port sweep in Touchstone v1 (.s1p) format with
// frequencies in GHz and S11 as dB/angle pairs — the interchange format
// used by RF lab tooling, so the simulated Fig. 6 sweeps can be compared
// against real VNA exports.
func WriteS1P(w io.Writer, z0 float64, points []OnePortPoint) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "! mmtag simulated one-port sweep\n# GHz S DB R %g\n", z0); err != nil {
		return err
	}
	for _, p := range points {
		mag := cmplx.Abs(p.S11)
		db := -400.0 // floor for a perfect match
		if mag > 0 {
			db = 20 * log10(mag)
		}
		ang := cmplx.Phase(p.S11) * 180 / 3.141592653589793
		if _, err := fmt.Fprintf(bw, "%.6f %.4f %.3f\n", p.FreqHz/1e9, db, ang); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadS1P parses a Touchstone v1 one-port file previously written by
// WriteS1P (GHz / dB-angle format). It tolerates comment lines and blank
// lines.
func ReadS1P(r io.Reader) (z0 float64, points []OnePortPoint, err error) {
	sc := bufio.NewScanner(r)
	z0 = Z0Default
	sawOption := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "!") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			// Expect: # GHz S DB R <z0>
			for i, f := range fields {
				if strings.EqualFold(f, "R") && i+1 < len(fields) {
					z0, err = strconv.ParseFloat(fields[i+1], 64)
					if err != nil {
						return 0, nil, fmt.Errorf("circuit: bad reference impedance: %w", err)
					}
				}
			}
			if len(fields) >= 4 && !strings.EqualFold(fields[1], "GHz") {
				return 0, nil, fmt.Errorf("circuit: unsupported frequency unit %q", fields[1])
			}
			if len(fields) >= 4 && !strings.EqualFold(fields[3], "DB") {
				return 0, nil, fmt.Errorf("circuit: unsupported format %q (want DB)", fields[3])
			}
			sawOption = true
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return 0, nil, fmt.Errorf("circuit: malformed data line %q", line)
		}
		fGHz, err1 := strconv.ParseFloat(fields[0], 64)
		db, err2 := strconv.ParseFloat(fields[1], 64)
		ang, err3 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return 0, nil, fmt.Errorf("circuit: malformed data line %q", line)
		}
		mag := pow10(db / 20)
		points = append(points, OnePortPoint{
			FreqHz: fGHz * 1e9,
			S11:    cmplx.Rect(mag, ang*3.141592653589793/180),
		})
	}
	if err := sc.Err(); err != nil {
		return 0, nil, err
	}
	if !sawOption {
		return 0, nil, fmt.Errorf("circuit: missing Touchstone option line")
	}
	return z0, points, nil
}

func log10(x float64) float64 { return math.Log10(x) }

func pow10(x float64) float64 { return math.Pow(10, x) }
