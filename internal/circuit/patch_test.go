package circuit

import (
	"bytes"
	"math"
	"math/cmplx"
	"strings"
	"testing"
)

func TestFigure6Anchors(t *testing.T) {
	// The calibrated element must reproduce paper Fig. 6's two anchor
	// points at the 24 GHz carrier: S11 ≈ −15 dB with the switch off
	// (antenna tuned) and ≈ −5 dB with it on (antenna detuned).
	p := DefaultPatchElement()
	off := p.S11(24e9, false)
	on := p.S11(24e9, true)
	if math.Abs(off-(-15)) > 1.0 {
		t.Errorf("switch-off S11 at 24 GHz = %.2f dB, want ≈ −15", off)
	}
	if math.Abs(on-(-5)) > 1.0 {
		t.Errorf("switch-on S11 at 24 GHz = %.2f dB, want ≈ −5", on)
	}
}

func TestFigure6Shape(t *testing.T) {
	p := DefaultPatchElement()
	freq, offDB, onDB, err := p.S11Sweep(23.5e9, 24.5e9, 201)
	if err != nil {
		t.Fatal(err)
	}
	// The off curve dips at 24 GHz: its minimum must be at the center and
	// the band edges must be much shallower (≈ −4…−6 dB in the figure).
	minIdx := 0
	for i, v := range offDB {
		if v < offDB[minIdx] {
			minIdx = i
		}
	}
	if math.Abs(freq[minIdx]-24e9) > 20e6 {
		t.Errorf("off-state minimum at %.3f GHz, want 24", freq[minIdx]/1e9)
	}
	if offDB[0] < -8 || offDB[0] > -2 {
		t.Errorf("off-state band edge %.2f dB, want shallow (−2…−8)", offDB[0])
	}
	// The on curve is comparatively flat: spread across the band well
	// under the off curve's 10 dB swing.
	minOn, maxOn := onDB[0], onDB[0]
	for _, v := range onDB {
		minOn = math.Min(minOn, v)
		maxOn = math.Max(maxOn, v)
	}
	if maxOn-minOn > 3 {
		t.Errorf("on-state spread %.2f dB, want nearly flat", maxOn-minOn)
	}
	// On-state must sit above (less matched than) the off-state dip
	// everywhere near the carrier.
	for i, f := range freq {
		if f > 23.9e9 && f < 24.1e9 && onDB[i] < offDB[i] {
			t.Errorf("on-state below off-state at %.3f GHz", f/1e9)
		}
	}
}

func TestSweepErrors(t *testing.T) {
	p := DefaultPatchElement()
	if _, _, _, err := p.S11Sweep(24e9, 23e9, 10); err == nil {
		t.Error("reversed sweep should fail")
	}
	if _, _, _, err := p.S11Sweep(23e9, 24e9, 1); err == nil {
		t.Error("single-point sweep should fail")
	}
}

func TestResonatorSymmetry(t *testing.T) {
	// |Z| is maximal at resonance and falls off both sides.
	p := DefaultPatchElement()
	z0 := cmplx.Abs(p.ResonatorZ(24e9))
	if math.Abs(z0-p.ResistanceOhm) > 1e-9 {
		t.Errorf("resonance |Z| = %g, want %g", z0, p.ResistanceOhm)
	}
	if cmplx.Abs(p.ResonatorZ(23.5e9)) >= z0 || cmplx.Abs(p.ResonatorZ(24.5e9)) >= z0 {
		t.Error("resonator should peak at f0")
	}
}

func TestTransmissionAmplitude(t *testing.T) {
	p := DefaultPatchElement()
	tOff := p.TransmissionAmplitude(24e9, false)
	tOn := p.TransmissionAmplitude(24e9, true)
	// Off: most of the power couples through (|Γ|² ≈ 0.032 ⇒ t ≈ 0.98).
	if tOff < 0.95 || tOff > 1 {
		t.Errorf("off-state transmission %g", tOff)
	}
	// On: limited by the leakage bound.
	if tOn > p.SwitchOnLeakage()+1e-12 {
		t.Errorf("on-state transmission %g exceeds leakage bound", tOn)
	}
	// Healthy OOK contrast (paper's modulation mechanism).
	if d := p.ModulationDepthDB(24e9); d < 15 {
		t.Errorf("modulation depth %.1f dB, want ≥ 15", d)
	}
}

func TestTouchstoneRoundTrip(t *testing.T) {
	p := DefaultPatchElement()
	freq, _, _, _ := p.S11Sweep(23.5e9, 24.5e9, 11)
	pts := make([]OnePortPoint, len(freq))
	for i, f := range freq {
		pts[i] = OnePortPoint{FreqHz: f, S11: p.Gamma(f, false)}
	}
	var buf bytes.Buffer
	if err := WriteS1P(&buf, 50, pts); err != nil {
		t.Fatal(err)
	}
	z0, got, err := ReadS1P(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if z0 != 50 {
		t.Errorf("z0 = %g", z0)
	}
	if len(got) != len(pts) {
		t.Fatalf("point count %d vs %d", len(got), len(pts))
	}
	for i := range got {
		if math.Abs(got[i].FreqHz-pts[i].FreqHz) > 1e3 {
			t.Errorf("freq %d: %g vs %g", i, got[i].FreqHz, pts[i].FreqHz)
		}
		if cmplx.Abs(got[i].S11-pts[i].S11) > 1e-3 {
			t.Errorf("S11 %d: %v vs %v", i, got[i].S11, pts[i].S11)
		}
	}
}

func TestTouchstoneRejectsGarbage(t *testing.T) {
	if _, _, err := ReadS1P(strings.NewReader("24.0 -15 0\n")); err == nil {
		t.Error("missing option line should fail")
	}
	if _, _, err := ReadS1P(strings.NewReader("# MHz S DB R 50\n24 -15 0\n")); err == nil {
		t.Error("unsupported unit should fail")
	}
	if _, _, err := ReadS1P(strings.NewReader("# GHz S MA R 50\n24 0.2 0\n")); err == nil {
		t.Error("unsupported format should fail")
	}
	if _, _, err := ReadS1P(strings.NewReader("# GHz S DB R 50\nnot numbers here\n")); err == nil {
		t.Error("malformed data should fail")
	}
}
