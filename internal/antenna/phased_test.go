package antenna

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuantizePhase(t *testing.T) {
	p := PhasedArray{PhaseBits: 2} // steps of π/2
	cases := map[float64]float64{
		0:     0,
		0.8:   math.Pi / 2, // 0.8 > π/4, rounds up to the π/2 step
		-0.8:  -math.Pi / 2,
		0.7:   0, // 0.7 < π/4, rounds down
		3.0:   math.Pi,
		0.078: 0,
	}
	for in, want := range cases {
		if got := p.QuantizePhase(in); math.Abs(got-want) > 1e-12 {
			t.Errorf("quantize(%g) = %g, want %g", in, got, want)
		}
	}
	// Ideal shifters pass through.
	ideal := PhasedArray{PhaseBits: 0}
	if got := ideal.QuantizePhase(0.1234); got != 0.1234 {
		t.Errorf("ideal quantize changed phase: %g", got)
	}
}

func TestQuantizationLossSmallFor6Bits(t *testing.T) {
	p := NewReaderArray()
	ideal := PhasedArray{Array: p.Array, PhaseBits: 0}
	f := func(thetaRaw float64) bool {
		theta := math.Mod(thetaRaw, 1.0)
		loss := ideal.GainToward(theta, theta) - p.GainToward(theta, theta)
		// 6-bit shifters lose well under 0.2 dB.
		return loss < 0.2 && loss > -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoarseQuantizationLosesGain(t *testing.T) {
	base := NewReaderArray().Array
	fine := PhasedArray{Array: base, PhaseBits: 6}
	coarse := PhasedArray{Array: base, PhaseBits: 1}
	theta := 0.37
	if coarse.GainToward(theta, theta) >= fine.GainToward(theta, theta) {
		t.Error("1-bit shifters should lose gain versus 6-bit")
	}
}

func TestUniformCodebook(t *testing.T) {
	cb, err := UniformCodebook(-1, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cb.Size() != 8 {
		t.Fatalf("size %d", cb.Size())
	}
	// Beams are sorted, inside the sector and evenly pitched.
	for i := 0; i < cb.Size(); i++ {
		if cb.Angles[i] <= -1 || cb.Angles[i] >= 1 {
			t.Errorf("beam %d at %g outside sector", i, cb.Angles[i])
		}
		if i > 0 {
			pitch := cb.Angles[i] - cb.Angles[i-1]
			if math.Abs(pitch-0.25) > 1e-12 {
				t.Errorf("pitch %g, want 0.25", pitch)
			}
		}
	}
	if _, err := UniformCodebook(1, -1, 8); err == nil {
		t.Error("inverted sector should fail")
	}
	if _, err := UniformCodebook(-1, 1, 0); err == nil {
		t.Error("empty codebook should fail")
	}
}

func TestSectorCodebookCoverage(t *testing.T) {
	a, _ := NewHalfWaveULA(16, nil)
	cb, err := SectorCodebookFor(a, -math.Pi/3, math.Pi/3)
	if err != nil {
		t.Fatal(err)
	}
	// With ~6.3° beams over 120°, expect roughly 19 beams.
	if cb.Size() < 12 || cb.Size() > 32 {
		t.Errorf("codebook size %d out of plausible range", cb.Size())
	}
	// Every direction in the sector is within half a beamwidth of some
	// beam center.
	hpbw := a.HPBWRad(a.TransmitWeights(0), 0)
	for th := -math.Pi / 3; th <= math.Pi/3; th += 0.01 {
		i := cb.Nearest(th)
		if math.Abs(cb.Angles[i]-th) > hpbw {
			t.Errorf("direction %g uncovered (nearest beam %g)", th, cb.Angles[i])
		}
	}
}

func TestNearest(t *testing.T) {
	cb := Codebook{Angles: []float64{-0.5, 0, 0.5}}
	if cb.Nearest(0.4) != 2 || cb.Nearest(-0.3) != 0 || cb.Nearest(0.1) != 1 {
		t.Error("nearest beam selection wrong")
	}
	empty := Codebook{}
	if empty.Nearest(0) != -1 {
		t.Error("empty codebook should return -1")
	}
}
