// Package antenna implements the array theory of paper §5.1: element
// patterns, uniform linear arrays, steering vectors (Eq. 1–3), beam
// patterns and their half-power beamwidths, directivity estimates, and a
// phased-array model with quantized phase shifters plus DFT beam
// codebooks for the reader's sector scan.
//
// Angle convention: θ is measured from array boresight (the normal to the
// array line), positive counter-clockwise, matching the sin(θ) in the
// paper's equations. Element n sits at position n·d along the array.
package antenna

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Element is a single-antenna radiation pattern: amplitude gain as a
// function of angle off its boresight. Patterns are normalized so the
// boresight amplitude is the square root of the element's peak gain
// (linear, not dB), making array gains compose naturally.
type Element interface {
	// AmplitudeAt returns the (real, ≥0) amplitude pattern value at angle
	// theta radians off boresight.
	AmplitudeAt(theta float64) float64
	// PeakGainDBi returns the element's peak gain in dBi.
	PeakGainDBi() float64
}

// Isotropic is the ideal 0 dBi reference element.
type Isotropic struct{}

// AmplitudeAt implements Element: unit everywhere.
func (Isotropic) AmplitudeAt(theta float64) float64 { return 1 }

// PeakGainDBi implements Element.
func (Isotropic) PeakGainDBi() float64 { return 0 }

// Patch is a cos^q element pattern, the standard analytic stand-in for a
// microstrip patch: gain ≈ 6 dBi with q ≈ 2 forward, no back radiation.
type Patch struct {
	// GainDBi is the peak (boresight) gain; 5 dBi if zero… but zero is a
	// valid gain, so use NewPatch for defaults.
	GainDBi float64
	// Exponent q of the cos^q pattern; must be > 0.
	Exponent float64
}

// NewPatch returns a patch element with the conventional 5 dBi / cos
// amplitude (cos² power) shape used for the mmTag tag elements.
func NewPatch() Patch { return Patch{GainDBi: 5, Exponent: 1} }

// AmplitudeAt implements Element: cos^q forward hemisphere, 0 behind.
func (p Patch) AmplitudeAt(theta float64) float64 {
	c := math.Cos(theta)
	if c <= 0 {
		return 0
	}
	peak := math.Pow(10, p.GainDBi/20)
	return peak * math.Pow(c, p.Exponent)
}

// PeakGainDBi implements Element.
func (p Patch) PeakGainDBi() float64 { return p.GainDBi }

// ULA is a uniform linear array of N identical elements with spacing d
// (in wavelengths).
type ULA struct {
	// N is the element count (≥ 1).
	N int
	// SpacingWl is the element spacing in wavelengths (the paper uses
	// d = λ/2, i.e. 0.5).
	SpacingWl float64
	// Elem is the per-element pattern; Isotropic if nil.
	Elem Element
}

// NewHalfWaveULA returns an N-element λ/2-spaced array of the given
// elements (the paper's tag geometry with N = 6 patches).
func NewHalfWaveULA(n int, e Element) (ULA, error) {
	if n < 1 {
		return ULA{}, fmt.Errorf("antenna: array needs ≥ 1 element, got %d", n)
	}
	return ULA{N: n, SpacingWl: 0.5, Elem: e}, nil
}

func (a ULA) element() Element {
	if a.Elem == nil {
		return Isotropic{}
	}
	return a.Elem
}

// PhasePerElement returns the inter-element phase 2π·d·sin(θ) (radians)
// for a plane wave from angle θ — the exponent of paper Eq. 1 with
// K0·d = 2π·SpacingWl. For d = λ/2 this is π·sin(θ) (Eq. 2).
func (a ULA) PhasePerElement(theta float64) float64 {
	return 2 * math.Pi * a.SpacingWl * math.Sin(theta)
}

// SteeringVector returns the received phasors x_n = e^{−j·n·ψ(θ)} of paper
// Eq. 1/2 for a unit plane wave arriving from θ (element pattern applied).
func (a ULA) SteeringVector(theta float64) []complex128 {
	psi := a.PhasePerElement(theta)
	g := a.element().AmplitudeAt(theta)
	v := make([]complex128, a.N)
	for n := range v {
		v[n] = cmplx.Rect(g, -psi*float64(n))
	}
	return v
}

// TransmitWeights returns the feed phasors y_n = e^{+j·n·ψ(θ)} of paper
// Eq. 3 that steer the transmitted beam toward θ (unit amplitude; element
// pattern is applied at radiation time, not here).
func (a ULA) TransmitWeights(theta float64) []complex128 {
	psi := a.PhasePerElement(theta)
	v := make([]complex128, a.N)
	for n := range v {
		v[n] = cmplx.Rect(1, +psi*float64(n))
	}
	return v
}

// ArrayFactor returns the complex far-field sum Σ w_n·e^{−j·n·ψ(θ)} for
// feed weights w at observation angle θ (element pattern applied once).
func (a ULA) ArrayFactor(w []complex128, theta float64) complex128 {
	psi := a.PhasePerElement(theta)
	g := a.element().AmplitudeAt(theta)
	var acc complex128
	for n := 0; n < a.N && n < len(w); n++ {
		acc += w[n] * cmplx.Rect(1, -psi*float64(n))
	}
	return acc * complex(g, 0)
}

// GainDBi returns the array's power gain toward θ for feed weights w,
// relative to an isotropic radiator driven with the same total feed
// power: |AF(θ)|²/Σ|w|² on top of the element gain already inside AF.
func (a ULA) GainDBi(w []complex128, theta float64) float64 {
	var p float64
	for _, v := range w {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	if p == 0 {
		return math.Inf(-1)
	}
	af := cmplx.Abs(a.ArrayFactor(w, theta))
	if af == 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(af*af/p)
}

// BoresightGainDBi returns the peak gain of the uniformly-fed array:
// element gain + 10·log10(N).
func (a ULA) BoresightGainDBi() float64 {
	return a.element().PeakGainDBi() + 10*math.Log10(float64(a.N))
}

// Pattern samples the normalized power pattern (dB, peak = 0) over
// [thetaMin, thetaMax] with n points for the given weights.
func (a ULA) Pattern(w []complex128, thetaMin, thetaMax float64, n int) (thetas, patternDB []float64, err error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("antenna: pattern needs ≥ 2 points")
	}
	if thetaMax <= thetaMin {
		return nil, nil, fmt.Errorf("antenna: pattern range inverted")
	}
	thetas = make([]float64, n)
	patternDB = make([]float64, n)
	peak := 0.0
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		th := thetaMin + (thetaMax-thetaMin)*float64(i)/float64(n-1)
		thetas[i] = th
		v := cmplx.Abs(a.ArrayFactor(w, th))
		vals[i] = v * v
		if vals[i] > peak {
			peak = vals[i]
		}
	}
	for i, v := range vals {
		if v <= 0 || peak == 0 {
			patternDB[i] = math.Inf(-1)
			continue
		}
		patternDB[i] = 10 * math.Log10(v/peak)
	}
	return thetas, patternDB, nil
}

// HPBWRad returns the half-power (−3 dB) beamwidth in radians of the
// beam steered to steer radians, measured by bisection on the pattern.
// For a uniform N-element λ/2 array at broadside this is ≈ 0.886·2/N rad
// (N = 6 ⇒ ≈ 17°, the paper quotes "20 degree beam width").
func (a ULA) HPBWRad(w []complex128, steer float64) float64 {
	peak := cmplx.Abs(a.ArrayFactor(w, steer))
	if peak == 0 {
		return math.Pi
	}
	half := peak / math.Sqrt2
	find := func(dir float64) float64 {
		// March outward until below half power, then bisect.
		step := 0.001
		prev := steer
		for ofs := step; ofs < math.Pi; ofs += step {
			th := steer + dir*ofs
			if cmplx.Abs(a.ArrayFactor(w, th)) < half {
				lo, hi := prev, th
				for i := 0; i < 60; i++ {
					mid := (lo + hi) / 2
					if cmplx.Abs(a.ArrayFactor(w, mid)) >= half {
						lo = mid
					} else {
						hi = mid
					}
				}
				return math.Abs((lo+hi)/2 - steer)
			}
			prev = steer + dir*ofs
		}
		return math.Pi / 2
	}
	return find(+1) + find(-1)
}
