package antenna

import (
	"fmt"
	"math"
	"math/cmplx"
)

// PhasedArray is the reader-side steerable array the paper contrasts the
// tag against: a ULA whose per-element phase shifters have finite
// resolution. The paper's point is that such arrays are too power-hungry
// and costly for a tag — here they live on the reader, where the budget
// allows them.
type PhasedArray struct {
	Array ULA
	// PhaseBits is the phase-shifter resolution in bits (0 = ideal
	// continuous phase).
	PhaseBits int
	// PowerW is the array's DC power draw, modeled for the energy
	// comparison against the passive tag ("a few watts" per the paper).
	PowerW float64
}

// NewReaderArray returns the default reader phased array: 16 isotropic
// elements at λ/2, 6-bit shifters, 4 W — a typical 24 GHz beamforming
// front end.
func NewReaderArray() PhasedArray {
	return PhasedArray{
		Array:     ULA{N: 16, SpacingWl: 0.5, Elem: Isotropic{}},
		PhaseBits: 6,
		PowerW:    4,
	}
}

// QuantizePhase rounds a phase (radians) to the shifter grid.
func (p PhasedArray) QuantizePhase(phase float64) float64 {
	if p.PhaseBits <= 0 {
		return phase
	}
	levels := float64(int(1) << uint(p.PhaseBits))
	step := 2 * math.Pi / levels
	return math.Round(phase/step) * step
}

// WeightsToward returns the quantized feed weights steering the beam to
// theta.
func (p PhasedArray) WeightsToward(theta float64) []complex128 {
	ideal := p.Array.TransmitWeights(theta)
	out := make([]complex128, len(ideal))
	for i, v := range ideal {
		out[i] = cmplx.Rect(cmplx.Abs(v), p.QuantizePhase(cmplx.Phase(v)))
	}
	return out
}

// GainToward returns the realized gain (dBi) toward target when steering
// to steer, including quantization loss.
func (p PhasedArray) GainToward(steer, target float64) float64 {
	return p.Array.GainDBi(p.WeightsToward(steer), target)
}

// Codebook is a set of beams covering a sector, the unit of the reader's
// exhaustive scan (paper Fig. 2: "the reader scans the space by steering
// its beam").
type Codebook struct {
	// Angles holds each beam's steering angle in radians.
	Angles []float64
}

// UniformCodebook returns n beams evenly covering [min, max] radians.
func UniformCodebook(min, max float64, n int) (Codebook, error) {
	if n < 1 {
		return Codebook{}, fmt.Errorf("antenna: codebook needs ≥ 1 beam")
	}
	if max <= min {
		return Codebook{}, fmt.Errorf("antenna: codebook range inverted")
	}
	angles := make([]float64, n)
	for i := range angles {
		angles[i] = min + (max-min)*(float64(i)+0.5)/float64(n)
	}
	return Codebook{Angles: angles}, nil
}

// SectorCodebookFor builds a codebook whose beam pitch matches the
// array's half-power beamwidth across [min, max], so adjacent beams cross
// near −3 dB — the standard exhaustive-search codebook.
func SectorCodebookFor(a ULA, min, max float64) (Codebook, error) {
	w := a.TransmitWeights(0)
	hpbw := a.HPBWRad(w, 0)
	if hpbw <= 0 {
		return Codebook{}, fmt.Errorf("antenna: degenerate beamwidth")
	}
	n := int(math.Ceil((max - min) / hpbw))
	if n < 1 {
		n = 1
	}
	return UniformCodebook(min, max, n)
}

// Size returns the number of beams.
func (c Codebook) Size() int { return len(c.Angles) }

// Nearest returns the index of the beam closest to theta.
func (c Codebook) Nearest(theta float64) int {
	best, bestD := -1, math.Inf(1)
	for i, a := range c.Angles {
		if d := math.Abs(a - theta); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}
