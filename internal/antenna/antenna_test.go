package antenna

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestIsotropic(t *testing.T) {
	e := Isotropic{}
	if e.AmplitudeAt(0) != 1 || e.AmplitudeAt(1.2) != 1 {
		t.Error("isotropic must be flat")
	}
	if e.PeakGainDBi() != 0 {
		t.Error("isotropic gain must be 0 dBi")
	}
}

func TestPatchPattern(t *testing.T) {
	p := NewPatch()
	peak := p.AmplitudeAt(0)
	if math.Abs(20*math.Log10(peak)-5) > 1e-9 {
		t.Errorf("patch boresight %g", peak)
	}
	// Monotone falloff in the forward hemisphere, zero behind.
	if p.AmplitudeAt(0.5) >= peak || p.AmplitudeAt(1.0) >= p.AmplitudeAt(0.5) {
		t.Error("patch pattern should fall off")
	}
	if p.AmplitudeAt(math.Pi/2+0.01) != 0 || p.AmplitudeAt(math.Pi) != 0 {
		t.Error("patch must not radiate backward")
	}
}

func TestPhasePerElementEq2(t *testing.T) {
	// With d = λ/2 the inter-element phase is π·sin(θ): paper Eq. 2.
	a, err := NewHalfWaveULA(6, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(theta float64) bool {
		theta = math.Mod(theta, math.Pi/2)
		return math.Abs(a.PhasePerElement(theta)-math.Pi*math.Sin(theta)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSteeringVectorMatchesEq1(t *testing.T) {
	a, _ := NewHalfWaveULA(4, nil)
	theta := 0.4
	v := a.SteeringVector(theta)
	for n, got := range v {
		want := cmplx.Rect(1, -math.Pi*float64(n)*math.Sin(theta))
		if cmplx.Abs(got-want) > 1e-12 {
			t.Errorf("element %d: %v want %v", n, got, want)
		}
	}
}

func TestTransmitWeightsConjugateReceive(t *testing.T) {
	// Eq. 3 is Eq. 2 with inverted phases: y_n = conj(x_n) for a unit
	// wave and isotropic elements.
	a, _ := NewHalfWaveULA(8, nil)
	theta := -0.7
	rx := a.SteeringVector(theta)
	tx := a.TransmitWeights(theta)
	for n := range rx {
		if cmplx.Abs(tx[n]-cmplx.Conj(rx[n])) > 1e-12 {
			t.Errorf("element %d: tx %v, conj(rx) %v", n, tx[n], cmplx.Conj(rx[n]))
		}
	}
}

func TestArrayFactorPeaksAtSteer(t *testing.T) {
	a, _ := NewHalfWaveULA(8, nil)
	for _, steer := range []float64{0, 0.3, -0.5, 1.0} {
		w := a.TransmitWeights(steer)
		peak := cmplx.Abs(a.ArrayFactor(w, steer))
		if math.Abs(peak-8) > 1e-9 {
			t.Errorf("steer %g: peak %g, want 8 (coherent sum)", steer, peak)
		}
		// Any other angle must be below the peak.
		for _, off := range []float64{-1.2, -0.9, 0.15, 0.7, 1.3} {
			th := steer + off
			if th > math.Pi/2 || th < -math.Pi/2 {
				continue
			}
			if v := cmplx.Abs(a.ArrayFactor(w, th)); v >= peak-1e-9 {
				t.Errorf("steer %g: |AF(%g)| = %g not below peak", steer, th, v)
			}
		}
	}
}

func TestGainDBi(t *testing.T) {
	// Uniform 8-element isotropic array: boresight gain 10·log10(8) ≈ 9 dBi.
	a, _ := NewHalfWaveULA(8, nil)
	w := a.TransmitWeights(0)
	if g := a.GainDBi(w, 0); math.Abs(g-9.03) > 0.01 {
		t.Errorf("8-element gain %g, want ≈9.03", g)
	}
	if g := a.BoresightGainDBi(); math.Abs(g-9.03) > 0.01 {
		t.Errorf("boresight gain %g", g)
	}
	// Patch elements add their gain.
	b := ULA{N: 6, SpacingWl: 0.5, Elem: NewPatch()}
	want := 5 + 10*math.Log10(6)
	if g := b.GainDBi(b.TransmitWeights(0), 0); math.Abs(g-want) > 0.01 {
		t.Errorf("patch array gain %g, want %g", g, want)
	}
}

func TestHPBWSixElements(t *testing.T) {
	// The paper's 6-element tag: HPBW ≈ 0.886·λ/(N·d) = 0.2953 rad ≈ 16.9°,
	// consistent with the paper's quoted "20 degree beam width".
	a, _ := NewHalfWaveULA(6, nil)
	w := a.TransmitWeights(0)
	hpbw := a.HPBWRad(w, 0) * 180 / math.Pi
	if hpbw < 15 || hpbw > 21 {
		t.Errorf("6-element HPBW %.1f°, want ≈17–20°", hpbw)
	}
}

func TestHPBWShrinksWithN(t *testing.T) {
	prev := math.Inf(1)
	for _, n := range []int{4, 8, 16, 32} {
		a, _ := NewHalfWaveULA(n, nil)
		h := a.HPBWRad(a.TransmitWeights(0), 0)
		if h >= prev {
			t.Errorf("HPBW did not shrink at N=%d: %g vs %g", n, h, prev)
		}
		prev = h
	}
}

func TestPatternNormalization(t *testing.T) {
	a, _ := NewHalfWaveULA(6, nil)
	w := a.TransmitWeights(0.2)
	thetas, pat, err := a.Pattern(w, -math.Pi/2, math.Pi/2, 181)
	if err != nil {
		t.Fatal(err)
	}
	maxV := math.Inf(-1)
	maxI := 0
	for i, v := range pat {
		if v > maxV {
			maxV, maxI = v, i
		}
	}
	if math.Abs(maxV) > 1e-9 {
		t.Errorf("pattern peak %g dB, want 0", maxV)
	}
	if math.Abs(thetas[maxI]-0.2) > 0.02 {
		t.Errorf("pattern peak at %g, want 0.2", thetas[maxI])
	}
	if _, _, err := a.Pattern(w, 1, -1, 10); err == nil {
		t.Error("inverted range should fail")
	}
	if _, _, err := a.Pattern(w, -1, 1, 1); err == nil {
		t.Error("single point should fail")
	}
}

func TestNewHalfWaveULAValidation(t *testing.T) {
	if _, err := NewHalfWaveULA(0, nil); err == nil {
		t.Error("0 elements should fail")
	}
}

func TestGainEdgeCases(t *testing.T) {
	a, _ := NewHalfWaveULA(4, nil)
	if g := a.GainDBi(nil, 0); !math.IsInf(g, -1) {
		t.Errorf("empty weights gain %g", g)
	}
	// Patch array has no gain behind the array.
	b := ULA{N: 4, SpacingWl: 0.5, Elem: NewPatch()}
	if g := b.GainDBi(b.TransmitWeights(0), math.Pi); !math.IsInf(g, -1) {
		t.Errorf("backward gain %g", g)
	}
}
