package antenna

import (
	"fmt"
	"math"
	"math/cmplx"
)

// URA is a uniform rectangular array of Nx×Ny identical elements with
// spacing d (wavelengths) in both dimensions — the 2-D generalization the
// paper's PCB tag (Fig. 5) invites. Directions use azimuth az (rotation
// in the scene plane) and elevation el, with direction cosines
// u = cos(el)·sin(az) and v = sin(el).
type URA struct {
	Nx, Ny    int
	SpacingWl float64
	Elem      Element
}

// NewHalfWaveURA returns an Nx×Ny λ/2-spaced rectangular array.
func NewHalfWaveURA(nx, ny int, e Element) (URA, error) {
	if nx < 1 || ny < 1 {
		return URA{}, fmt.Errorf("antenna: URA needs ≥ 1 element per axis, got %dx%d", nx, ny)
	}
	return URA{Nx: nx, Ny: ny, SpacingWl: 0.5, Elem: e}, nil
}

func (a URA) element() Element {
	if a.Elem == nil {
		return Isotropic{}
	}
	return a.Elem
}

// N returns the total element count.
func (a URA) N() int { return a.Nx * a.Ny }

// DirectionCosines converts (az, el) to (u, v).
func DirectionCosines(az, el float64) (u, v float64) {
	return math.Cos(el) * math.Sin(az), math.Sin(el)
}

// offBoresight returns the total angle off the array normal for the
// element pattern: cosθ = cos(el)·cos(az).
func offBoresight(az, el float64) float64 {
	c := math.Cos(el) * math.Cos(az)
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return math.Acos(c)
}

// SteeringVector returns the Nx·Ny received phasors (row-major: index =
// m·Ny + n for element (m,n)) for a unit plane wave from (az, el).
func (a URA) SteeringVector(az, el float64) []complex128 {
	u, v := DirectionCosines(az, el)
	g := a.element().AmplitudeAt(offBoresight(az, el))
	k := 2 * math.Pi * a.SpacingWl
	out := make([]complex128, a.N())
	for m := 0; m < a.Nx; m++ {
		for n := 0; n < a.Ny; n++ {
			out[m*a.Ny+n] = cmplx.Rect(g, -k*(float64(m)*u+float64(n)*v))
		}
	}
	return out
}

// TransmitWeights returns the feed phasors steering the beam to (az, el).
func (a URA) TransmitWeights(az, el float64) []complex128 {
	u, v := DirectionCosines(az, el)
	k := 2 * math.Pi * a.SpacingWl
	out := make([]complex128, a.N())
	for m := 0; m < a.Nx; m++ {
		for n := 0; n < a.Ny; n++ {
			out[m*a.Ny+n] = cmplx.Rect(1, +k*(float64(m)*u+float64(n)*v))
		}
	}
	return out
}

// ArrayFactor returns the far-field sum toward (az, el) for feed weights
// w, element pattern applied once.
func (a URA) ArrayFactor(w []complex128, az, el float64) complex128 {
	u, v := DirectionCosines(az, el)
	g := a.element().AmplitudeAt(offBoresight(az, el))
	k := 2 * math.Pi * a.SpacingWl
	var acc complex128
	for m := 0; m < a.Nx; m++ {
		for n := 0; n < a.Ny; n++ {
			idx := m*a.Ny + n
			if idx >= len(w) {
				break
			}
			acc += w[idx] * cmplx.Rect(1, -k*(float64(m)*u+float64(n)*v))
		}
	}
	return acc * complex(g, 0)
}

// GainDBi returns the realized power gain toward (az, el) for weights w.
func (a URA) GainDBi(w []complex128, az, el float64) float64 {
	var p float64
	for _, v := range w {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	if p == 0 {
		return math.Inf(-1)
	}
	af := cmplx.Abs(a.ArrayFactor(w, az, el))
	if af == 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(af*af/p)
}

// BoresightGainDBi returns element gain + 10·log10(Nx·Ny).
func (a URA) BoresightGainDBi() float64 {
	return a.element().PeakGainDBi() + 10*math.Log10(float64(a.N()))
}
