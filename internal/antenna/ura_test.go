package antenna

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestNewHalfWaveURAValidation(t *testing.T) {
	if _, err := NewHalfWaveURA(0, 4, nil); err == nil {
		t.Error("zero axis should fail")
	}
	a, err := NewHalfWaveURA(4, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 12 {
		t.Errorf("N = %d", a.N())
	}
}

func TestDirectionCosines(t *testing.T) {
	u, v := DirectionCosines(0, 0)
	if u != 0 || v != 0 {
		t.Errorf("boresight cosines %g %g", u, v)
	}
	u, v = DirectionCosines(math.Pi/2, 0)
	if math.Abs(u-1) > 1e-12 || v != 0 {
		t.Errorf("endfire az: %g %g", u, v)
	}
	u, v = DirectionCosines(0, math.Pi/2)
	if math.Abs(v-1) > 1e-12 || math.Abs(u) > 1e-12 {
		t.Errorf("zenith: %g %g", u, v)
	}
}

func TestURASteeringPeak(t *testing.T) {
	a, _ := NewHalfWaveURA(4, 4, nil)
	f := func(rawAz, rawEl uint16) bool {
		az := (float64(rawAz)/65535*2 - 1) * 0.8 // uniform ±46°
		el := (float64(rawEl)/65535*2 - 1) * 0.8
		w := a.TransmitWeights(az, el)
		peak := cmplx.Abs(a.ArrayFactor(w, az, el))
		// Coherent sum = 16 at the steered direction.
		if math.Abs(peak-16) > 1e-9 {
			return false
		}
		// Any noticeably different direction is below the peak.
		return cmplx.Abs(a.ArrayFactor(w, az+0.5, el)) < peak &&
			cmplx.Abs(a.ArrayFactor(w, az, el+0.5)) < peak
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestURAGain(t *testing.T) {
	a, _ := NewHalfWaveURA(4, 4, nil)
	w := a.TransmitWeights(0, 0)
	want := 10 * math.Log10(16)
	if g := a.GainDBi(w, 0, 0); math.Abs(g-want) > 0.01 {
		t.Errorf("4x4 gain %g, want %g", g, want)
	}
	if g := a.BoresightGainDBi(); math.Abs(g-want) > 0.01 {
		t.Errorf("boresight gain %g", g)
	}
	if g := a.GainDBi(nil, 0, 0); !math.IsInf(g, -1) {
		t.Error("empty weights")
	}
}

func TestURAReducesToULA(t *testing.T) {
	// An Nx×1 URA at el=0 must match the ULA exactly.
	ura, _ := NewHalfWaveURA(6, 1, nil)
	ula, _ := NewHalfWaveULA(6, nil)
	for _, az := range []float64{0, 0.3, -0.7} {
		su := ura.SteeringVector(az, 0)
		sl := ula.SteeringVector(az)
		for i := range su {
			if cmplx.Abs(su[i]-sl[i]) > 1e-12 {
				t.Fatalf("az=%g element %d: %v vs %v", az, i, su[i], sl[i])
			}
		}
	}
}

func TestURAPatchElementApplied(t *testing.T) {
	a, _ := NewHalfWaveURA(2, 2, NewPatch())
	w := a.TransmitWeights(0, 0)
	// Behind the array: patch radiates nothing.
	if g := cmplx.Abs(a.ArrayFactor(w, math.Pi, 0)); g != 0 {
		t.Errorf("backward radiation %g", g)
	}
}
