package phy

import (
	"math"
	"testing"

	"github.com/mmtag/mmtag/internal/par"
	"github.com/mmtag/mmtag/internal/rng"
	"github.com/mmtag/mmtag/internal/units"
)

func TestAnalyticCurvesMonotone(t *testing.T) {
	// All BER curves must fall with SNR and start at 1/2.
	curves := map[string]func(float64) float64{
		"ook-ideal":    BEROOKIdeal,
		"ook-leaky":    func(s float64) float64 { return BEROOK(s, 0.2) },
		"ook-envelope": BEROOKEnvelope,
		"bpsk":         BERBPSK,
		"qpsk":         BERQPSK,
	}
	for name, f := range curves {
		if got := f(0); got != 0.5 {
			t.Errorf("%s at snr 0: %g, want 0.5", name, got)
		}
		prev := 1.0
		for s := 0.5; s < 100; s *= 1.5 {
			v := f(s)
			if v > prev {
				t.Errorf("%s not monotone at snr %g", name, s)
			}
			prev = v
		}
	}
}

func TestBEROrderingAtFixedSNR(t *testing.T) {
	// At any SNR: BPSK ≤ QPSK(=ideal coherent OOK) ≤ envelope OOK ≤ leaky
	// OOK... and leakage always hurts.
	for _, s := range []float64{2, 5, 10, 20} {
		if BERBPSK(s) > BERQPSK(s)+1e-15 {
			t.Errorf("BPSK worse than QPSK at snr %g", s)
		}
		if BEROOKIdeal(s) > BEROOKEnvelope(s)+1e-15 {
			t.Errorf("coherent OOK worse than envelope OOK at snr %g", s)
		}
		if BEROOK(s, 0.3) < BEROOKIdeal(s) {
			t.Errorf("leakage should not help at snr %g", s)
		}
	}
}

func TestRequiredSNROOK(t *testing.T) {
	snr := RequiredSNROOK(1e-3)
	// Q(x)=1e-3 at x≈3.09 ⇒ snr ≈ 9.55 (9.8 dB).
	if math.Abs(10*math.Log10(snr)-9.8) > 0.1 {
		t.Errorf("required SNR %g dB, want ≈9.8", 10*math.Log10(snr))
	}
	if got := BEROOKIdeal(snr); math.Abs(got-1e-3) > 1e-5 {
		t.Errorf("round trip BER %g", got)
	}
}

func TestBERASK(t *testing.T) {
	// Binary ASK reduces to OOK-style spacing; higher orders are worse at
	// the same SNR.
	p2, err := BERASK(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	p4, _ := BERASK(4, 10)
	p8, _ := BERASK(8, 10)
	if !(p2 < p4 && p4 < p8) {
		t.Errorf("ASK order should cost BER: %g %g %g", p2, p4, p8)
	}
	if _, err := BERASK(3, 10); err == nil {
		t.Error("order 3 should fail")
	}
	if p, _ := BERASK(4, 0); p != 0.5 {
		t.Error("zero SNR should give 0.5")
	}
}

func TestMonteCarloMatchesAnalyticBPSK(t *testing.T) {
	src := rng.New(99)
	for _, snrDB := range []float64{4, 6, 8} {
		mc, err := MonteCarloBER(BPSK{}, snrDB, 400000, src)
		if err != nil {
			t.Fatal(err)
		}
		an := BERBPSK(math.Pow(10, snrDB/10))
		if mc < an*0.7 || mc > an*1.4 {
			t.Errorf("BPSK at %g dB: MC %g vs analytic %g", snrDB, mc, an)
		}
	}
}

func TestMonteCarloMatchesAnalyticEnvelopeOOK(t *testing.T) {
	// OOK.Demodulate is an envelope detector; it must track the envelope
	// curve, not the coherent one.
	src := rng.New(7)
	for _, snrDB := range []float64{8, 10} {
		mc, err := MonteCarloBER(OOK{}, snrDB, 400000, src)
		if err != nil {
			t.Fatal(err)
		}
		an := BEROOKEnvelope(math.Pow(10, snrDB/10))
		if mc < an*0.7 || mc > an*1.4 {
			t.Errorf("OOK at %g dB: MC %g vs envelope analytic %g", snrDB, mc, an)
		}
	}
}

func TestMonteCarloQPSK(t *testing.T) {
	src := rng.New(17)
	mc, err := MonteCarloBER(QPSK{}, 7, 400000, src)
	if err != nil {
		t.Fatal(err)
	}
	an := BERQPSK(math.Pow(10, 0.7))
	if mc < an*0.7 || mc > an*1.4 {
		t.Errorf("QPSK at 7 dB: MC %g vs analytic %g", mc, an)
	}
}

func TestMonteCarloErrors(t *testing.T) {
	src := rng.New(1)
	if _, err := MonteCarloBER(OOK{}, 5, 0, src); err == nil {
		t.Error("zero bits should fail")
	}
}

// TestMonteCarloWorkerCountInvariance pins the sharding contract: the
// measured BER (and the parent stream's advancement) must be
// byte-identical for any worker count, including bit counts that do not
// fill a whole shard and ones that leave a ragged final shard.
func TestMonteCarloWorkerCountInvariance(t *testing.T) {
	for _, nBits := range []int{100, 1 << 13, 1<<15 + 37} {
		refSrc := rng.New(5)
		prev := par.SetWorkers(1)
		ref, err := MonteCarloBER(OOK{}, 9, nBits, refSrc)
		par.SetWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		refNext := refSrc.Uint64()
		for _, w := range []int{2, 4, 11} {
			src := rng.New(5)
			par.SetWorkers(w)
			got, err := MonteCarloBER(OOK{}, 9, nBits, src)
			par.SetWorkers(prev)
			if err != nil {
				t.Fatal(err)
			}
			if got != ref {
				t.Fatalf("nBits=%d workers=%d: BER %v, want %v", nBits, w, got, ref)
			}
			if src.Uint64() != refNext {
				t.Fatalf("nBits=%d workers=%d: parent stream advanced differently", nBits, w)
			}
		}
	}
}

func TestWaterfall(t *testing.T) {
	src := rng.New(3)
	pts, err := Waterfall(BPSK{}, BERBPSK, 0, 6, 2, 20000, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].BER > pts[i-1].BER+0.01 {
			t.Errorf("waterfall not (approximately) monotone at %g dB", pts[i].SNRdB)
		}
		if pts[i].AnalyticBER >= pts[i-1].AnalyticBER {
			t.Errorf("analytic column not monotone")
		}
	}
	if _, err := Waterfall(BPSK{}, nil, 5, 1, 1, 100, src); err == nil {
		t.Error("inverted sweep should fail")
	}
}

func TestPaperRateAnchorCrossCheck(t *testing.T) {
	// The paper's rate table says 7 dB SNR carries ASK at BER ≤ 1e-3; our
	// coherent ideal-OOK curve needs 9.8 dB for the same BER. Both
	// thresholds live in the code base (units.ASKRequiredSNRdB vs
	// RequiredSNROOK); this test documents the 2.8 dB convention gap so a
	// change in either constant is caught.
	gap := 10*math.Log10(RequiredSNROOK(units.TargetBER)) - units.ASKRequiredSNRdB
	if gap < 2.5 || gap > 3.1 {
		t.Errorf("convention gap %g dB moved; update EXPERIMENTS.md if intentional", gap)
	}
}
