package phy

import (
	"math"
	"testing"
)

// rails builds decisions sitting exactly on two amplitude rails.
func rails(lo, hi float64, n int) []complex128 {
	out := make([]complex128, 0, 2*n)
	for i := 0; i < n; i++ {
		out = append(out, complex(lo, 0), complex(0, hi))
	}
	return out
}

func TestMeasureDecisionQualityCleanRails(t *testing.T) {
	dec := rails(0.2, 1.0, 8)
	q, err := MeasureDecisionQuality(dec, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.RailLo-0.2) > 1e-12 || math.Abs(q.RailHi-1.0) > 1e-12 {
		t.Fatalf("rails = %g, %g, want 0.2, 1.0", q.RailLo, q.RailHi)
	}
	// Every decision sits exactly on its rail: zero EVM, and the margin
	// |m − thr| / (sep/2) = 0.4/0.4 = 1 for both rails.
	if q.EVMPct > 1e-9 {
		t.Fatalf("EVM = %g%% on clean rails", q.EVMPct)
	}
	if math.Abs(q.MinMargin-1) > 1e-12 || math.Abs(q.MeanMargin-1) > 1e-12 {
		t.Fatalf("margins = %g, %g, want 1, 1", q.MinMargin, q.MeanMargin)
	}
}

func TestMeasureDecisionQualityDerivedThreshold(t *testing.T) {
	// threshold <= 0 derives the midpoint of the extreme magnitudes
	// (0.2+1.0)/2 = 0.6 — the 4-ASK path.
	dec := rails(0.2, 1.0, 4)
	q, err := MeasureDecisionQuality(dec, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MeasureDecisionQuality(dec, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if q != want {
		t.Fatalf("derived-threshold quality %+v != explicit %+v", q, want)
	}
}

func TestMeasureDecisionQualityNoisyRails(t *testing.T) {
	// Perturb the rails symmetrically: EVM grows, margins shrink below 1,
	// but rail means stay centered.
	dec := []complex128{
		complex(0.18, 0), complex(0.22, 0),
		complex(0.95, 0), complex(1.05, 0),
	}
	q, err := MeasureDecisionQuality(dec, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.RailLo-0.2) > 1e-12 || math.Abs(q.RailHi-1.0) > 1e-12 {
		t.Fatalf("rails = %g, %g", q.RailLo, q.RailHi)
	}
	if q.EVMPct <= 0 || q.EVMPct > 20 {
		t.Fatalf("EVM = %g%%, want small positive", q.EVMPct)
	}
	if q.MinMargin >= q.MeanMargin || q.MinMargin <= 0 {
		t.Fatalf("margins = %g min, %g mean", q.MinMargin, q.MeanMargin)
	}
	// Closest symbol is 0.95: margin = 0.35/0.4 = 0.875.
	if math.Abs(q.MinMargin-0.875) > 1e-9 {
		t.Fatalf("MinMargin = %g, want 0.875", q.MinMargin)
	}
}

func TestMeasureDecisionQualityErrors(t *testing.T) {
	if _, err := MeasureDecisionQuality(nil, 0.5); err == nil {
		t.Error("no error on empty decisions")
	}
	// All magnitudes on one side of the threshold: unimodal.
	uni := []complex128{1, complex(1.01, 0), complex(0.99, 0)}
	if _, err := MeasureDecisionQuality(uni, 0.5); err == nil {
		t.Error("no error on unimodal decisions")
	}
	// Identical magnitudes with a derived threshold split at the midpoint
	// still collapse to zero separation on one side.
	flat := []complex128{1, 1, 1, 1}
	if _, err := MeasureDecisionQuality(flat, 0); err == nil {
		t.Error("no error on flat decisions")
	}
}

func TestMeasureDecisionQualityAllocs(t *testing.T) {
	dec := rails(0.2, 1.0, 32)
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := MeasureDecisionQuality(dec, 0.6); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("MeasureDecisionQuality allocates %.1f/op", allocs)
	}
}
