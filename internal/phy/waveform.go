package phy

import (
	"fmt"
	"math"
	"math/cmplx"

	"github.com/mmtag/mmtag/internal/dsp"
)

// Preamble13 is the length-13 Barker code used to detect and align tag
// bursts; Barker codes have the flattest possible autocorrelation
// sidelobes, making the correlation peak unambiguous.
var Preamble13 = []int{+1, +1, +1, +1, +1, -1, -1, +1, +1, -1, +1, -1, +1}

// PreambleSymbols returns the Barker preamble as OOK symbols: +1 chips
// map to the reflecting state (amplitude 1), −1 chips to the absorbed
// state (amplitude leakage).
func PreambleSymbols(leakage float64) []complex128 {
	return AppendPreambleSymbols(nil, leakage)
}

// AppendPreambleSymbols appends the Barker preamble symbols to dst (see
// PreambleSymbols) — the allocation-free form for callers with a
// reusable buffer.
func AppendPreambleSymbols(dst []complex128, leakage float64) []complex128 {
	for _, c := range Preamble13 {
		if c > 0 {
			dst = append(dst, 1)
		} else {
			dst = append(dst, complex(leakage, 0))
		}
	}
	return dst
}

// Waveform turns symbols into (and back out of) sampled baseband.
type Waveform struct {
	// SPS is samples per symbol (≥ 1).
	SPS int
	// Pulse is the shaping pulse; RectPulse(SPS) reproduces the tag's
	// hard switching, raised-cosine shapes bound the occupied bandwidth.
	Pulse []float64
}

// NewRectWaveform returns the paper-faithful hard-switched waveform.
func NewRectWaveform(sps int) (Waveform, error) {
	if sps < 1 {
		return Waveform{}, fmt.Errorf("phy: sps must be ≥ 1, got %d", sps)
	}
	return Waveform{SPS: sps, Pulse: dsp.RectPulse(sps)}, nil
}

// Synthesize renders symbols to samples (len(symbols)·SPS samples).
func (w Waveform) Synthesize(symbols []complex128) []complex128 {
	return dsp.ShapeSymbols(symbols, w.Pulse, w.SPS)
}

// SynthesizeWS is Synthesize with workspace-backed scratch and output
// (valid until the next ws.Reset; nil ws allocates).
func (w Waveform) SynthesizeWS(ws *dsp.Workspace, symbols []complex128) []complex128 {
	return dsp.ShapeSymbolsWS(ws, symbols, w.Pulse, w.SPS)
}

// MatchedFilter correlates the received samples against the pulse and
// returns one decision statistic per symbol period, sampling at the
// center of each period starting from startSample. Decision values are
// normalized by the pulse energy so symbol amplitudes are preserved.
func (w Waveform) MatchedFilter(samples []complex128, startSample, nSymbols int) ([]complex128, error) {
	return w.MatchedFilterWS(nil, samples, startSample, nSymbols)
}

// matchedFilterDirectMax is the longest pulse still correlated by the
// direct per-symbol loop; beyond it MatchedFilterWS runs one overlap-save
// FFT correlation over the whole burst and samples the decision points
// from it. The default rect pulse (len = SPS) stays direct, keeping the
// burst hot path's numerics bit-identical.
const matchedFilterDirectMax = 32

// MatchedFilterWS is MatchedFilter with the decision buffer checked out
// of ws (valid until the next ws.Reset; nil ws allocates). Long shaping
// pulses (raised-cosine with many samples per symbol) take the
// frequency-domain path.
func (w Waveform) MatchedFilterWS(ws *dsp.Workspace, samples []complex128, startSample, nSymbols int) ([]complex128, error) {
	if startSample < 0 {
		return nil, fmt.Errorf("phy: negative start sample %d", startSample)
	}
	var pe float64
	for _, v := range w.Pulse {
		pe += v * v
	}
	if pe == 0 {
		return nil, fmt.Errorf("phy: zero-energy pulse")
	}
	if l := len(w.Pulse); l > matchedFilterDirectMax && nSymbols > 0 {
		// Correlation as convolution with the reversed pulse: full-conv
		// position start + k·SPS + (l−1) − (l−1)/2 is symbol k's decision
		// point, and the convolution's implicit zero padding reproduces
		// the direct loop's skip of out-of-range taps.
		h := ws.Complex(l)
		for i, p := range w.Pulse {
			h[l-1-i] = complex(p, 0)
		}
		full := dsp.ConvOSWS(ws, samples, h)
		out := ws.Complex(nSymbols)
		off := (l - 1) - (l-1)/2
		ipe := complex(1/pe, 0)
		for k := 0; k < nSymbols; k++ {
			if u := startSample + k*w.SPS + off; u < len(full) {
				out[k] = full[u] * ipe
			}
		}
		return out, nil
	}
	out := ws.Complex(nSymbols)[:0]
	for k := 0; k < nSymbols; k++ {
		// startSample + k·SPS is the *center* of symbol k (the
		// ShapeSymbols contract); pulse sample i sits i − (len−1)/2
		// samples from the center.
		base := startSample + k*w.SPS - (len(w.Pulse)-1)/2
		var acc complex128
		for i, p := range w.Pulse {
			j := base + i
			if j < 0 || j >= len(samples) {
				continue
			}
			acc += samples[j] * complex(p, 0)
		}
		out = append(out, acc/complex(pe, 0))
	}
	return out, nil
}

// DetectBurst finds a Barker-preambled OOK burst in samples: it computes
// the envelope, correlates with the preamble's ±1 chip pattern at symbol
// rate, and returns the sample index of the first payload symbol (i.e.
// just after the preamble) plus the correlation peak metric.
func (w Waveform) DetectBurst(samples []complex128, leakage float64) (payloadStart int, metric float64, err error) {
	return w.DetectBurstWS(nil, samples, leakage)
}

// DetectBurstWS is DetectBurst with the envelope, template and
// correlation buffers checked out of ws (nil ws allocates).
func (w Waveform) DetectBurstWS(ws *dsp.Workspace, samples []complex128, leakage float64) (payloadStart int, metric float64, err error) {
	n := len(Preamble13)
	need := (n + 1) * w.SPS
	if len(samples) < need {
		return 0, 0, fmt.Errorf("phy: burst shorter (%d) than preamble (%d samples)", len(samples), need)
	}
	avg := dsp.MovingAverageInto(ws.Complex(len(samples)), samples, w.SPS)
	env := dsp.MagnitudesInto(ws.Float(len(samples)), avg)
	// Zero-mean chip template: +1 → high, −1 → low; remove DC so the
	// correlation ignores the absolute signal level.
	tmpl := ws.Float(n)
	var mean float64
	for i, c := range Preamble13 {
		v := leakage
		if c > 0 {
			v = 1
		}
		tmpl[i] = v
		mean += v
	}
	mean /= float64(n)
	for i := range tmpl {
		tmpl[i] -= mean
	}
	// The moving-average envelope peaks at the *end* of each symbol
	// period; search all sample offsets by correlating the envelope with
	// the template upsampled to sample rate (one nonzero chip every SPS).
	// XCorrRealWS skips the exact-zero template taps on its direct path,
	// so the sums match the old strided loop bit for bit; long/dense
	// searches take its FFT path automatically.
	maxOfs := len(samples) - n*w.SPS
	tdense := ws.Float((n-1)*w.SPS + 1)
	for k := 0; k < n; k++ {
		tdense[k*w.SPS] = tmpl[k]
	}
	corr := dsp.XCorrRealWS(ws, env, tdense)[:maxOfs+1]
	bestV := math.Inf(-1)
	for _, v := range corr {
		if v > bestV {
			bestV = v
		}
	}
	// A random payload can contain a 13-symbol run that matches the
	// Barker pattern exactly, tying the true preamble's correlation. The
	// preamble always comes *first*, so take the earliest offset within
	// 5% of the global maximum rather than the argmax.
	bestOfs := 0
	for ofs, v := range corr {
		if v >= 0.95*bestV {
			bestOfs = ofs
			break
		}
	}
	// The causal moving average fully covers a symbol at the symbol's
	// *last* support sample, which for a center-aligned rect pulse sits
	// SPS−1−(SPS−1)/2 samples after the symbol center. Back that off to
	// recover the preamble's symbol-0 center, then step over the preamble
	// to the first payload symbol's center.
	backoff := w.SPS - 1 - (w.SPS-1)/2
	center0 := bestOfs - backoff
	if center0 < 0 {
		center0 = 0
	}
	return center0 + n*w.SPS, bestV, nil
}

// MeasureSNR estimates the SNR of OOK decision statistics by two-cluster
// splitting: symbols above/below the midpoint of the extremes form the
// high and low clusters; SNR = (μ_hi−μ_lo)²·(avg symbol power fraction) /
// (2·σ²). It returns the estimated average-SNR in dB.
func MeasureSNR(decisions []complex128) (float64, error) {
	return MeasureSNRWS(nil, decisions)
}

// MeasureSNRWS is MeasureSNR with the magnitude buffer checked out of ws
// (nil ws allocates).
func MeasureSNRWS(ws *dsp.Workspace, decisions []complex128) (float64, error) {
	if len(decisions) < 4 {
		return 0, fmt.Errorf("phy: need ≥ 4 decisions to estimate SNR")
	}
	mags := dsp.MagnitudesInto(ws.Float(len(decisions)), decisions)
	lo, hi := mags[0], mags[0]
	for _, m := range mags {
		lo = math.Min(lo, m)
		hi = math.Max(hi, m)
	}
	mid := (lo + hi) / 2
	var muH, muL float64
	var nH, nL int
	for _, m := range mags {
		if m >= mid {
			muH += m
			nH++
		} else {
			muL += m
			nL++
		}
	}
	if nH == 0 || nL == 0 {
		return 0, fmt.Errorf("phy: decisions are unimodal; cannot split clusters")
	}
	muH /= float64(nH)
	muL /= float64(nL)
	// Estimate noise from the high cluster only: there the magnitude of
	// A+n is ≈ A + Re(n), so the magnitude variance equals the
	// per-quadrature noise power N/2. (The low/empty cluster is Rayleigh
	// and would bias the estimate.)
	var varH float64
	for _, m := range mags {
		if m >= mid {
			varH += (m - muH) * (m - muH)
		}
	}
	varH /= float64(nH)
	if varH <= 0 {
		return math.Inf(1), nil
	}
	// Average symbol power for the (muH, muL) constellation with equal
	// priors over total noise power N = 2·varH.
	avgP := (muH*muH + muL*muL) / 2
	snr := avgP / (2 * varH)
	return 10 * math.Log10(snr), nil
}

// PhaseAlign rotates decisions so the strongest cluster lies on the
// positive real axis — a cheap carrier-phase recovery for coherent
// detection of backscatter bursts.
func PhaseAlign(decisions []complex128) []complex128 {
	var acc complex128
	for _, d := range decisions {
		acc += d * complex(cmplx.Abs(d), 0)
	}
	if acc == 0 {
		return decisions
	}
	rot := cmplx.Rect(1, -cmplx.Phase(acc))
	out := make([]complex128, len(decisions))
	for i, d := range decisions {
		out[i] = d * rot
	}
	return out
}
