package phy

import (
	"math"
	"math/cmplx"
	"testing"

	"github.com/mmtag/mmtag/internal/dsp"
	"github.com/mmtag/mmtag/internal/rng"
)

func TestRectWaveformRoundTrip(t *testing.T) {
	w, err := NewRectWaveform(8)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(5)
	bits := src.Bits(make([]byte, 64))
	syms, _ := OOK{}.Modulate(nil, bits)
	samples := w.Synthesize(syms)
	if len(samples) != 64*8 {
		t.Fatalf("sample count %d", len(samples))
	}
	dec, err := w.MatchedFilter(samples, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	got := OOK{}.Demodulate(nil, dec)
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("noiseless waveform bit %d flipped", i)
		}
	}
}

func TestNewRectWaveformValidation(t *testing.T) {
	if _, err := NewRectWaveform(0); err == nil {
		t.Error("sps 0 should fail")
	}
}

func TestMatchedFilterGainInvariance(t *testing.T) {
	// Matched filter output must reproduce symbol amplitudes regardless
	// of SPS (pulse-energy normalization).
	for _, sps := range []int{1, 4, 16} {
		w, _ := NewRectWaveform(sps)
		syms := []complex128{1, 0.5i, -0.25, 1}
		dec, err := w.MatchedFilter(w.Synthesize(syms), 0, len(syms))
		if err != nil {
			t.Fatal(err)
		}
		// Symbol 0's pulse is edge-truncated by the buffer start; interior
		// symbols must come back exactly.
		for i := 1; i < len(syms)-1; i++ {
			if cmplx.Abs(dec[i]-syms[i]) > 1e-9 {
				t.Errorf("sps=%d symbol %d: %v vs %v", sps, i, dec[i], syms[i])
			}
		}
	}
}

func TestMatchedFilterErrors(t *testing.T) {
	w, _ := NewRectWaveform(4)
	if _, err := w.MatchedFilter(nil, -1, 1); err == nil {
		t.Error("negative start should fail")
	}
	bad := Waveform{SPS: 4, Pulse: []float64{0, 0}}
	if _, err := bad.MatchedFilter(make([]complex128, 8), 0, 1); err == nil {
		t.Error("zero-energy pulse should fail")
	}
}

func TestPreambleSymbols(t *testing.T) {
	p := PreambleSymbols(0.1)
	if len(p) != 13 {
		t.Fatalf("preamble length %d", len(p))
	}
	hi, lo := 0, 0
	for _, s := range p {
		switch {
		case s == 1:
			hi++
		case cmplx.Abs(s-0.1) < 1e-12:
			lo++
		default:
			t.Fatalf("unexpected preamble level %v", s)
		}
	}
	if hi != 9 || lo != 4 {
		t.Errorf("Barker-13 has 9 highs / 4 lows, got %d/%d", hi, lo)
	}
}

func TestDetectBurstFindsPayload(t *testing.T) {
	w, _ := NewRectWaveform(8)
	src := rng.New(11)
	payloadBits := src.Bits(make([]byte, 40))
	syms := PreambleSymbols(0)
	ps, _ := OOK{}.Modulate(nil, payloadBits)
	syms = append(syms, ps...)
	burst := w.Synthesize(syms)
	// Park the burst after some leading silence.
	rx := make([]complex128, 100+len(burst)+50)
	copy(rx[100:], burst)
	start, metric, err := w.DetectBurst(rx, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantStart := 100 + 13*8
	if abs := math.Abs(float64(start - wantStart)); abs > 1 {
		t.Fatalf("payload start %d, want %d", start, wantStart)
	}
	if metric <= 0 {
		t.Errorf("correlation metric %g", metric)
	}
	// Decode from the detected offset.
	dec, err := w.MatchedFilter(rx, start, len(payloadBits))
	if err != nil {
		t.Fatal(err)
	}
	got := OOK{}.Demodulate(nil, dec)
	errs := 0
	for i := range payloadBits {
		if got[i] != payloadBits[i] {
			errs++
		}
	}
	if errs != 0 {
		t.Errorf("%d payload bit errors after sync", errs)
	}
}

func TestDetectBurstWithNoise(t *testing.T) {
	w, _ := NewRectWaveform(8)
	src := rng.New(23)
	payloadBits := src.Bits(make([]byte, 60))
	syms := PreambleSymbols(0)
	ps, _ := OOK{}.Modulate(nil, payloadBits)
	syms = append(syms, ps...)
	burst := w.Synthesize(syms)
	rx := make([]complex128, 64+len(burst)+32)
	copy(rx[64:], burst)
	src.AWGN(rx, 0.01) // 20 dB SNR on the high level
	start, _, err := w.DetectBurst(rx, 0)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := w.MatchedFilter(rx, start, len(payloadBits))
	if err != nil {
		t.Fatal(err)
	}
	got := OOK{}.Demodulate(nil, dec)
	errs := 0
	for i := range payloadBits {
		if got[i] != payloadBits[i] {
			errs++
		}
	}
	if errs > 1 {
		t.Errorf("%d bit errors at 20 dB SNR", errs)
	}
}

func TestDetectBurstTooShort(t *testing.T) {
	w, _ := NewRectWaveform(8)
	if _, _, err := w.DetectBurst(make([]complex128, 20), 0); err == nil {
		t.Error("short capture should fail")
	}
}

func TestMeasureSNR(t *testing.T) {
	src := rng.New(31)
	bits := src.Bits(make([]byte, 4000))
	syms, _ := OOK{}.Modulate(nil, bits)
	// Inject noise for a known average SNR of 15 dB: avg power = 0.5.
	snr := math.Pow(10, 1.5)
	noise := 0.5 / snr
	src.AWGN(syms, noise)
	got, err := MeasureSNR(syms)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-15) > 1.5 {
		t.Errorf("estimated SNR %g dB, want ≈15", got)
	}
	if _, err := MeasureSNR(syms[:2]); err == nil {
		t.Error("too few decisions should fail")
	}
	flat := make([]complex128, 16)
	for i := range flat {
		flat[i] = 1
	}
	if _, err := MeasureSNR(flat); err == nil {
		t.Error("unimodal decisions should fail")
	}
}

func TestPhaseAlign(t *testing.T) {
	src := rng.New(41)
	bits := src.Bits(make([]byte, 200))
	syms, _ := OOK{}.Modulate(nil, bits)
	rot := cmplx.Rect(1, 1.1)
	for i := range syms {
		syms[i] *= rot
	}
	aligned := PhaseAlign(syms)
	// The high cluster must come back to the positive real axis.
	var acc complex128
	for _, s := range aligned {
		acc += s
	}
	if math.Abs(cmplx.Phase(acc)) > 0.01 {
		t.Errorf("residual phase %g", cmplx.Phase(acc))
	}
	// Zero input passes through.
	z := make([]complex128, 4)
	if out := PhaseAlign(z); len(out) != 4 {
		t.Error("zero-signal align broke")
	}
}

func TestSynthesizeEnergyMatchesEnvelope(t *testing.T) {
	// Rect-shaped OOK of alternating bits has 50% duty: mean power = half
	// the high-level power (the paper's "average transmission power will
	// be much lower depending on the duty cycle").
	w, _ := NewRectWaveform(4)
	bits := make([]byte, 100)
	for i := range bits {
		bits[i] = byte(i % 2)
	}
	syms, _ := OOK{}.Modulate(nil, bits)
	x := w.Synthesize(syms)
	// (Loose tolerance: the first symbol's pulse is edge-truncated.)
	if p := dsp.Power(x); math.Abs(p-0.5) > 0.01 {
		t.Errorf("50%% duty OOK power %g, want 0.5", p)
	}
}

// TestSynthesizeWSMatchesSynthesize: workspace-backed synthesis must be
// sample-identical to the allocating path, including across Reset frames.
func TestSynthesizeWSMatchesSynthesize(t *testing.T) {
	w, err := NewRectWaveform(8)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(11)
	bits := src.Bits(make([]byte, 96))
	syms, err := (OOK{Leakage: 0.05}).Modulate(nil, bits)
	if err != nil {
		t.Fatal(err)
	}
	want := w.Synthesize(syms)
	ws := dsp.NewWorkspace()
	for frame := 0; frame < 3; frame++ {
		ws.Reset()
		got := w.SynthesizeWS(ws, syms)
		if len(got) != len(want) {
			t.Fatalf("frame %d: %d samples, want %d", frame, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("frame %d: sample %d = %v, want %v", frame, i, got[i], want[i])
			}
		}
	}
	// nil workspace is exactly the allocating path.
	got := w.SynthesizeWS(nil, syms)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("nil-ws sample %d diverged", i)
		}
	}
}
