package phy

import (
	"fmt"
	"math"
)

// DecisionQuality summarizes how healthy a burst's decision statistics
// are: the estimated amplitude rails, the error vector magnitude against
// them, and the per-symbol soft margins around the slicer threshold. It
// is the scalar telemetry the signal-tap layer records per burst.
type DecisionQuality struct {
	// RailLo / RailHi are the estimated low/high amplitude cluster means.
	RailLo, RailHi float64
	// EVMPct is the RMS deviation of each decision magnitude from its
	// nearest rail, as a percentage of the rail separation.
	EVMPct float64
	// MinMargin / MeanMargin are the per-symbol distances |m − threshold|
	// normalized by half the rail separation: 1.0 means a symbol sits
	// exactly on its rail, 0 means it touches the threshold.
	MinMargin, MeanMargin float64
}

// MeasureDecisionQuality computes DecisionQuality over slicer-input
// decisions. threshold is the adaptive OOK decision threshold; pass 0 (or
// any non-positive value) to derive one from the midpoint of the extreme
// magnitudes (the 4-ASK path, which has no single threshold). The
// function allocates nothing: it makes three scalar passes over the
// decisions, computing magnitudes on the fly.
func MeasureDecisionQuality(decisions []complex128, threshold float64) (DecisionQuality, error) {
	var q DecisionQuality
	if len(decisions) == 0 {
		return q, fmt.Errorf("phy: no decisions to measure")
	}
	mag := func(c complex128) float64 {
		return math.Sqrt(real(c)*real(c) + imag(c)*imag(c))
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range decisions {
		m := mag(c)
		lo = math.Min(lo, m)
		hi = math.Max(hi, m)
	}
	thr := threshold
	if !(thr > 0) {
		thr = (lo + hi) / 2
	}
	var muL, muH float64
	var nL, nH int
	for _, c := range decisions {
		if m := mag(c); m >= thr {
			muH += m
			nH++
		} else {
			muL += m
			nL++
		}
	}
	if nL == 0 || nH == 0 {
		return q, fmt.Errorf("phy: decisions are unimodal; cannot estimate rails")
	}
	muL /= float64(nL)
	muH /= float64(nH)
	sep := muH - muL
	if sep <= 0 {
		return q, fmt.Errorf("phy: degenerate rails (separation %g)", sep)
	}
	q.RailLo, q.RailHi = muL, muH
	half := sep / 2
	var devSq, marginSum float64
	minMargin := math.Inf(1)
	for _, c := range decisions {
		m := mag(c)
		rail := muL
		if m >= thr {
			rail = muH
		}
		d := m - rail
		devSq += d * d
		margin := math.Abs(m-thr) / half
		marginSum += margin
		minMargin = math.Min(minMargin, margin)
	}
	q.EVMPct = math.Sqrt(devSq/float64(len(decisions))) / sep * 100
	q.MinMargin = minMargin
	q.MeanMargin = marginSum / float64(len(decisions))
	return q, nil
}
