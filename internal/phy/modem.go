// Package phy implements the modulation layer of the mmTag link: the
// OOK/ASK schemes a backscatter tag can realize with RF switches (paper
// §6), plus BPSK/QPSK references, waveform-level shaping and matched-
// filter detection, analytic bit-error-rate formulas and Monte-Carlo BER
// measurement, and preamble-based burst synchronization.
//
// Bit convention (paper §6): data '0' leaves the switches off, so the tag
// reflects — the high-amplitude symbol; data '1' turns the switches on and
// the reflection (nearly) vanishes. OOK demodulation at the reader is
// amplitude thresholding.
package phy

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// Modulation maps bits to complex baseband symbols and back.
type Modulation interface {
	// Name returns a short scheme label ("OOK").
	Name() string
	// BitsPerSymbol returns the number of bits carried per symbol.
	BitsPerSymbol() int
	// Modulate appends the symbols for bits (each byte 0 or 1) to dst.
	// len(bits) must be a multiple of BitsPerSymbol.
	Modulate(dst []complex128, bits []byte) ([]complex128, error)
	// Demodulate appends the hard-decision bits for syms to dst.
	Demodulate(dst []byte, syms []complex128) []byte
}

// OOK is on-off keying with a configurable extinction: bit 0 maps to
// amplitude 1 (tag reflecting), bit 1 to amplitude Leakage (tag shorted —
// ideally 0, in practice the switch leaks a little).
type OOK struct {
	// Leakage is the residual '1'-state amplitude (0 ≤ Leakage < 1).
	Leakage float64
}

// Name implements Modulation.
func (OOK) Name() string { return "OOK" }

// BitsPerSymbol implements Modulation.
func (OOK) BitsPerSymbol() int { return 1 }

// Modulate implements Modulation.
func (m OOK) Modulate(dst []complex128, bits []byte) ([]complex128, error) {
	for _, b := range bits {
		switch b {
		case 0:
			dst = append(dst, 1)
		case 1:
			dst = append(dst, complex(m.Leakage, 0))
		default:
			return nil, fmt.Errorf("phy: bit value %d (want 0 or 1)", b)
		}
	}
	return dst, nil
}

// Demodulate implements Modulation: amplitude threshold halfway between
// the two nominal levels.
func (m OOK) Demodulate(dst []byte, syms []complex128) []byte {
	thr := (1 + m.Leakage) / 2
	for _, s := range syms {
		if cmplx.Abs(s) >= thr {
			dst = append(dst, 0)
		} else {
			dst = append(dst, 1)
		}
	}
	return dst
}

// ASK is M-level amplitude-shift keying (M a power of two ≥ 2), the
// natural extension of the paper's modulator: driving subsets of the
// tag's switches yields intermediate reflection amplitudes. Levels are
// uniformly spaced in amplitude from 0 to 1, Gray-coded.
type ASK struct {
	// M is the constellation size.
	M int
}

// Name implements Modulation.
func (a ASK) Name() string { return fmt.Sprintf("%d-ASK", a.M) }

// BitsPerSymbol implements Modulation.
func (a ASK) BitsPerSymbol() int {
	return bits.Len(uint(a.M)) - 1
}

// levels returns the amplitude of each Gray index.
func (a ASK) levels() []float64 {
	out := make([]float64, a.M)
	for i := range out {
		out[i] = float64(i) / float64(a.M-1)
	}
	return out
}

// Modulate implements Modulation.
func (a ASK) Modulate(dst []complex128, bitsIn []byte) ([]complex128, error) {
	k := a.BitsPerSymbol()
	if a.M < 2 || (a.M&(a.M-1)) != 0 {
		return nil, fmt.Errorf("phy: ASK order %d must be a power of two ≥ 2", a.M)
	}
	if len(bitsIn)%k != 0 {
		return nil, fmt.Errorf("phy: bit count %d not a multiple of %d", len(bitsIn), k)
	}
	// Levels are computed inline (amplitude i/(M−1)) rather than via
	// levels() so modulation stays allocation-free.
	den := float64(a.M - 1)
	for i := 0; i < len(bitsIn); i += k {
		idx := 0
		for j := 0; j < k; j++ {
			b := bitsIn[i+j]
			if b > 1 {
				return nil, fmt.Errorf("phy: bit value %d", b)
			}
			idx = idx<<1 | int(b)
		}
		dst = append(dst, complex(float64(grayToBinary(idx))/den, 0))
	}
	return dst, nil
}

// Demodulate implements Modulation: nearest amplitude level, Gray-decoded.
func (a ASK) Demodulate(dst []byte, syms []complex128) []byte {
	k := a.BitsPerSymbol()
	den := float64(a.M - 1)
	for _, s := range syms {
		amp := cmplx.Abs(s)
		best, bestD := 0, math.Inf(1)
		for i := 0; i < a.M; i++ {
			if d := math.Abs(amp - float64(i)/den); d < bestD {
				best, bestD = i, d
			}
		}
		g := binaryToGray(best)
		for j := k - 1; j >= 0; j-- {
			dst = append(dst, byte(g>>uint(j))&1)
		}
	}
	return dst
}

func binaryToGray(b int) int { return b ^ (b >> 1) }

func grayToBinary(g int) int {
	b := 0
	for ; g != 0; g >>= 1 {
		b ^= g
	}
	return b
}

// BPSK is binary phase-shift keying — the other scheme the paper names as
// backscatter-feasible (§1). Bit 0 → +1, bit 1 → −1.
type BPSK struct{}

// Name implements Modulation.
func (BPSK) Name() string { return "BPSK" }

// BitsPerSymbol implements Modulation.
func (BPSK) BitsPerSymbol() int { return 1 }

// Modulate implements Modulation.
func (BPSK) Modulate(dst []complex128, bits []byte) ([]complex128, error) {
	for _, b := range bits {
		switch b {
		case 0:
			dst = append(dst, 1)
		case 1:
			dst = append(dst, -1)
		default:
			return nil, fmt.Errorf("phy: bit value %d", b)
		}
	}
	return dst, nil
}

// Demodulate implements Modulation.
func (BPSK) Demodulate(dst []byte, syms []complex128) []byte {
	for _, s := range syms {
		if real(s) >= 0 {
			dst = append(dst, 0)
		} else {
			dst = append(dst, 1)
		}
	}
	return dst
}

// QPSK is quadrature PSK, Gray-mapped, for the reader-side reference
// curves. Two bits per symbol: (b0,b1) → (±1±j)/√2.
type QPSK struct{}

// Name implements Modulation.
func (QPSK) Name() string { return "QPSK" }

// BitsPerSymbol implements Modulation.
func (QPSK) BitsPerSymbol() int { return 2 }

// Modulate implements Modulation.
func (QPSK) Modulate(dst []complex128, bits []byte) ([]complex128, error) {
	if len(bits)%2 != 0 {
		return nil, fmt.Errorf("phy: QPSK needs an even bit count, got %d", len(bits))
	}
	const a = 0.7071067811865476
	for i := 0; i < len(bits); i += 2 {
		if bits[i] > 1 || bits[i+1] > 1 {
			return nil, fmt.Errorf("phy: bit value out of range")
		}
		re, im := a, a
		if bits[i] == 1 {
			re = -a
		}
		if bits[i+1] == 1 {
			im = -a
		}
		dst = append(dst, complex(re, im))
	}
	return dst, nil
}

// Demodulate implements Modulation.
func (QPSK) Demodulate(dst []byte, syms []complex128) []byte {
	for _, s := range syms {
		b0, b1 := byte(0), byte(0)
		if real(s) < 0 {
			b0 = 1
		}
		if imag(s) < 0 {
			b1 = 1
		}
		dst = append(dst, b0, b1)
	}
	return dst
}
