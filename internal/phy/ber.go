package phy

import (
	"fmt"
	"math"

	"github.com/mmtag/mmtag/internal/dsp"
	"github.com/mmtag/mmtag/internal/par"
	"github.com/mmtag/mmtag/internal/rng"
	"github.com/mmtag/mmtag/internal/units"
)

// SNR conventions used throughout:
//
//   - snr is the linear ratio of *average symbol power* to *total complex
//     noise power* at the decision point (after matched filtering).
//   - Coherent detection with per-quadrature noise σ² = N/2 is assumed.
//
// With these conventions the analytic curves below hold exactly, and the
// Monte-Carlo measurements in this package reproduce them. Note the
// paper's rate table instead uses a fixed "ASK needs 7 dB for BER 10⁻³"
// constant from a textbook table (units.ASKRequiredSNRdB); our coherent
// ideal-OOK curve needs 9.8 dB average SNR for 10⁻³, the textbook figure
// corresponding to a different SNR normalization. Both are provided; the
// figure-regeneration code uses the paper's constant to match Fig. 7.

// BEROOK returns the analytic bit-error rate of coherent OOK with
// extinction leakage ε at the given average-SNR (linear): the two
// amplitudes are A and ε·A, the threshold is midway, and
//
//	Pb = Q( (1−ε)·A / (2σ) ),  σ² = N/2 per quadrature.
//
// With average symbol power (1+ε²)A²/2 = snr·N this reduces to
// Pb = Q( (1−ε)·√(snr/(1+ε²)) ).
func BEROOK(snr, leakage float64) float64 {
	if snr <= 0 {
		return 0.5
	}
	e := leakage
	return units.Q((1 - e) * math.Sqrt(snr/(1+e*e)))
}

// BEROOKIdeal is BEROOK with perfect extinction: Pb = Q(√snr).
func BEROOKIdeal(snr float64) float64 { return BEROOK(snr, 0) }

// BEROOKEnvelope returns the analytic bit-error rate of OOK with perfect
// extinction under *envelope* (noncoherent magnitude) detection — what
// OOK.Demodulate actually implements, since a backscatter reader does not
// know the carrier phase. With amplitude A, threshold A/2, total complex
// noise power N (σ² = N/2 per quadrature):
//
//	Pb = ½·[ Q(A/(2σ)) + e^{−A²/(4N)} ]
//
// (Gaussian approximation of the Rician '0' symbol, exact Rayleigh tail
// for the empty '1' symbol). With average power A²/2 = snr·N this becomes
// Pb = ½·[Q(√snr) + e^{−snr/2}].
func BEROOKEnvelope(snr float64) float64 {
	if snr <= 0 {
		return 0.5
	}
	return 0.5 * (units.Q(math.Sqrt(snr)) + math.Exp(-snr/2))
}

// RequiredSNROOK inverts BEROOKIdeal: the linear average SNR needed for a
// target BER.
func RequiredSNROOK(ber float64) float64 {
	x := units.QInv(ber)
	return x * x
}

// BERBPSK returns the analytic BPSK bit-error rate at average SNR (linear,
// Es = Eb): Pb = Q(√(2·snr)).
func BERBPSK(snr float64) float64 {
	if snr <= 0 {
		return 0.5
	}
	return units.Q(math.Sqrt(2 * snr))
}

// BERQPSK returns the Gray-coded QPSK bit-error rate at average symbol SNR
// (linear): Pb = Q(√snr) per bit.
func BERQPSK(snr float64) float64 {
	if snr <= 0 {
		return 0.5
	}
	return units.Q(math.Sqrt(snr))
}

// BERASK returns the approximate bit-error rate of coherent Gray-coded
// M-ASK with levels uniform in [0,1] at average symbol SNR (linear).
// Adjacent-level spacing d = 1/(M−1); average power Σl²/M; nearest-level
// errors dominate:
//
//	Pb ≈ 2(M−1)/(M·log2 M) · Q( d/(2σ) ).
func BERASK(m int, snr float64) (float64, error) {
	if m < 2 || m&(m-1) != 0 {
		return 0, fmt.Errorf("phy: ASK order %d must be a power of two ≥ 2", m)
	}
	if snr <= 0 {
		return 0.5, nil
	}
	k := math.Log2(float64(m))
	d := 1.0 / float64(m-1)
	var avg float64
	for i := 0; i < m; i++ {
		l := float64(i) / float64(m-1)
		avg += l * l
	}
	avg /= float64(m)
	// snr = avg / N  ⇒  N = avg/snr; σ = sqrt(N/2).
	sigma := math.Sqrt(avg / snr / 2)
	pSym := 2 * float64(m-1) / float64(m) * units.Q(d/(2*sigma))
	return pSym / k, nil
}

// mcChunkBits is the Monte-Carlo shard size in bits. It is a fixed
// constant — never derived from the worker count — so the shard
// boundaries, and with them every shard's rng.Sequence sub-stream, are
// identical no matter how many workers execute them.
const mcChunkBits = 1 << 13

// mcBatchChunks is how many chunks one par work item processes back to
// back. Batching amortizes the pool's per-item scheduling and the
// workspace warm-up over several chunks without touching the chunk
// boundaries themselves: each chunk still draws from the sub-stream
// keyed by its own global index, so results stay byte-identical to the
// unbatched (and any-worker-count) execution.
const mcBatchChunks = 8

// MonteCarloBER measures the bit-error rate of a modulation over an AWGN
// channel at the given average SNR (dB) by direct simulation of nBits
// bits, using symbol-level transmission (matched filter output domain).
//
// The simulation is sharded into fixed-size bit batches executed on the
// par worker pool. Each shard draws bits and noise from its own
// index-keyed sub-stream (src.SplitSeq().At(shard)), so the measured BER
// is byte-identical for any worker count; src itself advances by exactly
// one draw per call.
func MonteCarloBER(mod Modulation, snrDB float64, nBits int, src *rng.Source) (float64, error) {
	if nBits <= 0 {
		return 0, fmt.Errorf("phy: need a positive bit count")
	}
	k := mod.BitsPerSymbol()
	nBits -= nBits % k
	if nBits == 0 {
		nBits = k
	}
	chunk := mcChunkBits - mcChunkBits%k
	if chunk == 0 {
		chunk = k
	}
	nChunks := (nBits + chunk - 1) / chunk
	seq := src.SplitSeq()
	span := func(i int) (lo, hi int) {
		lo = i * chunk
		hi = lo + chunk
		if hi > nBits {
			hi = nBits
		}
		return lo, hi
	}
	// Per-shard results are small value structs: the bit and symbol
	// buffers live in per-worker workspaces and never survive a shard, so
	// the sweep is allocation-free per item in steady state.
	type shardStat struct {
		power float64 // sum of |s|² over the shard's symbols
		syms  int
		errs  int
	}
	stats := make([]shardStat, nChunks)
	nBatches := (nChunks + mcBatchChunks - 1) / mcBatchChunks
	batchSpan := func(b int) (lo, hi int) {
		lo = b * mcBatchChunks
		hi = lo + mcBatchChunks
		if hi > nChunks {
			hi = nChunks
		}
		return lo, hi
	}
	// Pass 1: per shard, draw bits and modulate; accumulate constellation
	// power locally so the global average can be formed exactly as the
	// sequential code did (sum over all symbols / count). Chunks run in
	// batches per work item (mcBatchChunks) to amortize pool scheduling;
	// each chunk's draws stay keyed by its own global index.
	err := par.ForEachErrWith(nBatches, dsp.NewWorkspace, func(ws *dsp.Workspace, b int) error {
		clo, chi := batchSpan(b)
		for i := clo; i < chi; i++ {
			ws.Reset()
			lo, hi := span(i)
			s := seq.At(uint64(i))
			bits := s.Bits(ws.Bytes(hi - lo))
			syms, err := mod.Modulate(ws.Complex((hi - lo) / k)[:0], bits)
			if err != nil {
				return err
			}
			st := &stats[i]
			st.syms = len(syms)
			for _, v := range syms {
				st.power += real(v)*real(v) + imag(v)*imag(v)
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	// Scale noise for the requested average SNR given the constellation's
	// actual average power across every shard.
	var p float64
	nSyms := 0
	for i := range stats {
		p += stats[i].power
		nSyms += stats[i].syms
	}
	p /= float64(nSyms)
	noisePower := p / math.Pow(10, snrDB/10)
	// Pass 2: redraw the shard's bits from the same index-keyed sub-stream
	// (seq.At is idempotent, so the regenerated source sits at exactly the
	// position the old retained-buffer code had after pass 1), then add
	// AWGN, demodulate and count errors. Redrawing trades a little compute
	// for not retaining nChunks bit/symbol buffers across the barrier.
	err = par.ForEachErrWith(nBatches, dsp.NewWorkspace, func(ws *dsp.Workspace, b int) error {
		clo, chi := batchSpan(b)
		for i := clo; i < chi; i++ {
			ws.Reset()
			lo, hi := span(i)
			s := seq.At(uint64(i))
			bits := s.Bits(ws.Bytes(hi - lo))
			syms, err := mod.Modulate(ws.Complex((hi - lo) / k)[:0], bits)
			if err != nil {
				return err
			}
			s.AWGN(syms, noisePower)
			got := mod.Demodulate(ws.Bytes(len(bits))[:0], syms)
			errs := 0
			for j := range bits {
				if got[j] != bits[j] {
					errs++
				}
			}
			stats[i].errs = errs
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	errs := 0
	for i := range stats {
		errs += stats[i].errs
	}
	return float64(errs) / float64(nBits), nil
}

// WaterfallPoint is one (SNR, BER) sample of a waterfall curve.
type WaterfallPoint struct {
	SNRdB       float64
	BER         float64
	AnalyticBER float64
}

// Waterfall sweeps SNR from lo to hi dB in the given step, measuring
// Monte-Carlo BER with nBits per point and attaching the analytic value.
func Waterfall(mod Modulation, analytic func(snr float64) float64, loDB, hiDB, stepDB float64, nBits int, src *rng.Source) ([]WaterfallPoint, error) {
	if stepDB <= 0 || hiDB < loDB {
		return nil, fmt.Errorf("phy: bad waterfall sweep [%g,%g] step %g", loDB, hiDB, stepDB)
	}
	var out []WaterfallPoint
	for s := loDB; s <= hiDB+1e-9; s += stepDB {
		ber, err := MonteCarloBER(mod, s, nBits, src)
		if err != nil {
			return nil, err
		}
		p := WaterfallPoint{SNRdB: s, BER: ber}
		if analytic != nil {
			p.AnalyticBER = analytic(math.Pow(10, s/10))
		}
		out = append(out, p)
	}
	return out, nil
}
