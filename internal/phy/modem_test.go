package phy

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"github.com/mmtag/mmtag/internal/rng"
)

func roundTrip(t *testing.T, m Modulation, bits []byte) {
	t.Helper()
	syms, err := m.Modulate(nil, bits)
	if err != nil {
		t.Fatalf("%s modulate: %v", m.Name(), err)
	}
	if len(syms) != len(bits)/m.BitsPerSymbol() {
		t.Fatalf("%s: %d symbols for %d bits", m.Name(), len(syms), len(bits))
	}
	got := m.Demodulate(nil, syms)
	if len(got) != len(bits) {
		t.Fatalf("%s: demod length %d", m.Name(), len(got))
	}
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("%s: bit %d flipped without noise", m.Name(), i)
		}
	}
}

func TestNoiselessRoundTrips(t *testing.T) {
	src := rng.New(1)
	for _, m := range []Modulation{OOK{}, OOK{Leakage: 0.1}, ASK{M: 2}, ASK{M: 4}, ASK{M: 8}, BPSK{}, QPSK{}} {
		n := 240 // multiple of every BitsPerSymbol in play
		roundTrip(t, m, src.Bits(make([]byte, n)))
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		bits := src.Bits(make([]byte, 96))
		for _, m := range []Modulation{OOK{}, ASK{M: 4}, QPSK{}} {
			syms, err := m.Modulate(nil, bits)
			if err != nil {
				return false
			}
			got := m.Demodulate(nil, syms)
			for i := range bits {
				if got[i] != bits[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOOKLevels(t *testing.T) {
	m := OOK{Leakage: 0.2}
	syms, _ := m.Modulate(nil, []byte{0, 1})
	if syms[0] != 1 {
		t.Errorf("bit 0 (reflecting) should be amplitude 1: %v", syms[0])
	}
	if cmplx.Abs(syms[1]-0.2) > 1e-15 {
		t.Errorf("bit 1 (absorbed) should be the leakage: %v", syms[1])
	}
	if _, err := m.Modulate(nil, []byte{2}); err == nil {
		t.Error("invalid bit should fail")
	}
}

func TestASKGrayMapping(t *testing.T) {
	m := ASK{M: 4}
	if m.BitsPerSymbol() != 2 {
		t.Fatalf("4-ASK bits/symbol %d", m.BitsPerSymbol())
	}
	// Adjacent amplitude levels must differ in exactly one bit
	// (Gray property) — check by demodulating the exact level points.
	lv := m.levels()
	var prev []byte
	for _, l := range lv {
		got := m.Demodulate(nil, []complex128{complex(l, 0)})
		if prev != nil {
			diff := 0
			for i := range got {
				if got[i] != prev[i] {
					diff++
				}
			}
			if diff != 1 {
				t.Errorf("levels not Gray coded: %v -> %v", prev, got)
			}
		}
		prev = got
	}
}

func TestASKValidation(t *testing.T) {
	if _, err := (ASK{M: 3}).Modulate(nil, []byte{0, 1}); err == nil {
		t.Error("non-power-of-two order should fail")
	}
	if _, err := (ASK{M: 4}).Modulate(nil, []byte{0}); err == nil {
		t.Error("odd bit count for 4-ASK should fail")
	}
	if _, err := (ASK{M: 4}).Modulate(nil, []byte{0, 7}); err == nil {
		t.Error("invalid bit should fail")
	}
}

func TestGrayCodeRoundTrip(t *testing.T) {
	for b := 0; b < 64; b++ {
		if got := grayToBinary(binaryToGray(b)); got != b {
			t.Errorf("gray round trip %d -> %d", b, got)
		}
	}
	// Consecutive Gray codes differ by one bit.
	for b := 0; b < 63; b++ {
		x := binaryToGray(b) ^ binaryToGray(b+1)
		if x&(x-1) != 0 {
			t.Errorf("gray(%d) and gray(%d) differ in >1 bit", b, b+1)
		}
	}
}

func TestBPSKQPSKConstellations(t *testing.T) {
	b, _ := BPSK{}.Modulate(nil, []byte{0, 1})
	if b[0] != 1 || b[1] != -1 {
		t.Errorf("BPSK: %v", b)
	}
	q, _ := QPSK{}.Modulate(nil, []byte{0, 0, 1, 1})
	if math.Abs(cmplx.Abs(q[0])-1) > 1e-12 || math.Abs(cmplx.Abs(q[1])-1) > 1e-12 {
		t.Errorf("QPSK symbols must be unit power: %v", q)
	}
	if real(q[0]) < 0 || imag(q[0]) < 0 || real(q[1]) > 0 || imag(q[1]) > 0 {
		t.Errorf("QPSK quadrants wrong: %v", q)
	}
	if _, err := (QPSK{}).Modulate(nil, []byte{0}); err == nil {
		t.Error("odd bit count should fail")
	}
	if _, err := (QPSK{}).Modulate(nil, []byte{0, 9}); err == nil {
		t.Error("bad bit should fail")
	}
	if _, err := (BPSK{}).Modulate(nil, []byte{9}); err == nil {
		t.Error("bad bit should fail")
	}
}

func TestNames(t *testing.T) {
	if (OOK{}).Name() != "OOK" || (ASK{M: 4}).Name() != "4-ASK" ||
		(BPSK{}).Name() != "BPSK" || (QPSK{}).Name() != "QPSK" {
		t.Error("scheme names wrong")
	}
}
