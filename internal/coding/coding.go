// Package coding provides the simple forward-error-correction a
// backscatter tag can afford: Hamming(7,4) block coding (single-error
// correction per codeword, encodable with a handful of XOR gates — well
// inside a batteryless logic budget) and a block interleaver that spreads
// burst errors across codewords. Together they harden the tag's frames
// against the fading dips of E13 without raising transmit power the tag
// does not have.
package coding

import "fmt"

// Hamming74 is the classic (7,4) code: 4 data bits per 7-bit codeword,
// corrects any single bit error per codeword.
type Hamming74 struct{}

// Rate returns the code rate (4/7).
func (Hamming74) Rate() float64 { return 4.0 / 7.0 }

// encodeNibble produces the 7 code bits for 4 data bits d0..d3 using the
// standard generator: p1 = d0⊕d1⊕d3, p2 = d0⊕d2⊕d3, p3 = d1⊕d2⊕d3,
// codeword layout [p1 p2 d0 p3 d1 d2 d3].
func encodeNibble(d [4]byte) [7]byte {
	p1 := d[0] ^ d[1] ^ d[3]
	p2 := d[0] ^ d[2] ^ d[3]
	p3 := d[1] ^ d[2] ^ d[3]
	return [7]byte{p1, p2, d[0], p3, d[1], d[2], d[3]}
}

// Encode maps data bits (each byte 0/1, length a multiple of 4) to code
// bits (7 per 4).
func (Hamming74) Encode(dataBits []byte) ([]byte, error) {
	if len(dataBits)%4 != 0 {
		return nil, fmt.Errorf("coding: data bit count %d not a multiple of 4", len(dataBits))
	}
	out := make([]byte, 0, len(dataBits)/4*7)
	for i := 0; i < len(dataBits); i += 4 {
		var d [4]byte
		for j := 0; j < 4; j++ {
			b := dataBits[i+j]
			if b > 1 {
				return nil, fmt.Errorf("coding: bit value %d", b)
			}
			d[j] = b
		}
		cw := encodeNibble(d)
		out = append(out, cw[:]...)
	}
	return out, nil
}

// Decode maps code bits back to data bits, correcting up to one error per
// 7-bit codeword. It returns the data bits and the number of corrections
// applied.
func (Hamming74) Decode(codeBits []byte) (dataBits []byte, corrected int, err error) {
	if len(codeBits)%7 != 0 {
		return nil, 0, fmt.Errorf("coding: code bit count %d not a multiple of 7", len(codeBits))
	}
	out := make([]byte, 0, len(codeBits)/7*4)
	for i := 0; i < len(codeBits); i += 7 {
		var cw [7]byte
		for j := 0; j < 7; j++ {
			b := codeBits[i+j]
			if b > 1 {
				return nil, 0, fmt.Errorf("coding: bit value %d", b)
			}
			cw[j] = b
		}
		// Syndrome: s1 checks positions 1,3,5,7; s2: 2,3,6,7; s3: 4,5,6,7
		// (1-indexed).
		s1 := cw[0] ^ cw[2] ^ cw[4] ^ cw[6]
		s2 := cw[1] ^ cw[2] ^ cw[5] ^ cw[6]
		s3 := cw[3] ^ cw[4] ^ cw[5] ^ cw[6]
		syndrome := int(s1) | int(s2)<<1 | int(s3)<<2
		if syndrome != 0 {
			cw[syndrome-1] ^= 1
			corrected++
		}
		out = append(out, cw[2], cw[4], cw[5], cw[6])
	}
	return out, corrected, nil
}

// Interleaver is a rows×cols block interleaver: bits written row-major
// are read column-major, so a burst of ≤ rows consecutive channel errors
// lands in distinct codewords.
type Interleaver struct {
	Rows, Cols int
}

// BlockSize returns the interleaver's span in bits.
func (iv Interleaver) BlockSize() int { return iv.Rows * iv.Cols }

// validate checks the geometry.
func (iv Interleaver) validate(n int) error {
	if iv.Rows < 1 || iv.Cols < 1 {
		return fmt.Errorf("coding: interleaver %dx%d invalid", iv.Rows, iv.Cols)
	}
	if n%iv.BlockSize() != 0 {
		return fmt.Errorf("coding: length %d not a multiple of block %d", n, iv.BlockSize())
	}
	return nil
}

// Interleave permutes bits block by block.
func (iv Interleaver) Interleave(bits []byte) ([]byte, error) {
	if err := iv.validate(len(bits)); err != nil {
		return nil, err
	}
	out := make([]byte, len(bits))
	bs := iv.BlockSize()
	for base := 0; base < len(bits); base += bs {
		k := 0
		for c := 0; c < iv.Cols; c++ {
			for r := 0; r < iv.Rows; r++ {
				out[base+k] = bits[base+r*iv.Cols+c]
				k++
			}
		}
	}
	return out, nil
}

// Deinterleave inverts Interleave.
func (iv Interleaver) Deinterleave(bits []byte) ([]byte, error) {
	if err := iv.validate(len(bits)); err != nil {
		return nil, err
	}
	out := make([]byte, len(bits))
	bs := iv.BlockSize()
	for base := 0; base < len(bits); base += bs {
		k := 0
		for c := 0; c < iv.Cols; c++ {
			for r := 0; r < iv.Rows; r++ {
				out[base+r*iv.Cols+c] = bits[base+k]
				k++
			}
		}
	}
	return out, nil
}

// PadTo appends zero bits until len(bits) is a multiple of m, returning
// the padded slice and the number of pad bits.
func PadTo(bits []byte, m int) ([]byte, int) {
	if m <= 0 {
		return bits, 0
	}
	pad := (m - len(bits)%m) % m
	for i := 0; i < pad; i++ {
		bits = append(bits, 0)
	}
	return bits, pad
}
