package coding

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"github.com/mmtag/mmtag/internal/rng"
)

func TestHammingRoundTrip(t *testing.T) {
	h := Hamming74{}
	src := rng.New(1)
	data := src.Bits(make([]byte, 400))
	code, err := h.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(code) != 700 {
		t.Fatalf("code length %d", len(code))
	}
	got, corrected, err := h.Decode(code)
	if err != nil {
		t.Fatal(err)
	}
	if corrected != 0 {
		t.Errorf("clean decode corrected %d", corrected)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip mismatch")
	}
	if math.Abs(h.Rate()-4.0/7.0) > 1e-15 {
		t.Error("rate")
	}
}

func TestHammingCorrectsSingleErrors(t *testing.T) {
	// Flip every single position of every codeword: all must correct.
	h := Hamming74{}
	src := rng.New(2)
	data := src.Bits(make([]byte, 40))
	code, _ := h.Encode(data)
	for pos := 0; pos < len(code); pos++ {
		bad := append([]byte{}, code...)
		bad[pos] ^= 1
		got, corrected, err := h.Decode(bad)
		if err != nil {
			t.Fatal(err)
		}
		if corrected != 1 {
			t.Fatalf("pos %d: corrected %d", pos, corrected)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("pos %d: data corrupted", pos)
		}
	}
}

func TestHammingDoubleErrorsFail(t *testing.T) {
	// Two errors in one codeword exceed the code's strength: the decode
	// must (generally) produce wrong data — this documents the limit.
	h := Hamming74{}
	data := []byte{1, 0, 1, 1}
	code, _ := h.Encode(data)
	wrong := 0
	for i := 0; i < 7; i++ {
		for j := i + 1; j < 7; j++ {
			bad := append([]byte{}, code...)
			bad[i] ^= 1
			bad[j] ^= 1
			got, _, err := h.Decode(bad)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				wrong++
			}
		}
	}
	if wrong == 0 {
		t.Error("double errors should defeat Hamming(7,4)")
	}
}

func TestHammingValidation(t *testing.T) {
	h := Hamming74{}
	if _, err := h.Encode(make([]byte, 5)); err == nil {
		t.Error("non-multiple-of-4 should fail")
	}
	if _, err := h.Encode([]byte{0, 1, 2, 0}); err == nil {
		t.Error("bad bit should fail")
	}
	if _, _, err := h.Decode(make([]byte, 6)); err == nil {
		t.Error("non-multiple-of-7 should fail")
	}
	if _, _, err := h.Decode([]byte{0, 1, 2, 0, 0, 0, 0}); err == nil {
		t.Error("bad code bit should fail")
	}
}

func TestInterleaverRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		iv := Interleaver{Rows: 7, Cols: 8}
		bits := src.Bits(make([]byte, iv.BlockSize()*3))
		il, err := iv.Interleave(bits)
		if err != nil {
			return false
		}
		back, err := iv.Deinterleave(il)
		return err == nil && bytes.Equal(back, bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestInterleaverSpreadsBursts(t *testing.T) {
	// A burst of `rows` consecutive channel errors must land in distinct
	// codewords after deinterleaving: combined with Hamming, the whole
	// burst corrects.
	h := Hamming74{}
	iv := Interleaver{Rows: 7, Cols: 7} // one block = 7 codewords
	src := rng.New(3)
	data := src.Bits(make([]byte, 28)) // 7 codewords of data
	code, _ := h.Encode(data)
	il, err := iv.Interleave(code)
	if err != nil {
		t.Fatal(err)
	}
	// Burst of 7 consecutive errors on the channel.
	for i := 10; i < 17; i++ {
		il[i] ^= 1
	}
	deil, _ := iv.Deinterleave(il)
	got, corrected, err := h.Decode(deil)
	if err != nil {
		t.Fatal(err)
	}
	if corrected != 7 {
		t.Errorf("corrected %d, want 7", corrected)
	}
	if !bytes.Equal(got, data) {
		t.Error("burst not corrected")
	}
	// Without interleaving the same burst kills multiple bits in the same
	// codewords.
	bad := append([]byte{}, code...)
	for i := 10; i < 17; i++ {
		bad[i] ^= 1
	}
	got2, _, _ := h.Decode(bad)
	if bytes.Equal(got2, data) {
		t.Error("uninterleaved burst unexpectedly corrected (flukes possible but not with this seed)")
	}
}

func TestInterleaverValidation(t *testing.T) {
	iv := Interleaver{Rows: 0, Cols: 4}
	if _, err := iv.Interleave(make([]byte, 4)); err == nil {
		t.Error("zero rows should fail")
	}
	iv = Interleaver{Rows: 2, Cols: 3}
	if _, err := iv.Interleave(make([]byte, 7)); err == nil {
		t.Error("non-multiple length should fail")
	}
	if _, err := iv.Deinterleave(make([]byte, 7)); err == nil {
		t.Error("non-multiple length should fail")
	}
}

func TestPadTo(t *testing.T) {
	bits, pad := PadTo([]byte{1, 1, 1}, 4)
	if pad != 1 || len(bits) != 4 || bits[3] != 0 {
		t.Errorf("pad: %v %d", bits, pad)
	}
	bits, pad = PadTo([]byte{1, 1, 1, 1}, 4)
	if pad != 0 || len(bits) != 4 {
		t.Error("no-op pad failed")
	}
	_, pad = PadTo(nil, 0)
	if pad != 0 {
		t.Error("m=0 pad")
	}
}
