package frame

import (
	"testing"

	"github.com/mmtag/mmtag/internal/rng"
)

// TestParserNeverPanicsOnGarbage throws random byte soup at the parser:
// it must reject or flag, never panic, and essentially never verify.
func TestParserNeverPanicsOnGarbage(t *testing.T) {
	src := rng.New(0xF00D)
	p := Parser{}
	falseAccepts := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		n := src.Intn(64)
		data := src.Bytes(make([]byte, n))
		var d Decoded
		if err := p.Decode(data, &d); err == nil && d.Trailer.OK {
			falseAccepts++
		}
	}
	// A random buffer must pass version+MCS+length checks AND a CRC-16;
	// the expected rate is ≪ 1e-4. Allow a couple of collisions.
	if falseAccepts > 3 {
		t.Errorf("%d false accepts in %d garbage frames", falseAccepts, trials)
	}
}

// TestParserTruncationSweep decodes every prefix of a valid burst: all
// must fail cleanly except the full frame.
func TestParserTruncationSweep(t *testing.T) {
	raw, err := Encode(0x0102, MCSOOK, []byte("truncate me"))
	if err != nil {
		t.Fatal(err)
	}
	p := Parser{Strict: true}
	for cut := 0; cut < len(raw); cut++ {
		var d Decoded
		if err := p.Decode(raw[:cut], &d); err == nil {
			t.Fatalf("prefix of %d bytes decoded", cut)
		}
	}
	var d Decoded
	if err := p.Decode(raw, &d); err != nil {
		t.Fatalf("full frame failed: %v", err)
	}
}

// TestParserExtraTrailingBytes verifies the parser tolerates captures
// longer than the frame (trailing noise bytes are normal after a burst).
func TestParserExtraTrailingBytes(t *testing.T) {
	raw, _ := Encode(9, MCSOOK, []byte{1, 2, 3})
	padded := append(append([]byte{}, raw...), 0xAA, 0xBB, 0xCC)
	var d Decoded
	if err := (&Parser{Strict: true}).Decode(padded, &d); err != nil {
		t.Fatalf("padded frame failed: %v", err)
	}
	if string(d.Payload.Data) != "\x01\x02\x03" {
		t.Error("payload corrupted by padding")
	}
}

// TestRandomPayloadStress round-trips many random payload sizes.
func TestRandomPayloadStress(t *testing.T) {
	src := rng.New(0xBEEF)
	for i := 0; i < 500; i++ {
		n := src.Intn(MaxPayload + 1)
		payload := src.Bytes(make([]byte, n))
		raw, err := Encode(uint16(i), MCSBPSK, payload)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		var d Decoded
		if err := (&Parser{Strict: true}).Decode(raw, &d); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if int(d.Header.Length) != n {
			t.Fatalf("n=%d: length %d", n, d.Header.Length)
		}
	}
}
