// Package frame defines the over-the-air burst format a mmTag tag
// backscatters and the reader decodes, structured as a small layered
// packet model in the style of gopacket: each burst is
//
//	Preamble (13 Barker chips) | Header (6 bytes) | Payload | CRC-16
//
// with the header carrying version, tag ID, payload length and the
// modulation-and-coding index. Layers expose Contents/Payload accessors;
// a zero-allocation Parser decodes into preallocated layer structs, and a
// SerializeBuffer builds bursts by prepending layers, mirroring the
// gopacket serialization contract.
package frame

import (
	"encoding/binary"
	"fmt"
)

// Version is the frame format version emitted by this package.
const Version = 1

// HeaderLen is the fixed encoded header size in bytes.
const HeaderLen = 6

// CRCLen is the trailer length in bytes.
const CRCLen = 2

// MaxPayload is the largest payload a single burst may carry (bounded so
// a length field corrupted by noise cannot cause huge allocations).
const MaxPayload = 2048

// MCS identifies the modulation-and-coding scheme of the payload.
type MCS uint8

// Defined MCS indices.
const (
	MCSOOK MCS = iota
	MCSASK4
	MCSBPSK
	mcsCount
)

// String returns the scheme name.
func (m MCS) String() string {
	switch m {
	case MCSOOK:
		return "OOK"
	case MCSASK4:
		return "4-ASK"
	case MCSBPSK:
		return "BPSK"
	default:
		return fmt.Sprintf("MCS(%d)", uint8(m))
	}
}

// Valid reports whether the MCS index is defined.
func (m MCS) Valid() bool { return m < mcsCount }

// LayerType identifies a decoded layer.
type LayerType int

// The layer types of a tag burst.
const (
	LayerTypeHeader LayerType = iota + 1
	LayerTypePayload
	LayerTypeTrailer
)

// String names the layer type.
func (t LayerType) String() string {
	switch t {
	case LayerTypeHeader:
		return "Header"
	case LayerTypePayload:
		return "Payload"
	case LayerTypeTrailer:
		return "Trailer"
	default:
		return fmt.Sprintf("LayerType(%d)", int(t))
	}
}

// Layer is one decoded slice of a burst, following the gopacket contract:
// LayerContents is the bytes belonging to this layer, LayerPayload the
// bytes it carries for the layers above.
type Layer interface {
	LayerType() LayerType
	LayerContents() []byte
	LayerPayload() []byte
}

// Header is the burst header layer.
type Header struct {
	Version uint8
	TagID   uint16
	Length  uint16 // payload byte count
	MCS     MCS

	contents []byte
	payload  []byte
}

// LayerType implements Layer.
func (h *Header) LayerType() LayerType { return LayerTypeHeader }

// LayerContents implements Layer.
func (h *Header) LayerContents() []byte { return h.contents }

// LayerPayload implements Layer.
func (h *Header) LayerPayload() []byte { return h.payload }

// encode writes the header fields into dst (len ≥ HeaderLen).
func (h *Header) encode(dst []byte) {
	dst[0] = h.Version
	binary.BigEndian.PutUint16(dst[1:3], h.TagID)
	binary.BigEndian.PutUint16(dst[3:5], h.Length)
	dst[5] = uint8(h.MCS)
}

// DecodeFromBytes parses the header from data, retaining references into
// it (NoCopy semantics — the caller owns the buffer).
func (h *Header) DecodeFromBytes(data []byte) error {
	if len(data) < HeaderLen {
		return fmt.Errorf("frame: header truncated: %d < %d bytes", len(data), HeaderLen)
	}
	h.Version = data[0]
	if h.Version != Version {
		return fmt.Errorf("frame: unsupported version %d", h.Version)
	}
	h.TagID = binary.BigEndian.Uint16(data[1:3])
	h.Length = binary.BigEndian.Uint16(data[3:5])
	h.MCS = MCS(data[5])
	if !h.MCS.Valid() {
		return fmt.Errorf("frame: invalid MCS %d", data[5])
	}
	if int(h.Length) > MaxPayload {
		return fmt.Errorf("frame: payload length %d exceeds max %d", h.Length, MaxPayload)
	}
	h.contents = data[:HeaderLen]
	h.payload = data[HeaderLen:]
	return nil
}

// Payload is the application-bytes layer.
type Payload struct {
	Data []byte
}

// LayerType implements Layer.
func (p *Payload) LayerType() LayerType { return LayerTypePayload }

// LayerContents implements Layer.
func (p *Payload) LayerContents() []byte { return p.Data }

// LayerPayload implements Layer.
func (p *Payload) LayerPayload() []byte { return nil }

// Trailer is the CRC layer.
type Trailer struct {
	CRC uint16
	OK  bool

	contents []byte
}

// LayerType implements Layer.
func (t *Trailer) LayerType() LayerType { return LayerTypeTrailer }

// LayerContents implements Layer.
func (t *Trailer) LayerContents() []byte { return t.contents }

// LayerPayload implements Layer.
func (t *Trailer) LayerPayload() []byte { return nil }

// CRC16 computes the CCITT-FALSE CRC-16 (poly 0x1021, init 0xFFFF) over
// data — the checksum RFID-class air protocols use.
func CRC16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// Encode serializes a complete burst (header ‖ payload ‖ CRC) for the
// given tag ID and MCS.
func Encode(tagID uint16, mcs MCS, payload []byte) ([]byte, error) {
	return AppendEncode(nil, tagID, mcs, payload)
}

// AppendEncode appends a complete burst (header ‖ payload ‖ CRC) to dst
// and returns the extended slice — the allocation-free form of Encode
// for callers with a reusable buffer.
func AppendEncode(dst []byte, tagID uint16, mcs MCS, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("frame: payload %d exceeds max %d", len(payload), MaxPayload)
	}
	if !mcs.Valid() {
		return nil, fmt.Errorf("frame: invalid MCS %d", mcs)
	}
	h := Header{Version: Version, TagID: tagID, Length: uint16(len(payload)), MCS: mcs}
	start := len(dst)
	var hb [HeaderLen]byte
	h.encode(hb[:])
	dst = append(dst, hb[:]...)
	dst = append(dst, payload...)
	crc := CRC16(dst[start:])
	dst = append(dst, byte(crc>>8), byte(crc))
	return dst, nil
}

// Decoded is a fully parsed burst.
type Decoded struct {
	Header  Header
	Payload Payload
	Trailer Trailer
}

// Layers returns the decoded layers in order.
func (d *Decoded) Layers() []Layer {
	return []Layer{&d.Header, &d.Payload, &d.Trailer}
}

// Parser decodes bursts into preallocated layers without allocating per
// packet (the DecodingLayerParser pattern).
type Parser struct {
	// Strict rejects bursts whose CRC fails; when false the decode
	// succeeds but Trailer.OK is false so the caller can count FER.
	Strict bool
}

// Decode parses data into d. It retains references into data.
func (p *Parser) Decode(data []byte, d *Decoded) error {
	if err := d.Header.DecodeFromBytes(data); err != nil {
		return err
	}
	rest := d.Header.LayerPayload()
	need := int(d.Header.Length) + CRCLen
	if len(rest) < need {
		return fmt.Errorf("frame: burst truncated: %d payload+CRC bytes, need %d", len(rest), need)
	}
	d.Payload.Data = rest[:d.Header.Length]
	crcStart := int(d.Header.Length)
	d.Trailer.contents = rest[crcStart : crcStart+CRCLen]
	d.Trailer.CRC = binary.BigEndian.Uint16(d.Trailer.contents)
	want := CRC16(data[:HeaderLen+int(d.Header.Length)])
	d.Trailer.OK = d.Trailer.CRC == want
	if p.Strict && !d.Trailer.OK {
		return fmt.Errorf("frame: CRC mismatch: got %04x, want %04x", d.Trailer.CRC, want)
	}
	return nil
}

// BitsFromBytes expands bytes to one-bit-per-byte MSB-first, the format
// the phy modulators consume. dst is reused if large enough.
func BitsFromBytes(dst []byte, data []byte) []byte {
	need := len(data) * 8
	if cap(dst) < need {
		dst = make([]byte, need)
	}
	dst = dst[:need]
	for i, b := range data {
		for j := 0; j < 8; j++ {
			dst[i*8+j] = (b >> uint(7-j)) & 1
		}
	}
	return dst
}

// BytesFromBits packs MSB-first bits back into bytes. len(bits) must be a
// multiple of 8.
func BytesFromBits(bits []byte) ([]byte, error) {
	return AppendBytesFromBits(nil, bits)
}

// AppendBytesFromBits packs MSB-first bits into bytes appended to dst —
// the allocation-free form of BytesFromBits.
func AppendBytesFromBits(dst []byte, bits []byte) ([]byte, error) {
	if len(bits)%8 != 0 {
		return nil, fmt.Errorf("frame: bit count %d not a multiple of 8", len(bits))
	}
	for i := 0; i < len(bits); i += 8 {
		var b byte
		for j := 0; j < 8; j++ {
			v := bits[i+j]
			if v > 1 {
				return nil, fmt.Errorf("frame: bit value %d", v)
			}
			b = b<<1 | v
		}
		dst = append(dst, b)
	}
	return dst, nil
}
