package frame

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/mmtag/mmtag/internal/rng"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	payload := []byte("hello mmWave backscatter")
	raw, err := Encode(0x1234, MCSOOK, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != HeaderLen+len(payload)+CRCLen {
		t.Fatalf("encoded length %d", len(raw))
	}
	var d Decoded
	p := Parser{Strict: true}
	if err := p.Decode(raw, &d); err != nil {
		t.Fatal(err)
	}
	if d.Header.TagID != 0x1234 || d.Header.MCS != MCSOOK || int(d.Header.Length) != len(payload) {
		t.Errorf("header: %+v", d.Header)
	}
	if !bytes.Equal(d.Payload.Data, payload) {
		t.Errorf("payload mismatch")
	}
	if !d.Trailer.OK {
		t.Error("CRC should verify")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(tagID uint16, seed uint64, n uint16) bool {
		src := rng.New(seed)
		payload := src.Bytes(make([]byte, int(n)%512))
		raw, err := Encode(tagID, MCSASK4, payload)
		if err != nil {
			return false
		}
		var d Decoded
		if err := (&Parser{Strict: true}).Decode(raw, &d); err != nil {
			return false
		}
		return d.Header.TagID == tagID && bytes.Equal(d.Payload.Data, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCRCDetectsCorruption(t *testing.T) {
	raw, _ := Encode(7, MCSOOK, []byte{1, 2, 3, 4})
	// Flip each bit in turn: strict decode must fail (or header reject).
	for i := 0; i < len(raw)*8; i++ {
		bad := make([]byte, len(raw))
		copy(bad, raw)
		bad[i/8] ^= 1 << uint(i%8)
		var d Decoded
		err := (&Parser{Strict: true}).Decode(bad, &d)
		if err == nil && d.Trailer.OK {
			t.Fatalf("bit flip at %d went undetected", i)
		}
	}
}

func TestNonStrictCountsBadCRC(t *testing.T) {
	raw, _ := Encode(7, MCSOOK, []byte{9, 9})
	raw[HeaderLen] ^= 0xFF
	var d Decoded
	if err := (&Parser{}).Decode(raw, &d); err != nil {
		t.Fatalf("non-strict decode should succeed: %v", err)
	}
	if d.Trailer.OK {
		t.Error("CRC should be flagged bad")
	}
}

func TestHeaderValidation(t *testing.T) {
	var h Header
	if err := h.DecodeFromBytes([]byte{1, 2}); err == nil {
		t.Error("truncated header should fail")
	}
	raw, _ := Encode(1, MCSOOK, nil)
	raw[0] = 99
	if err := h.DecodeFromBytes(raw); err == nil {
		t.Error("bad version should fail")
	}
	raw, _ = Encode(1, MCSOOK, nil)
	raw[5] = 250
	if err := h.DecodeFromBytes(raw); err == nil {
		t.Error("bad MCS should fail")
	}
	raw, _ = Encode(1, MCSOOK, nil)
	raw[3], raw[4] = 0xFF, 0xFF
	if err := h.DecodeFromBytes(raw); err == nil {
		t.Error("oversized length should fail")
	}
}

func TestDecodeTruncatedBurst(t *testing.T) {
	raw, _ := Encode(1, MCSOOK, []byte{1, 2, 3})
	var d Decoded
	if err := (&Parser{}).Decode(raw[:len(raw)-1], &d); err == nil {
		t.Error("truncated burst should fail")
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := Encode(1, MCS(200), nil); err == nil {
		t.Error("invalid MCS should fail")
	}
	if _, err := Encode(1, MCSOOK, make([]byte, MaxPayload+1)); err == nil {
		t.Error("oversized payload should fail")
	}
}

func TestCRC16KnownVector(t *testing.T) {
	// CCITT-FALSE of "123456789" is 0x29B1.
	if got := CRC16([]byte("123456789")); got != 0x29B1 {
		t.Errorf("CRC16 = %04x, want 29B1", got)
	}
	if CRC16(nil) != 0xFFFF {
		t.Error("empty CRC should be the init value")
	}
}

func TestLayerAccessors(t *testing.T) {
	raw, _ := Encode(42, MCSBPSK, []byte{0xAA})
	var d Decoded
	if err := (&Parser{}).Decode(raw, &d); err != nil {
		t.Fatal(err)
	}
	layers := d.Layers()
	if len(layers) != 3 {
		t.Fatalf("layer count %d", len(layers))
	}
	if layers[0].LayerType() != LayerTypeHeader ||
		layers[1].LayerType() != LayerTypePayload ||
		layers[2].LayerType() != LayerTypeTrailer {
		t.Error("layer types out of order")
	}
	if len(layers[0].LayerContents()) != HeaderLen {
		t.Error("header contents length")
	}
	if !bytes.Equal(layers[1].LayerContents(), []byte{0xAA}) {
		t.Error("payload contents")
	}
	if len(layers[2].LayerContents()) != CRCLen {
		t.Error("trailer contents length")
	}
	if layers[1].LayerPayload() != nil || layers[2].LayerPayload() != nil {
		t.Error("terminal layers should have nil payloads")
	}
}

func TestBitsBytesRoundTrip(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		src := rng.New(seed)
		data := src.Bytes(make([]byte, 1+int(n)%64))
		bits := BitsFromBytes(nil, data)
		if len(bits) != len(data)*8 {
			return false
		}
		back, err := BytesFromBits(bits)
		return err == nil && bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
	if _, err := BytesFromBits(make([]byte, 7)); err == nil {
		t.Error("non-multiple-of-8 should fail")
	}
	if _, err := BytesFromBits([]byte{0, 1, 2, 0, 0, 0, 0, 0}); err == nil {
		t.Error("invalid bit value should fail")
	}
	// MSB-first convention.
	bits := BitsFromBytes(nil, []byte{0x80})
	if bits[0] != 1 || bits[7] != 0 {
		t.Error("bit order is not MSB-first")
	}
	// Buffer reuse path.
	buf := make([]byte, 64)
	out := BitsFromBytes(buf, []byte{0xFF})
	if &out[0] != &buf[0] {
		t.Error("BitsFromBytes should reuse a big-enough buffer")
	}
}

func TestStringers(t *testing.T) {
	if MCSOOK.String() != "OOK" || MCSASK4.String() != "4-ASK" || MCSBPSK.String() != "BPSK" {
		t.Error("MCS names")
	}
	if MCS(77).String() != "MCS(77)" || MCS(77).Valid() {
		t.Error("invalid MCS handling")
	}
	if LayerTypeHeader.String() != "Header" || LayerType(9).String() != "LayerType(9)" {
		t.Error("layer type names")
	}
}
