package stream

import (
	"fmt"
	"math"
	"sort"

	"github.com/mmtag/mmtag/internal/core"
	"github.com/mmtag/mmtag/internal/dsp"
	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/obs/event"
	"github.com/mmtag/mmtag/internal/rng"
	"github.com/mmtag/mmtag/internal/sim"
	"github.com/mmtag/mmtag/internal/tag"
	"github.com/mmtag/mmtag/internal/units"
)

func init() {
	// Transmit-queue depth in frames: powers of two up to the deepest
	// overload sweep the stream driver runs.
	obs.RegisterBuckets("stream_flow_queue_depth",
		1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
}

// FlowConfig parameterizes per-tag flow control over the shared channel:
// frames arrive at an offered rate, each tag transmits within a sliding
// window with a per-frame retransmit budget, and delivery to the service
// level is strictly in per-tag order through a reordering buffer (the
// window lets a tag keep transmitting past a frame that is awaiting a
// retransmission; release waits).
type FlowConfig struct {
	// Tags is the number of tags sharing the channel round-robin (0 = 1).
	Tags int
	// Window is the per-tag sliding window in frames (0 = 4): how far a
	// tag may transmit ahead of its lowest unreleased frame.
	Window int
	// FrameBytes is the payload per burst (0 = 64).
	FrameBytes int
	// MaxRetries bounds retransmissions per frame; a frame that exhausts
	// the budget is dropped and the window slides past it.
	MaxRetries int
	// OfferedFPS is the aggregate frame arrival rate. ≤ 0 makes every
	// frame arrive at t = 0 (saturation).
	OfferedFPS float64
}

// FlowResult accounts one flow-controlled run. All fields are
// deterministic for a fixed source (exact quantiles over the collected
// virtual-clock samples, not histogram interpolations).
type FlowResult struct {
	// FramesOffered / FramesDelivered count frames at the service level;
	// Drops counts frames that exhausted their retransmit budget.
	FramesOffered, FramesDelivered, Drops int
	// Transmissions counts every burst; Retransmissions the repeats.
	Transmissions, Retransmissions int
	// DeliveredFPS is in-order delivered frames over the run span.
	DeliveredFPS float64
	// GoodputBps is delivered payload bits over the run span.
	GoodputBps float64
	// QueueDepthP99 / QueueDepthMax summarize the transmit-queue depth
	// (arrived, not yet released) sampled at every arrival and release.
	QueueDepthP99 float64
	QueueDepthMax int
	// LatencyP50S / LatencyP99S are arrival→in-order-release latencies.
	LatencyP50S, LatencyP99S float64
	// AirTimeS is burst air time summed over all transmissions; SpanS is
	// the virtual span from t=0 to the last release.
	AirTimeS, SpanS float64
}

// flowFrame is one frame's flow state.
type flowFrame struct {
	arrival   float64
	payload   []byte
	arrived   bool
	attempts  int // transmissions so far
	sent      bool
	delivered bool
	dropped   bool
}

// flowTag is one tag's window state.
type flowTag struct {
	frames []flowFrame
	base   int // lowest unreleased per-tag seq
	next   int // next never-transmitted per-tag seq
}

// RunFlow is RunFlowWS with a private workspace.
func RunFlow(l *core.Link, bw units.ReaderBandwidth, nFrames int, cfg FlowConfig, src *rng.Source) (FlowResult, error) {
	return RunFlowWS(dsp.NewWorkspace(), l, bw, nFrames, cfg, src)
}

// RunFlowWS runs nFrames frames through per-tag sliding-window flow
// control on the virtual clock. Frame k belongs to tag k mod Tags; the
// channel serves tags round-robin, each burst occupying its air time on
// the DES engine, and every transmission is a full waveform synthesis +
// decode (mac.RunARQWS semantics — the reader's poll doubles as the
// ACK). Deterministic for a fixed source.
func RunFlowWS(ws *dsp.Workspace, l *core.Link, bw units.ReaderBandwidth, nFrames int, cfg FlowConfig, src *rng.Source) (FlowResult, error) {
	var res FlowResult
	if nFrames <= 0 {
		return res, fmt.Errorf("stream: need ≥ 1 frame, got %d", nFrames)
	}
	if cfg.Tags == 0 {
		cfg.Tags = 1
	}
	if cfg.Window == 0 {
		cfg.Window = 4
	}
	if cfg.FrameBytes == 0 {
		cfg.FrameBytes = 64
	}
	if cfg.Tags < 0 || cfg.Window < 0 || cfg.MaxRetries < 0 {
		return res, fmt.Errorf("stream: negative flow parameter")
	}
	symbolRate := bw.BandwidthHz * units.OOKSpectralEfficiency
	if symbolRate <= 0 {
		return res, fmt.Errorf("stream: bandwidth %q has no symbol rate", bw.Label)
	}
	burstS := float64(tag.BurstSymbolCount(cfg.FrameBytes)) / symbolRate
	payloadBits := 8 * cfg.FrameBytes

	tags := make([]flowTag, cfg.Tags)
	for i := range tags {
		count := nFrames / cfg.Tags
		if i < nFrames%cfg.Tags {
			count++
		}
		tags[i].frames = make([]flowFrame, count)
	}

	eng := sim.NewEngine()
	events := event.Enabled()
	var runErr error
	busy := false
	lastTag := cfg.Tags - 1
	pending := 0 // arrived, not yet released (delivered or dropped)
	lastRelease := 0.0
	depths := make([]int, 0, 2*nFrames)
	latencies := make([]float64, 0, nFrames)

	sampleDepth := func(now float64) {
		depths = append(depths, pending)
		if pending > res.QueueDepthMax {
			res.QueueDepthMax = pending
		}
		obs.ObserveAt(now, "stream_flow_queue_depth", float64(pending))
	}

	// eligible reports whether tag ti can transmit now: a failed frame
	// awaiting retransmission, or the next fresh frame inside the window.
	eligible := func(ti int) (seq int, ok bool) {
		t := &tags[ti]
		for s := t.base; s < t.next; s++ {
			f := &t.frames[s]
			if !f.delivered && !f.dropped && !f.sent {
				return s, true // retransmission pending
			}
		}
		if t.next < len(t.frames) && t.next < t.base+cfg.Window && t.frames[t.next].arrived {
			return t.next, true
		}
		return 0, false
	}

	// release slides tag ti's window: frames leave in per-tag order, so
	// a delivered frame waits in the reorder buffer until everything
	// below it is delivered or dropped.
	release := func(ti int, now float64) {
		t := &tags[ti]
		for t.base < len(t.frames) {
			f := &t.frames[t.base]
			if !f.delivered && !f.dropped {
				return
			}
			if f.delivered {
				res.FramesDelivered++
				lat := now - f.arrival
				latencies = append(latencies, lat)
				obs.IncAt(now, "stream_flow_delivered_total")
				obs.ObserveAt(now, "mac_arq_frame_latency_seconds", lat)
			}
			f.payload = nil
			pending--
			lastRelease = now
			t.base++
		}
	}

	var startNext func(now float64)
	transmit := func(ti, seq int, now float64) {
		t := &tags[ti]
		f := &t.frames[seq]
		if f.payload == nil {
			f.payload = src.Bytes(make([]byte, cfg.FrameBytes))
		}
		f.sent = true
		if seq == t.next {
			t.next++
		}
		res.Transmissions++
		if f.attempts > 0 {
			res.Retransmissions++
			obs.IncAt(now, "stream_flow_retries_total")
		}
		f.attempts++
		r, err := l.RunWaveformWS(ws, f.payload, bw, src)
		if err != nil {
			runErr = err
			return
		}
		ok := r.Decoded && r.BitErrors == 0
		done := now + burstS // outcome known at end of burst (poll = ACK)
		busy = true
		runErr = eng.Schedule(done, 0, func(end float64) {
			if runErr != nil {
				return
			}
			busy = false
			if ok {
				f.delivered = true
				release(ti, end)
			} else {
				f.sent = false // queue the retransmission
				if f.attempts > cfg.MaxRetries {
					f.dropped = true
					res.Drops++
					obs.IncAt(end, "stream_flow_drops_total")
					if events {
						event.Emit(end, event.LevelWarn, "stream.flow", "drop",
							event.D("tag", ti), event.D("seq", seq),
							event.D("attempts", f.attempts))
					}
					release(ti, end)
				} else if events {
					event.Emit(end, event.LevelInfo, "stream.flow", "retry",
						event.D("tag", ti), event.D("seq", seq),
						event.D("attempt", f.attempts))
				}
			}
			startNext(end)
		})
	}

	startNext = func(now float64) {
		if runErr != nil || busy {
			return
		}
		for k := 1; k <= cfg.Tags; k++ {
			ti := (lastTag + k) % cfg.Tags
			if seq, ok := eligible(ti); ok {
				lastTag = ti
				transmit(ti, seq, now)
				return
			}
		}
	}

	for k := 0; k < nFrames; k++ {
		ti, seq := k%cfg.Tags, k/cfg.Tags
		at := 0.0
		if cfg.OfferedFPS > 0 {
			at = float64(k) / cfg.OfferedFPS
		}
		tags[ti].frames[seq].arrival = at
		if err := eng.Schedule(at, 0, func(now float64) {
			if runErr != nil {
				return
			}
			tags[ti].frames[seq].arrived = true
			res.FramesOffered++
			pending++
			obs.IncAt(now, "stream_flow_offered_total")
			sampleDepth(now)
			startNext(now)
		}); err != nil {
			return res, err
		}
	}
	if _, err := eng.Run(math.Inf(1)); err != nil {
		return res, err
	}
	if runErr != nil {
		return res, runErr
	}

	res.AirTimeS = float64(res.Transmissions) * burstS
	res.SpanS = lastRelease
	if res.SpanS > 0 {
		res.DeliveredFPS = float64(res.FramesDelivered) / res.SpanS
		res.GoodputBps = float64(res.FramesDelivered*payloadBits) / res.SpanS
	}
	res.QueueDepthP99 = quantileInts(depths, 0.99)
	res.LatencyP50S = quantileFloats(latencies, 0.50)
	res.LatencyP99S = quantileFloats(latencies, 0.99)
	return res, nil
}

// quantileInts is the exact q-quantile of xs (nearest-rank).
func quantileInts(xs []int, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]int(nil), xs...)
	sort.Ints(s)
	return float64(s[rank(len(s), q)])
}

// quantileFloats is the exact q-quantile of xs (nearest-rank).
func quantileFloats(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[rank(len(s), q)]
}

func rank(n int, q float64) int {
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}
