package stream

import (
	"math"
	"reflect"
	"testing"

	"github.com/mmtag/mmtag/internal/core"
	"github.com/mmtag/mmtag/internal/rng"
	"github.com/mmtag/mmtag/internal/units"
)

func flowLink(t *testing.T, rangeFt float64, bwIdx int) (*core.Link, units.ReaderBandwidth) {
	t.Helper()
	l, err := core.NewDefaultLink(units.FeetToMeters(rangeFt))
	if err != nil {
		t.Fatal(err)
	}
	return l, l.Reader.Bandwidths[bwIdx]
}

// TestFlowCleanChannelDeliversAll: with an enormous SNR margin (20 MHz at
// 4 ft) every frame is delivered first try, in order, with no
// retransmissions.
func TestFlowCleanChannelDeliversAll(t *testing.T) {
	l, bw := flowLink(t, 4, 2)
	const n = 40
	res, err := RunFlow(l, bw, n, FlowConfig{Tags: 4, Window: 4, FrameBytes: 32, MaxRetries: 2}, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesOffered != n || res.FramesDelivered != n {
		t.Fatalf("offered %d delivered %d, want %d/%d", res.FramesOffered, res.FramesDelivered, n, n)
	}
	if res.Drops != 0 || res.Retransmissions != 0 {
		t.Fatalf("clean channel dropped %d / retransmitted %d", res.Drops, res.Retransmissions)
	}
	if res.Transmissions != n {
		t.Fatalf("transmissions %d, want %d", res.Transmissions, n)
	}
	if res.SpanS <= 0 || res.DeliveredFPS <= 0 || res.GoodputBps <= 0 {
		t.Fatalf("degenerate throughput: %+v", res)
	}
	// Saturated arrivals: span is air-time limited, so the delivered
	// rate must be the channel's frame rate.
	wantFPS := float64(n) / res.SpanS
	if math.Abs(res.DeliveredFPS-wantFPS) > 1e-9 {
		t.Fatalf("delivered fps %g, want %g", res.DeliveredFPS, wantFPS)
	}
	if res.QueueDepthMax < 1 || math.IsNaN(res.QueueDepthP99) {
		t.Fatalf("queue depth not sampled: %+v", res)
	}
	if res.LatencyP99S < res.LatencyP50S {
		t.Fatalf("latency p99 %g below p50 %g", res.LatencyP99S, res.LatencyP50S)
	}
}

// TestFlowDeterminism: identical seeds produce identical results, on a
// marginal link (4 ft at the full 2 GHz) where deliveries, retries and
// drops all occur — the richest code path.
func TestFlowDeterminism(t *testing.T) {
	l, bw := flowLink(t, 4, 0)
	cfg := FlowConfig{Tags: 3, Window: 2, FrameBytes: 24, MaxRetries: 2, OfferedFPS: 5e5}
	a, err := RunFlow(l, bw, 30, cfg, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFlow(l, bw, 30, cfg, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n a %+v\n b %+v", a, b)
	}
}

// TestFlowPacedLoadTracksOffered: far below saturation the delivered
// rate must track the offered rate, not the channel ceiling.
func TestFlowPacedLoadTracksOffered(t *testing.T) {
	l, bw := flowLink(t, 4, 2)
	symbolRate := bw.BandwidthHz * units.OOKSpectralEfficiency
	capacity := symbolRate / float64(13+8*(6+32+2)) // frames/s at 32-byte payload
	offered := 0.2 * capacity
	res, err := RunFlow(l, bw, 60, FlowConfig{Tags: 2, Window: 4, FrameBytes: 32, MaxRetries: 2, OfferedFPS: offered}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesDelivered != 60 {
		t.Fatalf("delivered %d, want 60", res.FramesDelivered)
	}
	if ratio := res.DeliveredFPS / offered; ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("delivered %g fps vs offered %g fps (ratio %g)", res.DeliveredFPS, offered, ratio)
	}
	// An uncontended queue stays shallow.
	if res.QueueDepthP99 > 2 {
		t.Fatalf("paced queue p99 %g, want ≤ 2", res.QueueDepthP99)
	}
}

// TestFlowRetransmitBudget: on a lossy link the retransmit budget is
// honored — every frame is either delivered or dropped after at most
// 1 + MaxRetries transmissions, and the window slides past drops so the
// run always completes.
func TestFlowRetransmitBudget(t *testing.T) {
	l, bw := flowLink(t, 5, 0) // ~7 dB at 2 GHz: heavy frame loss
	const n, retries = 30, 1
	res, err := RunFlow(l, bw, n, FlowConfig{Tags: 2, Window: 3, FrameBytes: 48, MaxRetries: retries}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesDelivered+res.Drops != n {
		t.Fatalf("delivered %d + dropped %d ≠ offered %d", res.FramesDelivered, res.Drops, n)
	}
	if res.Retransmissions == 0 {
		t.Fatal("lossy link saw no retransmissions — range too easy for this test")
	}
	if max := n * (1 + retries); res.Transmissions > max {
		t.Fatalf("transmissions %d exceed budget %d", res.Transmissions, max)
	}
	if res.AirTimeS <= 0 {
		t.Fatalf("air time %g", res.AirTimeS)
	}
}

// TestFlowValidation rejects bad parameters.
func TestFlowValidation(t *testing.T) {
	l, bw := flowLink(t, 4, 2)
	if _, err := RunFlow(l, bw, 0, FlowConfig{}, rng.New(1)); err == nil {
		t.Error("zero frames accepted")
	}
	if _, err := RunFlow(l, bw, 4, FlowConfig{Tags: -1}, rng.New(1)); err == nil {
		t.Error("negative tags accepted")
	}
}
