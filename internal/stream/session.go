package stream

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"time"

	"github.com/mmtag/mmtag/internal/core"
	"github.com/mmtag/mmtag/internal/dsp"
	"github.com/mmtag/mmtag/internal/frame"
	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/obs/event"
	"github.com/mmtag/mmtag/internal/phy"
	"github.com/mmtag/mmtag/internal/reader"
	"github.com/mmtag/mmtag/internal/rng"
	"github.com/mmtag/mmtag/internal/tag"
	"github.com/mmtag/mmtag/internal/units"
)

func init() {
	// Same decision-SNR decades the core link uses.
	obs.RegisterBuckets("stream_snr_est_db",
		-10, -5, 0, 5, 10, 15, 20, 25, 30, 40)
}

// SessionConfig parameterizes one sustained streaming session: a single
// reader–tag link at a fixed operating point, driven back to back with
// Frames bursts on the virtual clock.
type SessionConfig struct {
	// Frames is the number of bursts to stream (must be positive).
	Frames int
	// FrameBytes is the payload per burst (0 = 64, the MAC default).
	FrameBytes int
	// RangeFt is the link range in feet (0 = 4 ft, the gigabit point).
	RangeFt float64
	// Seed drives the per-frame payloads and noise. Every frame draws
	// from an index-keyed source, so results are independent of decode
	// order.
	Seed uint64
	// Workers / Depth configure the stage pipeline (see Config).
	Workers, Depth int
	// ProgressEvery emits a deterministic progress event every that many
	// frames (0 = no periodic events; failures are always logged).
	ProgressEvery int
}

// SessionResult accounts one streaming session. Every field except the
// Wall* pair and Pipeline is deterministic for a fixed config (any
// Workers count); the wall-clock figures are schedule-dependent and are
// quarantined accordingly (tsdb.WallClockMetrics).
type SessionResult struct {
	// Frames is the number of bursts streamed.
	Frames int
	// Decoded counts frames delivered intact (CRC ok, payload matches
	// the transmitted truth).
	Decoded int
	// SyncFailures / DecodeErrors / CRCFailures / PayloadErrors break
	// down the losses by pipeline stage.
	SyncFailures, DecodeErrors, CRCFailures, PayloadErrors int
	// BudgetSNRdB is the analytic operating point.
	BudgetSNRdB float64
	// MeanSNRdBEst averages the measured decision SNR over decoded
	// frames (NaN when nothing decoded).
	MeanSNRdBEst float64
	// BurstSeconds is one burst's air time; AirTimeS = Frames × that.
	BurstSeconds float64
	// AirTimeS is the virtual air time of the whole stream.
	AirTimeS float64
	// VirtualFPS is the sustained frame rate on the virtual clock
	// (frames / air time — the link-limited ceiling).
	VirtualFPS float64
	// GoodputBps is delivered payload bits over air time.
	GoodputBps float64
	// WallSeconds / WallFPS measure the decode pipeline on the host
	// clock. Schedule-dependent: never folded into deterministic
	// artifacts or tables.
	WallSeconds, WallFPS float64
	// Pipeline is the schedule-dependent pipeline telemetry.
	Pipeline PipelineStats
}

// RunSession streams cfg.Frames bursts through the stage-parallel
// pipeline at the link's operating point. All metrics and events are
// emitted from the in-order fold at virtual timestamps, so the observable
// stream is byte-identical at any cfg.Workers.
func RunSession(cfg SessionConfig) (SessionResult, error) {
	var res SessionResult
	if cfg.Frames <= 0 {
		return res, fmt.Errorf("stream: need ≥ 1 frame, got %d", cfg.Frames)
	}
	if cfg.FrameBytes == 0 {
		cfg.FrameBytes = 64
	}
	if cfg.RangeFt == 0 {
		cfg.RangeFt = 4
	}
	l, err := core.NewDefaultLink(units.FeetToMeters(cfg.RangeFt))
	if err != nil {
		return res, err
	}
	bw := l.Reader.Bandwidths[0] // widest: the gigabit 2 GHz channel
	b, err := l.ComputeBudget()
	if err != nil {
		return res, err
	}
	if b.Severed {
		return res, fmt.Errorf("stream: link severed at %g ft", cfg.RangeFt)
	}
	w, err := phy.NewRectWaveform(core.SamplesPerSymbol)
	if err != nil {
		return res, err
	}
	shape, err := NewShape(w, cfg.FrameBytes)
	if err != nil {
		return res, err
	}

	// The operating point is computed once — the per-frame generator is
	// pure synthesis (tag burst + channel scale + leakage + noise), the
	// same recipe core.CaptureWaveformWS applies per call.
	bearing := b.TagBearingRad
	freqHz := l.Reader.FreqHz
	// Tag.BurstMCSWS mutates aperture switch state while computing the
	// modulation constellation, so it cannot be shared across gen workers.
	// The leakage is a pure function of the fixed operating point: compute
	// it once and synthesize bursts with stateless phy calls instead.
	ookLeak := l.Tag.OOKLeakage(bearing, freqHz)
	tagID := l.Tag.ID
	amp := math.Sqrt(units.DBmToWatts(b.ReceivedDBm))
	carrier := cmplx.Rect(amp, -0.4)
	leak := cmplx.Rect(math.Sqrt(units.DBmToWatts(l.Reader.SelfInterferenceDBm())), 0.9)
	symbolRate := bw.BandwidthHz * units.OOKSpectralEfficiency
	sampleRate := symbolRate * core.SamplesPerSymbol
	noiseW := units.DBmToWatts(units.ThermalNoiseDensityDBmHz(l.Reader.TemperatureK)+
		l.Reader.NoiseFigureDB)*sampleRate +
		units.DBmToWatts(l.Reader.ResidualLeakageDBm())
	burstSyms := tag.BurstSymbolCount(cfg.FrameBytes)
	burstS := float64(burstSyms) / symbolRate
	lead := 16 * core.SamplesPerSymbol
	rxLen := burstSyms*core.SamplesPerSymbol + 40*core.SamplesPerSymbol
	res.BudgetSNRdB = b.SNRdB[bw.Label]
	res.BurstSeconds = burstS

	seq := rng.NewSequence(cfg.Seed)
	gen := func(ws *dsp.Workspace, i int, dst []complex128) ([]complex128, error) {
		src := seq.At(uint64(i))
		payload := src.Bytes(ws.Bytes(cfg.FrameBytes))
		rawLen := frame.HeaderLen + cfg.FrameBytes + frame.CRCLen
		raw, err := frame.AppendEncode(ws.Bytes(rawLen)[:0], tagID, frame.MCSOOK, payload)
		if err != nil {
			return nil, err
		}
		bits := frame.BitsFromBytes(ws.Bytes(8*rawLen), raw)
		syms := phy.AppendPreambleSymbols(ws.Complex(burstSyms)[:0], ookLeak)
		syms, err = (phy.OOK{Leakage: ookLeak}).Modulate(syms, bits)
		if err != nil {
			return nil, err
		}
		tx := w.SynthesizeWS(ws, syms)
		if cap(dst) < rxLen {
			dst = make([]complex128, rxLen)
		}
		dst = dst[:rxLen]
		for k := range dst {
			dst[k] = leak
		}
		for k, v := range tx {
			dst[lead+k] += v * carrier
		}
		src.AWGN(dst, noiseW)
		// Pre-burst leakage calibration (see core.CaptureWaveformWS).
		pre := lead / 2
		var mean complex128
		for _, v := range dst[:pre] {
			mean += v
		}
		mean /= complex(float64(pre), 0)
		for k := range dst {
			dst[k] -= mean
		}
		return dst, nil
	}

	truthBuf := make([]byte, cfg.FrameBytes)
	var snrSum float64
	events := event.Enabled()
	fold := func(f *Frame) error {
		t := float64(f.Index+1) * burstS
		res.Frames++
		obs.IncAt(t, "stream_frames_total")
		switch {
		case errors.Is(f.Err, reader.ErrSync):
			res.SyncFailures++
			obs.IncAt(t, "stream_sync_failures_total")
			if events {
				event.Emit(t, event.LevelWarn, "stream.session", "sync_loss",
					event.D("frame", f.Index))
			}
		case f.Err != nil:
			res.DecodeErrors++
			obs.IncAt(t, "stream_decode_errors_total")
			if events {
				event.Emit(t, event.LevelWarn, "stream.session", "decode_error",
					event.D("frame", f.Index))
			}
		case !f.OK:
			res.CRCFailures++
			obs.IncAt(t, "stream_crc_failures_total")
			if events {
				event.Emit(t, event.LevelWarn, "stream.session", "crc_fail",
					event.D("frame", f.Index))
			}
		default:
			truth := seq.At(uint64(f.Index)).Bytes(truthBuf)
			if f.TagID != l.Tag.ID || !bytes.Equal(truth, f.Payload) {
				res.PayloadErrors++
				obs.IncAt(t, "stream_payload_errors_total")
				if events {
					event.Emit(t, event.LevelWarn, "stream.session", "payload_mismatch",
						event.D("frame", f.Index))
				}
			} else {
				res.Decoded++
				obs.IncAt(t, "stream_frames_decoded_total")
			}
			if !math.IsNaN(f.SNRdBEst) {
				snrSum += f.SNRdBEst
				obs.ObserveAt(t, "stream_snr_est_db", f.SNRdBEst)
			}
		}
		if events && cfg.ProgressEvery > 0 && (f.Index+1)%cfg.ProgressEvery == 0 {
			event.Emit(t, event.LevelInfo, "stream.session", "progress",
				event.D("frames", f.Index+1), event.D("decoded", res.Decoded))
		}
		return nil
	}

	p := NewPipeline(shape, Config{Workers: cfg.Workers, Depth: cfg.Depth})
	start := time.Now()
	if err := p.Run(cfg.Frames, gen, fold); err != nil {
		return res, err
	}
	res.WallSeconds = time.Since(start).Seconds()
	res.Pipeline = p.Stats()

	res.AirTimeS = float64(res.Frames) * burstS
	res.VirtualFPS = 1 / burstS
	res.GoodputBps = float64(res.Decoded*cfg.FrameBytes*8) / res.AirTimeS
	if res.WallSeconds > 0 {
		res.WallFPS = float64(res.Frames) / res.WallSeconds
	}
	if res.Decoded > 0 {
		res.MeanSNRdBEst = snrSum / float64(res.Decoded)
	} else {
		res.MeanSNRdBEst = math.NaN()
	}
	// Schedule-dependent pipeline telemetry: quarantined gauge families
	// (tsdb.WallClockMetrics) so sampled artifacts stay worker-invariant.
	if obs.Enabled() {
		obs.SetAt(res.AirTimeS, "stream_wall_fps", res.WallFPS)
		for i, name := range QueueNames() {
			obs.SetAt(res.AirTimeS, "stream_queue_depth", float64(res.Pipeline.QueueMax[i]),
				obs.L("stage", name))
		}
	}
	return res, nil
}
