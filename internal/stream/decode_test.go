package stream

import (
	"bytes"
	"errors"
	"testing"

	"github.com/mmtag/mmtag/internal/core"
	"github.com/mmtag/mmtag/internal/dsp"
	"github.com/mmtag/mmtag/internal/frame"
	"github.com/mmtag/mmtag/internal/phy"
	"github.com/mmtag/mmtag/internal/reader"
	"github.com/mmtag/mmtag/internal/rng"
	"github.com/mmtag/mmtag/internal/units"
)

// captureBursts synthesizes n real receiver captures through the core
// link at the given range, returning the captures and their payloads.
func captureBursts(t *testing.T, n int, frameBytes int, rangeFt float64, seed uint64) ([][]complex128, [][]byte) {
	t.Helper()
	l, err := core.NewDefaultLink(units.FeetToMeters(rangeFt))
	if err != nil {
		t.Fatal(err)
	}
	bw := l.Reader.Bandwidths[0]
	seq := rng.NewSequence(seed)
	var bursts [][]complex128
	var payloads [][]byte
	for i := 0; i < n; i++ {
		src := seq.At(uint64(i))
		payload := src.Bytes(make([]byte, frameBytes))
		cap, err := l.CaptureWaveform(payload, frame.MCSOOK, bw, src)
		if err != nil {
			t.Fatal(err)
		}
		bursts = append(bursts, append([]complex128(nil), cap.Samples...))
		payloads = append(payloads, payload)
	}
	return bursts, payloads
}

// TestStagedDecodeMatchesDecodeBurst: on the session's fixed-shape
// bursts, the three-stage streaming decode must agree with the reference
// reader.DecodeBurstWS — same payload, tag ID, CRC verdict, adaptive
// threshold and SNR estimate. One asymmetry is allowed by construction:
// the reference parses the header from a header-only threshold before it
// re-decides the whole burst, so on marginal bursts it can reject a
// header the streaming whole-burst threshold recovers. The staged path
// may therefore succeed where the reference errors — never the reverse.
func TestStagedDecodeMatchesDecodeBurst(t *testing.T) {
	const frameBytes = 48
	w, err := phy.NewRectWaveform(core.SamplesPerSymbol)
	if err != nil {
		t.Fatal(err)
	}
	shape, err := NewShape(w, frameBytes)
	if err != nil {
		t.Fatal(err)
	}
	bursts, payloads := captureBursts(t, 24, frameBytes, 2, 42)
	dec := NewDecoder(shape)
	ws := dsp.NewWorkspace()
	for i, rx := range bursts {
		got := dec.Decode(i, rx)
		ws.Reset()
		want, wantStats, wantErr := reader.DecodeBurstWS(ws, rx, w)
		if wantErr != nil {
			// Reference header-threshold rejection; the staged decode may
			// still recover the burst but must never invent a new failure
			// mode the reference wouldn't hit.
			continue
		}
		if got.Err != nil {
			t.Fatalf("burst %d: staged err=%v where reference decoded", i, got.Err)
		}
		if got.TagID != want.Header.TagID || got.OK != want.Trailer.OK {
			t.Fatalf("burst %d: staged (tag %04x ok=%v) vs reference (tag %04x ok=%v)",
				i, got.TagID, got.OK, want.Header.TagID, want.Trailer.OK)
		}
		if !bytes.Equal(got.Payload, want.Payload.Data) {
			t.Fatalf("burst %d: staged payload diverged from reference", i)
		}
		if got.Threshold != wantStats.Threshold {
			t.Fatalf("burst %d: threshold %g, want %g", i, got.Threshold, wantStats.Threshold)
		}
		if got.SNRdBEst != wantStats.SNRdBEst {
			t.Fatalf("burst %d: SNR %g, want %g", i, got.SNRdBEst, wantStats.SNRdBEst)
		}
		if got.OK && !bytes.Equal(got.Payload, payloads[i]) {
			t.Fatalf("burst %d: CRC passed but payload is not the transmitted truth", i)
		}
	}
}

// TestStagedDecodeSyncFailure: a capture too short to hold the preamble
// must fail with an error satisfying errors.Is(err, reader.ErrSync), and
// pure noise long enough to correlate must still fail per-frame (burst
// detection locks onto the best correlation peak regardless, so the
// failure surfaces downstream as a framing error, never a false decode).
func TestStagedDecodeSyncFailure(t *testing.T) {
	w, _ := phy.NewRectWaveform(core.SamplesPerSymbol)
	shape, err := NewShape(w, 16)
	if err != nil {
		t.Fatal(err)
	}
	short := make([]complex128, 32) // < (len(preamble)+1)·SPS
	rng.New(9).AWGN(short, 1e-9)
	f := NewDecoder(shape).Decode(0, short)
	if !errors.Is(f.Err, reader.ErrSync) {
		t.Fatalf("short capture err=%v, want ErrSync", f.Err)
	}
	noise := make([]complex128, 4096)
	rng.New(9).AWGN(noise, 1e-9)
	f = NewDecoder(shape).Decode(0, noise)
	if f.Err == nil || f.OK {
		t.Fatalf("pure noise decoded: %+v", f)
	}
}

// TestNewShapeValidation rejects unusable geometries.
func TestNewShapeValidation(t *testing.T) {
	w, _ := phy.NewRectWaveform(4)
	if _, err := NewShape(w, 0); err == nil {
		t.Error("zero frame bytes accepted")
	}
	if _, err := NewShape(w, frame.MaxPayload+1); err == nil {
		t.Error("oversized frame accepted")
	}
	if _, err := NewShape(phy.Waveform{}, 16); err == nil {
		t.Error("zero-SPS waveform accepted")
	}
}

// TestDecoderSteadyStateAllocs: after warmup, a streaming Decoder must
// decode frames with zero allocations — the gate BENCH_8.json holds in
// CI, asserted here so plain `go test` catches regressions too.
func TestDecoderSteadyStateAllocs(t *testing.T) {
	const frameBytes = 64
	w, _ := phy.NewRectWaveform(core.SamplesPerSymbol)
	shape, err := NewShape(w, frameBytes)
	if err != nil {
		t.Fatal(err)
	}
	all, _ := captureBursts(t, 8, frameBytes, 2, 7)
	dec := NewDecoder(shape)
	// Keep only cleanly decoded bursts: even at 2 ft an occasional capture
	// mis-syncs on a payload-induced false correlation peak, and a failed
	// decode takes an early exit that would hide allocations in the later
	// stages.
	var bursts [][]complex128
	for i, rx := range all {
		if f := dec.Decode(i, rx); f.Err == nil && f.OK {
			bursts = append(bursts, rx)
		}
	}
	if len(bursts) < 4 {
		t.Fatalf("only %d of %d warmup bursts decoded cleanly at 2 ft", len(bursts), len(all))
	}
	i := 0
	allocs := testing.AllocsPerRun(64, func() {
		f := dec.Decode(i%len(bursts), bursts[i%len(bursts)])
		if f.Err != nil {
			t.Fatalf("steady-state burst failed: %v", f.Err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state decode allocates %.1f/frame, want 0", allocs)
	}
}
