// Package stream is the sustained-traffic session layer: it drives a
// continuous virtual-time sample stream through a stage-parallel decode
// pipeline (sync → demod → decode as bounded-queue stages with explicit
// backpressure) and layers per-tag flow control with in-order delivery on
// top, while preserving the repo's determinism contract — every folded
// result, metric and event is byte-identical at any worker count because
// results are folded back in stream (index) order by a single goroutine.
package stream

import (
	"fmt"
	"math"

	"github.com/mmtag/mmtag/internal/dsp"
	"github.com/mmtag/mmtag/internal/frame"
	"github.com/mmtag/mmtag/internal/phy"
	"github.com/mmtag/mmtag/internal/reader"
)

// Shape describes the fixed burst geometry of a streaming session: the
// waveform and the frame size every burst carries. Streaming decode
// differs from reader.DecodeBurst in exactly one way — the payload length
// is known up front (a session negotiates it once), so the demod stage
// can matched-filter the whole burst in one pass instead of stopping to
// parse the header first. On header-clean bursts the decisions, adaptive
// threshold and decoded bytes are bit-identical to reader.DecodeBurstWS
// (see TestStagedDecodeMatchesDecodeBurst).
type Shape struct {
	// W is the pulse shape shared by every burst.
	W phy.Waveform
	// FrameBytes is the payload size carried by every burst.
	FrameBytes int

	dataSyms  int // header + payload + CRC symbols (OOK: 1 bit/symbol)
	frameLen  int // header + payload + CRC bytes
	burstSyms int // preamble + data symbols
}

// NewShape validates and precomputes the burst geometry.
func NewShape(w phy.Waveform, frameBytes int) (Shape, error) {
	if frameBytes <= 0 || frameBytes > frame.MaxPayload {
		return Shape{}, fmt.Errorf("stream: frame bytes %d out of range [1,%d]", frameBytes, frame.MaxPayload)
	}
	if w.SPS <= 0 {
		return Shape{}, fmt.Errorf("stream: waveform has no samples per symbol")
	}
	frameLen := frame.HeaderLen + frameBytes + frame.CRCLen
	return Shape{
		W:          w,
		FrameBytes: frameBytes,
		dataSyms:   frameLen * 8,
		frameLen:   frameLen,
		burstSyms:  len(phy.Preamble13) + frameLen*8,
	}, nil
}

// DataSymbols returns the number of data symbols per burst (after the
// preamble).
func (s Shape) DataSymbols() int { return s.dataSyms }

// Frame is one folded stream result. Slices reference job-owned memory:
// they are valid only during the fold callback (copy to keep).
type Frame struct {
	// Index is the frame's position in the stream.
	Index int
	// Err is the per-frame failure, if any: errors.Is(Err, reader.ErrSync)
	// separates sync losses from demod/framing failures. A failed frame
	// still flows through the fold so accounting stays in stream order.
	Err error
	// TagID / Payload / OK mirror the decoded header, payload bytes and
	// CRC verdict (valid when Err == nil).
	TagID   uint16
	Payload []byte
	OK      bool
	// SyncOffset / SyncMetric report burst detection.
	SyncOffset int
	SyncMetric float64
	// Threshold is the adaptive OOK decision threshold.
	Threshold float64
	// SNRdBEst is the decision-domain SNR estimate (NaN if inestimable).
	SNRdBEst float64
}

// job is the unit of work flowing through the pipeline. All slices are
// job-owned (grown once, reused across the stream) so stages never share
// workspace memory across goroutines.
type job struct {
	idx     int
	buf     []complex128 // capture buffer handed to Gen for reuse
	samples []complex128 // the burst to decode (buf or a Gen-owned slice)
	dec     []complex128 // matched-filter decisions, copied out of stage ws
	raw     []byte       // reassembled frame bytes
	payload []byte       // decoded payload, copied out of the parse view
	out     Frame
	fatal   bool // infrastructure failure: abort the stream
}

func (j *job) reset(idx int) {
	j.idx = idx
	j.samples = nil
	j.fatal = false
	j.out = Frame{Index: idx}
}

// stageSync locates the burst preamble. Sync failures are per-frame
// outcomes (Frame.Err wrapping reader.ErrSync), not stream failures.
func (s Shape) stageSync(ws *dsp.Workspace, j *job) {
	start, metric, err := s.W.DetectBurstWS(ws, j.samples, 0)
	if err != nil {
		j.out.Err = fmt.Errorf("%w: %v", reader.ErrSync, err)
		return
	}
	j.out.SyncOffset = start
	j.out.SyncMetric = metric
}

// stageDemod matched-filters every data symbol in one pass. Per-symbol
// correlation windows make the single pass bit-identical to the
// header-then-rest split reader.DecodeBurstWS performs. The decisions are
// copied into job memory so the stage workspace can be recycled.
func (s Shape) stageDemod(ws *dsp.Workspace, j *job) {
	dec, err := s.W.MatchedFilterWS(ws, j.samples, j.out.SyncOffset, s.dataSyms)
	if err != nil {
		j.out.Err = err
		return
	}
	j.dec = append(j.dec[:0], dec...)
}

// stageDecode slices the decisions with the whole-burst adaptive
// threshold (the same combined re-decide reader.DecodeBurstWS ends on),
// reassembles bytes and parses the frame. CRC failure is OK=false, not an
// error; structural failures (header version/MCS, truncation) are.
func (s Shape) stageDecode(ws *dsp.Workspace, j *job) {
	bits, thr, err := reader.DecideOOKWS(ws, j.dec)
	if err != nil {
		j.out.Err = err
		return
	}
	j.out.Threshold = thr
	if snr, err := phy.MeasureSNRWS(ws, j.dec); err == nil {
		j.out.SNRdBEst = snr
	} else {
		j.out.SNRdBEst = math.NaN()
	}
	j.raw, err = frame.AppendBytesFromBits(j.raw[:0], bits)
	if err != nil {
		j.out.Err = err
		return
	}
	var dec frame.Decoded
	if err := (&frame.Parser{}).Decode(j.raw, &dec); err != nil {
		j.out.Err = fmt.Errorf("stream: frame: %w", err)
		return
	}
	j.out.TagID = dec.Header.TagID
	j.out.OK = dec.Trailer.OK
	j.payload = append(j.payload[:0], dec.Payload.Data...)
	j.out.Payload = j.payload
}

// decodeInto runs all three stages back to back on one workspace —
// the single-frame form the Decoder and the inline reference path share.
func (s Shape) decodeInto(ws *dsp.Workspace, j *job) {
	ws.Reset()
	s.stageSync(ws, j)
	if j.out.Err != nil {
		return
	}
	ws.Reset()
	s.stageDemod(ws, j)
	if j.out.Err != nil {
		return
	}
	ws.Reset()
	s.stageDecode(ws, j)
}

// Decoder is a single-goroutine streaming decoder: one workspace, one
// job, zero steady-state allocations per frame (gated in BENCH_8.json).
// It is the serial baseline the stage-parallel pipeline is measured
// against. Not safe for concurrent use.
type Decoder struct {
	shape Shape
	ws    *dsp.Workspace
	j     job
}

// NewDecoder returns a streaming decoder for the given burst shape.
func NewDecoder(shape Shape) *Decoder {
	return &Decoder{shape: shape, ws: dsp.NewWorkspace()}
}

// Decode decodes one burst. The returned Frame's Payload references
// decoder-owned memory valid until the next Decode call.
func (d *Decoder) Decode(idx int, samples []complex128) Frame {
	d.j.reset(idx)
	d.j.samples = samples
	d.shape.decodeInto(d.ws, &d.j)
	return d.j.out
}
