package stream

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/mmtag/mmtag/internal/dsp"
	"github.com/mmtag/mmtag/internal/par"
)

// DefaultDepth is the default per-queue capacity of the stage pipeline.
const DefaultDepth = 8

// Config parameterizes the stage-parallel pipeline.
type Config struct {
	// Workers is the goroutine count per stage. ≤ 0 uses par.Workers();
	// 1 runs the inline sequential reference path (the determinism
	// yardstick every other worker count must reproduce byte-for-byte,
	// the same contract internal/par enforces).
	Workers int
	// Depth is the capacity of each inter-stage queue (≤ 0 uses
	// DefaultDepth). Queues are plain bounded channels, so the depth
	// bound is structural: a full queue blocks the upstream stage — that
	// is the backpressure, and it propagates to the generator through
	// the finite job pool.
	Depth int
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return par.Workers()
}

func (c Config) depth() int {
	if c.Depth > 0 {
		return c.Depth
	}
	return DefaultDepth
}

// Gen produces the samples for frame idx. dst is the job's reusable
// capture buffer (possibly nil or short); the generator either fills and
// returns it (growing as needed) or returns its own slice — in both
// cases the returned samples must NOT alias ws scratch memory, because
// every downstream stage Resets its own workspace before touching the
// job. A non-nil error is an infrastructure failure and aborts the
// stream (per-frame decode failures are reported via Frame.Err instead).
type Gen func(ws *dsp.Workspace, idx int, dst []complex128) ([]complex128, error)

// stageNames label the pipeline's queues for depth reporting, in flow
// order: gen's input feed plus one queue in front of each later stage.
var stageNames = [...]string{"gen", "sync", "demod", "decode", "fold"}

// PipelineStats reports schedule-dependent pipeline telemetry. These
// numbers vary run to run (they depend on goroutine scheduling), so they
// never feed deterministic artifacts — the session quarantines them in
// wall-clock-only gauges.
type PipelineStats struct {
	// Workers and Depth echo the resolved configuration.
	Workers, Depth int
	// QueueMax is the high-water mark of each inter-stage queue, in
	// stageNames order. Each is structurally ≤ Depth.
	QueueMax [len(stageNames)]int
	// InFlightMax is the high-water mark of jobs checked out of the free
	// pool at once, structurally ≤ the pool size.
	InFlightMax int
	// PoolSize is the job-pool bound InFlightMax is held under.
	PoolSize int
}

// QueueNames returns the stage-queue labels matching QueueMax order.
func QueueNames() []string { return stageNames[:] }

// Pipeline is the stage-parallel streaming decoder: sync, demod and
// decode each run as a group of worker goroutines connected by bounded
// queues, with a generator stage in front and a single-goroutine fold
// behind that restores stream order. Determinism: every job's result is
// computed from job-owned copies (stage workspaces are private and reset
// per job), and the fold callback observes frames in index order — so
// any Workers count produces the byte-identical result stream.
type Pipeline struct {
	shape Shape
	cfg   Config
	stats PipelineStats
}

// NewPipeline returns a streaming pipeline for the given burst shape.
func NewPipeline(shape Shape, cfg Config) *Pipeline {
	return &Pipeline{shape: shape, cfg: cfg}
}

// Stats returns the schedule-dependent telemetry of the last Run.
func (p *Pipeline) Stats() PipelineStats { return p.stats }

// Run streams n frames through the pipeline: gen(i) produces each
// capture, the stage groups decode them concurrently, and fold observes
// every Frame in index order on the caller's goroutine. fold's slices
// are valid only during the callback. A fold error or Gen error stops
// the stream at the lowest failing index (later indexes may have been
// generated speculatively, but are never folded).
func (p *Pipeline) Run(n int, gen Gen, fold func(f *Frame) error) error {
	if n < 0 {
		return fmt.Errorf("stream: negative frame count %d", n)
	}
	workers := p.cfg.workers()
	depth := p.cfg.depth()
	p.stats = PipelineStats{Workers: workers, Depth: depth}
	if workers == 1 {
		return p.runInline(n, gen, fold)
	}

	// The job pool bounds memory and provides end-to-end backpressure:
	// the feeder blocks when every job is in flight. Sized so that all
	// stage workers plus all queue slots can hold a job with a little
	// slack, keeping the pipe full without unbounded buffering.
	poolSize := 4*workers + 4*depth + 2
	p.stats.PoolSize = poolSize
	free := make(chan *job, poolSize)
	for i := 0; i < poolSize; i++ {
		free <- &job{}
	}

	genQ := make(chan *job, depth)
	syncQ := make(chan *job, depth)
	demodQ := make(chan *job, depth)
	decodeQ := make(chan *job, depth)
	foldQ := make(chan *job, depth)

	var stop atomic.Bool
	var inFlight atomic.Int64
	var watermarks [len(stageNames)]atomic.Int64
	var inFlightMax atomic.Int64

	// Feeder: acquires jobs in index order (so at most poolSize
	// consecutive indexes are ever in flight — the fold ring below
	// relies on that) and parks when the pool is drained.
	go func() {
		defer close(genQ)
		for i := 0; i < n; i++ {
			j := <-free
			if stop.Load() {
				free <- j
				return
			}
			j.reset(i)
			maxInt64(&inFlightMax, inFlight.Add(1))
			genQ <- j
			maxInt64(&watermarks[0], int64(len(genQ)))
		}
	}()

	runStage := func(in, out chan *job, wm *atomic.Int64, work func(ws *dsp.Workspace, j *job)) {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ws := dsp.NewWorkspace()
				for j := range in {
					if !j.fatal && j.out.Err == nil {
						ws.Reset()
						work(ws, j)
					}
					out <- j
					maxInt64(wm, int64(len(out)))
				}
			}()
		}
		go func() {
			wg.Wait()
			close(out)
		}()
	}

	runStage(genQ, syncQ, &watermarks[1], func(ws *dsp.Workspace, j *job) {
		samples, err := gen(ws, j.idx, j.buf)
		if err != nil {
			j.out.Err = err
			j.fatal = true
			return
		}
		j.samples = samples
		// Keep generator-grown buffers for the job's next lap.
		if cap(samples) > cap(j.buf) {
			j.buf = samples[:cap(samples)]
		}
	})
	runStage(syncQ, demodQ, &watermarks[2], p.shape.stageSync)
	runStage(demodQ, decodeQ, &watermarks[3], p.shape.stageDemod)
	runStage(decodeQ, foldQ, &watermarks[4], p.shape.stageDecode)

	// Fold: restore stream order with a ring keyed by index. Slots are
	// collision-free because the feeder acquires jobs in index order
	// from a pool of poolSize — while index i is unfolded, no index ≥
	// i+poolSize can have entered the pipe.
	ring := make([]*job, poolSize)
	next := 0
	var runErr error
	for j := range foldQ {
		ring[j.idx%poolSize] = j
		for {
			k := ring[next%poolSize]
			if k == nil || k.idx != next {
				break
			}
			ring[next%poolSize] = nil
			if runErr == nil {
				if k.fatal {
					runErr = k.out.Err
				} else if err := fold(&k.out); err != nil {
					runErr = err
				}
				if runErr != nil {
					stop.Store(true)
				}
			}
			inFlight.Add(-1)
			free <- k
			next++
		}
	}
	for i := range watermarks {
		p.stats.QueueMax[i] = int(watermarks[i].Load())
	}
	p.stats.InFlightMax = int(inFlightMax.Load())
	return runErr
}

// runInline is the workers==1 sequential reference: one goroutine, one
// workspace, stages back to back in index order. Every parallel run must
// reproduce this stream exactly.
func (p *Pipeline) runInline(n int, gen Gen, fold func(f *Frame) error) error {
	ws := dsp.NewWorkspace()
	j := &job{}
	p.stats.PoolSize = 1
	for i := 0; i < n; i++ {
		j.reset(i)
		ws.Reset()
		samples, err := gen(ws, i, j.buf)
		if err != nil {
			return err
		}
		j.samples = samples
		if cap(samples) > cap(j.buf) {
			j.buf = samples[:cap(samples)]
		}
		ws.Reset()
		p.shape.stageSync(ws, j)
		if j.out.Err == nil {
			ws.Reset()
			p.shape.stageDemod(ws, j)
		}
		if j.out.Err == nil {
			ws.Reset()
			p.shape.stageDecode(ws, j)
		}
		if p.stats.InFlightMax == 0 {
			p.stats.InFlightMax = 1
		}
		if err := fold(&j.out); err != nil {
			return err
		}
	}
	return nil
}

// maxInt64 lifts wm to at least v.
func maxInt64(wm *atomic.Int64, v int64) {
	for {
		cur := wm.Load()
		if v <= cur || wm.CompareAndSwap(cur, v) {
			return
		}
	}
}
