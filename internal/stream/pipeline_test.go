package stream

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"github.com/mmtag/mmtag/internal/core"
	"github.com/mmtag/mmtag/internal/dsp"
	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/obs/event"
	"github.com/mmtag/mmtag/internal/obs/tsdb"
	"github.com/mmtag/mmtag/internal/phy"
)

// foldTrace captures the fold-observed stream for invariance compares.
type foldTrace struct {
	idx     []int
	tagID   []uint16
	ok      []bool
	payload [][]byte
	errs    []string
}

func (ft *foldTrace) record(f *Frame) error {
	ft.idx = append(ft.idx, f.Index)
	ft.tagID = append(ft.tagID, f.TagID)
	ft.ok = append(ft.ok, f.OK)
	ft.payload = append(ft.payload, append([]byte(nil), f.Payload...))
	if f.Err != nil {
		ft.errs = append(ft.errs, f.Err.Error())
	} else {
		ft.errs = append(ft.errs, "")
	}
	return nil
}

// pregenGen returns a Gen that serves pre-captured bursts instantly —
// the maximal-overload generator (production is free, decode is not).
func pregenGen(bursts [][]complex128) Gen {
	return func(_ *dsp.Workspace, idx int, _ []complex128) ([]complex128, error) {
		return bursts[idx%len(bursts)], nil
	}
}

// TestPipelineWorkerInvariance: the fold-observed stream must be
// byte-identical at every worker count — same indexes in order, same
// payloads, same outcomes. Workers=1 is the sequential reference.
func TestPipelineWorkerInvariance(t *testing.T) {
	const frameBytes = 32
	w, _ := phy.NewRectWaveform(core.SamplesPerSymbol)
	shape, err := NewShape(w, frameBytes)
	if err != nil {
		t.Fatal(err)
	}
	bursts, _ := captureBursts(t, 16, frameBytes, 4, 5)
	const n = 120
	run := func(workers int) *foldTrace {
		var ft foldTrace
		p := NewPipeline(shape, Config{Workers: workers, Depth: 4})
		if err := p.Run(n, pregenGen(bursts), ft.record); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return &ft
	}
	ref := run(1)
	if len(ref.idx) != n {
		t.Fatalf("reference folded %d frames, want %d", len(ref.idx), n)
	}
	for i, idx := range ref.idx {
		if idx != i {
			t.Fatalf("fold order %v not stream order", ref.idx)
		}
	}
	for _, workers := range []int{2, 4, runtime.NumCPU() + 3} {
		got := run(workers)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d fold stream diverged from the workers=1 reference", workers)
		}
	}
}

// TestPipelineBackpressureBounded: under maximal overload (free
// generator, expensive decode) every inter-stage queue must stay within
// its configured depth and the job pool must bound the total frames in
// flight — the backpressure contract. The depth bound is structural
// (channels), so this asserts the watermarks the pipeline reports.
func TestPipelineBackpressureBounded(t *testing.T) {
	const frameBytes = 32
	w, _ := phy.NewRectWaveform(core.SamplesPerSymbol)
	shape, err := NewShape(w, frameBytes)
	if err != nil {
		t.Fatal(err)
	}
	bursts, _ := captureBursts(t, 8, frameBytes, 4, 11)
	const depth = 2
	p := NewPipeline(shape, Config{Workers: 4, Depth: depth})
	// 10× overload: the frame count dwarfs the pipeline's total capacity
	// (pool + queues), so the generator must be throttled by the free
	// pool or the run would need unbounded buffering.
	folded := 0
	n := 10 * (4*4 + 4*depth + 2)
	err = p.Run(n, pregenGen(bursts), func(f *Frame) error {
		folded++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if folded != n {
		t.Fatalf("folded %d frames, want %d", folded, n)
	}
	st := p.Stats()
	for i, name := range QueueNames() {
		if st.QueueMax[i] > depth {
			t.Errorf("queue %q watermark %d exceeds configured depth %d", name, st.QueueMax[i], depth)
		}
	}
	if st.InFlightMax > st.PoolSize {
		t.Errorf("in-flight watermark %d exceeds job pool %d", st.InFlightMax, st.PoolSize)
	}
	if st.InFlightMax == 0 {
		t.Error("pipeline reported no in-flight frames")
	}
}

// TestPipelineGenErrorStopsAtLowestIndex: an infrastructure error from
// Gen must abort the stream deterministically — the fold sees exactly
// the frames below the failing index, in order, at any worker count.
func TestPipelineGenErrorStopsAtLowestIndex(t *testing.T) {
	const frameBytes = 32
	w, _ := phy.NewRectWaveform(core.SamplesPerSymbol)
	shape, err := NewShape(w, frameBytes)
	if err != nil {
		t.Fatal(err)
	}
	bursts, _ := captureBursts(t, 4, frameBytes, 4, 3)
	boom := errors.New("gen exploded")
	const failAt = 37
	gen := func(ws *dsp.Workspace, idx int, dst []complex128) ([]complex128, error) {
		if idx >= failAt {
			return nil, fmt.Errorf("frame %d: %w", idx, boom)
		}
		return bursts[idx%len(bursts)], nil
	}
	for _, workers := range []int{1, 4} {
		var folded []int
		p := NewPipeline(shape, Config{Workers: workers, Depth: 4})
		err := p.Run(200, gen, func(f *Frame) error {
			folded = append(folded, f.Index)
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err=%v, want the gen error", workers, err)
		}
		if len(folded) != failAt {
			t.Fatalf("workers=%d: folded %d frames, want %d", workers, len(folded), failAt)
		}
		for i, idx := range folded {
			if idx != i {
				t.Fatalf("workers=%d: fold order %v not stream order", workers, folded)
			}
		}
	}
}

// TestPipelineFoldErrorStops: a fold error ends the stream with that
// error and nothing past it is folded.
func TestPipelineFoldErrorStops(t *testing.T) {
	const frameBytes = 32
	w, _ := phy.NewRectWaveform(core.SamplesPerSymbol)
	shape, err := NewShape(w, frameBytes)
	if err != nil {
		t.Fatal(err)
	}
	bursts, _ := captureBursts(t, 4, frameBytes, 4, 3)
	stop := errors.New("fold says stop")
	for _, workers := range []int{1, 4} {
		last := -1
		p := NewPipeline(shape, Config{Workers: workers, Depth: 4})
		err := p.Run(100, pregenGen(bursts), func(f *Frame) error {
			last = f.Index
			if f.Index == 10 {
				return stop
			}
			return nil
		})
		if !errors.Is(err, stop) {
			t.Fatalf("workers=%d: err=%v, want fold error", workers, err)
		}
		if last != 10 {
			t.Fatalf("workers=%d: last folded index %d, want 10", workers, last)
		}
	}
}

// sessionArtifacts runs one streaming session against a private
// registry, sampler and event log, returning the deterministic
// artifacts (timeseries.json bytes, events.jsonl bytes) plus the result
// with its schedule-dependent fields zeroed.
func sessionArtifacts(t *testing.T, workers int) ([]byte, []byte, SessionResult) {
	t.Helper()
	reg := obs.NewRegistry()
	smp, err := tsdb.Attach(reg, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	smp.Skip(tsdb.WallClockMetrics...)
	log := event.New(0)
	obs.EnableWith(reg)
	event.EnableWith(log)
	defer obs.Disable()
	defer event.Disable()
	defer tsdb.Disable()

	res, err := RunSession(SessionConfig{
		Frames:        240,
		FrameBytes:    32,
		Seed:          21,
		Workers:       workers,
		Depth:         4,
		ProgressEvery: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := log.Dropped(); d != 0 {
		t.Fatalf("event log dropped %d events", d)
	}
	var buf bytes.Buffer
	if err := log.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	res.WallSeconds, res.WallFPS = 0, 0
	res.Pipeline = PipelineStats{}
	return smp.Snapshot().JSON(), buf.Bytes(), res
}

// TestSessionWorkerInvariance is the tentpole determinism contract end
// to end: a streaming session's timeseries.json and events.jsonl must be
// byte-identical at 1 and 8 workers, and the deterministic result fields
// must match exactly. The stream-smoke CI job enforces the same property
// through cmd/mmtag rundirs.
func TestSessionWorkerInvariance(t *testing.T) {
	ts1, ev1, res1 := sessionArtifacts(t, 1)
	if res1.Frames != 240 {
		t.Fatalf("session streamed %d frames, want 240", res1.Frames)
	}
	if res1.Decoded == 0 {
		t.Fatal("session decoded nothing at 4 ft")
	}
	if len(ev1) == 0 {
		t.Fatal("session emitted no events")
	}
	ts8, ev8, res8 := sessionArtifacts(t, 8)
	if !bytes.Equal(ts1, ts8) {
		t.Error("timeseries.json diverged between workers=1 and workers=8")
	}
	if !bytes.Equal(ev1, ev8) {
		t.Error("events.jsonl diverged between workers=1 and workers=8")
	}
	if !reflect.DeepEqual(res1, res8) {
		t.Errorf("deterministic result fields diverged:\n w1 %+v\n w8 %+v", res1, res8)
	}
}

// TestSessionAccounting: the session's loss breakdown must partition the
// stream, and the throughput figures must follow from it.
func TestSessionAccounting(t *testing.T) {
	res, err := RunSession(SessionConfig{Frames: 100, FrameBytes: 64, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	total := res.Decoded + res.SyncFailures + res.DecodeErrors + res.CRCFailures + res.PayloadErrors
	if total != res.Frames {
		t.Fatalf("loss breakdown %d does not partition %d frames", total, res.Frames)
	}
	if res.AirTimeS <= 0 || res.VirtualFPS <= 0 {
		t.Fatalf("air time %g / virtual fps %g", res.AirTimeS, res.VirtualFPS)
	}
	wantGoodput := float64(res.Decoded*64*8) / res.AirTimeS
	if res.GoodputBps != wantGoodput {
		t.Fatalf("goodput %g, want %g", res.GoodputBps, wantGoodput)
	}
	if res.Frames != 100 || res.Decoded == 0 {
		t.Fatalf("unexpected accounting: %+v", res)
	}
}
