package reader

import (
	"fmt"
	"math"

	"github.com/mmtag/mmtag/internal/dsp"
)

// SpectrumMeasurement is the reader's spectrum-analyzer view of a
// capture — the instrument the paper's §7 setup literally used.
type SpectrumMeasurement struct {
	// FreqNorm are bin centers in cycles/sample, ascending (−0.5…0.5).
	FreqNorm []float64
	// PSDdB is the power spectral density per bin, dB relative to the
	// total capture power.
	PSDdB []float64
	// PeakDB and PeakFreqNorm locate the strongest bin.
	PeakDB       float64
	PeakFreqNorm float64
	// OccupiedBWNorm is the 90%-power bandwidth in cycles/sample.
	OccupiedBWNorm float64
}

// MeasureSpectrum estimates the capture's spectrum by Welch averaging
// with Hann windows of segLen samples (power of two not required).
func MeasureSpectrum(samples []complex128, segLen int) (SpectrumMeasurement, error) {
	var m SpectrumMeasurement
	psd, err := dsp.Welch(samples, segLen, dsp.Hann)
	if err != nil {
		return m, fmt.Errorf("reader: spectrum: %w", err)
	}
	// Reorder to ascending frequency.
	shift := make([]float64, len(psd))
	half := (len(psd) + 1) / 2
	copy(shift, psd[half:])
	copy(shift[len(psd)-half:], psd[:half])
	freqs := dsp.FFTFreqs(len(psd), 1)
	ordered := make([]float64, len(freqs))
	copy(ordered, freqs[half:])
	copy(ordered[len(psd)-half:], freqs[:half])

	var total float64
	for _, v := range shift {
		total += v
	}
	if total <= 0 {
		return m, fmt.Errorf("reader: empty capture")
	}
	m.FreqNorm = ordered
	m.PSDdB = make([]float64, len(shift))
	m.PeakDB = math.Inf(-1)
	for i, v := range shift {
		db := math.Inf(-1)
		if v > 0 {
			db = 10 * math.Log10(v/total)
		}
		m.PSDdB[i] = db
		if db > m.PeakDB {
			m.PeakDB = db
			m.PeakFreqNorm = ordered[i]
		}
	}
	m.OccupiedBWNorm = occupiedBW(shift, 0.90) / float64(len(shift))
	return m, nil
}

// occupiedBW returns the number of bins of the smallest centered-on-peak
// contiguous window containing frac of the total power.
func occupiedBW(psd []float64, frac float64) float64 {
	var total float64
	peak := 0
	for i, v := range psd {
		total += v
		if v > psd[peak] {
			peak = i
		}
	}
	if total <= 0 {
		return 0
	}
	acc := psd[peak]
	lo, hi := peak, peak
	for acc < frac*total && (lo > 0 || hi < len(psd)-1) {
		left, right := 0.0, 0.0
		if lo > 0 {
			left = psd[lo-1]
		}
		if hi < len(psd)-1 {
			right = psd[hi+1]
		}
		if left >= right && lo > 0 {
			lo--
			acc += left
		} else if hi < len(psd)-1 {
			hi++
			acc += right
		} else {
			lo--
			acc += left
		}
	}
	return float64(hi - lo + 1)
}
