package reader

import (
	"math"
	"math/cmplx"
	"testing"

	"github.com/mmtag/mmtag/internal/phy"
	"github.com/mmtag/mmtag/internal/rng"
)

func TestSpectrumOfTone(t *testing.T) {
	// A pure tone concentrates its power: tiny occupied bandwidth, peak
	// at the tone frequency.
	n := 4096
	f0 := 0.125
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Rect(1, 2*math.Pi*f0*float64(i))
	}
	m, err := MeasureSpectrum(x, 256)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.PeakFreqNorm-f0) > 1.0/256 {
		t.Errorf("peak at %g, want %g", m.PeakFreqNorm, f0)
	}
	if m.OccupiedBWNorm > 0.05 {
		t.Errorf("tone occupied bandwidth %g too wide", m.OccupiedBWNorm)
	}
	if len(m.FreqNorm) != 256 || len(m.PSDdB) != 256 {
		t.Error("bin count")
	}
	// Frequencies ascend.
	for i := 1; i < len(m.FreqNorm); i++ {
		if m.FreqNorm[i] <= m.FreqNorm[i-1] {
			t.Fatal("frequency axis not ascending")
		}
	}
}

func TestSpectrumOfOOKBurst(t *testing.T) {
	// Random OOK at sps samples/symbol occupies ≈ the symbol rate around
	// DC (null-to-null 2/sps; 90% power within roughly ±1/sps).
	src := rng.New(9)
	bits := src.Bits(make([]byte, 2048))
	syms, _ := (phy.OOK{}).Modulate(nil, bits)
	w, _ := phy.NewRectWaveform(8)
	x := w.Synthesize(syms)
	m, err := MeasureSpectrum(x, 512)
	if err != nil {
		t.Fatal(err)
	}
	symbolRate := 1.0 / 8
	if m.OccupiedBWNorm < symbolRate/4 {
		t.Errorf("OOK occupied bandwidth %g implausibly narrow", m.OccupiedBWNorm)
	}
	if m.OccupiedBWNorm > 3*symbolRate {
		t.Errorf("OOK occupied bandwidth %g implausibly wide (Rsym %g)", m.OccupiedBWNorm, symbolRate)
	}
	// OOK has a strong DC/carrier line: the peak bin sits at ≈ 0.
	if math.Abs(m.PeakFreqNorm) > 2.0/512 {
		t.Errorf("OOK peak at %g, want ≈0", m.PeakFreqNorm)
	}
}

func TestSpectrumErrors(t *testing.T) {
	if _, err := MeasureSpectrum(make([]complex128, 10), 64); err == nil {
		t.Error("short capture should fail")
	}
	if _, err := MeasureSpectrum(make([]complex128, 1024), 64); err == nil {
		t.Error("all-zero capture should fail")
	}
}

func TestOccupiedBWHelper(t *testing.T) {
	// All power in one bin.
	psd := []float64{0, 0, 10, 0, 0}
	if got := occupiedBW(psd, 0.9); got != 1 {
		t.Errorf("single-bin OBW %g", got)
	}
	// Uniform: 90% of bins.
	flat := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	if got := occupiedBW(flat, 0.9); got != 9 {
		t.Errorf("uniform OBW %g, want 9", got)
	}
	if occupiedBW([]float64{0, 0}, 0.9) != 0 {
		t.Error("zero PSD OBW")
	}
}
