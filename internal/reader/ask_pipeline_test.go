package reader

import (
	"bytes"
	"math"
	"testing"

	"github.com/mmtag/mmtag/internal/frame"
	"github.com/mmtag/mmtag/internal/phy"
	"github.com/mmtag/mmtag/internal/rng"
)

// synthBurstMCS renders a burst whose payload section uses the given MCS
// (header stays OOK, matching the tag's real behaviour).
func synthBurstMCS(t *testing.T, tagID uint16, payload []byte, mcs frame.MCS, leakage float64, sps int) []complex128 {
	t.Helper()
	raw, err := frame.Encode(tagID, mcs, payload)
	if err != nil {
		t.Fatal(err)
	}
	bits := frame.BitsFromBytes(nil, raw)
	syms := phy.PreambleSymbols(leakage)
	syms, err = (phy.OOK{Leakage: leakage}).Modulate(syms, bits[:frame.HeaderLen*8])
	if err != nil {
		t.Fatal(err)
	}
	switch mcs {
	case frame.MCSASK4:
		pure, err := (phy.ASK{M: 4}).Modulate(nil, bits[frame.HeaderLen*8:])
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range pure {
			syms = append(syms, complex(leakage+(1-leakage)*real(s), 0))
		}
	default:
		syms, err = (phy.OOK{Leakage: leakage}).Modulate(syms, bits[frame.HeaderLen*8:])
		if err != nil {
			t.Fatal(err)
		}
	}
	w, err := phy.NewRectWaveform(sps)
	if err != nil {
		t.Fatal(err)
	}
	return w.Synthesize(syms)
}

func TestDecodeBurstASK4Clean(t *testing.T) {
	payload := []byte("sixteen-QAM is a bridge too far; 4-ASK will do")
	samples := synthBurstMCS(t, 0x44AA, payload, frame.MCSASK4, 0.05, 8)
	rx := make([]complex128, 160+len(samples)+80)
	copy(rx[160:], samples)
	w, _ := phy.NewRectWaveform(8)
	dec, stats, err := DecodeBurst(rx, w)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Header.MCS != frame.MCSASK4 {
		t.Fatalf("MCS %v", dec.Header.MCS)
	}
	if !dec.Trailer.OK || !bytes.Equal(dec.Payload.Data, payload) {
		t.Errorf("payload %q ok=%v", dec.Payload.Data, dec.Trailer.OK)
	}
	if stats.PreambleMetric <= 0 {
		t.Error("metric")
	}
}

func TestDecodeBurstASK4ModerateNoise(t *testing.T) {
	src := rng.New(13)
	payload := src.Bytes(make([]byte, 24))
	samples := synthBurstMCS(t, 3, payload, frame.MCSASK4, 0.05, 8)
	rx := make([]complex128, 96+len(samples)+48)
	copy(rx[96:], samples)
	src.AWGN(rx, 0.002) // very comfortable for 4 levels
	w, _ := phy.NewRectWaveform(8)
	dec, _, err := DecodeBurst(rx, w)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Trailer.OK || !bytes.Equal(dec.Payload.Data, payload) {
		t.Error("noisy 4-ASK decode failed")
	}
}

func TestDecideASK4Direct(t *testing.T) {
	// Exact level points decode exactly.
	src := rng.New(7)
	bits := src.Bits(make([]byte, 400))
	syms, err := (phy.ASK{M: 4}).Modulate(nil, bits)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecideASK4(syms)
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i := range bits {
		if got[i] != bits[i] {
			errs++
		}
	}
	if errs != 0 {
		t.Errorf("%d errors on clean levels", errs)
	}
	if _, err := DecideASK4(nil); err == nil {
		t.Error("empty decisions should fail")
	}
	flat := make([]complex128, 16)
	for i := range flat {
		flat[i] = 0.5
	}
	if _, err := DecideASK4(flat); err == nil {
		t.Error("degenerate rails should fail")
	}
}

func TestDecideASK4ScaleInvariance(t *testing.T) {
	src := rng.New(9)
	bits := src.Bits(make([]byte, 200))
	syms, _ := (phy.ASK{M: 4}).Modulate(nil, bits)
	for i := range syms {
		syms[i] = syms[i]*complex(3.7e-4, 0) + complex(2e-5, 0)
	}
	got, err := DecideASK4(syms)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatal("scaled decisions flipped bits")
		}
	}
}

func TestHornPeakAndResidual(t *testing.T) {
	h := DefaultHorn()
	if h.PeakGainDBi() != 20 {
		t.Error("horn peak gain")
	}
	if (Horn{}).HPBWRad() != 0 {
		t.Error("zero horn HPBW")
	}
	if g := (Horn{Gain: 10}).GainDBi(0, 0.1); !math.IsInf(g, -1) {
		t.Error("zero-HPBW horn should have -inf gain off axis")
	}
	c := DefaultConfig()
	// 13 dBm − 60 − 50 = −97 dBm.
	if got := c.ResidualLeakageDBm(); math.Abs(got-(-96.99)) > 0.01 {
		t.Errorf("residual leakage %g", got)
	}
}
