package reader

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"github.com/mmtag/mmtag/internal/dsp"
	"github.com/mmtag/mmtag/internal/frame"
	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/obs/event"
	"github.com/mmtag/mmtag/internal/obs/signal"
	"github.com/mmtag/mmtag/internal/phy"
)

// ErrSync reports that burst detection found no preamble; callers (and
// metrics) separate it from demodulation/framing failures with
// errors.Is.
var ErrSync = errors.New("reader: sync failed")

// ErrPipelineBusy reports a concurrent DecodeBurst/DecodeBurstBatch on
// one Pipeline. The shared workspace would be silently corrupted by
// interleaved Resets, so overlapping use is detected and refused instead;
// parallel decoders create one Pipeline per goroutine (or use
// internal/stream's stage-parallel pipeline).
var ErrPipelineBusy = errors.New("reader: pipeline already in use")

func init() {
	// The preamble metric is an unnormalized correlation peak at √W
	// amplitude scale (~1e-5 on the default link); decades cover it.
	obs.RegisterBuckets("reader_preamble_metric",
		1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1)
}

// RxStats summarizes one burst reception.
type RxStats struct {
	// PreambleMetric is the sync correlation peak.
	PreambleMetric float64
	// Threshold is the adaptive OOK decision threshold used.
	Threshold float64
	// SNRdBEst is the decision-domain SNR estimate (NaN if inestimable).
	SNRdBEst float64
	// BitErrors counts header+payload bit flips when the caller knows the
	// truth (filled by the link layer, not here).
	BitErrors int
	// SyncOffset is the detected burst start in samples.
	SyncOffset int
	// Decisions are the slicer-input decision statistics of the final
	// decide pass. The slice is workspace-backed: valid only until the
	// owning workspace's next Reset (copy to keep).
	Decisions []complex128
	// Quality holds slicer-input quality scalars measured by the signal
	// tap; HasQuality reports whether a tap was active and the burst was
	// measurable. Without an active tap both stay zero — the measurement
	// is skipped entirely to keep the taps-disabled path free.
	Quality    phy.DecisionQuality
	HasQuality bool
}

// DecideOOK makes hard OOK decisions with an adaptive two-cluster
// threshold: it splits decision magnitudes at the midpoint of the
// extremes, recomputes the cluster means, and thresholds at their
// average. Self-interference and unknown channel gain shift both OOK
// levels; the adaptive threshold absorbs that, unlike a fixed one.
func DecideOOK(decisions []complex128) (bits []byte, threshold float64, err error) {
	return DecideOOKWS(nil, decisions)
}

// DecideOOKWS is DecideOOK with the magnitude and bit buffers checked
// out of ws; the returned bits are valid until the next ws.Reset. A nil
// ws allocates.
func DecideOOKWS(ws *dsp.Workspace, decisions []complex128) (bits []byte, threshold float64, err error) {
	if len(decisions) == 0 {
		return nil, 0, fmt.Errorf("reader: no decisions")
	}
	mags := dsp.MagnitudesInto(ws.Float(len(decisions)), decisions)
	lo, hi := mags[0], mags[0]
	for _, m := range mags {
		lo = math.Min(lo, m)
		hi = math.Max(hi, m)
	}
	mid := (lo + hi) / 2
	var muH, muL float64
	var nH, nL int
	for _, m := range mags {
		if m >= mid {
			muH += m
			nH++
		} else {
			muL += m
			nL++
		}
	}
	if nH == 0 || nL == 0 {
		// Degenerate (all one level); fall back to the midpoint.
		threshold = mid
	} else {
		threshold = (muH/float64(nH) + muL/float64(nL)) / 2
	}
	bits = ws.Bytes(len(mags))
	for i, m := range mags {
		if m >= threshold {
			bits[i] = 0 // reflecting = data '0' (paper §6)
		} else {
			bits[i] = 1
		}
	}
	return bits, threshold, nil
}

// DecideASK4 makes hard 4-ASK decisions: it estimates the low and high
// amplitude rails from the extreme deciles, normalizes each decision into
// [0,1], and Gray-demaps with the nearest of the four uniform levels.
func DecideASK4(decisions []complex128) (bits []byte, err error) {
	return DecideASK4WS(nil, decisions)
}

// DecideASK4WS is DecideASK4 with the magnitude, sort, normalization and
// bit buffers checked out of ws (valid until the next ws.Reset; nil ws
// allocates).
func DecideASK4WS(ws *dsp.Workspace, decisions []complex128) (bits []byte, err error) {
	if len(decisions) == 0 {
		return nil, fmt.Errorf("reader: no decisions")
	}
	mags := dsp.MagnitudesInto(ws.Float(len(decisions)), decisions)
	sorted := ws.Float(len(mags))
	copy(sorted, mags)
	sort.Float64s(sorted)
	decile := len(sorted) / 10
	if decile < 1 {
		decile = 1
	}
	var lo, hi float64
	for i := 0; i < decile; i++ {
		lo += sorted[i]
		hi += sorted[len(sorted)-1-i]
	}
	lo /= float64(decile)
	hi /= float64(decile)
	span := hi - lo
	if span <= 0 {
		return nil, fmt.Errorf("reader: ASK rails degenerate")
	}
	norm := ws.Complex(len(mags))
	for i, m := range mags {
		norm[i] = complex((m-lo)/span, 0)
	}
	return (phy.ASK{M: 4}).Demodulate(ws.Bytes(2 * len(mags))[:0], norm), nil
}

// Pipeline is a reusable receive chain: it owns a dsp.Workspace so
// repeated DecodeBurst calls reuse every correlation, normalization and
// bit-slicing buffer instead of reallocating them per burst. A Pipeline
// is not safe for concurrent use; parallel sweeps create one per worker.
// Overlapping calls are detected (the in-use flag below) and fail with
// ErrPipelineBusy rather than corrupting the workspace.
type Pipeline struct {
	ws    *dsp.Workspace
	inUse atomic.Bool
}

// NewPipeline returns a receive pipeline with a fresh workspace.
func NewPipeline() *Pipeline { return &Pipeline{ws: dsp.NewWorkspace()} }

// Workspace exposes the pipeline's arena so callers that capture and
// decode in one frame (e.g. the link layer) can share it.
func (p *Pipeline) Workspace() *dsp.Workspace { return p.ws }

// DecodeBurst decodes one burst, recycling the previous call's buffers
// first. The returned frame references workspace memory: it is valid
// only until the next call on this pipeline (copy the payload out to
// keep it). A call overlapping another DecodeBurst/DecodeBurstBatch on
// the same pipeline fails with ErrPipelineBusy.
func (p *Pipeline) DecodeBurst(samples []complex128, w phy.Waveform) (*frame.Decoded, RxStats, error) {
	if !p.inUse.CompareAndSwap(false, true) {
		return nil, RxStats{}, ErrPipelineBusy
	}
	defer p.inUse.Store(false)
	p.ws.Reset()
	return DecodeBurstWS(p.ws, samples, w)
}

// DecodeBurstBatch decodes a batch of same-shaped bursts through this
// pipeline's single workspace. Ordering is part of the contract: visit
// is invoked exactly once per burst, in increasing index order (0, 1, …,
// len(bursts)-1), and each (frame, stats, err) triple is identical to
// what a one-at-a-time DecodeBurst loop over the same bursts would
// produce — batch decoding is an amortization, never a reordering (see
// TestDecodeBurstBatchOrderPinned). The workspace is Reset between
// bursts (recycling every scratch buffer) while its cached FFT plans
// survive, so the whole batch shares one set of twiddle tables and
// stabilized buffers — the per-burst decode is allocation-free after the
// first burst. The decoded frame and stats passed to visit reference
// workspace memory and are valid ONLY during that visit call; copy out
// anything that must be kept. A call overlapping another
// DecodeBurst/DecodeBurstBatch on the same pipeline fails with
// ErrPipelineBusy before visiting anything.
func (p *Pipeline) DecodeBurstBatch(bursts [][]complex128, w phy.Waveform, visit func(i int, f *frame.Decoded, stats RxStats, err error)) error {
	if !p.inUse.CompareAndSwap(false, true) {
		return ErrPipelineBusy
	}
	defer p.inUse.Store(false)
	for i, samples := range bursts {
		p.ws.Reset()
		f, stats, err := DecodeBurstWS(p.ws, samples, w)
		visit(i, f, stats, err)
	}
	return nil
}

// DecodeBurst runs the full receive pipeline on captured baseband
// samples: Barker sync, matched filtering, adaptive decisions, and
// layered frame decoding. The header (always OOK) is decoded first to
// learn the payload length and MCS, then the remainder of the burst with
// the scheme the header names.
func DecodeBurst(samples []complex128, w phy.Waveform) (*frame.Decoded, RxStats, error) {
	return DecodeBurstWS(nil, samples, w)
}

// DecodeBurstWS is DecodeBurst drawing every scratch buffer from ws. It
// never Resets ws — it composes with a caller that captured the samples
// from the same arena — so the returned frame's payload references ws
// memory and is valid only until the caller's next Reset. A nil ws
// allocates, which is exactly DecodeBurst.
func DecodeBurstWS(ws *dsp.Workspace, samples []complex128, w phy.Waveform) (*frame.Decoded, RxStats, error) {
	var stats RxStats
	span := obs.StartSpan("reader.decode")
	defer span.End()
	obs.Inc("reader_bursts_total")

	sync := span.StartChild("reader.sync")
	start, metric, err := w.DetectBurstWS(ws, samples, 0)
	sync.End()
	if err != nil {
		obs.Inc("reader_sync_failures_total")
		return nil, stats, fmt.Errorf("%w: %v", ErrSync, err)
	}
	stats.PreambleMetric = metric
	stats.SyncOffset = start
	if t := signal.Active(); t != nil {
		t.Sync(start, metric)
	}
	obs.Observe("reader_preamble_metric", metric)
	if event.Enabled() {
		event.Emit(0, event.LevelDebug, "reader.demod", "sync",
			event.F("metric", metric), event.D("start", start))
	}

	decide := span.StartChild("reader.decide")
	headerSyms := frame.HeaderLen * 8
	dec, err := w.MatchedFilterWS(ws, samples, start, headerSyms)
	if err != nil {
		decide.End()
		obs.Inc("reader_decode_errors_total", obs.L("stage", "decide"))
		return nil, stats, err
	}
	headerBits, thr, err := DecideOOKWS(ws, dec)
	if err != nil {
		decide.End()
		obs.Inc("reader_decode_errors_total", obs.L("stage", "decide"))
		return nil, stats, err
	}
	stats.Threshold = thr
	headerBytes, err := frame.AppendBytesFromBits(ws.Bytes(frame.HeaderLen)[:0], headerBits)
	if err != nil {
		decide.End()
		obs.Inc("reader_decode_errors_total", obs.L("stage", "decide"))
		return nil, stats, err
	}
	var hdr frame.Header
	// Decode against a padded view: the header parser wants to record a
	// payload slice even though we have not demodulated it yet.
	padded := ws.Bytes(frame.HeaderLen + 1)
	copy(padded, headerBytes)
	padded[frame.HeaderLen] = 0
	if err := hdr.DecodeFromBytes(padded); err != nil {
		decide.End()
		obs.Inc("reader_decode_errors_total", obs.L("stage", "header"))
		return nil, stats, fmt.Errorf("reader: header: %w", err)
	}

	restBits := (int(hdr.Length) + frame.CRCLen) * 8
	restSyms := restBits
	if hdr.MCS == frame.MCSASK4 {
		restSyms = restBits / 2
	}
	restStart := start + headerSyms*w.SPS
	decRest, err := w.MatchedFilterWS(ws, samples, restStart, restSyms)
	if err != nil {
		decide.End()
		obs.Inc("reader_decode_errors_total", obs.L("stage", "decide"))
		return nil, stats, err
	}

	var bits []byte
	switch hdr.MCS {
	case frame.MCSASK4:
		// Header decided on its own threshold; payload by 4-level rails.
		payloadBits, err := DecideASK4WS(ws, decRest)
		if err != nil {
			decide.End()
			obs.Inc("reader_decode_errors_total", obs.L("stage", "decide"))
			return nil, stats, err
		}
		bits = ws.Bytes(len(headerBits) + len(payloadBits))
		copy(bits, headerBits)
		copy(bits[len(headerBits):], payloadBits)
		stats.Decisions = decRest
		if t := signal.Active(); t != nil {
			stats.Quality, stats.HasQuality = t.SlicerInput(decRest, 0)
		}
		if snr, err := phy.MeasureSNRWS(ws, dec); err == nil {
			stats.SNRdBEst = snr
		} else {
			stats.SNRdBEst = math.NaN()
		}
	default:
		// Re-decide header and rest together so the threshold benefits
		// from the whole burst.
		all := ws.Complex(len(dec) + len(decRest))
		copy(all, dec)
		copy(all[len(dec):], decRest)
		bits, thr, err = DecideOOKWS(ws, all)
		if err != nil {
			decide.End()
			obs.Inc("reader_decode_errors_total", obs.L("stage", "decide"))
			return nil, stats, err
		}
		stats.Threshold = thr
		stats.Decisions = all
		if t := signal.Active(); t != nil {
			stats.Quality, stats.HasQuality = t.SlicerInput(all, thr)
		}
		if snr, err := phy.MeasureSNRWS(ws, all); err == nil {
			stats.SNRdBEst = snr
		} else {
			stats.SNRdBEst = math.NaN()
		}
	}
	decide.End()
	if event.Enabled() {
		event.Emit(0, event.LevelDebug, "reader.demod", "decide",
			event.S("mcs", hdr.MCS.String()),
			event.F("threshold", stats.Threshold), event.F("snr_db", stats.SNRdBEst))
	}

	deframe := span.StartChild("reader.deframe")
	defer deframe.End()
	raw, err := frame.AppendBytesFromBits(ws.Bytes(len(bits) / 8)[:0], bits)
	if err != nil {
		obs.Inc("reader_decode_errors_total", obs.L("stage", "deframe"))
		return nil, stats, err
	}
	var out frame.Decoded
	if err := (&frame.Parser{}).Decode(raw, &out); err != nil {
		obs.Inc("reader_decode_errors_total", obs.L("stage", "deframe"))
		return nil, stats, fmt.Errorf("reader: frame: %w", err)
	}
	return &out, stats, nil
}
