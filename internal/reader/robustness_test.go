package reader

import (
	"testing"

	"github.com/mmtag/mmtag/internal/phy"
	"github.com/mmtag/mmtag/internal/rng"
)

// TestDecodeBurstNeverFalselyVerifies feeds many pure-noise captures to
// the full pipeline: it may fail to sync or fail to parse, but it must
// never return a CRC-verified frame, and it must never panic.
func TestDecodeBurstNeverFalselyVerifies(t *testing.T) {
	w, err := phy.NewRectWaveform(4)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(0xD00F)
	verified := 0
	for i := 0; i < 60; i++ {
		noise := make([]complex128, 2048)
		src.AWGN(noise, 1)
		dec, _, err := DecodeBurst(noise, w)
		if err == nil && dec.Trailer.OK {
			verified++
		}
	}
	if verified != 0 {
		t.Errorf("%d pure-noise captures verified", verified)
	}
}

// TestDecodeBurstDCOffsetRobust checks the adaptive stages survive a
// large constant offset plus scaling, across seeds.
func TestDecodeBurstDCOffsetRobust(t *testing.T) {
	w, _ := phy.NewRectWaveform(8)
	for seed := uint64(1); seed <= 5; seed++ {
		src := rng.New(seed)
		samples := synthBurst(t, 5, src.Bytes(make([]byte, 12)), 0.05, 8)
		rx := make([]complex128, 96+len(samples)+64)
		copy(rx[96:], samples)
		for i := range rx {
			rx[i] = rx[i]*complex(0.003, 0) + complex(0.001, -0.0005)
		}
		src.AWGN(rx, 1e-9)
		dec, _, err := DecodeBurst(rx, w)
		if err != nil {
			// DC offsets shift the envelope floor; the envelope
			// correlator still syncs because the template is zero-mean.
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !dec.Trailer.OK {
			t.Errorf("seed %d: CRC failed under offset+scaling", seed)
		}
	}
}

// TestDecodeBurstTagIDSweep runs the pipeline over many tag IDs and
// payload lengths to shake out length-dependent bugs.
func TestDecodeBurstTagIDSweep(t *testing.T) {
	w, _ := phy.NewRectWaveform(4)
	src := rng.New(3)
	for _, n := range []int{0, 1, 2, 7, 31, 64} {
		payload := src.Bytes(make([]byte, n))
		id := uint16(src.Intn(65536))
		samples := synthBurst(t, id, payload, 0.05, 4)
		rx := make([]complex128, 64+len(samples)+32)
		copy(rx[64:], samples)
		dec, _, err := DecodeBurst(rx, w)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if dec.Header.TagID != id || int(dec.Header.Length) != n || !dec.Trailer.OK {
			t.Errorf("n=%d: header %+v ok=%v", n, dec.Header, dec.Trailer.OK)
		}
	}
}
