package reader

import (
	"bytes"
	"errors"
	"math"
	"math/cmplx"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/mmtag/mmtag/internal/frame"
	"github.com/mmtag/mmtag/internal/par"
	"github.com/mmtag/mmtag/internal/phy"
	"github.com/mmtag/mmtag/internal/rng"
)

// synthBurst renders a complete tag burst (preamble + frame) at the given
// OOK leakage and samples/symbol.
func synthBurst(t *testing.T, tagID uint16, payload []byte, leakage float64, sps int) []complex128 {
	t.Helper()
	raw, err := frame.Encode(tagID, frame.MCSOOK, payload)
	if err != nil {
		t.Fatal(err)
	}
	syms := phy.PreambleSymbols(leakage)
	bits := frame.BitsFromBytes(nil, raw)
	syms, err = (phy.OOK{Leakage: leakage}).Modulate(syms, bits)
	if err != nil {
		t.Fatal(err)
	}
	w, err := phy.NewRectWaveform(sps)
	if err != nil {
		t.Fatal(err)
	}
	return w.Synthesize(syms)
}

func TestDecideOOKAdaptiveThreshold(t *testing.T) {
	// A constant complex offset (self-interference) plus scaling must not
	// break the decisions.
	src := rng.New(3)
	bits := src.Bits(make([]byte, 400))
	dec, _ := (phy.OOK{}).Modulate(nil, bits)
	offset := complex(0.35, 0.2)
	for i := range dec {
		dec[i] = dec[i]*complex(0.01, 0) + offset
	}
	got, thr, err := DecideOOK(dec)
	if err != nil {
		t.Fatal(err)
	}
	if thr <= cmplx.Abs(offset) {
		t.Errorf("threshold %g did not adapt above the offset %g", thr, cmplx.Abs(offset))
	}
	errs := 0
	for i := range bits {
		if got[i] != bits[i] {
			errs++
		}
	}
	if errs != 0 {
		t.Errorf("%d decision errors with offset/scaling", errs)
	}
}

func TestDecideOOKDegenerate(t *testing.T) {
	if _, _, err := DecideOOK(nil); err == nil {
		t.Error("empty decisions should fail")
	}
	// All-identical magnitudes must not crash.
	flat := []complex128{1, 1, 1, 1}
	bits, _, err := DecideOOK(flat)
	if err != nil || len(bits) != 4 {
		t.Errorf("flat decisions: %v %v", bits, err)
	}
}

func TestDecodeBurstCleanChannel(t *testing.T) {
	payload := []byte("gigabit backscatter at 24 GHz")
	samples := synthBurst(t, 0xABCD, payload, 0.05, 8)
	// Add leading/trailing silence like a real capture window.
	rx := make([]complex128, 200+len(samples)+100)
	copy(rx[200:], samples)
	w, _ := phy.NewRectWaveform(8)
	dec, stats, err := DecodeBurst(rx, w)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Header.TagID != 0xABCD {
		t.Errorf("tag ID %04x", dec.Header.TagID)
	}
	if !bytes.Equal(dec.Payload.Data, payload) {
		t.Errorf("payload mismatch: %q", dec.Payload.Data)
	}
	if !dec.Trailer.OK {
		t.Error("CRC should pass on a clean channel")
	}
	if stats.PreambleMetric <= 0 {
		t.Error("preamble metric")
	}
	if stats.Threshold <= 0 || stats.Threshold >= 1 {
		t.Errorf("threshold %g out of (0,1)", stats.Threshold)
	}
}

// TestPipelineReuseMatchesOneShot: decoding the same capture through a
// reusable Pipeline (recycled workspace buffers) must be identical to
// the one-shot allocating DecodeBurst, call after call.
func TestPipelineReuseMatchesOneShot(t *testing.T) {
	payload := []byte("workspace reuse burst")
	samples := synthBurst(t, 0x1234, payload, 0.05, 8)
	rx := make([]complex128, 150+len(samples)+80)
	copy(rx[150:], samples)
	w, _ := phy.NewRectWaveform(8)
	want, wantStats, err := DecodeBurst(rx, w)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline()
	for i := 0; i < 3; i++ {
		got, stats, err := p.DecodeBurst(rx, w)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got.Header.TagID != want.Header.TagID || !bytes.Equal(got.Payload.Data, want.Payload.Data) {
			t.Fatalf("call %d: decoded frame diverged from one-shot decode", i)
		}
		// RxStats carries the (workspace-backed) decision slice since the
		// signal-tap PR, so the struct is no longer ==-comparable;
		// DeepEqual compares the slice contents along with the scalars.
		if !reflect.DeepEqual(stats, wantStats) {
			t.Fatalf("call %d: stats %+v, want %+v", i, stats, wantStats)
		}
	}
}

// TestDecodeBurstBatchMatchesOneShot: batch decoding through one
// pipeline must yield the same frames as independent one-shot decodes,
// and the per-burst visit must observe valid workspace-backed results.
func TestDecodeBurstBatchMatchesOneShot(t *testing.T) {
	w, _ := phy.NewRectWaveform(8)
	payloads := [][]byte{
		[]byte("first burst"),
		[]byte("the second, rather longer, burst payload"),
		[]byte("third"),
		[]byte("and a fourth burst to round out the batch"),
	}
	var bursts [][]complex128
	for i, p := range payloads {
		samples := synthBurst(t, uint16(0x1000+i), p, 0.05, 8)
		rx := make([]complex128, 120+len(samples)+60)
		copy(rx[120:], samples)
		bursts = append(bursts, rx)
	}
	visited := 0
	p := NewPipeline()
	batchErr := p.DecodeBurstBatch(bursts, w, func(i int, f *frame.Decoded, stats RxStats, err error) {
		if err != nil {
			t.Fatalf("burst %d: %v", i, err)
		}
		want, wantStats, err := DecodeBurst(bursts[i], w)
		if err != nil {
			t.Fatalf("one-shot %d: %v", i, err)
		}
		if f.Header.TagID != want.Header.TagID || !bytes.Equal(f.Payload.Data, want.Payload.Data) {
			t.Fatalf("burst %d: batch decode diverged from one-shot", i)
		}
		if !reflect.DeepEqual(stats, wantStats) {
			t.Fatalf("burst %d: stats %+v, want %+v", i, stats, wantStats)
		}
		visited++
	})
	if batchErr != nil {
		t.Fatalf("batch: %v", batchErr)
	}
	if visited != len(bursts) {
		t.Fatalf("visited %d bursts, want %d", visited, len(bursts))
	}
}

// TestBatchDecodeWorkerInvariance: fanning a burst batch across per-worker
// pipelines must produce byte-identical payloads for any worker count
// (the demod path has no cross-burst state).
func TestBatchDecodeWorkerInvariance(t *testing.T) {
	w, _ := phy.NewRectWaveform(8)
	const nBursts = 8
	var bursts [][]complex128
	for i := 0; i < nBursts; i++ {
		payload := make([]byte, 16+i*7)
		rng.New(uint64(i + 1)).Bits(payload)
		samples := synthBurst(t, uint16(i), payload, 0.05, 8)
		rx := make([]complex128, 90+len(samples)+50)
		copy(rx[90:], samples)
		bursts = append(bursts, rx)
	}
	run := func(workers int) [][]byte {
		prev := par.SetWorkers(workers)
		defer par.SetWorkers(prev)
		out := make([][]byte, nBursts)
		par.ForEachWith(nBursts, NewPipeline, func(p *Pipeline, i int) {
			f, _, err := p.DecodeBurst(bursts[i], w)
			if err != nil {
				t.Errorf("burst %d: %v", i, err)
				return
			}
			out[i] = append([]byte(nil), f.Payload.Data...)
		})
		return out
	}
	one := run(1)
	four := run(4)
	for i := range one {
		if !bytes.Equal(one[i], four[i]) {
			t.Fatalf("burst %d: payload differs between 1 and 4 workers", i)
		}
	}
}

// TestPipelineSteadyStateAllocs bounds the per-burst allocation count of
// the reusable pipeline: after the first call sizes the workspace pools,
// a decode may allocate only the returned frame.Decoded and the few
// fixed-size header values — nothing proportional to the burst.
func TestPipelineSteadyStateAllocs(t *testing.T) {
	payload := make([]byte, 64)
	samples := synthBurst(t, 0x42, payload, 0.05, 8)
	rx := make([]complex128, 100+len(samples)+60)
	copy(rx[100:], samples)
	w, _ := phy.NewRectWaveform(8)
	p := NewPipeline()
	if _, _, err := p.DecodeBurst(rx, w); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(10, func() {
		if _, _, err := p.DecodeBurst(rx, w); err != nil {
			t.Fatal(err)
		}
	})
	// The one-shot path allocates proportionally to the burst (dozens of
	// buffers); the pipeline must stay at a small constant.
	if n > 6 {
		t.Errorf("pipeline decode: %v allocs/run, want ≤ 6", n)
	}
}

func TestDecodeBurstNoisy(t *testing.T) {
	src := rng.New(77)
	payload := src.Bytes(make([]byte, 16))
	samples := synthBurst(t, 7, payload, 0.05, 8)
	rx := make([]complex128, 128+len(samples)+64)
	copy(rx[128:], samples)
	// ≈17 dB decision SNR after the 8-sample matched filter gain.
	src.AWGN(rx, 0.05)
	w, _ := phy.NewRectWaveform(8)
	dec, stats, err := DecodeBurst(rx, w)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !dec.Trailer.OK {
		t.Error("CRC failed at comfortable SNR")
	}
	if !bytes.Equal(dec.Payload.Data, payload) {
		t.Error("payload corrupted")
	}
	if math.IsNaN(stats.SNRdBEst) || stats.SNRdBEst < 8 {
		t.Errorf("SNR estimate %g implausible", stats.SNRdBEst)
	}
}

func TestDecodeBurstGarbage(t *testing.T) {
	w, _ := phy.NewRectWaveform(8)
	src := rng.New(5)
	noise := make([]complex128, 4096)
	src.AWGN(noise, 1)
	// Pure noise: either sync fails, header parsing fails, or the CRC
	// flags the frame — it must never return a verified frame.
	dec, _, err := DecodeBurst(noise, w)
	if err == nil && dec.Trailer.OK {
		t.Error("garbage decoded as a valid frame")
	}
	// Far too short for even the preamble.
	if _, _, err := DecodeBurst(make([]complex128, 10), w); err == nil {
		t.Error("short capture should fail")
	}
}

func TestPipelineWorkspaceShared(t *testing.T) {
	p := NewPipeline()
	if p.Workspace() == nil {
		t.Fatal("pipeline workspace is nil")
	}
	if p.Workspace() != p.Workspace() {
		t.Fatal("Workspace must return the pipeline's own arena")
	}
}

// TestDecodeBurstBatchOrderPinned: the batch visit order is part of the
// API contract — strictly increasing index order, with each result
// identical to the one-at-a-time decode sequence. The test fails if the
// batch path ever reorders, skips or duplicates a burst.
func TestDecodeBurstBatchOrderPinned(t *testing.T) {
	w, _ := phy.NewRectWaveform(8)
	const nBursts = 6
	var bursts [][]complex128
	for i := 0; i < nBursts; i++ {
		payload := rng.New(uint64(100 + i)).Bytes(make([]byte, 8+i*5))
		samples := synthBurst(t, uint16(i), payload, 0.05, 8)
		rx := make([]complex128, 80+len(samples)+40)
		copy(rx[80:], samples)
		bursts = append(bursts, rx)
	}
	// Reference stream: a one-at-a-time DecodeBurst loop in index order.
	type result struct {
		tagID   uint16
		payload []byte
		ok      bool
		err     bool
	}
	var want []result
	ref := NewPipeline()
	for _, rx := range bursts {
		f, _, err := ref.DecodeBurst(rx, w)
		r := result{err: err != nil}
		if err == nil {
			r.tagID = f.Header.TagID
			r.payload = append([]byte(nil), f.Payload.Data...)
			r.ok = f.Trailer.OK
		}
		want = append(want, r)
	}
	var order []int
	var got []result
	err := NewPipeline().DecodeBurstBatch(bursts, w, func(i int, f *frame.Decoded, _ RxStats, err error) {
		order = append(order, i)
		r := result{err: err != nil}
		if err == nil {
			r.tagID = f.Header.TagID
			r.payload = append([]byte(nil), f.Payload.Data...)
			r.ok = f.Trailer.OK
		}
		got = append(got, r)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != nBursts {
		t.Fatalf("visited %d bursts, want %d", len(order), nBursts)
	}
	for i, idx := range order {
		if idx != i {
			t.Fatalf("visit order %v diverged from increasing index order", order)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("batch results diverged from one-at-a-time decode:\n got %+v\nwant %+v", got, want)
	}
}

// TestPipelineConcurrentUseGuard: overlapping use of one Pipeline must
// fail with ErrPipelineBusy instead of silently corrupting the shared
// workspace. Run under -race in CI: the guard also keeps the workspace
// data-race-free because only the CAS winner touches it.
func TestPipelineConcurrentUseGuard(t *testing.T) {
	payload := []byte("contended pipeline burst")
	samples := synthBurst(t, 0x7777, payload, 0.05, 8)
	rx := make([]complex128, 150+len(samples)+80)
	copy(rx[150:], samples)
	w, _ := phy.NewRectWaveform(8)
	p := NewPipeline()

	const goroutines = 8
	const iters = 25
	var busy, decoded atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				f, _, err := p.DecodeBurst(rx, w)
				switch {
				case errors.Is(err, ErrPipelineBusy):
					busy.Add(1)
				case err != nil:
					t.Errorf("unexpected decode error: %v", err)
				default:
					// The CAS winner must always see an intact decode.
					if f.Header.TagID != 0x7777 || !f.Trailer.OK {
						t.Errorf("winner decoded corrupt frame: tag %04x ok=%v",
							f.Header.TagID, f.Trailer.OK)
					}
					decoded.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if decoded.Load() == 0 {
		t.Fatal("no goroutine ever won the pipeline")
	}
	// Same guard on the batch entry point, deterministically: hold the
	// flag from inside a visit callback and re-enter.
	bursts := [][]complex128{rx}
	err := p.DecodeBurstBatch(bursts, w, func(int, *frame.Decoded, RxStats, error) {
		if _, _, err := p.DecodeBurst(rx, w); !errors.Is(err, ErrPipelineBusy) {
			t.Errorf("re-entrant DecodeBurst: err=%v, want ErrPipelineBusy", err)
		}
		if err := p.DecodeBurstBatch(bursts, w, func(int, *frame.Decoded, RxStats, error) {
			t.Error("re-entrant batch visited a burst")
		}); !errors.Is(err, ErrPipelineBusy) {
			t.Errorf("re-entrant DecodeBurstBatch: err=%v, want ErrPipelineBusy", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// The flag must be released after both paths return.
	if _, _, err := p.DecodeBurst(rx, w); err != nil {
		t.Fatalf("pipeline stayed busy after release: %v", err)
	}
}
