// Package reader models the mmTag reader (paper §4, §7): a 20 mW
// transmitter and a spectrum-analyzer-style receiver behind steerable
// directional antennas, with selectable receive bandwidth, a 5 dB noise
// figure, a transmit-leakage (self-interference) path, the sector-scan
// loop of Fig. 2, and the OOK demodulation/decoding pipeline.
package reader

import (
	"fmt"
	"math"

	"github.com/mmtag/mmtag/internal/antenna"
	"github.com/mmtag/mmtag/internal/units"
)

// Antenna is the reader's steerable directional antenna: a gain pattern
// around a commanded beam direction.
type Antenna interface {
	// GainDBi returns the realized gain toward target (radians, global
	// frame offset from the antenna's boresight) when the beam is steered
	// to steer.
	GainDBi(steer, target float64) float64
	// PeakGainDBi is the on-beam gain.
	PeakGainDBi() float64
	// HPBWRad is the half-power beamwidth.
	HPBWRad() float64
}

// Horn is a mechanically steered directional antenna with a Gaussian main
// beam — the signal-generator/spectrum-analyzer setup of paper §7 used
// exactly such fixed horns.
type Horn struct {
	// Gain is the peak gain in dBi.
	Gain float64
	// HPBWDeg is the half-power beamwidth in degrees.
	HPBWDeg float64
}

// DefaultHorn returns a 20 dBi, 18° standard-gain horn.
func DefaultHorn() Horn { return Horn{Gain: 20, HPBWDeg: 18} }

// GainDBi implements Antenna with the Gaussian-beam approximation
// G(Δ) = G0 − 12·(Δ/HPBW)² dB (−3 dB at Δ = HPBW/2).
func (h Horn) GainDBi(steer, target float64) float64 {
	d := math.Abs(target - steer)
	for d > math.Pi {
		d = math.Abs(d - 2*math.Pi)
	}
	hp := h.HPBWRad()
	if hp == 0 {
		return math.Inf(-1)
	}
	return h.Gain - 12*(d/hp)*(d/hp)
}

// PeakGainDBi implements Antenna.
func (h Horn) PeakGainDBi() float64 { return h.Gain }

// HPBWRad implements Antenna.
func (h Horn) HPBWRad() float64 { return h.HPBWDeg * math.Pi / 180 }

// Array adapts an antenna.PhasedArray to the Antenna interface for an
// electronically scanned reader.
type Array struct {
	PA antenna.PhasedArray
}

// GainDBi implements Antenna.
func (a Array) GainDBi(steer, target float64) float64 {
	return a.PA.GainToward(steer, target)
}

// PeakGainDBi implements Antenna.
func (a Array) PeakGainDBi() float64 {
	return a.PA.Array.BoresightGainDBi()
}

// HPBWRad implements Antenna.
func (a Array) HPBWRad() float64 {
	w := a.PA.Array.TransmitWeights(0)
	return a.PA.Array.HPBWRad(w, 0)
}

// Config holds the reader's RF parameters, defaulting to the paper's
// setup.
type Config struct {
	// TXPowerW is the peak transmit power (paper: 20 mW).
	TXPowerW float64
	// FreqHz is the carrier (24 GHz).
	FreqHz float64
	// NoiseFigureDB is the receiver noise figure (paper: 5 dB).
	NoiseFigureDB float64
	// TemperatureK is the thermal reference (paper: 300 K).
	TemperatureK float64
	// IsolationDB is the TX→RX self-interference isolation. The paper
	// (§9) flags self-interference as an open problem; 60 dB models a
	// reasonable directional-antenna separation.
	IsolationDB float64
	// LeakageCancellationDB bounds how much of the leaked carrier the
	// receiver's DC calibration can remove: oscillator phase noise
	// decorrelates the leakage over the burst, so the residual
	// (leakage − cancellation) floods the band as noise. 50 dB is
	// typical of a digital canceller without full-duplex hardware —
	// which is exactly why §9 calls mmWave full-duplex "very complex
	// and costly".
	LeakageCancellationDB float64
	// Bandwidths are the selectable receiver bandwidths, widest first.
	Bandwidths []units.ReaderBandwidth
}

// DefaultConfig returns the paper's reader parameters.
func DefaultConfig() Config {
	return Config{
		TXPowerW:              0.020,
		FreqHz:                24e9,
		NoiseFigureDB:         5,
		TemperatureK:          units.RoomTemperatureK,
		IsolationDB:           60,
		LeakageCancellationDB: 50,
		Bandwidths:            units.PaperBandwidths(),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.TXPowerW <= 0 {
		return fmt.Errorf("reader: TX power must be positive, got %g", c.TXPowerW)
	}
	if c.FreqHz <= 0 {
		return fmt.Errorf("reader: carrier must be positive, got %g", c.FreqHz)
	}
	if c.TemperatureK <= 0 {
		return fmt.Errorf("reader: temperature must be positive, got %g", c.TemperatureK)
	}
	if len(c.Bandwidths) == 0 {
		return fmt.Errorf("reader: no receiver bandwidths configured")
	}
	for _, b := range c.Bandwidths {
		if b.BandwidthHz <= 0 {
			return fmt.Errorf("reader: bandwidth %q must be positive", b.Label)
		}
	}
	return nil
}

// TXPowerDBm returns the transmit power in dBm.
func (c Config) TXPowerDBm() float64 { return units.WattsToDBm(c.TXPowerW) }

// NoiseFloorDBm returns the receiver noise floor for bandwidth bw Hz.
func (c Config) NoiseFloorDBm(bw float64) float64 {
	return units.NoiseFloorDBm(c.TemperatureK, bw, c.NoiseFigureDB)
}

// BestRate maps a received tag power to the highest-rate bandwidth whose
// SNR clears the ASK threshold (the paper's Fig. 7 rate table).
func (c Config) BestRate(prDBm float64) (bps float64, bw units.ReaderBandwidth, ok bool) {
	return units.AchievableRate(prDBm, c.TemperatureK, c.NoiseFigureDB, c.Bandwidths)
}

// SelfInterferenceDBm returns the TX leakage power appearing in the
// receiver.
func (c Config) SelfInterferenceDBm() float64 {
	return c.TXPowerDBm() - c.IsolationDB
}

// ResidualLeakageDBm returns the leakage power that survives the
// receiver's cancellation as in-band noise.
func (c Config) ResidualLeakageDBm() float64 {
	return c.SelfInterferenceDBm() - c.LeakageCancellationDB
}
