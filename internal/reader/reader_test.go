package reader

import (
	"math"
	"testing"

	"github.com/mmtag/mmtag/internal/antenna"
	"github.com/mmtag/mmtag/internal/units"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.TXPowerDBm()-13.01) > 0.01 {
		t.Errorf("TX power %g dBm, want 13 (20 mW)", c.TXPowerDBm())
	}
	if c.NoiseFigureDB != 5 || c.TemperatureK != 300 {
		t.Error("noise parameters must match the paper (NF 5 dB, 300 K)")
	}
	if len(c.Bandwidths) != 3 {
		t.Error("expect the three Fig. 7 bandwidths")
	}
	// Fig. 7 noise floors.
	if got := c.NoiseFloorDBm(2e9); math.Abs(got+75.8) > 0.1 {
		t.Errorf("2 GHz floor %g", got)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := DefaultConfig()
	bad.TXPowerW = 0
	if bad.Validate() == nil {
		t.Error("zero TX power")
	}
	bad = DefaultConfig()
	bad.FreqHz = -1
	if bad.Validate() == nil {
		t.Error("bad carrier")
	}
	bad = DefaultConfig()
	bad.TemperatureK = 0
	if bad.Validate() == nil {
		t.Error("bad temperature")
	}
	bad = DefaultConfig()
	bad.Bandwidths = nil
	if bad.Validate() == nil {
		t.Error("no bandwidths")
	}
	bad = DefaultConfig()
	bad.Bandwidths = []units.ReaderBandwidth{{BandwidthHz: -5, Label: "x"}}
	if bad.Validate() == nil {
		t.Error("negative bandwidth")
	}
}

func TestHornPattern(t *testing.T) {
	h := DefaultHorn()
	if h.GainDBi(0, 0) != 20 {
		t.Error("peak gain")
	}
	// −3 dB at half the beamwidth.
	halfBW := h.HPBWRad() / 2
	if g := h.GainDBi(0, halfBW); math.Abs(g-(20-3)) > 1e-9 {
		t.Errorf("gain at HPBW/2: %g, want 17", g)
	}
	// Symmetric and monotone decreasing.
	if h.GainDBi(0, 0.2) != h.GainDBi(0, -0.2) {
		t.Error("horn pattern should be symmetric")
	}
	if h.GainDBi(0, 0.4) >= h.GainDBi(0, 0.2) {
		t.Error("horn pattern should fall off")
	}
	// Steering moves the beam.
	if g := h.GainDBi(0.5, 0.5); g != 20 {
		t.Errorf("steered peak %g", g)
	}
	// Wrap-around: target and steer separated by ~2π are the same angle.
	if g := h.GainDBi(0, 2*math.Pi); math.Abs(g-20) > 1e-9 {
		t.Errorf("wrapped gain %g", g)
	}
}

func TestArrayAntennaAdapter(t *testing.T) {
	a := Array{PA: antenna.NewReaderArray()}
	if math.Abs(a.PeakGainDBi()-10*math.Log10(16)) > 0.1 {
		t.Errorf("array peak %g", a.PeakGainDBi())
	}
	if a.GainDBi(0.3, 0.3) <= a.GainDBi(0.3, 0.8) {
		t.Error("steered array should favor the steered direction")
	}
	if h := a.HPBWRad(); h <= 0 || h > 0.3 {
		t.Errorf("16-element HPBW %g rad implausible", h)
	}
}

func TestBestRateThresholds(t *testing.T) {
	c := DefaultConfig()
	// Strong signal: full 1 Gb/s.
	if bps, bw, ok := c.BestRate(-50); !ok || bps != 1e9 || bw.Label != "2 GHz" {
		t.Errorf("strong: %v %v %v", bps, bw.Label, ok)
	}
	// Weak signal: narrowest band only.
	if bps, _, ok := c.BestRate(-88); !ok || bps != 1e7 {
		t.Errorf("weak: %v %v", bps, ok)
	}
	// No link.
	if _, _, ok := c.BestRate(-100); ok {
		t.Error("below all thresholds should fail")
	}
}

func TestSelfInterference(t *testing.T) {
	c := DefaultConfig()
	// 13 dBm − 60 dB = −47 dBm of leakage.
	if got := c.SelfInterferenceDBm(); math.Abs(got-(-46.99)) > 0.01 {
		t.Errorf("self-interference %g dBm", got)
	}
}
