package render

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sample builds the table the golden files snapshot: mixed alignments,
// every stock formatter, characters every backend must escape, and a
// NaN.
func sample() *Table {
	t := New("demo — grid cell summary",
		Column{Header: "driver"},
		Column{Header: "mean", Align: Right, Format: Float(2)},
		Column{Header: "ber", Align: Right, Format: Sci(1)},
		Column{Header: "n", Align: Right, Format: Int()},
	)
	t.Add("ber", 1.2345, 0.00123, 3)
	t.Add("arq|50%", math.NaN(), 2.5e-7, 12)
	t.Add(`x_y&{z}`, -0.5, 1.0, 1)
	t.Note("repeats per group: %d", 3)
	return t
}

// TestGolden pins every backend byte-for-byte against testdata. Set
// MMTAG_UPDATE_GOLDEN=1 to regenerate.
func TestGolden(t *testing.T) {
	tab := sample()
	for _, tc := range []struct {
		name string
		got  string
	}{
		{"plain", tab.Plain()},
		{"csv", tab.CSV()},
		{"markdown", tab.Markdown()},
		{"latex", tab.LaTeX()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join("testdata", tc.name+".golden")
			if os.Getenv("MMTAG_UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(path, []byte(tc.got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (regenerate with MMTAG_UPDATE_GOLDEN=1): %v", err)
			}
			if tc.got != string(want) {
				t.Errorf("%s output drifted from golden:\n--- got ---\n%s--- want ---\n%s",
					tc.name, tc.got, want)
			}
		})
	}
}

func TestPlainAlignment(t *testing.T) {
	tab := New("",
		Column{Header: "name"},
		Column{Header: "val", Align: Right, Format: Int()},
	)
	tab.Add("a", 1)
	tab.Add("longer", 12345)
	got := tab.Plain()
	lines := strings.Split(got, "\n")
	// Header, rule, two rows, trailing "".
	if len(lines) != 5 {
		t.Fatalf("want 5 lines, got %d: %q", len(lines), got)
	}
	if lines[2] != "a           1" {
		t.Errorf("right-aligned short row wrong: %q", lines[2])
	}
	if lines[3] != "longer  12345" {
		t.Errorf("right-aligned long row wrong: %q", lines[3])
	}
	// Legacy rule width: sum over columns of width+2.
	if want := len("longer") + 2 + len("12345") + 2; len(lines[1]) != want {
		t.Errorf("rule width %d, want %d", len(lines[1]), want)
	}
}

// TestPlainMatchesLegacyLayout locks the exact historical
// internal/experiments format for left-aligned tables: padding after
// every cell (including the last), two-space gutters, full-width rule,
// note: prefix.
func TestPlainMatchesLegacyLayout(t *testing.T) {
	tab := New("T",
		Column{Header: "colA"},
		Column{Header: "b"},
	)
	tab.AddRow("x", "yyy")
	tab.Note("hello")
	want := "T\n" +
		"colA  b  \n" +
		"-----------\n" +
		"x     yyy\n" +
		"note: hello\n"
	if got := tab.Plain(); got != want {
		t.Errorf("legacy layout drift:\n got %q\nwant %q", got, want)
	}
}

// TestRaggedRowNoPanic is the regression test for the historical
// renderer, which indexed widths by the header count and panicked when
// a row carried more cells than the header (the column-drift failure
// mode the render migration is meant to catch gracefully).
func TestRaggedRowNoPanic(t *testing.T) {
	tab := New("t", Col("only"))
	tab.AddRow("a", "extra", "cells")
	got := tab.Plain()
	if !strings.Contains(got, "extra") || !strings.Contains(got, "cells") {
		t.Errorf("ragged cells dropped: %q", got)
	}
	md := tab.Markdown()
	if !strings.Contains(md, "extra") {
		t.Errorf("markdown dropped ragged cell: %q", md)
	}
	if !strings.Contains(tab.LaTeX(), "extra") {
		t.Error("latex dropped ragged cell")
	}
}

func TestFormatters(t *testing.T) {
	for _, tc := range []struct {
		f    Formatter
		v    any
		want string
	}{
		{Float(1), 1.25, "1.2"},
		{Float(1), math.NaN(), "n/a"},
		{Float(0), 7, "7"},
		{Sci(2), 0.00123, "1.23e-03"},
		{Sci(2), math.NaN(), "n/a"},
		{Int(), 42, "42"},
		{Int(), 41.9, "41"},
		{Int(), math.NaN(), "n/a"},
		{String(), "x", "x"},
		{Float(1), "not-a-number", "not-a-number"},
		{FloatFunc(func(f float64) string { return "rate" }), 1.0, "rate"},
		{FloatFunc(func(f float64) string { return "rate" }), math.NaN(), "n/a"},
		{Printf("%.0f ft"), 4.0, "4 ft"},
	} {
		if got := tc.f(tc.v); got != tc.want {
			t.Errorf("format(%v): got %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestCSVEscaping(t *testing.T) {
	tab := New("", Col("a"), Col("b"))
	tab.AddRow(`plain`, `with,comma`)
	tab.AddRow("with\nnewline", `with"quote`)
	got := tab.CSV()
	want := "a,b\n" +
		"plain,\"with,comma\"\n" +
		"\"with\nnewline\",\"with\"\"quote\"\n"
	if got != want {
		t.Errorf("csv escaping:\n got %q\nwant %q", got, want)
	}
}

func TestMarkdownEscaping(t *testing.T) {
	tab := New("a|b", Col("h|1"))
	tab.AddRow("v|al")
	got := tab.Markdown()
	if strings.Contains(strings.ReplaceAll(got, `\|`, ""), "v|al") {
		t.Errorf("unescaped pipe in markdown: %q", got)
	}
	for _, want := range []string{`### a\|b`, `| h\|1 |`, `| v\|al |`} {
		if !strings.Contains(got, want) {
			t.Errorf("markdown missing %q in %q", want, got)
		}
	}
}

func TestLaTeXEscaping(t *testing.T) {
	tab := New("", Col("h"))
	tab.AddRow(`a&b_c%d$e#f{g}~i^j\k`)
	got := tab.LaTeX()
	for _, want := range []string{
		`\&`, `\_`, `\%`, `\$`, `\#`, `\{`, `\}`,
		`\textasciitilde{}`, `\textasciicircum{}`, `\textbackslash{}`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("latex missing escape %q in %q", want, got)
		}
	}
	if !strings.Contains(got, `\begin{tabular}{l}`) {
		t.Errorf("latex column spec wrong: %q", got)
	}
}

func TestLaTeXAlignmentSpec(t *testing.T) {
	tab := New("", Col("a"), Column{Header: "n", Align: Right})
	tab.AddRow("x", "1")
	if got := tab.LaTeX(); !strings.Contains(got, `\begin{tabular}{lr}`) {
		t.Errorf("want lr spec, got %q", got)
	}
}

func TestFormatRowRagged(t *testing.T) {
	cols := []Column{{Header: "a", Format: Int()}}
	row := FormatRow(cols, []any{1, "spill"})
	if len(row) != 2 || row[0] != "1" || row[1] != "spill" {
		t.Errorf("ragged FormatRow: %v", row)
	}
}
