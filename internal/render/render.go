// Package render is the repo-wide table renderer: one structured table,
// four backends (plain aligned text, CSV, GitHub markdown, LaTeX). The
// experiment drivers in internal/experiments and the grid analyzer in
// internal/grid both emit their tables through it, so column alignment,
// escaping and NaN hygiene are implemented exactly once.
//
// A Table carries typed columns: each Column may declare an alignment
// and a Formatter, and Add applies the formatter of column i to value i,
// so drivers append raw floats/ints and the formatting policy lives in
// the column declaration rather than being sprinkled through fmt.Sprintf
// calls at every append site (the pre-render idiom this package
// replaces).
//
// The plain backend reproduces the historical internal/experiments
// layout byte for byte (two-space gutters, a full-width dash rule,
// "note:" lines), so migrating a driver onto render does not change its
// CLI output. Unlike the historical renderer it tolerates ragged rows:
// a row longer than the header no longer panics, it just widens the
// table.
package render

import (
	"fmt"
	"math"
	"strings"
)

// Align selects the horizontal alignment of a column. The zero value is
// Left, matching the historical plain-text tables.
type Align int

const (
	// Left pads cells on the right.
	Left Align = iota
	// Right pads cells on the left (numeric columns in markdown/LaTeX).
	Right
)

// Formatter turns an appended value into a cell string.
type Formatter func(v any) string

// Column declares one table column.
type Column struct {
	// Header is the column label.
	Header string
	// Align is honored by every backend (markdown/LaTeX express it in
	// the column spec, plain in the padding side).
	Align Align
	// Format renders values appended through Add. Nil falls back to
	// Default.
	Format Formatter
}

// Col is shorthand for a left-aligned column with the default formatter.
func Col(header string) Column { return Column{Header: header} }

// toFloat extracts a float64 from the numeric types drivers append.
func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case uint64:
		return float64(x), true
	}
	return 0, false
}

// notANumber is what every numeric formatter emits for NaN: a NaN that
// leaks into a table is a driver bug ("NaN b/s", "NaN%"), so the
// renderer prints an explicit placeholder instead of fmt's "NaN".
const notANumber = "n/a"

// Default formats with %v — the fallback for untyped columns.
func Default() Formatter {
	return func(v any) string { return fmt.Sprintf("%v", v) }
}

// Float formats numbers with prec decimals ("%.1f"); NaN renders as n/a.
func Float(prec int) Formatter {
	verb := fmt.Sprintf("%%.%df", prec)
	return func(v any) string {
		f, ok := toFloat(v)
		if !ok {
			return fmt.Sprintf("%v", v)
		}
		if math.IsNaN(f) {
			return notANumber
		}
		return fmt.Sprintf(verb, f)
	}
}

// Sci formats numbers in scientific notation with prec decimals
// ("%.2e"); NaN renders as n/a.
func Sci(prec int) Formatter {
	verb := fmt.Sprintf("%%.%de", prec)
	return func(v any) string {
		f, ok := toFloat(v)
		if !ok {
			return fmt.Sprintf("%v", v)
		}
		if math.IsNaN(f) {
			return notANumber
		}
		return fmt.Sprintf(verb, f)
	}
}

// Int formats integers with %d (floats are truncated).
func Int() Formatter {
	return func(v any) string {
		if f, ok := toFloat(v); ok {
			if math.IsNaN(f) {
				return notANumber
			}
			return fmt.Sprintf("%d", int64(f))
		}
		return fmt.Sprintf("%v", v)
	}
}

// String formats with %v, for label columns.
func String() Formatter { return Default() }

// FloatFunc adapts a float64 pretty-printer (units.FormatRate and
// friends) into a Formatter with NaN hygiene.
func FloatFunc(fn func(float64) string) Formatter {
	return func(v any) string {
		f, ok := toFloat(v)
		if !ok {
			return fmt.Sprintf("%v", v)
		}
		if math.IsNaN(f) {
			return notANumber
		}
		return fn(f)
	}
}

// Printf formats through a fixed fmt verb string ("%.1f GHz").
func Printf(format string) Formatter {
	return func(v any) string { return fmt.Sprintf(format, v) }
}

// FormatRow applies per-column formatters to a value row. Extra values
// beyond the declared columns fall back to the default formatter, so a
// ragged row degrades to %v instead of dropping cells.
func FormatRow(cols []Column, vals []any) []string {
	cells := make([]string, len(vals))
	for i, v := range vals {
		f := Formatter(nil)
		if i < len(cols) {
			f = cols[i].Format
		}
		if f == nil {
			f = Default()
		}
		cells[i] = f(v)
	}
	return cells
}

// Table is one renderable table: a title, typed columns, pre-formatted
// rows and free-form notes.
type Table struct {
	Title   string
	Columns []Column
	Rows    [][]string
	Notes   []string
}

// New builds an empty table with the given columns.
func New(title string, cols ...Column) *Table {
	return &Table{Title: title, Columns: cols}
}

// Add appends one row of raw values, formatted through the column
// formatters, and returns the table for chaining.
func (t *Table) Add(vals ...any) *Table {
	t.Rows = append(t.Rows, FormatRow(t.Columns, vals))
	return t
}

// AddRow appends one row of pre-formatted cells.
func (t *Table) AddRow(cells ...string) *Table {
	t.Rows = append(t.Rows, cells)
	return t
}

// Note appends a formatted note line.
func (t *Table) Note(format string, args ...any) *Table {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
	return t
}

// headers returns the column labels.
func (t *Table) headers() []string {
	h := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		h[i] = c.Header
	}
	return h
}

// widths returns per-column display widths over the header and every
// row, growing past the header count when a row is ragged-long.
func (t *Table) widths() []int {
	var w []int
	grow := func(cells []string) {
		for i, c := range cells {
			for len(w) <= i {
				w = append(w, 0)
			}
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	grow(t.headers())
	for _, r := range t.Rows {
		grow(r)
	}
	return w
}

// align reports the alignment of column i (Left past the declared set).
func (t *Table) align(i int) Align {
	if i < len(t.Columns) {
		return t.Columns[i].Align
	}
	return Left
}

// Plain renders the historical aligned-text layout: title, two-space
// gutters, a dash rule sized like the legacy renderer (sum of width+2
// over all columns), rows, then "note:" lines.
func (t *Table) Plain() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	w := t.widths()
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(w) {
				pad = w[i] - len(c)
			}
			if t.align(i) == Right && pad > 0 {
				b.WriteString(strings.Repeat(" ", pad))
				pad = 0
			}
			b.WriteString(c)
			if pad > 0 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteString("\n")
	}
	line(t.headers())
	total := 0
	for _, x := range w {
		total += x + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// csvEscape quotes a cell when it contains a comma, quote or newline.
func csvEscape(c string) string {
	if strings.ContainsAny(c, ",\"\n\r") {
		return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
	}
	return c
}

// CSV renders header + rows as comma-separated values (no title, no
// notes — the machine-readable backend).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(csvEscape(c))
		}
		b.WriteString("\n")
	}
	writeRow(t.headers())
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// mdEscape neutralizes table-breaking characters in a markdown cell.
func mdEscape(c string) string {
	c = strings.ReplaceAll(c, "|", `\|`)
	c = strings.ReplaceAll(c, "\n", " ")
	return c
}

// Markdown renders a GitHub-flavored markdown table: "### title", the
// header row, an alignment rule (---: for Right columns), rows, then
// notes as italic lines.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", mdEscape(t.Title))
	}
	ncols := len(t.widths())
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i := 0; i < ncols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, " %s |", mdEscape(c))
		}
		b.WriteString("\n")
	}
	writeRow(t.headers())
	b.WriteString("|")
	for i := 0; i < ncols; i++ {
		if t.align(i) == Right {
			b.WriteString("---:|")
		} else {
			b.WriteString("---|")
		}
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n_%s_\n", mdEscape(n))
	}
	return b.String()
}

// texReplacer escapes LaTeX special characters. Backslash first, then
// the single-character escapes, then the glyphs that need a command.
var texReplacer = strings.NewReplacer(
	`\`, `\textbackslash{}`,
	`&`, `\&`,
	`%`, `\%`,
	`$`, `\$`,
	`#`, `\#`,
	`_`, `\_`,
	`{`, `\{`,
	`}`, `\}`,
	`~`, `\textasciitilde{}`,
	`^`, `\textasciicircum{}`,
)

// texEscape renders a cell safely inside a tabular body.
func texEscape(c string) string { return texReplacer.Replace(c) }

// LaTeX renders a booktabs tabular: the title as a leading comment, a
// column spec derived from the alignments (l/r), \toprule / \midrule /
// \bottomrule, and the notes as trailing comments — the drop-into-the-
// paper backend the grid analyzer emits.
func (t *Table) LaTeX() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%% %s\n", t.Title)
	}
	ncols := len(t.widths())
	spec := make([]byte, ncols)
	for i := range spec {
		if t.align(i) == Right {
			spec[i] = 'r'
		} else {
			spec[i] = 'l'
		}
	}
	fmt.Fprintf(&b, "\\begin{tabular}{%s}\n\\toprule\n", spec)
	writeRow := func(cells []string) {
		for i := 0; i < ncols; i++ {
			if i > 0 {
				b.WriteString(" & ")
			}
			if i < len(cells) {
				b.WriteString(texEscape(cells[i]))
			}
		}
		b.WriteString(" \\\\\n")
	}
	writeRow(t.headers())
	b.WriteString("\\midrule\n")
	for _, r := range t.Rows {
		writeRow(r)
	}
	b.WriteString("\\bottomrule\n\\end{tabular}\n")
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "%% note: %s\n", n)
	}
	return b.String()
}
