package tag

import (
	"math"
	"math/cmplx"
	"testing"

	"github.com/mmtag/mmtag/internal/frame"
	"github.com/mmtag/mmtag/internal/geom"
	"github.com/mmtag/mmtag/internal/phy"
)

func TestBurstMCSASK4Structure(t *testing.T) {
	tg, _ := New(0xC0DE, geom.Pose{})
	payload := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	syms, err := tg.BurstMCS(payload, frame.MCSASK4, 0, 24e9)
	if err != nil {
		t.Fatal(err)
	}
	want := BurstSymbolCountMCS(len(payload), frame.MCSASK4)
	if len(syms) != want {
		t.Fatalf("symbols %d, want %d", len(syms), want)
	}
	// Header section is binary OOK; payload section has up to 4 levels
	// floored at the leakage.
	leak := tg.OOKLeakage(0, 24e9)
	head := len(phy.Preamble13) + 8*frame.HeaderLen
	levels := map[string]bool{}
	for _, s := range syms[head:] {
		m := cmplx.Abs(s)
		if m < leak-1e-12 || m > 1+1e-12 {
			t.Fatalf("payload level %g outside [leak, 1]", m)
		}
		levels[formatLevel(m, leak)] = true
	}
	if len(levels) < 3 {
		t.Errorf("expected ≥3 distinct ASK levels, saw %d", len(levels))
	}
}

func formatLevel(m, leak float64) string {
	// Quantize to the nearest nominal level for set-counting.
	lv := (m - leak) / (1 - leak) * 3
	return string(rune('0' + int(math.Round(lv))))
}

func TestBurstMCSRejectsUnknown(t *testing.T) {
	tg, _ := New(1, geom.Pose{})
	if _, err := tg.BurstMCS([]byte{1}, frame.MCSBPSK, 0, 24e9); err == nil {
		t.Error("BPSK burst synthesis is unimplemented and must error")
	}
	if _, err := tg.BurstMCS([]byte{1}, frame.MCS(99), 0, 24e9); err == nil {
		t.Error("invalid MCS must error")
	}
}

func TestBurstSymbolCountMCS(t *testing.T) {
	// OOK: matches the legacy helper.
	if BurstSymbolCountMCS(10, frame.MCSOOK) != BurstSymbolCount(10) {
		t.Error("OOK count mismatch")
	}
	// 4-ASK: payload+CRC section halves.
	head := len(phy.Preamble13) + 8*frame.HeaderLen
	if got := BurstSymbolCountMCS(10, frame.MCSASK4); got != head+8*(10+frame.CRCLen)/2 {
		t.Errorf("ASK4 count %d", got)
	}
}
