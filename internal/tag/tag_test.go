package tag

import (
	"math"
	"math/cmplx"
	"testing"

	"github.com/mmtag/mmtag/internal/frame"
	"github.com/mmtag/mmtag/internal/geom"
	"github.com/mmtag/mmtag/internal/phy"
)

func TestNewDefaults(t *testing.T) {
	tg, err := New(5, geom.Pose{Pos: geom.Vec{X: 1}, Heading: math.Pi})
	if err != nil {
		t.Fatal(err)
	}
	if err := tg.Validate(); err != nil {
		t.Fatal(err)
	}
	if tg.Aperture.N() != 6 {
		t.Errorf("default element count %d, want 6 (the paper's prototype)", tg.Aperture.N())
	}
}

func TestNewWithElementsValidation(t *testing.T) {
	if _, err := NewWithElements(1, geom.Pose{}, 5, 24e9); err == nil {
		t.Error("odd element count should fail")
	}
	tg, err := NewWithElements(1, geom.Pose{}, 12, 24e9)
	if err != nil {
		t.Fatal(err)
	}
	if tg.Aperture.N() != 12 {
		t.Error("element count not honored")
	}
}

func TestBearing(t *testing.T) {
	// Tag at (2,0) facing back toward the origin (heading π): the reader
	// at the origin is at local bearing 0.
	tg, _ := New(1, geom.Pose{Pos: geom.Vec{X: 2}, Heading: math.Pi})
	if b := tg.BearingOf(geom.Vec{}); math.Abs(b) > 1e-12 {
		t.Errorf("bearing %g, want 0", b)
	}
	// Rotate the tag 30°: the reader appears at −30° in tag frame.
	tg.Pose.Heading = math.Pi - math.Pi/6
	if b := tg.BearingOf(geom.Vec{}); math.Abs(b-math.Pi/6) > 1e-9 {
		t.Errorf("bearing %g, want %g", b, math.Pi/6)
	}
}

func TestOOKLeakageSmall(t *testing.T) {
	tg, _ := New(1, geom.Pose{})
	for _, th := range []float64{0, 0.3, -0.5} {
		leak := tg.OOKLeakage(th, 24e9)
		if leak <= 0 || leak > 0.1 {
			t.Errorf("leakage at θ=%g: %g, want small positive", th, leak)
		}
	}
}

func TestReflectionStatesContrast(t *testing.T) {
	tg, _ := New(1, geom.Pose{})
	a0, a1 := tg.ReflectionStates(0.2, 24e9)
	if cmplx.Abs(a0) <= 10*cmplx.Abs(a1) {
		t.Errorf("reflection contrast too small: %g vs %g", cmplx.Abs(a0), cmplx.Abs(a1))
	}
}

func TestBurstStructure(t *testing.T) {
	tg, _ := New(0xBEEF, geom.Pose{})
	payload := []byte{1, 2, 3}
	syms, err := tg.Burst(payload, 0, 24e9)
	if err != nil {
		t.Fatal(err)
	}
	want := BurstSymbolCount(len(payload))
	if len(syms) != want {
		t.Fatalf("burst symbols %d, want %d", len(syms), want)
	}
	// The first 13 symbols are the Barker preamble (amplitude 1 for +1
	// chips).
	for i, c := range phy.Preamble13 {
		if c > 0 && syms[i] != 1 {
			t.Errorf("preamble chip %d should be full amplitude", i)
		}
	}
	// Every symbol is one of the two OOK levels.
	leak := tg.OOKLeakage(0, 24e9)
	for i, s := range syms {
		m := cmplx.Abs(s)
		if math.Abs(m-1) > 1e-12 && math.Abs(m-leak) > 1e-12 {
			t.Errorf("symbol %d level %g is neither 1 nor leakage %g", i, m, leak)
		}
	}
}

func TestBurstSymbolCount(t *testing.T) {
	// preamble 13 + 8·(6 header + n + 2 crc).
	if got := BurstSymbolCount(0); got != 13+8*8 {
		t.Errorf("empty burst symbols %d", got)
	}
	if got := BurstSymbolCount(10); got != 13+8*18 {
		t.Errorf("10-byte burst symbols %d", got)
	}
}

func TestBurstRejectsOversizedPayload(t *testing.T) {
	tg, _ := New(1, geom.Pose{})
	if _, err := tg.Burst(make([]byte, frame.MaxPayload+1), 0, 24e9); err == nil {
		t.Error("oversized payload should fail")
	}
}

func TestEnergyModelMicrowatts(t *testing.T) {
	e := DefaultEnergyModel()
	// Per-transition: 0.5 pF · 9 V² · 6 = 27 pJ.
	if got := e.EnergyPerTransitionJ(); math.Abs(got-27e-12) > 1e-15 {
		t.Errorf("transition energy %g", got)
	}
	// At 1 Gb/s: 1 µW logic + 0.5·1e9·27e-12 = 13.5 mW… that is the
	// *switching ceiling*; at 10 Mb/s it is ≈ 136 µW.
	p10M := e.PowerAtBitrateW(10e6)
	if p10M < 100e-6 || p10M > 200e-6 {
		t.Errorf("10 Mb/s power %g W out of expected µW range", p10M)
	}
	// Monotone in rate.
	if e.PowerAtBitrateW(1e9) <= p10M {
		t.Error("power should grow with bit rate")
	}
	// A 1 mW harvester supports 10 Mb/s but not 1 Gb/s with these
	// (conservative discrete-FET) constants.
	if !e.SupportsBitrate(1e-3, 10e6) {
		t.Error("1 mW should support 10 Mb/s")
	}
	if e.SupportsBitrate(1e-3, 1e9) {
		t.Error("1 mW should not support 1 Gb/s with discrete FETs")
	}
}

func TestValidateCatchesBadConfig(t *testing.T) {
	tg, _ := New(1, geom.Pose{})
	tg.Aperture = nil
	if err := tg.Validate(); err == nil {
		t.Error("nil aperture should fail")
	}
	tg, _ = New(1, geom.Pose{})
	tg.Energy.GateCapacitanceF = -1
	if err := tg.Validate(); err == nil {
		t.Error("negative capacitance should fail")
	}
}
