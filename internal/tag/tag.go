// Package tag models the complete mmTag device (paper §4–§7): a Van Atta
// retrodirective aperture with per-element RF switches, the framing and
// OOK modulation driving those switches, and the microwatt energy budget
// that makes the tag batteryless.
package tag

import (
	"fmt"
	"math/cmplx"

	"github.com/mmtag/mmtag/internal/dsp"
	"github.com/mmtag/mmtag/internal/frame"
	"github.com/mmtag/mmtag/internal/geom"
	"github.com/mmtag/mmtag/internal/phy"
	"github.com/mmtag/mmtag/internal/vanatta"
)

// Tag is one mmTag device placed in the scene.
type Tag struct {
	// ID is the tag identity carried in every burst header.
	ID uint16
	// Aperture is the retrodirective Van Atta array.
	Aperture *vanatta.Array
	// Pose is the tag's position and boresight heading.
	Pose geom.Pose
	// Energy is the switching-energy model.
	Energy EnergyModel
}

// New returns a paper-default tag: 6 elements at 24 GHz.
func New(id uint16, pose geom.Pose) (*Tag, error) {
	ap, err := vanatta.New(6, 24e9)
	if err != nil {
		return nil, err
	}
	return &Tag{ID: id, Aperture: ap, Pose: pose, Energy: DefaultEnergyModel()}, nil
}

// NewWithElements returns a tag with n elements (n even, ≥ 2) at
// frequency f.
func NewWithElements(id uint16, pose geom.Pose, n int, f float64) (*Tag, error) {
	ap, err := vanatta.New(n, f)
	if err != nil {
		return nil, err
	}
	return &Tag{ID: id, Aperture: ap, Pose: pose, Energy: DefaultEnergyModel()}, nil
}

// BearingOf returns the local incidence angle of a signal arriving from
// the global direction angle arrivalRad (the ray's arrival angle at the
// tag), i.e. the θ the aperture sees.
func (t *Tag) BearingOf(point geom.Vec) float64 {
	return t.Pose.BearingTo(point)
}

// OOKLeakage returns the residual '1'-state amplitude relative to the
// '0' state for incidence theta at frequency f — the extinction the
// reader's demodulator must live with.
func (t *Tag) OOKLeakage(theta, f float64) float64 {
	a0, a1 := t.Aperture.ModulationStates(theta, f)
	m0 := cmplx.Abs(a0)
	if m0 == 0 {
		return 1
	}
	return cmplx.Abs(a1) / m0
}

// ReflectionStates returns the complex scattering amplitudes (α0 for data
// '0'/reflecting, α1 for data '1'/absorbed) toward the illuminator at
// local incidence theta, frequency f.
func (t *Tag) ReflectionStates(theta, f float64) (alpha0, alpha1 complex128) {
	return t.Aperture.ModulationStates(theta, f)
}

// Burst frames payload and returns the OOK symbol sequence the switch
// driver realizes: Barker preamble then header‖payload‖CRC bits, one
// symbol per bit, amplitude 1 for '0' (reflect) and the aperture's
// leakage for '1' (absorb) at the given operating point.
func (t *Tag) Burst(payload []byte, theta, f float64) ([]complex128, error) {
	return t.BurstMCS(payload, frame.MCSOOK, theta, f)
}

// BurstMCS frames payload with the given modulation-and-coding scheme.
// The preamble and the header are always OOK (so any reader can parse
// them); the payload+CRC section uses the requested scheme. 4-ASK is
// realized physically by driving *subsets* of the tag's Van Atta pairs:
// with 3 pairs, activating 0/1/2/3 pairs yields reflection amplitudes
// 0, ⅓, ⅔, 1 of the full aperture — exactly uniform ASK levels, floored
// by the switch leakage.
func (t *Tag) BurstMCS(payload []byte, mcs frame.MCS, theta, f float64) ([]complex128, error) {
	return t.BurstMCSWS(nil, payload, mcs, theta, f)
}

// BurstMCSWS is BurstMCS with the frame bytes, bit expansion and symbol
// buffer checked out of ws; the returned symbols are valid until the
// next ws.Reset. A nil ws allocates, which is exactly BurstMCS.
func (t *Tag) BurstMCSWS(ws *dsp.Workspace, payload []byte, mcs frame.MCS, theta, f float64) ([]complex128, error) {
	rawLen := frame.HeaderLen + len(payload) + frame.CRCLen
	raw, err := frame.AppendEncode(ws.Bytes(rawLen)[:0], t.ID, mcs, payload)
	if err != nil {
		return nil, err
	}
	leak := t.OOKLeakage(theta, f)
	syms := phy.AppendPreambleSymbols(ws.Complex(BurstSymbolCountMCS(len(payload), mcs))[:0], leak)
	bits := frame.BitsFromBytes(ws.Bytes(8*len(raw)), raw)
	headBits := bits[:frame.HeaderLen*8]
	restBits := bits[frame.HeaderLen*8:]
	syms, err = (phy.OOK{Leakage: leak}).Modulate(syms, headBits)
	if err != nil {
		return nil, err
	}
	switch mcs {
	case frame.MCSOOK:
		return (phy.OOK{Leakage: leak}).Modulate(syms, restBits)
	case frame.MCSASK4:
		pure, err := (phy.ASK{M: 4}).Modulate(ws.Complex(len(restBits) / 2)[:0], restBits)
		if err != nil {
			return nil, err
		}
		// Floor the constellation at the leakage amplitude: a fully
		// absorbed state still scatters `leak`.
		for _, s := range pure {
			lvl := real(s)
			syms = append(syms, complex(leak+(1-leak)*lvl, 0))
		}
		return syms, nil
	default:
		return nil, fmt.Errorf("tag %d: unsupported MCS %v", t.ID, mcs)
	}
}

// BurstSymbolCount returns the number of OOK symbols a burst carrying n
// payload bytes occupies (preamble + 8·(header+n+crc)).
func BurstSymbolCount(n int) int {
	return len(phy.Preamble13) + 8*(frame.HeaderLen+n+frame.CRCLen)
}

// BurstSymbolCountMCS generalizes BurstSymbolCount: preamble and header
// are OOK (1 bit/symbol); the payload+CRC section carries bitsPerSymbol
// of the chosen scheme.
func BurstSymbolCountMCS(n int, mcs frame.MCS) int {
	head := len(phy.Preamble13) + 8*frame.HeaderLen
	restBits := 8 * (n + frame.CRCLen)
	switch mcs {
	case frame.MCSASK4:
		return head + restBits/2
	default:
		return head + restBits
	}
}

// EnergyModel captures what the tag spends per bit: the only switching
// parts are the FET gates (paper: "this is the only mmWave component used
// in our tag").
type EnergyModel struct {
	// GateCapacitanceF is the FET gate capacitance per switch.
	GateCapacitanceF float64
	// DriveVoltageV is the switch drive swing.
	DriveVoltageV float64
	// Switches is the number of FETs (one per element).
	Switches int
	// LogicPowerW is the static power of the bit-source logic.
	LogicPowerW float64
}

// DefaultEnergyModel returns constants for a CE3520K3-class FET driven at
// 3 V with 6 switches and ~1 µW of logic.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		GateCapacitanceF: 0.5e-12,
		DriveVoltageV:    3,
		Switches:         6,
		LogicPowerW:      1e-6,
	}
}

// EnergyPerTransitionJ returns the CV² energy of toggling all switches
// once.
func (e EnergyModel) EnergyPerTransitionJ() float64 {
	return e.GateCapacitanceF * e.DriveVoltageV * e.DriveVoltageV * float64(e.Switches)
}

// PowerAtBitrateW returns the average power to modulate at the given bit
// rate, assuming a 50% transition probability per bit.
func (e EnergyModel) PowerAtBitrateW(bitsPerSecond float64) float64 {
	return e.LogicPowerW + 0.5*bitsPerSecond*e.EnergyPerTransitionJ()
}

// SupportsBitrate reports whether a harvested power budget (watts) covers
// modulation at the given rate.
func (e EnergyModel) SupportsBitrate(harvestedW, bitsPerSecond float64) bool {
	return e.PowerAtBitrateW(bitsPerSecond) <= harvestedW
}

// Validate sanity-checks the tag configuration.
func (t *Tag) Validate() error {
	if t.Aperture == nil {
		return fmt.Errorf("tag %d: nil aperture", t.ID)
	}
	if t.Energy.Switches < 0 || t.Energy.GateCapacitanceF < 0 {
		return fmt.Errorf("tag %d: negative energy model parameters", t.ID)
	}
	return nil
}
