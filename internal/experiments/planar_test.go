package experiments

import "testing"

func TestPlanarTagExperiment(t *testing.T) {
	r, err := PlanarTag()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 6 {
		t.Fatalf("points %d", len(r.Points))
	}
	// Boresight gains: 6-element line ≈ 12.8 dBi, 4×4 panel ≈ 17 dBi.
	if r.LinearGainDBi < 12 || r.LinearGainDBi > 13.5 {
		t.Errorf("linear gain %.1f", r.LinearGainDBi)
	}
	if r.PlanarGainDBi < 16 || r.PlanarGainDBi > 18 {
		t.Errorf("planar gain %.1f", r.PlanarGainDBi)
	}
	if r.PlanarGainDBi-r.LinearGainDBi < 3 {
		t.Error("planar panel should out-gain the line by ≈4.3 dB")
	}
	for _, p := range r.Points {
		if p.AzDeg == 0 && p.ElDeg == 0 {
			if p.VanAttaDB != 0 || p.FixedDB != 0 {
				t.Error("boresight rows should be 0 dB by normalization")
			}
			continue
		}
		// Van Atta stays within element rolloff (≥ −6 dB here); the fixed
		// panel is ≥ 15 dB worse off boresight.
		if p.VanAttaDB < -6 {
			t.Errorf("(%g,%g): Van Atta %g dB", p.AzDeg, p.ElDeg, p.VanAttaDB)
		}
		if p.FixedDB > p.VanAttaDB-15 {
			t.Errorf("(%g,%g): fixed panel only %g dB below Van Atta", p.AzDeg, p.ElDeg, p.FixedDB-p.VanAttaDB)
		}
		if p.BeamErrDeg > 6 {
			t.Errorf("(%g,%g): beam error %g°", p.AzDeg, p.ElDeg, p.BeamErrDeg)
		}
	}
	if len(r.Table().Rows) != 6 {
		t.Error("table rows")
	}
}
