package experiments

import (
	"fmt"
	"math"

	"github.com/mmtag/mmtag/internal/antenna"
	"github.com/mmtag/mmtag/internal/vanatta"
)

// RetroPoint compares the two tag architectures at one incidence angle.
type RetroPoint struct {
	IncidenceDeg float64
	// VanAttaDB / FixedDB are monostatic returns normalized to the Van
	// Atta boresight (dB).
	VanAttaDB, FixedDB float64
	// PeakErrorDeg is the Van Atta scattered beam's pointing error.
	PeakErrorDeg float64
}

// RetroResult is experiment E3: the quantitative version of paper Fig. 3's
// argument — a Van Atta tag reflects toward the arrival direction for any
// incidence, a fixed-beam tag only at boresight.
type RetroResult struct {
	Points []RetroPoint
	// WorstErrorDeg is the largest Van Atta pointing error across the
	// sweep.
	WorstErrorDeg float64
	// FixedBeamCollapseDeg is the incidence angle (degrees) at which the
	// fixed-beam tag has lost 10 dB versus boresight.
	FixedBeamCollapseDeg float64
}

// Retrodirectivity sweeps incidence from −60° to +60°.
func Retrodirectivity(n int) (RetroResult, error) {
	if n < 2 {
		n = 25
	}
	const f = 24e9
	va, err := vanatta.New(6, f)
	if err != nil {
		return RetroResult{}, err
	}
	fb, err := vanatta.NewFixedBeam(6, f)
	if err != nil {
		return RetroResult{}, err
	}
	thetas := make([]float64, n)
	for i := range thetas {
		thetas[i] = (-60 + 120*float64(i)/float64(n-1)) * math.Pi / 180
	}
	vaDB, fbDB := vanatta.AngleSweep(va, fb, f, thetas)
	res := RetroResult{}
	for i, th := range thetas {
		pe := va.RetroErrorDeg(th, f)
		res.Points = append(res.Points, RetroPoint{
			IncidenceDeg: th * 180 / math.Pi,
			VanAttaDB:    vaDB[i],
			FixedDB:      fbDB[i],
			PeakErrorDeg: pe,
		})
		if pe > res.WorstErrorDeg {
			res.WorstErrorDeg = pe
		}
	}
	// Find the fixed-beam −10 dB collapse angle by marching outward.
	for deg := 0.0; deg <= 60; deg += 0.5 {
		th := deg * math.Pi / 180
		_, fb10 := vanatta.AngleSweep(va, fb, f, []float64{th})
		if fb10[0] <= -10 {
			res.FixedBeamCollapseDeg = deg
			break
		}
	}
	return res, nil
}

// Table renders the sweep.
func (r RetroResult) Table() Table {
	t := Table{
		Title:   "E3 / Fig 3 & Eq 5 — monostatic return vs incidence: Van Atta (mmTag) vs fixed-beam tag",
		Columns: []string{"incidence (deg)", "mmTag (dB)", "fixed-beam (dB)", "mmTag beam error (deg)"},
		Notes: []string{
			fmt.Sprintf("worst mmTag pointing error %.2f° across ±60° (Eq. 5: reflection tracks incidence)", r.WorstErrorDeg),
			fmt.Sprintf("fixed-beam tag loses 10 dB by %.1f° off boresight (the Kimionis-style limitation, §3)", r.FixedBeamCollapseDeg),
		},
	}
	for _, p := range r.Points {
		fixed := fmt.Sprintf("%.1f", p.FixedDB)
		if math.IsInf(p.FixedDB, -1) {
			fixed = "-inf"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", p.IncidenceDeg),
			fmt.Sprintf("%.1f", p.VanAttaDB),
			fixed,
			fmt.Sprintf("%.2f", p.PeakErrorDeg),
		})
	}
	return t
}

// BeamwidthResult is experiment E4: the §7 implementation claims.
type BeamwidthResult struct {
	// Elements is the array size (6 in the prototype).
	Elements int
	// HPBWDeg is the simulated half-power beamwidth.
	HPBWDeg float64
	// PaperDeg is the paper's quoted value (20°).
	PaperDeg float64
	// ApertureWidthMM is the array's physical extent at λ/2 spacing.
	ApertureWidthMM float64
	// TagWidthMM / TagHeightMM are the paper's PCB dimensions (60×45 mm).
	TagWidthMM, TagHeightMM float64
}

// Beamwidth evaluates the tag's beamwidth and geometry for n elements at
// 24 GHz.
func Beamwidth(n int) (BeamwidthResult, error) {
	if n < 1 {
		n = 6
	}
	ula, err := antenna.NewHalfWaveULA(n, antenna.NewPatch())
	if err != nil {
		return BeamwidthResult{}, err
	}
	w := ula.TransmitWeights(0)
	hpbw := ula.HPBWRad(w, 0) * 180 / math.Pi
	lambdaMM := 299792458.0 / 24e9 * 1000
	return BeamwidthResult{
		Elements:        n,
		HPBWDeg:         hpbw,
		PaperDeg:        20,
		ApertureWidthMM: float64(n-1) * lambdaMM / 2,
		TagWidthMM:      60,
		TagHeightMM:     45,
	}, nil
}

// Table renders the beamwidth check.
func (r BeamwidthResult) Table() Table {
	return Table{
		Title:   "E4 / §7 — tag beamwidth and geometry",
		Columns: []string{"quantity", "simulated", "paper"},
		Rows: [][]string{
			{"elements", fmt.Sprintf("%d", r.Elements), "6"},
			{"half-power beamwidth", fmt.Sprintf("%.1f°", r.HPBWDeg), fmt.Sprintf("%.0f°", r.PaperDeg)},
			{"aperture width", fmt.Sprintf("%.1f mm", r.ApertureWidthMM), fmt.Sprintf("fits %g×%g mm PCB", r.TagWidthMM, r.TagHeightMM)},
		},
		Notes: []string{
			"uniform-ULA theory gives 0.886·λ/(N·d) ≈ 17°; the paper rounds its measured beam to \"20 degree\"",
		},
	}
}
