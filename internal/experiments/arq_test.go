package experiments

import "testing"

func TestARQGoodput(t *testing.T) {
	r, err := ARQGoodput(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 7 {
		t.Fatalf("points %d", len(r.Points))
	}
	first := r.Points[0] // 3 ft: 15.6 dB, comfortably above threshold
	if first.FirstTryFER != 0 || first.GoodputBps < 8e8 {
		t.Errorf("3 ft point should be clean: %+v", first)
	}
	last := r.Points[len(r.Points)-1] // 7 ft: ~1 dB, hopeless
	if last.FirstTryFER < 0.9 || last.GoodputBps > 1e8 {
		t.Errorf("7 ft point should be collapsed: %+v", last)
	}
	// FER is non-decreasing with range; goodput non-increasing (within
	// the small-sample noise of a dozen frames, enforce the endpoints and
	// overall trend).
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].FirstTryFER+0.15 < r.Points[i-1].FirstTryFER {
			t.Errorf("FER fell sharply with range at %.1f ft", r.Points[i].RangeFt)
		}
	}
	// The headline observation: at the paper's 4 ft / BER-10⁻³ operating
	// point, uncoded 64-byte frames already fail often — per-bit
	// thresholds do not survive framing without margin or FEC.
	var at4 ARQPoint
	for _, p := range r.Points {
		if p.RangeFt == 4 {
			at4 = p
		}
	}
	if at4.FirstTryFER < 0.2 {
		t.Errorf("4 ft FER %.2f unexpectedly clean for 512-bit frames at BER≈2e-3", at4.FirstTryFER)
	}
	if len(r.Table().Rows) != 7 {
		t.Error("table rows")
	}
}
