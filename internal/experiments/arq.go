package experiments

import (
	"fmt"

	"github.com/mmtag/mmtag/internal/core"
	"github.com/mmtag/mmtag/internal/mac"
	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/par"
	"github.com/mmtag/mmtag/internal/render"
	"github.com/mmtag/mmtag/internal/rng"
	"github.com/mmtag/mmtag/internal/units"
)

// ARQPoint is one range sample of the link-layer goodput sweep.
type ARQPoint struct {
	RangeFt   float64
	Bandwidth string
	// BudgetSNRdB is the analytic SNR in that bandwidth.
	BudgetSNRdB float64
	// FirstTryFER is the measured per-burst frame error rate.
	FirstTryFER float64
	// Retransmissions over the run.
	Retransmissions int
	// Residual counts undeliverable frames.
	Residual int
	// GoodputBps is delivered payload over airtime.
	GoodputBps float64
}

// ARQResult is experiment E16 (extension): what the paper's PHY rates
// become at the *link layer* once framing overhead, frame errors and
// stop-and-wait retransmissions are accounted — each point runs real
// waveform bursts end to end.
type ARQResult struct {
	Points []ARQPoint
	// Frames per point.
	Frames int
	// LatencyP50S / LatencyP99S are virtual-clock frame-latency
	// quantiles read from the mac_arq_frame_latency_seconds histogram.
	// Filled only when a metrics registry is enabled; zero otherwise, in
	// which case the table omits the note.
	LatencyP50S, LatencyP99S float64
}

// ARQGoodput sweeps range in the 2 GHz band (where the SNR cliff falls
// inside the Fig. 7 span), nFrames waveform bursts per point.
func ARQGoodput(nFrames int, seed uint64) (ARQResult, error) {
	if nFrames <= 0 {
		nFrames = 12
	}
	res := ARQResult{Frames: nFrames}
	cfg := mac.DefaultARQConfig()
	ranges := []float64{3, 4, 4.5, 5, 5.5, 6, 7}
	// Every range point builds its own link and seeds its own generator
	// (rng.New(seed), as the sequential loop did per point), so the sweep
	// is embarrassingly parallel and trivially worker-count invariant.
	points, err := par.MapErr(len(ranges), func(i int) (ARQPoint, error) {
		ft := ranges[i]
		l, err := core.NewDefaultLink(units.FeetToMeters(ft))
		if err != nil {
			return ARQPoint{}, err
		}
		bw := l.Reader.Bandwidths[0] // 2 GHz
		b, err := l.ComputeBudget()
		if err != nil {
			return ARQPoint{}, err
		}
		r, err := mac.RunARQ(l, bw, nFrames, cfg, rng.New(seed))
		if err != nil {
			return ARQPoint{}, err
		}
		return ARQPoint{
			RangeFt:         ft,
			Bandwidth:       bw.Label,
			BudgetSNRdB:     b.SNRdB[bw.Label],
			FirstTryFER:     r.FirstTryFER,
			Retransmissions: r.Retransmissions,
			Residual:        r.ResidualErrors,
			GoodputBps:      r.GoodputBps,
		}, nil
	})
	if err != nil {
		return res, err
	}
	res.Points = points
	if reg := obs.Active(); reg != nil {
		snap := reg.Snapshot()
		res.LatencyP50S, _ = snap.Quantile("mac_arq_frame_latency_seconds", 0.50)
		res.LatencyP99S, _ = snap.Quantile("mac_arq_frame_latency_seconds", 0.99)
	}
	return res, nil
}

// Table renders the sweep.
func (r ARQResult) Table() Table {
	t := newTable("E16 (extension) — link-layer goodput with stop-and-wait ARQ (2 GHz band, waveform-level)",
		render.Column{Header: "range (ft)", Format: render.Float(1)},
		render.Column{Header: "SNR (dB)", Format: render.Float(1)},
		render.Column{Header: "first-try FER", Format: render.Float(2)},
		render.Column{Header: "retx", Format: render.Int()},
		render.Column{Header: "residual", Format: render.Int()},
		rateColumn("goodput"),
	)
	t.Notes = []string{
		fmt.Sprintf("%d × 64-byte frames per point, ≤3 retries; goodput = delivered payload / total airtime", r.Frames),
		"the PHY's 1 Gb/s becomes ≈0.87 Gb/s of goodput inside the cliff (framing overhead), collapsing across it",
	}
	if r.LatencyP99S > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"frame latency p50 %.2f µs / p99 %.2f µs on the virtual clock (mac_arq_frame_latency_seconds)",
			r.LatencyP50S*1e6, r.LatencyP99S*1e6))
	}
	for _, p := range r.Points {
		t.add(p.RangeFt, p.BudgetSNRdB, p.FirstTryFER, p.Retransmissions, p.Residual, p.GoodputBps)
	}
	return t
}
