package experiments

import (
	"fmt"
	"math"

	"github.com/mmtag/mmtag/internal/core"
	"github.com/mmtag/mmtag/internal/geom"
	"github.com/mmtag/mmtag/internal/par"
	"github.com/mmtag/mmtag/internal/render"
	"github.com/mmtag/mmtag/internal/rng"
	"github.com/mmtag/mmtag/internal/tag"
	"github.com/mmtag/mmtag/internal/units"
	"github.com/mmtag/mmtag/internal/vanatta"
)

// ArraySizePoint is one element-count sample.
type ArraySizePoint struct {
	Elements int
	// RetroGainDBi at boresight.
	RetroGainDBi float64
	// ReceivedDBmAt4ft for the default geometry.
	ReceivedDBmAt4ft float64
	// GbpsRangeFt is the furthest range sustaining 1 Gb/s.
	GbpsRangeFt float64
	// RateAt10ft by the paper's table.
	RateAt10ft float64
}

// ArraySizeResult is ablation A1: §8's remark that "the range and
// data-rate of mmTag can be further increased by using more antenna
// elements", quantified.
type ArraySizeResult struct {
	Points []ArraySizePoint
}

// ArraySizeAblation sweeps element counts.
func ArraySizeAblation(counts []int) (ArraySizeResult, error) {
	if len(counts) == 0 {
		counts = []int{2, 4, 6, 8, 12, 16}
	}
	var res ArraySizeResult
	// Each element count is an independent deterministic computation (no
	// randomness), so the sweep fans out across the worker pool with one
	// output slot per count.
	points, err := par.MapErr(len(counts), func(ci int) (ArraySizePoint, error) {
		n := counts[ci]
		va, err := vanatta.New(n, 24e9)
		if err != nil {
			return ArraySizePoint{}, err
		}
		pt := ArraySizePoint{
			Elements:     n,
			RetroGainDBi: va.RetroGainDBi(0, 24e9),
		}
		mk := func(rangeM float64) (core.Budget, error) {
			tg, err := tag.NewWithElements(1, geom.Pose{Pos: geom.Vec{X: rangeM}, Heading: math.Pi}, n, 24e9)
			if err != nil {
				return core.Budget{}, err
			}
			l, err := core.NewDefaultLink(rangeM)
			if err != nil {
				return core.Budget{}, err
			}
			l.Tag = tg
			return l.ComputeBudget()
		}
		b4, err := mk(units.FeetToMeters(4))
		if err != nil {
			return ArraySizePoint{}, err
		}
		pt.ReceivedDBmAt4ft = b4.ReceivedDBm
		b10, err := mk(units.FeetToMeters(10))
		if err != nil {
			return ArraySizePoint{}, err
		}
		pt.RateAt10ft = b10.RateBps
		// Bisect for the 1 Gb/s range.
		lo, hi := 0.1, 300.0
		for i := 0; i < 50; i++ {
			mid := (lo + hi) / 2
			b, err := mk(units.FeetToMeters(mid))
			if err != nil {
				return ArraySizePoint{}, err
			}
			if b.RateBps >= 1e9 {
				lo = mid
			} else {
				hi = mid
			}
		}
		pt.GbpsRangeFt = lo
		return pt, nil
	})
	if err != nil {
		return res, err
	}
	res.Points = points
	return res, nil
}

// Table renders the ablation.
func (r ArraySizeResult) Table() Table {
	t := newTable("A1 / §8 — array-size ablation: more elements, more range",
		render.Column{Header: "elements", Format: render.Int()},
		render.Column{Header: "retro gain (dBi)", Format: render.Float(1)},
		render.Column{Header: "Pr @4ft (dBm)", Format: render.Float(1)},
		render.Column{Header: "1 Gb/s range (ft)", Format: render.Float(1)},
		rateColumn("rate @10ft"),
	)
	t.Notes = []string{
		"each doubling of N adds ≈6 dB two-way (3 dB aperture × 2 passes) ⇒ ≈1.41× more 1 Gb/s range",
	}
	for _, p := range r.Points {
		t.add(p.Elements, p.RetroGainDBi, p.ReceivedDBmAt4ft, p.GbpsRangeFt, p.RateAt10ft)
	}
	return t
}

// ImpairmentPoint is one impairment sample.
type ImpairmentPoint struct {
	// PhaseErrSigmaDeg is the per-element line phase error std dev.
	PhaseErrSigmaDeg float64
	// RetroLossDB is the mean retro-gain loss at 30° incidence versus a
	// clean array.
	RetroLossDB float64
}

// ImpairmentResult is ablation A2: how fabrication phase errors on the
// Van Atta interconnects erode retrodirective gain (the property paper
// Eq. 4 relies on: "carefully design the transmission lines to have the
// same phase shifts").
type ImpairmentResult struct {
	Points []ImpairmentPoint
	// DepthCleanDB is the OOK modulation depth of the clean array at
	// boresight, for reference.
	DepthCleanDB float64
}

// ImpairmentAblation sweeps phase-error magnitudes, averaging over trials
// random error draws.
func ImpairmentAblation(sigmasDeg []float64, trials int, seed uint64) (ImpairmentResult, error) {
	if len(sigmasDeg) == 0 {
		sigmasDeg = []float64{0, 5, 10, 20, 40, 60, 90}
	}
	if trials <= 0 {
		trials = 20
	}
	const f = 24e9
	const theta = math.Pi / 6
	src := rng.New(seed)
	clean, err := vanatta.New(6, f)
	if err != nil {
		return ImpairmentResult{}, err
	}
	ref := clean.RetroGainDBi(theta, f)
	res := ImpairmentResult{DepthCleanDB: clean.ModulationDepthDB(0, f)}
	for _, sg := range sigmasDeg {
		// Draw every trial's phase errors sequentially first — the exact
		// order (and Gaussian spare-caching) of the old loop — then fan
		// the expensive retro-gain evaluations out across workers.
		draws := make([][]float64, trials)
		for tr := range draws {
			errs := make([]float64, 6)
			for i := range errs {
				errs[i] = src.NormScaled(0, sg*math.Pi/180)
			}
			draws[tr] = errs
		}
		losses, err := par.MapErr(trials, func(tr int) (float64, error) {
			dirty, err := vanatta.New(6, f)
			if err != nil {
				return 0, err
			}
			dirty.PhaseErrorRad = draws[tr]
			return ref - dirty.RetroGainDBi(theta, f), nil
		})
		if err != nil {
			return res, err
		}
		var loss float64
		for _, l := range losses {
			loss += l
		}
		res.Points = append(res.Points, ImpairmentPoint{
			PhaseErrSigmaDeg: sg,
			RetroLossDB:      loss / float64(trials),
		})
	}
	return res, nil
}

// Table renders the ablation.
func (r ImpairmentResult) Table() Table {
	t := newTable("A2 — impairment ablation: retro-gain loss vs transmission-line phase error (30° incidence)",
		render.Column{Header: "phase error σ (deg)", Format: render.Float(0)},
		render.Column{Header: "mean retro-gain loss (dB)", Format: render.Float(2)},
	)
	t.Notes = []string{
		fmt.Sprintf("clean-array OOK modulation depth: %.1f dB", r.DepthCleanDB),
		"equal line phases are the load-bearing assumption of paper Eq. 4",
	}
	for _, p := range r.Points {
		t.add(p.PhaseErrSigmaDeg, p.RetroLossDB)
	}
	return t
}
