package experiments

import (
	"fmt"

	"github.com/mmtag/mmtag/internal/channel"
	"github.com/mmtag/mmtag/internal/core"
	"github.com/mmtag/mmtag/internal/geom"
	"github.com/mmtag/mmtag/internal/units"
)

// BlockagePoint is one reflector-loss sample of the NLOS fallback sweep.
type BlockagePoint struct {
	// ReflLossDB is the bounce loss of the wall (metal ≈ 1 dB, drywall
	// ≈ 6 dB, concrete ≈ 10–15 dB).
	ReflLossDB float64
	// Kind is the ray actually used.
	Kind string
	// PathFt is the traversed path length.
	PathFt float64
	// ReceivedDBm / RateBps are the NLOS link's operating point.
	ReceivedDBm float64
	RateBps     float64
}

// BlockageResult is experiment E11 (extension): paper §4's claim that
// "when the line-of-sight path is blocked, the tag and the reader chooses
// an NLOS path to communicate" — because the Van Atta tag retro-reflects
// along whatever ray reaches it, the fallback needs no tag-side action.
type BlockageResult struct {
	// LOSReceivedDBm / LOSRateBps is the unblocked reference.
	LOSReceivedDBm float64
	LOSRateBps     float64
	Points         []BlockagePoint
	// SeveredWithoutReflector is true when removing the wall kills the
	// blocked link entirely (sanity anchor).
	SeveredWithoutReflector bool
}

// Blockage evaluates a 4 ft link whose LOS is cut by an obstacle, with a
// side wall at 0.35 m providing the single-bounce detour, across wall
// materials.
func Blockage() (BlockageResult, error) {
	var res BlockageResult
	mk := func(reflLoss float64, withWall, withBlocker bool) (*core.Link, error) {
		l, err := core.NewDefaultLink(units.FeetToMeters(4))
		if err != nil {
			return nil, err
		}
		if withBlocker {
			mid := l.Tag.Pose.Pos.X / 2
			l.Env.Blockers = []geom.Segment{{A: geom.Vec{X: mid, Y: -0.25}, B: geom.Vec{X: mid, Y: 0.25}}}
		}
		if withWall {
			l.Env.Reflectors = []channel.Reflector{{
				Surface: geom.Segment{A: geom.Vec{X: -1, Y: 0.35}, B: geom.Vec{X: 3, Y: 0.35}},
				LossDB:  reflLoss,
			}}
		}
		return l, nil
	}
	// Unblocked LOS reference.
	l, err := mk(0, false, false)
	if err != nil {
		return res, err
	}
	b, err := l.ComputeBudget()
	if err != nil {
		return res, err
	}
	res.LOSReceivedDBm = b.ReceivedDBm
	res.LOSRateBps = b.RateBps

	// Blocked with no wall: severed.
	l, err = mk(0, false, true)
	if err != nil {
		return res, err
	}
	b, err = l.ComputeBudget()
	if err != nil {
		return res, err
	}
	res.SeveredWithoutReflector = b.Severed

	for _, loss := range []float64{0.5, 1, 3, 6, 10} {
		l, err := mk(loss, true, true)
		if err != nil {
			return res, err
		}
		b, err := l.ComputeBudget()
		if err != nil {
			return res, err
		}
		if b.Severed {
			res.Points = append(res.Points, BlockagePoint{ReflLossDB: loss, Kind: "severed"})
			continue
		}
		// Re-point the reader's beam at the bounce (the reader-side scan
		// would find this); the tag needs nothing.
		l.BeamRad = b.Ray.DepartureRad
		b, err = l.ComputeBudget()
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, BlockagePoint{
			ReflLossDB:  loss,
			Kind:        b.Ray.Kind.String(),
			PathFt:      units.MetersToFeet(b.Ray.LengthM),
			ReceivedDBm: b.ReceivedDBm,
			RateBps:     b.RateBps,
		})
	}
	return res, nil
}

// Table renders the sweep.
func (r BlockageResult) Table() Table {
	t := Table{
		Title:   "E11 (extension) / §4 — NLOS fallback: blocked LOS rescued by a single bounce",
		Columns: []string{"wall loss (dB)", "path", "length (ft)", "Pr (dBm)", "rate"},
		Notes: []string{
			fmt.Sprintf("unblocked LOS reference: %.1f dBm, %s", r.LOSReceivedDBm, units.FormatRate(r.LOSRateBps)),
			fmt.Sprintf("blocked with no reflector: severed = %v", r.SeveredWithoutReflector),
			"the tag retro-reflects along the arriving ray, so only the reader re-aims (paper §4)",
			"two-way operation doubles every wall loss: lossy walls (≥10 dB one-way) sever the fallback",
		},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", p.ReflLossDB),
			p.Kind,
			fmt.Sprintf("%.1f", p.PathFt),
			fmt.Sprintf("%.1f", p.ReceivedDBm),
			units.FormatRate(p.RateBps),
		})
	}
	return t
}
