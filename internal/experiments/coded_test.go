package experiments

import "testing"

func TestCodedBER(t *testing.T) {
	r, err := CodedBER(300_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 10 {
		t.Fatalf("points %d", len(r.Points))
	}
	for i, p := range r.Points {
		// Above the crossover region, the code strictly improves the data
		// BER.
		if p.SNRdB >= 6 && p.RawBER > 1e-5 && p.CodedBER >= p.RawBER {
			t.Errorf("SNR %g: coded %g not below raw %g", p.SNRdB, p.CodedBER, p.RawBER)
		}
		// Corrections fall with SNR.
		if i > 0 && p.CorrectionsPer10k > r.Points[i-1].CorrectionsPer10k+1 {
			t.Errorf("corrections not decreasing at %g dB", p.SNRdB)
		}
	}
	// The documented finding: Hamming(7,4)'s gross gain (≈2 dB at 1e-3)
	// roughly cancels its 2.4 dB rate penalty on this steep envelope-OOK
	// waterfall — net gain near zero, growing at deeper BER targets.
	if r.CodingGainDB < -1.5 || r.CodingGainDB > 1.5 {
		t.Errorf("net coding gain %.1f dB outside the near-zero band", r.CodingGainDB)
	}
	if len(r.Table().Rows) != 10 {
		t.Error("table rows")
	}
}

func TestCodedBERDefaults(t *testing.T) {
	// Tiny bit budget exercises the block-size rounding.
	r, err := CodedBER(196, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) == 0 {
		t.Error("no points")
	}
}
