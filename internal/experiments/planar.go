package experiments

import (
	"fmt"
	"math"
	"math/cmplx"

	"github.com/mmtag/mmtag/internal/vanatta"
)

// PlanarPoint compares planar tag architectures at one (az, el)
// incidence.
type PlanarPoint struct {
	AzDeg, ElDeg float64
	// VanAttaDB is the 4×4 planar Van Atta's monostatic return relative
	// to boresight.
	VanAttaDB float64
	// FixedDB is a same-geometry planar *fixed-beam* reflector's return
	// (each element re-radiates its own signal — specular).
	FixedDB float64
	// BeamErrDeg is the Van Atta scattered beam's pointing error.
	BeamErrDeg float64
}

// PlanarResult is experiment E17 (extension): the 2-D build-out of the
// paper's tag. The prototype's PCB (Fig. 5) is planar already; pairing
// elements point-symmetrically — (m,n) ↔ (Nx−1−m, Ny−1−n), the 2-D
// generalization of Fig. 3b — makes it retrodirective in *elevation* as
// well as azimuth, which matters the moment tags sit above or below the
// reader's scan plane.
type PlanarResult struct {
	Points []PlanarPoint
	// LinearGainDBi / PlanarGainDBi are the boresight retro gains of the
	// paper's 6-element line vs the 16-element 4×4 panel.
	LinearGainDBi, PlanarGainDBi float64
}

// PlanarTag sweeps (az, el) incidences.
func PlanarTag() (PlanarResult, error) {
	const f = 24e9
	lin, err := vanatta.New(6, f)
	if err != nil {
		return PlanarResult{}, err
	}
	pl, err := vanatta.NewPlanar(4, 4, f)
	if err != nil {
		return PlanarResult{}, err
	}
	var res PlanarResult
	res.LinearGainDBi = lin.RetroGainDBi(0, f)
	res.PlanarGainDBi = pl.RetroGainDBi(0, 0, f)

	// Fixed-beam planar reference: each element re-radiates its own
	// phasor — the scattering is specular in both planes.
	ura := pl.Geometry
	fixed := func(az, el float64) float64 {
		rx := ura.SteeringVector(az, el)
		return cmplx.Abs(ura.ArrayFactor(rx, az, el))
	}
	ref := cmplx.Abs(pl.MonostaticResponse(0, 0, f))
	refFixed := fixed(0, 0)
	for _, pt := range []struct{ azDeg, elDeg float64 }{
		{0, 0}, {30, 0}, {0, 15}, {0, 30}, {20, 20}, {30, 30},
	} {
		az := pt.azDeg * math.Pi / 180
		el := pt.elDeg * math.Pi / 180
		va := cmplx.Abs(pl.MonostaticResponse(az, el, f))
		fx := fixed(az, el)
		p := PlanarPoint{
			AzDeg:      pt.azDeg,
			ElDeg:      pt.elDeg,
			VanAttaDB:  20 * math.Log10(va/ref),
			FixedDB:    dbOrFloor(fx / refFixed),
			BeamErrDeg: pl.RetroErrorDeg(az, el, f, 61),
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

func dbOrFloor(r float64) float64 {
	if r <= 1e-4 {
		return -80
	}
	return 20 * math.Log10(r)
}

// Table renders the comparison.
func (r PlanarResult) Table() Table {
	t := Table{
		Title:   "E17 (extension) — planar 4×4 Van Atta vs planar fixed-beam reflector across (az, el)",
		Columns: []string{"az (deg)", "el (deg)", "Van Atta (dB)", "fixed-beam (dB)", "VA beam err (deg)"},
		Notes: []string{
			fmt.Sprintf("boresight retro gain: paper's 6-element line %.1f dBi → 4×4 panel %.1f dBi (same PCB class)",
				r.LinearGainDBi, r.PlanarGainDBi),
			"the planar pairing keeps the return within the element rolloff in BOTH planes; the fixed panel collapses off boresight",
		},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", p.AzDeg),
			fmt.Sprintf("%.0f", p.ElDeg),
			fmt.Sprintf("%.1f", p.VanAttaDB),
			fmt.Sprintf("%.1f", p.FixedDB),
			fmt.Sprintf("%.1f", p.BeamErrDeg),
		})
	}
	return t
}
