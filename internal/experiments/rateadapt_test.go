package experiments

import "testing"

func TestRateAdaptation(t *testing.T) {
	r, err := RateAdaptation(21)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 21 {
		t.Fatalf("points %d", len(r.Points))
	}
	// 4-ASK's penalty over binary at BER 1e-3 is the level-spacing cost:
	// 20·log10(3) ≈ 9.5 dB minus the average-power ratio ≈ 1.3 dB ⇒ ~8 dB.
	if r.ASK4ExtraSNRdB < 7 || r.ASK4ExtraSNRdB > 10 {
		t.Errorf("4-ASK SNR gap %.1f dB out of expected band", r.ASK4ExtraSNRdB)
	}
	// At 2 ft the adapted link doubles the paper's 1 Gb/s.
	if r.PeakRateBps != 2e9 {
		t.Errorf("peak adapted rate %g, want 2 Gb/s", r.PeakRateBps)
	}
	sawASK := false
	for _, p := range r.Points {
		// The adapted rate never falls below the paper's OOK table.
		if p.AdaptedRateBps < p.OOKRateBps {
			t.Errorf("%.1f ft: adapted %g below OOK %g", p.RangeFt, p.AdaptedRateBps, p.OOKRateBps)
		}
		if p.Scheme == "4-ASK" {
			sawASK = true
			if p.AdaptedRateBps != 2*p.OOKRateBps && p.OOKRateBps > 0 {
				// 4-ASK in a *narrower* band can also beat OOK in a wider
				// one; just require strict improvement.
				if p.AdaptedRateBps <= p.OOKRateBps {
					t.Errorf("%.1f ft: 4-ASK chosen but no gain", p.RangeFt)
				}
			}
		}
	}
	if !sawASK {
		t.Error("adaptation never chose 4-ASK")
	}
	if len(r.Table().Rows) != 21 {
		t.Error("table rows")
	}
}
