package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestTableRenderAndCSV(t *testing.T) {
	tab := Table{
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "two,with comma"}},
		Notes:   []string{"a note"},
	}
	s := tab.Render()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "note: a note") {
		t.Errorf("render: %q", s)
	}
	csv := tab.CSV()
	if !strings.Contains(csv, `"two,with comma"`) {
		t.Errorf("csv quoting: %q", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("csv header: %q", csv)
	}
}

func TestFigure6ReproducesPaper(t *testing.T) {
	r, err := Figure6(201)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 201 {
		t.Fatalf("points %d", len(r.Points))
	}
	// Paper anchors: −15 dB off, −5 dB on, at the 24 GHz carrier.
	if math.Abs(r.CarrierOffDB-(-15)) > 1 {
		t.Errorf("off anchor %.2f, want −15±1", r.CarrierOffDB)
	}
	if math.Abs(r.CarrierOnDB-(-5)) > 1 {
		t.Errorf("on anchor %.2f, want −5±1", r.CarrierOnDB)
	}
	// Shape: the off curve has a single minimum at the carrier; band
	// edges shallow; modulation depth positive everywhere.
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if first.OffDB < -8 || last.OffDB < -8 {
		t.Errorf("off band edges too deep: %.1f / %.1f", first.OffDB, last.OffDB)
	}
	for _, p := range r.Points {
		if p.DepthDB <= 0 {
			t.Fatalf("modulation depth non-positive at %.3f GHz", p.FreqHz/1e9)
		}
	}
	tab := r.Table()
	if len(tab.Rows) == 0 || len(tab.Columns) != 3 {
		t.Error("table shape")
	}
}

func TestFigure7ReproducesPaper(t *testing.T) {
	r, err := Figure7(21)
	if err != nil {
		t.Fatal(err)
	}
	// Headline claims.
	if r.RateAt4ft < 1e9 {
		t.Errorf("rate at 4 ft %g, want ≥ 1 Gb/s", r.RateAt4ft)
	}
	if r.RateAt10ft < 1e7 || r.RateAt10ft >= 1e9 {
		t.Errorf("rate at 10 ft %g, want 10–100 Mb/s band", r.RateAt10ft)
	}
	// Noise floors match the figure's three lines.
	for label, want := range map[string]float64{"20 MHz": -95.8, "200 MHz": -85.8, "2 GHz": -75.8} {
		if got := r.Floors[label]; math.Abs(got-want) > 0.2 {
			t.Errorf("floor %s = %.1f, want %.1f", label, got, want)
		}
	}
	// Monotone decay, ~40 dB/decade: from 2 ft to 12 ft expect
	// 40·log10(6) ≈ 31 dB of drop.
	firstP, lastP := r.Points[0], r.Points[len(r.Points)-1]
	drop := firstP.ReceivedDBm - lastP.ReceivedDBm
	if math.Abs(drop-31.1) > 1 {
		t.Errorf("2→12 ft drop %.1f dB, want ≈31", drop)
	}
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].ReceivedDBm >= r.Points[i-1].ReceivedDBm {
			t.Fatal("received power must fall with range")
		}
	}
	// Rate tiers ordered sensibly.
	if !(r.MaxRangeFt["1.00 Gb/s"] < r.MaxRangeFt["100.00 Mb/s"] &&
		r.MaxRangeFt["100.00 Mb/s"] < r.MaxRangeFt["10.00 Mb/s"]) {
		t.Errorf("rate tier ranges out of order: %v", r.MaxRangeFt)
	}
	// 1 Gb/s holds past 4 ft but not past 10 ft.
	if r.MaxRangeFt["1.00 Gb/s"] < 4 || r.MaxRangeFt["1.00 Gb/s"] > 10 {
		t.Errorf("1 Gb/s range %.1f ft implausible", r.MaxRangeFt["1.00 Gb/s"])
	}
	if r.MaxRangeFt["10.00 Mb/s"] < 10 {
		t.Errorf("10 Mb/s should reach 10 ft, got %.1f", r.MaxRangeFt["10.00 Mb/s"])
	}
	tab := r.Table()
	if len(tab.Rows) != 21 {
		t.Error("table rows")
	}
}

func TestRetrodirectivityExperiment(t *testing.T) {
	r, err := Retrodirectivity(13)
	if err != nil {
		t.Fatal(err)
	}
	// Inside ±45° the pointing error is fractions of a degree; at the
	// ±60° sweep edges the patch element pattern drags the product peak
	// a few degrees toward boresight — accept up to 8°.
	if r.WorstErrorDeg > 8 {
		t.Errorf("worst Van Atta pointing error %.2f°", r.WorstErrorDeg)
	}
	if r.FixedBeamCollapseDeg <= 0 || r.FixedBeamCollapseDeg > 20 {
		t.Errorf("fixed-beam collapse at %.1f°, want early collapse", r.FixedBeamCollapseDeg)
	}
	// The Van Atta return stays within ~6 dB over ±60°; the fixed beam
	// ends ≥ 20 dB down at the sweep edges.
	for _, p := range r.Points {
		// Rolloff at the sweep edges is the element pattern (two passes
		// of cos(60°) ≈ −12 dB), not a retrodirectivity failure.
		if p.VanAttaDB < -13 {
			t.Errorf("Van Atta return at %g°: %.1f dB", p.IncidenceDeg, p.VanAttaDB)
		}
		if math.Abs(p.IncidenceDeg) < 35 && p.PeakErrorDeg > 2 {
			t.Errorf("pointing error %.2f° at %g° incidence", p.PeakErrorDeg, p.IncidenceDeg)
		}
	}
	edge := r.Points[0]
	if edge.FixedDB > -15 {
		t.Errorf("fixed-beam at −60°: %.1f dB, want collapsed", edge.FixedDB)
	}
	if len(r.Table().Rows) != 13 {
		t.Error("table rows")
	}
}

func TestBeamwidthExperiment(t *testing.T) {
	r, err := Beamwidth(6)
	if err != nil {
		t.Fatal(err)
	}
	if r.HPBWDeg < 15 || r.HPBWDeg > 21 {
		t.Errorf("6-element HPBW %.1f°, paper quotes 20°", r.HPBWDeg)
	}
	// The aperture must fit the paper's 60 mm PCB width.
	if r.ApertureWidthMM > r.TagWidthMM {
		t.Errorf("aperture %.1f mm exceeds the PCB width %.0f mm", r.ApertureWidthMM, r.TagWidthMM)
	}
	if len(r.Table().Rows) != 3 {
		t.Error("table shape")
	}
}

func TestComparisonExperiment(t *testing.T) {
	r, err := Comparison()
	if err != nil {
		t.Fatal(err)
	}
	if r.MmTagAt4ft < 1e9 {
		t.Errorf("mmTag at 4 ft: %g", r.MmTagAt4ft)
	}
	// Orders-of-magnitude claim: every baseline row ≤ 5 Mb/s.
	for _, row := range r.Rows {
		if strings.HasPrefix(row.Name, "mmTag") {
			continue
		}
		if row.RateBps > 5e6 {
			t.Errorf("%s quoted %g b/s — exceeds the paper's baseline ceiling", row.Name, row.RateBps)
		}
	}
	// 4 baselines + 2 mmTag rows.
	if len(r.Rows) != 6 {
		t.Errorf("row count %d", len(r.Rows))
	}
	if len(r.Table().Rows) != 6 {
		t.Error("table rows")
	}
}

func TestBERValidationExperiment(t *testing.T) {
	r, err := BERValidation(60_000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) == 0 {
		t.Fatal("no points")
	}
	// Monte-Carlo tracks the envelope analytic curve within 2× where the
	// BER is measurable.
	for _, p := range r.Points {
		if p.Analytic > 5e-4 {
			if p.MonteCarlo < p.Analytic/2 || p.MonteCarlo > p.Analytic*2 {
				t.Errorf("SNR %g: MC %.3g vs analytic %.3g", p.SNRdB, p.MonteCarlo, p.Analytic)
			}
		}
		if p.AnalyticCoh > p.Analytic {
			t.Errorf("coherent OOK cannot be worse than envelope at %g dB", p.SNRdB)
		}
	}
	// The envelope 1e-3 threshold lands between the paper's constant and
	// +6 dB of it.
	if r.SNRForTarget < r.PaperThresholdDB || r.SNRForTarget > r.PaperThresholdDB+6 {
		t.Errorf("1e-3 threshold %.1f dB vs paper constant %.0f", r.SNRForTarget, r.PaperThresholdDB)
	}
}

func TestMultiTagExperiment(t *testing.T) {
	r, err := MultiTag([]int{1, 4, 8}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points %d", len(r.Points))
	}
	for _, p := range r.Points {
		if p.Detected == 0 {
			t.Errorf("%d tags: none detected", p.Tags)
		}
		if p.Detected > p.Tags {
			t.Errorf("detected %d of %d", p.Detected, p.Tags)
		}
		if p.AggregateBps <= 0 {
			t.Errorf("%d tags: zero aggregate", p.Tags)
		}
		if p.Aggregate4Beam < p.AggregateBps-1e-9 {
			t.Errorf("%d tags: 4-beam aggregate %g below single-beam %g", p.Tags, p.Aggregate4Beam, p.AggregateBps)
		}
		if p.Fairness < 0 || p.Fairness > 1+1e-12 {
			t.Errorf("fairness %g out of [0,1]", p.Fairness)
		}
	}
	if len(r.Table().Rows) != 3 {
		t.Error("table rows")
	}
}

func TestSelfInterferenceExperiment(t *testing.T) {
	r, err := SelfInterference(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 7 {
		t.Fatalf("points %d", len(r.Points))
	}
	// High isolation must decode; the experiment records the frontier.
	if !r.Points[0].Decoded {
		t.Error("80 dB isolation should decode cleanly")
	}
	if r.MinWorkingIsolationDB <= 0 || r.MinWorkingIsolationDB > 80 {
		t.Errorf("min working isolation %.0f dB", r.MinWorkingIsolationDB)
	}
	if len(r.Table().Rows) != 7 {
		t.Error("table rows")
	}
}

func TestArraySizeAblation(t *testing.T) {
	r, err := ArraySizeAblation([]int{2, 6, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points %d", len(r.Points))
	}
	// More elements → more gain, more received power, more range.
	for i := 1; i < len(r.Points); i++ {
		a, b := r.Points[i-1], r.Points[i]
		if b.RetroGainDBi <= a.RetroGainDBi {
			t.Errorf("gain not increasing: N=%d %.1f vs N=%d %.1f", a.Elements, a.RetroGainDBi, b.Elements, b.RetroGainDBi)
		}
		if b.ReceivedDBmAt4ft <= a.ReceivedDBmAt4ft {
			t.Error("received power not increasing with N")
		}
		if b.GbpsRangeFt <= a.GbpsRangeFt {
			t.Error("1 Gb/s range not increasing with N")
		}
	}
	// The paper's N=6 point: 1 Gb/s range between 4 and 10 ft.
	for _, p := range r.Points {
		if p.Elements == 6 && (p.GbpsRangeFt < 4 || p.GbpsRangeFt > 10) {
			t.Errorf("N=6 1 Gb/s range %.1f ft", p.GbpsRangeFt)
		}
	}
	if len(r.Table().Rows) != 3 {
		t.Error("table rows")
	}
}

func TestImpairmentAblation(t *testing.T) {
	r, err := ImpairmentAblation([]float64{0, 20, 60}, 10, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points %d", len(r.Points))
	}
	// Zero error: zero loss. Loss grows with sigma.
	if math.Abs(r.Points[0].RetroLossDB) > 1e-9 {
		t.Errorf("zero-sigma loss %g", r.Points[0].RetroLossDB)
	}
	if !(r.Points[1].RetroLossDB < r.Points[2].RetroLossDB) {
		t.Errorf("loss not increasing: %v", r.Points)
	}
	if r.Points[2].RetroLossDB < 1 {
		t.Errorf("60° phase error should cost ≥ 1 dB, got %.2f", r.Points[2].RetroLossDB)
	}
	if r.DepthCleanDB < 20 {
		t.Errorf("clean modulation depth %.1f dB", r.DepthCleanDB)
	}
	if len(r.Table().Rows) != 3 {
		t.Error("table rows")
	}
}
