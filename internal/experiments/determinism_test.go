package experiments

import (
	"bytes"
	"runtime"
	"testing"

	"github.com/mmtag/mmtag/internal/obs/event"
	"github.com/mmtag/mmtag/internal/par"
)

// renderAll regenerates every parallelized experiment at the current
// worker count and concatenates the rendered tables, so a single string
// compare covers the whole fan-out surface.
func renderAll(t *testing.T) string {
	t.Helper()
	var out string
	ber, err := BERValidation(40_000, 11)
	if err != nil {
		t.Fatal(err)
	}
	out += ber.Table().Render()
	ac, err := AntiCollision([]int{4, 16}, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	out += ac.Table().Render()
	mt, err := MultiTag([]int{1, 4, 8}, 5)
	if err != nil {
		t.Fatal(err)
	}
	out += mt.Table().Render()
	arq, err := ARQGoodput(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	out += arq.Table().Render()
	ra, err := RateAdaptation(11)
	if err != nil {
		t.Fatal(err)
	}
	out += ra.Table().Render()
	imp, err := ImpairmentAblation([]float64{0, 20, 60}, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	out += imp.Table().Render()
	as, err := ArraySizeAblation([]int{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	out += as.Table().Render()
	rt, err := Retrodirectivity(13)
	if err != nil {
		t.Fatal(err)
	}
	out += rt.Table().Render()
	return out
}

// TestExperimentsWorkerCountInvariance is the repo's determinism
// contract: every experiment's rendered output must be byte-identical
// whether the sweeps run on one goroutine (the reference stream) or on
// any other worker count. The CI determinism job enforces the same
// property end to end through cmd/mmtag.
func TestExperimentsWorkerCountInvariance(t *testing.T) {
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	ref := renderAll(t)
	for _, w := range []int{2, 4, runtime.NumCPU() + 3} {
		par.SetWorkers(w)
		if got := renderAll(t); got != ref {
			t.Fatalf("workers=%d output diverged from the workers=1 reference stream", w)
		}
	}
}

// eventsAll regenerates the instrumented experiments with the event log
// enabled and returns the serialized JSONL exposition.
func eventsAll(t *testing.T) []byte {
	t.Helper()
	log := event.New(0)
	event.EnableWith(log)
	defer event.Disable()
	renderAll(t)
	if d, _ := log.Dropped(); d != 0 {
		t.Fatalf("event log dropped %d events; determinism is void under drops", d)
	}
	var buf bytes.Buffer
	if err := log.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEventLogWorkerCountInvariance extends the determinism contract to
// the structured event log: the events.jsonl exposition must be
// byte-identical for any worker count, even though the emitting shards
// interleave differently on every run. The CI determinism job diffs the
// same artifact end to end through cmd/mmtag -rundir.
func TestEventLogWorkerCountInvariance(t *testing.T) {
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	ref := eventsAll(t)
	if len(ref) == 0 {
		t.Fatal("instrumented experiments emitted no events")
	}
	for _, w := range []int{4, runtime.NumCPU() + 3} {
		par.SetWorkers(w)
		if got := eventsAll(t); !bytes.Equal(got, ref) {
			t.Fatalf("workers=%d events.jsonl diverged from the workers=1 reference", w)
		}
	}
}
