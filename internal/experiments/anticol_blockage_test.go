package experiments

import (
	"math"
	"testing"
)

func TestAntiCollisionExperiment(t *testing.T) {
	r, err := AntiCollision([]int{4, 16, 64}, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points %d", len(r.Points))
	}
	for _, p := range r.Points {
		// Classic theory: Aloha ≈ e·n slots, tree ≈ 2.9·n queries. Both
		// per-tag costs must sit in [1.5, 4.5].
		if p.AlohaPerTag < 1.5 || p.AlohaPerTag > 4.5 {
			t.Errorf("n=%d: aloha %.2f per tag", p.Tags, p.AlohaPerTag)
		}
		if p.TreePerTag < 2.0 || p.TreePerTag > 4.0 {
			t.Errorf("n=%d: tree %.2f per tag", p.Tags, p.TreePerTag)
		}
		if p.AlohaEff <= 0 || p.AlohaEff > 1 || p.TreeEff <= 0 || p.TreeEff > 1 {
			t.Errorf("n=%d: efficiencies out of range", p.Tags)
		}
	}
	// Large-n Aloha efficiency approaches 1/e.
	last := r.Points[len(r.Points)-1]
	if math.Abs(last.AlohaEff-1/math.E) > 0.06 {
		t.Errorf("aloha efficiency %.3f, want ≈ %.3f", last.AlohaEff, 1/math.E)
	}
	if len(r.Table().Rows) != 3 {
		t.Error("table rows")
	}
}

func TestBlockageExperiment(t *testing.T) {
	r, err := Blockage()
	if err != nil {
		t.Fatal(err)
	}
	if !r.SeveredWithoutReflector {
		t.Error("blocked link without a wall must be severed")
	}
	if r.LOSRateBps < 1e9 {
		t.Errorf("LOS reference rate %g", r.LOSRateBps)
	}
	if len(r.Points) != 5 {
		t.Fatalf("points %d", len(r.Points))
	}
	prev := math.Inf(1)
	for _, p := range r.Points {
		if p.Kind != "NLOS" {
			t.Fatalf("wall loss %g: path %q, want NLOS", p.ReflLossDB, p.Kind)
		}
		// NLOS is longer than the 4 ft direct path and weaker than LOS.
		if p.PathFt <= 4 {
			t.Errorf("NLOS path %.1f ft should exceed 4", p.PathFt)
		}
		if p.ReceivedDBm >= r.LOSReceivedDBm {
			t.Errorf("NLOS (%.1f dBm) cannot beat LOS (%.1f)", p.ReceivedDBm, r.LOSReceivedDBm)
		}
		// Lossier walls → weaker link; two-way: each dB of wall loss
		// costs 2 dB.
		if p.ReceivedDBm >= prev {
			t.Error("received power should fall with wall loss")
		}
		prev = p.ReceivedDBm
		// §4's claim: communication continues — for reasonable walls
		// (metal/drywall, ≤ 3 dB one-way). Heavier walls may legitimately
		// sever the two-way link.
		if p.ReflLossDB <= 3 && p.RateBps <= 0 {
			t.Errorf("wall loss %g dB: NLOS link dead", p.ReflLossDB)
		}
	}
	// Two-way wall loss: 10 dB wall vs 0.5 dB wall differ by 19 dB.
	d := r.Points[0].ReceivedDBm - r.Points[len(r.Points)-1].ReceivedDBm
	if math.Abs(d-19) > 0.5 {
		t.Errorf("two-way wall-loss delta %.1f dB, want 19", d)
	}
	if len(r.Table().Rows) != 5 {
		t.Error("table rows")
	}
}
