package experiments

import (
	"fmt"
	"math"

	"github.com/mmtag/mmtag/internal/core"
	"github.com/mmtag/mmtag/internal/obs/event"
	"github.com/mmtag/mmtag/internal/obs/signal"
	"github.com/mmtag/mmtag/internal/par"
	"github.com/mmtag/mmtag/internal/phy"
	"github.com/mmtag/mmtag/internal/render"
	"github.com/mmtag/mmtag/internal/units"
)

// RateAdaptPoint is one range sample of the adaptive-MCS sweep.
type RateAdaptPoint struct {
	RangeFt     float64
	ReceivedDBm float64
	// OOKRateBps is the paper's table rate (OOK only).
	OOKRateBps float64
	// AdaptedRateBps picks the best of OOK and 4-ASK per bandwidth.
	AdaptedRateBps float64
	// Scheme and Bandwidth describe the adapted choice.
	Scheme    string
	Bandwidth string
}

// RateAdaptResult is experiment E12 (extension): modulation adaptation
// beyond the paper's OOK — 4-ASK carries 2 bits/symbol by driving subsets
// of the Van Atta pairs, doubling throughput where the SNR affords its
// 3×-tighter level spacing.
type RateAdaptResult struct {
	Points []RateAdaptPoint
	// ASK4ExtraSNRdB is the additional SNR 4-ASK needs over binary ASK at
	// BER 10⁻³, from this package's analytic curves.
	ASK4ExtraSNRdB float64
	// PeakRateBps is the best adapted rate in the sweep (2 Gb/s at short
	// range).
	PeakRateBps float64
	// CrossoverFt is the range where adaptation stops preferring 4-ASK.
	CrossoverFt float64
}

// requiredSNRdB inverts an analytic BER curve for the 1e-3 target.
func requiredSNRdB(ber func(float64) float64) float64 {
	lo, hi := -5.0, 40.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if ber(math.Pow(10, mid/10)) > units.TargetBER {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// RateAdaptation sweeps 2–12 ft, choosing per point the best
// (scheme, bandwidth) pair.
func RateAdaptation(n int) (RateAdaptResult, error) {
	if n < 2 {
		n = 21
	}
	var res RateAdaptResult
	// SNR thresholds: keep the paper's 7 dB for OOK/binary-ASK, and
	// offset 4-ASK by the analytic gap between the two curves so the two
	// constants share the paper's normalization.
	bin := requiredSNRdB(func(s float64) float64 { p, _ := phy.BERASK(2, s); return p })
	quad := requiredSNRdB(func(s float64) float64 { p, _ := phy.BERASK(4, s); return p })
	res.ASK4ExtraSNRdB = quad - bin
	thrOOK := units.ASKRequiredSNRdB
	thrASK4 := units.ASKRequiredSNRdB + res.ASK4ExtraSNRdB

	probe, err := core.NewDefaultLink(1)
	if err != nil {
		return res, err
	}
	// The per-range link budgets are independent pure computations: fan
	// them out, then derive the order-dependent summary fields (peak,
	// 4-ASK crossover) in a sequential scan over the ordered points.
	points, err := par.MapErr(n, func(i int) (RateAdaptPoint, error) {
		ft := 2 + 10*float64(i)/float64(n-1)
		l, err := core.NewDefaultLink(units.FeetToMeters(ft))
		if err != nil {
			return RateAdaptPoint{}, err
		}
		b, err := l.ComputeBudget()
		if err != nil {
			return RateAdaptPoint{}, err
		}
		pt := RateAdaptPoint{RangeFt: ft, ReceivedDBm: b.ReceivedDBm, OOKRateBps: b.RateBps, Scheme: "-", Bandwidth: "-"}
		best := 0.0
		for _, bw := range probe.Reader.Bandwidths {
			snr := b.ReceivedDBm - probe.Reader.NoiseFloorDBm(bw.BandwidthHz)
			if snr >= thrOOK && bw.BitRate() > best {
				best = bw.BitRate()
				pt.Scheme, pt.Bandwidth = "OOK", bw.Label
			}
			if snr >= thrASK4 && 2*bw.BitRate() > best {
				best = 2 * bw.BitRate()
				pt.Scheme, pt.Bandwidth = "4-ASK", bw.Label
			}
		}
		pt.AdaptedRateBps = best
		return pt, nil
	})
	if err != nil {
		return res, err
	}
	prevWasASK := false
	prevScheme := ""
	for _, pt := range points {
		if pt.AdaptedRateBps > res.PeakRateBps {
			res.PeakRateBps = pt.AdaptedRateBps
		}
		if pt.Scheme == "4-ASK" {
			prevWasASK = true
		} else if prevWasASK && res.CrossoverFt == 0 {
			res.CrossoverFt = pt.RangeFt
		}
		// Scheme switches are detected in this sequential scan over the
		// ordered points, so the events are worker-count independent even
		// though the budgets above were computed in parallel.
		if pt.Scheme != prevScheme {
			if event.Enabled() {
				event.Emit(0, event.LevelInfo, "experiments.rateadapt", "scheme_switch",
					event.F("range_ft", pt.RangeFt),
					event.S("from", prevScheme), event.S("to", pt.Scheme))
			}
			// Leaving 4-ASK is a rate downshift: flag the most recent
			// tapped burst so the flight recorder preserves the signal
			// conditions that forced the fallback.
			if prevScheme == "4-ASK" {
				if t := signal.Active(); t != nil {
					t.RecordLastBurst(signal.TriggerRateDownshift)
				}
			}
			prevScheme = pt.Scheme
		}
	}
	res.Points = points
	return res, nil
}

// Table renders the sweep.
func (r RateAdaptResult) Table() Table {
	t := newTable("E12 (extension) — modulation adaptation: OOK vs 4-ASK across range",
		render.Column{Header: "range (ft)", Format: render.Float(1)},
		render.Column{Header: "Pr (dBm)", Format: render.Float(1)},
		rateColumn("OOK rate (paper)"),
		rateColumn("adapted rate"),
		render.Column{Header: "scheme"},
		render.Column{Header: "bandwidth"},
	)
	t.Notes = []string{
		fmt.Sprintf("4-ASK needs %.1f dB more SNR than binary ASK at BER 10⁻³ (analytic)", r.ASK4ExtraSNRdB),
		fmt.Sprintf("peak adapted rate %s; 4-ASK stops paying at ≈%.1f ft", units.FormatRate(r.PeakRateBps), r.CrossoverFt),
	}
	for _, p := range r.Points {
		t.add(p.RangeFt, p.ReceivedDBm, p.OOKRateBps, p.AdaptedRateBps, p.Scheme, p.Bandwidth)
	}
	return t
}
