package experiments

import (
	"fmt"
	"math"

	"github.com/mmtag/mmtag/internal/par"
	"github.com/mmtag/mmtag/internal/phy"
	"github.com/mmtag/mmtag/internal/render"
	"github.com/mmtag/mmtag/internal/rng"
	"github.com/mmtag/mmtag/internal/units"
)

// BERPoint is one SNR sample of the validation sweep.
type BERPoint struct {
	SNRdB       float64
	MonteCarlo  float64
	Analytic    float64 // envelope-detection OOK (what the receiver runs)
	AnalyticCoh float64 // coherent ideal OOK, for reference
}

// BERResult is experiment E6: Monte-Carlo validation of the OOK receiver
// against the analytic curves, anchoring the Fig. 7 rate thresholds.
type BERResult struct {
	Points []BERPoint
	// SNRForTarget is the measured SNR (dB) at which the envelope
	// receiver crosses the paper's 10⁻³ BER target.
	SNRForTarget float64
	// PaperThresholdDB is the paper's table constant (7 dB).
	PaperThresholdDB float64
}

// BERValidation sweeps SNR with nBits Monte-Carlo bits per point.
func BERValidation(nBits int, seed uint64) (BERResult, error) {
	if nBits <= 0 {
		nBits = 200_000
	}
	src := rng.New(seed)
	res := BERResult{PaperThresholdDB: units.ASKRequiredSNRdB}
	var snrs []float64
	for snr := 2.0; snr <= 14; snr += 1 {
		snrs = append(snrs, snr)
	}
	// One keyed sub-stream per SNR point: each Monte-Carlo run (itself
	// sharded inside MonteCarloBER) is independent of every other point,
	// so the whole waterfall fans out worker-count-invariantly.
	seq := src.SplitSeq()
	points, err := par.MapErr(len(snrs), func(i int) (BERPoint, error) {
		snr := snrs[i]
		mc, err := phy.MonteCarloBER(phy.OOK{}, snr, nBits, seq.At(uint64(i)))
		if err != nil {
			return BERPoint{}, err
		}
		lin := math.Pow(10, snr/10)
		return BERPoint{
			SNRdB:       snr,
			MonteCarlo:  mc,
			Analytic:    phy.BEROOKEnvelope(lin),
			AnalyticCoh: phy.BEROOKIdeal(lin),
		}, nil
	})
	if err != nil {
		return res, err
	}
	res.Points = points
	// Bisect the analytic envelope curve for the 1e-3 crossing.
	lo, hi := 0.0, 20.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if phy.BEROOKEnvelope(math.Pow(10, mid/10)) > units.TargetBER {
			lo = mid
		} else {
			hi = mid
		}
	}
	res.SNRForTarget = (lo + hi) / 2
	return res, nil
}

// Table renders the waterfall.
func (r BERResult) Table() Table {
	t := newTable("E6 / §8 method — OOK BER: Monte-Carlo receiver vs analytic curves",
		render.Column{Header: "SNR (dB)", Format: render.Float(0)},
		render.Column{Header: "Monte-Carlo", Format: render.Sci(2)},
		render.Column{Header: "analytic (envelope)", Format: render.Sci(2)},
		render.Column{Header: "analytic (coherent)", Format: render.Sci(2)},
	)
	t.Notes = []string{
		fmt.Sprintf("envelope receiver reaches BER 10⁻³ at %.1f dB; the paper's table constant is %.0f dB "+
			"(a different SNR normalization — see EXPERIMENTS.md)", r.SNRForTarget, r.PaperThresholdDB),
	}
	for _, p := range r.Points {
		t.add(p.SNRdB, p.MonteCarlo, p.Analytic, p.AnalyticCoh)
	}
	return t
}
