package experiments

import (
	"fmt"

	"github.com/mmtag/mmtag/internal/circuit"
)

// Fig6Point is one frequency sample of the S11 sweep.
type Fig6Point struct {
	FreqHz  float64
	OffDB   float64 // switch off: antenna tuned, tag reflective
	OnDB    float64 // switch on: antenna detuned, tag absorbed
	DepthDB float64 // single-element OOK modulation depth
}

// Fig6Result is experiment E1: paper Figure 6.
type Fig6Result struct {
	Points []Fig6Point
	// CarrierOffDB / CarrierOnDB are the S11 values at exactly 24 GHz —
	// the paper's quoted −15 dB / −5 dB anchors.
	CarrierOffDB, CarrierOnDB float64
}

// Figure6 sweeps the calibrated patch element over the paper's 23.5–24.5
// GHz span with n points (n ≥ 2; 201 matches the figure's resolution).
func Figure6(n int) (Fig6Result, error) {
	if n < 2 {
		n = 201
	}
	elem := circuit.DefaultPatchElement()
	freq, off, on, err := elem.S11Sweep(23.5e9, 24.5e9, n)
	if err != nil {
		return Fig6Result{}, err
	}
	res := Fig6Result{Points: make([]Fig6Point, n)}
	for i := range freq {
		res.Points[i] = Fig6Point{
			FreqHz:  freq[i],
			OffDB:   off[i],
			OnDB:    on[i],
			DepthDB: elem.ModulationDepthDB(freq[i]),
		}
	}
	res.CarrierOffDB = elem.S11(24e9, false)
	res.CarrierOnDB = elem.S11(24e9, true)
	return res, nil
}

// Table renders the sweep at a readable decimation.
func (r Fig6Result) Table() Table {
	t := Table{
		Title:   "E1 / Fig 6 — S11 of a tag antenna element vs frequency (switch off/on)",
		Columns: []string{"freq (GHz)", "S11 off (dB)", "S11 on (dB)"},
		Notes: []string{
			fmt.Sprintf("at 24 GHz: off %.1f dB (paper: −15), on %.1f dB (paper: −5)", r.CarrierOffDB, r.CarrierOnDB),
			"off = antenna tuned (tag reflects); on = antenna shorted to ground (tag absorbs)",
		},
	}
	step := len(r.Points) / 20
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(r.Points); i += step {
		p := r.Points[i]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", p.FreqHz/1e9),
			fmt.Sprintf("%.2f", p.OffDB),
			fmt.Sprintf("%.2f", p.OnDB),
		})
	}
	return t
}
