package experiments

import (
	"fmt"
	"math"

	"github.com/mmtag/mmtag/internal/antenna"
	"github.com/mmtag/mmtag/internal/core"
	"github.com/mmtag/mmtag/internal/geom"
	"github.com/mmtag/mmtag/internal/mac"
	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/par"
	"github.com/mmtag/mmtag/internal/render"
	"github.com/mmtag/mmtag/internal/rng"
	"github.com/mmtag/mmtag/internal/tag"
	"github.com/mmtag/mmtag/internal/units"
)

// MultiTagPoint is one population sample.
type MultiTagPoint struct {
	Tags          int
	Detected      int
	AggregateBps  float64
	PerTagMeanBps float64
	Fairness      float64
	CycleMs       float64
	// Aggregate4Beam is the aggregate with the 4-beam MIMO extension.
	Aggregate4Beam float64
}

// MultiTagResult is experiment E7: the §9 multi-tag network built out.
type MultiTagResult struct {
	Points []MultiTagPoint
	// CycleP50S / CycleP99S are scan-cycle quantiles read from the
	// mac_sdm_cycle_seconds histogram, filled only when a metrics
	// registry is enabled (the table omits the note otherwise).
	CycleP50S, CycleP99S float64
}

// MultiTag sweeps tag populations placed uniformly over a ±60° sector at
// 3–10 ft and schedules them with SDM + Aloha.
func MultiTag(populations []int, seed uint64) (MultiTagResult, error) {
	if len(populations) == 0 {
		populations = []int{1, 2, 4, 8, 16, 32}
	}
	src := rng.New(seed)
	var res MultiTagResult
	// Pre-split the three per-population streams in the order the old
	// sequential loop drew them (placement, SDM, 4-beam SDM per
	// population), then run the populations on the worker pool: each
	// builds its own network, so the only shared state was the parent rng.
	type popSrc struct{ place, sdm, sdm4 *rng.Source }
	srcs := make([]popSrc, len(populations))
	for i := range srcs {
		srcs[i] = popSrc{place: src.Split(), sdm: src.Split(), sdm4: src.Split()}
	}
	points, err := par.MapErr(len(populations), func(pi int) (MultiTagPoint, error) {
		k := populations[pi]
		placeSrc := srcs[pi].place
		tags := make([]*tag.Tag, 0, k)
		for i := 0; i < k; i++ {
			theta := (placeSrc.Float64()*2 - 1) * math.Pi / 3
			r := units.FeetToMeters(3 + 7*placeSrc.Float64())
			pos := geom.FromPolar(r, theta)
			tg, err := tag.New(uint16(i+1), geom.Pose{Pos: pos, Heading: geom.WrapAngle(theta + math.Pi)})
			if err != nil {
				return MultiTagPoint{}, err
			}
			tags = append(tags, tg)
		}
		n := core.NewDefaultNetwork(tags...)
		// The default reader horn has ≈18° beams: 8 beams tile ±60°.
		cb, err := antenna.UniformCodebook(-math.Pi/3, math.Pi/3, 8)
		if err != nil {
			return MultiTagPoint{}, err
		}
		readings, err := n.Scan(cb)
		if err != nil {
			return MultiTagPoint{}, err
		}
		sdm, err := mac.ScheduleSDM(readings, mac.DefaultSDMConfig(), srcs[pi].sdm)
		if err != nil {
			return MultiTagPoint{}, err
		}
		cfg4 := mac.DefaultSDMConfig()
		cfg4.Beams = 4
		sdm4, err := mac.ScheduleSDM(readings, cfg4, srcs[pi].sdm4)
		if err != nil {
			return MultiTagPoint{}, err
		}
		pt := MultiTagPoint{
			Tags:           k,
			Detected:       len(sdm.Shares),
			AggregateBps:   sdm.AggregateBps,
			Fairness:       mac.JainFairness(sdm.Shares),
			CycleMs:        sdm.CycleS * 1e3,
			Aggregate4Beam: sdm4.AggregateBps,
		}
		if len(sdm.Shares) > 0 {
			pt.PerTagMeanBps = sdm.AggregateBps / float64(len(sdm.Shares))
		}
		return pt, nil
	})
	if err != nil {
		return res, err
	}
	res.Points = points
	if reg := obs.Active(); reg != nil {
		snap := reg.Snapshot()
		res.CycleP50S, _ = snap.Quantile("mac_sdm_cycle_seconds", 0.50)
		res.CycleP99S, _ = snap.Quantile("mac_sdm_cycle_seconds", 0.99)
	}
	return res, nil
}

// Table renders the sweep.
func (r MultiTagResult) Table() Table {
	t := newTable("E7 / §9 extension — multi-tag network: SDM scan + framed Aloha",
		render.Column{Header: "tags", Format: render.Int()},
		render.Column{Header: "detected", Format: render.Int()},
		rateColumn("aggregate"),
		rateColumn("per-tag mean"),
		render.Column{Header: "fairness", Format: render.Float(2)},
		render.Column{Header: "cycle (ms)", Format: render.Float(2)},
		rateColumn("aggregate 4-beam"),
	)
	t.Notes = []string{
		"tags uniform over ±60° at 3–10 ft; reader = default horn, 8-beam codebook, 1 ms dwell",
		"4-beam column = the §9 MIMO multi-beam extension",
	}
	if r.CycleP99S > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"scan cycle p50 %.2f ms / p99 %.2f ms (mac_sdm_cycle_seconds)",
			r.CycleP50S*1e3, r.CycleP99S*1e3))
	}
	for _, p := range r.Points {
		t.add(p.Tags, p.Detected, p.AggregateBps, p.PerTagMeanBps, p.Fairness, p.CycleMs, p.Aggregate4Beam)
	}
	return t
}
