package experiments

import (
	"fmt"
	"math"

	"github.com/mmtag/mmtag/internal/coding"
	"github.com/mmtag/mmtag/internal/phy"
	"github.com/mmtag/mmtag/internal/rng"
)

// CodedPoint is one SNR sample of the coded-vs-uncoded comparison.
type CodedPoint struct {
	SNRdB float64
	// RawBER is the channel bit-error rate (envelope OOK).
	RawBER float64
	// CodedBER is the post-FEC data bit-error rate (Hamming(7,4) +
	// 7×7 interleaving).
	CodedBER float64
	// Corrections counts FEC corrections applied per 10k data bits.
	CorrectionsPer10k float64
}

// CodedResult is experiment E15 (extension): how much a tag-affordable
// FEC (a handful of XOR gates) buys against the channel — relevant to the
// fading dips of E13 and the marginal operating points of Fig. 7.
type CodedResult struct {
	Points []CodedPoint
	// CodingGainDB is the SNR gap between raw and coded curves at BER
	// 10⁻³ (positive = the code helps), measured net of the 4/7 rate's
	// energy cost.
	CodingGainDB float64
}

// CodedBER sweeps SNR, Monte-Carlo-measuring raw and coded OOK BER with
// nBits data bits per point.
func CodedBER(nBits int, seed uint64) (CodedResult, error) {
	if nBits <= 0 {
		nBits = 100_000
	}
	nBits -= nBits % 196 // 7×7 interleaver blocks of 49 code bits = 28 data bits… use LCM-friendly size
	if nBits == 0 {
		nBits = 196
	}
	h := coding.Hamming74{}
	iv := coding.Interleaver{Rows: 7, Cols: 7}
	src := rng.New(seed)
	var res CodedResult
	var rawCurve, codedCurve []CodedPoint
	for snr := 4.0; snr <= 13; snr += 1 {
		// Per-point fresh data.
		data := src.Bits(make([]byte, nBits))
		code, err := h.Encode(data)
		if err != nil {
			return res, err
		}
		code, pad := coding.PadTo(code, iv.BlockSize())
		il, err := iv.Interleave(code)
		if err != nil {
			return res, err
		}
		// Transmit the *coded* stream at the same energy per channel bit
		// as the uncoded reference, i.e. the same SNR: the coding gain
		// reported below then subtracts the rate penalty explicitly.
		recvBits, rawErrs, err := ookChannel(il, snr, src)
		if err != nil {
			return res, err
		}
		deil, err := iv.Deinterleave(recvBits)
		if err != nil {
			return res, err
		}
		decoded, corrections, err := h.Decode(deil[:len(deil)-pad])
		if err != nil {
			return res, err
		}
		codedErrs := 0
		for i := range data {
			if decoded[i] != data[i] {
				codedErrs++
			}
		}
		pt := CodedPoint{
			SNRdB:             snr,
			RawBER:            float64(rawErrs) / float64(len(il)),
			CodedBER:          float64(codedErrs) / float64(len(data)),
			CorrectionsPer10k: float64(corrections) / float64(len(data)) * 1e4,
		}
		res.Points = append(res.Points, pt)
		rawCurve = append(rawCurve, pt)
		codedCurve = append(codedCurve, pt)
	}
	// Coding gain at 1e-3: SNR where each curve crosses, by linear
	// interpolation in log-BER.
	rawSNR := crossSNR(rawCurve, func(p CodedPoint) float64 { return p.RawBER })
	codedSNR := crossSNR(codedCurve, func(p CodedPoint) float64 { return p.CodedBER })
	ratePenalty := -10 * math.Log10(h.Rate()) // 2.43 dB of extra airtime energy
	res.CodingGainDB = rawSNR - codedSNR - ratePenalty
	return res, nil
}

// ookChannel passes bits through an envelope-detected OOK AWGN channel at
// the given average SNR, returning the received bits and error count.
func ookChannel(bits []byte, snrDB float64, src *rng.Source) ([]byte, int, error) {
	syms, err := (phy.OOK{}).Modulate(nil, bits)
	if err != nil {
		return nil, 0, err
	}
	var p float64
	for _, s := range syms {
		p += real(s)*real(s) + imag(s)*imag(s)
	}
	p /= float64(len(syms))
	src.AWGN(syms, p/math.Pow(10, snrDB/10))
	got := (phy.OOK{}).Demodulate(make([]byte, 0, len(bits)), syms)
	errs := 0
	for i := range bits {
		if got[i] != bits[i] {
			errs++
		}
	}
	return got, errs, nil
}

// crossSNR finds the SNR where a monotone BER curve crosses 1e-3.
func crossSNR(pts []CodedPoint, get func(CodedPoint) float64) float64 {
	for i := 1; i < len(pts); i++ {
		a, b := get(pts[i-1]), get(pts[i])
		if a >= 1e-3 && b < 1e-3 && a > 0 {
			if b <= 0 {
				return pts[i].SNRdB
			}
			la, lb := math.Log10(a), math.Log10(b)
			f := (la - (-3)) / (la - lb)
			return pts[i-1].SNRdB + f*(pts[i].SNRdB-pts[i-1].SNRdB)
		}
	}
	return pts[len(pts)-1].SNRdB
}

// Table renders the sweep.
func (r CodedResult) Table() Table {
	t := Table{
		Title:   "E15 (extension) — Hamming(7,4)+interleaving on the OOK link: coded vs uncoded BER",
		Columns: []string{"SNR (dB)", "raw BER", "coded BER", "FEC corrections /10k bits"},
		Notes: []string{
			fmt.Sprintf("net coding gain at BER 10⁻³: %.1f dB (after the 4/7 rate's 2.4 dB airtime penalty)", r.CodingGainDB),
			"Hamming(7,4) is a handful of XOR gates — affordable on a batteryless tag's logic budget",
		},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", p.SNRdB),
			fmt.Sprintf("%.2e", p.RawBER),
			fmt.Sprintf("%.2e", p.CodedBER),
			fmt.Sprintf("%.1f", p.CorrectionsPer10k),
		})
	}
	return t
}
