package experiments

import (
	"strings"
	"testing"
)

func TestFig6Chart(t *testing.T) {
	r, err := Figure6(51)
	if err != nil {
		t.Fatal(err)
	}
	svg, err := r.Chart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig. 6", "Switch off", "Switch on", "<polyline"} {
		if !strings.Contains(svg, want) {
			t.Errorf("fig6 SVG missing %q", want)
		}
	}
}

func TestFig7Chart(t *testing.T) {
	r, err := Figure7(11)
	if err != nil {
		t.Fatal(err)
	}
	svg, err := r.Chart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig. 7", "Tag signal", "Noise floor - 2 GHz",
		"Noise floor - 20 MHz", "stroke-dasharray"} {
		if !strings.Contains(svg, want) {
			t.Errorf("fig7 SVG missing %q", want)
		}
	}
	// One signal polyline + three floors.
	if got := strings.Count(svg, "<polyline"); got != 4 {
		t.Errorf("fig7 polylines %d, want 4", got)
	}
}

func TestRetroChart(t *testing.T) {
	r, err := Retrodirectivity(13)
	if err != nil {
		t.Fatal(err)
	}
	svg, err := r.Chart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "Van Atta") || !strings.Contains(svg, "Fixed-beam") {
		t.Error("retro SVG missing series")
	}
	// The fixed-beam nulls are clamped — no absurd coordinates.
	if strings.Contains(svg, "Inf") || strings.Contains(svg, "NaN") {
		t.Error("non-finite values leaked")
	}
}
