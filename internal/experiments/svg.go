package experiments

import (
	"math"

	"github.com/mmtag/mmtag/internal/plot"
)

// Chart renders Fig. 6 as an SVG line chart matching the paper's axes
// (frequency in GHz vs S11 in dB, switch off vs on).
func (r Fig6Result) Chart() plot.Chart {
	n := len(r.Points)
	fx := make([]float64, n)
	off := make([]float64, n)
	on := make([]float64, n)
	for i, p := range r.Points {
		fx[i] = p.FreqHz / 1e9
		off[i] = p.OffDB
		on[i] = p.OnDB
	}
	return plot.Chart{
		Title:  "Fig. 6 — S11 of a tag antenna element (simulated)",
		XLabel: "Frequency (GHz)",
		YLabel: "Amplitude (dB)",
		Series: []plot.Series{
			{Name: "Switch off", X: fx, Y: off},
			{Name: "Switch on", X: fx, Y: on},
		},
	}
}

// Chart renders Fig. 7 as an SVG line chart matching the paper's axes:
// tag signal power vs range, with the three noise floors as dashed
// horizontal lines.
func (r Fig7Result) Chart() plot.Chart {
	n := len(r.Points)
	fx := make([]float64, n)
	pr := make([]float64, n)
	for i, p := range r.Points {
		fx[i] = p.RangeFt
		pr[i] = p.ReceivedDBm
	}
	series := []plot.Series{{Name: "Tag signal", X: fx, Y: pr}}
	for _, label := range []string{"2 GHz", "200 MHz", "20 MHz"} {
		floor := r.Floors[label]
		series = append(series, plot.Series{
			Name:   "Noise floor - " + label,
			X:      []float64{fx[0], fx[n-1]},
			Y:      []float64{floor, floor},
			Dashed: true,
		})
	}
	return plot.Chart{
		Title:  "Fig. 7 — tag signal power at the reader vs range (simulated)",
		XLabel: "Range (ft)",
		YLabel: "Power (dBm)",
		Series: series,
	}
}

// Chart renders the E3 retrodirectivity sweep.
func (r RetroResult) Chart() plot.Chart {
	n := len(r.Points)
	x := make([]float64, n)
	va := make([]float64, n)
	fb := make([]float64, n)
	for i, p := range r.Points {
		x[i] = p.IncidenceDeg
		va[i] = p.VanAttaDB
		fb[i] = p.FixedDB
		// Clamp the fixed-beam nulls so the chart stays readable.
		if math.IsInf(fb[i], -1) || fb[i] < -40 {
			fb[i] = -40
		}
	}
	return plot.Chart{
		Title:  "E3 — monostatic return vs incidence: Van Atta vs fixed-beam (simulated)",
		XLabel: "Incidence (deg)",
		YLabel: "Return (dB, rel. boresight)",
		Series: []plot.Series{
			{Name: "mmTag (Van Atta)", X: x, Y: va},
			{Name: "Fixed-beam tag", X: x, Y: fb, Dashed: true},
		},
	}
}
