package experiments

import (
	"fmt"

	"github.com/mmtag/mmtag/internal/core"
	"github.com/mmtag/mmtag/internal/energy"
	"github.com/mmtag/mmtag/internal/tag"
	"github.com/mmtag/mmtag/internal/units"
)

// EnergyPoint is one range sample of the batteryless-feasibility sweep.
type EnergyPoint struct {
	RangeFt float64
	// LinkRateBps is the instantaneous PHY rate from the E2 budget.
	LinkRateBps float64
	// ActiveUW is the tag's modulation draw at that rate.
	ActiveUW float64
	// RFHarvestUW is what the rectenna extracts from the reader carrier.
	RFHarvestUW float64
	// AmbientUW is the light+motion harvest (range-independent).
	AmbientUW float64
	// DutyRF / DutyAmbient / DutyBoth are the sustainable duty cycles per
	// supply mix.
	DutyRF, DutyAmbient, DutyBoth float64
	// SustainedBps is the long-run throughput with the combined supply.
	SustainedBps float64
}

// EnergyResult is experiment E9 (extension): the abstract's batteryless
// claim — "their required energy to operate is low enough that it can be
// harvested from the environment without having a battery" — turned into
// a range sweep.
type EnergyResult struct {
	Points []EnergyPoint
	// BatterylessRangeFt is the furthest range at which the combined
	// harvest sustains a nonzero link at duty ≥ 1% (arbitrary liveness
	// bar).
	BatterylessRangeFt float64
}

// EnergyFeasibility sweeps range 2–12 ft with the default tag energy
// model, a 20% rectenna, a 4 cm² indoor PV cell and a 50 µW motion
// scavenger.
func EnergyFeasibility(n int) (EnergyResult, error) {
	if n < 2 {
		n = 11
	}
	ambient := energy.Composite{
		energy.LightHarvester{AreaCM2: 4, IndoorLux: 400, EfficiencyUWPerCM2PerKLux: 10},
		energy.MotionHarvester{AverageUW: 50},
	}
	em := tag.DefaultEnergyModel()
	var res EnergyResult
	lambda := units.Wavelength(24e9)
	for i := 0; i < n; i++ {
		ft := 2 + 10*float64(i)/float64(n-1)
		l, err := core.NewDefaultLink(units.FeetToMeters(ft))
		if err != nil {
			return res, err
		}
		b, err := l.ComputeBudget()
		if err != nil {
			return res, err
		}
		eirp := l.Reader.TXPowerDBm() + l.Antenna.PeakGainDBi()
		incident := energy.IncidentAtTagDBm(eirp, l.Tag.Aperture.RetroGainDBi(0, l.Reader.FreqHz),
			units.FeetToMeters(ft), lambda)
		rf := energy.DefaultRectifier(incident)
		active := em.PowerAtBitrateW(b.RateBps)
		mkDuty := func(h energy.Harvester) float64 {
			return energy.Budget{Harvest: h, Store: energy.DefaultStorage(), ActiveW: active}.DutyCycle()
		}
		both := energy.Composite{rf, ambient}
		pt := EnergyPoint{
			RangeFt:      ft,
			LinkRateBps:  b.RateBps,
			ActiveUW:     active * 1e6,
			RFHarvestUW:  rf.PowerW() * 1e6,
			AmbientUW:    ambient.PowerW() * 1e6,
			DutyRF:       mkDuty(rf),
			DutyAmbient:  mkDuty(ambient),
			DutyBoth:     mkDuty(both),
			SustainedBps: b.RateBps * mkDuty(both),
		}
		res.Points = append(res.Points, pt)
		if pt.LinkRateBps > 0 && pt.DutyBoth >= 0.01 && ft > res.BatterylessRangeFt {
			res.BatterylessRangeFt = ft
		}
	}
	return res, nil
}

// Table renders the sweep.
func (r EnergyResult) Table() Table {
	t := Table{
		Title: "E9 (extension) — batteryless feasibility: harvest vs modulation draw over range",
		Columns: []string{"range (ft)", "link rate", "draw (µW)", "RF harvest (µW)",
			"ambient (µW)", "duty RF", "duty ambient", "duty both", "sustained"},
		Notes: []string{
			"RF = 20% rectenna on the reader carrier (−20 dBm sensitivity); ambient = 4 cm² PV @400 lux + 50 µW motion",
			fmt.Sprintf("combined harvest keeps the tag alive (duty ≥ 1%%) out to %.0f ft", r.BatterylessRangeFt),
			"the Gb/s burst draw (≈13.5 mW) exceeds any harvest: gigabit operation is inherently duty-cycled",
		},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", p.RangeFt),
			units.FormatRate(p.LinkRateBps),
			fmt.Sprintf("%.1f", p.ActiveUW),
			fmt.Sprintf("%.2f", p.RFHarvestUW),
			fmt.Sprintf("%.1f", p.AmbientUW),
			fmtDuty(p.DutyRF),
			fmtDuty(p.DutyAmbient),
			fmtDuty(p.DutyBoth),
			units.FormatRate(p.SustainedBps),
		})
	}
	return t
}

func fmtDuty(d float64) string {
	if d >= 1 {
		return "100%"
	}
	if d < 0.0001 && d > 0 {
		return "<0.01%"
	}
	return fmt.Sprintf("%.2f%%", d*100)
}
