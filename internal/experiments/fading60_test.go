package experiments

import "testing"

func TestFadingMarginExperiment(t *testing.T) {
	r, err := FadingMargin(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points %d", len(r.Points))
	}
	for i, p := range r.Points {
		// Deeper outage needs more margin; weaker K needs more margin.
		if p.Margin01pct < p.Margin1pct {
			t.Errorf("K=%g: 0.1%% margin below 1%% margin", p.KdB)
		}
		if i > 0 {
			prev := r.Points[i-1]
			if p.Margin1pct <= prev.Margin1pct {
				t.Errorf("margin should grow as K falls: K=%g %.1f vs K=%g %.1f",
					prev.KdB, prev.Margin1pct, p.KdB, p.Margin1pct)
			}
			if p.GbpsRangeFt >= prev.GbpsRangeFt {
				t.Errorf("1 Gb/s range should shrink as K falls")
			}
		}
		if p.DecodedOfTen < 5 {
			t.Errorf("K=%g: only %d/10 bursts decoded at a 13 dB-margin point", p.KdB, p.DecodedOfTen)
		}
	}
	// Strong-LOS margin is small; near-Rayleigh is large.
	if r.Points[0].Margin1pct > 3 {
		t.Errorf("K=20 dB margin %.1f too big", r.Points[0].Margin1pct)
	}
	if r.Points[len(r.Points)-1].Margin1pct < 12 {
		t.Errorf("K=0 dB margin %.1f too small", r.Points[len(r.Points)-1].Margin1pct)
	}
	if len(r.Table().Rows) != 4 {
		t.Error("table rows")
	}
}

func TestBandScalingExperiment(t *testing.T) {
	r, err := BandScaling()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points %d", len(r.Points))
	}
	p24, p39, p60 := r.Points[0], r.Points[1], r.Points[2]
	// The 24 GHz row is the paper's prototype: 6 elements, 1 Gb/s @ 4 ft.
	if p24.Elements != 6 || p24.RateAt4ft < 1e9 {
		t.Errorf("24 GHz row: %+v", p24)
	}
	// Higher bands pack more elements in the same aperture…
	if !(p24.Elements < p39.Elements && p39.Elements < p60.Elements) {
		t.Error("element counts should grow with frequency")
	}
	// …but lose received power (net f⁻² law) and range.
	if !(p24.ReceivedDBmAt4ft > p39.ReceivedDBmAt4ft && p39.ReceivedDBmAt4ft > p60.ReceivedDBmAt4ft) {
		t.Error("received power should fall with frequency at fixed aperture")
	}
	if !(p24.GbpsRangeFt > p39.GbpsRangeFt && p39.GbpsRangeFt > p60.GbpsRangeFt) {
		t.Error("1 Gb/s range should shrink with frequency")
	}
	// The §7 benefit: the 60 GHz 6-element tag is 2.5× smaller.
	if p60.SixElemWidthMM >= p24.SixElemWidthMM/2 {
		t.Errorf("60 GHz tag width %.1f mm not ≪ 24 GHz %.1f mm", p60.SixElemWidthMM, p24.SixElemWidthMM)
	}
	if len(r.Table().Rows) != 3 {
		t.Error("table rows")
	}
}
