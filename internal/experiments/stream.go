package experiments

import (
	"fmt"
	"math"

	"github.com/mmtag/mmtag/internal/core"
	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/par"
	"github.com/mmtag/mmtag/internal/render"
	"github.com/mmtag/mmtag/internal/rng"
	"github.com/mmtag/mmtag/internal/stream"
	"github.com/mmtag/mmtag/internal/tag"
	"github.com/mmtag/mmtag/internal/units"
)

// streamRangeFt is the sustained-session operating point: 2 ft keeps the
// full 2 GHz channel near-clean (~2% first-try FER), so a session can
// actually sustain the paper's gigabit PHY rate instead of measuring
// retransmission thrash.
const streamRangeFt = 2

// streamFrameBytes is the payload size every session burst carries.
const streamFrameBytes = 64

// StreamLoadPoint is one offered-load sample of the flow-control sweep.
type StreamLoadPoint struct {
	// Load is offered/capacity.
	Load float64
	// OfferedFPS / DeliveredFPS are frame rates on the virtual clock.
	OfferedFPS, DeliveredFPS float64
	// GoodputBps is delivered payload over the delivery span.
	GoodputBps float64
	// QueueDepthP99 is the p99 of the per-tag send-queue depth sampled at
	// every frame arrival.
	QueueDepthP99 float64
	// Retransmissions / Drops count link-layer recovery and failures.
	Retransmissions, Drops int
	// LatencyP99S is the p99 arrival→in-order-delivery latency (virtual
	// seconds; NaN when nothing was delivered).
	LatencyP99S float64
}

// StreamResult is experiment E18 (extension): what the gigabit PHY looks
// like as a *session* — a stage-parallel streaming decode of a continuous
// burst stream, plus an offered-load sweep of the per-tag sliding-window
// flow control layered on mac ARQ semantics.
type StreamResult struct {
	// Session is the pipelined decode session (sync → demod → decode).
	Session stream.SessionResult
	// Points is the offered-load sweep, lowest load first.
	Points []StreamLoadPoint
	// CapacityFPS is the channel frame rate at 100% load.
	CapacityFPS float64
	// SessionFrames / FlowFrames are the per-phase stream lengths.
	SessionFrames, FlowFrames int
	// ARQLatencyP50S / ARQLatencyP99S are virtual-clock delivery-latency
	// quantiles read from the mac_arq_frame_latency_seconds histogram.
	// Filled only when a metrics registry is enabled; zero otherwise.
	ARQLatencyP50S, ARQLatencyP99S float64
}

// streamLoads is the offered-load sweep: under, near and past capacity.
var streamLoads = []float64{0.2, 0.5, 0.8, 0.95, 1.2}

// StreamThroughput runs the streaming session (nFrames bursts through
// the stage-parallel pipeline) and then sweeps offered load through the
// flow-control layer, nFrames/5 frames per point.
func StreamThroughput(nFrames int, seed uint64) (StreamResult, error) {
	if nFrames <= 0 {
		nFrames = 400
	}
	flowFrames := nFrames / 5
	if flowFrames < 20 {
		flowFrames = 20
	}
	res := StreamResult{SessionFrames: nFrames, FlowFrames: flowFrames}

	sess, err := stream.RunSession(stream.SessionConfig{
		Frames:     nFrames,
		FrameBytes: streamFrameBytes,
		RangeFt:    streamRangeFt,
		Seed:       seed,
	})
	if err != nil {
		return res, err
	}
	res.Session = sess

	burstSyms := tag.BurstSymbolCount(streamFrameBytes)
	// Every load point builds its own link and seeds its own generator
	// (index-keyed off the experiment seed), so the sweep is
	// embarrassingly parallel and worker-count invariant.
	seq := rng.NewSequence(seed)
	points, err := par.MapErr(len(streamLoads), func(i int) (StreamLoadPoint, error) {
		l, err := core.NewDefaultLink(units.FeetToMeters(streamRangeFt))
		if err != nil {
			return StreamLoadPoint{}, err
		}
		bw := l.Reader.Bandwidths[0] // 2 GHz
		capacity := bw.BandwidthHz * units.OOKSpectralEfficiency / float64(burstSyms)
		load := streamLoads[i]
		r, err := stream.RunFlow(l, bw, flowFrames, stream.FlowConfig{
			Tags:       4,
			Window:     4,
			FrameBytes: streamFrameBytes,
			MaxRetries: 2,
			OfferedFPS: load * capacity,
		}, seq.At(uint64(i)))
		if err != nil {
			return StreamLoadPoint{}, err
		}
		return StreamLoadPoint{
			Load:            load,
			OfferedFPS:      load * capacity,
			DeliveredFPS:    r.DeliveredFPS,
			GoodputBps:      r.GoodputBps,
			QueueDepthP99:   r.QueueDepthP99,
			Retransmissions: r.Retransmissions,
			Drops:           r.Drops,
			LatencyP99S:     r.LatencyP99S,
		}, nil
	})
	if err != nil {
		return res, err
	}
	res.Points = points
	l, err := core.NewDefaultLink(units.FeetToMeters(streamRangeFt))
	if err != nil {
		return res, err
	}
	res.CapacityFPS = l.Reader.Bandwidths[0].BandwidthHz * units.OOKSpectralEfficiency / float64(burstSyms)
	if reg := obs.Active(); reg != nil {
		snap := reg.Snapshot()
		res.ARQLatencyP50S, _ = snap.Quantile("mac_arq_frame_latency_seconds", 0.50)
		res.ARQLatencyP99S, _ = snap.Quantile("mac_arq_frame_latency_seconds", 0.99)
	}
	return res, nil
}

// PeakDeliveredFPS returns the highest delivered frame rate across the
// sweep (0 if the sweep is empty).
func (r StreamResult) PeakDeliveredFPS() float64 {
	peak := 0.0
	for _, p := range r.Points {
		peak = math.Max(peak, p.DeliveredFPS)
	}
	return peak
}

// Table renders the session summary and the offered-load sweep.
func (r StreamResult) Table() Table {
	t := newTable("E18 (extension) — sustained streaming sessions: pipelined decode + flow-controlled offered-load sweep (2 GHz, 2 ft)",
		render.Column{Header: "load", Format: render.Float(2)},
		render.Column{Header: "offered (fps)", Format: render.Float(0)},
		render.Column{Header: "delivered (fps)", Format: render.Float(0)},
		rateColumn("goodput"),
		render.Column{Header: "queue p99", Format: render.Float(1)},
		render.Column{Header: "retx", Format: render.Int()},
		render.Column{Header: "drops", Format: render.Int()},
		render.Column{Header: "latency p99 (µs)", Format: render.Float(2)},
	)
	t.Notes = []string{
		fmt.Sprintf("session: %d × %d-byte bursts through the stage-parallel pipeline — %d decoded, %s sustained, budget SNR %.1f dB",
			r.Session.Frames, streamFrameBytes, r.Session.Decoded,
			units.FormatRate(r.Session.GoodputBps), r.Session.BudgetSNRdB),
		fmt.Sprintf("sweep: %d frames per point over 4 tags, window 4, ≤2 retries; capacity %.0f frames/s at %d-byte payloads",
			r.FlowFrames, r.CapacityFPS, streamFrameBytes),
		"past capacity (load 1.2) the send queues absorb the excess and delivered rate pins at the channel ceiling",
	}
	if r.ARQLatencyP99S > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"delivery latency p50 %.2f µs / p99 %.2f µs on the virtual clock (mac_arq_frame_latency_seconds)",
			r.ARQLatencyP50S*1e6, r.ARQLatencyP99S*1e6))
	}
	for _, p := range r.Points {
		t.add(p.Load, p.OfferedFPS, p.DeliveredFPS, p.GoodputBps,
			p.QueueDepthP99, p.Retransmissions, p.Drops, p.LatencyP99S*1e6)
	}
	return t
}
