package experiments

import (
	"testing"
)

func TestEnergyFeasibility(t *testing.T) {
	r, err := EnergyFeasibility(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 11 {
		t.Fatalf("points %d", len(r.Points))
	}
	first := r.Points[0]
	last := r.Points[len(r.Points)-1]
	// RF harvest decays with range and eventually hits the rectifier
	// sensitivity.
	if first.RFHarvestUW <= last.RFHarvestUW {
		t.Error("RF harvest should fall with range")
	}
	if last.RFHarvestUW != 0 {
		t.Errorf("12 ft RF harvest %g µW, want 0 (below sensitivity)", last.RFHarvestUW)
	}
	// Ambient harvest is range-independent.
	if first.AmbientUW != last.AmbientUW {
		t.Error("ambient harvest should not depend on range")
	}
	// Combined duty ≥ each individual duty; all duties in [0,1].
	for _, p := range r.Points {
		if p.DutyBoth < p.DutyRF-1e-12 || p.DutyBoth < p.DutyAmbient-1e-12 {
			t.Errorf("combined duty %g below a component at %g ft", p.DutyBoth, p.RangeFt)
		}
		for _, d := range []float64{p.DutyRF, p.DutyAmbient, p.DutyBoth} {
			if d < 0 || d > 1 {
				t.Errorf("duty %g out of [0,1]", d)
			}
		}
		if p.SustainedBps > p.LinkRateBps {
			t.Error("sustained throughput cannot exceed the link rate")
		}
	}
	// The near-range Gb/s point must be heavily duty-cycled (< 5%) —
	// the 13.5 mW switch drive dwarfs µW harvests.
	if first.LinkRateBps >= 1e9 && first.DutyBoth > 0.05 {
		t.Errorf("Gb/s duty %g implausibly high", first.DutyBoth)
	}
	// The tag stays alive across the whole Fig. 7 span with the combined
	// supply.
	if r.BatterylessRangeFt < 10 {
		t.Errorf("batteryless range %.0f ft, want ≥ 10", r.BatterylessRangeFt)
	}
	tab := r.Table()
	if len(tab.Rows) != 11 || len(tab.Columns) != 9 {
		t.Error("table shape")
	}
}

func TestFmtDuty(t *testing.T) {
	cases := map[float64]string{
		1.5:      "100%",
		1.0:      "100%",
		0.5:      "50.00%",
		0.000001: "<0.01%",
	}
	for in, want := range cases {
		if got := fmtDuty(in); got != want {
			t.Errorf("fmtDuty(%g) = %q, want %q", in, got, want)
		}
	}
}
