package experiments

import (
	"fmt"

	"github.com/mmtag/mmtag/internal/baselines"
	"github.com/mmtag/mmtag/internal/core"
	"github.com/mmtag/mmtag/internal/render"
	"github.com/mmtag/mmtag/internal/units"
)

// CompareRow is one system's operating point.
type CompareRow struct {
	Name          string
	CarrierHz     float64
	ChannelHz     float64
	RateBps       float64
	AtRangeFt     float64
	RateAt4ftBps  float64
	SpectralRatio float64 // mmTag 2 GHz over this system's channel
	Citation      string
}

// CompareResult is experiment E5: the §1/§3 throughput comparison with
// mmTag evaluated by our own link budget.
type CompareResult struct {
	Rows []CompareRow
	// MmTag rows are appended last (4 ft and 10 ft operating points).
	MmTagAt4ft, MmTagAt10ft float64
}

// Comparison builds the table.
func Comparison() (CompareResult, error) {
	var res CompareResult
	for _, s := range baselines.All() {
		r4, err := s.RateAt(units.FeetToMeters(4))
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, CompareRow{
			Name:          s.Name,
			CarrierHz:     s.CarrierHz,
			ChannelHz:     s.ChannelHz,
			RateBps:       s.QuotedRateBps,
			AtRangeFt:     units.MetersToFeet(s.QuotedRangeM),
			RateAt4ftBps:  r4,
			SpectralRatio: s.SpectralAdvantage(2e9),
			Citation:      s.Citation,
		})
	}
	for _, ft := range []float64{4, 10} {
		l, err := core.NewDefaultLink(units.FeetToMeters(ft))
		if err != nil {
			return res, err
		}
		b, err := l.ComputeBudget()
		if err != nil {
			return res, err
		}
		if ft == 4 {
			res.MmTagAt4ft = b.RateBps
		} else {
			res.MmTagAt10ft = b.RateBps
		}
	}
	res.Rows = append(res.Rows,
		CompareRow{
			Name: "mmTag (this work)", CarrierHz: 24e9, ChannelHz: 2e9,
			RateBps: res.MmTagAt4ft, AtRangeFt: 4,
			RateAt4ftBps: res.MmTagAt4ft, SpectralRatio: 1, Citation: "mmTag §8",
		},
		CompareRow{
			Name: "mmTag (this work)", CarrierHz: 24e9, ChannelHz: 2e9,
			RateBps: res.MmTagAt10ft, AtRangeFt: 10,
			RateAt4ftBps: res.MmTagAt4ft, SpectralRatio: 1, Citation: "mmTag §8",
		})
	return res, nil
}

// Table renders the comparison.
func (r CompareResult) Table() Table {
	t := newTable("E5 / §1,§3 — backscatter systems compared (paper-quoted baselines, simulated mmTag)",
		render.Column{Header: "system"},
		render.Column{Header: "band", Format: render.Printf("%.1f GHz")},
		render.Column{Header: "channel", Format: render.FloatFunc(fmtHz)},
		rateColumn("throughput"),
		render.Column{Header: "at range", Format: render.Printf("%.0f ft")},
		render.Column{Header: "source"},
	)
	t.Notes = []string{
		fmt.Sprintf("mmTag: %s at 4 ft and %s at 10 ft — orders of magnitude above every baseline",
			units.FormatRate(r.MmTagAt4ft), units.FormatRate(r.MmTagAt10ft)),
	}
	for _, row := range r.Rows {
		t.add(row.Name, row.CarrierHz/1e9, row.ChannelHz, row.RateBps, row.AtRangeFt, row.Citation)
	}
	return t
}

func fmtHz(hz float64) string {
	switch {
	case hz >= 1e9:
		return fmt.Sprintf("%g GHz", hz/1e9)
	case hz >= 1e6:
		return fmt.Sprintf("%g MHz", hz/1e6)
	case hz >= 1e3:
		return fmt.Sprintf("%g kHz", hz/1e3)
	default:
		return fmt.Sprintf("%g Hz", hz)
	}
}
