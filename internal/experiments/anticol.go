package experiments

import (
	"fmt"
	"math"

	"github.com/mmtag/mmtag/internal/mac"
	"github.com/mmtag/mmtag/internal/par"
	"github.com/mmtag/mmtag/internal/rng"
)

// AntiColPoint is one population sample of the protocol comparison.
type AntiColPoint struct {
	Tags int
	// AlohaSlots / TreeQueries are mean time costs over the trials.
	AlohaSlots, TreeQueries float64
	// AlohaEff / TreeEff are mean reads-per-slot efficiencies.
	AlohaEff, TreeEff float64
	// AlohaPerTag / TreePerTag normalize cost by population.
	AlohaPerTag, TreePerTag float64
}

// AntiColResult is experiment E10 (extension): the §9 MAC discussion —
// "one possible solution is to use similar MAC protocol as RFIDs such as
// Aloha" — compared against the deterministic binary query tree.
type AntiColResult struct {
	Points []AntiColPoint
	Trials int
}

// AntiCollision sweeps tag populations, averaging both protocols over
// trials runs each.
func AntiCollision(populations []int, trials int, seed uint64) (AntiColResult, error) {
	if len(populations) == 0 {
		populations = []int{2, 4, 8, 16, 32, 64, 128}
	}
	if trials <= 0 {
		trials = 30
	}
	src := rng.New(seed)
	res := AntiColResult{Trials: trials}
	for _, n := range populations {
		// Pre-split the per-trial streams sequentially, in the exact order
		// the old single-goroutine loop drew them (Aloha then query tree,
		// trial by trial), so the fan-out below is byte-identical to the
		// sequential reference for any worker count.
		srcs := make([]*rng.Source, 2*trials)
		for i := range srcs {
			srcs[i] = src.Split()
		}
		type trialOut struct {
			aSlots, aEff, qQueries, qEff float64
		}
		outs := make([]trialOut, trials)
		err := par.ForEachErr(trials, func(tr int) error {
			a, err := mac.RunAloha(n, mac.DefaultAlohaConfig(), srcs[2*tr])
			if err != nil {
				return err
			}
			q, err := mac.RunQueryTree(n, 32, srcs[2*tr+1])
			if err != nil {
				return err
			}
			outs[tr] = trialOut{
				aSlots:   float64(a.TotalSlots),
				aEff:     a.Efficiency(),
				qQueries: float64(q.Queries),
				qEff:     q.Efficiency(),
			}
			return nil
		})
		if err != nil {
			return res, err
		}
		var aSlots, aEff, qQueries, qEff float64
		for _, o := range outs {
			aSlots += o.aSlots
			aEff += o.aEff
			qQueries += o.qQueries
			qEff += o.qEff
		}
		ft := float64(trials)
		res.Points = append(res.Points, AntiColPoint{
			Tags:        n,
			AlohaSlots:  aSlots / ft,
			TreeQueries: qQueries / ft,
			AlohaEff:    aEff / ft,
			TreeEff:     qEff / ft,
			AlohaPerTag: aSlots / ft / float64(n),
			TreePerTag:  qQueries / ft / float64(n),
		})
	}
	return res, nil
}

// Table renders the comparison.
func (r AntiColResult) Table() Table {
	t := Table{
		Title: "E10 (extension) — anti-collision protocols: framed Aloha vs binary query tree",
		Columns: []string{"tags", "aloha slots", "tree queries", "aloha eff",
			"tree eff", "aloha/tag", "tree/tag"},
		Notes: []string{
			fmt.Sprintf("means over %d trials; theory: Aloha ≈ e·n ≈ %.2f·n slots, query tree ≈ 2.89·n queries",
				r.Trials, math.E),
			"Aloha wins slightly on raw cost; the tree is deterministic and never strands a tag",
		},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Tags),
			fmt.Sprintf("%.1f", p.AlohaSlots),
			fmt.Sprintf("%.1f", p.TreeQueries),
			fmt.Sprintf("%.3f", p.AlohaEff),
			fmt.Sprintf("%.3f", p.TreeEff),
			fmt.Sprintf("%.2f", p.AlohaPerTag),
			fmt.Sprintf("%.2f", p.TreePerTag),
		})
	}
	return t
}
