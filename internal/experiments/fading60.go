package experiments

import (
	"fmt"
	"math"

	"github.com/mmtag/mmtag/internal/channel"
	"github.com/mmtag/mmtag/internal/core"
	"github.com/mmtag/mmtag/internal/dsp"
	"github.com/mmtag/mmtag/internal/geom"
	"github.com/mmtag/mmtag/internal/rng"
	"github.com/mmtag/mmtag/internal/tag"
	"github.com/mmtag/mmtag/internal/units"
)

// FadingPoint is one K-factor sample.
type FadingPoint struct {
	KdB float64
	// Margin1pct / Margin01pct are the link margins (dB) for 1% and 0.1%
	// outage.
	Margin1pct, Margin01pct float64
	// GbpsRangeFt is the 1 Gb/s range after subtracting the 1% margin
	// from the E2 budget.
	GbpsRangeFt float64
	// DecodedOfTen counts waveform bursts (of 10 seeds) that survived the
	// fading at the nominal 4 ft / 200 MHz operating point.
	DecodedOfTen int
}

// FadingResult is experiment E13 (extension): what small-scale fading
// does to Fig. 7's deterministic curves — relevant because the paper's
// NLOS and mobile scenarios (§4) leave the pure-LOS regime.
type FadingResult struct {
	Points []FadingPoint
}

// FadingMargin sweeps Rician K factors.
func FadingMargin(seed uint64) (FadingResult, error) {
	// One workspace reused by every fading-check burst across the sweep.
	return FadingMarginWS(dsp.NewWorkspace(), seed)
}

// FadingMarginWS is FadingMargin on a caller-owned workspace — the grid
// runner hands each worker's workspace down here so cells reuse scratch
// across the cells one worker executes.
func FadingMarginWS(ws *dsp.Workspace, seed uint64) (FadingResult, error) {
	var res FadingResult
	payload := make([]byte, 24)
	if ws == nil {
		ws = dsp.NewWorkspace()
	}
	for _, k := range []float64{20, 12, 6, 0} {
		src := rng.New(seed)
		f := channel.Fading{KdB: k, DopplerHz: 200}
		m1, err := f.FadeMarginDB(0.01, src)
		if err != nil {
			return res, err
		}
		m01, err := f.FadeMarginDB(0.001, src)
		if err != nil {
			return res, err
		}
		// 1 Gb/s range with margin: shrink the E2 bisection target.
		lo, hi := 0.1, 50.0
		for i := 0; i < 50; i++ {
			mid := (lo + hi) / 2
			l, err := core.NewDefaultLink(units.FeetToMeters(mid))
			if err != nil {
				return res, err
			}
			b, err := l.ComputeBudget()
			if err != nil {
				return res, err
			}
			need := l.Reader.NoiseFloorDBm(2e9) + units.ASKRequiredSNRdB + m1
			if b.ReceivedDBm >= need {
				lo = mid
			} else {
				hi = mid
			}
		}
		pt := FadingPoint{KdB: k, Margin1pct: m1, Margin01pct: m01, GbpsRangeFt: lo}
		// Waveform check at 4 ft / 200 MHz under fading.
		for s := uint64(1); s <= 10; s++ {
			l, err := core.NewDefaultLink(units.FeetToMeters(4))
			if err != nil {
				return res, err
			}
			l.Fading = &channel.Fading{KdB: k, DopplerHz: 200}
			r, err := l.RunWaveformWS(ws, payload, l.Reader.Bandwidths[1], rng.New(seed+s))
			if err != nil {
				return res, err
			}
			if r.Decoded && r.BitErrors == 0 {
				pt.DecodedOfTen++
			}
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Table renders the sweep.
func (r FadingResult) Table() Table {
	t := Table{
		Title:   "E13 (extension) — Rician fading: outage margins and their cost to the 1 Gb/s range",
		Columns: []string{"K (dB)", "margin @1% (dB)", "margin @0.1% (dB)", "1 Gb/s range (ft)", "decoded/10 @4ft"},
		Notes: []string{
			"K = dominant-to-diffuse power ratio; the retro-reflected LOS path keeps K high, blockage drops it",
			"margins subtract directly from Fig. 7's deterministic budget",
		},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", p.KdB),
			fmt.Sprintf("%.1f", p.Margin1pct),
			fmt.Sprintf("%.1f", p.Margin01pct),
			fmt.Sprintf("%.1f", p.GbpsRangeFt),
			fmt.Sprintf("%d", p.DecodedOfTen),
		})
	}
	return t
}

// Band60Point compares one frequency band's link.
type Band60Point struct {
	FreqGHz float64
	// Elements fitting the same 31 mm aperture at λ/2 spacing (even).
	Elements int
	// TagWidthMM for the paper's N=6 at this band.
	SixElemWidthMM float64
	// ReceivedDBmAt4ft with the same-aperture element count.
	ReceivedDBmAt4ft float64
	// RateAt4ft by the paper's table.
	RateAt4ft float64
	// GbpsRangeFt is the furthest 1 Gb/s range.
	GbpsRangeFt float64
}

// Band60Result is experiment E14 (extension): the paper's §7 footnote —
// "our design can be easily tuned to higher frequency bands (such as 60
// GHz) which results in even smaller antennas" — quantified. Keeping the
// same physical aperture, a higher band packs more elements (gain ∝ f)
// but pays λ² per pass (loss ∝ f⁴ two-way), plus oxygen absorption at 60
// GHz.
type Band60Result struct {
	Points []Band60Point
}

// BandScaling evaluates 24, 39 and 60 GHz.
func BandScaling() (Band60Result, error) {
	var res Band60Result
	const apertureM = 0.03122 // the 24 GHz prototype's 6-element width
	for _, fGHz := range []float64{24, 39, 60} {
		f := fGHz * 1e9
		lambda := units.Wavelength(f)
		// Elements spanning the aperture: (N−1)·λ/2 ≤ aperture.
		n := int(math.Round(apertureM/(lambda/2))) + 1
		if n%2 != 0 {
			n--
		}
		if n < 2 {
			n = 2
		}
		mk := func(rangeM float64) (core.Budget, error) {
			l, err := core.NewDefaultLink(rangeM)
			if err != nil {
				return core.Budget{}, err
			}
			tg, err := tag.NewWithElements(1, geom.Pose{Pos: geom.Vec{X: rangeM}, Heading: math.Pi}, n, f)
			if err != nil {
				return core.Budget{}, err
			}
			l.Tag = tg
			l.Reader.FreqHz = f
			l.Env.FreqHz = f
			if fGHz == 60 {
				l.Env.AtmosphericDBpKm = 15 // oxygen absorption peak
			}
			return l.ComputeBudget()
		}
		b4, err := mk(units.FeetToMeters(4))
		if err != nil {
			return res, err
		}
		lo, hi := 0.05, 100.0
		for i := 0; i < 50; i++ {
			mid := (lo + hi) / 2
			b, err := mk(units.FeetToMeters(mid))
			if err != nil {
				return res, err
			}
			if b.RateBps >= 1e9 {
				lo = mid
			} else {
				hi = mid
			}
		}
		res.Points = append(res.Points, Band60Point{
			FreqGHz:          fGHz,
			Elements:         n,
			SixElemWidthMM:   5 * lambda / 2 * 1000,
			ReceivedDBmAt4ft: b4.ReceivedDBm,
			RateAt4ft:        b4.RateBps,
			GbpsRangeFt:      lo,
		})
	}
	return res, nil
}

// Table renders the comparison.
func (r Band60Result) Table() Table {
	t := Table{
		Title:   "E14 (extension) / §7 footnote — band scaling at fixed 31 mm aperture: 24 vs 39 vs 60 GHz",
		Columns: []string{"band (GHz)", "elements", "6-elem tag width (mm)", "Pr @4ft (dBm)", "rate @4ft", "1 Gb/s range (ft)"},
		Notes: []string{
			"same aperture: gain grows ∝ f (more elements) but two passes of λ²/4π shrink ∝ f⁴ ⇒ net f⁻² — higher bands lose range",
			"60 GHz additionally pays ~15 dB/km oxygen absorption (negligible at these ranges)",
			"the §7 benefit is the smaller tag (6-elem width column), not more range",
		},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", p.FreqGHz),
			fmt.Sprintf("%d", p.Elements),
			fmt.Sprintf("%.1f", p.SixElemWidthMM),
			fmt.Sprintf("%.1f", p.ReceivedDBmAt4ft),
			units.FormatRate(p.RateAt4ft),
			fmt.Sprintf("%.1f", p.GbpsRangeFt),
		})
	}
	return t
}
