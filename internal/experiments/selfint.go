package experiments

import (
	"bytes"
	"fmt"

	"github.com/mmtag/mmtag/internal/core"
	"github.com/mmtag/mmtag/internal/dsp"
	"github.com/mmtag/mmtag/internal/rng"
	"github.com/mmtag/mmtag/internal/units"
)

// SelfIntPoint is one isolation sample.
type SelfIntPoint struct {
	IsolationDB float64
	LeakageDBm  float64
	// Decoded reports whether the waveform-level burst decoded cleanly
	// at the E2 4 ft / 200 MHz operating point.
	Decoded bool
	// BitErrors at that operating point.
	BitErrors int
	// MeasuredSNRdB from the receiver's decision statistics.
	MeasuredSNRdB float64
}

// SelfIntResult is experiment E8: the §9 self-interference discussion made
// quantitative — how much TX→RX isolation the reader needs before the
// leakage calibrator and the OOK demodulator stop caring.
type SelfIntResult struct {
	Points []SelfIntPoint
	// MinWorkingIsolationDB is the smallest tested isolation that still
	// decoded cleanly.
	MinWorkingIsolationDB float64
}

// SelfInterference sweeps reader isolation at the 4 ft geometry.
func SelfInterference(seed uint64) (SelfIntResult, error) {
	// One workspace for the whole sweep: every burst recycles the previous
	// isolation point's sample buffers.
	return SelfInterferenceWS(dsp.NewWorkspace(), seed)
}

// SelfInterferenceWS is SelfInterference on a caller-owned workspace —
// the grid runner hands each worker's workspace down here so cells
// reuse scratch across the cells one worker executes.
func SelfInterferenceWS(ws *dsp.Workspace, seed uint64) (SelfIntResult, error) {
	var res SelfIntResult
	payload := bytes.Repeat([]byte{0xA7}, 32)
	res.MinWorkingIsolationDB = -1
	if ws == nil {
		ws = dsp.NewWorkspace()
	}
	for _, iso := range []float64{80, 70, 60, 50, 40, 30, 20} {
		l, err := core.NewDefaultLink(units.FeetToMeters(4))
		if err != nil {
			return res, err
		}
		l.Reader.IsolationDB = iso
		src := rng.New(seed)
		bw := l.Reader.Bandwidths[1] // 200 MHz
		r, err := l.RunWaveformWS(ws, payload, bw, src)
		if err != nil {
			return res, err
		}
		pt := SelfIntPoint{
			IsolationDB:   iso,
			LeakageDBm:    l.Reader.SelfInterferenceDBm(),
			Decoded:       r.Decoded && r.BitErrors == 0,
			BitErrors:     r.BitErrors,
			MeasuredSNRdB: r.MeasuredSNRdB,
		}
		res.Points = append(res.Points, pt)
		if pt.Decoded {
			res.MinWorkingIsolationDB = iso
		}
	}
	return res, nil
}

// Table renders the sweep.
func (r SelfIntResult) Table() Table {
	t := Table{
		Title:   "E8 / §9 extension — self-interference: decode health vs TX→RX isolation (4 ft, 200 MHz)",
		Columns: []string{"isolation (dB)", "leakage (dBm)", "decoded", "bit errors", "measured SNR (dB)"},
		Notes: []string{
			fmt.Sprintf("smallest isolation that still decodes cleanly: %.0f dB "+
				"(the tag idles in the absorbing state so the reader can calibrate static leakage)",
				r.MinWorkingIsolationDB),
		},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", p.IsolationDB),
			fmt.Sprintf("%.1f", p.LeakageDBm),
			fmt.Sprintf("%v", p.Decoded),
			fmt.Sprintf("%d", p.BitErrors),
			fmt.Sprintf("%.1f", p.MeasuredSNRdB),
		})
	}
	return t
}
