// Package experiments contains one driver per evaluation artifact of the
// paper — every figure, every embedded quantitative claim, and the
// extensions DESIGN.md commits to. Each driver returns structured rows
// plus a rendered text table so the CLI, the benchmarks and EXPERIMENTS.md
// all share a single implementation.
//
// Index (see DESIGN.md §4):
//
//	E1  Figure6           S11 of a tag element, switch off/on
//	E2  Figure7           received power & data rate vs range
//	E3  Retrodirectivity  Van Atta vs fixed-beam across incidence angles
//	E4  Beamwidth         6-element tag beamwidth (§7: "20 degree")
//	E5  Comparison        baseline-vs-mmTag throughput table
//	E6  BERValidation     Monte-Carlo OOK BER vs analytic at Fig. 7 points
//	E7  MultiTag          SDM + Aloha network throughput (§9 extension)
//	E8  SelfInterference  rate vs reader isolation (§9 extension)
//	A1  ArraySizeAblation range/rate vs element count (§8 remark)
//	A2  ImpairmentAblation retro gain vs phase error & switch leakage
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	// Title names the experiment ("E2 / Fig 7 — …").
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold pre-formatted cells.
	Rows [][]string
	// Notes carries calibration or interpretation remarks.
	Notes []string
}

// Render formats the table with aligned columns.
func (t Table) Render() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteString("\n")
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if w := widths[i] - len(c); w > 0 {
				b.WriteString(strings.Repeat(" ", w))
			}
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoting-free cells are
// assumed; cells containing commas are wrapped in quotes).
func (t Table) CSV() string {
	var b strings.Builder
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"") {
			return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		return c
	}
	cells := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cells[i] = esc(c)
	}
	b.WriteString(strings.Join(cells, ","))
	b.WriteString("\n")
	for _, r := range t.Rows {
		cells = cells[:0]
		for _, c := range r {
			cells = append(cells, esc(c))
		}
		b.WriteString(strings.Join(cells, ","))
		b.WriteString("\n")
	}
	return b.String()
}
