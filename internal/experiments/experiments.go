// Package experiments contains one driver per evaluation artifact of the
// paper — every figure, every embedded quantitative claim, and the
// extensions DESIGN.md commits to. Each driver returns structured rows
// plus a rendered text table so the CLI, the benchmarks and EXPERIMENTS.md
// all share a single implementation.
//
// Index (see DESIGN.md §4):
//
//	E1  Figure6           S11 of a tag element, switch off/on
//	E2  Figure7           received power & data rate vs range
//	E3  Retrodirectivity  Van Atta vs fixed-beam across incidence angles
//	E4  Beamwidth         6-element tag beamwidth (§7: "20 degree")
//	E5  Comparison        baseline-vs-mmTag throughput table
//	E6  BERValidation     Monte-Carlo OOK BER vs analytic at Fig. 7 points
//	E7  MultiTag          SDM + Aloha network throughput (§9 extension)
//	E8  SelfInterference  rate vs reader isolation (§9 extension)
//	A1  ArraySizeAblation range/rate vs element count (§8 remark)
//	A2  ImpairmentAblation retro gain vs phase error & switch leakage
package experiments

import (
	"github.com/mmtag/mmtag/internal/render"
	"github.com/mmtag/mmtag/internal/units"
)

// Table is a rendered experiment result. Drivers either populate the
// exported fields directly (pre-formatted cells, the historical idiom)
// or build it through newTable + add, which routes raw values through
// internal/render column formatters. Every backend — the aligned text
// table, CSV, markdown and LaTeX — is rendered by internal/render
// either way.
type Table struct {
	// Title names the experiment ("E2 / Fig 7 — …").
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold pre-formatted cells.
	Rows [][]string
	// Notes carries calibration or interpretation remarks.
	Notes []string

	// cols carries the typed column declarations when the table was
	// built through newTable; nil for struct-literal tables, which
	// render with default (left-aligned, pre-formatted) columns.
	cols []render.Column
}

// newTable starts a Table from typed render columns: the header labels
// are mirrored into Columns so the CLI and tests see the same shape as
// a struct-literal table.
func newTable(title string, cols ...render.Column) Table {
	t := Table{Title: title, cols: cols}
	for _, c := range cols {
		t.Columns = append(t.Columns, c.Header)
	}
	return t
}

// add appends one row of raw values through the column formatters.
func (t *Table) add(vals ...any) {
	t.Rows = append(t.Rows, render.FormatRow(t.cols, vals))
}

// rateColumn is a column rendered through units.FormatRate (NaN-safe).
func rateColumn(header string) render.Column {
	return render.Column{Header: header, Format: render.FloatFunc(units.FormatRate)}
}

// asRender adapts the table to the shared renderer.
func (t Table) asRender() *render.Table {
	cols := t.cols
	if len(cols) == 0 {
		cols = make([]render.Column, len(t.Columns))
		for i, h := range t.Columns {
			cols[i] = render.Column{Header: h}
		}
	}
	return &render.Table{Title: t.Title, Columns: cols, Rows: t.Rows, Notes: t.Notes}
}

// Render formats the table with aligned columns.
func (t Table) Render() string { return t.asRender().Plain() }

// CSV renders the table as comma-separated values.
func (t Table) CSV() string { return t.asRender().CSV() }

// Markdown renders the table as a GitHub-flavored markdown table.
func (t Table) Markdown() string { return t.asRender().Markdown() }

// LaTeX renders the table as a booktabs tabular.
func (t Table) LaTeX() string { return t.asRender().LaTeX() }
