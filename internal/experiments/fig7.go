package experiments

import (
	"fmt"

	"github.com/mmtag/mmtag/internal/core"
	"github.com/mmtag/mmtag/internal/units"
)

// Fig7Point is one range sample of the link-budget sweep.
type Fig7Point struct {
	RangeFt     float64
	RangeM      float64
	ReceivedDBm float64
	// SNRdB per receiver bandwidth label.
	SNRdB map[string]float64
	// RateBps is the paper's table-mapped achievable rate (0 = no link).
	RateBps float64
	// RateLabel is the bandwidth carrying RateBps.
	RateLabel string
}

// Fig7Result is experiment E2: paper Figure 7 plus the headline claims.
type Fig7Result struct {
	Points []Fig7Point
	// Floors are the bandwidth noise floors drawn as horizontal lines in
	// the figure.
	Floors map[string]float64
	// RateAt4ft / RateAt10ft are the paper's two headline operating
	// points (1 Gb/s and 10 Mb/s respectively).
	RateAt4ft, RateAt10ft float64
	// MaxRangeFt maps data rate label → furthest range (ft) sustaining it.
	MaxRangeFt map[string]float64
}

// Figure7 sweeps the default link from 2 to 12 ft (the figure's x-axis)
// with the given number of points.
func Figure7(n int) (Fig7Result, error) {
	if n < 2 {
		n = 21
	}
	res := Fig7Result{
		Floors:     map[string]float64{},
		MaxRangeFt: map[string]float64{},
	}
	probe, err := core.NewDefaultLink(1)
	if err != nil {
		return res, err
	}
	for _, bw := range probe.Reader.Bandwidths {
		res.Floors[bw.Label] = probe.Reader.NoiseFloorDBm(bw.BandwidthHz)
	}
	for i := 0; i < n; i++ {
		ft := 2 + 10*float64(i)/float64(n-1)
		p, err := fig7Point(ft)
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, p)
	}
	if p, err := fig7Point(4); err == nil {
		res.RateAt4ft = p.RateBps
	}
	if p, err := fig7Point(10); err == nil {
		res.RateAt10ft = p.RateBps
	}
	// Furthest range per rate tier by bisection on the monotone budget.
	for _, bw := range probe.Reader.Bandwidths {
		label := units.FormatRate(bw.BitRate())
		lo, hi := 0.1, 200.0
		for it := 0; it < 60; it++ {
			mid := (lo + hi) / 2
			p, err := fig7Point(mid)
			if err != nil {
				return res, err
			}
			if p.RateBps >= bw.BitRate() {
				lo = mid
			} else {
				hi = mid
			}
		}
		res.MaxRangeFt[label] = lo
	}
	return res, nil
}

func fig7Point(ft float64) (Fig7Point, error) {
	l, err := core.NewDefaultLink(units.FeetToMeters(ft))
	if err != nil {
		return Fig7Point{}, err
	}
	b, err := l.ComputeBudget()
	if err != nil {
		return Fig7Point{}, err
	}
	p := Fig7Point{
		RangeFt:     ft,
		RangeM:      units.FeetToMeters(ft),
		ReceivedDBm: b.ReceivedDBm,
		SNRdB:       b.SNRdB,
		RateBps:     b.RateBps,
	}
	if b.Linked {
		p.RateLabel = b.RateBandwidth.Label
	}
	return p, nil
}

// Table renders the sweep in the figure's terms.
func (r Fig7Result) Table() Table {
	t := Table{
		Title: "E2 / Fig 7 — tag signal power at the reader vs range, with noise floors and data rates",
		Columns: []string{"range (ft)", "tag signal (dBm)", "SNR@20MHz", "SNR@200MHz", "SNR@2GHz",
			"rate", "via"},
		Notes: []string{
			fmt.Sprintf("noise floors: 20 MHz %.1f, 200 MHz %.1f, 2 GHz %.1f dBm (kTB + NF=5 dB, T=300 K)",
				r.Floors["20 MHz"], r.Floors["200 MHz"], r.Floors["2 GHz"]),
			fmt.Sprintf("headline: %s at 4 ft (paper: 1 Gb/s), %s at 10 ft (paper: 10 Mb/s)",
				units.FormatRate(r.RateAt4ft), units.FormatRate(r.RateAt10ft)),
			fmt.Sprintf("max range: 1 Gb/s to %.1f ft, 100 Mb/s to %.1f ft, 10 Mb/s to %.1f ft",
				r.MaxRangeFt["1.00 Gb/s"], r.MaxRangeFt["100.00 Mb/s"], r.MaxRangeFt["10.00 Mb/s"]),
		},
	}
	for _, p := range r.Points {
		via := p.RateLabel
		if via == "" {
			via = "-"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", p.RangeFt),
			fmt.Sprintf("%.1f", p.ReceivedDBm),
			fmt.Sprintf("%.1f", p.SNRdB["20 MHz"]),
			fmt.Sprintf("%.1f", p.SNRdB["200 MHz"]),
			fmt.Sprintf("%.1f", p.SNRdB["2 GHz"]),
			units.FormatRate(p.RateBps),
			via,
		})
	}
	return t
}
