package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/obs/event"
)

// get fetches a path from the test server and returns status, content
// type and body.
func get(t *testing.T, ts *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// TestEndpointsWhileRecording exercises every endpoint while a
// background goroutine hammers the registry and the event log — the
// "read the stores concurrently while simulations run" contract. Run
// under -race this is the concurrency test the issue asks for.
func TestEndpointsWhileRecording(t *testing.T) {
	reg := obs.NewRegistry()
	log := event.New(0)
	s := New(reg, log)
	s.SetPhase("sweep")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			reg.Add("core_bursts_attempted_total", 1, obs.L("bw", "2GHz"))
			reg.Observe("core_snr_est_db", float64(i%30), obs.L("bw", "2GHz"))
			sp := reg.StartSpanAt("core.burst", float64(i))
			sp.EndAt(float64(i) + 0.5)
			log.Emit(float64(i), event.LevelInfo, "core.burst", "decoded",
				event.D("i", i))
		}
	}()
	defer func() { close(stop); wg.Wait() }()

	status, ct, body := get(t, ts, "/metrics")
	if status != 200 || ct != PrometheusContentType {
		t.Fatalf("/metrics: status %d, content type %q", status, ct)
	}
	if !strings.Contains(body, "# TYPE core_bursts_attempted_total counter") {
		t.Fatalf("/metrics body missing TYPE line:\n%s", body)
	}

	status, ct, body = get(t, ts, "/metrics.json")
	if status != 200 || ct != "application/json" {
		t.Fatalf("/metrics.json: status %d, content type %q", status, ct)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not a snapshot: %v", err)
	}
	if snap.SeriesCount() == 0 {
		t.Fatal("/metrics.json snapshot is empty")
	}

	status, ct, body = get(t, ts, "/trace")
	if status != 200 || ct != "application/json" {
		t.Fatalf("/trace: status %d, content type %q", status, ct)
	}
	var trace struct {
		Spans []obs.SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}

	status, ct, body = get(t, ts, "/events")
	if status != 200 || ct != "application/x-ndjson" {
		t.Fatalf("/events: status %d, content type %q", status, ct)
	}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" {
			continue
		}
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("/events line %q: %v", line, err)
		}
	}

	status, ct, body = get(t, ts, "/healthz")
	if status != 200 || ct != "application/json" {
		t.Fatalf("/healthz: status %d, content type %q", status, ct)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz not JSON: %v", err)
	}
	if h.Status != "ok" || h.Phase != "sweep" || h.GoVersion == "" {
		t.Fatalf("/healthz fields: %+v", h)
	}
	if h.MetricSeries <= 0 || h.Events <= 0 {
		t.Fatalf("/healthz store sizes: %+v", h)
	}

	status, _, body = get(t, ts, "/")
	if status != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: status %d body %q", status, body)
	}
	if status, _, _ = get(t, ts, "/nope"); status != 404 {
		t.Fatalf("unknown path: status %d", status)
	}
}

// TestPprofEndpoints covers the profiling suite, including a short CPU
// profile — the endpoint the CI smoke job curls.
func TestPprofEndpoints(t *testing.T) {
	s := New(obs.NewRegistry(), nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, ct, _ := get(t, ts, "/debug/pprof/")
	if status != 200 || !strings.Contains(ct, "text/html") {
		t.Fatalf("pprof index: status %d, content type %q", status, ct)
	}
	status, ct, body := get(t, ts, "/debug/pprof/heap")
	if status != 200 || ct != "application/octet-stream" || len(body) == 0 {
		t.Fatalf("heap profile: status %d, content type %q, %d bytes", status, ct, len(body))
	}
	if testing.Short() {
		t.Skip("short mode: skipping 1 s CPU profile")
	}
	status, ct, body = get(t, ts, "/debug/pprof/profile?seconds=1")
	if status != 200 || ct != "application/octet-stream" || len(body) == 0 {
		t.Fatalf("cpu profile: status %d, content type %q, %d bytes", status, ct, len(body))
	}
}

// TestNilStores: a server without registry or log still answers every
// endpoint with well-formed bodies.
func TestNilStores(t *testing.T) {
	s := New(nil, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if status, _, body := get(t, ts, "/metrics"); status != 200 || body != "" {
		t.Fatalf("/metrics: %d %q", status, body)
	}
	if status, _, body := get(t, ts, "/metrics.json"); status != 200 || strings.TrimSpace(body) != "{}" {
		t.Fatalf("/metrics.json: %d %q", status, body)
	}
	status, _, body := get(t, ts, "/trace")
	if status != 200 || !strings.Contains(body, `"spans": []`) {
		t.Fatalf("/trace: %d %q", status, body)
	}
	if status, _, body := get(t, ts, "/events"); status != 200 || body != "" {
		t.Fatalf("/events: %d %q", status, body)
	}
	status, _, body = get(t, ts, "/healthz")
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil || status != 200 {
		t.Fatalf("/healthz: %d %v", status, err)
	}
	if h.MetricSeries != -1 || h.Events != -1 {
		t.Fatalf("nil stores should report -1 sizes: %+v", h)
	}
}

// TestStartAndClose runs the real listener path on an ephemeral port.
func TestStartAndClose(t *testing.T) {
	s := New(obs.NewRegistry(), event.New(0))
	run, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + run.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + run.Addr() + "/healthz"); err == nil {
		t.Fatal("server still answering after Close")
	}
}

// TestScrapeCounter: scrapes themselves are visible in the registry.
func TestScrapeCounter(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(reg, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// The counter increments before rendering, so the Nth scrape reads N.
	get(t, ts, "/metrics")
	_, _, body := get(t, ts, "/metrics")
	if !strings.Contains(body, `serve_requests_total{path="/metrics"} 2`) {
		t.Fatalf("scrape counter missing:\n%s", body)
	}
}
