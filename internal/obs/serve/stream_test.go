package serve

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/obs/alert"
	"github.com/mmtag/mmtag/internal/obs/tsdb"
)

// sampledServer builds a server with registry + sampler + default
// alert engine, fed with enough updates to make rules fire.
func sampledServer(t *testing.T) *Server {
	t.Helper()
	reg := obs.NewRegistry()
	smp, err := tsdb.New(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	reg.SetSampleSink(smp)
	for i := 0; i < 40; i++ {
		// i%20 collapses two updates per tick so the sampler folds some.
		tt := float64(i%20) * 1e-6
		reg.AddAt(tt, "core_bit_errors_total", float64(1+i%3))
		reg.ObserveAt(tt, "mac_arq_frame_latency_seconds", 2e-4)
	}
	s := New(reg, nil)
	s.AttachTimeseries(smp)
	s.AttachAlerts(alert.Default())
	return s
}

func TestTimeseriesEndpoint(t *testing.T) {
	s := sampledServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, ctype, body := get(t, ts, "/timeseries")
	if code != http.StatusOK || !strings.Contains(ctype, "application/json") {
		t.Fatalf("GET /timeseries: %d %s", code, ctype)
	}
	for _, want := range []string{`"schema":"mmtag-timeseries/1"`, `"name":"core_bit_errors_total"`, `"q50":`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/timeseries missing %q:\n%s", want, body)
		}
	}
}

func TestTimeseriesEndpointNilSampler(t *testing.T) {
	s := New(nil, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, _, body := get(t, ts, "/timeseries")
	if code != http.StatusOK || strings.TrimSpace(body) != "{}" {
		t.Fatalf("nil sampler: %d %q", code, body)
	}
	code, _, body = get(t, ts, "/alerts")
	if code != http.StatusOK || !strings.Contains(body, `"rules": []`) {
		t.Fatalf("nil alerts: %d %q", code, body)
	}
}

func TestAlertsEndpoint(t *testing.T) {
	s := sampledServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, ctype, body := get(t, ts, "/alerts")
	if code != http.StatusOK || !strings.Contains(ctype, "application/json") {
		t.Fatalf("GET /alerts: %d %s", code, ctype)
	}
	for _, want := range []string{`"schema": "mmtag-alerts/1"`, `"rule": "ber-bit-errors"`, `"state": "firing"`, `"transitions"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/alerts missing %q:\n%s", want, body)
		}
	}
}

func TestHealthzSamplerAndAlertFields(t *testing.T) {
	s := sampledServer(t)
	h := s.health()
	if h.SamplerSeries != 2 {
		t.Fatalf("sampler series = %d, want 2", h.SamplerSeries)
	}
	if h.SamplerSlotCapacity != 2*tsdb.DefaultSlotCap || h.SamplerSlotsOccupied <= 0 {
		t.Fatalf("sampler occupancy wrong: %+v", h)
	}
	if h.SamplerFolded == 0 {
		t.Fatalf("expected folded samples (multiple updates per slot): %+v", h)
	}
	if h.AlertsFiring == 0 {
		t.Fatalf("expected firing rules: %+v", h)
	}
	if st, ok := h.AlertRules["ber-bit-errors"]; !ok || st != "firing" {
		t.Fatalf("alert rule states wrong: %+v", h.AlertRules)
	}
}

func TestHealthzNoSamplerSentinels(t *testing.T) {
	h := New(nil, nil).health()
	if h.SamplerSeries != -1 || h.SamplerSlotCapacity != -1 || h.SamplerSlotsOccupied != -1 {
		t.Fatalf("want −1 sentinels without a sampler: %+v", h)
	}
	if len(h.AlertRules) != 0 || h.AlertsFiring != 0 {
		t.Fatalf("want empty alert state without an engine: %+v", h)
	}
}

func TestStreamSendsInitialSSEFrame(t *testing.T) {
	s := sampledServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/event-stream") {
		t.Fatalf("content type = %q", ct)
	}
	// The first frame arrives without waiting for a ticker interval.
	line, err := bufio.NewReader(resp.Body).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "data: ") || !strings.Contains(line, `"alerts_firing"`) {
		t.Fatalf("first SSE frame = %q", line)
	}
	cancel() // detach; the handler must notice Context.Done and return
}

func TestDashboardTimeseriesPanels(t *testing.T) {
	s := sampledServer(t)
	html := s.dashboardHTML()
	for _, want := range []string{
		"<h2>Time series (virtual clock)</h2>",
		"ARQ frame latency p99 over virtual time",
		"<h2>Alerts</h2>",
		"ber-bit-errors",
		"EventSource('/stream')",
		"<noscript><meta http-equiv=\"refresh\" content=\"5\"></noscript>",
	} {
		if !strings.Contains(html, want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
	if strings.Contains(html, "\n<meta http-equiv=\"refresh\"") {
		t.Fatal("bare meta-refresh must be gone (noscript fallback only)")
	}
}

// TestDashboardSampledWorkerInvariance repeats the deterministic-section
// golden check with the sampler attached: time-axis charts and alert
// panels must render identical bytes at any worker count.
func TestDashboardSampledWorkerInvariance(t *testing.T) {
	build := func(workers int) string {
		reg := obs.NewRegistry()
		smp, err := tsdb.New(1e-6)
		if err != nil {
			t.Fatal(err)
		}
		reg.SetSampleSink(smp)
		done := make(chan struct{}, workers)
		per := 120 / workers
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer func() { done <- struct{}{} }()
				for i := w * per; i < (w+1)*per; i++ {
					reg.AddAt(float64(i)*1e-6, "core_bit_errors_total", float64(i%2))
					reg.ObserveAt(float64(i)*1e-6, "mac_arq_frame_latency_seconds", float64(1+i%4)*1e-5)
				}
			}(w)
		}
		for w := 0; w < workers; w++ {
			<-done
		}
		s := New(reg, nil)
		s.AttachTimeseries(smp)
		s.AttachAlerts(alert.Default())
		html := s.dashboardHTML()
		i := strings.Index(html, beginDeterministic)
		j := strings.Index(html, endDeterministic)
		if i < 0 || j < 0 {
			t.Fatal("deterministic markers missing")
		}
		return html[i:j]
	}
	if a, b := build(1), build(4); a != b {
		t.Fatalf("sampled dashboard deterministic section differs between 1 and 4 workers:\n%s\nvs\n%s", a, b)
	}
}
