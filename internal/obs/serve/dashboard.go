package serve

import (
	"fmt"
	"html"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/mmtag/mmtag/internal/dsp"
	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/obs/tsdb"
	"github.com/mmtag/mmtag/internal/plot"
)

// Deterministic-section markers: everything between them is a pure
// function of the attached stores, so two runs of the same workload at
// the same seed render the same bytes regardless of worker count. The
// volatile process header (uptime, PID, scrape counts) stays outside.
const (
	beginDeterministic = "<!-- begin-deterministic -->"
	endDeterministic   = "<!-- end-deterministic -->"
)

// dashboardHTML renders the link-health dashboard: a scoreboard over the
// metric registry and event log, time-axis charts over the virtual-time
// sampler, alert states, sparkline trends and the most recent tapped
// burst's constellation and spectrum. Self-contained HTML+SVG with one
// inline refresh script: each SSE frame from /stream triggers a
// re-fetch and body swap, and browsers without JavaScript fall back to
// the old 5-second meta-refresh via <noscript>.
func (s *Server) dashboardHTML() string {
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html>
<html><head><meta charset="utf-8">
<noscript><meta http-equiv="refresh" content="5"></noscript>
<title>mmtag link health</title>
<script>
(function () {
	if (!window.EventSource || !window.fetch) return;
	var es = new EventSource('/stream');
	es.onmessage = function () {
		fetch('/dashboard').then(function (r) { return r.text(); }).then(function (html) {
			var doc = new DOMParser().parseFromString(html, 'text/html');
			document.body.innerHTML = doc.body.innerHTML;
		}).catch(function () {});
	};
})();
</script>
<style>
body { font-family: sans-serif; margin: 1.5em; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.4em; }
table.score { border-collapse: collapse; }
table.score td, table.score th { border: 1px solid #ccc; padding: 4px 10px; text-align: right; }
table.score th { background: #f0f0f0; text-align: left; font-weight: normal; }
.ok { color: #2ca02c; } .bad { color: #d62728; }
.proc { color: #777; font-size: 0.85em; }
.panel { display: inline-block; vertical-align: top; margin-right: 2em; }
.spark td { padding: 2px 10px; }
</style></head><body>
<h1>mmtag link health</h1>
`)
	fmt.Fprintf(&b, `<p class="proc">phase %s · uptime %.1fs · pid %d · %s · scrapes %.0f</p>`+"\n",
		html.EscapeString(s.Phase()), time.Since(s.start).Seconds(), os.Getpid(),
		runtime.Version(), s.health().Scrapes)
	b.WriteString(beginDeterministic + "\n")

	var snap obs.Snapshot
	if s.reg != nil {
		snap = s.reg.Snapshot()
	}
	s.writeScoreboard(&b, snap)
	s.writeAlerts(&b)
	s.writeEventSummary(&b)
	s.writeTimeseriesCharts(&b)
	s.writeTrends(&b)
	s.writeLastBurst(&b)

	b.WriteString(endDeterministic + "\n")
	b.WriteString("</body></html>\n")
	return b.String()
}

// num formats a scoreboard value, with "–" for unavailable data.
func num(v float64, ok bool, format string) string {
	if !ok || math.IsNaN(v) {
		return "–"
	}
	return fmt.Sprintf(format, v)
}

func (s *Server) writeScoreboard(b *strings.Builder, snap obs.Snapshot) {
	b.WriteString("<h2>Scoreboard</h2>\n<table class=\"score\">\n")
	row := func(label, value, class string) {
		if class != "" {
			fmt.Fprintf(b, "<tr><th>%s</th><td class=%q>%s</td></tr>\n", html.EscapeString(label), class, value)
		} else {
			fmt.Fprintf(b, "<tr><th>%s</th><td>%s</td></tr>\n", html.EscapeString(label), value)
		}
	}
	attempted, okA := snap.Counter("core_bursts_attempted_total")
	decoded, okD := snap.Counter("core_bursts_decoded_total")
	row("bursts attempted", num(attempted, okA, "%.0f"), "")
	row("bursts decoded", num(decoded, okD && okA, "%.0f"), "")
	if okA && attempted > 0 {
		rate := decoded / attempted * 100
		class := "ok"
		if rate < 90 {
			class = "bad"
		}
		row("decode rate", fmt.Sprintf("%.1f%%", rate), class)
	} else {
		row("decode rate", "–", "")
	}
	syncFail, okS := snap.Counter("core_sync_failures_total")
	row("sync failures", num(syncFail, okS, "%.0f"), "")
	bitErr, okB := snap.Counter("core_bit_errors_total")
	row("bit errors", num(bitErr, okB, "%.0f"), "")

	snr50, ok50 := snap.Quantile("signal_snr_est_db", 0.5)
	if !ok50 {
		snr50, ok50 = snap.Quantile("core_snr_est_db", 0.5)
	}
	row("SNR p50 (dB)", num(snr50, ok50, "%.1f"), "")
	evm50, okE := snap.Quantile("signal_evm_pct", 0.5)
	row("EVM p50 (%)", num(evm50, okE, "%.1f"), "")
	lat50, okL50 := snap.Quantile("mac_arq_frame_latency_seconds", 0.50)
	lat99, okL99 := snap.Quantile("mac_arq_frame_latency_seconds", 0.99)
	row("ARQ frame latency p50 (µs)", num(lat50*1e6, okL50, "%.2f"), "")
	row("ARQ frame latency p99 (µs)", num(lat99*1e6, okL99, "%.2f"), "")

	if s.sig != nil {
		fmt.Fprintf(b, "<tr><th>tap bursts committed</th><td>%d</td></tr>\n", s.sig.Bursts())
		occ, capacity, triggers := s.sig.FlightStats()
		if capacity > 0 {
			fmt.Fprintf(b, "<tr><th>flight recorder</th><td>%d/%d (triggers %d)</td></tr>\n",
				occ, capacity, triggers)
		} else {
			row("flight recorder", "off", "")
		}
	} else {
		row("signal taps", "disabled", "")
	}
	b.WriteString("</table>\n")
}

// writeAlerts renders the SLO rule panel: one row per rule with its
// live state, plus the most recent transitions. Pure function of the
// sampler snapshot, so it lives inside the deterministic section.
func (s *Server) writeAlerts(b *strings.Builder) {
	if s.alerts == nil || s.ts == nil {
		return
	}
	trans, states := s.alerts.Evaluate(s.ts.Snapshot())
	b.WriteString("<h2>Alerts</h2>\n<table class=\"score\">\n")
	for _, rs := range states {
		class := "ok"
		if rs.State == "firing" {
			class = "bad"
		}
		fmt.Fprintf(b, "<tr><th>%s</th><td class=%q>%s (fired %d)</td></tr>\n",
			html.EscapeString(rs.Rule), class, rs.State, rs.Fired)
	}
	b.WriteString("</table>\n")
	if n := len(trans); n > 0 {
		lo := n - 8
		if lo < 0 {
			lo = 0
		}
		b.WriteString("<p class=\"proc\">")
		for i, tr := range trans[lo:] {
			if i > 0 {
				b.WriteString(" · ")
			}
			fmt.Fprintf(b, "t=%.3gs %s %s", tr.T, html.EscapeString(tr.Rule), tr.State)
		}
		b.WriteString("</p>\n")
	}
}

func (s *Server) writeEventSummary(b *strings.Builder) {
	if s.log == nil {
		return
	}
	b.WriteString("<h2>Events</h2>\n<table class=\"score\">\n")
	dropped, sampled := s.log.Dropped()
	class := "ok"
	if dropped > 0 {
		class = "bad"
	}
	fmt.Fprintf(b, "<tr><th>retained</th><td>%d</td></tr>\n", s.log.Len())
	fmt.Fprintf(b, "<tr><th>dropped (capacity)</th><td class=%q>%d</td></tr>\n", class, dropped)
	fmt.Fprintf(b, "<tr><th>removed by sampling</th><td>%d</td></tr>\n", sampled)
	for _, cs := range s.log.CategoryCounts() {
		fmt.Fprintf(b, "<tr><th>%s</th><td>%d</td></tr>\n", html.EscapeString(cs.Category), cs.Count)
	}
	b.WriteString("</table>\n")
}

// timeseriesChart is one whitelisted time-axis panel over the sampler.
type timeseriesChart struct {
	metric string
	title  string
	ylabel string
	hist   bool    // histogram quantile vs counter delta-per-slot
	q      float64 // quantile when hist
	scale  float64 // y scale factor (e.g. seconds → µs)
}

var timeseriesCharts = []timeseriesChart{
	{"mac_arq_frame_latency_seconds", "ARQ frame latency p99 over virtual time", "p99 (µs)", true, 0.99, 1e6},
	{"core_bit_errors_total", "Bit errors per sample slot", "errors", false, 0, 1},
	{"mac_arq_transmissions_total", "ARQ transmissions per sample slot", "bursts", false, 0, 1},
	{"signal_snr_est_db", "SNR estimate p50 over virtual time", "SNR (dB)", true, 0.5, 1},
	{"stream_frames_decoded_total", "Streamed frames decoded per sample slot", "frames", false, 0, 1},
	{"stream_snr_est_db", "Stream decision-SNR p50 over virtual time", "SNR (dB)", true, 0.5, 1},
	{"stream_flow_delivered_total", "Flow-controlled deliveries per sample slot", "frames", false, 0, 1},
}

// writeTimeseriesCharts renders the virtual-time panels for every
// whitelisted metric with at least two sampled slots. The sampler
// snapshot is deterministic (sorted series, schedule-independent
// folds), so these charts live inside the deterministic section.
func (s *Server) writeTimeseriesCharts(b *strings.Builder) {
	if s.ts == nil {
		return
	}
	snap := s.ts.Snapshot()
	if len(snap.Series) == 0 {
		return
	}
	wrote := false
	for _, spec := range timeseriesCharts {
		xs, ys := mergeSeries(snap, spec)
		if len(xs) < 2 {
			continue
		}
		if !wrote {
			fmt.Fprintf(b, "<h2>Time series (virtual clock)</h2>\n")
			fmt.Fprintf(b, "<p class=\"proc\">dt %.3g s · stride %d · %d updates folded into %d slot(s)</p>\n",
				snap.DT, snap.Stride, snap.Updates, snap.Updates-snap.Folded)
			wrote = true
		}
		chart := plot.Chart{
			Title:  spec.title,
			XLabel: "virtual time (µs)", YLabel: spec.ylabel,
			Width: 520, Height: 300,
			Series: []plot.Series{{Name: spec.metric, X: xs, Y: ys, Points: true}},
		}
		if svg, err := chart.SVG(); err == nil {
			b.WriteString("<div class=\"panel\">" + svg + "</div>\n")
		}
	}
}

// mergeSeries folds every series of the chart's metric family into one
// (x, y) sequence on the slot grid: counter deltas sum across labels,
// histogram windows merge their bucket counts before the quantile.
func mergeSeries(snap tsdb.Snapshot, spec timeseriesChart) (xs, ys []float64) {
	slotDur := float64(snap.Stride) * snap.DT
	if slotDur <= 0 {
		return nil, nil
	}
	type slot struct {
		occupied bool
		v        float64
		counts   []uint64
	}
	slots := map[int]*slot{}
	var bounds []float64
	maxIdx := -1
	for _, se := range snap.Series {
		if se.Name != spec.metric {
			continue
		}
		if spec.hist != (se.Kind == obs.KindHistogram) {
			continue
		}
		bounds = se.Buckets
		for _, p := range se.Points {
			i := int(math.Round(p.T / slotDur))
			sl := slots[i]
			if sl == nil {
				sl = &slot{}
				slots[i] = sl
			}
			sl.occupied = true
			if spec.hist {
				if sl.counts == nil {
					sl.counts = make([]uint64, len(se.Buckets)+1)
				}
				for b := 0; b < len(sl.counts) && b < len(p.Counts); b++ {
					sl.counts[b] += p.Counts[b]
				}
			} else {
				sl.v += p.V
			}
			if i > maxIdx {
				maxIdx = i
			}
		}
	}
	for i := 0; i <= maxIdx; i++ {
		sl := slots[i]
		if sl == nil || !sl.occupied {
			continue
		}
		y := sl.v
		if spec.hist {
			v, ok := tsdb.Quantile(bounds, sl.counts, spec.q)
			if !ok {
				continue
			}
			y = v
		}
		xs = append(xs, float64(i)*slotDur*1e6)
		ys = append(ys, y*spec.scale)
	}
	return xs, ys
}

func (s *Server) writeTrends(b *strings.Builder) {
	if s.sig == nil {
		return
	}
	type trend struct {
		label  string
		values []float64
		format string
	}
	trends := []trend{
		{"SNR (dB)", s.sig.RecentSNR(nil), "%.1f"},
		{"EVM (%)", s.sig.RecentEVM(nil), "%.1f"},
		{"min margin", s.sig.RecentMinMargin(nil), "%.2f"},
	}
	any := false
	for _, t := range trends {
		if len(t.values) > 0 {
			any = true
		}
	}
	if !any {
		return
	}
	b.WriteString("<h2>Trends (recent bursts)</h2>\n<table class=\"spark\">\n")
	for _, t := range trends {
		if len(t.values) == 0 {
			continue
		}
		last := t.values[len(t.values)-1]
		fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td>%s</td></tr>\n",
			html.EscapeString(t.label), plot.Sparkline(t.values, 240, 40),
			fmt.Sprintf(t.format, last))
	}
	b.WriteString("</table>\n")
}

func (s *Server) writeLastBurst(b *strings.Builder) {
	if s.sig == nil {
		return
	}
	last, ok := s.sig.LastSnapshot()
	if !ok {
		return
	}
	// All the DSP and plot-series scratch below comes out of the shared
	// render workspace: sizes stabilize after the first render, so
	// repeated scrapes stop allocating.
	s.dashMu.Lock()
	defer s.dashMu.Unlock()
	ws := s.dashWS
	ws.Reset()
	status := "decoded"
	if !last.Decoded {
		status = "CRC failed"
	}
	fmt.Fprintf(b, "<h2>Last burst (#%d — %s, %s @ %s)</h2>\n",
		last.Seq, html.EscapeString(status),
		html.EscapeString(last.MCS), html.EscapeString(last.Bandwidth))
	fmt.Fprintf(b, "<p class=\"proc\">sync offset %d samples · preamble metric %.3g · SNR %s dB · threshold %.3g</p>\n",
		last.SyncOffset, last.SyncMetric, num(last.SNRdB, !math.IsNaN(last.SNRdB), "%.1f"), last.Threshold)

	if len(last.Decisions) > 0 {
		re := ws.Float(len(last.Decisions))
		im := ws.Float(len(last.Decisions))
		for i, c := range last.Decisions {
			re[i] = real(c)
			im[i] = imag(c)
		}
		chart := plot.Chart{
			Title:  "Constellation (slicer input)",
			XLabel: "I", YLabel: "Q",
			Width: 420, Height: 360,
			Series: []plot.Series{{Name: "decisions", X: re, Y: im, Points: true}},
		}
		if svg, err := chart.SVG(); err == nil {
			b.WriteString("<div class=\"panel\">" + svg + "</div>\n")
		}
	}
	if len(last.IQ) >= 8 && last.SampleRateHz > 0 {
		raw := dsp.PeriodogramWS(ws, last.IQ, dsp.Hann)
		psd := dsp.FFTShiftFloatsInto(ws.Float(len(raw)), raw)
		n := len(psd)
		freqs := ws.Float(n)
		db := ws.Float(n)
		for i := range psd {
			freqs[i] = (float64(i) - float64(n-(n+1)/2)) * last.SampleRateHz / float64(n) / 1e6
			db[i] = 10 * math.Log10(psd[i]+1e-30)
		}
		chart := plot.Chart{
			Title:  "Spectrum (received burst)",
			XLabel: "offset (MHz)", YLabel: "power (dB)",
			Width: 520, Height: 360,
			Series: []plot.Series{{Name: "PSD", X: freqs, Y: db}},
		}
		if svg, err := chart.SVG(); err == nil {
			b.WriteString("<div class=\"panel\">" + svg + "</div>\n")
		}
	}
}
