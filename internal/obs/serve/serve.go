// Package serve is the live telemetry service over internal/obs: a
// stdlib net/http server that exposes the metrics registry, the span
// tracer and the structured event log while a simulation is running,
// plus the runtime profiling endpoints of net/http/pprof. The -serve
// flag of cmd/mmtag (and the long-running examples) lands here.
//
// Endpoints:
//
//	GET /metrics         Prometheus text exposition of the registry
//	GET /metrics.json    obs.Snapshot as indented JSON
//	GET /trace           finished spans (+ drop counter) as JSON
//	GET /events          structured event log as JSON Lines
//	GET /timeseries      sampled virtual-time series (timeseries.json)
//	GET /alerts          SLO rule states + transitions as JSON
//	GET /stream          live status frames as Server-Sent Events
//	GET /healthz         build info, uptime, run phase, store sizes
//	GET /dashboard       self-contained HTML+SVG link-health dashboard
//	GET /debug/pprof/…   the standard Go profiling suite
//
// Every handler reads the registry/log through their own locks, so
// scraping is safe (and consistent per response) while simulations
// record concurrently. The server itself reports into the registry
// (serve_requests_total{path=…}) — scrapes are visible in the next
// scrape.
package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mmtag/mmtag/internal/dsp"
	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/obs/alert"
	"github.com/mmtag/mmtag/internal/obs/event"
	"github.com/mmtag/mmtag/internal/obs/signal"
	"github.com/mmtag/mmtag/internal/obs/tsdb"
)

// PrometheusContentType is the content type of GET /metrics, per the
// Prometheus text exposition format v0.0.4.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// Server answers telemetry queries against one registry + event log.
// Either store may be nil; the matching endpoints then serve an empty
// (but well-formed) body.
type Server struct {
	reg    *obs.Registry
	log    *event.Log
	sig    *signal.Tap
	ts     *tsdb.Sampler
	alerts *alert.Engine
	start  time.Time
	phase  atomic.Value // string: what the process is currently doing

	// dashMu serializes dashboard renders so they can share dashWS, the
	// workspace backing the spectrum/constellation DSP — repeated scrapes
	// reuse the same periodogram and plot buffers instead of allocating
	// per render.
	dashMu sync.Mutex
	dashWS *dsp.Workspace
}

// New returns a Server over the given stores (either may be nil).
func New(reg *obs.Registry, log *event.Log) *Server {
	s := &Server{reg: reg, log: log, start: time.Now(), dashWS: dsp.NewWorkspace()}
	s.phase.Store("idle")
	return s
}

// AttachSignal wires a signal tap into the server: /dashboard gains the
// constellation/spectrum panels and /healthz the flight-recorder state.
// Call before Start; a nil tap detaches.
func (s *Server) AttachSignal(t *signal.Tap) { s.sig = t }

// AttachTimeseries wires the virtual-time sampler into the server:
// /timeseries serves its artifact, /dashboard gains time-axis charts
// and /healthz the occupancy stats. Call before Start; nil detaches.
func (s *Server) AttachTimeseries(t *tsdb.Sampler) { s.ts = t }

// AttachAlerts wires an SLO rule engine into the server (evaluated on
// the attached sampler): /alerts serves rule states and transitions,
// /healthz the firing/pending counts. Call before Start; nil detaches.
func (s *Server) AttachAlerts(e *alert.Engine) { s.alerts = e }

// SetPhase records what the process is doing right now ("ber", "arq",
// "done"); /healthz reports it so a watcher can follow a long sweep.
func (s *Server) SetPhase(p string) { s.phase.Store(p) }

// Phase returns the current run phase.
func (s *Server) Phase() string { return s.phase.Load().(string) }

// Health is the /healthz response body.
type Health struct {
	Status    string  `json:"status"`
	GoVersion string  `json:"go_version"`
	NumCPU    int     `json:"num_cpu"`
	PID       int     `json:"pid"`
	UptimeS   float64 `json:"uptime_s"`
	Phase     string  `json:"phase"`
	// MetricSeries / Spans / Events size the three stores (−1 = store
	// not attached).
	MetricSeries int `json:"metric_series"`
	Spans        int `json:"spans"`
	Events       int `json:"events"`
	// DroppedSpans / DroppedEvents flag truncated stores;
	// SampledEvents counts events removed by per-category sampling. A
	// rising DroppedEvents means the telemetry is silently lossy — the
	// liveness check is expected to alert on it.
	DroppedSpans  uint64 `json:"dropped_spans"`
	DroppedEvents uint64 `json:"dropped_events"`
	SampledEvents uint64 `json:"sampled_events"`
	// Scrapes totals serve_requests_total across endpoints (0 when no
	// registry is attached).
	Scrapes float64 `json:"scrapes"`
	// TapBursts counts bursts committed through the signal tap;
	// FlightOccupied/FlightCapacity report the flight-recorder ring state
	// (−1 = no tap attached) and FlightTriggers the cumulative number of
	// recorded failures.
	TapBursts      uint64 `json:"tap_bursts"`
	FlightOccupied int    `json:"flight_occupied"`
	FlightCapacity int    `json:"flight_capacity"`
	FlightTriggers uint64 `json:"flight_triggers"`
	// SamplerSeries / SamplerSlotsOccupied / SamplerSlotCapacity report
	// time-series sampler occupancy (−1 = no sampler attached);
	// SamplerStride is the downsampling tier (ticks per slot) and
	// SamplerFolded how many updates were merged away by slotting and
	// downsampling.
	SamplerSeries        int    `json:"sampler_series"`
	SamplerSlotsOccupied int    `json:"sampler_slots_occupied"`
	SamplerSlotCapacity  int    `json:"sampler_slot_capacity"`
	SamplerStride        uint64 `json:"sampler_stride"`
	SamplerFolded        uint64 `json:"sampler_folded"`
	// AlertsFiring / AlertsPending count SLO rules per state, and
	// AlertRules maps each rule to its current state (absent when no
	// engine + sampler pair is attached).
	AlertsFiring  int               `json:"alerts_firing"`
	AlertsPending int               `json:"alerts_pending"`
	AlertRules    map[string]string `json:"alert_rules,omitempty"`
}

// health assembles the current Health.
func (s *Server) health() Health {
	h := Health{
		Status:       "ok",
		GoVersion:    runtime.Version(),
		NumCPU:       runtime.NumCPU(),
		PID:          os.Getpid(),
		UptimeS:      time.Since(s.start).Seconds(),
		Phase:        s.Phase(),
		MetricSeries: -1,
		Spans:        -1,
		Events:       -1,

		FlightOccupied: -1,
		FlightCapacity: -1,

		SamplerSeries:        -1,
		SamplerSlotsOccupied: -1,
		SamplerSlotCapacity:  -1,
	}
	if s.reg != nil {
		snap := s.reg.Snapshot()
		h.MetricSeries = snap.SeriesCount()
		h.Spans = len(snap.Spans)
		h.DroppedSpans = snap.DroppedSpans
		if c, ok := snap.Counter("serve_requests_total"); ok {
			h.Scrapes = c
		}
	}
	if s.log != nil {
		h.Events = s.log.Len()
		h.DroppedEvents, h.SampledEvents = s.log.Dropped()
	}
	if s.sig != nil {
		h.TapBursts = s.sig.Bursts()
		h.FlightOccupied, h.FlightCapacity, h.FlightTriggers = s.sig.FlightStats()
	}
	if s.ts != nil {
		st := s.ts.Stats()
		h.SamplerSeries = st.Series
		h.SamplerSlotsOccupied = st.SlotsOccupied
		h.SamplerSlotCapacity = st.SlotCapacity
		h.SamplerStride = st.Stride
		h.SamplerFolded = st.Folded
	}
	if s.alerts != nil && s.ts != nil {
		_, states := s.alerts.Evaluate(s.ts.Snapshot())
		h.AlertRules = make(map[string]string, len(states))
		for _, rs := range states {
			h.AlertRules[rs.Rule] = rs.State
			switch rs.State {
			case "firing":
				h.AlertsFiring++
			case "pending":
				h.AlertsPending++
			}
		}
	}
	return h
}

// count records one scrape into the registry (when one is attached).
func (s *Server) count(path string) {
	if s.reg != nil {
		s.reg.Add("serve_requests_total", 1, obs.L("path", path))
	}
}

// Handler returns the telemetry mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s.count("/metrics")
		w.Header().Set("Content-Type", PrometheusContentType)
		if s.reg != nil {
			fmt.Fprint(w, s.reg.PrometheusText())
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		s.count("/metrics.json")
		w.Header().Set("Content-Type", "application/json")
		if s.reg == nil {
			fmt.Fprintln(w, "{}")
			return
		}
		data, err := s.reg.Snapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(append(data, '\n'))
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		s.count("/trace")
		w.Header().Set("Content-Type", "application/json")
		payload := struct {
			Spans        []obs.SpanRecord `json:"spans"`
			DroppedSpans uint64           `json:"dropped_spans,omitempty"`
		}{Spans: []obs.SpanRecord{}}
		if s.reg != nil {
			payload.Spans, payload.DroppedSpans = s.reg.Spans()
		}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(append(data, '\n'))
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		s.count("/events")
		w.Header().Set("Content-Type", "application/x-ndjson")
		if s.log != nil {
			s.log.WriteJSONL(w)
		}
	})
	mux.HandleFunc("/timeseries", func(w http.ResponseWriter, r *http.Request) {
		s.count("/timeseries")
		w.Header().Set("Content-Type", "application/json")
		if s.ts == nil {
			fmt.Fprintln(w, "{}")
			return
		}
		w.Write(s.ts.JSON())
	})
	mux.HandleFunc("/alerts", func(w http.ResponseWriter, r *http.Request) {
		s.count("/alerts")
		w.Header().Set("Content-Type", "application/json")
		payload := struct {
			Schema      string             `json:"schema"`
			Rules       []alert.RuleState  `json:"rules"`
			Transitions []alert.Transition `json:"transitions"`
		}{Schema: alert.SchemaAlerts, Rules: []alert.RuleState{}, Transitions: []alert.Transition{}}
		if s.alerts != nil && s.ts != nil {
			trans, states := s.alerts.Evaluate(s.ts.Snapshot())
			if trans != nil {
				payload.Transitions = trans
			}
			payload.Rules = states
		}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(append(data, '\n'))
	})
	mux.HandleFunc("/stream", func(w http.ResponseWriter, r *http.Request) {
		s.count("/stream")
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")
		// One frame immediately (so one-shot captures see data without
		// waiting a tick), then a steady cadence until the client goes.
		send := func() bool {
			data, err := json.Marshal(s.health())
			if err != nil {
				return false
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
				return false
			}
			fl.Flush()
			return true
		}
		if !send() {
			return
		}
		tick := time.NewTicker(2 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-r.Context().Done():
				return
			case <-tick.C:
				if !send() {
					return
				}
			}
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		s.count("/healthz")
		w.Header().Set("Content-Type", "application/json")
		data, err := json.MarshalIndent(s.health(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(append(data, '\n'))
	})
	mux.HandleFunc("/dashboard", func(w http.ResponseWriter, r *http.Request) {
		s.count("/dashboard")
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, s.dashboardHTML())
	})
	// The pprof suite, mounted explicitly rather than via the package's
	// DefaultServeMux side effect: Index also serves the named lookup
	// profiles (heap, goroutine, block, mutex, allocs, threadcreate).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		s.count("/")
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "mmtag telemetry\n\n"+
			"  /metrics        Prometheus text format\n"+
			"  /metrics.json   JSON metrics snapshot\n"+
			"  /trace          span trace (JSON)\n"+
			"  /events         structured event log (JSONL)\n"+
			"  /timeseries     sampled virtual-time series (JSON)\n"+
			"  /alerts         SLO rule states + transitions (JSON)\n"+
			"  /stream         live status frames (SSE)\n"+
			"  /healthz        liveness + run phase\n"+
			"  /dashboard      live link-health dashboard (HTML)\n"+
			"  /debug/pprof/   Go profiling suite\n")
	})
	return mux
}

// Running is a started telemetry server.
type Running struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address (useful with ":0").
func (r *Running) Addr() string { return r.ln.Addr().String() }

// Close stops the listener and the server.
func (r *Running) Close() error { return r.srv.Close() }

// Start binds addr (host:port; empty host binds all interfaces, port 0
// picks a free port) and serves the telemetry mux on a background
// goroutine until Close.
func (s *Server) Start(addr string) (*Running, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	return &Running{ln: ln, srv: srv}, nil
}
