package serve

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/obs/event"
	"github.com/mmtag/mmtag/internal/obs/signal"
	"github.com/mmtag/mmtag/internal/par"
)

// feedDashboard builds a server whose stores were filled by an identical
// deterministic workload run across the given worker count: every trial
// commits the same burst through the signal tap, so aggregates, history
// rings and the last-burst snapshot are worker-order independent.
func feedDashboard(t *testing.T, workers int) *Server {
	t.Helper()
	reg := obs.NewRegistry()
	obs.EnableWith(reg)
	defer obs.Disable()
	prev := par.SetWorkers(workers)
	defer par.SetWorkers(prev)

	tap := &signal.Tap{}
	tap.SetFlightRecorder(4)
	tx := []complex128{1, complex(0.4, 0), 1, complex(0.6, 0)}
	rx := []complex128{
		complex(1e-5, 1e-6), complex(8e-6, -2e-6), complex(1.2e-5, 0),
		complex(9e-6, 1e-6), complex(1.1e-5, -1e-6), complex(1e-5, 0),
		complex(8.5e-6, 2e-6), complex(1.05e-5, 1e-6),
	}
	dec := []complex128{0.1, 1, 0.12, 0.98, 0.09, 1.02, 0.11, 0.99}
	par.ForEach(48, func(i int) {
		tap.TxWaveform(tx)
		tap.ChannelOut(rx)
		tap.Sync(96, 0.93)
		q, okQ := tap.SlicerInput(dec, 0.5)
		tap.Commit(signal.Burst{
			IQ: rx, SampleRateHz: 400e6, CarrierHz: 24e9,
			Bandwidth: "2 GHz", MCS: "OOK",
			SyncOffset: 96, SyncMetric: 0.93, Threshold: 0.5,
			SNRdB: 18.5, Decisions: dec,
			Quality: q, HasQuality: okQ, Decoded: true,
		})
		obs.Inc("core_bursts_attempted_total")
		obs.Inc("core_bursts_decoded_total")
	})
	tap.RecordFailure(signal.TriggerCRCFail, rx, 400e6, 24e9, "2 GHz", "OOK", 9)

	log := event.New(0)
	log.Emit(0.5, event.LevelInfo, "core.burst", "decoded", event.D("i", 0))
	log.Emit(1.5, event.LevelInfo, "mac.arq", "deliver", event.D("frame", 0))

	s := New(reg, log)
	s.SetPhase("dashboard-test")
	s.AttachSignal(tap)
	return s
}

// deterministicSection extracts the bytes between the dashboard's
// worker-invariance markers.
func deterministicSection(t *testing.T, body string) string {
	t.Helper()
	start := strings.Index(body, beginDeterministic)
	end := strings.Index(body, endDeterministic)
	if start < 0 || end < 0 || end < start {
		t.Fatalf("dashboard missing deterministic markers:\n%s", body)
	}
	return body[start:end]
}

func TestDashboardGolden(t *testing.T) {
	s := feedDashboard(t, 1)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, ct, body := get(t, ts, "/dashboard")
	if status != 200 || ct != "text/html; charset=utf-8" {
		t.Fatalf("/dashboard: status %d, content type %q", status, ct)
	}
	for _, want := range []string{
		"<!DOCTYPE html>",
		"<h1>mmtag link health</h1>",
		"phase dashboard-test",
		"<h2>Scoreboard</h2>",
		"<tr><th>bursts attempted</th><td>48</td></tr>",
		"<tr><th>bursts decoded</th><td>48</td></tr>",
		`<td class="ok">100.0%</td>`,
		"<tr><th>tap bursts committed</th><td>48</td></tr>",
		"<tr><th>flight recorder</th><td>1/4 (triggers 1)</td></tr>",
		"<h2>Events</h2>",
		"<h2>Trends (recent bursts)</h2>",
		"<polyline",
		"<h2>Last burst (#48 — decoded, OOK @ 2 GHz)</h2>",
		"Constellation (slicer input)",
		"Spectrum (received burst)",
		"</body></html>",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	// The SNR scoreboard row comes from the signal tap histogram.
	if !strings.Contains(body, "<tr><th>SNR p50 (dB)</th>") {
		t.Error("dashboard missing SNR row")
	}
}

func TestDashboardWithoutTap(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(reg, event.New(0))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	status, _, body := get(t, ts, "/dashboard")
	if status != 200 {
		t.Fatalf("/dashboard without tap: status %d", status)
	}
	if !strings.Contains(body, "<tr><th>signal taps</th><td>disabled</td></tr>") {
		t.Error("tap-less dashboard does not say taps are disabled")
	}
	if strings.Contains(body, "Last burst") || strings.Contains(body, "Trends") {
		t.Error("tap-less dashboard renders signal panels")
	}
}

// TestDashboardWorkerInvariance is the rendered-numbers counterpart of
// the CI determinism job: the deterministic section of the dashboard
// must be byte-identical when the same workload ran at different
// -workers counts. The volatile process header (uptime, PID, scrapes)
// sits outside the markers and is allowed to differ.
func TestDashboardWorkerInvariance(t *testing.T) {
	s1 := feedDashboard(t, 1)
	s4 := feedDashboard(t, 4)
	ts1 := httptest.NewServer(s1.Handler())
	defer ts1.Close()
	ts4 := httptest.NewServer(s4.Handler())
	defer ts4.Close()

	_, _, body1 := get(t, ts1, "/dashboard")
	_, _, body4 := get(t, ts4, "/dashboard")
	d1 := deterministicSection(t, body1)
	d4 := deterministicSection(t, body4)
	if d1 != d4 {
		t.Fatalf("deterministic dashboard section differs between 1 and 4 workers:\n--- w1 ---\n%s\n--- w4 ---\n%s", d1, d4)
	}
}

func TestHealthzSignalFields(t *testing.T) {
	s := feedDashboard(t, 2)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, ct, body := get(t, ts, "/healthz")
	if status != 200 || ct != "application/json" {
		t.Fatalf("/healthz: status %d, content type %q", status, ct)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz not JSON: %v", err)
	}
	if h.TapBursts != 48 {
		t.Errorf("tap_bursts = %d, want 48", h.TapBursts)
	}
	if h.FlightOccupied != 1 || h.FlightCapacity != 4 || h.FlightTriggers != 1 {
		t.Errorf("flight state = %d/%d triggers %d, want 1/4 triggers 1",
			h.FlightOccupied, h.FlightCapacity, h.FlightTriggers)
	}
}

func TestHealthzNoTapSentinels(t *testing.T) {
	s := New(obs.NewRegistry(), nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	_, _, body := get(t, ts, "/healthz")
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.FlightOccupied != -1 || h.FlightCapacity != -1 {
		t.Errorf("tap-less flight state = %d/%d, want -1/-1",
			h.FlightOccupied, h.FlightCapacity)
	}
}
