// Package event is the structured event log of the observability layer:
// a leveled, ring-buffered record of the simulation's discrete decisions
// (burst outcomes, sync verdicts, MAC state transitions, engine guard
// trips) encoded as JSONL. Metrics (internal/obs) answer "how much";
// the event log answers "what happened, in order".
//
// Design points, mirroring internal/obs:
//
//   - Disabled by default. Every package-level helper costs one atomic
//     load and a nil check until Enable installs a Log, so hot paths stay
//     effectively free. Call sites that would allocate field slices guard
//     on Enabled().
//   - Bounded memory. The log keeps at most its capacity of encoded
//     events; once full, further events are counted as dropped rather
//     than evicting older ones, so a truncated log says so.
//   - Deterministic exposition. Events carry the caller's virtual-clock
//     timestamp (never wall time), and Lines/WriteJSONL emit them sorted
//     by (time, encoded bytes). Because the repo's parallel fan-outs
//     shard work by index (internal/par), the *multiset* of events is
//     identical for any -workers count, and the sorted exposition is
//     therefore byte-identical too — as long as no capacity drops
//     occurred (Dropped reports them).
//   - Deterministic sampling. Per-category sampling keeps an event iff
//     the FNV-1a hash of its encoded line is 0 mod the sampling period.
//     Keyed on content rather than arrival order, the decision is
//     independent of scheduling and worker count.
package event

import (
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/mmtag/mmtag/internal/obs"
)

// Level classifies an event's severity.
type Level uint8

// Event levels, in increasing severity.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
)

// String names the level the way the JSONL encoding does.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	}
	return "unknown"
}

// DefaultCapacity bounds a Log constructed with New(0).
const DefaultCapacity = 1 << 16

// entry is one retained event: the virtual timestamp is kept alongside
// the encoded line so exposition can sort numerically by time (the
// encoded float is not lexicographically ordered).
type entry struct {
	t    float64
	line []byte
}

// Log is a concurrency-safe bounded event buffer.
type Log struct {
	mu       sync.Mutex
	capacity int
	entries  []entry
	counts   map[string]uint64 // kept events per category
	dropped  uint64            // events lost to the capacity bound
	sampled  uint64            // events dropped by sampling
	every    map[string]uint64 // per-category sampling period
	minLevel Level
	// enc and fieldBuf are per-log scratch reused by every Emit under mu:
	// the line is encoded in place and only copied (exact size) when the
	// event is actually retained, so sampled and dropped events cost no
	// steady-state allocations at all.
	enc      []byte
	fieldBuf []obs.Label
}

// New returns an empty log. capacity <= 0 selects DefaultCapacity.
func New(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Log{
		capacity: capacity,
		counts:   map[string]uint64{},
		every:    map[string]uint64{},
	}
}

// SetMinLevel discards events below lvl at emission time.
func (l *Log) SetMinLevel(lvl Level) {
	l.mu.Lock()
	l.minLevel = lvl
	l.mu.Unlock()
}

// SetSampling keeps roughly one in every `every` events of the category
// (every <= 1 keeps all). The kept subset is a pure function of event
// content, so sampling never breaks worker-count determinism.
func (l *Log) SetSampling(cat string, every int) {
	l.mu.Lock()
	if every <= 1 {
		delete(l.every, cat)
	} else {
		l.every[cat] = uint64(every)
	}
	l.mu.Unlock()
}

// Emit records one event at virtual time t. Field keys are encoded in
// sorted order so the line bytes are independent of call-site order.
//
// The line is rendered into the log's reusable scratch buffer; the only
// per-event allocation in steady state is the exact-size copy of a line
// that is actually kept. Events below the level filter, removed by
// sampling, or dropped at capacity allocate nothing.
func (l *Log) Emit(t float64, lvl Level, cat, msg string, fields ...obs.Label) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lvl < l.minLevel {
		return
	}
	every, sampling := l.every[cat]
	if !sampling && len(l.entries) >= l.capacity {
		// The event is dropped whatever its bytes would be, so skip the
		// encode entirely. (Sampled categories must still encode: the
		// sampled/dropped split is a function of the line's hash.)
		l.dropped++
		return
	}
	l.fieldBuf = append(l.fieldBuf[:0], fields...)
	sortLabels(l.fieldBuf)
	l.enc = appendEvent(l.enc[:0], t, lvl, cat, msg, l.fieldBuf)
	if sampling {
		if fnv1a(l.enc)%every != 0 {
			l.sampled++
			return
		}
		if len(l.entries) >= l.capacity {
			l.dropped++
			return
		}
	}
	line := make([]byte, len(l.enc))
	copy(line, l.enc)
	l.entries = append(l.entries, entry{t: t, line: line})
	l.counts[cat]++
}

// fnv1a is the 64-bit FNV-1a hash, inlined so the sampling decision does
// not allocate a hash.Hash64 per event. It is bit-identical to
// hash/fnv.New64a over the same bytes, which keeps historical sampling
// decisions (and with them events.jsonl) unchanged.
func fnv1a(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// Len returns the number of retained events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Dropped returns how many events were lost to the capacity bound and
// how many were removed by sampling. A nonzero capacity count means the
// exposition may no longer be worker-count invariant (which events
// arrived first depends on scheduling once the buffer is full).
func (l *Log) Dropped() (capacity, sampled uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped, l.sampled
}

// CategoryCount returns the number of retained events in a category.
func (l *Log) CategoryCount(cat string) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.counts[cat]
}

// CategoryCounts returns every category with retained events and its
// count, sorted by category name — the dashboard's event summary order.
func (l *Log) CategoryCounts() []CategoryStat {
	l.mu.Lock()
	out := make([]CategoryStat, 0, len(l.counts))
	for cat, n := range l.counts {
		out = append(out, CategoryStat{Category: cat, Count: n})
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Category < out[j].Category })
	return out
}

// CategoryStat is one row of CategoryCounts.
type CategoryStat struct {
	Category string
	Count    uint64
}

// Lines returns the encoded events sorted by (time, bytes) — the
// deterministic exposition order. The returned slices are copies.
func (l *Log) Lines() [][]byte {
	l.mu.Lock()
	sorted := append([]entry{}, l.entries...)
	l.mu.Unlock()
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].t != sorted[j].t {
			return sorted[i].t < sorted[j].t
		}
		return string(sorted[i].line) < string(sorted[j].line)
	})
	out := make([][]byte, len(sorted))
	for i, e := range sorted {
		out[i] = append([]byte{}, e.line...)
	}
	return out
}

// WriteJSONL writes the sorted events as JSON Lines (one object per
// line, trailing newline each).
func (l *Log) WriteJSONL(w io.Writer) error {
	for _, line := range l.Lines() {
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// MaxTime returns the largest event timestamp (0 when empty): the run's
// virtual extent as seen by the log.
func (l *Log) MaxTime() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	max := 0.0
	for _, e := range l.entries {
		if e.t > max {
			max = e.t
		}
	}
	return max
}

// Reset discards every retained event and counter but keeps the
// configuration (capacity, level, sampling).
func (l *Log) Reset() {
	l.mu.Lock()
	l.entries = nil
	l.counts = map[string]uint64{}
	l.dropped, l.sampled = 0, 0
	l.mu.Unlock()
}

// Encode renders one event as its canonical JSONL line (no trailing
// newline): {"t":…,"lvl":"…","cat":"…","msg":"…","fields":{…}} with
// fields sorted by key. The encoding is hand-rolled so identical events
// are identical bytes on every platform and Go version.
func Encode(t float64, lvl Level, cat, msg string, fields ...obs.Label) []byte {
	sorted := append([]obs.Label{}, fields...)
	sortLabels(sorted)
	return appendEvent(make([]byte, 0, 64+16*len(fields)), t, lvl, cat, msg, sorted)
}

// appendEvent renders one event into b, whose fields must already be
// key-sorted. It is the shared body of Encode and the allocation-free
// Emit path.
func appendEvent(b []byte, t float64, lvl Level, cat, msg string, sorted []obs.Label) []byte {
	b = append(b, `{"t":`...)
	b = appendFloat(b, t)
	b = append(b, `,"lvl":`...)
	b = strconv.AppendQuote(b, lvl.String())
	b = append(b, `,"cat":`...)
	b = strconv.AppendQuote(b, cat)
	b = append(b, `,"msg":`...)
	b = strconv.AppendQuote(b, msg)
	if len(sorted) > 0 {
		b = append(b, `,"fields":{`...)
		for i, f := range sorted {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendQuote(b, f.Key)
			b = append(b, ':')
			b = strconv.AppendQuote(b, f.Value)
		}
		b = append(b, '}')
	}
	b = append(b, '}')
	return b
}

// sortLabels key-sorts labels in place with a stable insertion sort: the
// field counts at event sites are tiny (≤ 6), and unlike sort.SliceStable
// this never allocates, keeping Emit's hot path clean.
func sortLabels(ls []obs.Label) {
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j].Key < ls[j-1].Key; j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}

// appendFloat renders the timestamp; NaN/Inf (not valid JSON numbers)
// are quoted. Finite values append in place (no intermediate string) so
// the Emit hot path stays allocation-free.
func appendFloat(b []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return strconv.AppendQuote(b, strconv.FormatFloat(v, 'g', -1, 64))
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// F formats a float64 event field with %g — the shared helper event
// sites use so equal values always yield equal bytes.
func F(key string, v float64) obs.Label {
	return obs.Label{Key: key, Value: strconv.FormatFloat(v, 'g', -1, 64)}
}

// D formats an integer event field.
func D(key string, v int) obs.Label {
	return obs.Label{Key: key, Value: strconv.Itoa(v)}
}

// S is a string event field (an alias for obs.L at event sites).
func S(key, value string) obs.Label { return obs.Label{Key: key, Value: value} }

// ---------------------------------------------------------------------
// Package-level default log.

var active atomic.Pointer[Log]

// Enable installs a fresh Log (capacity <= 0 = DefaultCapacity) as the
// package default and returns it.
func Enable(capacity int) *Log {
	l := New(capacity)
	active.Store(l)
	return l
}

// EnableWith installs an existing Log as the package default.
func EnableWith(l *Log) { active.Store(l) }

// Disable removes the default Log; helpers become no-ops again.
func Disable() { active.Store(nil) }

// Active returns the installed Log, or nil when disabled.
func Active() *Log { return active.Load() }

// Enabled reports whether a Log is installed.
func Enabled() bool { return active.Load() != nil }

// Emit records one event on the default log (no-op when disabled).
// Emission sites pass the virtual-clock time where one exists (the sim
// engine's now) and 0 otherwise — never wall time, which would break
// the worker-count determinism contract.
func Emit(t float64, lvl Level, cat, msg string, fields ...obs.Label) {
	if l := active.Load(); l != nil {
		l.Emit(t, lvl, cat, msg, fields...)
	}
}
