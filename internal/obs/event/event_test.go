package event

import (
	"bytes"
	"encoding/json"
	"hash/fnv"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"github.com/mmtag/mmtag/internal/obs"
)

func TestEncodeCanonical(t *testing.T) {
	line := Encode(1.5, LevelInfo, "mac.arq", "retry", D("attempt", 2), S("bw", "2GHz"))
	want := `{"t":1.5,"lvl":"info","cat":"mac.arq","msg":"retry","fields":{"attempt":"2","bw":"2GHz"}}`
	if string(line) != want {
		t.Fatalf("encode:\n got %s\nwant %s", line, want)
	}
	// Field order at the call site must not change the bytes.
	swapped := Encode(1.5, LevelInfo, "mac.arq", "retry", S("bw", "2GHz"), D("attempt", 2))
	if string(swapped) != want {
		t.Fatalf("field order changed encoding: %s", swapped)
	}
	// Every line must be valid JSON.
	var v map[string]any
	if err := json.Unmarshal(line, &v); err != nil {
		t.Fatalf("line is not JSON: %v", err)
	}
	if v["msg"] != "retry" {
		t.Fatalf("msg = %v", v["msg"])
	}
}

func TestEncodeNonFiniteTime(t *testing.T) {
	for _, tt := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		line := Encode(tt, LevelWarn, "c", "m")
		var v map[string]any
		if err := json.Unmarshal(line, &v); err != nil {
			t.Fatalf("t=%v: invalid JSON %s: %v", tt, line, err)
		}
	}
}

func TestEmitAndLines(t *testing.T) {
	l := New(0)
	l.Emit(2.0, LevelInfo, "a", "second")
	l.Emit(1.0, LevelInfo, "a", "first")
	l.Emit(1.0, LevelInfo, "a", "also-first")
	lines := l.Lines()
	if len(lines) != 3 {
		t.Fatalf("len = %d", len(lines))
	}
	// Sorted by time, ties by bytes.
	if !strings.Contains(string(lines[0]), "also-first") {
		t.Fatalf("tie order: %s", lines[0])
	}
	if !strings.Contains(string(lines[2]), "second") {
		t.Fatalf("time order: %s", lines[2])
	}
	if got := l.CategoryCount("a"); got != 3 {
		t.Fatalf("category count = %d", got)
	}
	if got := l.MaxTime(); got != 2.0 {
		t.Fatalf("max time = %g", got)
	}
}

func TestLevelFilter(t *testing.T) {
	l := New(0)
	l.SetMinLevel(LevelInfo)
	l.Emit(0, LevelDebug, "c", "dropped")
	l.Emit(0, LevelInfo, "c", "kept")
	if l.Len() != 1 {
		t.Fatalf("len = %d", l.Len())
	}
}

func TestCapacityDrops(t *testing.T) {
	l := New(2)
	for i := 0; i < 5; i++ {
		l.Emit(float64(i), LevelInfo, "c", "m")
	}
	if l.Len() != 2 {
		t.Fatalf("len = %d, want 2", l.Len())
	}
	capDrops, sampled := l.Dropped()
	if capDrops != 3 || sampled != 0 {
		t.Fatalf("dropped = (%d, %d), want (3, 0)", capDrops, sampled)
	}
}

// TestSamplingDeterministic checks that per-category sampling is a pure
// function of event content: the same multiset emitted in any order
// keeps the same subset.
func TestSamplingDeterministic(t *testing.T) {
	mk := func(order []int) [][]byte {
		l := New(0)
		l.SetSampling("hot", 4)
		for _, i := range order {
			l.Emit(float64(i), LevelDebug, "hot", "sample", D("i", i))
		}
		return l.Lines()
	}
	fwd := make([]int, 256)
	for i := range fwd {
		fwd[i] = i
	}
	shuffled := append([]int{}, fwd...)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	a, b := mk(fwd), mk(shuffled)
	if len(a) == 0 || len(a) == 256 {
		t.Fatalf("sampling kept %d of 256 (want a strict subset)", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("order changed the sampled subset: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("line %d differs across emission orders", i)
		}
	}
	// The uncategorized path stays unsampled.
	l := New(0)
	l.SetSampling("hot", 1000)
	l.Emit(0, LevelInfo, "cold", "kept")
	if l.Len() != 1 {
		t.Fatal("sampling leaked onto another category")
	}
}

// TestEmitStoresCanonicalBytes pins the reusable-scratch Emit path to
// the package Encode function: retained lines must be byte-identical to
// the allocating encoder (including field sorting), and must not alias
// the log's scratch buffer across emits.
func TestEmitStoresCanonicalBytes(t *testing.T) {
	l := New(0)
	l.Emit(1.5, LevelInfo, "c", "m", S("b", "2GHz"), D("a", 1))
	l.Emit(2.5, LevelWarn, "c", "n", F("x", 0.25))
	lines := l.Lines()
	if len(lines) != 2 {
		t.Fatalf("len = %d", len(lines))
	}
	want0 := Encode(1.5, LevelInfo, "c", "m", D("a", 1), S("b", "2GHz"))
	want1 := Encode(2.5, LevelWarn, "c", "n", F("x", 0.25))
	if !bytes.Equal(lines[0], want0) {
		t.Fatalf("line 0:\n got %s\nwant %s", lines[0], want0)
	}
	if !bytes.Equal(lines[1], want1) {
		t.Fatalf("line 1 (scratch reuse corrupted earlier line?):\n got %s\nwant %s", lines[1], want1)
	}
}

// TestFNV1AMatchesStdlib: the inlined sampling hash must agree with
// hash/fnv.New64a bit for bit, or historical sampling decisions (and
// events.jsonl) would silently change.
func TestFNV1AMatchesStdlib(t *testing.T) {
	for _, s := range []string{"", "a", `{"t":1,"lvl":"info","cat":"c","msg":"m"}`, "\x00\xff\x80"} {
		h := fnv.New64a()
		h.Write([]byte(s))
		if got, want := fnv1a([]byte(s)), h.Sum64(); got != want {
			t.Fatalf("fnv1a(%q) = %x, want %x", s, got, want)
		}
	}
}

// TestEmitSteadyStateAllocs: level-filtered and capacity-dropped emits
// must allocate nothing; kept emits only the retained line copy.
func TestEmitSteadyStateAllocs(t *testing.T) {
	filtered := New(0)
	filtered.SetMinLevel(LevelWarn)
	if n := testing.AllocsPerRun(10, func() {
		filtered.Emit(0, LevelDebug, "c", "below-level", D("i", 1))
	}); n != 0 {
		t.Errorf("level-filtered emit: %v allocs/run, want 0", n)
	}

	full := New(1)
	full.Emit(0, LevelInfo, "c", "fills-capacity")
	if n := testing.AllocsPerRun(10, func() {
		full.Emit(1, LevelInfo, "c", "dropped", D("i", 1))
	}); n != 0 {
		t.Errorf("capacity-dropped emit: %v allocs/run, want 0", n)
	}

	sampled := New(0)
	sampled.SetSampling("hot", 1<<30)
	sampled.Emit(3, LevelInfo, "hot", "probe", D("i", 7))
	if sampled.Len() == 0 { // content is sampled out: steady path allocates nothing
		if n := testing.AllocsPerRun(10, func() {
			sampled.Emit(3, LevelInfo, "hot", "probe", D("i", 7))
		}); n != 0 {
			t.Errorf("sampled-out emit: %v allocs/run, want 0", n)
		}
	}

	kept := New(0)
	kept.Emit(0, LevelInfo, "c", "warm", D("i", 1))
	if n := testing.AllocsPerRun(100, func() {
		kept.Emit(1, LevelInfo, "c", "kept", D("i", 2))
	}); n > 2 {
		t.Errorf("kept emit: %v allocs/run, want ≤ 2 (line copy + amortized ring growth)", n)
	}
}

func TestWriteJSONL(t *testing.T) {
	l := New(0)
	l.Emit(0.25, LevelWarn, "sim.engine", "event_limit", D("limit", 10))
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "}\n") {
		t.Fatalf("missing trailing newline: %q", out)
	}
	if strings.Count(out, "\n") != 1 {
		t.Fatalf("want one line, got %q", out)
	}
}

func TestResetKeepsConfig(t *testing.T) {
	l := New(3)
	l.SetSampling("x", 2)
	for i := 0; i < 10; i++ {
		l.Emit(0, LevelInfo, "c", "m", D("i", i))
	}
	l.Reset()
	if l.Len() != 0 {
		t.Fatalf("len after reset = %d", l.Len())
	}
	if d, _ := l.Dropped(); d != 0 {
		t.Fatalf("dropped after reset = %d", d)
	}
}

func TestPackageLevelDisabledNoop(t *testing.T) {
	Disable()
	if Enabled() || Active() != nil {
		t.Fatal("expected disabled state")
	}
	Emit(0, LevelInfo, "c", "m") // must not panic
	l := Enable(16)
	defer Disable()
	if Active() != l || !Enabled() {
		t.Fatal("Enable did not install the log")
	}
	Emit(0, LevelInfo, "c", "m")
	if l.Len() != 1 {
		t.Fatalf("len = %d", l.Len())
	}
}

// TestConcurrentEmit exercises the log under the race detector and
// checks the sorted exposition is independent of interleaving.
func TestConcurrentEmit(t *testing.T) {
	l := New(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Emit(float64(i), LevelInfo, "par", "shard",
					D("w", w), D("i", i))
				_ = l.Len()
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("len = %d", l.Len())
	}
	ref := New(0)
	for w := 0; w < 8; w++ {
		for i := 0; i < 100; i++ {
			ref.Emit(float64(i), LevelInfo, "par", "shard",
				D("w", w), D("i", i))
		}
	}
	a, b := l.Lines(), ref.Lines()
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("line %d differs from the sequential reference", i)
		}
	}
}

func TestLevelString(t *testing.T) {
	for lvl, want := range map[Level]string{
		LevelDebug: "debug", LevelInfo: "info", LevelWarn: "warn", Level(99): "unknown",
	} {
		if got := lvl.String(); got != want {
			t.Fatalf("Level(%d).String() = %q, want %q", lvl, got, want)
		}
	}
}

func TestFieldHelpers(t *testing.T) {
	if f := F("snr", 12.5); f.Key != "snr" || f.Value != "12.5" {
		t.Fatalf("F: %+v", f)
	}
	if d := D("n", -3); d.Value != "-3" {
		t.Fatalf("D: %+v", d)
	}
	if s := S("bw", "2GHz"); s != obs.L("bw", "2GHz") {
		t.Fatalf("S: %+v", s)
	}
}

func TestEnableWithInstallsExistingLog(t *testing.T) {
	l := New(8)
	EnableWith(l)
	defer Disable()
	if Active() != l {
		t.Fatal("EnableWith did not install the log")
	}
	Emit(1, LevelInfo, "c", "via-package")
	if l.Len() != 1 {
		t.Fatalf("len = %d, want 1", l.Len())
	}
}
