package obs

import (
	"math"
	"strings"
	"testing"
)

func quantileRegistry() *Registry {
	// Bucket templates are package-global; a test-scoped family name
	// keeps this fixture from leaking into other tests' histograms.
	RegisterBuckets("quantile_test_lat", 1, 2, 4, 8)
	return NewRegistry()
}

func TestQuantileInterpolation(t *testing.T) {
	r := quantileRegistry()
	// 10 samples uniform in (0,1]: the whole mass sits in the first
	// bucket, so quantiles interpolate linearly from 0 to 1.
	for i := 0; i < 10; i++ {
		r.Observe("quantile_test_lat", 0.5)
	}
	snap := r.Snapshot()
	if v, ok := snap.Quantile("quantile_test_lat", 0.5); !ok || v != 0.5 {
		t.Fatalf("p50 = %v, %v; want 0.5", v, ok)
	}
	if v, ok := snap.Quantile("quantile_test_lat", 1); !ok || v != 1 {
		t.Fatalf("p100 = %v, %v; want bucket bound 1", v, ok)
	}
	// Mass split across buckets: 5 samples ≤ 1, 5 in (4,8]. The median
	// rank lands exactly on the first bucket's cumulative count.
	r2 := quantileRegistry()
	for i := 0; i < 5; i++ {
		r2.Observe("quantile_test_lat", 0.5)
		r2.Observe("quantile_test_lat", 6)
	}
	snap = r2.Snapshot()
	if v, ok := snap.Quantile("quantile_test_lat", 0.5); !ok || v != 1 {
		t.Fatalf("split p50 = %v, %v; want 1", v, ok)
	}
	if v, ok := snap.Quantile("quantile_test_lat", 0.75); !ok || v != 6 {
		t.Fatalf("split p75 = %v, %v; want 6 (midway through (4,8])", v, ok)
	}
}

func TestQuantileInfClamp(t *testing.T) {
	r := quantileRegistry()
	r.Observe("quantile_test_lat", 100) // lands in the +Inf bucket
	snap := r.Snapshot()
	v, ok := snap.Quantile("quantile_test_lat", 0.99)
	if !ok || v != 8 {
		t.Fatalf("overflow quantile = %v, %v; want clamp to highest finite bound 8", v, ok)
	}
}

func TestQuantileLabelsAndAggregate(t *testing.T) {
	r := quantileRegistry()
	for i := 0; i < 8; i++ {
		r.Observe("quantile_test_lat", 0.5, L("bw", "2GHz"))
		r.Observe("quantile_test_lat", 6, L("bw", "10MHz"))
	}
	snap := r.Snapshot()
	// Per-series: all 2GHz mass is in (0,1].
	if v, ok := snap.Quantile("quantile_test_lat", 0.5, L("bw", "2GHz")); !ok || v > 1 {
		t.Fatalf("2GHz p50 = %v, %v", v, ok)
	}
	if v, ok := snap.Quantile("quantile_test_lat", 0.5, L("bw", "10MHz")); !ok || v <= 4 {
		t.Fatalf("10MHz p50 = %v, %v", v, ok)
	}
	// Aggregate across the family: half the mass below 1, half in (4,8].
	if v, ok := snap.Quantile("quantile_test_lat", 0.25); !ok || v != 0.5 {
		t.Fatalf("aggregate p25 = %v, %v; want 0.5", v, ok)
	}
	if _, ok := snap.Quantile("quantile_test_lat", 0.5, L("bw", "nope")); ok {
		t.Fatal("unknown series must report !ok")
	}
}

func TestQuantileRejects(t *testing.T) {
	r := quantileRegistry()
	r.Add("reqs", 1)
	snap := r.Snapshot()
	if _, ok := snap.Quantile("quantile_test_lat", 0.5); ok {
		t.Fatal("empty histogram must report !ok")
	}
	r.Observe("quantile_test_lat", 0.5)
	snap = r.Snapshot()
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if _, ok := snap.Quantile("quantile_test_lat", q); ok {
			t.Fatalf("q=%v must report !ok", q)
		}
	}
	if _, ok := snap.Quantile("reqs", 0.5); ok {
		t.Fatal("counter family must report !ok")
	}
	if _, ok := snap.Quantile("absent", 0.5); ok {
		t.Fatal("unknown family must report !ok")
	}
}

// TestLabelValueEscaping: the exposition must escape label values once —
// a quote in a value scrapes as \" (not the doubly-escaped \\\" the old
// %q formatting produced).
func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Add("reqs", 1, L("path", `say "hi"\now`))
	r.Add("reqs", 1, L("path", "two\nlines"))
	text := r.PrometheusText()
	if !strings.Contains(text, `path="say \"hi\"\\now"`) {
		t.Fatalf("quote/backslash escaping wrong:\n%s", text)
	}
	if !strings.Contains(text, `path="two\nlines"`) {
		t.Fatalf("newline escaping wrong:\n%s", text)
	}
	if strings.Contains(text, `\\\"`) || strings.ContainsRune(text, '\r') {
		t.Fatalf("double escaping detected:\n%s", text)
	}
	// Every line still parses as name{labels} value.
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasSuffix(line, " 1") && !strings.HasSuffix(line, " 2") {
			t.Fatalf("malformed exposition line: %q", line)
		}
	}
}
