// Package alert is a declarative SLO rule engine evaluated on the
// sampled metric stream (internal/obs/tsdb). A rule names a metric, a
// window aggregation, a comparator and a for-duration; the engine
// replays the sampler's virtual-time grid through a
// pending→firing→resolved state machine and reports deterministic
// alert transitions.
//
// Evaluation is a pure function of the tsdb snapshot, so for a fixed
// update multiset the transitions — and the alerts.jsonl artifact — are
// byte-identical at any -workers count. The for-duration doubles as
// flap suppression: a condition that clears before holding ForS
// seconds cancels its pending state silently, without emitting any
// transition.
package alert

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"

	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/obs/event"
	"github.com/mmtag/mmtag/internal/obs/tsdb"
)

// SchemaRules identifies an alert rules file; SchemaAlerts the
// alerts.jsonl artifact lines.
const (
	SchemaRules  = "mmtag-alert-rules/1"
	SchemaAlerts = "mmtag-alerts/1"
)

// Rule is one declarative SLO condition on a sampled metric.
type Rule struct {
	// Name identifies the rule in transitions and on /healthz.
	Name string `json:"name"`
	// Metric is the metric family to watch; series are merged across
	// labels.
	Metric string `json:"metric"`
	// Agg is the window aggregation: "value" (cumulative counter /
	// latest gauge), "sum" and "rate" (counter deltas over the
	// window), "count", "p50", "p90", "p99" (histogram window), "max"
	// and "min" (gauge window).
	Agg string `json:"agg"`
	// WindowS is the lookback in virtual seconds (0 = current sample
	// slot only).
	WindowS float64 `json:"window_s"`
	// Op compares the aggregate against Threshold: > >= < <=.
	Op        string  `json:"op"`
	Threshold float64 `json:"threshold"`
	// ForS is how long the condition must hold before the rule fires
	// (0 = immediately). Conditions that clear earlier are suppressed.
	ForS float64 `json:"for_s"`
	// Severity is free-form ("warn" when empty).
	Severity string `json:"severity,omitempty"`
}

var validAggs = map[string]bool{
	"value": true, "sum": true, "rate": true, "count": true,
	"p50": true, "p90": true, "p99": true, "max": true, "min": true,
}

var validOps = map[string]bool{">": true, ">=": true, "<": true, "<=": true}

// Validate rejects rules the engine cannot evaluate.
func (r Rule) Validate() error {
	switch {
	case r.Name == "":
		return fmt.Errorf("alert: rule needs a name")
	case r.Metric == "":
		return fmt.Errorf("alert: rule %q needs a metric", r.Name)
	case !validAggs[r.Agg]:
		return fmt.Errorf("alert: rule %q: unknown agg %q", r.Name, r.Agg)
	case !validOps[r.Op]:
		return fmt.Errorf("alert: rule %q: unknown op %q", r.Name, r.Op)
	case math.IsNaN(r.Threshold):
		return fmt.Errorf("alert: rule %q: NaN threshold", r.Name)
	case r.WindowS < 0 || math.IsNaN(r.WindowS):
		return fmt.Errorf("alert: rule %q: negative window", r.Name)
	case r.ForS < 0 || math.IsNaN(r.ForS):
		return fmt.Errorf("alert: rule %q: negative for-duration", r.Name)
	}
	return nil
}

func (r Rule) severity() string {
	if r.Severity == "" {
		return "warn"
	}
	return r.Severity
}

// DefaultRules are the built-in SLOs wired to the repo's core metrics:
// bit-error bursts, ARQ tail latency, sync-loss streaks and
// flight-recorder trigger rate.
func DefaultRules() []Rule {
	return []Rule{
		{Name: "ber-bit-errors", Metric: "core_bit_errors_total",
			Agg: "sum", WindowS: 0, Op: ">", Threshold: 0, ForS: 0},
		{Name: "arq-p99-latency", Metric: "mac_arq_frame_latency_seconds",
			Agg: "p99", WindowS: 2e-4, Op: ">", Threshold: 1e-4, ForS: 0},
		{Name: "sync-loss-streak", Metric: "core_sync_failures_total",
			Agg: "sum", WindowS: 1e-4, Op: ">", Threshold: 2, ForS: 0},
		{Name: "flight-trigger-rate", Metric: "signal_flight_triggers_total",
			Agg: "rate", WindowS: 1e-4, Op: ">", Threshold: 0, ForS: 0},
	}
}

// rulesFile is the on-disk shape accepted by LoadRules: either a bare
// JSON array of rules or an object with a "rules" key.
type rulesFile struct {
	Schema string `json:"schema"`
	Rules  []Rule `json:"rules"`
}

// LoadRules parses a rules document (array or {"rules": [...]}).
func LoadRules(data []byte) ([]Rule, error) {
	var rules []Rule
	if err := json.Unmarshal(data, &rules); err != nil {
		var f rulesFile
		if err2 := json.Unmarshal(data, &f); err2 != nil {
			return nil, fmt.Errorf("alert: parse rules: %w", err)
		}
		rules = f.Rules
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("alert: no rules in document")
	}
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	return rules, nil
}

// LoadRulesFile reads and parses a rules file.
func LoadRulesFile(path string) ([]Rule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("alert: %w", err)
	}
	return LoadRules(data)
}

// Engine evaluates a fixed rule set against tsdb snapshots.
type Engine struct {
	rules []Rule
}

// New validates the rules and returns an engine over them.
func New(rules []Rule) (*Engine, error) {
	if len(rules) == 0 {
		return nil, fmt.Errorf("alert: engine needs at least one rule")
	}
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	return &Engine{rules: append([]Rule{}, rules...)}, nil
}

// Default returns an engine over DefaultRules.
func Default() *Engine {
	e, err := New(DefaultRules())
	if err != nil {
		panic(err) // built-in rules always validate
	}
	return e
}

// Rules returns a copy of the engine's rule set.
func (e *Engine) Rules() []Rule { return append([]Rule{}, e.rules...) }

// Transition is one firing or resolved edge of a rule.
type Transition struct {
	T         float64 `json:"t"`
	Rule      string  `json:"rule"`
	State     string  `json:"state"` // "firing" | "resolved"
	Metric    string  `json:"metric"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Severity  string  `json:"severity"`
}

// RuleState is the live state of one rule after replaying the grid.
type RuleState struct {
	Rule     string  `json:"rule"`
	Metric   string  `json:"metric"`
	Severity string  `json:"severity"`
	State    string  `json:"state"` // "inactive" | "pending" | "firing"
	SinceT   float64 `json:"since_t"`
	Value    float64 `json:"value"` // aggregate at the last grid point
	Fired    int     `json:"fired"` // firing transitions over the run
}

// MarshalJSON emits null for a non-finite Value (no data in the last
// window) so the /alerts payload stays valid JSON.
func (rs RuleState) MarshalJSON() ([]byte, error) {
	type plain RuleState
	return json.Marshal(struct {
		plain
		Value any `json:"value"`
	}{plain: plain(rs), Value: finiteOrNil(rs.Value)})
}

// MarshalJSON mirrors RuleState's NaN handling for transitions.
func (tr Transition) MarshalJSON() ([]byte, error) {
	type plain Transition
	return json.Marshal(struct {
		plain
		Value any `json:"value"`
	}{plain: plain(tr), Value: finiteOrNil(tr.Value)})
}

func finiteOrNil(v float64) any {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return v
}

// Evaluate replays every rule over the snapshot's virtual-time grid
// (one point per sample slot) and returns the emitted transitions in
// (time, rule) order plus the final per-rule states in rule order.
func (e *Engine) Evaluate(snap tsdb.Snapshot) ([]Transition, []RuleState) {
	var trans []Transition
	states := make([]RuleState, 0, len(e.rules))
	for _, r := range e.rules {
		rt, rs := evalRule(r, snap)
		trans = append(trans, rt...)
		states = append(states, rs)
	}
	sort.SliceStable(trans, func(i, j int) bool {
		if trans[i].T != trans[j].T {
			return trans[i].T < trans[j].T
		}
		return trans[i].Rule < trans[j].Rule
	})
	return trans, states
}

func evalRule(r Rule, snap tsdb.Snapshot) ([]Transition, RuleState) {
	st := RuleState{Rule: r.Name, Metric: r.Metric, Severity: r.severity(),
		State: "inactive", Value: math.NaN()}
	slotDur := float64(snap.Stride) * snap.DT
	nSlots := int(snap.MaxTick/snap.Stride) + 1
	if nSlots > snap.SlotCap {
		nSlots = snap.SlotCap
	}

	// Merge matching series into slot-indexed aggregates.
	var kind obs.Kind
	var found bool
	var bounds []float64
	occ := make([]bool, nSlots)
	val := make([]float64, nSlots) // counter delta sum / gauge max
	var count []uint64
	var counts []uint64 // nSlots × (len(bounds)+1)
	for _, se := range snap.Series {
		if se.Name != r.Metric {
			continue
		}
		if !found {
			kind, bounds, found = se.Kind, se.Buckets, true
			if kind == obs.KindHistogram {
				count = make([]uint64, nSlots)
				counts = make([]uint64, nSlots*(len(bounds)+1))
			}
		}
		for _, p := range se.Points {
			// p.T is slotIndex·slotDur exactly; round back to the index.
			i := int(math.Round(p.T / slotDur))
			if i < 0 || i >= nSlots {
				continue
			}
			switch kind {
			case obs.KindCounter:
				val[i] += p.V
			case obs.KindGauge:
				// Gauge series merge across labels by max.
				if !occ[i] || p.V > val[i] {
					val[i] = p.V
				}
			case obs.KindHistogram:
				count[i] += p.Count
				nb := len(bounds) + 1
				for b := 0; b < nb && b < len(p.Counts); b++ {
					counts[i*nb+b] += p.Counts[b]
				}
			}
			occ[i] = true
		}
	}

	// Replay the grid through the state machine.
	wSlots := 0
	if slotDur > 0 {
		wSlots = int(r.WindowS / slotDur)
	}
	var trans []Transition
	cum := 0.0          // running counter total for agg "value"
	gauge := math.NaN() // latest gauge value for agg "value"
	scratch := make([]uint64, len(bounds)+1)
	for i := 0; i < nSlots; i++ {
		t := float64(i) * slotDur
		if occ[i] {
			if kind == obs.KindCounter {
				cum += val[i]
			}
			if kind == obs.KindGauge {
				gauge = val[i]
			}
		}
		v, ok := aggregate(r, kind, found, i, wSlots, slotDur, occ, val, count, counts, bounds, cum, gauge, scratch)
		st.Value = v
		cond := ok && compare(v, r.Op, r.Threshold)
		switch {
		case cond && st.State == "inactive":
			st.State, st.SinceT = "pending", t
			fallthrough
		case cond && st.State == "pending":
			if t-st.SinceT >= r.ForS {
				st.State, st.SinceT = "firing", t
				st.Fired++
				trans = append(trans, Transition{T: t, Rule: r.Name,
					State: "firing", Metric: r.Metric, Value: v,
					Threshold: r.Threshold, Severity: st.Severity})
			}
		case !cond && st.State == "firing":
			trans = append(trans, Transition{T: t, Rule: r.Name,
				State: "resolved", Metric: r.Metric, Value: v,
				Threshold: r.Threshold, Severity: st.Severity})
			st.State, st.SinceT = "inactive", t
		case !cond && st.State == "pending":
			// Flap suppressed: pending clears without a transition.
			st.State, st.SinceT = "inactive", t
		}
	}
	return trans, st
}

// aggregate computes the rule's windowed value at slot i; ok is false
// when the window holds no data or the agg does not fit the kind.
func aggregate(r Rule, kind obs.Kind, found bool, i, wSlots int, slotDur float64,
	occ []bool, val []float64, count, counts []uint64, bounds []float64,
	cum, gauge float64, scratch []uint64) (float64, bool) {
	if !found {
		return math.NaN(), false
	}
	lo := i - wSlots
	if lo < 0 {
		lo = 0
	}
	windowOcc := false
	for j := lo; j <= i; j++ {
		if occ[j] {
			windowOcc = true
			break
		}
	}
	switch r.Agg {
	case "value":
		switch kind {
		case obs.KindCounter:
			return cum, true
		case obs.KindGauge:
			return gauge, !math.IsNaN(gauge)
		}
	case "sum", "rate":
		if kind != obs.KindCounter {
			return math.NaN(), false
		}
		s := 0.0
		for j := lo; j <= i; j++ {
			s += val[j]
		}
		if r.Agg == "rate" {
			dur := float64(i-lo+1) * slotDur
			if dur <= 0 {
				return math.NaN(), false
			}
			return s / dur, windowOcc
		}
		return s, windowOcc
	case "count":
		if kind != obs.KindHistogram {
			return math.NaN(), false
		}
		var n uint64
		for j := lo; j <= i; j++ {
			n += count[j]
		}
		return float64(n), true
	case "p50", "p90", "p99":
		if kind != obs.KindHistogram {
			return math.NaN(), false
		}
		nb := len(bounds) + 1
		for b := 0; b < nb; b++ {
			scratch[b] = 0
		}
		for j := lo; j <= i; j++ {
			for b := 0; b < nb; b++ {
				scratch[b] += counts[j*nb+b]
			}
		}
		q := map[string]float64{"p50": 0.5, "p90": 0.9, "p99": 0.99}[r.Agg]
		return quantileOK(bounds, scratch, q)
	case "max", "min":
		if kind != obs.KindGauge {
			return math.NaN(), false
		}
		best := math.NaN()
		for j := lo; j <= i; j++ {
			if !occ[j] {
				continue
			}
			switch {
			case math.IsNaN(best):
				best = val[j]
			case r.Agg == "max" && val[j] > best:
				best = val[j]
			case r.Agg == "min" && val[j] < best:
				best = val[j]
			}
		}
		return best, !math.IsNaN(best)
	}
	return math.NaN(), false
}

func quantileOK(bounds []float64, counts []uint64, q float64) (float64, bool) {
	return tsdb.Quantile(bounds, counts, q)
}

func compare(v float64, op string, threshold float64) bool {
	switch op {
	case ">":
		return v > threshold
	case ">=":
		return v >= threshold
	case "<":
		return v < threshold
	case "<=":
		return v <= threshold
	}
	return false
}

// EncodeJSONL renders transitions as the deterministic alerts.jsonl
// artifact: one hand-rolled JSON object per line, lines sorted by
// (time, bytes).
func EncodeJSONL(trans []Transition) []byte {
	type line struct {
		t float64
		b []byte
	}
	lines := make([]line, len(trans))
	for i, tr := range trans {
		var b []byte
		b = append(b, `{"t":`...)
		b = appendFloat(b, tr.T)
		b = append(b, `,"rule":`...)
		b = strconv.AppendQuote(b, tr.Rule)
		b = append(b, `,"state":`...)
		b = strconv.AppendQuote(b, tr.State)
		b = append(b, `,"metric":`...)
		b = strconv.AppendQuote(b, tr.Metric)
		b = append(b, `,"value":`...)
		b = appendFloat(b, tr.Value)
		b = append(b, `,"threshold":`...)
		b = appendFloat(b, tr.Threshold)
		b = append(b, `,"severity":`...)
		b = strconv.AppendQuote(b, tr.Severity)
		b = append(b, "}\n"...)
		lines[i] = line{t: tr.T, b: b}
	}
	sort.SliceStable(lines, func(i, j int) bool {
		if lines[i].t != lines[j].t {
			return lines[i].t < lines[j].t
		}
		return string(lines[i].b) < string(lines[j].b)
	})
	var out []byte
	for _, l := range lines {
		out = append(out, l.b...)
	}
	return out
}

func appendFloat(b []byte, v float64) []byte {
	switch {
	case math.IsNaN(v):
		return append(b, `"NaN"`...)
	case math.IsInf(v, 1):
		return append(b, `"+Inf"`...)
	case math.IsInf(v, -1):
		return append(b, `"-Inf"`...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// Emit writes each transition into the active event log (category
// "alert"; firing at warn level, resolved at info), so alerts line up
// with the rest of the run's event stream.
func Emit(trans []Transition) {
	if !event.Enabled() {
		return
	}
	for _, tr := range trans {
		lvl := event.LevelInfo
		if tr.State == "firing" {
			lvl = event.LevelWarn
		}
		event.Emit(tr.T, lvl, "alert", tr.Rule+" "+tr.State,
			event.S("metric", tr.Metric),
			event.F("value", tr.Value),
			event.F("threshold", tr.Threshold),
			event.S("severity", tr.Severity))
	}
}
