package alert_test

import (
	"bytes"
	"strings"
	"testing"

	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/obs/alert"
	"github.com/mmtag/mmtag/internal/obs/event"
	"github.com/mmtag/mmtag/internal/obs/tsdb"
)

// sampled builds a sampler at dt = 1 s and applies fn to a registry
// wired into it.
func sampled(t *testing.T, fn func(reg *obs.Registry)) tsdb.Snapshot {
	t.Helper()
	reg := obs.NewRegistry()
	s, err := tsdb.New(1.0)
	if err != nil {
		t.Fatal(err)
	}
	reg.SetSampleSink(s)
	fn(reg)
	return s.Snapshot()
}

func engine(t *testing.T, rules ...alert.Rule) *alert.Engine {
	t.Helper()
	e, err := alert.New(rules)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestFiringAndResolve(t *testing.T) {
	snap := sampled(t, func(reg *obs.Registry) {
		// Errors in slots 2..4, quiet before and after (slot 8 keeps
		// the grid alive past the resolution point).
		for _, tt := range []float64{2, 3, 4} {
			reg.AddAt(tt, "errs_total", 5)
		}
		reg.AddAt(8, "ok_total", 1)
	})
	e := engine(t, alert.Rule{Name: "errs", Metric: "errs_total",
		Agg: "sum", WindowS: 0, Op: ">", Threshold: 0})
	trans, states := e.Evaluate(snap)
	if len(trans) != 2 {
		t.Fatalf("want firing+resolved, got %+v", trans)
	}
	if trans[0].State != "firing" || trans[0].T != 2 {
		t.Fatalf("firing transition wrong: %+v", trans[0])
	}
	if trans[1].State != "resolved" || trans[1].T != 5 {
		t.Fatalf("resolved transition wrong: %+v", trans[1])
	}
	if states[0].State != "inactive" || states[0].Fired != 1 {
		t.Fatalf("final state wrong: %+v", states[0])
	}
}

func TestForDurationHoldsBeforeFiring(t *testing.T) {
	snap := sampled(t, func(reg *obs.Registry) {
		for tt := 1.0; tt <= 6; tt++ {
			reg.AddAt(tt, "errs_total", 1)
		}
		reg.AddAt(9, "ok_total", 1)
	})
	e := engine(t, alert.Rule{Name: "errs", Metric: "errs_total",
		Agg: "sum", WindowS: 0, Op: ">", Threshold: 0, ForS: 3})
	trans, _ := e.Evaluate(snap)
	if len(trans) == 0 || trans[0].State != "firing" {
		t.Fatalf("rule should eventually fire, got %+v", trans)
	}
	// Pending since t=1; fires once the condition has held ForS=3 s.
	if trans[0].T != 4 {
		t.Fatalf("fired at t=%g, want 4 (pending since 1 + for 3)", trans[0].T)
	}
}

func TestFlapSuppression(t *testing.T) {
	// Condition true for 2 s at a time, never holding the 3 s
	// for-duration: the rule must stay silent — no transitions at all.
	snap := sampled(t, func(reg *obs.Registry) {
		for _, tt := range []float64{1, 2, 5, 6, 9, 10} {
			reg.AddAt(tt, "errs_total", 1)
		}
		reg.AddAt(12, "ok_total", 1)
	})
	e := engine(t, alert.Rule{Name: "flappy", Metric: "errs_total",
		Agg: "sum", WindowS: 0, Op: ">", Threshold: 0, ForS: 3})
	trans, states := e.Evaluate(snap)
	if len(trans) != 0 {
		t.Fatalf("flapping condition below for-duration must suppress transitions, got %+v", trans)
	}
	if states[0].State == "firing" {
		t.Fatalf("flappy rule must not end firing: %+v", states[0])
	}
}

func TestHistogramQuantileRule(t *testing.T) {
	obs.RegisterBuckets("lat_seconds", 1, 2, 4, 8)
	snap := sampled(t, func(reg *obs.Registry) {
		for i := 0; i < 10; i++ {
			reg.ObserveAt(1, "lat_seconds", 0.5) // fast
		}
		for i := 0; i < 10; i++ {
			reg.ObserveAt(5, "lat_seconds", 7) // slow burst
		}
	})
	e := engine(t, alert.Rule{Name: "p99", Metric: "lat_seconds",
		Agg: "p99", WindowS: 0, Op: ">", Threshold: 2})
	trans, _ := e.Evaluate(snap)
	if len(trans) != 1 || trans[0].State != "firing" || trans[0].T != 5 {
		t.Fatalf("p99 rule transitions = %+v, want single firing at t=5", trans)
	}
}

func TestEmptyHistogramWindowNeverFires(t *testing.T) {
	// The metric never records a sample: quantile aggregation has no
	// data, so the rule must stay inactive at every grid point.
	snap := sampled(t, func(reg *obs.Registry) {
		reg.AddAt(3, "other_total", 1)
	})
	e := engine(t, alert.Rule{Name: "p99", Metric: "lat_seconds",
		Agg: "p99", WindowS: 10, Op: ">=", Threshold: 0})
	trans, states := e.Evaluate(snap)
	if len(trans) != 0 || states[0].State != "inactive" {
		t.Fatalf("no-data rule must stay inactive: %+v %+v", trans, states)
	}
}

func TestEncodeJSONLOrderAndShape(t *testing.T) {
	trs := []alert.Transition{
		{T: 5, Rule: "b", State: "resolved", Metric: "m", Value: 1, Threshold: 2, Severity: "warn"},
		{T: 2, Rule: "a", State: "firing", Metric: "m", Value: 3, Threshold: 2, Severity: "warn"},
	}
	out := alert.EncodeJSONL(trs)
	lines := strings.Split(strings.TrimRight(string(out), "\n"), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], `"t":2`) {
		t.Fatalf("lines must sort by time:\n%s", out)
	}
	want := `{"t":2,"rule":"a","state":"firing","metric":"m","value":3,"threshold":2,"severity":"warn"}`
	if lines[0] != want {
		t.Fatalf("line = %s\nwant %s", lines[0], want)
	}
	if !bytes.Equal(out, alert.EncodeJSONL(trs)) {
		t.Fatal("encoding must be deterministic")
	}
}

func TestEmitWritesEventLog(t *testing.T) {
	log := event.Enable(1 << 10)
	defer event.Disable()
	alert.Emit([]alert.Transition{
		{T: 1, Rule: "r", State: "firing", Metric: "m", Value: 3, Threshold: 2, Severity: "warn"},
		{T: 2, Rule: "r", State: "resolved", Metric: "m", Value: 0, Threshold: 2, Severity: "warn"},
	})
	got := string(bytes.Join(log.Lines(), []byte("\n")))
	for _, want := range []string{`"cat":"alert"`, `r firing`, `r resolved`, `"warn"`} {
		if !strings.Contains(got, want) {
			t.Fatalf("event log missing %q:\n%s", want, got)
		}
	}
}

func TestLoadRulesValidates(t *testing.T) {
	if _, err := alert.LoadRules([]byte(`[{"name":"x","metric":"m","agg":"median","op":">","threshold":1}]`)); err == nil {
		t.Fatal("unknown agg must be rejected")
	}
	if _, err := alert.LoadRules([]byte(`[]`)); err == nil {
		t.Fatal("empty rules must be rejected")
	}
	rules, err := alert.LoadRules([]byte(`{"schema":"mmtag-alert-rules/1","rules":[{"name":"x","metric":"m","agg":"sum","op":">","threshold":1}]}`))
	if err != nil || len(rules) != 1 {
		t.Fatalf("wrapped rules doc: %v %+v", err, rules)
	}
}

func TestDefaultRulesValidate(t *testing.T) {
	for _, r := range alert.DefaultRules() {
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if alert.Default() == nil {
		t.Fatal("default engine")
	}
}

func TestEvaluateDeterministicAcrossSnapshots(t *testing.T) {
	build := func() tsdb.Snapshot {
		return sampled(t, func(reg *obs.Registry) {
			for i := 0; i < 50; i++ {
				reg.AddAt(float64(i%13), "errs_total", float64(i%2))
			}
		})
	}
	e := alert.Default()
	a, _ := e.Evaluate(build())
	b, _ := e.Evaluate(build())
	if !bytes.Equal(alert.EncodeJSONL(a), alert.EncodeJSONL(b)) {
		t.Fatal("evaluation must be a pure function of the snapshot")
	}
}
