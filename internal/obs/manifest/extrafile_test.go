package manifest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteExtraFiles(t *testing.T) {
	dir := t.TempDir()
	reg, log := populate()
	extras := []ExtraFile{
		{Name: "flight_0001_crc_fail.iq", Data: []byte("iq-capture-bytes")},
		{Name: "flight.json", Data: []byte(`[{"file":"flight_0001_crc_fail.iq"}]`)},
	}
	m, err := Write(dir, RunInfo{Experiment: "arq"}, reg, log, extras...)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range extras {
		got, err := os.ReadFile(filepath.Join(dir, x.Name))
		if err != nil {
			t.Fatalf("extra file not written: %v", err)
		}
		if string(got) != string(x.Data) {
			t.Fatalf("%s content mismatch", x.Name)
		}
		fd, ok := m.Files[x.Name]
		if !ok {
			t.Fatalf("%s not digested into the manifest", x.Name)
		}
		if fd.Bytes != len(x.Data) || len(fd.SHA256) != 64 {
			t.Fatalf("%s digest malformed: %+v", x.Name, fd)
		}
	}
	if err := Verify(dir); err != nil {
		t.Fatalf("fresh run with extras fails verify: %v", err)
	}
}

func TestVerifyCatchesTamperedExtra(t *testing.T) {
	dir := t.TempDir()
	reg, log := populate()
	if _, err := Write(dir, RunInfo{Experiment: "arq"}, reg, log,
		ExtraFile{Name: "flight_0001_sync_loss.iq", Data: []byte("original")}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "flight_0001_sync_loss.iq"), []byte("tampered!"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := Verify(dir)
	if err == nil {
		t.Fatal("verify accepted a tampered extra file")
	}
	if !strings.Contains(err.Error(), "flight_0001_sync_loss.iq") {
		t.Fatalf("verify error does not name the bad file: %v", err)
	}
}

func TestWriteRejectsPathyExtraNames(t *testing.T) {
	reg, log := populate()
	for _, name := range []string{"", "sub/flight.iq", "../escape.iq"} {
		if _, err := Write(t.TempDir(), RunInfo{}, reg, log, ExtraFile{Name: name, Data: []byte("x")}); err == nil {
			t.Errorf("name %q accepted", name)
		}
	}
}
