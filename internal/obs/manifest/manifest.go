// Package manifest makes every experiment run a self-describing,
// reproducible artifact. Given a run directory (-rundir on cmd/mmtag)
// it writes:
//
//	manifest.json   what ran: experiment, seed, workers, Go version,
//	                wall + virtual duration, store sizes, and a SHA-256
//	                digest of every sibling file
//	metrics.json    the obs.Snapshot at end of run
//	trace.json      the finished spans (+ drop counter)
//	events.jsonl    the structured event log, in deterministic order
//
// events.jsonl is byte-identical for any -workers count (the event
// package's determinism contract), so two runs of the same experiment
// at the same seed can be diffed event-for-event. manifest.json carries
// the wall-clock fields, and the span-bearing files (trace.json, and
// metrics.json via the snapshot's embedded spans) ride the registry
// clock — wall time by default — so those may differ between runs.
package manifest

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/obs/event"
)

// Schema identifies the manifest format.
const Schema = "mmtag-run/1"

// RunInfo is what the caller knows about the run.
type RunInfo struct {
	// Experiment is the subcommand or workload name ("arq", "all").
	Experiment string
	// Seed is the randomness seed the run used.
	Seed uint64
	// Workers is the parallel worker count.
	Workers int
	// Args is the full command line (os.Args), for reproduction.
	Args []string
	// Started is the wall-clock start of the run.
	Started time.Time
	// Extra carries free-form key/value notes (flag values, build tags).
	Extra map[string]string
}

// FileDigest records one written artifact.
type FileDigest struct {
	// Bytes is the file size.
	Bytes int `json:"bytes"`
	// SHA256 is the hex digest of the contents.
	SHA256 string `json:"sha256"`
}

// Manifest is the manifest.json body.
type Manifest struct {
	Schema     string            `json:"schema"`
	Experiment string            `json:"experiment"`
	Seed       uint64            `json:"seed"`
	Workers    int               `json:"workers"`
	Args       []string          `json:"args,omitempty"`
	Extra      map[string]string `json:"extra,omitempty"`
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	NumCPU     int               `json:"num_cpu"`
	// StartedUTC / WallDurationS are wall-clock accounting — the
	// non-reproducible part of the record, quarantined here so the
	// sibling files stay diffable.
	StartedUTC    string  `json:"started_utc"`
	WallDurationS float64 `json:"wall_duration_s"`
	// VirtualDurationS is the largest virtual timestamp in the event
	// log: how much simulated time the run covered. Only events are
	// consulted — they carry virtual time by contract, while spans ride
	// the registry clock, which defaults to the wall clock.
	VirtualDurationS float64 `json:"virtual_duration_s"`
	// MetricSeries / Spans / Events size the captured stores.
	MetricSeries  int    `json:"metric_series"`
	Spans         int    `json:"spans"`
	DroppedSpans  uint64 `json:"dropped_spans,omitempty"`
	Events        int    `json:"events"`
	DroppedEvents uint64 `json:"dropped_events,omitempty"`
	// Files digests every sibling artifact written with the manifest.
	Files map[string]FileDigest `json:"files"`
}

// ExtraFile is an additional artifact to archive alongside the standard
// telemetry files — e.g. the signal flight recorder's IQ captures. Each
// is digested into the manifest the same way, so Verify covers it.
type ExtraFile struct {
	// Name is the file name within the run directory (no path separators).
	Name string
	// Data is the file contents.
	Data []byte
}

// Write captures the registry and event log (either may be nil) into
// dir, creating it if needed, and returns the manifest it wrote. Any
// extra files are written and digested alongside the standard set.
func Write(dir string, info RunInfo, reg *obs.Registry, log *event.Log, extra ...ExtraFile) (Manifest, error) {
	m := Manifest{
		Schema:     Schema,
		Experiment: info.Experiment,
		Seed:       info.Seed,
		Workers:    info.Workers,
		Args:       info.Args,
		Extra:      info.Extra,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Files:      map[string]FileDigest{},
	}
	if !info.Started.IsZero() {
		m.StartedUTC = info.Started.UTC().Format(time.RFC3339Nano)
		m.WallDurationS = time.Since(info.Started).Seconds()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return m, fmt.Errorf("manifest: %w", err)
	}

	write := func(name string, data []byte) error {
		sum := sha256.Sum256(data)
		m.Files[name] = FileDigest{Bytes: len(data), SHA256: hex.EncodeToString(sum[:])}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return fmt.Errorf("manifest: write %s: %w", name, err)
		}
		return nil
	}

	if reg != nil {
		snap := reg.Snapshot()
		m.MetricSeries = snap.SeriesCount()
		m.Spans = len(snap.Spans)
		m.DroppedSpans = snap.DroppedSpans
		data, err := snap.JSON()
		if err != nil {
			return m, fmt.Errorf("manifest: metrics snapshot: %w", err)
		}
		if err := write("metrics.json", append(data, '\n')); err != nil {
			return m, err
		}
		trace := struct {
			Spans        []obs.SpanRecord `json:"spans"`
			DroppedSpans uint64           `json:"dropped_spans,omitempty"`
		}{Spans: snap.Spans, DroppedSpans: snap.DroppedSpans}
		if trace.Spans == nil {
			trace.Spans = []obs.SpanRecord{}
		}
		tdata, err := json.MarshalIndent(trace, "", "  ")
		if err != nil {
			return m, fmt.Errorf("manifest: trace: %w", err)
		}
		if err := write("trace.json", append(tdata, '\n')); err != nil {
			return m, err
		}
	}
	if log != nil {
		m.Events = log.Len()
		m.DroppedEvents, _ = log.Dropped()
		if t := log.MaxTime(); t > m.VirtualDurationS {
			m.VirtualDurationS = t
		}
		var buf bytes.Buffer
		if err := log.WriteJSONL(&buf); err != nil {
			return m, fmt.Errorf("manifest: events: %w", err)
		}
		if err := write("events.jsonl", buf.Bytes()); err != nil {
			return m, err
		}
	}

	for _, x := range extra {
		if x.Name == "" || filepath.Base(x.Name) != x.Name {
			return m, fmt.Errorf("manifest: extra file name %q must be a bare file name", x.Name)
		}
		if err := write(x.Name, x.Data); err != nil {
			return m, err
		}
	}

	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return m, fmt.Errorf("manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), append(data, '\n'), 0o644); err != nil {
		return m, fmt.Errorf("manifest: write manifest.json: %w", err)
	}
	return m, nil
}

// Read loads a manifest.json from a run directory.
func Read(dir string) (Manifest, error) {
	var m Manifest
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("manifest: %s: %w", dir, err)
	}
	if m.Schema != Schema {
		return m, fmt.Errorf("manifest: %s: schema %q, want %q", dir, m.Schema, Schema)
	}
	return m, nil
}

// Verify re-hashes every file the manifest lists and reports the first
// mismatch — the integrity check for an archived run directory.
func Verify(dir string) error {
	m, err := Read(dir)
	if err != nil {
		return err
	}
	for name, want := range m.Files {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("manifest: %w", err)
		}
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != want.SHA256 {
			return fmt.Errorf("manifest: %s: digest mismatch (have %s, manifest says %s)",
				name, got, want.SHA256)
		}
	}
	return nil
}
