package manifest

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/obs/event"
)

// populate fills a registry and an event log with a small deterministic
// workload.
func populate() (*obs.Registry, *event.Log) {
	reg := obs.NewRegistry()
	reg.Add("core_bursts_attempted_total", 3, obs.L("bw", "2GHz"))
	reg.Observe("core_snr_est_db", 12.5, obs.L("bw", "2GHz"))
	sp := reg.StartSpanAt("mac.arq", 0.5)
	sp.EndAt(1.25)
	log := event.New(0)
	log.Emit(0.5, event.LevelInfo, "mac.arq", "retry", event.D("attempt", 1))
	log.Emit(2.0, event.LevelInfo, "mac.arq", "deliver", event.D("frame", 0))
	return reg, log
}

func TestWriteFullRun(t *testing.T) {
	dir := t.TempDir()
	reg, log := populate()
	info := RunInfo{
		Experiment: "arq",
		Seed:       42,
		Workers:    8,
		Args:       []string{"mmtag", "-seed", "42"},
		Started:    time.Now().Add(-time.Second),
		Extra:      map[string]string{"points": "9"},
	}
	m, err := Write(dir, info, reg, log)
	if err != nil {
		t.Fatal(err)
	}
	if m.Schema != Schema || m.Experiment != "arq" || m.Seed != 42 || m.Workers != 8 {
		t.Fatalf("manifest header: %+v", m)
	}
	if m.WallDurationS <= 0 || m.StartedUTC == "" {
		t.Fatalf("wall clock fields: %+v", m)
	}
	// Virtual duration is the event log's max timestamp; span ends are
	// excluded (they ride the wall clock by default).
	if m.VirtualDurationS != 2.0 {
		t.Fatalf("virtual duration = %g, want 2", m.VirtualDurationS)
	}
	if m.MetricSeries == 0 || m.Spans != 1 || m.Events != 2 {
		t.Fatalf("store sizes: %+v", m)
	}
	for _, name := range []string{"manifest.json", "metrics.json", "trace.json", "events.jsonl"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
	}
	// Every sibling is digested; the manifest never digests itself.
	if len(m.Files) != 3 {
		t.Fatalf("digests: %+v", m.Files)
	}
	if _, ok := m.Files["manifest.json"]; ok {
		t.Fatal("manifest.json must not digest itself")
	}

	// metrics.json round-trips through the Snapshot unmarshaller.
	data, err := os.ReadFile(filepath.Join(dir, "metrics.json"))
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics.json: %v", err)
	}
	if snap.SeriesCount() != m.MetricSeries {
		t.Fatalf("metrics.json series = %d, manifest says %d", snap.SeriesCount(), m.MetricSeries)
	}

	// events.jsonl matches the log's own exposition byte for byte.
	edata, err := os.ReadFile(filepath.Join(dir, "events.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := log.WriteJSONL(&want); err != nil {
		t.Fatal(err)
	}
	if string(edata) != want.String() {
		t.Fatalf("events.jsonl differs from log exposition:\n%s", edata)
	}
}

func TestReadAndVerify(t *testing.T) {
	dir := t.TempDir()
	reg, log := populate()
	if _, err := Write(dir, RunInfo{Experiment: "all", Seed: 1, Workers: 1}, reg, log); err != nil {
		t.Fatal(err)
	}
	m, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Experiment != "all" {
		t.Fatalf("read back: %+v", m)
	}
	if err := Verify(dir); err != nil {
		t.Fatalf("verify clean dir: %v", err)
	}
	// Corrupt one artifact; Verify must name it.
	path := filepath.Join(dir, "events.jsonl")
	if err := os.WriteFile(path, []byte("tampered\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = Verify(dir)
	if err == nil || !strings.Contains(err.Error(), "events.jsonl") {
		t.Fatalf("verify after tamper: %v", err)
	}
}

func TestReadRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	body := []byte(`{"schema":"mmtag-run/999"}`)
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), body, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(dir); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("want schema error, got %v", err)
	}
}

func TestWriteNilStores(t *testing.T) {
	dir := t.TempDir()
	m, err := Write(dir, RunInfo{Experiment: "empty"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Files) != 0 {
		t.Fatalf("files: %+v", m.Files)
	}
	if m.MetricSeries != 0 || m.Events != 0 || m.VirtualDurationS != 0 {
		t.Fatalf("nil stores: %+v", m)
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatal(err)
	}
	if err := Verify(dir); err != nil {
		t.Fatal(err)
	}
}

// TestEventsDeterministicAcrossWrites: the same log written into two run
// directories produces byte-identical events.jsonl with equal digests —
// the property the determinism CI job diffs across -workers counts.
func TestEventsDeterministicAcrossWrites(t *testing.T) {
	_, log := populate()
	d1, d2 := t.TempDir(), t.TempDir()
	m1, err := Write(d1, RunInfo{Experiment: "a"}, nil, log)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Write(d2, RunInfo{Experiment: "a"}, nil, log)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Files["events.jsonl"] != m2.Files["events.jsonl"] {
		t.Fatalf("digests differ: %+v vs %+v", m1.Files, m2.Files)
	}
}
