package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	r.Add("bursts_total", 1)
	r.Add("bursts_total", 2)
	r.Add("bursts_total", -5) // negative deltas ignored: counters are monotone
	r.Set("queue_depth", 7)
	r.Set("queue_depth", 3)
	snap := r.Snapshot()
	if v, ok := snap.Counter("bursts_total"); !ok || v != 3 {
		t.Errorf("counter = %g, %v", v, ok)
	}
	if v, ok := snap.Counter("queue_depth"); !ok || v != 3 {
		t.Errorf("gauge = %g, %v", v, ok)
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	r.Add("reads_total", 1, L("bw", "30MHz"))
	r.Add("reads_total", 1, L("bw", "2GHz"))
	r.Add("reads_total", 1, L("bw", "2GHz"))
	// Label order must not matter for identity.
	r.Add("multi_total", 1, L("a", "1"), L("b", "2"))
	r.Add("multi_total", 1, L("b", "2"), L("a", "1"))
	snap := r.Snapshot()
	if v, _ := snap.Counter("reads_total", L("bw", "30MHz")); v != 1 {
		t.Errorf("30MHz series = %g", v)
	}
	if v, _ := snap.Counter("reads_total", L("bw", "2GHz")); v != 2 {
		t.Errorf("2GHz series = %g", v)
	}
	if v, _ := snap.Counter("multi_total", L("a", "1"), L("b", "2")); v != 2 {
		t.Errorf("label order split a series: %g", v)
	}
	// Label-less lookup sums the whole family.
	if v, ok := snap.Counter("reads_total"); !ok || v != 3 {
		t.Errorf("family sum = %g, %v; want 3, true", v, ok)
	}
	if _, ok := snap.Counter("absent_total"); ok {
		t.Error("absent family reported ok")
	}
}

func TestHistogramBucketsAndNaN(t *testing.T) {
	RegisterBuckets("snr_db", -10, 0, 10, 20)
	r := NewRegistry()
	for _, v := range []float64{-15, -10, -3, 0, 5, 15, 25, math.NaN()} {
		r.Observe("snr_db", v)
	}
	snap := r.Snapshot()
	var m *MetricSnapshot
	for i := range snap.Metrics {
		if snap.Metrics[i].Name == "snr_db" {
			m = &snap.Metrics[i]
		}
	}
	if m == nil {
		t.Fatal("histogram missing from snapshot")
	}
	if m.Count != 7 {
		t.Errorf("NaN folded into the distribution: count = %d", m.Count)
	}
	if m.Min != -15 || m.Max != 25 {
		t.Errorf("min/max = %g/%g", m.Min, m.Max)
	}
	if math.IsNaN(m.Sum) {
		t.Error("NaN poisoned the sum")
	}
	// Cumulative buckets: ≤-10 → 2, ≤0 → 4, ≤10 → 5, ≤20 → 6, +Inf → 7.
	want := []uint64{2, 4, 5, 6, 7}
	for i, b := range m.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, b.Count, want[i])
		}
	}
	// The dropped NaN must be flagged, not silent.
	if v, ok := snap.Counter(NaNCounterName, L("metric", "snr_db")); !ok || v != 1 {
		t.Errorf("NaN drop counter = %g, %v", v, ok)
	}
}

func TestPrometheusText(t *testing.T) {
	RegisterBuckets("dur_s", 0.001, 0.1)
	r := NewRegistry()
	r.Add("ops_total", 2, L("kind", "scan"))
	r.Set("depth", 4)
	r.Observe("dur_s", 0.05)
	text := r.PrometheusText()
	for _, want := range []string{
		"# TYPE ops_total counter",
		`ops_total{kind="scan"} 2`,
		"# TYPE depth gauge",
		"depth 4",
		"# TYPE dur_s histogram",
		`dur_s_bucket{le="0.001"} 0`,
		`dur_s_bucket{le="0.1"} 1`,
		`dur_s_bucket{le="+Inf"} 1`,
		"dur_s_sum 0.05",
		"dur_s_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
}

func TestJSONSnapshotRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Add("a_total", 1)
	r.Observe("h", 0.5)
	sp := r.StartSpanAt("run", 1.0)
	sp.SetAttr("exp", "test")
	sp.EndAt(3.5)
	raw, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, raw)
	}
	if _, ok := back["metrics"]; !ok {
		t.Error("no metrics key")
	}
	if _, ok := back["spans"]; !ok {
		t.Error("no spans key")
	}
}

func TestSpanTreeAndVirtualTime(t *testing.T) {
	r := NewRegistry()
	now := 10.0
	r.SetClock(func() float64 { return now })
	root := r.StartSpan("sim.run")
	now = 11
	child := root.StartChild("burst", L("bw", "2GHz"))
	now = 12
	child.End()
	now = 15
	root.End()
	spans, dropped := r.Spans()
	if dropped != 0 || len(spans) != 2 {
		t.Fatalf("spans = %d, dropped = %d", len(spans), dropped)
	}
	if spans[0].Name != "burst" || spans[0].ParentID != spans[1].ID {
		t.Errorf("parent link broken: %+v", spans)
	}
	if spans[0].DurS != 1 || spans[1].DurS != 5 {
		t.Errorf("durations %g, %g", spans[0].DurS, spans[1].DurS)
	}
}

func TestSpanBufferBounded(t *testing.T) {
	r := NewRegistry()
	r.SetMaxSpans(2)
	for i := 0; i < 5; i++ {
		r.StartSpanAt("s", 0).EndAt(1)
	}
	spans, dropped := r.Spans()
	if len(spans) != 2 || dropped != 3 {
		t.Errorf("kept %d, dropped %d", len(spans), dropped)
	}
}

func TestNopAndNilSpanAreSafe(t *testing.T) {
	var n Nop
	n.Add("x", 1)
	n.Set("x", 1)
	n.Observe("x", 1)
	sp := n.StartSpan("x")
	sp.SetAttr("k", "v")
	sp.StartChild("y").End()
	sp.End()
	if n.Enabled() {
		t.Error("Nop claims enabled")
	}
	// Package-level helpers with no registry installed.
	Disable()
	Inc("x")
	Observe("x", 1)
	Set("x", 1)
	StartSpan("x").End()
	if Enabled() || Active() != nil {
		t.Error("registry should be absent")
	}
	if _, ok := Default().(Nop); !ok {
		t.Error("default recorder should be Nop when disabled")
	}
}

func TestEnableDisableDefault(t *testing.T) {
	r := Enable()
	defer Disable()
	Inc("facade_total")
	Add("facade_total", 2)
	if v, ok := r.Snapshot().Counter("facade_total"); !ok || v != 3 {
		t.Errorf("default-recorder counter = %g, %v", v, ok)
	}
	if Default() != Recorder(r) {
		t.Error("Default should be the installed registry")
	}
}

// TestConcurrentWriters hammers one registry from many goroutines; run
// with -race (CI does) to verify the locking.
func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lbl := L("g", string(rune('a'+g%4)))
			for i := 0; i < perG; i++ {
				r.Add("conc_total", 1, lbl)
				r.Set("conc_gauge", float64(i))
				r.Observe("conc_hist", float64(i%7))
				sp := r.StartSpan("conc.span", lbl)
				sp.SetAttr("i", "x")
				sp.End()
				if i%100 == 0 {
					_ = r.Snapshot()
					_ = r.PrometheusText()
				}
			}
		}(g)
	}
	wg.Wait()
	snap := r.Snapshot()
	var total float64
	for _, m := range snap.Metrics {
		if m.Name == "conc_total" {
			total += m.Value
		}
	}
	if total != goroutines*perG {
		t.Errorf("lost counter increments: %g", total)
	}
	var hist *MetricSnapshot
	for i := range snap.Metrics {
		if snap.Metrics[i].Name == "conc_hist" {
			hist = &snap.Metrics[i]
		}
	}
	if hist == nil || hist.Count != goroutines*perG {
		t.Errorf("lost histogram samples: %+v", hist)
	}
}
