package signal

import (
	"math"

	"github.com/mmtag/mmtag/internal/iqfile"
)

// entry is one flight-recorder ring slot. The iq buffer is reused
// across overwrites so a warmed ring records with zero allocations.
type entry struct {
	used         bool
	seq          uint64
	trigger      string
	iq           []complex128
	sampleRateHz float64
	carrierHz    float64
	bandwidth    string
	mcs          string
	snrDB        float64
}

// recorder is a bounded ring of failing-burst IQ captures. It is not
// self-locking: the owning Tap serializes access under its mutex.
type recorder struct {
	cap      int
	entries  []entry
	next     int
	triggers uint64
}

func newRecorder(k int) *recorder {
	return &recorder{cap: k, entries: make([]entry, k)}
}

func (r *recorder) record(trigger string, iq []complex128, sampleRateHz, carrierHz float64, bandwidth, mcs string, snrDB float64) {
	r.triggers++
	e := &r.entries[r.next]
	r.next = (r.next + 1) % r.cap
	e.used = true
	e.seq = r.triggers
	e.trigger = trigger
	e.iq = append(e.iq[:0], iq...)
	e.sampleRateHz = sampleRateHz
	e.carrierHz = carrierHz
	e.bandwidth = bandwidth
	e.mcs = mcs
	// Sync losses have no SNR estimate; store 0 (dropped by omitempty)
	// rather than NaN, which JSON cannot represent.
	if math.IsNaN(snrDB) || math.IsInf(snrDB, 0) {
		snrDB = 0
	}
	e.snrDB = snrDB
}

func (r *recorder) occupied() int {
	n := 0
	for i := range r.entries {
		if r.entries[i].used {
			n++
		}
	}
	return n
}

// files serializes the retained captures, oldest first, plus the
// flight.json index.
func (r *recorder) files() ([]File, error) {
	// Ring order: the oldest retained entry is at next when the ring has
	// wrapped, else at 0.
	var ordered []*entry
	for i := 0; i < r.cap; i++ {
		e := &r.entries[(r.next+i)%r.cap]
		if e.used {
			ordered = append(ordered, e)
		}
	}
	if len(ordered) == 0 {
		return nil, nil
	}
	files := make([]File, 0, len(ordered)+1)
	metas := make([]flightMeta, 0, len(ordered))
	for _, e := range ordered {
		name := flightName(e.seq, e.trigger)
		data, err := iqfile.Encode(iqfile.Header{
			SampleRateHz: e.sampleRateHz,
			CarrierHz:    e.carrierHz,
			Samples:      uint64(len(e.iq)),
		}, e.iq)
		if err != nil {
			return nil, err
		}
		files = append(files, File{Name: name, Data: data})
		metas = append(metas, flightMeta{
			File:         name,
			Trigger:      e.trigger,
			Seq:          e.seq,
			Samples:      len(e.iq),
			SampleRateHz: e.sampleRateHz,
			CarrierHz:    e.carrierHz,
			Bandwidth:    e.bandwidth,
			MCS:          e.mcs,
			SNRdB:        e.snrDB,
		})
	}
	idx, err := marshalFlightIndex(metas)
	if err != nil {
		return nil, err
	}
	files = append(files, File{Name: "flight.json", Data: idx})
	return files, nil
}
