// Package signal is the signal-level observability layer: a set of tap
// points threaded through the DSP/PHY/reader/core hot path that record
// per-burst scalar telemetry (SNR, EVM, peak/RMS, sync offset, soft
// margins) into obs histograms, keep a coherent snapshot of the most
// recent burst for the live dashboard, and drive a bounded flight
// recorder of full IQ captures for failing bursts.
//
// The package follows the same atomic active-store pattern as obs and
// obs/event: when disabled, every hook site in the hot path reduces to a
// single atomic load and nil check; when enabled, the hooks perform
// pure scalar passes plus unlabeled obs.Observe calls and reuse all
// internal buffers, adding 0 allocs/op in steady state.
package signal

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/phy"
)

// Flight-recorder trigger kinds. The strings are stable identifiers:
// they appear in capture filenames and in the flight.json index, so they
// are restricted to [a-z_].
const (
	TriggerSyncLoss      = "sync_loss"
	TriggerDecodeError   = "decode_error"
	TriggerCRCFail       = "crc_fail"
	TriggerARQResidual   = "arq_residual"
	TriggerRateDownshift = "rate_downshift"
)

// recentN is the depth of the per-scalar history rings feeding the
// dashboard sparklines.
const recentN = 128

func init() {
	obs.RegisterBuckets("signal_snr_est_db", -10, -5, 0, 5, 10, 15, 20, 25, 30, 40)
	obs.RegisterBuckets("signal_evm_pct", 1, 2, 3, 5, 8, 12, 20, 30, 50, 100)
	obs.RegisterBuckets("signal_min_margin", 0.05, 0.1, 0.25, 0.5, 0.75, 1, 1.25, 1.5, 2, 3)
	obs.RegisterBuckets("signal_mean_margin", 0.05, 0.1, 0.25, 0.5, 0.75, 1, 1.25, 1.5, 2, 3)
	obs.RegisterBuckets("signal_tx_papr_db", 0.5, 1, 1.5, 2, 2.5, 3, 4, 5, 6, 8)
	obs.RegisterBuckets("signal_rx_rms_dbm", -120, -110, -100, -90, -80, -70, -60, -50, -40, -30)
	obs.RegisterBuckets("signal_sync_offset_samples", 16, 32, 48, 64, 96, 128, 192, 256, 512, 1024)
}

// ring is a fixed-depth scalar history buffer (oldest overwritten first).
type ring struct {
	buf [recentN]float64
	n   uint64 // total values ever pushed
}

func (r *ring) push(v float64) {
	r.buf[r.n%recentN] = v
	r.n++
}

// values appends the ring contents, oldest first, to dst.
func (r *ring) values(dst []float64) []float64 {
	count := r.n
	if count > recentN {
		count = recentN
	}
	start := r.n - count
	for i := start; i < r.n; i++ {
		dst = append(dst, r.buf[i%recentN])
	}
	return dst
}

// Burst is the per-burst record committed by core after a decode
// attempt. Slice fields may be workspace-backed: Commit copies them.
type Burst struct {
	// IQ is the received burst (channel output after leakage calibration).
	IQ []complex128
	// SampleRateHz / CarrierHz describe the capture for iqfile replay.
	SampleRateHz float64
	CarrierHz    float64
	// Bandwidth and MCS label the receiver configuration.
	Bandwidth string
	MCS       string
	// SyncOffset is the detected burst start (samples); SyncMetric the
	// preamble correlation metric.
	SyncOffset int
	SyncMetric float64
	// Threshold is the adaptive OOK slicer threshold (0 for 4-ASK).
	Threshold float64
	// SNRdB is the reader's two-cluster SNR estimate.
	SNRdB float64
	// Decisions are the slicer-input decision statistics.
	Decisions []complex128
	// Quality holds the slicer-input quality scalars; HasQuality reports
	// whether they were measurable for this burst.
	Quality    phy.DecisionQuality
	HasQuality bool
	// Decoded reports whether the frame passed CRC.
	Decoded bool
}

// Snapshot is a coherent copy of the most recent committed burst, for
// the dashboard's constellation and spectrum panels.
type Snapshot struct {
	Seq          uint64
	IQ           []complex128
	Decisions    []complex128
	SampleRateHz float64
	CarrierHz    float64
	Bandwidth    string
	MCS          string
	SyncOffset   int
	SyncMetric   float64
	Threshold    float64
	SNRdB        float64
	Quality      phy.DecisionQuality
	HasQuality   bool
	Decoded      bool
}

// Tap is the signal-observability sink. All methods are safe for
// concurrent use and nil-safe at hook sites via Active().
type Tap struct {
	mu       sync.Mutex
	rec      *recorder
	last     Snapshot
	haveLast bool
	bursts   uint64

	recentSNR    ring
	recentEVM    ring
	recentMargin ring
}

var active atomic.Pointer[Tap]

// Enable installs a process-wide tap (idempotent) and returns it.
func Enable() *Tap {
	if t := active.Load(); t != nil {
		return t
	}
	t := &Tap{}
	active.Store(t)
	return t
}

// EnableWith installs a specific tap as the active one.
func EnableWith(t *Tap) { active.Store(t) }

// Disable removes the active tap; hook sites revert to a nil check.
func Disable() { active.Store(nil) }

// Active returns the active tap, or nil when taps are disabled.
func Active() *Tap { return active.Load() }

// Enabled reports whether a tap is installed.
func Enabled() bool { return active.Load() != nil }

// peakRMS returns the peak and RMS magnitudes of x (0, 0 when empty).
func peakRMS(x []complex128) (peak, rms float64) {
	if len(x) == 0 {
		return 0, 0
	}
	var sum float64
	for _, c := range x {
		p := real(c)*real(c) + imag(c)*imag(c)
		sum += p
		if p > peak {
			peak = p
		}
	}
	return math.Sqrt(peak), math.Sqrt(sum / float64(len(x)))
}

// TxWaveform taps the synthesized transmit waveform, recording its
// peak-to-RMS ratio (PAPR, dB).
func (t *Tap) TxWaveform(tx []complex128) {
	peak, rms := peakRMS(tx)
	if rms > 0 {
		obs.Observe("signal_tx_papr_db", 20*math.Log10(peak/rms))
	}
}

// ChannelOut taps the channel output after leakage calibration,
// recording the received RMS level in dBm (amplitudes are in √W).
func (t *Tap) ChannelOut(rx []complex128) {
	_, rms := peakRMS(rx)
	if rms > 0 {
		obs.Observe("signal_rx_rms_dbm", 10*math.Log10(rms*rms*1000))
	}
}

// Sync taps the burst detector output: the detected start offset in
// samples and the preamble correlation metric.
func (t *Tap) Sync(offset int, metric float64) {
	obs.Observe("signal_sync_offset_samples", float64(offset))
}

// SlicerInput taps the matched-filter decision statistics entering the
// slicer, recording EVM and soft margins. threshold is the adaptive OOK
// threshold (pass 0 for 4-ASK). The measured quality is returned so the
// caller can carry it into Commit without recomputing.
func (t *Tap) SlicerInput(decisions []complex128, threshold float64) (phy.DecisionQuality, bool) {
	q, err := phy.MeasureDecisionQuality(decisions, threshold)
	if err != nil {
		return q, false
	}
	obs.Observe("signal_evm_pct", q.EVMPct)
	obs.Observe("signal_min_margin", q.MinMargin)
	obs.Observe("signal_mean_margin", q.MeanMargin)
	return q, true
}

// Commit records the finished burst: it observes the burst-level
// histograms, refreshes the last-burst snapshot (reusing its buffers),
// and feeds the dashboard history rings.
func (t *Tap) Commit(b Burst) {
	if !math.IsNaN(b.SNRdB) {
		obs.Observe("signal_snr_est_db", b.SNRdB)
	}
	t.mu.Lock()
	t.bursts++
	s := &t.last
	s.Seq = t.bursts
	s.IQ = append(s.IQ[:0], b.IQ...)
	s.Decisions = append(s.Decisions[:0], b.Decisions...)
	s.SampleRateHz = b.SampleRateHz
	s.CarrierHz = b.CarrierHz
	s.Bandwidth = b.Bandwidth
	s.MCS = b.MCS
	s.SyncOffset = b.SyncOffset
	s.SyncMetric = b.SyncMetric
	s.Threshold = b.Threshold
	s.SNRdB = b.SNRdB
	s.Quality = b.Quality
	s.HasQuality = b.HasQuality
	s.Decoded = b.Decoded
	t.haveLast = true
	if !math.IsNaN(b.SNRdB) {
		t.recentSNR.push(b.SNRdB)
	}
	if b.HasQuality {
		t.recentEVM.push(b.Quality.EVMPct)
		t.recentMargin.push(b.Quality.MinMargin)
	}
	t.mu.Unlock()
}

// Bursts returns the number of bursts committed through the tap.
func (t *Tap) Bursts() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bursts
}

// LastSnapshot returns a deep copy of the most recent committed burst.
func (t *Tap) LastSnapshot() (Snapshot, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.haveLast {
		return Snapshot{}, false
	}
	s := t.last
	s.IQ = append([]complex128(nil), t.last.IQ...)
	s.Decisions = append([]complex128(nil), t.last.Decisions...)
	return s, true
}

// RecentSNR appends the recent per-burst SNR history (oldest first).
func (t *Tap) RecentSNR(dst []float64) []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recentSNR.values(dst)
}

// RecentEVM appends the recent per-burst EVM history (oldest first).
func (t *Tap) RecentEVM(dst []float64) []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recentEVM.values(dst)
}

// RecentMinMargin appends the recent per-burst minimum soft-margin
// history (oldest first).
func (t *Tap) RecentMinMargin(dst []float64) []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recentMargin.values(dst)
}

// SetFlightRecorder attaches a flight recorder keeping the k most
// recent failing-burst IQ captures. k <= 0 removes the recorder.
func (t *Tap) SetFlightRecorder(k int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if k <= 0 {
		t.rec = nil
		return
	}
	t.rec = newRecorder(k)
}

// RecordFailure captures a failing burst's IQ into the flight recorder
// (no-op without one). The IQ slice may be workspace-backed; it is
// copied into a reusable ring slot.
func (t *Tap) RecordFailure(trigger string, iq []complex128, sampleRateHz, carrierHz float64, bandwidth, mcs string, snrDB float64) {
	// The Enabled guard keeps the label slice from being built (and
	// heap-allocated) when no registry is installed — the failure path
	// stays allocation-neutral for taps-only runs.
	if obs.Enabled() {
		obs.Inc("signal_flight_triggers_total", obs.L("trigger", trigger))
	}
	t.mu.Lock()
	if t.rec != nil {
		t.rec.record(trigger, iq, sampleRateHz, carrierHz, bandwidth, mcs, snrDB)
	}
	t.mu.Unlock()
}

// RecordLastBurst captures the most recent committed burst into the
// flight recorder — used by triggers that fire after the burst itself
// succeeded at the PHY (ARQ residual errors, rate-adapt downshifts).
func (t *Tap) RecordLastBurst(trigger string) {
	if obs.Enabled() {
		obs.Inc("signal_flight_triggers_total", obs.L("trigger", trigger))
	}
	t.mu.Lock()
	if t.rec != nil && t.haveLast {
		s := &t.last
		t.rec.record(trigger, s.IQ, s.SampleRateHz, s.CarrierHz, s.Bandwidth, s.MCS, s.SNRdB)
	}
	t.mu.Unlock()
}

// FlightStats reports the recorder ring state: slots occupied, total
// capacity, and the cumulative trigger count. Without a recorder it
// returns (0, 0, 0).
func (t *Tap) FlightStats() (occupied, capacity int, triggers uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rec == nil {
		return 0, 0, 0
	}
	return t.rec.occupied(), t.rec.cap, t.rec.triggers
}

// File is a named blob destined for the run directory archive.
type File struct {
	Name string
	Data []byte
}

// FlightFiles serializes the recorder contents: one iqfile capture per
// retained burst (flight_NNNN_<trigger>.iq, oldest first) plus a
// flight.json index describing each capture. Returns nil when the
// recorder is absent or empty.
func (t *Tap) FlightFiles() ([]File, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rec == nil {
		return nil, nil
	}
	return t.rec.files()
}

// flightMeta is one flight.json index row.
type flightMeta struct {
	File         string  `json:"file"`
	Trigger      string  `json:"trigger"`
	Seq          uint64  `json:"seq"`
	Samples      int     `json:"samples"`
	SampleRateHz float64 `json:"sample_rate_hz"`
	CarrierHz    float64 `json:"carrier_hz"`
	Bandwidth    string  `json:"bandwidth"`
	MCS          string  `json:"mcs"`
	SNRdB        float64 `json:"snr_db,omitempty"`
}

func flightName(seq uint64, trigger string) string {
	return fmt.Sprintf("flight_%04d_%s.iq", seq, trigger)
}

// MarshalFlightIndex renders the flight.json payload for metas.
func marshalFlightIndex(metas []flightMeta) ([]byte, error) {
	return json.MarshalIndent(metas, "", "  ")
}
