package signal

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"github.com/mmtag/mmtag/internal/iqfile"
	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/phy"
)

func TestEnableDisable(t *testing.T) {
	Disable()
	if Enabled() || Active() != nil {
		t.Fatal("tap active before Enable")
	}
	tap := Enable()
	if tap == nil || Active() != tap || !Enabled() {
		t.Fatal("Enable did not install the tap")
	}
	if again := Enable(); again != tap {
		t.Fatal("Enable is not idempotent")
	}
	other := &Tap{}
	EnableWith(other)
	if Active() != other {
		t.Fatal("EnableWith did not replace the tap")
	}
	Disable()
	if Enabled() {
		t.Fatal("Disable left a tap installed")
	}
}

func TestRingWrap(t *testing.T) {
	var r ring
	if got := r.values(nil); len(got) != 0 {
		t.Fatalf("empty ring returned %v", got)
	}
	for i := 0; i < recentN+10; i++ {
		r.push(float64(i))
	}
	got := r.values(nil)
	if len(got) != recentN {
		t.Fatalf("ring holds %d values, want %d", len(got), recentN)
	}
	// Oldest surviving value is 10, newest is recentN+9, oldest first.
	if got[0] != 10 || got[len(got)-1] != float64(recentN+9) {
		t.Fatalf("ring order wrong: first %v, last %v", got[0], got[len(got)-1])
	}
}

// okBurst builds a healthy committed burst with distinguishable content.
func okBurst(tag float64) Burst {
	return Burst{
		IQ:           []complex128{complex(tag, 0), complex(tag, 1), complex(0, tag)},
		SampleRateHz: 400e6,
		CarrierHz:    24e9,
		Bandwidth:    "200 MHz",
		MCS:          "OOK",
		SyncOffset:   96,
		SyncMetric:   0.9,
		Threshold:    0.5,
		SNRdB:        20 + tag,
		Decisions:    []complex128{complex(0.1, 0), complex(1+tag/100, 0), complex(0.12, 0), complex(1, 0)},
		Quality: phy.DecisionQuality{
			RailLo: 0.11, RailHi: 1.0, EVMPct: 3 + tag,
			MinMargin: 0.8, MeanMargin: 0.9,
		},
		HasQuality: true,
		Decoded:    true,
	}
}

func TestCommitAndLastSnapshot(t *testing.T) {
	tap := &Tap{}
	if _, ok := tap.LastSnapshot(); ok {
		t.Fatal("snapshot before any commit")
	}
	tap.Commit(okBurst(1))
	tap.Commit(okBurst(2))
	if got := tap.Bursts(); got != 2 {
		t.Fatalf("Bursts = %d, want 2", got)
	}
	snap, ok := tap.LastSnapshot()
	if !ok {
		t.Fatal("no snapshot after commits")
	}
	if snap.Seq != 2 || snap.SNRdB != 22 || snap.Bandwidth != "200 MHz" || !snap.Decoded {
		t.Fatalf("snapshot holds wrong burst: %+v", snap)
	}
	if len(snap.IQ) != 3 || len(snap.Decisions) != 4 {
		t.Fatalf("snapshot slices wrong: %d IQ, %d decisions", len(snap.IQ), len(snap.Decisions))
	}
	// The snapshot must be a deep copy: mutating it cannot reach the tap.
	snap.IQ[0] = complex(99, 99)
	snap.Decisions[0] = complex(99, 99)
	again, _ := tap.LastSnapshot()
	if again.IQ[0] == complex(99, 99) || again.Decisions[0] == complex(99, 99) {
		t.Fatal("LastSnapshot aliases tap-internal buffers")
	}
	// History rings saw both bursts, oldest first.
	snr := tap.RecentSNR(nil)
	if len(snr) != 2 || snr[0] != 21 || snr[1] != 22 {
		t.Fatalf("RecentSNR = %v", snr)
	}
	evm := tap.RecentEVM(nil)
	if len(evm) != 2 || evm[0] != 4 || evm[1] != 5 {
		t.Fatalf("RecentEVM = %v", evm)
	}
	if m := tap.RecentMinMargin(nil); len(m) != 2 {
		t.Fatalf("RecentMinMargin = %v", m)
	}
}

func TestCommitSkipsUnmeasurable(t *testing.T) {
	tap := &Tap{}
	b := okBurst(1)
	b.SNRdB = math.NaN()
	b.HasQuality = false
	tap.Commit(b)
	if got := tap.RecentSNR(nil); len(got) != 0 {
		t.Fatalf("NaN SNR entered the history ring: %v", got)
	}
	if got := tap.RecentEVM(nil); len(got) != 0 {
		t.Fatalf("quality-less burst entered the EVM ring: %v", got)
	}
	// The snapshot still records the burst (the dashboard shows "–").
	if snap, ok := tap.LastSnapshot(); !ok || !math.IsNaN(snap.SNRdB) {
		t.Fatal("unmeasurable burst missing from snapshot")
	}
}

func TestCommitFeedsHistograms(t *testing.T) {
	reg := obs.Enable()
	defer obs.Disable()
	tap := &Tap{}
	tap.TxWaveform([]complex128{1, complex(0.5, 0), 1})
	tap.ChannelOut([]complex128{complex(1e-5, 0), complex(2e-5, 0)})
	tap.Sync(128, 0.95)
	if _, ok := tap.SlicerInput([]complex128{0.1, 1, 0.12, 0.98}, 0.5); !ok {
		t.Fatal("SlicerInput failed on healthy decisions")
	}
	tap.Commit(okBurst(1))
	snap := reg.Snapshot()
	for _, name := range []string{
		"signal_tx_papr_db", "signal_rx_rms_dbm", "signal_sync_offset_samples",
		"signal_evm_pct", "signal_min_margin", "signal_mean_margin", "signal_snr_est_db",
	} {
		if _, ok := snap.Quantile(name, 0.5); !ok {
			t.Errorf("histogram %s not recorded", name)
		}
	}
}

func TestFlightRecorderWrapAndFiles(t *testing.T) {
	tap := &Tap{}
	if files, err := tap.FlightFiles(); err != nil || files != nil {
		t.Fatalf("recorder-less FlightFiles = %v, %v", files, err)
	}
	tap.SetFlightRecorder(2)
	iq := func(v float64) []complex128 {
		return []complex128{complex(v, 0), complex(0, v)}
	}
	tap.RecordFailure(TriggerSyncLoss, iq(1), 400e6, 24e9, "200 MHz", "OOK", math.NaN())
	tap.RecordFailure(TriggerCRCFail, iq(2), 400e6, 24e9, "200 MHz", "OOK", 8.5)
	tap.RecordFailure(TriggerDecodeError, iq(3), 400e6, 24e9, "200 MHz", "4-ASK", 12)

	occ, capacity, triggers := tap.FlightStats()
	if occ != 2 || capacity != 2 || triggers != 3 {
		t.Fatalf("FlightStats = %d/%d triggers %d, want 2/2 triggers 3", occ, capacity, triggers)
	}

	files, err := tap.FlightFiles()
	if err != nil {
		t.Fatal(err)
	}
	// Two retained captures (oldest first: seq 2 then 3) + flight.json.
	if len(files) != 3 {
		t.Fatalf("got %d files, want 3", len(files))
	}
	if files[0].Name != "flight_0002_crc_fail.iq" || files[1].Name != "flight_0003_decode_error.iq" {
		t.Fatalf("capture names/order wrong: %q, %q", files[0].Name, files[1].Name)
	}
	if files[2].Name != "flight.json" {
		t.Fatalf("index name = %q", files[2].Name)
	}
	// Each capture round-trips through the iqfile reader.
	hdr, samples, err := iqfile.Read(bytes.NewReader(files[0].Data))
	if err != nil {
		t.Fatalf("capture not a valid iqfile: %v", err)
	}
	if hdr.SampleRateHz != 400e6 || hdr.CarrierHz != 24e9 || len(samples) != 2 {
		t.Fatalf("capture header/samples wrong: %+v, %d samples", hdr, len(samples))
	}
	if samples[0] != complex(2, 0) {
		t.Fatalf("capture holds wrong burst: %v", samples[0])
	}
	// The index is valid JSON describing both captures in file order.
	var metas []flightMeta
	if err := json.Unmarshal(files[2].Data, &metas); err != nil {
		t.Fatalf("flight.json invalid: %v", err)
	}
	if len(metas) != 2 || metas[0].File != files[0].Name || metas[1].Trigger != TriggerDecodeError {
		t.Fatalf("flight.json content wrong: %+v", metas)
	}
	if metas[0].SNRdB != 8.5 || metas[0].Samples != 2 || metas[0].MCS != "OOK" {
		t.Fatalf("flight.json row wrong: %+v", metas[0])
	}
}

func TestRecordFailureSanitizesNaNSNR(t *testing.T) {
	tap := &Tap{}
	tap.SetFlightRecorder(1)
	tap.RecordFailure(TriggerSyncLoss, []complex128{1}, 400e6, 24e9, "2 GHz", "OOK", math.NaN())
	files, err := tap.FlightFiles()
	if err != nil {
		t.Fatalf("NaN SNR broke the flight index: %v", err)
	}
	var metas []flightMeta
	if err := json.Unmarshal(files[len(files)-1].Data, &metas); err != nil {
		t.Fatal(err)
	}
	if metas[0].SNRdB != 0 {
		t.Fatalf("NaN SNR not sanitized: %v", metas[0].SNRdB)
	}
}

func TestRecordLastBurst(t *testing.T) {
	tap := &Tap{}
	tap.SetFlightRecorder(2)
	// Without a committed burst there is nothing to capture.
	tap.RecordLastBurst(TriggerARQResidual)
	if occ, _, triggers := tap.FlightStats(); occ != 0 || triggers != 0 {
		t.Fatalf("pre-commit RecordLastBurst: occupied %d, triggers %d", occ, triggers)
	}
	tap.Commit(okBurst(1))
	tap.RecordLastBurst(TriggerRateDownshift)
	files, err := tap.FlightFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 || files[0].Name != "flight_0001_rate_downshift.iq" {
		t.Fatalf("RecordLastBurst did not capture the committed burst: %v", fileNames(files))
	}
	_, samples, err := iqfile.Read(bytes.NewReader(files[0].Data))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 || samples[0] != complex(1, 0) {
		t.Fatalf("captured IQ is not the last burst: %v", samples)
	}
}

func TestSetFlightRecorderRemove(t *testing.T) {
	tap := &Tap{}
	tap.SetFlightRecorder(2)
	tap.RecordFailure(TriggerCRCFail, []complex128{1}, 400e6, 24e9, "2 GHz", "OOK", 10)
	tap.SetFlightRecorder(0)
	if occ, capacity, _ := tap.FlightStats(); occ != 0 || capacity != 0 {
		t.Fatalf("recorder not removed: %d/%d", occ, capacity)
	}
	if files, err := tap.FlightFiles(); err != nil || files != nil {
		t.Fatalf("removed recorder still serves files: %v, %v", files, err)
	}
}

// TestSteadyStateAllocs pins the zero-allocation contract: once the
// snapshot buffers and ring slots are warm, the full per-burst hook
// sequence (tx tap, rx tap, sync, slicer, commit) and the failure path
// allocate nothing — with the obs registry live, since unlabeled
// histogram observations are allocation-free after the first series.
func TestSteadyStateAllocs(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	tap := &Tap{}
	tap.SetFlightRecorder(2)
	tx := []complex128{1, complex(0.5, 0), 1, complex(0.2, 0)}
	rx := []complex128{complex(1e-5, 0), complex(2e-5, 0), complex(1.5e-5, 0)}
	dec := []complex128{0.1, 1, 0.12, 0.98, 0.09, 1.02}
	burst := okBurst(1)
	hooks := func() {
		tap.TxWaveform(tx)
		tap.ChannelOut(rx)
		tap.Sync(128, 0.95)
		q, ok := tap.SlicerInput(dec, 0.5)
		burst.Quality, burst.HasQuality = q, ok
		tap.Commit(burst)
	}
	hooks() // warm buffers and histogram series
	if allocs := testing.AllocsPerRun(100, hooks); allocs != 0 {
		t.Errorf("per-burst hook sequence allocates %.1f/op in steady state", allocs)
	}
	// Failure path with obs disabled (the taps-only configuration): ring
	// slots are reused once warm.
	obs.Disable()
	fail := func() {
		tap.RecordFailure(TriggerCRCFail, rx, 400e6, 24e9, "200 MHz", "OOK", 10)
	}
	fail()
	fail() // warm both ring slots
	if allocs := testing.AllocsPerRun(100, fail); allocs != 0 {
		t.Errorf("RecordFailure allocates %.1f/op with warm ring slots", allocs)
	}
}

func fileNames(files []File) []string {
	names := make([]string, len(files))
	for i, f := range files {
		names[i] = f.Name
	}
	return names
}
