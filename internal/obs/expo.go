package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	// LE is the bucket's inclusive upper bound (+Inf for the overflow).
	LE float64 `json:"le"`
	// Count is the cumulative sample count at or below LE.
	Count uint64 `json:"count"`
}

// MetricSnapshot is one series frozen at snapshot time.
type MetricSnapshot struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value carries counters and gauges.
	Value float64 `json:"value"`
	// Count/Sum/Min/Max/Buckets carry histograms.
	Count   uint64        `json:"count,omitempty"`
	Sum     float64       `json:"sum,omitempty"`
	Min     float64       `json:"min,omitempty"`
	Max     float64       `json:"max,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot is a consistent point-in-time view of the registry: every
// metric series plus the finished spans.
type Snapshot struct {
	TakenAtS     float64          `json:"taken_at_s"`
	Metrics      []MetricSnapshot `json:"metrics"`
	Spans        []SpanRecord     `json:"spans,omitempty"`
	DroppedSpans uint64           `json:"dropped_spans,omitempty"`
}

// Snapshot freezes the registry. Series appear in first-touch order.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{TakenAtS: r.clock()}
	for _, name := range r.order {
		f := r.families[name]
		for _, key := range f.order {
			s := f.series[key]
			m := MetricSnapshot{Name: name, Kind: f.kind.String()}
			if len(s.labels) > 0 {
				m.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					m.Labels[l.Key] = l.Value
				}
			}
			if f.kind == KindHistogram {
				m.Count = s.count
				m.Sum = s.sum
				if s.count > 0 {
					m.Min, m.Max = s.min, s.max
				}
				cum := uint64(0)
				for i, b := range f.buckets {
					cum += s.counts[i]
					m.Buckets = append(m.Buckets, BucketCount{LE: b, Count: cum})
				}
				m.Buckets = append(m.Buckets, BucketCount{LE: math.Inf(1), Count: s.count})
			} else {
				m.Value = s.value
			}
			snap.Metrics = append(snap.Metrics, m)
		}
	}
	snap.Spans = append([]SpanRecord{}, r.spans...)
	snap.DroppedSpans = r.dropped
	return snap
}

// MarshalJSON renders +Inf bucket bounds as the string "+Inf" so the
// snapshot is valid JSON.
func (b BucketCount) MarshalJSON() ([]byte, error) {
	le := "\"+Inf\""
	if !math.IsInf(b.LE, 1) {
		le = strconv.FormatFloat(b.LE, 'g', -1, 64)
	}
	return []byte(fmt.Sprintf(`{"le":%s,"count":%d}`, le, b.Count)), nil
}

// UnmarshalJSON accepts both numeric bounds and the "+Inf" string
// MarshalJSON emits, so snapshots round-trip through JSON.
func (b *BucketCount) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    json.RawMessage `json:"le"`
		Count uint64          `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	var s string
	if err := json.Unmarshal(raw.LE, &s); err == nil {
		switch s {
		case "+Inf", "Inf":
			b.LE = math.Inf(1)
		case "-Inf":
			b.LE = math.Inf(-1)
		default:
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return fmt.Errorf("obs: bucket bound %q: %w", s, err)
			}
			b.LE = v
		}
		return nil
	}
	return json.Unmarshal(raw.LE, &b.LE)
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// SeriesCount returns the number of metric series in the snapshot.
func (s Snapshot) SeriesCount() int { return len(s.Metrics) }

// Counter returns the value of a counter/gauge series matching name and
// labels (ok=false when absent). With no labels it sums every series in
// the family, so `Counter("core_bursts_attempted_total")` is the total
// across bandwidths without knowing the label set.
func (s Snapshot) Counter(name string, labels ...Label) (float64, bool) {
	if len(labels) == 0 {
		var sum float64
		found := false
		for _, m := range s.Metrics {
			if m.Name == name && m.Kind != KindHistogram.String() {
				sum += m.Value
				found = true
			}
		}
		return sum, found
	}
	want := sortLabels(labels)
	for _, m := range s.Metrics {
		if m.Name != name || len(m.Labels) != len(want) {
			continue
		}
		match := true
		for _, l := range want {
			if m.Labels[l.Key] != l.Value {
				match = false
				break
			}
		}
		if match {
			return m.Value, true
		}
	}
	return 0, false
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of a histogram family
// by linear interpolation inside the bucket holding the target rank —
// the same estimator as Prometheus's histogram_quantile. With labels it
// reads one series; with none it aggregates every series in the family
// (bucket layouts agree within a family by construction). Ranks landing
// in the +Inf bucket clamp to the highest finite bound, since that
// bucket has no upper edge to interpolate toward. ok is false for an
// unknown family, a non-histogram, an empty histogram, or q outside
// [0, 1].
func (s Snapshot) Quantile(name string, q float64, labels ...Label) (float64, bool) {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, false
	}
	var want []Label
	if len(labels) > 0 {
		want = sortLabels(labels)
	}
	// Merge the cumulative buckets of every matching series.
	var merged []BucketCount
	for _, m := range s.Metrics {
		if m.Name != name || m.Kind != KindHistogram.String() || len(m.Buckets) == 0 {
			continue
		}
		if want != nil {
			if len(m.Labels) != len(want) {
				continue
			}
			match := true
			for _, l := range want {
				if m.Labels[l.Key] != l.Value {
					match = false
					break
				}
			}
			if !match {
				continue
			}
		}
		if merged == nil {
			merged = append([]BucketCount{}, m.Buckets...)
			continue
		}
		if len(m.Buckets) != len(merged) {
			return 0, false
		}
		for i, b := range m.Buckets {
			merged[i].Count += b.Count
		}
	}
	if merged == nil {
		return 0, false
	}
	total := merged[len(merged)-1].Count
	if total == 0 {
		return 0, false
	}
	rank := q * float64(total)
	for i, b := range merged {
		if float64(b.Count) < rank {
			continue
		}
		if math.IsInf(b.LE, 1) {
			// No upper edge: clamp to the last finite bound.
			if i > 0 {
				return merged[i-1].LE, true
			}
			return 0, false
		}
		lo, below := 0.0, uint64(0)
		if i > 0 {
			lo, below = merged[i-1].LE, merged[i-1].Count
		}
		in := b.Count - below
		if in == 0 {
			return b.LE, true
		}
		return lo + (b.LE-lo)*(rank-float64(below))/float64(in), true
	}
	return 0, false
}

// PrometheusText renders the registry in the Prometheus text exposition
// format (histograms as cumulative _bucket/_sum/_count series).
func (r *Registry) PrometheusText() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, name := range r.order {
		f := r.families[name]
		n := sanitizeName(name)
		fmt.Fprintf(&b, "# TYPE %s %s\n", n, f.kind)
		for _, key := range f.order {
			s := f.series[key]
			if f.kind != KindHistogram {
				fmt.Fprintf(&b, "%s%s %s\n", n, formatLabels(s.labels), formatFloat(s.value))
				continue
			}
			cum := uint64(0)
			for i, bound := range f.buckets {
				cum += s.counts[i]
				le := Label{Key: "le", Value: formatFloat(bound)}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", n, formatLabels(s.labels, le), cum)
			}
			le := Label{Key: "le", Value: "+Inf"}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", n, formatLabels(s.labels, le), s.count)
			fmt.Fprintf(&b, "%s_sum%s %s\n", n, formatLabels(s.labels), formatFloat(s.sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", n, formatLabels(s.labels), s.count)
		}
	}
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
