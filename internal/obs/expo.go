package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	// LE is the bucket's inclusive upper bound (+Inf for the overflow).
	LE float64 `json:"le"`
	// Count is the cumulative sample count at or below LE.
	Count uint64 `json:"count"`
}

// MetricSnapshot is one series frozen at snapshot time.
type MetricSnapshot struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value carries counters and gauges.
	Value float64 `json:"value"`
	// Count/Sum/Min/Max/Buckets carry histograms.
	Count   uint64        `json:"count,omitempty"`
	Sum     float64       `json:"sum,omitempty"`
	Min     float64       `json:"min,omitempty"`
	Max     float64       `json:"max,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot is a consistent point-in-time view of the registry: every
// metric series plus the finished spans.
type Snapshot struct {
	TakenAtS     float64          `json:"taken_at_s"`
	Metrics      []MetricSnapshot `json:"metrics"`
	Spans        []SpanRecord     `json:"spans,omitempty"`
	DroppedSpans uint64           `json:"dropped_spans,omitempty"`
}

// Snapshot freezes the registry. Series appear in first-touch order.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{TakenAtS: r.clock()}
	for _, name := range r.order {
		f := r.families[name]
		for _, key := range f.order {
			s := f.series[key]
			m := MetricSnapshot{Name: name, Kind: f.kind.String()}
			if len(s.labels) > 0 {
				m.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					m.Labels[l.Key] = l.Value
				}
			}
			if f.kind == KindHistogram {
				m.Count = s.count
				m.Sum = s.sum
				if s.count > 0 {
					m.Min, m.Max = s.min, s.max
				}
				cum := uint64(0)
				for i, b := range f.buckets {
					cum += s.counts[i]
					m.Buckets = append(m.Buckets, BucketCount{LE: b, Count: cum})
				}
				m.Buckets = append(m.Buckets, BucketCount{LE: math.Inf(1), Count: s.count})
			} else {
				m.Value = s.value
			}
			snap.Metrics = append(snap.Metrics, m)
		}
	}
	snap.Spans = append([]SpanRecord{}, r.spans...)
	snap.DroppedSpans = r.dropped
	return snap
}

// MarshalJSON renders +Inf bucket bounds as the string "+Inf" so the
// snapshot is valid JSON.
func (b BucketCount) MarshalJSON() ([]byte, error) {
	le := "\"+Inf\""
	if !math.IsInf(b.LE, 1) {
		le = strconv.FormatFloat(b.LE, 'g', -1, 64)
	}
	return []byte(fmt.Sprintf(`{"le":%s,"count":%d}`, le, b.Count)), nil
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// SeriesCount returns the number of metric series in the snapshot.
func (s Snapshot) SeriesCount() int { return len(s.Metrics) }

// Counter returns the value of a counter/gauge series matching name and
// labels (ok=false when absent). With no labels it sums every series in
// the family, so `Counter("core_bursts_attempted_total")` is the total
// across bandwidths without knowing the label set.
func (s Snapshot) Counter(name string, labels ...Label) (float64, bool) {
	if len(labels) == 0 {
		var sum float64
		found := false
		for _, m := range s.Metrics {
			if m.Name == name && m.Kind != KindHistogram.String() {
				sum += m.Value
				found = true
			}
		}
		return sum, found
	}
	want := sortLabels(labels)
	for _, m := range s.Metrics {
		if m.Name != name || len(m.Labels) != len(want) {
			continue
		}
		match := true
		for _, l := range want {
			if m.Labels[l.Key] != l.Value {
				match = false
				break
			}
		}
		if match {
			return m.Value, true
		}
	}
	return 0, false
}

// PrometheusText renders the registry in the Prometheus text exposition
// format (histograms as cumulative _bucket/_sum/_count series).
func (r *Registry) PrometheusText() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, name := range r.order {
		f := r.families[name]
		n := sanitizeName(name)
		fmt.Fprintf(&b, "# TYPE %s %s\n", n, f.kind)
		for _, key := range f.order {
			s := f.series[key]
			if f.kind != KindHistogram {
				fmt.Fprintf(&b, "%s%s %s\n", n, formatLabels(s.labels), formatFloat(s.value))
				continue
			}
			cum := uint64(0)
			for i, bound := range f.buckets {
				cum += s.counts[i]
				le := Label{Key: "le", Value: formatFloat(bound)}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", n, formatLabels(s.labels, le), cum)
			}
			le := Label{Key: "le", Value: "+Inf"}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", n, formatLabels(s.labels, le), s.count)
			fmt.Fprintf(&b, "%s_sum%s %s\n", n, formatLabels(s.labels), formatFloat(s.sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", n, formatLabels(s.labels), s.count)
		}
	}
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
