package tsdb

import (
	"math"
	"strconv"

	"github.com/mmtag/mmtag/internal/obs"
)

// SchemaTimeseries identifies the timeseries.json artifact format.
const SchemaTimeseries = "mmtag-timeseries/1"

// JSON renders the sampler state as the deterministic timeseries.json
// artifact: one line per series, series sorted by (name, labels),
// floats in Go 'g' format. Byte-identical for identical update
// multisets, so CI can diff it across -workers counts.
func (s *Sampler) JSON() []byte {
	return s.Snapshot().JSON()
}

// JSON renders the snapshot; see Sampler.JSON.
func (sn Snapshot) JSON() []byte {
	b := make([]byte, 0, 1<<12)
	b = append(b, `{"schema":`...)
	b = strconv.AppendQuote(b, SchemaTimeseries)
	b = append(b, `,"dt":`...)
	b = appendJSONFloat(b, sn.DT)
	b = append(b, `,"stride":`...)
	b = strconv.AppendUint(b, sn.Stride, 10)
	b = append(b, `,"slot_cap":`...)
	b = strconv.AppendInt(b, int64(sn.SlotCap), 10)
	b = append(b, `,"max_tick":`...)
	b = strconv.AppendUint(b, sn.MaxTick, 10)
	b = append(b, `,"updates":`...)
	b = strconv.AppendUint(b, sn.Updates, 10)
	b = append(b, `,"folded":`...)
	b = strconv.AppendUint(b, sn.Folded, 10)
	b = append(b, `,"series":[`...)
	for i, se := range sn.Series {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, '\n')
		b = appendSeries(b, se)
	}
	if len(sn.Series) > 0 {
		b = append(b, '\n')
	}
	b = append(b, "]}\n"...)
	return b
}

func appendSeries(b []byte, se Series) []byte {
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, se.Name)
	b = append(b, `,"kind":`...)
	b = strconv.AppendQuote(b, se.Kind.String())
	if len(se.Labels) > 0 {
		b = append(b, `,"labels":{`...)
		for i, l := range se.Labels {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendQuote(b, l.Key)
			b = append(b, ':')
			b = strconv.AppendQuote(b, l.Value)
		}
		b = append(b, '}')
	}
	b = append(b, `,"points":[`...)
	for i, p := range se.Points {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"t":`...)
		b = appendJSONFloat(b, p.T)
		if se.Kind == obs.KindHistogram {
			b = append(b, `,"count":`...)
			b = strconv.AppendUint(b, p.Count, 10)
			for _, q := range [...]struct {
				name string
				q    float64
			}{{"q50", 0.5}, {"q90", 0.9}, {"q99", 0.99}} {
				if v, ok := Quantile(se.Buckets, p.Counts, q.q); ok {
					b = append(b, ',', '"')
					b = append(b, q.name...)
					b = append(b, `":`...)
					b = appendJSONFloat(b, v)
				}
			}
		} else {
			b = append(b, `,"v":`...)
			b = appendJSONFloat(b, p.V)
		}
		b = append(b, '}')
	}
	b = append(b, "]}"...)
	return b
}

// appendJSONFloat formats like the event log: shortest 'g' form, with
// the non-finite values JSON cannot carry quoted by name.
func appendJSONFloat(b []byte, v float64) []byte {
	switch {
	case math.IsNaN(v):
		return append(b, `"NaN"`...)
	case math.IsInf(v, 1):
		return append(b, `"+Inf"`...)
	case math.IsInf(v, -1):
		return append(b, `"-Inf"`...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}
