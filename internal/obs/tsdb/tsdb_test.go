package tsdb_test

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/obs/tsdb"
	"github.com/mmtag/mmtag/internal/par"
)

// fill drives one fixed update multiset through a fresh registry +
// sampler from the given number of workers and returns the artifact.
func fill(tb testing.TB, workers, n int) []byte {
	tb.Helper()
	reg := obs.NewRegistry()
	s, err := tsdb.New(1e-6)
	if err != nil {
		tb.Fatal(err)
	}
	reg.SetSampleSink(s)
	par.Do(workers, n, func(i int) {
		t := float64(i) * 2.5e-7 // four updates per tick
		reg.AddAt(t, "test_ctr_total", 1, obs.L("shard", strconv.Itoa(i%3)))
		reg.SetAt(t, "test_gauge", float64(i%7))
		reg.ObserveAt(t, "test_hist_seconds", float64(i%10)*1e-6)
	})
	return s.JSON()
}

func TestJSONWorkerInvariance(t *testing.T) {
	want := fill(t, 1, 400)
	for _, w := range []int{2, 4, 8} {
		if got := fill(t, w, 400); !bytes.Equal(got, want) {
			t.Fatalf("timeseries.json differs between workers=1 and workers=%d:\n%s\nvs\n%s", w, want, got)
		}
	}
}

func TestJSONWorkerInvarianceAcrossCompaction(t *testing.T) {
	// 4000 updates reach tick 1000 > 256 slots, forcing two compactions.
	want := fill(t, 1, 4000)
	if !strings.Contains(string(want), `"stride":4`) {
		t.Fatalf("expected stride 4 after downsampling, got:\n%s", want)
	}
	if got := fill(t, 8, 4000); !bytes.Equal(got, want) {
		t.Fatalf("downsampled timeseries.json differs between worker counts")
	}
}

func TestCounterTotalsSurviveCompaction(t *testing.T) {
	reg := obs.NewRegistry()
	s, _ := tsdb.New(1.0)
	reg.SetSampleSink(s)
	const n = 1000
	for i := 0; i < n; i++ {
		reg.AddAt(float64(i), "c_total", 1)
	}
	snap := s.Snapshot()
	if snap.Stride != 4 {
		t.Fatalf("stride = %d, want 4 (1000 ticks in 256 slots)", snap.Stride)
	}
	var sum float64
	for _, se := range snap.Series {
		for _, p := range se.Points {
			sum += p.V
		}
	}
	if sum != n {
		t.Fatalf("compacted delta sum = %g, want %d", sum, n)
	}
	st := s.Stats()
	if st.Updates != n || st.Folded != st.Updates-uint64(st.SlotsOccupied) {
		t.Fatalf("stats inconsistent: %+v", st)
	}
	if st.MaxTick != n-1 {
		t.Fatalf("max tick = %d, want %d", st.MaxTick, n-1)
	}
}

func TestGaugeLastWriteWinsWithinSlot(t *testing.T) {
	// Two orders of the same updates must fold identically: the latest
	// virtual time wins the slot regardless of arrival order.
	for _, order := range [][]struct{ t, v float64 }{
		{{0.1e-6, 3}, {0.9e-6, 7}},
		{{0.9e-6, 7}, {0.1e-6, 3}},
	} {
		reg := obs.NewRegistry()
		s, _ := tsdb.New(1e-6)
		reg.SetSampleSink(s)
		for _, u := range order {
			reg.SetAt(u.t, "g", u.v)
		}
		snap := s.Snapshot()
		if len(snap.Series) != 1 || len(snap.Series[0].Points) != 1 {
			t.Fatalf("want one point, got %+v", snap.Series)
		}
		if got := snap.Series[0].Points[0].V; got != 7 {
			t.Fatalf("gauge slot folded to %g, want 7 (latest t)", got)
		}
	}
}

func TestQuantileEmptyWindow(t *testing.T) {
	bounds := []float64{1, 2, 4}
	if _, ok := tsdb.Quantile(bounds, []uint64{0, 0, 0, 0}, 0.99); ok {
		t.Fatal("quantile on an empty histogram window must report !ok")
	}
	if _, ok := tsdb.Quantile(bounds, []uint64{1, 0, 0, 0}, 1.5); ok {
		t.Fatal("quantile outside [0,1] must report !ok")
	}
	// All mass in the overflow bucket clamps to the last finite bound.
	if v, ok := tsdb.Quantile(bounds, []uint64{0, 0, 0, 5}, 0.5); !ok || v != 4 {
		t.Fatalf("overflow-bucket quantile = %g, %v; want 4, true", v, ok)
	}
}

func TestEmptyHistogramSeriesHasNoQuantilePoints(t *testing.T) {
	// A histogram that only ever saw NaN samples records nothing: the
	// NaN reroutes to the NaN counter before reaching the sink.
	reg := obs.NewRegistry()
	s, _ := tsdb.New(1e-6)
	reg.SetSampleSink(s)
	reg.ObserveAt(0, "h_seconds", nan())
	out := string(s.JSON())
	if strings.Contains(out, `"name":"h_seconds"`) {
		t.Fatalf("NaN-only histogram must not appear as a histogram series:\n%s", out)
	}
	if !strings.Contains(out, obs.NaNCounterName) {
		t.Fatalf("NaN sample should surface via %s:\n%s", obs.NaNCounterName, out)
	}
}

func nan() float64 {
	var z float64
	return z / z
}

func TestWallClockMetricsSkipped(t *testing.T) {
	reg := obs.NewRegistry()
	s, _ := tsdb.New(1e-6)
	reg.SetSampleSink(s)
	reg.ObserveAt(0, "core_beam_dwell_seconds", 0.25)
	reg.AddAt(0, "serve_requests_total", 1, obs.L("path", "/metrics"))
	reg.AddAt(0, "kept_total", 1)
	out := string(s.JSON())
	if strings.Contains(out, "core_beam_dwell_seconds") || strings.Contains(out, "serve_requests_total") {
		t.Fatalf("wall-clock metrics must be skipped:\n%s", out)
	}
	if !strings.Contains(out, "kept_total") {
		t.Fatalf("non-skipped metric missing:\n%s", out)
	}
	if st := s.Stats(); st.Series != 1 {
		t.Fatalf("skipped series must not bind: %+v", st)
	}
}

func TestRecordSteadyStateZeroAlloc(t *testing.T) {
	reg := obs.NewRegistry()
	s, _ := tsdb.New(1e-6)
	reg.SetSampleSink(s)
	// Warm up: bind every series once.
	reg.AddAt(0, "c_total", 1)
	reg.SetAt(0, "g", 1)
	reg.ObserveAt(0, "h_seconds", 1e-6)
	allocs := testing.AllocsPerRun(200, func() {
		reg.AddAt(3e-6, "c_total", 1)
		reg.SetAt(3e-6, "g", 2)
		reg.ObserveAt(3e-6, "h_seconds", 2e-6)
	})
	if allocs != 0 {
		t.Fatalf("steady-state sampling allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestJSONShape(t *testing.T) {
	reg := obs.NewRegistry()
	s, _ := tsdb.New(1e-6)
	reg.SetSampleSink(s)
	reg.AddAt(0, "b_total", 2)
	reg.AddAt(2e-6, "b_total", 3)
	reg.ObserveAt(1e-6, "h_seconds", 5e-6)
	out := string(s.JSON())
	for _, want := range []string{
		`"schema":"mmtag-timeseries/1"`,
		`"dt":1e-06`,
		`{"name":"b_total","kind":"counter","points":[{"t":0,"v":2},{"t":2e-06,"v":3}]}`,
		`"q50":`,
		`"count":1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeseries.json missing %q:\n%s", want, out)
		}
	}
}

func TestNewRejectsBadInterval(t *testing.T) {
	for _, dt := range []float64{0, -1, nan()} {
		if _, err := tsdb.New(dt); err == nil {
			t.Fatalf("New(%g) should fail", dt)
		}
	}
}
