// Package tsdb is the time dimension of the observability layer: a
// deterministic virtual-clock sampler that folds every counter, gauge
// and histogram update into bounded per-series slot rings on a fixed
// virtual-time grid. It installs as the registry's SampleSink, so the
// per-update cost is one mutex and a handful of array writes — no map
// lookups and no allocations in steady state.
//
// # Determinism contract
//
// The stored state is a pure function of the update multiset (which
// updates happened, at which virtual times) and is independent of the
// order worker goroutines deliver them, so timeseries.json is
// byte-identical at any -workers count:
//
//   - counters fold as the sum of deltas per slot (every instrumented
//     counter uses integer-valued deltas, so the sum is exact);
//   - gauges keep the lexicographically largest (t, value) per slot —
//     "last write wins" on the virtual clock, with the value breaking
//     ties;
//   - histograms fold as per-slot bucket counts; per-slot quantiles are
//     derived from those integer counts at exposition time. Per-slot
//     sums are deliberately not kept: a float sum depends on addition
//     order and would leak scheduling into the artifact.
//
// When a run outlives the ring (slot index ≥ SlotCap) every series is
// compacted in place — adjacent slot pairs merge and the tick stride
// doubles — so long runs downsample tier by tier instead of dropping
// the tail. Pairwise merging commutes with the per-kind folds, so the
// final state is again schedule-independent. Metrics listed in
// WallClockMetrics carry wall-clock values and are skipped entirely.
package tsdb

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/mmtag/mmtag/internal/obs"
)

// DefaultSlotCap is the number of time slots kept per series before the
// stride doubles. 256 slots at stride 1 cover runs up to 256·dt; every
// compaction doubles the horizon and halves the resolution.
const DefaultSlotCap = 256

// WallClockMetrics lists metric families whose values, timings or
// update counts come from the wall clock, the goroutine scheduler or
// the execution topology: par_shard_seconds observes wall time,
// par_queue_depth's Set cadence depends on which worker observes the
// queue, and par_workers is the -workers count itself. Sampling them
// would break the byte-invariance of timeseries.json across runs and
// worker counts, so the sampler discards their updates (mmtag diff
// skips the same set).
var WallClockMetrics = []string{
	"par_shard_seconds",
	"par_queue_depth",
	"par_workers",
	"core_beam_dwell_seconds",
	"serve_requests_total",
	"stream_queue_depth",
	"stream_wall_fps",
}

// discard is the BindSeries handle for skipped (wall-clock) series.
type discard struct{}

// Sampler folds registry updates into bounded virtual-time slot rings.
// Install it with Registry.SetSampleSink. All methods are safe for
// concurrent use.
type Sampler struct {
	mu       sync.Mutex
	dt       float64
	slotCap  int
	stride   uint64 // ticks per slot; power of two, doubles on compaction
	maxTick  uint64
	series   []*seriesState
	updates  uint64
	occupied int
	skip     map[string]bool
}

// seriesState is the slot ring for one labeled series. Slot i covers
// virtual ticks [i·stride, (i+1)·stride); tick = floor(t / dt).
type seriesState struct {
	name    string
	kind    obs.Kind
	labels  []obs.Label
	key     string // name + labels, the deterministic sort key
	buckets []float64

	occ []bool    // slot has at least one folded update
	val []float64 // counter: delta sum; gauge: latest value
	gt  []float64 // gauge: virtual time of the folded value
	// histogram state, preallocated flat at bind time.
	counts []uint64 // slotCap × (len(buckets)+1) bucket deltas
	count  []uint64 // per-slot sample count

	updates  uint64
	occupied int
}

// New returns a Sampler folding on a dt-second virtual-time grid.
func New(dt float64) (*Sampler, error) {
	if math.IsNaN(dt) || math.IsInf(dt, 0) || dt <= 0 {
		return nil, fmt.Errorf("tsdb: sample interval must be positive and finite, got %g", dt)
	}
	s := &Sampler{dt: dt, slotCap: DefaultSlotCap, stride: 1, skip: map[string]bool{}}
	for _, n := range WallClockMetrics {
		s.skip[n] = true
	}
	return s, nil
}

// Attach creates a Sampler and installs it as reg's sample sink.
func Attach(reg *obs.Registry, dt float64) (*Sampler, error) {
	s, err := New(dt)
	if err != nil {
		return nil, err
	}
	reg.SetSampleSink(s)
	return s, nil
}

// Skip adds metric families to the sampler's discard list (on top of
// WallClockMetrics). Only effective before the family's first update.
func (s *Sampler) Skip(names ...string) {
	s.mu.Lock()
	for _, n := range names {
		s.skip[n] = true
	}
	s.mu.Unlock()
}

// DT returns the sample interval in seconds.
func (s *Sampler) DT() float64 { return s.dt }

// BindSeries implements obs.SampleSink. It is called with the registry
// mutex held, once per series.
func (s *Sampler) BindSeries(name string, kind obs.Kind, labels []obs.Label, buckets []float64) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.skip[name] {
		return discard{}
	}
	st := &seriesState{
		name:   name,
		kind:   kind,
		labels: append([]obs.Label{}, labels...),
		key:    seriesSortKey(name, labels),
		occ:    make([]bool, s.slotCap),
		val:    make([]float64, s.slotCap),
	}
	switch kind {
	case obs.KindGauge:
		st.gt = make([]float64, s.slotCap)
	case obs.KindHistogram:
		st.buckets = append([]float64{}, buckets...)
		st.counts = make([]uint64, s.slotCap*(len(buckets)+1))
		st.count = make([]uint64, s.slotCap)
	}
	s.series = append(s.series, st)
	return st
}

// Record implements obs.SampleSink: fold one update at virtual time t.
// Zero-allocation in steady state.
func (s *Sampler) Record(handle any, t, value float64) {
	st, ok := handle.(*seriesState)
	if !ok {
		return // discard handle (wall-clock metric)
	}
	if t < 0 || math.IsNaN(t) {
		t = 0
	}
	q := t / s.dt
	if q >= float64(1<<62) {
		q = float64(1 << 62) // clamp: absurd virtual times still fold
	}
	tick := uint64(q)
	s.mu.Lock()
	s.updates++
	st.updates++
	if tick > s.maxTick {
		s.maxTick = tick
	}
	slot := int(tick / s.stride)
	for slot >= s.slotCap {
		s.compact()
		slot = int(tick / s.stride)
	}
	switch st.kind {
	case obs.KindCounter:
		st.val[slot] += value
	case obs.KindGauge:
		if !st.occ[slot] || t > st.gt[slot] || (t == st.gt[slot] && value > st.val[slot]) {
			st.gt[slot], st.val[slot] = t, value
		}
	case obs.KindHistogram:
		i := sort.SearchFloat64s(st.buckets, value)
		st.counts[slot*(len(st.buckets)+1)+i]++
		st.count[slot]++
	}
	if !st.occ[slot] {
		st.occ[slot] = true
		st.occupied++
		s.occupied++
	}
	s.mu.Unlock()
}

// compact merges adjacent slot pairs in place and doubles the stride;
// caller holds s.mu. The per-kind merges commute with Record's folds,
// so compaction timing cannot leak into the final state.
func (s *Sampler) compact() {
	s.stride *= 2
	half := s.slotCap / 2
	total := 0
	for _, st := range s.series {
		nb := len(st.buckets) + 1
		occ := 0
		for i := 0; i < half; i++ {
			lo, hi := 2*i, 2*i+1
			switch st.kind {
			case obs.KindCounter:
				st.val[i] = st.val[lo] + st.val[hi]
			case obs.KindGauge:
				// Every time in the high slot is strictly later than
				// every time in the low slot, so occupied-high wins.
				if st.occ[hi] {
					st.val[i], st.gt[i] = st.val[hi], st.gt[hi]
				} else {
					st.val[i], st.gt[i] = st.val[lo], st.gt[lo]
				}
			case obs.KindHistogram:
				for b := 0; b < nb; b++ {
					st.counts[i*nb+b] = st.counts[lo*nb+b] + st.counts[hi*nb+b]
				}
				st.count[i] = st.count[lo] + st.count[hi]
			}
			st.occ[i] = st.occ[lo] || st.occ[hi]
			if st.occ[i] {
				occ++
			}
		}
		for i := half; i < s.slotCap; i++ {
			st.occ[i] = false
			st.val[i] = 0
			if st.gt != nil {
				st.gt[i] = 0
			}
			if st.count != nil {
				st.count[i] = 0
				nb := len(st.buckets) + 1
				for b := 0; b < nb; b++ {
					st.counts[i*nb+b] = 0
				}
			}
		}
		st.occupied = occ
		total += occ
	}
	s.occupied = total
}

// Stats summarizes sampler occupancy for /healthz.
type Stats struct {
	// Series is the number of bound (non-skipped) series.
	Series int `json:"series"`
	// SlotsOccupied / SlotCapacity describe ring usage across all
	// series.
	SlotsOccupied int `json:"slots_occupied"`
	SlotCapacity  int `json:"slot_capacity"`
	// Stride is the current downsampling tier (ticks per slot).
	Stride uint64 `json:"stride"`
	// DT is the sample interval in seconds; MaxTick the largest
	// virtual tick folded so far.
	DT      float64 `json:"dt"`
	MaxTick uint64  `json:"max_tick"`
	// Updates counts folded updates; Folded = Updates − SlotsOccupied
	// is how many were merged away by slotting and downsampling.
	Updates uint64 `json:"updates"`
	Folded  uint64 `json:"folded"`
}

// Stats returns current occupancy counters.
func (s *Sampler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Series:        len(s.series),
		SlotsOccupied: s.occupied,
		SlotCapacity:  len(s.series) * s.slotCap,
		Stride:        s.stride,
		DT:            s.dt,
		MaxTick:       s.maxTick,
		Updates:       s.updates,
		Folded:        s.updates - uint64(s.occupied),
	}
}

// Point is one occupied slot of a series. T is the slot's start time in
// seconds. Counters carry the slot's delta sum in V; gauges the latest
// value in V; histograms the per-slot sample count and bucket deltas.
type Point struct {
	T      float64
	V      float64
	Count  uint64
	Counts []uint64
}

// Series is the sampled history of one labeled series, points in time
// order.
type Series struct {
	Name    string
	Kind    obs.Kind
	Labels  []obs.Label
	Buckets []float64
	Points  []Point
}

// Snapshot is a consistent copy of the sampler state, series sorted by
// (name, labels) — deterministic regardless of first-touch order.
type Snapshot struct {
	DT      float64
	Stride  uint64
	SlotCap int
	MaxTick uint64
	Updates uint64
	Folded  uint64
	Series  []Series
}

// Snapshot copies the sampler state for exposition and alerting.
func (s *Sampler) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		DT:      s.dt,
		Stride:  s.stride,
		SlotCap: s.slotCap,
		MaxTick: s.maxTick,
		Updates: s.updates,
		Folded:  s.updates - uint64(s.occupied),
	}
	order := make([]*seriesState, len(s.series))
	copy(order, s.series)
	sort.Slice(order, func(i, j int) bool { return order[i].key < order[j].key })
	for _, st := range order {
		se := Series{
			Name:    st.name,
			Kind:    st.kind,
			Labels:  append([]obs.Label{}, st.labels...),
			Buckets: st.buckets,
			Points:  make([]Point, 0, st.occupied),
		}
		nb := len(st.buckets) + 1
		for i := 0; i < s.slotCap; i++ {
			if !st.occ[i] {
				continue
			}
			p := Point{T: float64(uint64(i)*s.stride) * s.dt, V: st.val[i]}
			if st.kind == obs.KindHistogram {
				p.Count = st.count[i]
				p.Counts = append([]uint64{}, st.counts[i*nb:(i+1)*nb]...)
			}
			se.Points = append(se.Points, p)
		}
		snap.Series = append(snap.Series, se)
	}
	return snap
}

// Quantile interpolates the q-quantile from bucket deltas the same way
// the registry snapshot does: linear within the winning bucket, with
// the +Inf overflow bucket clamped to the last finite bound. ok is
// false for an empty window or q outside [0, 1].
func Quantile(bounds []float64, counts []uint64, q float64) (float64, bool) {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, false
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0, false
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range counts {
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		if i >= len(bounds) {
			// +Inf bucket: clamp to the last finite bound.
			if len(bounds) == 0 {
				return 0, true
			}
			return bounds[len(bounds)-1], true
		}
		frac := (rank - float64(cum-c)) / float64(c)
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		return lo + (bounds[i]-lo)*frac, true
	}
	// rank ≤ total guarantees the loop returned; keep the compiler happy.
	return 0, false
}

// ---------------------------------------------------------------------
// Package-level default sampler (mirrors obs/event/signal singletons).

var active atomic.Pointer[Sampler]

// EnableWith installs s as the package default sampler.
func EnableWith(s *Sampler) { active.Store(s) }

// Disable removes the default sampler.
func Disable() { active.Store(nil) }

// Active returns the default sampler, or nil.
func Active() *Sampler { return active.Load() }

// Enabled reports whether a default sampler is installed.
func Enabled() bool { return active.Load() != nil }

func seriesSortKey(name string, labels []obs.Label) string {
	k := name
	for _, l := range labels {
		k += "\x1f" + l.Key + "\x1e" + l.Value
	}
	return k
}
