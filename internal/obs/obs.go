// Package obs is the repo-wide observability layer: a concurrency-safe
// metrics registry (counters, gauges and fixed-bucket histograms, all
// with labeled series) plus a lightweight span tracer, exposed in two
// formats — Prometheus-style text and a JSON snapshot.
//
// Instrumentation sites call the package-level helpers (Inc, Add, Set,
// Observe, StartSpan). By default no registry is installed and every
// helper is a no-op costing one atomic load, so hot paths stay
// effectively free until Enable installs a Registry. The sim engine can
// drive spans on virtual time via StartSpanAt / EndAt; everything else
// uses the registry clock (wall time unless SetClock overrides it).
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key=value dimension of a metric series or span.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label at a call site.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind classifies a metric family.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind the way the Prometheus text format does.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Recorder is the instrumentation surface. *Registry implements it, and
// Nop implements it as a guaranteed no-op, so components can accept a
// Recorder and be handed either.
type Recorder interface {
	// Enabled reports whether observations are being kept.
	Enabled() bool
	// Add increments the named counter by delta (delta ≥ 0).
	Add(name string, delta float64, labels ...Label)
	// Set sets the named gauge.
	Set(name string, value float64, labels ...Label)
	// Observe records one histogram sample. NaN samples are never
	// folded into the distribution; they are counted separately under
	// NaNCounterName so a poisoned estimator is visible, not viral.
	Observe(name string, value float64, labels ...Label)
	// StartSpan opens a span at the recorder clock's current time.
	StartSpan(name string, labels ...Label) *Span
	// StartSpanAt opens a span at an explicit time (virtual clocks).
	StartSpanAt(name string, at float64, labels ...Label) *Span
}

// Nop is the Recorder that records nothing.
type Nop struct{}

// Enabled always reports false.
func (Nop) Enabled() bool { return false }

// Add discards the observation.
func (Nop) Add(string, float64, ...Label) {}

// Set discards the observation.
func (Nop) Set(string, float64, ...Label) {}

// Observe discards the observation.
func (Nop) Observe(string, float64, ...Label) {}

// StartSpan returns the nil span, whose methods all no-op.
func (Nop) StartSpan(string, ...Label) *Span { return nil }

// StartSpanAt returns the nil span, whose methods all no-op.
func (Nop) StartSpanAt(string, float64, ...Label) *Span { return nil }

// NaNCounterName is the counter family that counts NaN samples dropped
// by Observe, labeled by the metric they were aimed at.
const NaNCounterName = "obs_nan_observations_total"

// SampleSink receives every metric update, pre-resolved to a per-series
// handle, so a time-series store (internal/obs/tsdb) can fold updates
// into virtual-time slots without any map lookups on the hot path. Both
// methods are called with the registry mutex held: implementations must
// not call back into the registry, and Record must not allocate in
// steady state (BindSeries runs once per series and may).
type SampleSink interface {
	// BindSeries is called on a series' first update after the sink is
	// installed. buckets is nil except for histograms. The returned
	// handle is passed verbatim to every subsequent Record.
	BindSeries(name string, kind Kind, labels []Label, buckets []float64) any
	// Record folds one update at virtual time t (seconds): the delta
	// for counters, the new value for gauges, the sample for
	// histograms.
	Record(handle any, t, value float64)
}

// DefaultBuckets bound histograms that were not given explicit buckets
// via RegisterBuckets: decades from 1 µs to 100 (seconds, mostly).
var DefaultBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100}

// bucketTemplates maps histogram family names to their bucket bounds.
// Instrumented packages register their families from init so any
// Registry enabled later picks the right shape up.
var (
	bucketMu        sync.Mutex
	bucketTemplates = map[string][]float64{}
)

// RegisterBuckets declares the bucket upper bounds for a histogram
// family. Bounds are sorted; registration is idempotent (last wins).
func RegisterBuckets(name string, bounds ...float64) {
	b := append([]float64{}, bounds...)
	sort.Float64s(b)
	bucketMu.Lock()
	bucketTemplates[name] = b
	bucketMu.Unlock()
}

func bucketsFor(name string) []float64 {
	bucketMu.Lock()
	defer bucketMu.Unlock()
	if b, ok := bucketTemplates[name]; ok {
		return b
	}
	return DefaultBuckets
}

// series is one labeled instance of a metric family.
type series struct {
	labels []Label // sorted by key
	// counter/gauge state.
	value float64
	// histogram state.
	counts   []uint64 // one per bucket bound, plus the +Inf overflow
	count    uint64
	sum      float64
	min, max float64
	// sink is the SampleSink handle, bound lazily on first update.
	sink any
}

// family groups the series sharing one metric name.
type family struct {
	kind    Kind
	buckets []float64
	series  map[string]*series
	order   []string // insertion order for stable exposition
}

// Registry is a concurrency-safe metric and span store.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // family insertion order

	clock func() float64
	sink  SampleSink

	nextSpanID uint64
	spans      []SpanRecord
	maxSpans   int
	dropped    uint64
}

// NewRegistry returns an empty registry on the wall clock.
func NewRegistry() *Registry {
	return &Registry{
		families: map[string]*family{},
		clock:    func() float64 { return float64(time.Now().UnixNano()) / 1e9 },
		maxSpans: 4096,
	}
}

// SetClock replaces the registry clock (seconds). The sim engine uses
// this to put spans on virtual time.
func (r *Registry) SetClock(fn func() float64) {
	if fn == nil {
		return
	}
	r.mu.Lock()
	r.clock = fn
	r.mu.Unlock()
}

// SetSampleSink installs (or, with nil, removes) the registry's sample
// sink. Install it before recording: series touched while no sink was
// set keep a nil handle until their next update, so samples recorded in
// between are seen by the registry but not the sink.
func (r *Registry) SetSampleSink(s SampleSink) {
	r.mu.Lock()
	r.sink = s
	r.mu.Unlock()
}

// Now returns the registry clock's current time in seconds.
func (r *Registry) Now() float64 {
	r.mu.Lock()
	fn := r.clock
	r.mu.Unlock()
	return fn()
}

// Enabled reports true: an installed Registry keeps observations.
func (r *Registry) Enabled() bool { return true }

// seriesKey encodes sorted labels into a map key.
func seriesKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte(0x1f)
		b.WriteString(l.Value)
		b.WriteByte(0x1e)
	}
	return b.String()
}

func sortLabels(labels []Label) []Label {
	if len(labels) < 2 {
		return labels
	}
	out := append([]Label{}, labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// getSeries finds or creates a series; caller holds r.mu.
func (r *Registry) getSeries(name string, kind Kind, labels []Label) *series {
	f, ok := r.families[name]
	if !ok {
		f = &family{kind: kind, series: map[string]*series{}}
		if kind == KindHistogram {
			f.buckets = bucketsFor(name)
		}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	labels = sortLabels(labels)
	key := seriesKey(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: labels, min: math.Inf(1), max: math.Inf(-1)}
		if kind == KindHistogram {
			s.counts = make([]uint64, len(f.buckets)+1)
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// sample forwards one update to the sink; caller holds r.mu.
func (r *Registry) sample(name string, s *series, kind Kind, t, v float64) {
	if r.sink == nil {
		return
	}
	if s.sink == nil {
		var buckets []float64
		if kind == KindHistogram {
			buckets = r.families[name].buckets
		}
		s.sink = r.sink.BindSeries(name, kind, s.labels, buckets)
	}
	r.sink.Record(s.sink, t, v)
}

// Add increments a counter. Negative deltas are ignored (counters are
// monotone by contract).
func (r *Registry) Add(name string, delta float64, labels ...Label) {
	r.AddAt(0, name, delta, labels...)
}

// AddAt is Add at an explicit virtual time (seconds), which the sample
// sink uses to place the delta on the time axis. The registry value is
// time-independent; Add is AddAt at t = 0.
func (r *Registry) AddAt(t float64, name string, delta float64, labels ...Label) {
	if delta < 0 || math.IsNaN(delta) {
		return
	}
	r.mu.Lock()
	s := r.getSeries(name, KindCounter, labels)
	s.value += delta
	r.sample(name, s, KindCounter, t, delta)
	r.mu.Unlock()
}

// Set sets a gauge.
func (r *Registry) Set(name string, value float64, labels ...Label) {
	r.SetAt(0, name, value, labels...)
}

// SetAt is Set at an explicit virtual time (seconds). Within one sample
// slot the sink keeps the value with the latest t, so gauge series stay
// deterministic however worker goroutines interleave.
func (r *Registry) SetAt(t float64, name string, value float64, labels ...Label) {
	r.mu.Lock()
	s := r.getSeries(name, KindGauge, labels)
	s.value = value
	r.sample(name, s, KindGauge, t, value)
	r.mu.Unlock()
}

// Observe records one histogram sample. NaN samples are dropped from
// the distribution and counted under NaNCounterName instead, so a NaN
// estimate (e.g. an inestimable SNR) cannot poison min/mean/max.
func (r *Registry) Observe(name string, value float64, labels ...Label) {
	r.ObserveAt(0, name, value, labels...)
}

// ObserveAt is Observe at an explicit virtual time (seconds).
func (r *Registry) ObserveAt(t float64, name string, value float64, labels ...Label) {
	if math.IsNaN(value) {
		r.AddAt(t, NaNCounterName, 1, Label{Key: "metric", Value: name})
		return
	}
	r.mu.Lock()
	s := r.getSeries(name, KindHistogram, labels)
	f := r.families[name]
	i := sort.SearchFloat64s(f.buckets, value) // first bound ≥ value; len = +Inf
	s.counts[i]++
	s.count++
	s.sum += value
	s.min = math.Min(s.min, value)
	s.max = math.Max(s.max, value)
	r.sample(name, s, KindHistogram, t, value)
	r.mu.Unlock()
}

// ---------------------------------------------------------------------
// Package-level default recorder.

var active atomic.Pointer[Registry]

// Enable installs a fresh Registry as the package default and returns
// it. Until Enable is called every package-level helper is a no-op.
func Enable() *Registry {
	r := NewRegistry()
	active.Store(r)
	return r
}

// EnableWith installs an existing Registry as the package default.
func EnableWith(r *Registry) { active.Store(r) }

// Disable removes the default Registry; helpers become no-ops again.
func Disable() { active.Store(nil) }

// Active returns the installed Registry, or nil when disabled.
func Active() *Registry { return active.Load() }

// Default returns the active recorder: the installed Registry, or Nop.
func Default() Recorder {
	if r := active.Load(); r != nil {
		return r
	}
	return Nop{}
}

// Enabled reports whether a Registry is installed.
func Enabled() bool { return active.Load() != nil }

// Inc increments a counter on the default recorder by 1.
func Inc(name string, labels ...Label) {
	if r := active.Load(); r != nil {
		r.Add(name, 1, labels...)
	}
}

// Add increments a counter on the default recorder.
func Add(name string, delta float64, labels ...Label) {
	if r := active.Load(); r != nil {
		r.Add(name, delta, labels...)
	}
}

// Set sets a gauge on the default recorder.
func Set(name string, value float64, labels ...Label) {
	if r := active.Load(); r != nil {
		r.Set(name, value, labels...)
	}
}

// Observe records a histogram sample on the default recorder.
func Observe(name string, value float64, labels ...Label) {
	if r := active.Load(); r != nil {
		r.Observe(name, value, labels...)
	}
}

// IncAt increments a counter by 1 at an explicit virtual time.
func IncAt(t float64, name string, labels ...Label) {
	if r := active.Load(); r != nil {
		r.AddAt(t, name, 1, labels...)
	}
}

// AddAt increments a counter at an explicit virtual time.
func AddAt(t float64, name string, delta float64, labels ...Label) {
	if r := active.Load(); r != nil {
		r.AddAt(t, name, delta, labels...)
	}
}

// SetAt sets a gauge at an explicit virtual time.
func SetAt(t float64, name string, value float64, labels ...Label) {
	if r := active.Load(); r != nil {
		r.SetAt(t, name, value, labels...)
	}
}

// ObserveAt records a histogram sample at an explicit virtual time.
func ObserveAt(t float64, name string, value float64, labels ...Label) {
	if r := active.Load(); r != nil {
		r.ObserveAt(t, name, value, labels...)
	}
}

// Clock returns the default recorder's current time in seconds, or 0
// when disabled (the paired Observe is a no-op then anyway).
func Clock() float64 {
	if r := active.Load(); r != nil {
		return r.Now()
	}
	return 0
}

// StartSpan opens a span on the default recorder (nil when disabled).
func StartSpan(name string, labels ...Label) *Span {
	if r := active.Load(); r != nil {
		return r.StartSpan(name, labels...)
	}
	return nil
}

// StartSpanAt opens a span at an explicit time on the default recorder.
func StartSpanAt(name string, at float64, labels ...Label) *Span {
	if r := active.Load(); r != nil {
		return r.StartSpanAt(name, at, labels...)
	}
	return nil
}

// sanitizeName maps arbitrary metric/label names onto the Prometheus
// text format's charset so exposition is total rather than failing.
func sanitizeName(name string) string {
	ok := true
	for _, c := range name {
		if !(c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
			ok = false
			break
		}
	}
	if ok && name != "" {
		return name
	}
	var b strings.Builder
	for _, c := range name {
		if c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			b.WriteRune(c)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label{}, labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		// Quote by hand: escapeLabelValue already applies the exposition
		// format's escaping (\\, \", \n), and %q on top of it would escape
		// the escapes, so a value like `2"GHz` would scrape as `2\\\"GHz`.
		parts[i] = sanitizeName(l.Key) + `="` + escapeLabelValue(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}
