package obs

// Span is one timed operation. Spans form trees through StartChild and
// carry free-form attributes. A nil *Span is the no-op span: every
// method is nil-safe, so disabled instrumentation costs a nil check.
type Span struct {
	reg    *Registry
	id     uint64
	parent uint64
	name   string
	start  float64
	attrs  []Label
}

// SpanRecord is one finished span as kept by the registry and exposed
// in snapshots.
type SpanRecord struct {
	ID       uint64  `json:"id"`
	ParentID uint64  `json:"parent_id,omitempty"`
	Name     string  `json:"name"`
	StartS   float64 `json:"start_s"`
	EndS     float64 `json:"end_s"`
	DurS     float64 `json:"dur_s"`
	Attrs    []Label `json:"attrs,omitempty"`
}

// StartSpan opens a root span at the registry clock's current time.
func (r *Registry) StartSpan(name string, labels ...Label) *Span {
	return r.StartSpanAt(name, r.Now(), labels...)
}

// StartSpanAt opens a root span at an explicit time in seconds — the
// hook virtual-clock callers (the sim engine) use.
func (r *Registry) StartSpanAt(name string, at float64, labels ...Label) *Span {
	r.mu.Lock()
	r.nextSpanID++
	id := r.nextSpanID
	r.mu.Unlock()
	return &Span{reg: r, id: id, name: name, start: at, attrs: append([]Label{}, labels...)}
}

// StartChild opens a sub-span at the registry clock's current time.
func (s *Span) StartChild(name string, labels ...Label) *Span {
	if s == nil {
		return nil
	}
	return s.StartChildAt(name, s.reg.Now(), labels...)
}

// StartChildAt opens a sub-span at an explicit time.
func (s *Span) StartChildAt(name string, at float64, labels ...Label) *Span {
	if s == nil {
		return nil
	}
	c := s.reg.StartSpanAt(name, at, labels...)
	c.parent = s.id
	return c
}

// SetAttr attaches (or appends) one attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Label{Key: key, Value: value})
}

// End closes the span at the registry clock's current time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndAt(s.reg.Now())
}

// EndAt closes the span at an explicit time and records it. The
// registry keeps at most maxSpans finished spans; older runs are not
// evicted — further spans are counted as dropped so a snapshot can say
// the trace is truncated.
func (s *Span) EndAt(at float64) {
	if s == nil {
		return
	}
	if at < s.start {
		// An end before the start (a virtual-clock caller mixing time
		// bases) would record a negative duration; clamp to a zero-length
		// span at the start instead.
		at = s.start
	}
	rec := SpanRecord{
		ID:       s.id,
		ParentID: s.parent,
		Name:     s.name,
		StartS:   s.start,
		EndS:     at,
		DurS:     at - s.start,
		Attrs:    s.attrs,
	}
	r := s.reg
	r.mu.Lock()
	if len(r.spans) < r.maxSpans {
		r.spans = append(r.spans, rec)
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

// SetMaxSpans bounds the finished-span buffer (0 keeps the default).
func (r *Registry) SetMaxSpans(n int) {
	if n <= 0 {
		return
	}
	r.mu.Lock()
	r.maxSpans = n
	r.mu.Unlock()
}

// Spans returns a copy of the finished spans and how many were dropped
// after the buffer filled.
func (r *Registry) Spans() ([]SpanRecord, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SpanRecord{}, r.spans...), r.dropped
}
