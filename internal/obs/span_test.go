package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestSetMaxSpansTruncationAccounting: once the finished-span buffer
// fills, every further End increments the drop counter and the kept
// records are exactly the first maxSpans, in completion order.
func TestSetMaxSpansTruncationAccounting(t *testing.T) {
	r := NewRegistry()
	r.SetMaxSpans(3)
	for i := 0; i < 7; i++ {
		sp := r.StartSpanAt(fmt.Sprintf("op%d", i), float64(i))
		sp.EndAt(float64(i) + 0.5)
	}
	spans, dropped := r.Spans()
	if len(spans) != 3 || dropped != 4 {
		t.Fatalf("kept %d spans with %d dropped, want 3 kept / 4 dropped", len(spans), dropped)
	}
	for i, sp := range spans {
		if sp.Name != fmt.Sprintf("op%d", i) {
			t.Fatalf("span %d is %q — truncation must keep the earliest spans", i, sp.Name)
		}
	}
	// The snapshot carries the same accounting.
	snap := r.Snapshot()
	if len(snap.Spans) != 3 || snap.DroppedSpans != 4 {
		t.Fatalf("snapshot: %d spans, %d dropped", len(snap.Spans), snap.DroppedSpans)
	}
	// SetMaxSpans(0) keeps the current bound rather than unbounding it.
	r.SetMaxSpans(0)
	r.StartSpanAt("late", 100).EndAt(101)
	if spans, dropped = r.Spans(); len(spans) != 3 || dropped != 5 {
		t.Fatalf("after SetMaxSpans(0): %d spans, %d dropped", len(spans), dropped)
	}
}

// TestEndAtBeforeStart: an end time earlier than the start (a caller
// mixing wall and virtual clocks) must not record a negative duration.
func TestEndAtBeforeStart(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpanAt("backwards", 10)
	sp.EndAt(4)
	spans, _ := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	rec := spans[0]
	if rec.DurS < 0 {
		t.Fatalf("negative duration recorded: %+v", rec)
	}
	if rec.StartS != 10 || rec.EndS != 10 || rec.DurS != 0 {
		t.Fatalf("want zero-length span clamped at start: %+v", rec)
	}
}

// TestConcurrentSpansAndReads hammers StartSpan/End from many
// goroutines while others snapshot the buffer — the -race coverage for
// the span path the telemetry server reads while simulations run.
func TestConcurrentSpansAndReads(t *testing.T) {
	r := NewRegistry()
	r.SetMaxSpans(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := r.StartSpanAt("work", float64(i))
				sp.SetAttr("w", fmt.Sprintf("%d", w))
				child := sp.StartChildAt("inner", float64(i))
				child.EndAt(float64(i) + 0.1)
				sp.EndAt(float64(i) + 0.2)
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				spans, _ := r.Spans()
				for _, sp := range spans {
					if sp.DurS < 0 {
						t.Error("negative duration observed")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	spans, dropped := r.Spans()
	if len(spans) != 64 {
		t.Fatalf("kept %d spans, want the 64-span bound", len(spans))
	}
	// 4 workers × 200 iterations × 2 spans = 1600 ends total.
	if got := uint64(len(spans)) + dropped; got != 1600 {
		t.Fatalf("kept+dropped = %d, want 1600", got)
	}
}
