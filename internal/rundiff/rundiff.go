// Package rundiff compares the metric snapshots of two run directories
// the way tools/benchgate compares benchmark files: per-series deltas
// with relative/absolute tolerance gates, rendered as an
// internal/render table. `mmtag diff -a DIR -b DIR` drives it and exits
// nonzero when any gated metric moved beyond tolerance, so CI can gate
// metric regressions between pinned experiment runs.
//
// Counters and gauges compare by value. Histograms compare by sample
// count and by interpolated p50/p99 — deliberately not by sum, which
// accumulates in scheduling order and is not bit-stable across runs.
// Wall-clock metrics (DefaultSkip) are excluded for the same reason.
package rundiff

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/obs/tsdb"
	"github.com/mmtag/mmtag/internal/render"
)

// DefaultSkip lists metric families whose values depend on the wall
// clock or scheduler rather than the workload; they are never gated.
// It extends the sampler's skip list so the two stay in sync.
var DefaultSkip = append([]string{obs.NaNCounterName}, tsdb.WallClockMetrics...)

// Options tune the comparison.
type Options struct {
	// RelTol passes a row when |b−a| / max(|a|,|b|) stays within it.
	RelTol float64
	// AbsTol passes a row when |b−a| stays within it regardless of the
	// relative move (floor for near-zero metrics).
	AbsTol float64
	// Skip names additional metric families to exclude.
	Skip []string
}

// Result is the rendered comparison.
type Result struct {
	// Table lists one row per compared statistic.
	Table *render.Table
	// Compared / Failures / Skipped count statistic rows.
	Compared int
	Failures int
	Skipped  int
}

// stat is one comparable number derived from a series.
type stat struct {
	metric string
	labels string
	name   string // "value" | "count" | "p50" | "p99"
	a, b   float64
	hasA   bool
	hasB   bool
}

// Diff loads metrics.json from both run directories and compares them.
func Diff(aDir, bDir string, opt Options) (*Result, error) {
	a, err := loadSnapshot(aDir)
	if err != nil {
		return nil, err
	}
	b, err := loadSnapshot(bDir)
	if err != nil {
		return nil, err
	}
	skip := map[string]bool{}
	for _, n := range DefaultSkip {
		skip[n] = true
	}
	for _, n := range opt.Skip {
		skip[n] = true
	}

	stats := map[string]*stat{}
	var order []string
	fold := func(snap *obs.Snapshot, sideB bool) int {
		skipped := 0
		for _, m := range snap.Metrics {
			if skip[m.Name] {
				skipped++
				continue
			}
			for _, s := range seriesStats(snap, m) {
				key := s.metric + "\x1f" + s.labels + "\x1f" + s.name
				st, ok := stats[key]
				if !ok {
					st = &stat{metric: s.metric, labels: s.labels, name: s.name,
						a: math.NaN(), b: math.NaN()}
					stats[key] = st
					order = append(order, key)
				}
				if sideB {
					st.b, st.hasB = s.b, true
				} else {
					st.a, st.hasA = s.a, true
				}
			}
		}
		return skipped
	}
	// seriesStats writes the value into .a or .b depending on the side.
	skippedA := fold(a, false)
	_ = fold(b, true)
	sort.Strings(order)

	res := &Result{Skipped: skippedA}
	tab := render.New("metric diff",
		render.Column{Header: "metric"},
		render.Column{Header: "stat"},
		render.Column{Header: "a", Align: render.Right,
			Format: render.FloatFunc(func(f float64) string { return fmt.Sprintf("%.6g", f) })},
		render.Column{Header: "b", Align: render.Right,
			Format: render.FloatFunc(func(f float64) string { return fmt.Sprintf("%.6g", f) })},
		render.Column{Header: "delta", Align: render.Right,
			Format: render.FloatFunc(func(f float64) string { return fmt.Sprintf("%+.3g", f) })},
		render.Column{Header: "rel", Align: render.Right,
			Format: render.FloatFunc(func(f float64) string { return fmt.Sprintf("%.3g", f) })},
		render.Column{Header: "status"},
	)
	for _, key := range order {
		st := stats[key]
		label := st.metric
		if st.labels != "" {
			label += "{" + st.labels + "}"
		}
		delta := st.b - st.a
		rel := relDiff(st.a, st.b)
		status := "ok"
		switch {
		case !st.hasA || !st.hasB:
			status = "FAIL (one-sided)"
			res.Failures++
		case math.Abs(delta) <= opt.AbsTol || rel <= opt.RelTol:
			// within tolerance
		default:
			status = "FAIL"
			res.Failures++
		}
		res.Compared++
		tab.Add(label, st.name, st.a, st.b, delta, rel, status)
	}
	tab.Note("%d statistic(s) compared, %d beyond tolerance (rel %.3g, abs %.3g), %d wall-clock metric(s) skipped",
		res.Compared, res.Failures, opt.RelTol, opt.AbsTol, res.Skipped)
	res.Table = tab
	return res, nil
}

// seriesStats derives the comparable numbers for one series. The
// returned stats carry the value in both a and b; Diff keeps the side
// it is folding.
func seriesStats(snap *obs.Snapshot, m obs.MetricSnapshot) []stat {
	labels := labelString(m.Labels)
	switch m.Kind {
	case "counter", "gauge":
		return []stat{{metric: m.Name, labels: labels, name: "value", a: m.Value, b: m.Value}}
	case "histogram":
		out := []stat{{metric: m.Name, labels: labels, name: "count",
			a: float64(m.Count), b: float64(m.Count)}}
		for _, q := range []struct {
			name string
			q    float64
		}{{"p50", 0.5}, {"p99", 0.99}} {
			if v, ok := snap.Quantile(m.Name, q.q, labelList(m.Labels)...); ok {
				out = append(out, stat{metric: m.Name, labels: labels, name: q.name, a: v, b: v})
			}
		}
		return out
	}
	return nil
}

func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += ","
		}
		s += k + "=" + labels[k]
	}
	return s
}

func labelList(labels map[string]string) []obs.Label {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]obs.Label, 0, len(keys))
	for _, k := range keys {
		out = append(out, obs.L(k, labels[k]))
	}
	return out
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 || math.IsNaN(den) {
		return math.Inf(1)
	}
	return math.Abs(b-a) / den
}

func loadSnapshot(dir string) (*obs.Snapshot, error) {
	path := filepath.Join(dir, "metrics.json")
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("rundiff: %w (is %q a -rundir with -metrics recorded?)", err, dir)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("rundiff: parse %s: %w", path, err)
	}
	return &snap, nil
}
