package rundiff

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/mmtag/mmtag/internal/obs"
)

// writeRun materializes a registry snapshot as DIR/metrics.json.
func writeRun(t *testing.T, fill func(r *obs.Registry)) string {
	t.Helper()
	reg := obs.NewRegistry()
	fill(reg)
	data, err := reg.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "metrics.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func baseline(r *obs.Registry) {
	r.Add("core_bursts_decoded_total", 100, obs.L("bw", "2 GHz"))
	r.Add("core_bit_errors_total", 4)
	r.Set("sim_queue_depth", 0)
	r.Add("core_beam_dwell_seconds", 0.123) // wall clock: must be skipped
	for i := 0; i < 50; i++ {
		r.Observe("mac_arq_frame_latency_seconds", 2e-6)
	}
}

func TestIdenticalRunsPass(t *testing.T) {
	a := writeRun(t, baseline)
	b := writeRun(t, baseline)
	res, err := Diff(a, b, Options{RelTol: 0.05, AbsTol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 {
		t.Fatalf("identical runs must pass:\n%s", res.Table.Plain())
	}
	if res.Compared == 0 || res.Skipped == 0 {
		t.Fatalf("compared=%d skipped=%d, want both > 0", res.Compared, res.Skipped)
	}
	if out := res.Table.Plain(); strings.Contains(out, "core_beam_dwell_seconds") {
		t.Fatalf("wall-clock metric must not be compared:\n%s", out)
	}
}

func TestDegradedRunFails(t *testing.T) {
	a := writeRun(t, baseline)
	b := writeRun(t, func(r *obs.Registry) {
		r.Add("core_bursts_decoded_total", 60, obs.L("bw", "2 GHz")) // −40%
		r.Add("core_bit_errors_total", 400)                          // 100×
		r.Set("sim_queue_depth", 0)
		for i := 0; i < 50; i++ {
			r.Observe("mac_arq_frame_latency_seconds", 9e-5) // much slower
		}
	})
	res, err := Diff(a, b, Options{RelTol: 0.05, AbsTol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Fatalf("degraded run must fail:\n%s", res.Table.Plain())
	}
	out := res.Table.Plain()
	for _, want := range []string{"FAIL", "core_bit_errors_total", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestOneSidedSeriesFails(t *testing.T) {
	a := writeRun(t, baseline)
	b := writeRun(t, func(r *obs.Registry) {
		baseline(r)
		r.Add("mac_arq_retries_total", 3) // only in b
	})
	res, err := Diff(a, b, Options{RelTol: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 || !strings.Contains(res.Table.Plain(), "one-sided") {
		t.Fatalf("one-sided series must fail:\n%s", res.Table.Plain())
	}
}

func TestSkipOption(t *testing.T) {
	a := writeRun(t, baseline)
	b := writeRun(t, func(r *obs.Registry) {
		r.Add("core_bursts_decoded_total", 100, obs.L("bw", "2 GHz"))
		r.Add("core_bit_errors_total", 9999)
		r.Set("sim_queue_depth", 0)
		for i := 0; i < 50; i++ {
			r.Observe("mac_arq_frame_latency_seconds", 2e-6)
		}
	})
	res, err := Diff(a, b, Options{RelTol: 0.05, Skip: []string{"core_bit_errors_total"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 {
		t.Fatalf("skipped metric must not gate:\n%s", res.Table.Plain())
	}
}

func TestMissingMetricsFile(t *testing.T) {
	if _, err := Diff(t.TempDir(), t.TempDir(), Options{}); err == nil {
		t.Fatal("missing metrics.json must error")
	}
}

func TestAbsToleranceFloor(t *testing.T) {
	a := writeRun(t, func(r *obs.Registry) { r.Set("g", 1e-13) })
	b := writeRun(t, func(r *obs.Registry) { r.Set("g", 2e-13) })
	res, err := Diff(a, b, Options{RelTol: 0.05, AbsTol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 {
		t.Fatalf("sub-floor absolute move must pass:\n%s", res.Table.Plain())
	}
}
