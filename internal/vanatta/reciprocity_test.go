package vanatta

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

// TestBistaticReciprocity: the Van Atta scattering matrix is reciprocal —
// the response observed at ψ for incidence θ equals the response at θ for
// incidence ψ. This follows from the pair wiring being symmetric and is a
// strong structural check on ReradiatedWeights.
func TestBistaticReciprocity(t *testing.T) {
	a := mustNew(t, 6)
	f := func(rawT, rawP uint16) bool {
		theta := (float64(rawT)/65535*2 - 1) * 1.2 // uniform ±69°
		psi := (float64(rawP)/65535*2 - 1) * 1.2
		ab := a.BistaticResponse(theta, psi, f24)
		ba := a.BistaticResponse(psi, theta, f24)
		return cmplx.Abs(ab-ba) <= 1e-9*(1+cmplx.Abs(ab))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestBistaticSymmetryInSign: for a symmetric array the pattern is even
// in (θ, ψ) → (−θ, −ψ).
func TestBistaticSymmetryInSign(t *testing.T) {
	a := mustNew(t, 8)
	f := func(rawT, rawP uint16) bool {
		theta := (float64(rawT)/65535*2 - 1) * 1.0 // uniform ±57°
		psi := (float64(rawP)/65535*2 - 1) * 1.0
		p1 := cmplx.Abs(a.BistaticResponse(theta, psi, f24))
		p2 := cmplx.Abs(a.BistaticResponse(-theta, -psi, f24))
		return math.Abs(p1-p2) <= 1e-9*(1+p1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestMonostaticFrequencyRobustness: retrodirectivity holds across the
// whole 24 GHz ISM band the tag is "tuned to cover" (paper §7) — the
// element detunes slightly off 24 GHz, reducing amplitude, but the beam
// still points home.
func TestMonostaticFrequencyRobustness(t *testing.T) {
	a := mustNew(t, 6)
	for _, f := range []float64{23.6e9, 24e9, 24.4e9} {
		if e := a.RetroErrorDeg(0.4, f); e > 2 {
			t.Errorf("f=%.2f GHz: retro error %g°", f/1e9, e)
		}
	}
	// Amplitude is strongest at resonance.
	on := cmplx.Abs(a.MonostaticResponse(0.2, 24e9))
	off := cmplx.Abs(a.MonostaticResponse(0.2, 24.4e9))
	if off >= on {
		t.Errorf("off-resonance response %g not below resonance %g", off, on)
	}
}

// TestModulationStatesIndependentOfOrder: querying modulation states must
// be idempotent and not depend on the current switch state.
func TestModulationStatesIndependentOfOrder(t *testing.T) {
	a := mustNew(t, 6)
	a.SetSwitch(false)
	a0a, a1a := a.ModulationStates(0.3, f24)
	a.SetSwitch(true)
	a0b, a1b := a.ModulationStates(0.3, f24)
	if cmplx.Abs(a0a-a0b) > 1e-15 || cmplx.Abs(a1a-a1b) > 1e-15 {
		t.Error("modulation states depend on prior switch state")
	}
}
