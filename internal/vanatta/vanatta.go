// Package vanatta implements the paper's core contribution: a passive
// retrodirective Van Atta array (paper §5.2, Fig. 3b) whose mirrored
// antenna pairs, joined by equal-phase transmission lines, re-radiate any
// incident plane wave back toward its direction of arrival — solving the
// mmWave beam-alignment problem with zero active components — plus the
// per-element RF switches that OOK-modulate the reflection (paper §6,
// Fig. 4).
//
// The math implemented here is exactly paper Eq. 4–5: element n receives
// x_n = x₀·e^{−jπ·n·sinθ} (Eq. 2), the interconnect swaps it to the
// mirrored element with a common phase φ, so the re-radiated feed is
// y'_n = e^{jφ}·x_{N−1−n}, which equals a transmit steering vector toward
// θ (Eq. 3) — the reflection tracks the incidence angle.
package vanatta

import (
	"fmt"
	"math"
	"math/cmplx"

	"github.com/mmtag/mmtag/internal/antenna"
	"github.com/mmtag/mmtag/internal/circuit"
)

// Array is a Van Atta retrodirective array: a ULA whose element i is wired
// to element N−1−i through a transmission line, every line having the same
// electrical phase.
type Array struct {
	// Geometry is the underlying antenna array (element pattern,
	// spacing). The paper's tag: 6 patch elements at λ/2.
	Geometry antenna.ULA
	// Element is the per-element circuit model (resonance + switch).
	Element circuit.PatchElement
	// Line is the pair interconnect; its PropagationGain sets the common
	// phase φ of Eq. 4 (and any line loss).
	Line circuit.TransmissionLine
	// PhaseErrorRad holds optional per-element line phase errors
	// (fabrication imperfections) applied on top of the common φ;
	// nil means a perfect array. Length must equal Geometry.N when set.
	PhaseErrorRad []float64

	switchOn bool
}

// New returns a paper-default tag: n patch elements at λ/2 spacing for
// frequency f (Hz), joined by matched lossless half-wavelength lines.
func New(n int, f float64) (*Array, error) {
	if n < 2 {
		return nil, fmt.Errorf("vanatta: need ≥ 2 elements, got %d", n)
	}
	if n%2 != 0 {
		return nil, fmt.Errorf("vanatta: element count must be even to pair, got %d", n)
	}
	ula, err := antenna.NewHalfWaveULA(n, antenna.NewPatch())
	if err != nil {
		return nil, err
	}
	elem := circuit.DefaultPatchElement()
	elem.ResonantHz = f
	line, err := circuit.LineForPhase(math.Pi, f, circuit.Z0Default, 3.3) // Rogers-class substrate
	if err != nil {
		return nil, err
	}
	return &Array{Geometry: ula, Element: elem, Line: line}, nil
}

// N returns the element count.
func (a *Array) N() int { return a.Geometry.N }

// SetSwitch drives all element switches: true shorts the antennas to
// ground (non-reflective, data '1'), false lets them resonate
// (retro-reflective, data '0'). Paper §6.
func (a *Array) SetSwitch(on bool) { a.switchOn = on }

// SwitchOn reports the current switch state.
func (a *Array) SwitchOn() bool { return a.switchOn }

// pairIndex returns the mirrored partner of element n.
func (a *Array) pairIndex(n int) int { return a.Geometry.N - 1 - n }

// ReradiatedWeights returns the feed phasors y'_n driving each element
// when a unit plane wave arrives from theta at frequency f — Eq. 4 with
// the element circuit applied twice (in at element N−1−n, out at n) and
// the line's gain/phase in between.
func (a *Array) ReradiatedWeights(theta float64, f float64) []complex128 {
	n := a.Geometry.N
	rx := a.Geometry.SteeringVector(theta) // x_n of Eq. 1/2 (element pattern included)
	tElem := a.Element.TransmissionAmplitude(f, a.switchOn)
	lg := a.Line.PropagationGain(f)
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		w := rx[a.pairIndex(i)] * lg * complex(tElem*tElem, 0)
		if a.PhaseErrorRad != nil && i < len(a.PhaseErrorRad) {
			w *= cmplx.Rect(1, a.PhaseErrorRad[i])
		}
		out[i] = w
	}
	return out
}

// BistaticResponse returns the complex scattered field toward observation
// angle psi for a unit plane wave incident from theta, at frequency f.
// The element pattern applies on both passes (receive and re-radiate).
func (a *Array) BistaticResponse(theta, psi, f float64) complex128 {
	w := a.ReradiatedWeights(theta, f)
	return a.Geometry.ArrayFactor(w, psi)
}

// MonostaticResponse returns the field scattered straight back toward the
// illuminator (psi = theta) — what the reader receives.
func (a *Array) MonostaticResponse(theta, f float64) complex128 {
	return a.BistaticResponse(theta, theta, f)
}

// PeakResponseAngle scans the bistatic pattern for an incident angle theta
// and returns the observation angle with the strongest scattering. A
// correct Van Atta array returns ≈ theta for any theta inside the element
// pattern's field of view.
func (a *Array) PeakResponseAngle(theta, f float64, scanMin, scanMax float64, points int) float64 {
	if points < 2 {
		points = 181
	}
	best, bestV := scanMin, -1.0
	for i := 0; i < points; i++ {
		psi := scanMin + (scanMax-scanMin)*float64(i)/float64(points-1)
		v := cmplx.Abs(a.BistaticResponse(theta, psi, f))
		if v > bestV {
			best, bestV = psi, v
		}
	}
	return best
}

// RetroGainDBi returns the tag's effective retrodirective aperture gain in
// dBi toward the illuminator at incidence theta: the monostatic coherent
// sum normalized to the total captured feed power, i.e. the gain the
// two-way link budget should use for one pass. At boresight this is
// element gain + 10·log10(N).
func (a *Array) RetroGainDBi(theta, f float64) float64 {
	w := a.ReradiatedWeights(theta, f)
	return a.Geometry.GainDBi(w, theta)
}

// ModulationStates returns the complex monostatic reflection coefficients
// for the two switch states at (theta, f): alpha0 for data '0' (switches
// off, reflective) and alpha1 for data '1' (switches on, absorbed). The
// OOK constellation the reader sees is {alpha0, alpha1} scaled by the
// channel.
func (a *Array) ModulationStates(theta, f float64) (alpha0, alpha1 complex128) {
	saved := a.switchOn
	defer func() { a.switchOn = saved }()
	a.switchOn = false
	alpha0 = a.MonostaticResponse(theta, f)
	a.switchOn = true
	alpha1 = a.MonostaticResponse(theta, f)
	return alpha0, alpha1
}

// ModulationDepthDB returns the OOK power extinction ratio
// 20·log10(|alpha0|/|alpha1|) at (theta, f).
func (a *Array) ModulationDepthDB(theta, f float64) float64 {
	a0, a1 := a.ModulationStates(theta, f)
	m1 := cmplx.Abs(a1)
	if m1 == 0 {
		return math.Inf(1)
	}
	return 20 * math.Log10(cmplx.Abs(a0)/m1)
}

// RetroErrorDeg quantifies retrodirectivity: the absolute difference in
// degrees between the incidence angle and the scattered beam's peak, for
// incidence theta. Perfect Van Atta behaviour gives ≈ 0 for all theta.
func (a *Array) RetroErrorDeg(theta, f float64) float64 {
	peak := a.PeakResponseAngle(theta, f, -math.Pi/2, math.Pi/2, 721)
	return math.Abs(peak-theta) * 180 / math.Pi
}
