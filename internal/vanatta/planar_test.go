package vanatta

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestNewPlanarValidation(t *testing.T) {
	if _, err := NewPlanar(0, 4, f24); err == nil {
		t.Error("zero axis should fail")
	}
	if _, err := NewPlanar(3, 3, f24); err == nil {
		t.Error("odd×odd (unpaired center) should fail")
	}
	if _, err := NewPlanar(3, 2, f24); err != nil {
		t.Errorf("3x2 should pair fine: %v", err)
	}
	if _, err := NewPlanar(4, 3, f24); err != nil {
		t.Errorf("4x3 should pair fine: %v", err)
	}
}

func TestPlanarPairingIsInvolution(t *testing.T) {
	a, err := NewPlanar(4, 3, f24)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for i := 0; i < a.Geometry.N(); i++ {
		j := a.pairIndex(i)
		if a.pairIndex(j) != i {
			t.Fatalf("pairing not an involution at %d", i)
		}
		seen[j]++
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("element %d paired %d times", i, c)
		}
	}
}

// TestPlanarRetrodirectivity2D: the planar array reflects back to the
// incidence direction in BOTH azimuth and elevation.
func TestPlanarRetrodirectivity2D(t *testing.T) {
	a, err := NewPlanar(4, 4, f24)
	if err != nil {
		t.Fatal(err)
	}
	f := func(rawAz, rawEl uint16) bool {
		az := (float64(rawAz)/65535*2 - 1) * 0.5 // uniform ±28°, in the scan grid
		el := (float64(rawEl)/65535*2 - 1) * 0.5
		errDeg := a.RetroErrorDeg(az, el, f24, 61)
		// The element pattern pulls the product beam harder as the
		// *combined* off-boresight angle grows (cosθ = cos az · cos el):
		// corners of the ±28° box reach ≈39° combined.
		combined := math.Acos(math.Cos(az) * math.Cos(el))
		if combined < 0.35 { // within 20°
			return errDeg < 4
		}
		return errDeg < 9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 16}); err != nil {
		t.Error(err)
	}
}

// TestPlanarEq5PhaseIdentity: the re-radiated weights form a 2-D transmit
// steering vector toward the incidence direction (the planar Eq. 5).
func TestPlanarEq5PhaseIdentity(t *testing.T) {
	a, _ := NewPlanar(4, 4, f24)
	az, el := 0.3, -0.2
	w := a.ReradiatedWeights(az, el, f24)
	tx := a.Geometry.TransmitWeights(az, el)
	// w must equal tx up to one global complex constant.
	ref := w[0] / tx[0]
	for i := range w {
		if cmplx.Abs(w[i]/tx[i]-ref) > 1e-9*cmplx.Abs(ref) {
			t.Fatalf("element %d deviates from the steering vector", i)
		}
	}
}

func TestPlanarGainExceedsLinear(t *testing.T) {
	// A 4×4 planar tag has 16 elements: +4.3 dB over a 6-element ULA.
	planar, _ := NewPlanar(4, 4, f24)
	linear := mustNew(t, 6)
	gp := planar.RetroGainDBi(0, 0, f24)
	gl := linear.RetroGainDBi(0, f24)
	want := 10 * math.Log10(16.0/6.0)
	if math.Abs((gp-gl)-want) > 0.5 {
		t.Errorf("planar-vs-linear gain delta %.2f dB, want ≈%.2f", gp-gl, want)
	}
}

func TestPlanarSwitchModulation(t *testing.T) {
	a, _ := NewPlanar(4, 4, f24)
	a.SetSwitch(false)
	on := cmplx.Abs(a.MonostaticResponse(0.2, 0.1, f24))
	a.SetSwitch(true)
	off := cmplx.Abs(a.MonostaticResponse(0.2, 0.1, f24))
	if on <= 10*off {
		t.Errorf("planar modulation contrast too small: %g vs %g", on, off)
	}
}

func TestPlanarReducesToLinearAtZeroElevation(t *testing.T) {
	// An Nx×1 planar array is exactly an Nx ULA: monostatic responses
	// must agree at el=0.
	p, err := NewPlanar(6, 1, f24)
	if err != nil {
		t.Fatal(err)
	}
	l := mustNew(t, 6)
	for _, az := range []float64{0, 0.2, -0.4} {
		vp := cmplx.Abs(p.MonostaticResponse(az, 0, f24))
		vl := cmplx.Abs(l.MonostaticResponse(az, f24))
		if math.Abs(vp-vl) > 1e-9*(1+vl) {
			t.Errorf("az=%g: planar %g vs linear %g", az, vp, vl)
		}
	}
}
