package vanatta

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"github.com/mmtag/mmtag/internal/par"
)

const f24 = 24e9

func mustNew(t *testing.T, n int) *Array {
	t.Helper()
	a, err := New(n, f24)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, f24); err == nil {
		t.Error("0 elements should fail")
	}
	if _, err := New(5, f24); err == nil {
		t.Error("odd element count should fail (cannot pair)")
	}
	if _, err := New(6, f24); err != nil {
		t.Errorf("6 elements: %v", err)
	}
}

// TestEq5Retrodirectivity is the paper's central claim (Eq. 5): the
// re-radiated weights form a transmit steering vector toward the
// incidence angle, for any incidence angle.
func TestEq5Retrodirectivity(t *testing.T) {
	a := mustNew(t, 6)
	for _, theta := range []float64{0, 0.2, -0.35, 0.6, -0.8, 1.0} {
		w := a.ReradiatedWeights(theta, f24)
		// Eq. 5: y'_n = y'_0 · e^{+jπ·n·sinθ}. Verify the progressive
		// phase directly.
		for n := 1; n < len(w); n++ {
			got := cmplx.Phase(w[n] / w[0])
			want := math.Pi * float64(n) * math.Sin(theta)
			// Compare modulo 2π.
			d := math.Mod(got-want, 2*math.Pi)
			if d > math.Pi {
				d -= 2 * math.Pi
			}
			if d < -math.Pi {
				d += 2 * math.Pi
			}
			if math.Abs(d) > 1e-9 {
				t.Errorf("theta=%g element %d: phase %g, want %g", theta, n, got, want)
			}
		}
	}
}

func TestPeakAtIncidenceForAnyAngle(t *testing.T) {
	// Property: the scattered beam peaks at the incidence angle across
	// the field of view — the "regardless of the incidence angle" of the
	// abstract. The angle is derived from a uint16 so the draw is
	// genuinely uniform (quick's raw float64s are astronomically large
	// and would collapse under math.Mod), and the tolerance is banded:
	// the element pattern drags the *product* beam a few degrees at wide
	// angles even though the array phasing is exact (see E3).
	a := mustNew(t, 6)
	f := func(raw uint16) bool {
		theta := (float64(raw)/65535*2 - 1) * 1.0 // uniform ±57°
		errDeg := a.RetroErrorDeg(theta, f24)
		if math.Abs(theta) < 0.6 { // within ±34°
			return errDeg < 2
		}
		return errDeg < 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFixedBeamIsSpecularNotRetro(t *testing.T) {
	// The baseline tag's monostatic response must collapse off boresight
	// while the Van Atta response stays flat (paper §3).
	va := mustNew(t, 6)
	fb, err := NewFixedBeam(6, f24)
	if err != nil {
		t.Fatal(err)
	}
	theta := 0.5 // ≈ 29°
	vaP := cmplx.Abs(va.MonostaticResponse(theta, f24))
	fbP := cmplx.Abs(fb.MonostaticResponse(theta, f24))
	if vaP <= fbP*3 {
		t.Errorf("Van Atta (%g) should dominate fixed-beam (%g) off boresight", vaP, fbP)
	}
	// At boresight both work (and are comparable).
	vb := cmplx.Abs(va.MonostaticResponse(0, f24))
	fbB := cmplx.Abs(fb.MonostaticResponse(0, f24))
	if math.Abs(20*math.Log10(vb/fbB)) > 1 {
		t.Errorf("boresight responses should match: va %g fb %g", vb, fbB)
	}
	// Fixed-beam bistatic peak is specular: strongest toward −θ… for a
	// phase-conjugate-free array the scattered beam sits where the
	// progressive phase cancels, i.e. ψ with sinψ = −sinθ... wait: y_n =
	// x_n gives Σ e^{−jπn(sinθ+sinψ)}, coherent at ψ = −θ. Verify.
	peakPsi := -10.0
	peakV := -1.0
	for psi := -1.5; psi <= 1.5; psi += 0.005 {
		v := cmplx.Abs(fb.BistaticResponse(theta, psi, f24))
		if v > peakV {
			peakV, peakPsi = v, psi
		}
	}
	if math.Abs(peakPsi-(-theta)) > 0.05 {
		t.Errorf("fixed-beam peak at %g, want specular %g", peakPsi, -theta)
	}
}

func TestRetroGainAnchorsLinkBudget(t *testing.T) {
	// At boresight the retro gain equals element gain + 10log10(N):
	// 5 + 7.78 ≈ 12.8 dBi for the paper's 6-element tag.
	a := mustNew(t, 6)
	g := a.RetroGainDBi(0, f24)
	want := 5 + 10*math.Log10(6)
	if math.Abs(g-want) > 0.5 {
		t.Errorf("boresight retro gain %g, want ≈ %g", g, want)
	}
	// The gain holds (within the element pattern rolloff) across angles —
	// that is the whole point of the tag.
	g30 := a.RetroGainDBi(math.Pi/6, f24)
	if g-g30 > 4 {
		t.Errorf("retro gain drops too fast off boresight: %g → %g", g, g30)
	}
}

func TestMoreElementsMoreGain(t *testing.T) {
	// Paper §8: "the range and data-rate of mmTag can be further increased
	// by using more antenna elements".
	prev := math.Inf(-1)
	for _, n := range []int{2, 4, 6, 8, 12, 16} {
		a := mustNew(t, n)
		g := a.RetroGainDBi(0, f24)
		if g <= prev {
			t.Errorf("N=%d gain %g not above N-2 gain %g", n, g, prev)
		}
		prev = g
	}
}

func TestSwitchModulation(t *testing.T) {
	a := mustNew(t, 6)
	a0, a1 := a.ModulationStates(0, f24)
	if cmplx.Abs(a0) <= cmplx.Abs(a1) {
		t.Fatalf("switch-off reflection (%g) must exceed switch-on (%g)", cmplx.Abs(a0), cmplx.Abs(a1))
	}
	depth := a.ModulationDepthDB(0, f24)
	// Two passes through the element (in + out) double the single-element
	// contrast: expect a deep OOK extinction ratio.
	if depth < 30 {
		t.Errorf("modulation depth %g dB, want ≥ 30", depth)
	}
	// SetSwitch must not be permanently disturbed by ModulationStates.
	a.SetSwitch(true)
	a.ModulationStates(0, f24)
	if !a.SwitchOn() {
		t.Error("ModulationStates clobbered the switch state")
	}
}

func TestModulationDepthAcrossAngles(t *testing.T) {
	a := mustNew(t, 6)
	f := func(raw uint16) bool {
		theta := (float64(raw)/65535*2 - 1) * 0.9 // uniform ±51°
		return a.ModulationDepthDB(theta, f24) > 20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPhaseErrorsDegradeRetroGain(t *testing.T) {
	clean := mustNew(t, 8)
	dirty := mustNew(t, 8)
	dirty.PhaseErrorRad = []float64{0.8, -0.9, 0.7, -0.6, 0.9, -0.8, 0.5, -0.7}
	g0 := clean.RetroGainDBi(0.3, f24)
	g1 := dirty.RetroGainDBi(0.3, f24)
	if g1 >= g0 {
		t.Errorf("phase errors should cost gain: %g vs %g", g1, g0)
	}
}

func TestLineLossReducesResponse(t *testing.T) {
	a := mustNew(t, 6)
	base := cmplx.Abs(a.MonostaticResponse(0, f24))
	a.Line.LossDBpM = 500 // very lossy interconnect
	lossy := cmplx.Abs(a.MonostaticResponse(0, f24))
	if lossy >= base {
		t.Errorf("line loss should reduce the response: %g vs %g", lossy, base)
	}
}

func TestAngleSweepShape(t *testing.T) {
	va := mustNew(t, 6)
	fb, _ := NewFixedBeam(6, f24)
	thetas := []float64{-0.6, -0.3, 0, 0.3, 0.6}
	vaDB, fbDB := AngleSweep(va, fb, f24, thetas)
	if len(vaDB) != 5 || len(fbDB) != 5 {
		t.Fatal("sweep lengths")
	}
	// Van Atta: gentle rolloff, all within ~8 dB of boresight.
	for i, v := range vaDB {
		if v > 0.5 || v < -9 {
			t.Errorf("van atta sweep[%d] = %g dB out of expected band", i, v)
		}
	}
	// Fixed beam: boresight strong, ±0.6 rad collapsed (≥ 15 dB down).
	if fbDB[2] < -1 {
		t.Errorf("fixed-beam boresight %g dB", fbDB[2])
	}
	if fbDB[0] > -15 || fbDB[4] > -15 {
		t.Errorf("fixed-beam edges should collapse: %g, %g", fbDB[0], fbDB[4])
	}
}

// TestAngleSweepBatchingMatchesSequential pins the batched parallel sweep
// to a per-angle sequential reference: spanning several batches plus a
// ragged tail, every output slot must be bit-identical for any worker
// count.
func TestAngleSweepBatchingMatchesSequential(t *testing.T) {
	va := mustNew(t, 6)
	fb, _ := NewFixedBeam(6, f24)
	n := 3*angleSweepBatch + 17 // multiple full batches + partial tail
	thetas := make([]float64, n)
	for i := range thetas {
		thetas[i] = -1.2 + 2.4*float64(i)/float64(n-1)
	}
	ref := cmplx.Abs(va.MonostaticResponse(0, f24))
	wantVA := make([]float64, n)
	wantFB := make([]float64, n)
	for i, th := range thetas {
		wantVA[i] = ratioDB(cmplx.Abs(va.MonostaticResponse(th, f24)), ref)
		wantFB[i] = ratioDB(cmplx.Abs(fb.MonostaticResponse(th, f24)), ref)
	}
	for _, workers := range []int{1, 4} {
		prev := par.SetWorkers(workers)
		vaDB, fbDB := AngleSweep(va, fb, f24, thetas)
		par.SetWorkers(prev)
		for i := range thetas {
			if vaDB[i] != wantVA[i] || fbDB[i] != wantFB[i] {
				t.Fatalf("workers=%d slot %d: got (%g,%g) want (%g,%g)",
					workers, i, vaDB[i], fbDB[i], wantVA[i], wantFB[i])
			}
		}
	}
}

func TestPeakResponseAngleDefaultPoints(t *testing.T) {
	a := mustNew(t, 4)
	got := a.PeakResponseAngle(0.2, f24, -1.2, 1.2, 0) // 0 → default grid
	if math.Abs(got-0.2) > 0.05 {
		t.Errorf("peak at %g, want 0.2", got)
	}
}

// TestFixedBeamSwitchAndRetroGain: the fixed-beam baseline's switch must
// modulate its response like the Van Atta's, and its retro gain must
// fall off away from boresight (the property the Van Atta fixes).
func TestFixedBeamSwitchAndRetroGain(t *testing.T) {
	fb, err := NewFixedBeam(6, f24)
	if err != nil {
		t.Fatal(err)
	}
	va, err := New(6, f24)
	if err != nil {
		t.Fatal(err)
	}
	if va.N() != 6 {
		t.Fatalf("N() = %d, want 6", va.N())
	}
	open := cmplx.Abs(fb.MonostaticResponse(0, f24))
	fb.SetSwitch(true)
	shorted := cmplx.Abs(fb.MonostaticResponse(0, f24))
	fb.SetSwitch(false)
	if !(shorted < open) {
		t.Fatalf("switch on did not damp the response: on %g, off %g", shorted, open)
	}
	bore := fb.RetroGainDBi(0, f24)
	off := fb.RetroGainDBi(0.6, f24)
	if !(off < bore) {
		t.Fatalf("fixed beam retro gain off-boresight %g >= boresight %g", off, bore)
	}
}
