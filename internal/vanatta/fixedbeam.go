package vanatta

import (
	"math"
	"math/cmplx"

	"github.com/mmtag/mmtag/internal/antenna"
	"github.com/mmtag/mmtag/internal/circuit"
	"github.com/mmtag/mmtag/internal/par"
)

// FixedBeamTag is the baseline the paper contrasts mmTag against (§3,
// citing Kimionis et al.): a backscatter array whose elements each
// re-radiate their own received signal with no phase conjugation. Such a
// tag behaves like a flat mirror-plus-array: it scatters specularly
// (toward −θ), so the monostatic return collapses as soon as the tag is
// not facing the reader ("it only works when the tag is exactly in front
// of the reader").
type FixedBeamTag struct {
	Geometry antenna.ULA
	Element  circuit.PatchElement
	switchOn bool
}

// NewFixedBeam returns an n-element fixed-beam tag at frequency f with the
// same element stack as the Van Atta tag, for apples-to-apples comparison.
func NewFixedBeam(n int, f float64) (*FixedBeamTag, error) {
	ula, err := antenna.NewHalfWaveULA(n, antenna.NewPatch())
	if err != nil {
		return nil, err
	}
	elem := circuit.DefaultPatchElement()
	elem.ResonantHz = f
	return &FixedBeamTag{Geometry: ula, Element: elem}, nil
}

// SetSwitch drives the modulation switches, as for the Van Atta array.
func (t *FixedBeamTag) SetSwitch(on bool) { t.switchOn = on }

// BistaticResponse returns the scattered field toward psi for incidence
// theta: each element re-radiates its own phasor, y_n = x_n, which makes
// the scattering specular.
func (t *FixedBeamTag) BistaticResponse(theta, psi, f float64) complex128 {
	rx := t.Geometry.SteeringVector(theta)
	tr := t.Element.TransmissionAmplitude(f, t.switchOn)
	w := make([]complex128, len(rx))
	for i, v := range rx {
		w[i] = v * complex(tr*tr, 0)
	}
	return t.Geometry.ArrayFactor(w, psi)
}

// MonostaticResponse returns the field scattered back to the illuminator.
func (t *FixedBeamTag) MonostaticResponse(theta, f float64) complex128 {
	return t.BistaticResponse(theta, theta, f)
}

// RetroGainDBi returns the effective gain back toward the illuminator,
// which for the fixed-beam tag is high only near boresight.
func (t *FixedBeamTag) RetroGainDBi(theta, f float64) float64 {
	rx := t.Geometry.SteeringVector(theta)
	tr := t.Element.TransmissionAmplitude(f, t.switchOn)
	w := make([]complex128, len(rx))
	for i, v := range rx {
		w[i] = v * complex(tr*tr, 0)
	}
	g := t.Geometry.GainDBi(w, theta)
	if math.IsInf(g, -1) {
		return g
	}
	return g
}

// angleSweepBatch is how many angles one parallel work item evaluates.
// A single angle costs only a few hundred nanoseconds, far below the
// channel hand-off cost of the worker pool, so dispatching per angle
// made the parallel sweep *slower* than sequential. Batching restores
// a per-item grain coarse enough to amortize the dispatch.
const angleSweepBatch = 64

// AngleSweep compares monostatic power (dB, normalized to the Van Atta
// boresight) across incidence angles for both tag types — the data behind
// the paper's mobility argument (§3, §4).
//
// The per-angle responses are pure reads of the two tag models, so the
// sweep fans out across the par worker pool in batches of
// angleSweepBatch angles; each batch writes only its own output slots,
// keeping results identical for any worker count.
func AngleSweep(va *Array, fb *FixedBeamTag, f float64, thetas []float64) (vaDB, fbDB []float64) {
	vaDB = make([]float64, len(thetas))
	fbDB = make([]float64, len(thetas))
	ref := cmplx.Abs(va.MonostaticResponse(0, f))
	if ref == 0 {
		ref = 1
	}
	nBatches := (len(thetas) + angleSweepBatch - 1) / angleSweepBatch
	par.ForEach(nBatches, func(b int) {
		lo := b * angleSweepBatch
		hi := lo + angleSweepBatch
		if hi > len(thetas) {
			hi = len(thetas)
		}
		for i := lo; i < hi; i++ {
			th := thetas[i]
			v := cmplx.Abs(va.MonostaticResponse(th, f))
			fbv := cmplx.Abs(fb.MonostaticResponse(th, f))
			vaDB[i] = ratioDB(v, ref)
			fbDB[i] = ratioDB(fbv, ref)
		}
	})
	return vaDB, fbDB
}

func ratioDB(v, ref float64) float64 {
	if v <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(v/ref)
}
