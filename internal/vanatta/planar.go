package vanatta

import (
	"fmt"
	"math"
	"math/cmplx"

	"github.com/mmtag/mmtag/internal/antenna"
	"github.com/mmtag/mmtag/internal/circuit"
)

// PlanarArray is a 2-D Van Atta array: element (m,n) is wired to its
// point-symmetric partner (Nx−1−m, Ny−1−n) through equal-phase lines,
// giving retrodirectivity in *both* azimuth and elevation — the natural
// build-out of the paper's PCB tag (Fig. 5), which lays its elements on a
// plane anyway.
type PlanarArray struct {
	Geometry antenna.URA
	Element  circuit.PatchElement
	Line     circuit.TransmissionLine

	switchOn bool
}

// NewPlanar returns an nx×ny planar tag at frequency f. Both nx·ny must
// pair up under point symmetry, which requires the total count to be even
// (at least one even dimension).
func NewPlanar(nx, ny int, f float64) (*PlanarArray, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("vanatta: planar needs ≥ 1 element per axis, got %dx%d", nx, ny)
	}
	if (nx*ny)%2 != 0 {
		return nil, fmt.Errorf("vanatta: %dx%d has an unpaired center element", nx, ny)
	}
	ura, err := antenna.NewHalfWaveURA(nx, ny, antenna.NewPatch())
	if err != nil {
		return nil, err
	}
	elem := circuit.DefaultPatchElement()
	elem.ResonantHz = f
	line, err := circuit.LineForPhase(math.Pi, f, circuit.Z0Default, 3.3)
	if err != nil {
		return nil, err
	}
	return &PlanarArray{Geometry: ura, Element: elem, Line: line}, nil
}

// SetSwitch drives all modulation switches.
func (a *PlanarArray) SetSwitch(on bool) { a.switchOn = on }

// pairIndex returns the point-symmetric partner of row-major index i.
func (a *PlanarArray) pairIndex(i int) int {
	m := i / a.Geometry.Ny
	n := i % a.Geometry.Ny
	return (a.Geometry.Nx-1-m)*a.Geometry.Ny + (a.Geometry.Ny - 1 - n)
}

// ReradiatedWeights returns the feed phasors after the pair swap for a
// wave incident from (az, el) at frequency f.
func (a *PlanarArray) ReradiatedWeights(az, el, f float64) []complex128 {
	rx := a.Geometry.SteeringVector(az, el)
	tElem := a.Element.TransmissionAmplitude(f, a.switchOn)
	lg := a.Line.PropagationGain(f)
	out := make([]complex128, len(rx))
	for i := range out {
		out[i] = rx[a.pairIndex(i)] * lg * complex(tElem*tElem, 0)
	}
	return out
}

// BistaticResponse returns the scattered field toward (azOut, elOut) for
// incidence (azIn, elIn).
func (a *PlanarArray) BistaticResponse(azIn, elIn, azOut, elOut, f float64) complex128 {
	w := a.ReradiatedWeights(azIn, elIn, f)
	return a.Geometry.ArrayFactor(w, azOut, elOut)
}

// MonostaticResponse returns the field scattered back to the illuminator.
func (a *PlanarArray) MonostaticResponse(az, el, f float64) complex128 {
	return a.BistaticResponse(az, el, az, el, f)
}

// RetroGainDBi returns the retrodirective gain toward the illuminator.
func (a *PlanarArray) RetroGainDBi(az, el, f float64) float64 {
	w := a.ReradiatedWeights(az, el, f)
	return a.Geometry.GainDBi(w, az, el)
}

// RetroErrorDeg scans the bistatic pattern over a (azOut, elOut) grid and
// returns the angular distance (degrees) between the peak and the
// incidence direction.
func (a *PlanarArray) RetroErrorDeg(az, el, f float64, grid int) float64 {
	if grid < 2 {
		grid = 61
	}
	span := math.Pi / 2 // scan ±45° around broadside in each axis
	bestAz, bestEl, bestV := 0.0, 0.0, -1.0
	for i := 0; i < grid; i++ {
		ao := -span/2 + span*float64(i)/float64(grid-1)
		for j := 0; j < grid; j++ {
			eo := -span/2 + span*float64(j)/float64(grid-1)
			v := cmplx.Abs(a.BistaticResponse(az, el, ao, eo, f))
			if v > bestV {
				bestAz, bestEl, bestV = ao, eo, v
			}
		}
	}
	dAz := bestAz - az
	dEl := bestEl - el
	return math.Sqrt(dAz*dAz+dEl*dEl) * 180 / math.Pi
}
