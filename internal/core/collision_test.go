package core

import (
	"testing"

	"github.com/mmtag/mmtag/internal/geom"
	"github.com/mmtag/mmtag/internal/rng"
	"github.com/mmtag/mmtag/internal/units"
)

func TestCollisionMotivatesMAC(t *testing.T) {
	// Two co-located tags at 3 ft / 20 MHz (huge SNR): simultaneous
	// response must corrupt (the §9 collision problem), staggered slots
	// must recover both cleanly.
	l, err := NewDefaultLink(units.FeetToMeters(3))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(21)
	res, err := l.RunCollision([]byte("tag A says this"), []byte("tag B says that"), l.Reader.Bandwidths[2], src)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimultaneousDecoded {
		t.Errorf("superposed bursts decoded as tag %04x — collision should corrupt", res.DecodedTagID)
	}
	if !res.StaggeredOK {
		t.Errorf("staggered slots should recover both tags: %v", res.StaggeredIDs)
	}
}

func TestCollisionAcrossSeeds(t *testing.T) {
	// The collision outcome must not be a fluke of one noise draw.
	passed := 0
	for seed := uint64(1); seed <= 5; seed++ {
		l, _ := NewDefaultLink(units.FeetToMeters(3))
		res, err := l.RunCollision([]byte("AAAA"), []byte("BBBB"), l.Reader.Bandwidths[2], rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !res.SimultaneousDecoded && res.StaggeredOK {
			passed++
		}
	}
	if passed < 4 {
		t.Errorf("collision experiment only consistent in %d/5 seeds", passed)
	}
}

func TestCollisionSevered(t *testing.T) {
	l, _ := NewDefaultLink(2)
	l.Env.Blockers = append(l.Env.Blockers, blockerAt(1))
	if _, err := l.RunCollision([]byte("a"), []byte("b"), l.Reader.Bandwidths[2], rng.New(1)); err == nil {
		t.Error("severed link should error")
	}
}

// blockerAt returns a small vertical wall at x.
func blockerAt(x float64) geom.Segment {
	return geom.Segment{A: geom.Vec{X: x, Y: -1}, B: geom.Vec{X: x, Y: 1}}
}
