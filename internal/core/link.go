// Package core assembles the complete mmTag system of the paper: a reader
// and one or more retrodirective tags in a propagation environment, with
// two simulation fidelities —
//
//   - a link-budget path (Budget) that computes received tag power, SNR
//     per receiver bandwidth and the achievable data rate exactly the way
//     paper Fig. 7 does, and
//   - a waveform path (RunWaveform) that synthesizes the tag's modulated
//     backscatter at complex baseband, pushes it through the channel,
//     self-interference and receiver noise, and runs the full
//     sync/demod/decode pipeline.
//
// The two paths share every constant, so the budget's predictions are
// testable against the waveform's measurements.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"github.com/mmtag/mmtag/internal/channel"
	"github.com/mmtag/mmtag/internal/dsp"
	"github.com/mmtag/mmtag/internal/frame"
	"github.com/mmtag/mmtag/internal/geom"
	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/obs/event"
	"github.com/mmtag/mmtag/internal/obs/signal"
	"github.com/mmtag/mmtag/internal/phy"
	"github.com/mmtag/mmtag/internal/reader"
	"github.com/mmtag/mmtag/internal/rng"
	"github.com/mmtag/mmtag/internal/tag"
	"github.com/mmtag/mmtag/internal/units"
)

func init() {
	// Decision-domain SNR estimates in dB: linear bins over the range
	// the link actually produces (severed ≈ −10 dB, 4 ft ≈ 30+ dB).
	obs.RegisterBuckets("core_snr_est_db",
		-10, -5, 0, 5, 10, 15, 20, 25, 30, 40)
}

// CalibrationLossDB lumps the tag losses the analytic aperture model does
// not capture — modulation conversion loss, polarization mismatch, switch
// insertion loss, feed-network loss. Its value is calibrated once so the
// default link reproduces paper Fig. 7 (≈ −65 dBm at 4 ft, giving 1 Gb/s
// at 4 ft and 10 Mb/s at 10 ft); see EXPERIMENTS.md.
const CalibrationLossDB = 20.0

// SamplesPerSymbol is the waveform path's oversampling (sample rate =
// SamplesPerSymbol × symbol rate).
const SamplesPerSymbol = 4

// Link is one reader–tag pair in an environment.
type Link struct {
	// Reader holds the RF configuration.
	Reader reader.Config
	// Antenna is the reader's steerable antenna (both TX and RX — the
	// monostatic setup of paper Fig. 2).
	Antenna reader.Antenna
	// ReaderPose is the reader's position/heading.
	ReaderPose geom.Pose
	// BeamRad is the commanded beam direction (global frame).
	BeamRad float64
	// Tag is the backscatter device.
	Tag *tag.Tag
	// Env is the propagation environment.
	Env *channel.Environment
	// Fading, when non-nil, multiplies Rician small-scale fading into
	// the waveform path (the budget path stays mean-power).
	Fading *channel.Fading
}

// NewDefaultLink places a paper-default reader at the origin looking down
// +X and a 6-element tag at rangeM meters facing back, in free space.
func NewDefaultLink(rangeM float64) (*Link, error) {
	if rangeM <= 0 {
		return nil, fmt.Errorf("core: range must be positive, got %g", rangeM)
	}
	tg, err := tag.New(1, geom.Pose{Pos: geom.Vec{X: rangeM}, Heading: math.Pi})
	if err != nil {
		return nil, err
	}
	return &Link{
		Reader:     reader.DefaultConfig(),
		Antenna:    reader.DefaultHorn(),
		ReaderPose: geom.Pose{},
		BeamRad:    0,
		Tag:        tg,
		Env:        channel.NewFreeSpace(),
	}, nil
}

// Validate checks the link configuration.
func (l *Link) Validate() error {
	if err := l.Reader.Validate(); err != nil {
		return err
	}
	if l.Antenna == nil {
		return fmt.Errorf("core: nil reader antenna")
	}
	if l.Tag == nil {
		return fmt.Errorf("core: nil tag")
	}
	if err := l.Tag.Validate(); err != nil {
		return err
	}
	if l.Env == nil {
		return fmt.Errorf("core: nil environment")
	}
	return l.Env.Validate()
}

// Budget is the link-budget breakdown for one geometry.
type Budget struct {
	// RangeM is the ray path length (meters).
	RangeM float64
	// Ray is the propagation path used.
	Ray channel.Ray
	// TXGainDB / RXGainDB are the reader antenna gains along the ray.
	TXGainDB, RXGainDB float64
	// TagBearingRad is the incidence angle in the tag's frame.
	TagBearingRad float64
	// TagResponseDB is 20·log10|α0|: the tag's two-pass aperture response
	// (2×retro gain + through losses).
	TagResponseDB float64
	// ReceivedDBm is the tag signal power at the reader.
	ReceivedDBm float64
	// SNRdB holds the SNR per configured receiver bandwidth.
	SNRdB map[string]float64
	// RateBps is the achievable OOK rate by the paper's table.
	RateBps float64
	// RateBandwidth is the bandwidth carrying RateBps.
	RateBandwidth units.ReaderBandwidth
	// Linked is false when no bandwidth clears the threshold (or the
	// path is severed).
	Linked bool
	// Severed is true when there is no propagation path at all (or the
	// tag cannot scatter toward the ray).
	Severed bool
}

// ComputeBudget evaluates the link budget for the current geometry.
func (l *Link) ComputeBudget() (Budget, error) {
	if err := l.Validate(); err != nil {
		return Budget{}, err
	}
	var b Budget
	ray, ok := l.Env.BestRay(l.ReaderPose.Pos, l.Tag.Pose.Pos)
	if !ok {
		return Budget{Severed: true, SNRdB: map[string]float64{}}, nil
	}
	b.Ray = ray
	b.RangeM = ray.LengthM
	b.TXGainDB = l.Antenna.GainDBi(l.BeamRad, ray.DepartureRad)
	b.RXGainDB = b.TXGainDB // monostatic: same aperture, same steering
	b.TagBearingRad = geom.WrapAngle(ray.ArrivalRad - l.Tag.Pose.Heading)
	alpha0, _ := l.Tag.ReflectionStates(b.TagBearingRad, l.Reader.FreqHz)
	am := cmplx.Abs(alpha0)
	if am == 0 {
		return Budget{Severed: true, SNRdB: map[string]float64{}}, nil
	}
	b.TagResponseDB = 20 * math.Log10(am)
	rayDB := 40 * math.Log10(cmplx.Abs(ray.Gain)) // two passes over the ray
	b.ReceivedDBm = l.Reader.TXPowerDBm() + b.TXGainDB + b.RXGainDB +
		b.TagResponseDB + rayDB - CalibrationLossDB
	b.SNRdB = make(map[string]float64, len(l.Reader.Bandwidths))
	for _, bw := range l.Reader.Bandwidths {
		b.SNRdB[bw.Label] = b.ReceivedDBm - l.Reader.NoiseFloorDBm(bw.BandwidthHz)
	}
	b.RateBps, b.RateBandwidth, b.Linked = l.Reader.BestRate(b.ReceivedDBm)
	return b, nil
}

// ExpectedDecisionSNRdB converts a budget SNR to the matched-filter
// decision SNR the waveform path measures. Two 3 dB effects cancel
// exactly: the decision noise lives in the symbol bandwidth (half the
// receiver bandwidth, +3 dB), while the measured average symbol power is
// half the '0'-state power the budget quotes because half the OOK symbols
// are "off" (−3 dB). The prediction is therefore the budget SNR itself.
func ExpectedDecisionSNRdB(budgetSNRdB float64) float64 {
	return budgetSNRdB
}

// WaveformResult reports one waveform-level burst exchange.
type WaveformResult struct {
	// Budget is the analytic prediction for the same geometry.
	Budget Budget
	// Decoded is true when the frame CRC verified.
	Decoded bool
	// TagID is the decoded tag identity (valid when Decoded).
	TagID uint16
	// Payload is the decoded payload (valid when Decoded).
	Payload []byte
	// BitErrors counts payload bit flips against the transmitted truth.
	BitErrors int
	// TotalBits is the number of compared bits.
	TotalBits int
	// MeasuredSNRdB is the decision-domain SNR estimate.
	MeasuredSNRdB float64
	// ExpectedSNRdB is the budget's prediction of MeasuredSNRdB.
	ExpectedSNRdB float64
}

// RunWaveform synthesizes, transmits and decodes one tag burst carrying
// payload through the selected receiver bandwidth, with AWGN and TX
// leakage, returning measured quality against the budget's predictions.
// The payload is OOK; see RunWaveformMCS for multi-level schemes.
func (l *Link) RunWaveform(payload []byte, bw units.ReaderBandwidth, src *rng.Source) (WaveformResult, error) {
	return l.RunWaveformMCS(payload, frame.MCSOOK, bw, src)
}

// RunWaveformWS is RunWaveform drawing every sample buffer from ws (see
// RunWaveformMCSWS).
func (l *Link) RunWaveformWS(ws *dsp.Workspace, payload []byte, bw units.ReaderBandwidth, src *rng.Source) (WaveformResult, error) {
	return l.RunWaveformMCSWS(ws, payload, frame.MCSOOK, bw, src)
}

// Capture is a synthesized receiver capture: the raw complex-baseband
// samples a reader front end would hand to its DSP, plus the metadata
// needed to decode them. It can be persisted with the iqfile package.
type Capture struct {
	// Samples is the leakage-calibrated baseband capture.
	Samples []complex128
	// SampleRateHz is the capture's complex sample rate.
	SampleRateHz float64
	// Budget is the analytic operating point.
	Budget Budget
	// BandwidthLabel names the receiver bandwidth used.
	BandwidthLabel string
}

// CaptureWaveform synthesizes the receiver capture for one burst without
// decoding it: tag frame + switch waveform, channel scaling, optional
// fading, TX leakage, receiver noise, and the pre-burst leakage
// calibration. RunWaveformMCS = CaptureWaveform + reader.DecodeBurst.
func (l *Link) CaptureWaveform(payload []byte, mcs frame.MCS, bw units.ReaderBandwidth, src *rng.Source) (Capture, error) {
	return l.CaptureWaveformWS(nil, payload, mcs, bw, src)
}

// CaptureWaveformWS is CaptureWaveform drawing the symbol, waveform and
// capture buffers from ws. The returned Capture.Samples reference ws
// memory: they are valid until the next ws.Reset. A nil ws allocates,
// which is exactly CaptureWaveform.
func (l *Link) CaptureWaveformWS(ws *dsp.Workspace, payload []byte, mcs frame.MCS, bw units.ReaderBandwidth, src *rng.Source) (Capture, error) {
	var cap Capture
	// Labels are only materialized when a registry is installed so the
	// disabled path stays allocation-free (see BENCH_1.json).
	var span *obs.Span
	if obs.Enabled() {
		span = obs.StartSpan("core.synth", obs.L("bw", bw.Label))
	}
	defer span.End()
	b, err := l.ComputeBudget()
	if err != nil {
		return cap, err
	}
	cap.Budget = b
	cap.BandwidthLabel = bw.Label
	if b.Severed {
		return cap, fmt.Errorf("core: link severed (no propagation path)")
	}

	// Tag side: frame + symbols at the operating point.
	syms, err := l.Tag.BurstMCSWS(ws, payload, mcs, b.TagBearingRad, l.Reader.FreqHz)
	if err != nil {
		return cap, err
	}
	w, err := phy.NewRectWaveform(SamplesPerSymbol)
	if err != nil {
		return cap, err
	}
	tx := w.SynthesizeWS(ws, syms)
	if t := signal.Active(); t != nil {
		t.TxWaveform(tx)
	}

	// Scale: a '0' symbol (amplitude 1) arrives at the reader with power
	// b.ReceivedDBm. Work in √W amplitudes.
	amp := math.Sqrt(units.DBmToWatts(b.ReceivedDBm))
	carrier := cmplx.Rect(amp, -0.4) // deterministic unknown carrier phase
	rxLen := len(tx) + 40*SamplesPerSymbol
	rx := ws.Complex(rxLen)
	lead := 16 * SamplesPerSymbol
	for i, v := range tx {
		rx[lead+i] = v * carrier
	}
	if l.Fading != nil {
		series, err := l.Fading.Series(len(tx), bw.BandwidthHz*units.OOKSpectralEfficiency*SamplesPerSymbol, src)
		if err != nil {
			return cap, err
		}
		channel.Apply(rx[lead:lead+len(tx)], series)
	}
	// TX leakage: a DC term at baseband.
	leak := cmplx.Rect(math.Sqrt(units.DBmToWatts(l.Reader.SelfInterferenceDBm())), 0.9)
	for i := range rx {
		rx[i] += leak
	}
	// Receiver noise over the sampled band: the sample rate is
	// SamplesPerSymbol × symbol rate = (SamplesPerSymbol/2) × bw. The
	// symbol rate is half the receiver bandwidth for every scheme.
	symbolRate := bw.BandwidthHz * units.OOKSpectralEfficiency
	sampleRate := symbolRate * SamplesPerSymbol
	cap.SampleRateHz = sampleRate
	noiseW := units.DBmToWatts(units.ThermalNoiseDensityDBmHz(l.Reader.TemperatureK)+
		l.Reader.NoiseFigureDB) * sampleRate
	// Residual self-interference: the calibration below removes the
	// static leakage, but oscillator phase noise decorrelates part of it
	// into in-band noise bounded by LeakageCancellationDB.
	residualW := units.DBmToWatts(l.Reader.ResidualLeakageDBm())
	src.AWGN(rx, noiseW+residualW)

	// Cancel the static TX leakage: the tag holds its switches on
	// (absorbing) while idle, so the pre-burst capture contains only the
	// leakage plus noise, and its mean calibrates the leakage out without
	// touching the burst's own OOK structure.
	var mean complex128
	pre := lead / 2
	for _, v := range rx[:pre] {
		mean += v
	}
	mean /= complex(float64(pre), 0)
	for i := range rx {
		rx[i] -= mean
	}
	if t := signal.Active(); t != nil {
		t.ChannelOut(rx)
	}
	cap.Samples = rx
	return cap, nil
}

// RunWaveformMCS is RunWaveform with an explicit payload modulation:
// MCSOOK (1 bit/symbol) or MCSASK4 (2 bits/symbol, realized by driving
// subsets of the tag's Van Atta pairs). The symbol rate is always half
// the receiver bandwidth, so 4-ASK doubles the bit rate at the cost of a
// tighter SNR requirement.
func (l *Link) RunWaveformMCS(payload []byte, mcs frame.MCS, bw units.ReaderBandwidth, src *rng.Source) (WaveformResult, error) {
	return l.RunWaveformMCSWS(nil, payload, mcs, bw, src)
}

// RunWaveformMCSWS is RunWaveformMCS with a caller-owned workspace: the
// capture and the whole decode pipeline draw their buffers from ws, so
// repeated bursts on one goroutine allocate nothing in steady state. The
// workspace is Reset at entry — this call owns the frame — and the
// returned result copies the decoded payload out, so nothing in
// WaveformResult references ws memory. A nil ws allocates, which is
// exactly RunWaveformMCS.
func (l *Link) RunWaveformMCSWS(ws *dsp.Workspace, payload []byte, mcs frame.MCS, bw units.ReaderBandwidth, src *rng.Source) (WaveformResult, error) {
	ws.Reset()
	var res WaveformResult
	enabled := obs.Enabled()
	var span *obs.Span
	if enabled {
		span = obs.StartSpan("core.burst", obs.L("bw", bw.Label), obs.L("mcs", mcs.String()))
		obs.Inc("core_bursts_attempted_total", obs.L("bw", bw.Label))
	}
	defer span.End()
	cap, err := l.CaptureWaveformWS(ws, payload, mcs, bw, src)
	res.Budget = cap.Budget
	if err != nil {
		return res, err
	}
	res.ExpectedSNRdB = ExpectedDecisionSNRdB(cap.Budget.SNRdB[bw.Label])
	w, err := phy.NewRectWaveform(SamplesPerSymbol)
	if err != nil {
		return res, err
	}
	rx := cap.Samples
	tap := signal.Active()
	dec, stats, err := reader.DecodeBurstWS(ws, rx, w)
	if err != nil {
		// Failure to decode is a measurement outcome, not an API error:
		// report every payload bit as lost.
		if enabled && errors.Is(err, reader.ErrSync) {
			obs.Inc("core_sync_failures_total", obs.L("bw", bw.Label))
		}
		if tap != nil {
			trigger := signal.TriggerDecodeError
			if errors.Is(err, reader.ErrSync) {
				trigger = signal.TriggerSyncLoss
			}
			tap.RecordFailure(trigger, rx, cap.SampleRateHz, l.Reader.FreqHz,
				bw.Label, mcs.String(), math.NaN())
		}
		if event.Enabled() {
			msg := "decode_failure"
			if errors.Is(err, reader.ErrSync) {
				msg = "sync_failure"
			}
			// Burst outcomes carry no virtual clock (MC trials are
			// untimed), so t is 0; the line content still identifies the
			// operating point.
			event.Emit(0, event.LevelInfo, "core.burst", msg,
				event.S("bw", bw.Label), event.S("mcs", mcs.String()))
		}
		res.Decoded = false
		res.TotalBits = 8 * len(payload)
		res.BitErrors = res.TotalBits
		obs.Add("core_bit_errors_total", float64(res.BitErrors))
		return res, nil //nolint:nilerr
	}
	res.MeasuredSNRdB = stats.SNRdBEst
	if enabled {
		// A NaN estimate (inestimable SNR) is dropped and flagged by
		// the registry rather than folded into the histogram.
		obs.Observe("core_snr_est_db", stats.SNRdBEst, obs.L("bw", bw.Label))
	}
	res.Decoded = dec.Trailer.OK
	res.TagID = dec.Header.TagID
	res.Payload = append([]byte{}, dec.Payload.Data...)
	// Bit-error accounting against the transmitted payload.
	res.TotalBits = 8 * len(payload)
	if len(dec.Payload.Data) == len(payload) {
		for i := range payload {
			x := dec.Payload.Data[i] ^ payload[i]
			for ; x != 0; x &= x - 1 {
				res.BitErrors++
			}
		}
	} else {
		res.BitErrors = res.TotalBits
	}
	if enabled && res.Decoded {
		obs.Inc("core_bursts_decoded_total", obs.L("bw", bw.Label))
	}
	if tap != nil {
		tap.Commit(signal.Burst{
			IQ:           rx,
			SampleRateHz: cap.SampleRateHz,
			CarrierHz:    l.Reader.FreqHz,
			Bandwidth:    bw.Label,
			MCS:          mcs.String(),
			SyncOffset:   stats.SyncOffset,
			SyncMetric:   stats.PreambleMetric,
			Threshold:    stats.Threshold,
			SNRdB:        stats.SNRdBEst,
			Decisions:    stats.Decisions,
			Quality:      stats.Quality,
			HasQuality:   stats.HasQuality,
			Decoded:      res.Decoded,
		})
		if !res.Decoded {
			tap.RecordFailure(signal.TriggerCRCFail, rx, cap.SampleRateHz,
				l.Reader.FreqHz, bw.Label, mcs.String(), stats.SNRdBEst)
		}
	}
	if event.Enabled() {
		msg := "crc_failure"
		if res.Decoded {
			msg = "decoded"
		}
		event.Emit(0, event.LevelInfo, "core.burst", msg,
			event.S("bw", bw.Label), event.S("mcs", mcs.String()),
			event.F("snr_db", res.MeasuredSNRdB), event.D("bit_errors", res.BitErrors))
	}
	obs.Add("core_bit_errors_total", float64(res.BitErrors))
	return res, nil
}
