package core

import (
	"math"
	"testing"

	"github.com/mmtag/mmtag/internal/antenna"
	"github.com/mmtag/mmtag/internal/geom"
	"github.com/mmtag/mmtag/internal/tag"
	"github.com/mmtag/mmtag/internal/units"
)

// tagAt places a default tag at range r and global angle theta, facing
// the reader at the origin.
func tagAt(t *testing.T, id uint16, r, theta float64) *tag.Tag {
	t.Helper()
	pos := geom.FromPolar(r, theta)
	tg, err := tag.New(id, geom.Pose{Pos: pos, Heading: geom.WrapAngle(theta + math.Pi)})
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

func TestScanFindsTagsInTheirBeams(t *testing.T) {
	r := units.FeetToMeters(4)
	t1 := tagAt(t, 1, r, 0.35)
	t2 := tagAt(t, 2, r, -0.35)
	n := NewDefaultNetwork(t1, t2)
	cb, err := antenna.UniformCodebook(-math.Pi/3, math.Pi/3, 12)
	if err != nil {
		t.Fatal(err)
	}
	readings, err := n.Scan(cb)
	if err != nil {
		t.Fatal(err)
	}
	if len(readings) != 12 {
		t.Fatalf("beam count %d", len(readings))
	}
	seen := map[uint16]float64{} // tag → best beam angle
	best := map[uint16]float64{}
	for _, br := range readings {
		for _, tr := range br.Tags {
			if tr.ReceivedDBm > best[tr.TagID] || seen[tr.TagID] == 0 {
				if cur, ok := best[tr.TagID]; !ok || tr.ReceivedDBm > cur {
					best[tr.TagID] = tr.ReceivedDBm
					seen[tr.TagID] = br.BeamRad
				}
			}
		}
	}
	if len(best) != 2 {
		t.Fatalf("detected %d tags, want 2", len(best))
	}
	if math.Abs(seen[1]-0.35) > 0.2 {
		t.Errorf("tag 1 best beam %g, want ≈0.35", seen[1])
	}
	if math.Abs(seen[2]+0.35) > 0.2 {
		t.Errorf("tag 2 best beam %g, want ≈−0.35", seen[2])
	}
}

func TestScanBeamSeparatesTags(t *testing.T) {
	// Two tags a beamwidth apart must not both appear (strongly) in the
	// same beam — the SDM premise.
	r := units.FeetToMeters(4)
	t1 := tagAt(t, 1, r, 0.45)
	t2 := tagAt(t, 2, r, -0.45)
	n := NewDefaultNetwork(t1, t2)
	cb, _ := antenna.UniformCodebook(-math.Pi/3, math.Pi/3, 16)
	readings, _ := n.Scan(cb)
	for _, br := range readings {
		if len(br.Tags) == 2 {
			// Both visible: the weaker must be well below the stronger.
			gap := br.Tags[0].ReceivedDBm - br.Tags[1].ReceivedDBm
			if gap < 10 {
				t.Errorf("beam %g sees both tags within %g dB", br.BeamRad, gap)
			}
		}
	}
}

func TestScanSortsStrongestFirst(t *testing.T) {
	// Same direction, different ranges: both in one beam, nearer first.
	t1 := tagAt(t, 1, units.FeetToMeters(4), 0)
	t2 := tagAt(t, 2, units.FeetToMeters(8), 0)
	n := NewDefaultNetwork(t1, t2)
	cb := antenna.Codebook{Angles: []float64{0}}
	readings, _ := n.Scan(cb)
	if len(readings[0].Tags) != 2 {
		t.Fatalf("beam should see both tags, saw %d", len(readings[0].Tags))
	}
	if readings[0].Tags[0].TagID != 1 {
		t.Error("nearer tag should sort first")
	}
	if readings[0].Tags[0].ReceivedDBm <= readings[0].Tags[1].ReceivedDBm {
		t.Error("sort order violated")
	}
}

func TestScanEmptyCodebook(t *testing.T) {
	n := NewDefaultNetwork()
	if _, err := n.Scan(antenna.Codebook{}); err == nil {
		t.Error("empty codebook should fail")
	}
	if _, _, err := n.BestBeamFor(nil, antenna.Codebook{}); err == nil {
		t.Error("empty codebook should fail for BestBeamFor")
	}
}

func TestBestBeamFor(t *testing.T) {
	tg := tagAt(t, 9, units.FeetToMeters(5), 0.3)
	n := NewDefaultNetwork(tg)
	cb, _ := antenna.UniformCodebook(-1, 1, 32)
	beam, pr, err := n.BestBeamFor(tg, cb)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beam-0.3) > 0.1 {
		t.Errorf("best beam %g, want ≈0.3", beam)
	}
	if pr < -80 || pr > -40 {
		t.Errorf("best-beam power %g dBm implausible", pr)
	}
}

func TestDetectionThreshold(t *testing.T) {
	n := NewDefaultNetwork()
	// 20 MHz floor (−95.8) + 7 dB ≈ −88.8 dBm.
	if got := n.DetectionThresholdDBm(); math.Abs(got+88.8) > 0.2 {
		t.Errorf("detection threshold %g", got)
	}
}

func TestFarTagUndetected(t *testing.T) {
	far := tagAt(t, 3, units.FeetToMeters(60), 0)
	n := NewDefaultNetwork(far)
	cb := antenna.Codebook{Angles: []float64{0}}
	readings, _ := n.Scan(cb)
	if len(readings[0].Tags) != 0 {
		t.Error("a 60 ft tag should be below the detection threshold")
	}
}
