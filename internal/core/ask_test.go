package core

import (
	"bytes"
	"testing"

	"github.com/mmtag/mmtag/internal/frame"
	"github.com/mmtag/mmtag/internal/rng"
	"github.com/mmtag/mmtag/internal/units"
)

func TestASK4WaveformCleanDecode(t *testing.T) {
	// 4-ASK at short range / narrow bandwidth: huge SNR margin.
	l, _ := NewDefaultLink(units.FeetToMeters(3))
	src := rng.New(5)
	payload := []byte("four-level backscatter payload!!")
	bw := l.Reader.Bandwidths[2] // 20 MHz
	res, err := l.RunWaveformMCS(payload, frame.MCSASK4, bw, src)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decoded {
		t.Fatal("4-ASK burst should decode at 3 ft / 20 MHz")
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Errorf("payload %q", res.Payload)
	}
	if res.BitErrors != 0 {
		t.Errorf("%d bit errors", res.BitErrors)
	}
}

func TestASK4NeedsMoreSNRThanOOK(t *testing.T) {
	// At a marginal operating point OOK still decodes but 4-ASK (whose
	// level spacing is 3× tighter) accumulates errors. Compare bit error
	// counts over several seeds at 8 ft / 200 MHz (budget SNR ≈ 8.5 dB).
	payload := bytes.Repeat([]byte{0xC3}, 48)
	var ookErrs, askErrs int
	for seed := uint64(1); seed <= 8; seed++ {
		l, _ := NewDefaultLink(units.FeetToMeters(8))
		bw := l.Reader.Bandwidths[1]
		ro, err := l.RunWaveformMCS(payload, frame.MCSOOK, bw, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		ra, err := l.RunWaveformMCS(payload, frame.MCSASK4, bw, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		ookErrs += ro.BitErrors
		if !ra.Decoded {
			askErrs += ra.TotalBits // count undecodable as all-errors
		} else {
			askErrs += ra.BitErrors
		}
	}
	if askErrs <= ookErrs {
		t.Errorf("4-ASK (%d errors) should degrade before OOK (%d) at marginal SNR", askErrs, ookErrs)
	}
}

func TestASK4BurstShorter(t *testing.T) {
	// Same payload, half the payload symbols: the air-time advantage that
	// doubles throughput.
	l, _ := NewDefaultLink(1)
	b, _ := l.ComputeBudget()
	payload := make([]byte, 40)
	ook, err := l.Tag.BurstMCS(payload, frame.MCSOOK, b.TagBearingRad, l.Reader.FreqHz)
	if err != nil {
		t.Fatal(err)
	}
	ask, err := l.Tag.BurstMCS(payload, frame.MCSASK4, b.TagBearingRad, l.Reader.FreqHz)
	if err != nil {
		t.Fatal(err)
	}
	// Preamble+header identical; payload section halves.
	head := 13 + frame.HeaderLen*8
	if len(ook)-head != 2*(len(ask)-head) {
		t.Errorf("payload symbols: OOK %d vs ASK %d", len(ook)-head, len(ask)-head)
	}
}
