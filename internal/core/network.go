package core

import (
	"fmt"
	"math"

	"github.com/mmtag/mmtag/internal/antenna"
	"github.com/mmtag/mmtag/internal/channel"
	"github.com/mmtag/mmtag/internal/geom"
	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/reader"
	"github.com/mmtag/mmtag/internal/tag"
	"github.com/mmtag/mmtag/internal/units"
)

// Network is one reader serving multiple tags — the multi-tag setting of
// paper §9, served by Spatial Division Multiplexing: the reader steers its
// beam and reads tags sector by sector.
type Network struct {
	Reader     reader.Config
	Antenna    reader.Antenna
	ReaderPose geom.Pose
	Env        *channel.Environment
	Tags       []*tag.Tag
}

// NewDefaultNetwork returns a paper-default reader at the origin with the
// given tags in free space.
func NewDefaultNetwork(tags ...*tag.Tag) *Network {
	return &Network{
		Reader:     reader.DefaultConfig(),
		Antenna:    reader.DefaultHorn(),
		ReaderPose: geom.Pose{},
		Env:        channel.NewFreeSpace(),
		Tags:       tags,
	}
}

// linkFor builds the single-tag view for a beam direction.
func (n *Network) linkFor(t *tag.Tag, beam float64) *Link {
	return &Link{
		Reader:     n.Reader,
		Antenna:    n.Antenna,
		ReaderPose: n.ReaderPose,
		BeamRad:    beam,
		Tag:        t,
		Env:        n.Env,
	}
}

// TagReading is one tag observed during a scan.
type TagReading struct {
	TagID       uint16
	ReceivedDBm float64
	RateBps     float64
	Budget      Budget
}

// BeamReading is the outcome of dwelling on one beam.
type BeamReading struct {
	BeamRad float64
	// Tags lists every tag whose backscatter clears the detection
	// threshold in this beam, strongest first.
	Tags []TagReading
}

// DetectionThresholdDBm returns the minimum received power at which the
// reader can detect a tag at all: the narrowest configured bandwidth's
// floor plus the ASK demodulation SNR.
func (n *Network) DetectionThresholdDBm() float64 {
	minBW := math.Inf(1)
	for _, b := range n.Reader.Bandwidths {
		minBW = math.Min(minBW, b.BandwidthHz)
	}
	return n.Reader.NoiseFloorDBm(minBW) + units.ASKRequiredSNRdB
}

// Scan dwells on every beam of the codebook and reports the tags detected
// in each — paper Fig. 2's scan loop.
func (n *Network) Scan(cb antenna.Codebook) ([]BeamReading, error) {
	if len(cb.Angles) == 0 {
		return nil, fmt.Errorf("core: empty codebook")
	}
	span := obs.StartSpan("core.scan", obs.L("beams", fmt.Sprintf("%d", len(cb.Angles))))
	defer span.End()
	thresh := n.DetectionThresholdDBm()
	out := make([]BeamReading, 0, len(cb.Angles))
	for _, beam := range cb.Angles {
		dwellStart := obs.Clock()
		obs.Inc("core_beams_scanned_total")
		br := BeamReading{BeamRad: beam}
		for _, t := range n.Tags {
			b, err := n.linkFor(t, beam).ComputeBudget()
			if err != nil {
				return nil, err
			}
			if b.SNRdB == nil || b.ReceivedDBm < thresh || !b.Linked {
				continue
			}
			br.Tags = append(br.Tags, TagReading{
				TagID:       t.ID,
				ReceivedDBm: b.ReceivedDBm,
				RateBps:     b.RateBps,
				Budget:      b,
			})
		}
		obs.Add("core_tags_detected_total", float64(len(br.Tags)))
		obs.Observe("core_beam_dwell_seconds", obs.Clock()-dwellStart)
		// Strongest first.
		for i := 1; i < len(br.Tags); i++ {
			for j := i; j > 0 && br.Tags[j].ReceivedDBm > br.Tags[j-1].ReceivedDBm; j-- {
				br.Tags[j], br.Tags[j-1] = br.Tags[j-1], br.Tags[j]
			}
		}
		out = append(out, br)
	}
	return out, nil
}

// BestBeamFor returns the codebook beam maximizing the received power for
// one tag — the reader-side half of beam alignment (the tag side needs no
// search at all; that is the paper's contribution).
func (n *Network) BestBeamFor(t *tag.Tag, cb antenna.Codebook) (beamRad float64, prDBm float64, err error) {
	if len(cb.Angles) == 0 {
		return 0, 0, fmt.Errorf("core: empty codebook")
	}
	best := math.Inf(-1)
	bestBeam := cb.Angles[0]
	for _, beam := range cb.Angles {
		b, err := n.linkFor(t, beam).ComputeBudget()
		if err != nil {
			return 0, 0, err
		}
		if b.SNRdB != nil && b.ReceivedDBm > best {
			best = b.ReceivedDBm
			bestBeam = beam
		}
	}
	return bestBeam, best, nil
}
