package core

import (
	"fmt"
	"math"
	"math/cmplx"

	"github.com/mmtag/mmtag/internal/frame"
	"github.com/mmtag/mmtag/internal/phy"
	"github.com/mmtag/mmtag/internal/reader"
	"github.com/mmtag/mmtag/internal/rng"
	"github.com/mmtag/mmtag/internal/units"
)

// CollisionResult reports a two-tag same-beam experiment at waveform
// level — the §9 motivation for a MAC: "there is a chance that multiple
// tags are placed in the same direction and thus they respond together".
type CollisionResult struct {
	// Simultaneous is the outcome when both tags answer in the same slot:
	// the superposed bursts should NOT decode as either tag's frame.
	SimultaneousDecoded bool
	// DecodedTagID is whatever the reader (mis)read in the collision, if
	// anything survived CRC (diagnostic).
	DecodedTagID uint16
	// StaggeredOK reports both tags decoding cleanly once separated into
	// Aloha-style slots.
	StaggeredOK bool
	// StaggeredIDs lists the tags recovered in the staggered run.
	StaggeredIDs []uint16
}

// RunCollision places two equal-strength tags in the reader's beam and
// compares simultaneous response against slotted (staggered) response.
// The link l provides the geometry for tag A; tag B is assumed
// co-located (worst case).
func (l *Link) RunCollision(payloadA, payloadB []byte, bw units.ReaderBandwidth, src *rng.Source) (CollisionResult, error) {
	var res CollisionResult
	if l.Tag == nil {
		return res, fmt.Errorf("core: nil tag")
	}
	b, err := l.ComputeBudget()
	if err != nil {
		return res, err
	}
	if b.Severed {
		return res, fmt.Errorf("core: link severed")
	}
	// Build the two bursts at symbol level with distinct IDs.
	mkSyms := func(id uint16, payload []byte) ([]complex128, error) {
		saved := l.Tag.ID
		l.Tag.ID = id
		defer func() { l.Tag.ID = saved }()
		return l.Tag.Burst(payload, b.TagBearingRad, l.Reader.FreqHz)
	}
	symsA, err := mkSyms(0xA001, payloadA)
	if err != nil {
		return res, err
	}
	symsB, err := mkSyms(0xB002, payloadB)
	if err != nil {
		return res, err
	}
	w, err := phy.NewRectWaveform(SamplesPerSymbol)
	if err != nil {
		return res, err
	}
	amp := ampFor(b.ReceivedDBm)

	decodeSum := func(txs ...[]complex128) (*frame.Decoded, error) {
		maxLen := 0
		for _, tx := range txs {
			if len(tx) > maxLen {
				maxLen = len(tx)
			}
		}
		lead := 16 * SamplesPerSymbol
		rx := make([]complex128, lead+maxLen+40*SamplesPerSymbol)
		for i, tx := range txs {
			carrier := phaseFor(i, amp)
			for j, v := range tx {
				rx[lead+j] += v * carrier
			}
		}
		symbolRate := bw.BandwidthHz * units.OOKSpectralEfficiency
		noiseW := units.DBmToWatts(units.ThermalNoiseDensityDBmHz(l.Reader.TemperatureK)+
			l.Reader.NoiseFigureDB) * symbolRate * SamplesPerSymbol
		src.AWGN(rx, noiseW)
		dec, _, err := reader.DecodeBurst(rx, w)
		return dec, err
	}

	// 1. Simultaneous: superpose the synthesized waveforms.
	txA := w.Synthesize(symsA)
	txB := w.Synthesize(symsB)
	if dec, err := decodeSum(txA, txB); err == nil && dec.Trailer.OK {
		res.SimultaneousDecoded = true
		res.DecodedTagID = dec.Header.TagID
	}

	// 2. Staggered: each tag gets its own slot.
	for _, tx := range [][]complex128{txA, txB} {
		dec, err := decodeSum(tx)
		if err != nil || !dec.Trailer.OK {
			return res, nil
		}
		res.StaggeredIDs = append(res.StaggeredIDs, dec.Header.TagID)
	}
	res.StaggeredOK = len(res.StaggeredIDs) == 2 &&
		res.StaggeredIDs[0] == 0xA001 && res.StaggeredIDs[1] == 0xB002
	return res, nil
}

// ampFor converts a received power to a √W amplitude.
func ampFor(prDBm float64) float64 {
	return math.Sqrt(units.DBmToWatts(prDBm))
}

// phaseFor gives tag i a deterministic carrier phase (their reflections
// traverse slightly different path lengths).
func phaseFor(i int, amp float64) complex128 {
	return cmplx.Rect(amp, -0.4+1.9*float64(i))
}
