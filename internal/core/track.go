package core

import (
	"fmt"
	"math"

	"github.com/mmtag/mmtag/internal/antenna"
	"github.com/mmtag/mmtag/internal/geom"
	"github.com/mmtag/mmtag/internal/sim"
	"github.com/mmtag/mmtag/internal/tag"
	"github.com/mmtag/mmtag/internal/units"
)

// TrackConfig parameterizes a mobility run: a tag walks a path while the
// reader tracks it with its best scan beam and the link budget is sampled
// on a fixed cadence — the paper's mobility story (the tag never
// realigns; only the reader re-scans).
type TrackConfig struct {
	// Walk is the tag's path.
	Walk sim.Mobility
	// TagHeading is the tag's (fixed) boresight heading; the aperture's
	// retrodirectivity makes its exact value non-critical.
	TagHeading float64
	// Codebook is the reader's scan beam set.
	Codebook antenna.Codebook
	// SampleInterval is the trace cadence in seconds (default 1).
	SampleInterval float64
	// TagElements is the aperture size (default 6).
	TagElements int
}

// TrackSample is one instant of the run.
type TrackSample struct {
	TimeS       float64
	Pos         geom.Vec
	RangeFt     float64
	BeamRad     float64
	ReceivedDBm float64
	RateBps     float64
	// TagPowerW is the modulation draw at RateBps.
	TagPowerW float64
}

// TrackResult is the whole run.
type TrackResult struct {
	Samples []TrackSample
	// MinRate/MeanRate/MaxRate summarize the streamed rate.
	MinRate, MeanRate, MaxRate float64
	// Trace is the CSV-able time series.
	Trace *sim.Trace
}

// RunTrack executes the mobility run against a paper-default reader in
// free space.
func RunTrack(cfg TrackConfig) (TrackResult, error) {
	var res TrackResult
	if len(cfg.Walk.Waypoints) == 0 {
		return res, fmt.Errorf("core: track needs waypoints")
	}
	if cfg.Codebook.Size() == 0 {
		return res, fmt.Errorf("core: track needs a codebook")
	}
	interval := cfg.SampleInterval
	if interval <= 0 {
		interval = 1
	}
	elems := cfg.TagElements
	if elems == 0 {
		elems = 6
	}
	res.Trace = sim.NewTrace("t_s", "range_ft", "beam_deg", "pr_dbm", "rate_bps", "tag_uw")
	res.MinRate = math.Inf(1)
	var rateSum float64
	end := cfg.Walk.Duration()
	for t := 0.0; t <= end+1e-9; t += interval {
		pos := cfg.Walk.PositionAt(t)
		tg, err := tag.NewWithElements(1, geom.Pose{Pos: pos, Heading: cfg.TagHeading}, elems, 24e9)
		if err != nil {
			return res, err
		}
		net := NewDefaultNetwork(tg)
		beam, _, err := net.BestBeamFor(tg, cfg.Codebook)
		if err != nil {
			return res, err
		}
		link := net.linkFor(tg, beam)
		b, err := link.ComputeBudget()
		if err != nil {
			return res, err
		}
		s := TrackSample{
			TimeS:       t,
			Pos:         pos,
			RangeFt:     units.MetersToFeet(b.RangeM),
			BeamRad:     beam,
			ReceivedDBm: b.ReceivedDBm,
			RateBps:     b.RateBps,
			TagPowerW:   tg.Energy.PowerAtBitrateW(b.RateBps),
		}
		res.Samples = append(res.Samples, s)
		if err := res.Trace.Add(t, s.RangeFt, beam*180/math.Pi, s.ReceivedDBm, s.RateBps, s.TagPowerW*1e6); err != nil {
			return res, err
		}
		res.MinRate = math.Min(res.MinRate, s.RateBps)
		res.MaxRate = math.Max(res.MaxRate, s.RateBps)
		rateSum += s.RateBps
	}
	if n := len(res.Samples); n > 0 {
		res.MeanRate = rateSum / float64(n)
	}
	return res, nil
}
