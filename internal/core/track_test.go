package core

import (
	"math"
	"strings"
	"testing"

	"github.com/mmtag/mmtag/internal/antenna"
	"github.com/mmtag/mmtag/internal/geom"
	"github.com/mmtag/mmtag/internal/sim"
	"github.com/mmtag/mmtag/internal/units"
)

func trackConfig(t *testing.T) TrackConfig {
	t.Helper()
	cb, err := antenna.UniformCodebook(-math.Pi/2, math.Pi/2, 24)
	if err != nil {
		t.Fatal(err)
	}
	return TrackConfig{
		Walk: sim.Mobility{
			Waypoints: []geom.Vec{
				{X: units.FeetToMeters(10), Y: units.FeetToMeters(3)},
				{X: units.FeetToMeters(4), Y: 0},
				{X: units.FeetToMeters(10), Y: -units.FeetToMeters(3)},
			},
			SpeedMps: 0.5,
		},
		TagHeading: math.Pi,
		Codebook:   cb,
	}
}

func TestRunTrack(t *testing.T) {
	res, err := RunTrack(trackConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) < 5 {
		t.Fatalf("samples %d", len(res.Samples))
	}
	// Rates bounded and summarized consistently.
	if res.MinRate > res.MeanRate || res.MeanRate > res.MaxRate {
		t.Errorf("rate summary inconsistent: %g %g %g", res.MinRate, res.MeanRate, res.MaxRate)
	}
	// The walk passes through 4 ft: peak rate must reach 1 Gb/s there.
	if res.MaxRate < 1e9 {
		t.Errorf("max rate %g, want ≥ 1 Gb/s at closest approach", res.MaxRate)
	}
	// Link never dies along this path (max range 10.4 ft).
	if res.MinRate < 1e7 {
		t.Errorf("min rate %g, want ≥ 10 Mb/s", res.MinRate)
	}
	// The tracked beam follows the tag: beams at the start (tag at +y)
	// and end (tag at −y) have opposite signs.
	first := res.Samples[0].BeamRad
	last := res.Samples[len(res.Samples)-1].BeamRad
	if !(first > 0 && last < 0) {
		t.Errorf("beam did not track: first %g, last %g", first, last)
	}
	// Trace renders CSV with a header.
	csv := res.Trace.CSV()
	if !strings.HasPrefix(csv, "t_s,") || res.Trace.Len() != len(res.Samples) {
		t.Error("trace mismatch")
	}
}

func TestRunTrackValidation(t *testing.T) {
	cfg := trackConfig(t)
	cfg.Walk.Waypoints = nil
	if _, err := RunTrack(cfg); err == nil {
		t.Error("no waypoints should fail")
	}
	cfg = trackConfig(t)
	cfg.Codebook = antenna.Codebook{}
	if _, err := RunTrack(cfg); err == nil {
		t.Error("empty codebook should fail")
	}
}

func TestRunTrackElementCount(t *testing.T) {
	cfg := trackConfig(t)
	cfg.TagElements = 12
	big, err := RunTrack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.TagElements = 0 // default 6
	small, err := RunTrack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Bigger aperture, better or equal worst-case rate.
	if big.MinRate < small.MinRate {
		t.Errorf("12-element track should not underperform: %g vs %g", big.MinRate, small.MinRate)
	}
}
