package core

import (
	"bytes"
	"math"
	"testing"

	"github.com/mmtag/mmtag/internal/channel"
	"github.com/mmtag/mmtag/internal/dsp"
	"github.com/mmtag/mmtag/internal/frame"
	"github.com/mmtag/mmtag/internal/geom"
	"github.com/mmtag/mmtag/internal/rng"
	"github.com/mmtag/mmtag/internal/units"
)

func TestNewDefaultLinkValidation(t *testing.T) {
	if _, err := NewDefaultLink(0); err == nil {
		t.Error("zero range should fail")
	}
	l, err := NewDefaultLink(1.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBudgetPaperAnchors(t *testing.T) {
	// The Fig. 7 headline claims: 1 Gb/s at 4 ft, 10 Mb/s at 10 ft.
	l4, _ := NewDefaultLink(units.FeetToMeters(4))
	b4, err := l4.ComputeBudget()
	if err != nil {
		t.Fatal(err)
	}
	if !b4.Linked || b4.RateBps < 1e9 {
		t.Errorf("at 4 ft: rate %v (linked %v), want ≥ 1 Gb/s", b4.RateBps, b4.Linked)
	}
	l10, _ := NewDefaultLink(units.FeetToMeters(10))
	b10, _ := l10.ComputeBudget()
	if !b10.Linked || b10.RateBps < 1e7 {
		t.Errorf("at 10 ft: rate %v, want ≥ 10 Mb/s", b10.RateBps)
	}
	if b10.RateBps >= 1e9 {
		t.Errorf("at 10 ft the link must NOT still do 1 Gb/s (got %v) — the paper's falloff", b10.RateBps)
	}
	// Received power decays at 40 dB/decade.
	l40, _ := NewDefaultLink(units.FeetToMeters(40))
	b40, _ := l40.ComputeBudget()
	slope := b10.ReceivedDBm - b40.ReceivedDBm
	if math.Abs(slope-40*math.Log10(4)) > 0.2 {
		t.Errorf("two-way slope %g dB over 4x range, want ≈ %g", slope, 40*math.Log10(4))
	}
}

func TestBudgetComponents(t *testing.T) {
	l, _ := NewDefaultLink(1.0)
	b, err := l.ComputeBudget()
	if err != nil {
		t.Fatal(err)
	}
	if b.RangeM != 1.0 {
		t.Errorf("range %g", b.RangeM)
	}
	// On-boresight: full horn gain both ways.
	if math.Abs(b.TXGainDB-20) > 1e-9 || math.Abs(b.RXGainDB-20) > 1e-9 {
		t.Errorf("antenna gains %g/%g", b.TXGainDB, b.RXGainDB)
	}
	if math.Abs(b.TagBearingRad) > 1e-9 {
		t.Errorf("tag bearing %g, want 0", b.TagBearingRad)
	}
	// Tag response ≈ 2×(5 + 10log10 6) ≈ 25.6 dB minus small through
	// losses.
	if b.TagResponseDB < 23 || b.TagResponseDB > 26 {
		t.Errorf("tag response %g dB", b.TagResponseDB)
	}
	// SNR map has all three bandwidths, ordered 20 MHz > 200 MHz > 2 GHz.
	if len(b.SNRdB) != 3 {
		t.Fatalf("SNR map: %v", b.SNRdB)
	}
	if !(b.SNRdB["20 MHz"] > b.SNRdB["200 MHz"] && b.SNRdB["200 MHz"] > b.SNRdB["2 GHz"]) {
		t.Errorf("SNR ordering wrong: %v", b.SNRdB)
	}
	if d := (b.SNRdB["20 MHz"] - b.SNRdB["2 GHz"]) - 20; math.Abs(d) > 1e-9 {
		t.Errorf("100x bandwidth must cost exactly 20 dB of SNR, off by %g", d)
	}
}

func TestTagRotationKeepsLink(t *testing.T) {
	// The headline property: rotating the *tag* barely moves the link
	// because the Van Atta aperture reflects back regardless of incidence.
	l, _ := NewDefaultLink(units.FeetToMeters(4))
	b0, _ := l.ComputeBudget()
	l.Tag.Pose.Heading = math.Pi - 0.5 // rotate tag ~29°
	b1, _ := l.ComputeBudget()
	drop := b0.ReceivedDBm - b1.ReceivedDBm
	if drop > 4 {
		t.Errorf("tag rotation cost %g dB; retrodirectivity should keep it small", drop)
	}
	if !b1.Linked || b1.RateBps < 1e8 {
		t.Errorf("rotated tag should still carry a fast link, got %v", b1.RateBps)
	}
}

func TestReaderMispointingKillsLink(t *testing.T) {
	// The reader's beam, by contrast, must be pointed: steering it a full
	// beamwidth away costs ≥ 20 dB two-way.
	l, _ := NewDefaultLink(units.FeetToMeters(4))
	b0, _ := l.ComputeBudget()
	l.BeamRad = l.Antenna.HPBWRad() * 1.5
	b1, _ := l.ComputeBudget()
	if b0.ReceivedDBm-b1.ReceivedDBm < 20 {
		t.Errorf("mispointed beam only lost %g dB", b0.ReceivedDBm-b1.ReceivedDBm)
	}
}

func TestSeveredLink(t *testing.T) {
	l, _ := NewDefaultLink(2)
	l.Env.Blockers = []geom.Segment{{A: geom.Vec{X: 1, Y: -1}, B: geom.Vec{X: 1, Y: 1}}}
	b, err := l.ComputeBudget()
	if err != nil {
		t.Fatal(err)
	}
	if b.Linked {
		t.Error("blocked link should not be Linked")
	}
}

func TestNLOSLinkStillWorks(t *testing.T) {
	// Paper §4: blocked LOS falls back to an NLOS path. Put the tag
	// facing the wall's bounce point so the retro aperture sees the ray.
	l, _ := NewDefaultLink(1.0)
	l.Env.Blockers = []geom.Segment{{A: geom.Vec{X: 0.5, Y: -0.2}, B: geom.Vec{X: 0.5, Y: 0.2}}}
	l.Env.Reflectors = []channel.Reflector{{
		Surface: geom.Segment{A: geom.Vec{X: -2, Y: 0.8}, B: geom.Vec{X: 3, Y: 0.8}},
		LossDB:  2,
	}}
	b, err := l.ComputeBudget()
	if err != nil {
		t.Fatal(err)
	}
	if b.Ray.Kind != channel.NLOS {
		t.Fatalf("expected NLOS ray, got %v", b.Ray.Kind)
	}
	// Point the reader beam and tag at the bounce.
	l.BeamRad = b.Ray.DepartureRad
	l.Tag.Pose.Heading = b.Ray.ArrivalRad
	b, _ = l.ComputeBudget()
	if !b.Linked {
		t.Errorf("NLOS link should close at 1 m: Pr %g dBm", b.ReceivedDBm)
	}
}

func TestRunWaveformCleanDecode(t *testing.T) {
	l, _ := NewDefaultLink(units.FeetToMeters(3))
	src := rng.New(42)
	payload := []byte("mmTag says hi")
	// 20 MHz bandwidth at 3 ft: enormous SNR margin.
	bw := l.Reader.Bandwidths[2]
	res, err := l.RunWaveform(payload, bw, src)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decoded {
		t.Fatal("burst should decode at 3 ft in 20 MHz")
	}
	if res.TagID != l.Tag.ID {
		t.Errorf("tag ID %d", res.TagID)
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Errorf("payload %q", res.Payload)
	}
	if res.BitErrors != 0 {
		t.Errorf("%d bit errors", res.BitErrors)
	}
}

func TestWaveformSNRTracksBudget(t *testing.T) {
	// The waveform path's measured decision SNR must track the budget's
	// prediction — the E6 validation tying Fig. 7 to an actual receiver.
	l, _ := NewDefaultLink(units.FeetToMeters(6))
	src := rng.New(7)
	bw := l.Reader.Bandwidths[1] // 200 MHz
	res, err := l.RunWaveform(bytes.Repeat([]byte{0x5A}, 64), bw, src)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decoded {
		t.Fatalf("should decode at 6 ft in 200 MHz (budget SNR %g)", res.Budget.SNRdB[bw.Label])
	}
	if math.Abs(res.MeasuredSNRdB-res.ExpectedSNRdB) > 3 {
		t.Errorf("measured SNR %g vs expected %g (>3 dB apart)", res.MeasuredSNRdB, res.ExpectedSNRdB)
	}
}

func TestWaveformFailsBeyondRange(t *testing.T) {
	// At 30 ft even the 20 MHz band is below threshold; the burst should
	// not decode cleanly.
	l, _ := NewDefaultLink(units.FeetToMeters(30))
	src := rng.New(9)
	bw := l.Reader.Bandwidths[0] // 2 GHz: hopeless at 30 ft
	res, err := l.RunWaveform([]byte("far away"), bw, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decoded && res.BitErrors == 0 {
		t.Error("a 30 ft / 2 GHz burst should not decode error-free")
	}
}

func TestWaveformSeveredEnvironment(t *testing.T) {
	l, _ := NewDefaultLink(2)
	l.Env.Blockers = []geom.Segment{{A: geom.Vec{X: 1, Y: -1}, B: geom.Vec{X: 1, Y: 1}}}
	src := rng.New(1)
	if _, err := l.RunWaveform([]byte("x"), l.Reader.Bandwidths[2], src); err == nil {
		t.Error("severed link should error")
	}
}

// TestRunWaveformWSMatchesAllocating: bursts drawn through a reused
// workspace must be result-identical to the allocating path at the same
// seed, burst after burst (the workspace only moves buffers, never math).
func TestRunWaveformWSMatchesAllocating(t *testing.T) {
	l, _ := NewDefaultLink(units.FeetToMeters(3))
	payload := []byte("workspace burst")
	bw := l.Reader.Bandwidths[2]
	ws := dsp.NewWorkspace()
	for seed := uint64(1); seed <= 3; seed++ {
		want, err := l.RunWaveform(payload, bw, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		got, err := l.RunWaveformWS(ws, payload, bw, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if got.Decoded != want.Decoded || got.TagID != want.TagID ||
			got.BitErrors != want.BitErrors || got.TotalBits != want.TotalBits ||
			got.MeasuredSNRdB != want.MeasuredSNRdB || got.ExpectedSNRdB != want.ExpectedSNRdB {
			t.Fatalf("seed %d: WS result %+v diverged from allocating %+v", seed, got, want)
		}
		if !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("seed %d: WS payload %q, want %q", seed, got.Payload, want.Payload)
		}
	}
}

// TestCaptureWaveformAllocatingWrapper: the nil-workspace wrapper must
// produce the same capture as the WS path at the same seed.
func TestCaptureWaveformAllocatingWrapper(t *testing.T) {
	l, _ := NewDefaultLink(units.FeetToMeters(3))
	payload := []byte("capture")
	bw := l.Reader.Bandwidths[2]
	cap1, err := l.CaptureWaveform(payload, frame.MCSOOK, bw, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	ws := dsp.NewWorkspace()
	cap2, err := l.CaptureWaveformWS(ws, payload, frame.MCSOOK, bw, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(cap1.Samples) != len(cap2.Samples) || cap1.SampleRateHz != cap2.SampleRateHz ||
		cap1.BandwidthLabel != cap2.BandwidthLabel {
		t.Fatalf("capture metadata diverged: %+v vs %+v", cap1, cap2)
	}
	for i := range cap1.Samples {
		if cap1.Samples[i] != cap2.Samples[i] {
			t.Fatalf("sample %d: %v vs %v", i, cap1.Samples[i], cap2.Samples[i])
		}
	}
}

// TestValidateRejectsMissingParts: each nil component of a Link fails
// validation with a specific error.
func TestValidateRejectsMissingParts(t *testing.T) {
	mk := func() *Link {
		l, err := NewDefaultLink(1)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	if err := mk().Validate(); err != nil {
		t.Fatalf("default link invalid: %v", err)
	}
	l := mk()
	l.Antenna = nil
	if err := l.Validate(); err == nil {
		t.Error("nil antenna accepted")
	}
	l = mk()
	l.Tag = nil
	if err := l.Validate(); err == nil {
		t.Error("nil tag accepted")
	}
	l = mk()
	l.Env = nil
	if err := l.Validate(); err == nil {
		t.Error("nil environment accepted")
	}
}
