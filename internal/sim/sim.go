// Package sim is a small deterministic discrete-event simulation engine
// used by the MAC layer and the mobility experiments: an event queue with
// a virtual clock, entities with waypoint mobility, periodic samplers and
// CSV-style trace recording.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/mmtag/mmtag/internal/geom"
	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/obs/event"
)

// ErrEventLimit reports that Engine.Run stopped because the runaway
// guard tripped. Callers distinguish it from scheduling errors with
// errors.Is.
var ErrEventLimit = errors.New("sim: event limit exceeded")

// Event is a scheduled callback.
type Event struct {
	At       float64 // seconds of virtual time
	Priority int     // tie-break: lower runs first at equal time
	Fn       func(now float64)

	seq   uint64 // second tie-break: FIFO among equal (At, Priority)
	index int
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	if q[i].Priority != q[j].Priority {
		return q[i].Priority < q[j].Priority
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine runs events in virtual-time order.
type Engine struct {
	now    float64
	queue  eventQueue
	nextID uint64
	// MaxEvents bounds a run as a runaway guard (0 = 10 million).
	MaxEvents int
}

// NewEngine returns an empty engine at time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule enqueues fn at absolute time at (≥ now). Returns an error for
// events in the past.
func (e *Engine) Schedule(at float64, priority int, fn func(now float64)) error {
	if at < e.now {
		return fmt.Errorf("sim: cannot schedule at %g before now %g", at, e.now)
	}
	ev := &Event{At: at, Priority: priority, Fn: fn, seq: e.nextID}
	e.nextID++
	heap.Push(&e.queue, ev)
	return nil
}

// After enqueues fn delay seconds from now.
func (e *Engine) After(delay float64, priority int, fn func(now float64)) error {
	return e.Schedule(e.now+delay, priority, fn)
}

// Run executes events until the queue is empty or until virtual time
// exceeds until (events at exactly until still run). Returns the number
// of events executed. When the runaway guard trips, the returned error
// wraps ErrEventLimit and exactly MaxEvents events have run. Running to
// until = +Inf drains the queue and leaves the clock at the last event.
func (e *Engine) Run(until float64) (int, error) {
	limit := e.MaxEvents
	if limit <= 0 {
		limit = 10_000_000
	}
	span := obs.StartSpanAt("sim.run", e.now)
	count := 0
	defer func() {
		obs.AddAt(e.now, "sim_events_total", float64(count))
		obs.SetAt(e.now, "sim_queue_depth", float64(len(e.queue)))
		span.SetAttr("events", fmt.Sprintf("%d", count))
		span.EndAt(e.now)
		if event.Enabled() {
			event.Emit(e.now, event.LevelDebug, "sim.engine", "run_complete",
				event.D("events", count), event.D("pending", len(e.queue)))
		}
	}()
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.At > until {
			break
		}
		if count >= limit {
			obs.Inc("sim_event_limit_trips_total")
			if event.Enabled() {
				event.Emit(e.now, event.LevelWarn, "sim.engine", "event_limit",
					event.D("limit", limit))
			}
			return count, fmt.Errorf("%w: %d events (runaway schedule?)", ErrEventLimit, limit)
		}
		heap.Pop(&e.queue)
		e.now = next.At
		next.Fn(e.now)
		count++
	}
	if e.now < until && !math.IsInf(until, 1) {
		e.now = until
	}
	return count, nil
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Mobility moves a pose along waypoints at constant speed.
type Mobility struct {
	// Waypoints are visited in order; the entity stops at the last.
	Waypoints []geom.Vec
	// SpeedMps is the movement speed (m/s, > 0).
	SpeedMps float64
	// Start is the virtual time the walk begins.
	Start float64
}

// PositionAt returns the position at virtual time t.
func (m Mobility) PositionAt(t float64) geom.Vec {
	if len(m.Waypoints) == 0 {
		return geom.Vec{}
	}
	if len(m.Waypoints) == 1 || m.SpeedMps <= 0 || t <= m.Start {
		return m.Waypoints[0]
	}
	dist := (t - m.Start) * m.SpeedMps
	for i := 0; i+1 < len(m.Waypoints); i++ {
		leg := m.Waypoints[i+1].Sub(m.Waypoints[i])
		l := leg.Norm()
		if dist <= l {
			if l == 0 {
				continue
			}
			return m.Waypoints[i].Add(leg.Scale(dist / l))
		}
		dist -= l
	}
	return m.Waypoints[len(m.Waypoints)-1]
}

// TotalPathM returns the length of the full walk.
func (m Mobility) TotalPathM() float64 {
	var l float64
	for i := 0; i+1 < len(m.Waypoints); i++ {
		l += m.Waypoints[i+1].Sub(m.Waypoints[i]).Norm()
	}
	return l
}

// Duration returns the walk's duration in seconds (0 for degenerate
// configurations).
func (m Mobility) Duration() float64 {
	if m.SpeedMps <= 0 {
		return 0
	}
	return m.TotalPathM() / m.SpeedMps
}

// Trace accumulates named numeric columns sampled over time and renders
// them as CSV.
type Trace struct {
	cols  []string
	index map[string]int
	rows  [][]float64
}

// NewTrace returns a trace with the given column names ("t" first by
// convention).
func NewTrace(cols ...string) *Trace {
	idx := make(map[string]int, len(cols))
	for i, c := range cols {
		idx[c] = i
	}
	return &Trace{cols: cols, index: idx}
}

// Add appends one row; values must match the column count.
func (tr *Trace) Add(values ...float64) error {
	if len(values) != len(tr.cols) {
		return fmt.Errorf("sim: row has %d values, trace has %d columns", len(values), len(tr.cols))
	}
	row := make([]float64, len(values))
	copy(row, values)
	tr.rows = append(tr.rows, row)
	obs.Inc("sim_trace_rows_total")
	return nil
}

// Len returns the number of rows.
func (tr *Trace) Len() int { return len(tr.rows) }

// Column returns a copy of the named column's values.
func (tr *Trace) Column(name string) ([]float64, error) {
	i, ok := tr.index[name]
	if !ok {
		return nil, fmt.Errorf("sim: no column %q (have %s)", name, strings.Join(tr.cols, ","))
	}
	out := make([]float64, len(tr.rows))
	for j, r := range tr.rows {
		out[j] = r[i]
	}
	return out, nil
}

// Summary returns min/mean/max of a column. NaN samples (e.g. an
// inestimable SNR) are skipped rather than poisoning the statistics; a
// column with no finite samples is an error.
func (tr *Trace) Summary(name string) (min, mean, max float64, err error) {
	col, err := tr.Column(name)
	if err != nil {
		return 0, 0, 0, err
	}
	finite := col[:0:0]
	for _, v := range col {
		if !math.IsNaN(v) {
			finite = append(finite, v)
		}
	}
	if len(finite) == 0 {
		if len(col) > 0 {
			return 0, 0, 0, fmt.Errorf("sim: column %q has no non-NaN samples", name)
		}
		return 0, 0, 0, fmt.Errorf("sim: empty trace")
	}
	sorted := append([]float64{}, finite...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range finite {
		sum += v
	}
	return sorted[0], sum / float64(len(finite)), sorted[len(sorted)-1], nil
}

// CSV renders the trace with a header row.
func (tr *Trace) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(tr.cols, ","))
	b.WriteByte('\n')
	for _, r := range tr.rows {
		for i, v := range r {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
