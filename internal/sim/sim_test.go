package sim

import (
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/mmtag/mmtag/internal/geom"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	add := func(at float64, pri, id int) {
		if err := e.Schedule(at, pri, func(float64) { order = append(order, id) }); err != nil {
			t.Fatal(err)
		}
	}
	add(2.0, 0, 3)
	add(1.0, 1, 2)
	add(1.0, 0, 1)
	add(3.0, 0, 4)
	n, err := e.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("ran %d events", n)
	}
	want := []int{1, 2, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	if e.Now() != 10 {
		t.Errorf("final time %g", e.Now())
	}
}

func TestFIFOAmongEqualEvents(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		id := i
		if err := e.Schedule(1, 0, func(float64) { order = append(order, id) }); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Run(2); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestScheduleInPastFails(t *testing.T) {
	e := NewEngine()
	if err := e.Schedule(5, 0, func(float64) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(6); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(3, 0, func(float64) {}); err == nil {
		t.Error("scheduling in the past should fail")
	}
}

func TestAfterAndCascade(t *testing.T) {
	e := NewEngine()
	hits := 0
	var ping func(now float64)
	ping = func(now float64) {
		hits++
		if hits < 5 {
			if err := e.After(1, 0, ping); err != nil {
				t.Error(err)
			}
		}
	}
	if err := e.After(1, 0, ping); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if hits != 5 {
		t.Errorf("cascade hits %d", hits)
	}
	if e.Pending() != 0 {
		t.Error("queue should drain")
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	e := NewEngine()
	ran := false
	_ = e.Schedule(5, 0, func(float64) { ran = true })
	if _, err := e.Run(4); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("event beyond horizon ran")
	}
	if e.Pending() != 1 {
		t.Error("event should remain queued")
	}
	if _, err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("event at horizon should run")
	}
}

func TestRunawayGuard(t *testing.T) {
	e := NewEngine()
	e.MaxEvents = 100
	executed := 0
	var loop func(now float64)
	loop = func(now float64) {
		executed++
		_ = e.After(0.001, 0, loop)
	}
	_ = e.After(0, 0, loop)
	n, err := e.Run(1e9)
	if err == nil {
		t.Fatal("runaway schedule should trip the guard")
	}
	if !errors.Is(err, ErrEventLimit) {
		t.Errorf("error %v should wrap ErrEventLimit", err)
	}
	// The guard must stop at the limit, not one past it.
	if n != 100 || executed != 100 {
		t.Errorf("ran %d events (callbacks: %d), limit is 100", n, executed)
	}
}

func TestRunToInfinityDrainsQueue(t *testing.T) {
	e := NewEngine()
	_ = e.Schedule(2.5, 0, func(float64) {})
	if _, err := e.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 2.5 {
		t.Errorf("clock should rest at the last event, got %g", e.Now())
	}
}

func TestMobilityWaypoints(t *testing.T) {
	m := Mobility{
		Waypoints: []geom.Vec{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 5}},
		SpeedMps:  2,
	}
	if got := m.TotalPathM(); got != 15 {
		t.Errorf("path length %g", got)
	}
	if got := m.Duration(); got != 7.5 {
		t.Errorf("duration %g", got)
	}
	// Halfway along the first leg at t=2.5.
	p := m.PositionAt(2.5)
	if math.Abs(p.X-5) > 1e-12 || p.Y != 0 {
		t.Errorf("position at 2.5 s: %v", p)
	}
	// On the second leg at t=6.
	p = m.PositionAt(6)
	if math.Abs(p.X-10) > 1e-12 || math.Abs(p.Y-2) > 1e-12 {
		t.Errorf("position at 6 s: %v", p)
	}
	// Clamped at the end.
	p = m.PositionAt(100)
	if p != (geom.Vec{X: 10, Y: 5}) {
		t.Errorf("final position %v", p)
	}
	// Before start.
	if m.PositionAt(-1) != (geom.Vec{}) {
		t.Error("pre-start position")
	}
}

func TestMobilityDegenerate(t *testing.T) {
	if (Mobility{}).PositionAt(5) != (geom.Vec{}) {
		t.Error("empty mobility")
	}
	m := Mobility{Waypoints: []geom.Vec{{X: 3}}, SpeedMps: 1}
	if m.PositionAt(9) != (geom.Vec{X: 3}) {
		t.Error("single waypoint should pin")
	}
	if m.Duration() != 0 {
		t.Error("single waypoint duration")
	}
	z := Mobility{Waypoints: []geom.Vec{{}, {X: 1}}, SpeedMps: 0}
	if z.PositionAt(10) != (geom.Vec{}) {
		t.Error("zero speed should pin at start")
	}
}

func TestTrace(t *testing.T) {
	tr := NewTrace("t", "snr")
	if err := tr.Add(0, 10); err != nil {
		t.Fatal(err)
	}
	if err := tr.Add(1, 20); err != nil {
		t.Fatal(err)
	}
	if err := tr.Add(2, 30); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Error("row count")
	}
	col, err := tr.Column("snr")
	if err != nil || len(col) != 3 || col[1] != 20 {
		t.Errorf("column: %v %v", col, err)
	}
	min, mean, max, err := tr.Summary("snr")
	if err != nil || min != 10 || mean != 20 || max != 30 {
		t.Errorf("summary: %g %g %g %v", min, mean, max, err)
	}
	if err := tr.Add(1); err == nil {
		t.Error("short row should fail")
	}
	if _, err := tr.Column("nope"); err == nil {
		t.Error("unknown column should fail")
	}
	csv := tr.CSV()
	if !strings.HasPrefix(csv, "t,snr\n0,10\n") {
		t.Errorf("csv: %q", csv)
	}
}

func TestTraceEmptySummary(t *testing.T) {
	tr := NewTrace("x")
	if _, _, _, err := tr.Summary("x"); err == nil {
		t.Error("empty summary should fail")
	}
}

// Regression: a NaN sample (an inestimable SNR from RxStats.SNRdBEst)
// must not poison the column statistics.
func TestTraceSummarySkipsNaN(t *testing.T) {
	tr := NewTrace("snr")
	for _, v := range []float64{10, math.NaN(), 30, math.NaN(), 20} {
		if err := tr.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	min, mean, max, err := tr.Summary("snr")
	if err != nil {
		t.Fatal(err)
	}
	if min != 10 || mean != 20 || max != 30 {
		t.Errorf("NaN leaked into summary: %g %g %g", min, mean, max)
	}
	allNaN := NewTrace("x")
	_ = allNaN.Add(math.NaN())
	if _, _, _, err := allNaN.Summary("x"); err == nil {
		t.Error("all-NaN column should be an explicit error")
	}
}

func TestTraceEdgeCases(t *testing.T) {
	tr := NewTrace("t", "v")
	// Column on an unknown name reports the available columns.
	if _, err := tr.Column("ghost"); err == nil || !strings.Contains(err.Error(), "t,v") {
		t.Errorf("unknown-column error should list columns, got %v", err)
	}
	// Add arity mismatches fail without mutating the trace.
	if err := tr.Add(1); err == nil {
		t.Error("short row should fail")
	}
	if err := tr.Add(1, 2, 3); err == nil {
		t.Error("long row should fail")
	}
	if tr.Len() != 0 {
		t.Errorf("rejected rows were stored: len = %d", tr.Len())
	}
	// CSV with zero rows is just the header.
	if got := tr.CSV(); got != "t,v\n" {
		t.Errorf("zero-row CSV = %q", got)
	}
	// Column on an empty trace returns an empty, non-nil-safe slice.
	col, err := tr.Column("v")
	if err != nil || len(col) != 0 {
		t.Errorf("empty column: %v %v", col, err)
	}
}
