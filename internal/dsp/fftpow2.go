package dsp

import (
	"math"
	"math/bits"
)

// pow2PlanMin is the smallest power-of-two length that gets a cached
// radix-4 plan; below it the plain radix-2 kernel wins (the permutation
// gather and table lookups cost more than they save).
const pow2PlanMin = 32

// pow2Plan is the cached machinery of the iterative mixed radix-4/radix-2
// decimation-in-time FFT for one power-of-two length: the input gather
// permutation and one twiddle table per radix-4 stage. Radix-4 performs
// the same DFT as radix-2 with 25% fewer complex multiplies and half the
// memory passes; the tables remove the serial twiddle-recurrence chain the
// plain radix2 kernel carries. Only forward tables are stored — the
// inverse transform runs forward on the conjugated input (IFFT(x) =
// conj(FFT(conj(x)))/n), which costs two cheap passes instead of a second
// table set.
//
// A plan is immutable after construction except for scratch, so it is
// cached per length in a Workspace and shared by every frame (it survives
// Reset, like the Bluestein plans).
type pow2Plan struct {
	n       int
	oddLog  bool           // log2(n) odd: one radix-2 stage below the radix-4 ladder
	perm    []int32        // input gather order: work[i] = x[perm[i]]
	tw      [][]complex128 // per radix-4 stage: [w^k, w^2k, w^3k] interleaved, w = W_4L
	scratch []complex128
}

// newPow2Plan builds the plan for a power-of-two n ≥ 4.
func newPow2Plan(n int) *pow2Plan {
	log2n := bits.Len(uint(n)) - 1
	p := &pow2Plan{
		n:       n,
		oddLog:  log2n%2 == 1,
		perm:    make([]int32, 0, n),
		scratch: make([]complex128, n),
	}
	// Input permutation: the recursive decimation order. Radix-4 splits
	// into the four interleaved subsequences x[4m+j]; a leftover factor of
	// two is taken at the deepest level, so the bottom stage (and only the
	// bottom stage) is radix-2 when log2(n) is odd.
	var rec func(cnt, offset, stride int)
	rec = func(cnt, offset, stride int) {
		switch cnt {
		case 1:
			p.perm = append(p.perm, int32(offset))
		case 2:
			p.perm = append(p.perm, int32(offset), int32(offset+stride))
		default:
			for j := 0; j < 4; j++ {
				rec(cnt/4, offset+j*stride, stride*4)
			}
		}
	}
	rec(n, 0, 1)
	// Twiddle tables, one per radix-4 stage: combining four L-point
	// sub-DFTs needs W_{4L}^k, W_{4L}^{2k}, W_{4L}^{3k} for k < L.
	size := 1
	if p.oddLog {
		size = 2
	}
	for ; size < n; size *= 4 {
		l := size
		t := make([]complex128, 3*l)
		for k := 0; k < l; k++ {
			a := -2 * math.Pi * float64(k) / float64(4*l)
			s1, c1 := math.Sincos(a)
			s2, c2 := math.Sincos(2 * a)
			s3, c3 := math.Sincos(3 * a)
			t[3*k] = complex(c1, s1)
			t[3*k+1] = complex(c2, s2)
			t[3*k+2] = complex(c3, s3)
		}
		p.tw = append(p.tw, t)
	}
	return p
}

// forward computes the unnormalized DFT of x (length p.n) in place.
func (p *pow2Plan) forward(x []complex128) {
	// Gather into decimation order through the scratch buffer (the mixed
	// radix-4/2 permutation is not an involution, so in-place pair swaps
	// do not apply).
	copy(p.scratch, x)
	for i, j := range p.perm {
		x[i] = p.scratch[j]
	}
	p.butterfliesDIT(x)
}

// butterfliesDIT runs the decimation-in-time butterfly cascade on x
// WITHOUT the input gather: x must already be in the plan's decimation
// order (as produced by the perm gather, or directly by forwardDIF), and
// comes out holding the natural-order unnormalized DFT. Exposed
// separately so the convolution path can skip both permutations (see
// forwardDIF).
func (p *pow2Plan) butterfliesDIT(x []complex128) {
	n := p.n
	size := 1
	if p.oddLog {
		// Bottom radix-2 stage: twiddle-free butterflies on adjacent pairs.
		for i := 0; i < n; i += 2 {
			a, b := x[i], x[i+1]
			x[i], x[i+1] = a+b, a-b
		}
		size = 2
	}
	for stage := 0; size < n; stage++ {
		l := size
		t := p.tw[stage]
		for base := 0; base < n; base += 4 * l {
			i0 := base
			i1 := base + l
			i2 := base + 2*l
			i3 := base + 3*l
			for k := 0; k < l; k++ {
				t0 := x[i0+k]
				t1 := x[i1+k] * t[3*k]
				t2 := x[i2+k] * t[3*k+1]
				t3 := x[i3+k] * t[3*k+2]
				s0, d0 := t0+t2, t0-t2
				s1, d1 := t1+t3, t1-t3
				// −i·d1: the forward radix-4 butterfly's quarter turn.
				md1 := complex(imag(d1), -real(d1))
				x[i0+k] = s0 + s1
				x[i1+k] = d0 + md1
				x[i2+k] = s0 - s1
				x[i3+k] = d0 - md1
			}
		}
		size *= 4
	}
}

// forwardDIF computes the unnormalized DFT of natural-order x, leaving
// the result scrambled by the plan's decimation permutation:
// out[i] = X[perm[i]]. It is the transpose of butterfliesDIT — the same
// stages in reverse order with each stage's 4-point combine applied
// before its twiddle multiplies (the combine matrix is the symmetric
// DFT₄, so it transposes to itself) — and therefore needs no permutation
// pass at all.
//
// The point: pointwise products of two forwardDIF spectra are the
// convolution spectrum in the same scrambled order, and butterfliesDIT
// consumes exactly that order. A frequency-domain multiply can therefore
// round-trip natural→natural with zero gather/scatter passes.
func (p *pow2Plan) forwardDIF(x []complex128) {
	n := p.n
	size := n / 4
	for stage := len(p.tw) - 1; stage >= 0; stage-- {
		l := size
		t := p.tw[stage]
		for base := 0; base < n; base += 4 * l {
			i0 := base
			i1 := base + l
			i2 := base + 2*l
			i3 := base + 3*l
			for k := 0; k < l; k++ {
				t0 := x[i0+k]
				t1 := x[i1+k]
				t2 := x[i2+k]
				t3 := x[i3+k]
				s0, d0 := t0+t2, t0-t2
				s1, d1 := t1+t3, t1-t3
				md1 := complex(imag(d1), -real(d1))
				x[i0+k] = s0 + s1
				x[i1+k] = (d0 + md1) * t[3*k]
				x[i2+k] = (s0 - s1) * t[3*k+1]
				x[i3+k] = (d0 - md1) * t[3*k+2]
			}
		}
		size /= 4
	}
	if p.oddLog {
		// The transposed radix-2 stage runs last (it was first in DIT).
		for i := 0; i < n; i += 2 {
			a, b := x[i], x[i+1]
			x[i], x[i+1] = a+b, a-b
		}
	}
}

// inverse computes the normalized inverse DFT of x in place via the
// conjugation identity, reusing the forward tables.
func (p *pow2Plan) inverse(x []complex128) {
	for i := range x {
		x[i] = complex(real(x[i]), -imag(x[i]))
	}
	p.forward(x)
	inv := 1 / float64(p.n)
	for i := range x {
		x[i] = complex(real(x[i])*inv, -imag(x[i])*inv)
	}
}
