package dsp

import (
	"math"
	"math/cmplx"
)

// Energy returns the total energy Σ|x|² of a signal.
func Energy(x []complex128) float64 {
	var e float64
	for _, v := range x {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	return e
}

// Power returns the mean power of a signal (Energy/N). Returns 0 for an
// empty signal.
func Power(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	return Energy(x) / float64(len(x))
}

// Scale multiplies x by the real gain g in place and returns it.
func Scale(x []complex128, g float64) []complex128 {
	c := complex(g, 0)
	for i := range x {
		x[i] *= c
	}
	return x
}

// ScaleC multiplies x by the complex gain g in place and returns it.
func ScaleC(x []complex128, g complex128) []complex128 {
	for i := range x {
		x[i] *= g
	}
	return x
}

// Add adds y into x element-wise in place and returns x. The signals must
// have the same length; the shorter prefix is used otherwise.
func Add(x, y []complex128) []complex128 {
	n := min(len(x), len(y))
	for i := 0; i < n; i++ {
		x[i] += y[i]
	}
	return x
}

// Mix multiplies x in place by a complex exponential of the given
// normalized frequency (cycles per sample) and initial phase, i.e. a
// frequency shift. Returns x.
func Mix(x []complex128, freqNorm, phase float64) []complex128 {
	w := cmplx.Rect(1, 2*math.Pi*freqNorm)
	c := cmplx.Rect(1, phase)
	for i := range x {
		x[i] *= c
		c *= w
	}
	return x
}

// Delay returns x delayed by d whole samples, zero-padded at the front,
// same length as x.
func Delay(x []complex128, d int) []complex128 {
	out := make([]complex128, len(x))
	if d < 0 {
		d = 0
	}
	if d < len(x) {
		copy(out[d:], x[:len(x)-d])
	}
	return out
}

// Conv returns the full linear convolution of x and h
// (length len(x)+len(h)−1). For large inputs it switches to overlap-save
// FFT convolution (see ConvOSWS).
func Conv(x, h []complex128) []complex128 { return ConvWS(nil, x, h) }

// ConvWS is Conv with workspace-backed scratch and output: the returned
// slice is owned by ws and valid until the next ws.Reset. A nil ws
// allocates, which is exactly Conv.
func ConvWS(ws *Workspace, x, h []complex128) []complex128 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	n := len(x) + len(h) - 1
	// Direct convolution is cheaper for short kernels.
	if len(h) <= 64 || len(x) <= 64 {
		out := ws.Complex(n)
		for i, xv := range x {
			if xv == 0 {
				continue
			}
			for j, hv := range h {
				out[i+j] += xv * hv
			}
		}
		return out
	}
	return ConvOSWS(ws, x, h)
}

// XCorr returns the cross-correlation r[k] = Σ_n x[n+k]·conj(y[n]) for
// lags k = 0 … len(x)−len(y), i.e. it slides the shorter reference y over
// x. Used for preamble detection.
func XCorr(x, y []complex128) []complex128 {
	if len(y) == 0 || len(x) < len(y) {
		return nil
	}
	lags := len(x) - len(y) + 1
	out := make([]complex128, lags)
	for k := 0; k < lags; k++ {
		var acc complex128
		for n := 0; n < len(y); n++ {
			acc += x[k+n] * cmplx.Conj(y[n])
		}
		out[k] = acc
	}
	return out
}

// PeakIndex returns the index of the sample with the largest magnitude,
// or −1 for an empty slice.
func PeakIndex(x []complex128) int {
	best, bestMag := -1, math.Inf(-1)
	for i, v := range x {
		m := real(v)*real(v) + imag(v)*imag(v)
		if m > bestMag {
			best, bestMag = i, m
		}
	}
	return best
}

// MaxAbs returns the largest magnitude in x.
func MaxAbs(x []complex128) float64 {
	var m float64
	for _, v := range x {
		if a := cmplx.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Normalize scales x in place to unit mean power and returns it. A zero
// signal is returned unchanged.
func Normalize(x []complex128) []complex128 {
	p := Power(x)
	if p == 0 {
		return x
	}
	return Scale(x, 1/math.Sqrt(p))
}

// MovingAverage returns the causal moving average of x with window w
// (output sample i averages x[max(0,i−w+1) … i]). Used as the simplest
// OOK envelope smoother.
func MovingAverage(x []complex128, w int) []complex128 {
	return MovingAverageInto(make([]complex128, len(x)), x, w)
}

// MovingAverageInto writes the causal moving average of x into dst and
// returns dst[:len(x)]. len(dst) must be ≥ len(x), and dst must not
// alias x (the running sum re-reads x[i−w] after dst[i−w] is written).
func MovingAverageInto(dst, x []complex128, w int) []complex128 {
	dst = dst[:len(x)]
	if w <= 1 {
		copy(dst, x)
		return dst
	}
	var acc complex128
	for i := range x {
		acc += x[i]
		if i >= w {
			acc -= x[i-w]
		}
		n := w
		if i+1 < w {
			n = i + 1
		}
		dst[i] = acc / complex(float64(n), 0)
	}
	return dst
}

// Magnitudes returns |x[i]| for every sample.
func Magnitudes(x []complex128) []float64 {
	return MagnitudesInto(make([]float64, len(x)), x)
}

// MagnitudesInto writes |x[i]| into dst and returns dst[:len(x)].
// len(dst) must be ≥ len(x).
func MagnitudesInto(dst []float64, x []complex128) []float64 {
	dst = dst[:len(x)]
	for i, v := range x {
		dst[i] = cmplx.Abs(v)
	}
	return dst
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
