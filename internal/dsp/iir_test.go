package dsp

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestLowpassBiquadResponse(t *testing.T) {
	q, err := NewLowpassBiquad(0.1)
	if err != nil {
		t.Fatal(err)
	}
	// DC gain 1, −3 dB at cutoff, strong attenuation near Nyquist.
	if g := cmplx.Abs(q.Response(0)); math.Abs(g-1) > 1e-9 {
		t.Errorf("DC gain %g", g)
	}
	if g := cmplx.Abs(q.Response(0.1)); math.Abs(20*math.Log10(g)-(-3.01)) > 0.1 {
		t.Errorf("cutoff gain %g dB", 20*math.Log10(g))
	}
	if g := cmplx.Abs(q.Response(0.45)); g > 0.05 {
		t.Errorf("stopband gain %g", g)
	}
	if _, err := NewLowpassBiquad(0.6); err == nil {
		t.Error("cutoff above Nyquist should fail")
	}
	if _, err := NewLowpassBiquad(0); err == nil {
		t.Error("zero cutoff should fail")
	}
}

func TestHighpassBiquadResponse(t *testing.T) {
	q, err := NewHighpassBiquad(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if g := cmplx.Abs(q.Response(0)); g > 1e-9 {
		t.Errorf("DC gain %g, want 0", g)
	}
	if g := cmplx.Abs(q.Response(0.4)); math.Abs(g-1) > 0.05 {
		t.Errorf("passband gain %g", g)
	}
	if _, err := NewHighpassBiquad(0.7); err == nil {
		t.Error("bad cutoff should fail")
	}
}

func TestBiquadTimeDomainMatchesResponse(t *testing.T) {
	// Steady-state output of a tone must match the analytic response.
	q, _ := NewLowpassBiquad(0.12)
	f := 0.07
	n := 4096
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Rect(1, 2*math.Pi*f*float64(i))
	}
	y := q.Process(x)
	// Compare steady-state magnitude (skip the transient).
	var p float64
	for _, v := range y[n/2:] {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	got := math.Sqrt(p / float64(n/2))
	q2, _ := NewLowpassBiquad(0.12)
	want := cmplx.Abs(q2.Response(f))
	if math.Abs(got-want) > 0.01 {
		t.Errorf("time-domain gain %g vs response %g", got, want)
	}
}

func TestBiquadReset(t *testing.T) {
	q, _ := NewLowpassBiquad(0.2)
	a := q.ProcessSample(1)
	q.Reset()
	b := q.ProcessSample(1)
	if a != b {
		t.Error("reset did not clear state")
	}
}

func TestDCBlockerRemovesDC(t *testing.T) {
	d := &DCBlocker{}
	n := 8192
	x := make([]complex128, n)
	offset := complex(0.7, -0.3)
	for i := range x {
		x[i] = offset + cmplx.Rect(0.1, 2*math.Pi*0.05*float64(i))
	}
	y := d.Process(x)
	// After settling, the mean must be ~0 while the tone survives.
	var mean complex128
	tail := y[n/2:]
	for _, v := range tail {
		mean += v
	}
	mean /= complex(float64(len(tail)), 0)
	if cmplx.Abs(mean) > 0.01 {
		t.Errorf("residual DC %g", cmplx.Abs(mean))
	}
	var p float64
	for _, v := range tail {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	tonePower := p / float64(len(tail))
	if tonePower < 0.8*0.005 { // tone power 0.1²/2 = 0.005
		t.Errorf("tone attenuated too much: %g", tonePower)
	}
}

func TestDCBlockerReset(t *testing.T) {
	d := &DCBlocker{R: 0.9}
	a := d.ProcessSample(2)
	d.Reset()
	b := d.ProcessSample(2)
	if a != b {
		t.Error("reset did not clear state")
	}
}
