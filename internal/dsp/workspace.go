package dsp

import (
	"math"
	"math/cmplx"
)

// Workspace is a per-goroutine arena of reusable DSP scratch buffers and
// cached FFT plans. The sample-domain pipeline (dsp → phy → reader →
// core) allocates hundreds of kilobytes per burst when every stage calls
// make(); threading one Workspace through the stages amortizes all of
// that to zero steady-state allocations.
//
// Ownership rules (see DESIGN.md §9):
//
//   - A checked-out buffer (Complex/Float/Bytes) belongs to the caller
//     until the next Reset, which recycles every outstanding buffer at
//     once. There is no per-buffer release: the workspace is a frame
//     arena, and the owner of the frame (the outermost call, e.g. one
//     burst or one Monte-Carlo shard) calls Reset between frames.
//   - Results that must outlive the frame must be copied out before
//     Reset. In particular, frame.Parser.Decode retains references into
//     its input, so decoded payloads read from workspace memory are only
//     valid until the next Reset.
//   - A Workspace is NOT safe for concurrent use. Parallel fan-outs give
//     each worker goroutine its own (par.ForEachWith and friends).
//   - A nil *Workspace is valid everywhere: every method falls back to
//     plain allocation, which is how the pre-workspace signatures keep
//     their exact behavior as thin wrappers.
//
// FFT plans (cached Bluestein chirp factors and the precomputed forward
// transform of the chirp kernel, keyed by length and direction) survive
// Reset: they are immutable once built and shared by every frame.
type Workspace struct {
	cbufs bufPool[complex128]
	fbufs bufPool[float64]
	bbufs bufPool[byte]
	plans map[int]*fftPlan
	pow2s map[int]*pow2Plan
	rffts map[int]*rfftPlan
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// bufPool recycles slices of one element type between frames: get hands
// out the smallest free buffer with sufficient capacity (or allocates),
// reset moves everything handed out back to the free list. Buffer sizes
// stabilize after the first frame of a steady call path, so get stops
// allocating.
type bufPool[T any] struct {
	free [][]T
	used [][]T
}

func (p *bufPool[T]) get(n int) []T {
	best := -1
	for i, b := range p.free {
		c := cap(b)
		if c >= n && (best < 0 || c < cap(p.free[best])) {
			best = i
		}
	}
	var buf []T
	if best >= 0 {
		buf = p.free[best][:n]
		last := len(p.free) - 1
		p.free[best] = p.free[last]
		p.free[last] = nil
		p.free = p.free[:last]
		clear(buf)
	} else {
		buf = make([]T, n)
	}
	p.used = append(p.used, buf)
	return buf
}

func (p *bufPool[T]) reset() {
	p.free = append(p.free, p.used...)
	for i := range p.used {
		p.used[i] = nil
	}
	p.used = p.used[:0]
}

// Complex checks out a zeroed []complex128 of length n, owned by the
// caller until the next Reset. A nil workspace allocates.
func (w *Workspace) Complex(n int) []complex128 {
	if w == nil {
		return make([]complex128, n)
	}
	return w.cbufs.get(n)
}

// Float checks out a zeroed []float64 of length n (see Complex).
func (w *Workspace) Float(n int) []float64 {
	if w == nil {
		return make([]float64, n)
	}
	return w.fbufs.get(n)
}

// Bytes checks out a zeroed []byte of length n (see Complex).
func (w *Workspace) Bytes(n int) []byte {
	if w == nil {
		return make([]byte, n)
	}
	return w.bbufs.get(n)
}

// Reset recycles every buffer checked out since the previous Reset.
// Cached FFT plans survive. No-op on a nil workspace.
func (w *Workspace) Reset() {
	if w == nil {
		return
	}
	w.cbufs.reset()
	w.fbufs.reset()
	w.bbufs.reset()
}

// FFTInPlace computes the DFT of x in place for any length: radix-2 for
// powers of two, plan-cached Bluestein otherwise. Zero allocations once
// the plan for len(x) exists.
func (w *Workspace) FFTInPlace(x []complex128) { w.fft(x, false) }

// IFFTInPlace computes the normalized inverse DFT of x in place for any
// length (see FFTInPlace).
func (w *Workspace) IFFTInPlace(x []complex128) { w.fft(x, true) }

func (w *Workspace) fft(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if IsPowerOfTwo(n) {
		if w != nil && n >= pow2PlanMin {
			p := w.pow2Plan(n)
			if inverse {
				p.inverse(x)
			} else {
				p.forward(x)
			}
			return
		}
		radix2(x, inverse)
		return
	}
	w.plan(n, inverse).transform(x, inverse)
}

// pow2Plan returns the cached radix-4 plan for power-of-two length n,
// building it on first use. Plans survive Reset (immutable except for
// their private scratch buffer).
func (w *Workspace) pow2Plan(n int) *pow2Plan {
	if w == nil {
		return newPow2Plan(n)
	}
	if p, ok := w.pow2s[n]; ok {
		return p
	}
	if w.pow2s == nil {
		w.pow2s = make(map[int]*pow2Plan)
	}
	p := newPow2Plan(n)
	w.pow2s[n] = p
	return p
}

// plan returns the cached Bluestein plan for (n, inverse), building it on
// first use. A nil workspace builds a throwaway plan (the allocating
// compatibility path).
func (w *Workspace) plan(n int, inverse bool) *fftPlan {
	if w == nil {
		return newFFTPlan(n, inverse)
	}
	key := n << 1
	if inverse {
		key |= 1
	}
	if p, ok := w.plans[key]; ok {
		return p
	}
	if w.plans == nil {
		w.plans = make(map[int]*fftPlan)
	}
	p := newFFTPlan(n, inverse)
	w.plans[key] = p
	return p
}

// fftPlan holds the length-dependent precomputations of Bluestein's
// chirp-z transform: the chirp w_k = exp(sign·jπk²/n) and the forward
// FFT of the conjugate-chirp convolution kernel. Caching it saves both
// the per-call factor allocations and one of the three radix-2 passes.
type fftPlan struct {
	n, m    int
	chirp   []complex128 // n chirp factors
	bfft    []complex128 // m-point FFT of the conjugate-chirp kernel
	scratch []complex128 // m-point work buffer reused per transform
	mp      *pow2Plan    // radix-4 plan for the three m-point transforms
}

func newFFTPlan(n int, inverse bool) *fftPlan {
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Reduce k² mod 2n to keep the angle argument small and the chirp
	// numerically exact for large n.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Rect(1, sign*math.Pi*float64(kk)/float64(n))
	}
	m := NextPowerOfTwo(2*n - 1)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	mp := newPow2Plan(m)
	mp.forward(b)
	return &fftPlan{n: n, m: m, chirp: chirp, bfft: b, scratch: make([]complex128, m), mp: mp}
}

// transform runs the chirp-z convolution on x (length p.n) in place.
func (p *fftPlan) transform(x []complex128, inverse bool) {
	a := p.scratch
	clear(a)
	for k := 0; k < p.n; k++ {
		a[k] = x[k] * p.chirp[k]
	}
	p.mp.forward(a)
	for i := range a {
		a[i] *= p.bfft[i]
	}
	p.mp.inverse(a)
	for k := 0; k < p.n; k++ {
		x[k] = a[k] * p.chirp[k]
	}
	if inverse {
		inv := complex(1/float64(p.n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}
