package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Periodogram returns the power spectral estimate |FFT(x·w)|²/(N·U) for a
// single windowed block, where U compensates the window's power loss. The
// output has len(x) bins in natural FFT order; use FFTShift for plotting
// order.
func Periodogram(x []complex128, w Window) []float64 {
	return PeriodogramWS(nil, x, w)
}

// PeriodogramWS is Periodogram with the window, FFT buffer and output
// checked out of ws (and the FFT run through ws's cached plans for
// non-power-of-two lengths). Real-valued inputs (zero imaginary part
// throughout, e.g. OOK envelopes) are detected and routed through the
// packed real-input transform, which halves the FFT work; the mirror
// half of the spectrum is filled in by conjugate symmetry. The returned
// slice is valid until the next ws.Reset; a nil ws allocates.
func PeriodogramWS(ws *Workspace, x []complex128, w Window) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	win := MakeWindowInto(ws.Float(n), w)
	var u float64
	for _, v := range win {
		u += v * v
	}
	u /= float64(n)
	scale := 1 / (float64(n) * float64(n) * u)
	if n >= 32 && n%2 == 0 && allRealInput(x) {
		rb := ws.Float(n)
		for i, v := range x {
			rb[i] = real(v) * win[i]
		}
		spec := RFFTWS(ws, rb)
		out := ws.Float(n)
		for k, v := range spec {
			out[k] = (real(v)*real(v) + imag(v)*imag(v)) * scale
		}
		for k := 1; k < n/2; k++ {
			out[n-k] = out[k] // |X[n−k]| = |conj(X[k])|
		}
		return out
	}
	buf := ws.Complex(n)
	copy(buf, x)
	ApplyWindow(buf, win)
	ws.fft(buf, false)
	out := ws.Float(n)
	for i, v := range buf {
		out[i] = (real(v)*real(v) + imag(v)*imag(v)) * scale
	}
	return out
}

// allRealInput reports whether every sample has an exactly zero
// imaginary part.
func allRealInput(x []complex128) bool {
	for _, v := range x {
		if imag(v) != 0 {
			return false
		}
	}
	return true
}

// Welch estimates the power spectrum by averaging periodograms of
// half-overlapping segments of length segLen (rounded up to a power of two
// is not required). Returns segLen bins in natural FFT order.
func Welch(x []complex128, segLen int, w Window) ([]float64, error) {
	if segLen <= 0 {
		return nil, fmt.Errorf("dsp: Welch segment length must be positive")
	}
	if len(x) < segLen {
		return nil, fmt.Errorf("dsp: signal shorter (%d) than segment (%d)", len(x), segLen)
	}
	hop := segLen / 2
	if hop == 0 {
		hop = 1
	}
	acc := make([]float64, segLen)
	count := 0
	for start := 0; start+segLen <= len(x); start += hop {
		p := Periodogram(x[start:start+segLen], w)
		for i, v := range p {
			acc[i] += v
		}
		count++
	}
	inv := 1 / float64(count)
	for i := range acc {
		acc[i] *= inv
	}
	return acc, nil
}

// Goertzel evaluates the DFT of x at a single normalized frequency
// (cycles/sample) — much cheaper than a full FFT when the reader only
// needs power at the carrier offset.
func Goertzel(x []complex128, freqNorm float64) complex128 {
	w := 2 * math.Pi * freqNorm
	coeff := 2 * math.Cos(w)
	var s1, s2 complex128
	c := complex(coeff, 0)
	for _, v := range x {
		s0 := v + c*s1 - s2
		s2 = s1
		s1 = s0
	}
	// Finalize: X(f) = s1 − e^{−jw}·s2, with the conventional phase
	// reference at the end of the block rotated back to the start.
	res := s1 - cmplx.Rect(1, -w)*s2
	return res * cmplx.Rect(1, -w*float64(len(x)-1))
}

// AGC is a simple feed-forward automatic gain control that normalizes
// block power to a target with exponential smoothing. The reader uses it
// to stabilize the OOK envelope before thresholding.
type AGC struct {
	// Target is the desired mean power after gain (default 1 if zero).
	Target float64
	// Alpha is the power-estimate smoothing factor in (0, 1]; small
	// values adapt slowly. Default 0.25 if zero.
	Alpha float64

	est float64
}

// Process scales the block toward the target power in place and returns
// it.
func (a *AGC) Process(x []complex128) []complex128 {
	target := a.Target
	if target == 0 {
		target = 1
	}
	alpha := a.Alpha
	if alpha == 0 {
		alpha = 0.25
	}
	p := Power(x)
	if p == 0 {
		return x
	}
	if a.est == 0 {
		a.est = p
	} else {
		a.est = (1-alpha)*a.est + alpha*p
	}
	return Scale(x, math.Sqrt(target/a.est))
}

// Reset clears the AGC's power estimate.
func (a *AGC) Reset() { a.est = 0 }
