package dsp

import "math"

// Frequency-domain convolution and correlation. Direct convolution costs
// O(len(x)·len(h)); for long kernels the overlap-save method cuts that to
// O(len(x)·log B) by filtering fixed-size FFT blocks against the kernel's
// precomputed spectrum. The block size is the classic ~8× kernel-length
// heuristic (rounded to a power of two so the cached radix-4 plans apply),
// clamped so a signal that fits in one block gets a single transform.

// convBlockSize picks the overlap-save FFT size for kernel length lh and
// full output length n.
func convBlockSize(lh, n int) int {
	b := NextPowerOfTwo(8 * lh)
	if one := NextPowerOfTwo(n + lh - 1); b > one {
		b = one // whole signal fits in a single block
	}
	if b < 8 {
		b = 8
	}
	return b
}

// ConvOSWS returns the full linear convolution of x and h (length
// len(x)+len(h)−1) computed by overlap-save FFT blocks. The returned
// slice is owned by ws and valid until the next ws.Reset; a nil ws
// allocates. Zero allocations once the ws FFT plans exist.
func ConvOSWS(ws *Workspace, x, h []complex128) []complex128 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	lh := len(h)
	n := len(x) + lh - 1
	b := convBlockSize(lh, n)
	hf := ws.Complex(b)
	copy(hf, h)
	ws.pow2Plan(b).forwardDIF(hf)
	out := ws.Complex(n)
	convOS(ws, x, hf, lh, out)
	return out
}

// convOS runs the overlap-save blocks: hf is the b-point DIF-scrambled
// spectrum of the length-lh kernel (b = len(hf), a power of two with
// b ≥ lh, scrambled by pow2Plan.forwardDIF), and out receives the full
// convolution (len(out) == len(x)+lh−1). Each block loads L = b−lh+1 new
// input samples plus the lh−1 samples of overlap before them, multiplies
// in the frequency domain, and keeps the L aliasing-free tail outputs.
//
// The round trip is DIF forward → scrambled-order multiply → DIT
// butterflies, so no permutation pass ever runs; the inverse transform's
// conjugations (IFFT(z) = conj(FFT(conj(z)))/b) are fused into the
// multiply and the output copy, so they only touch samples that are kept.
func convOS(ws *Workspace, x []complex128, hf []complex128, lh int, out []complex128) {
	b := len(hf)
	p := ws.pow2Plan(b)
	l := b - lh + 1
	n := len(out)
	inv := 1 / float64(b)
	blk := ws.Complex(b)
	for start := 0; start < n; start += l {
		fillBlock(blk, x, start-(lh-1))
		p.forwardDIF(blk)
		for i := range blk {
			v := blk[i] * hf[i]
			blk[i] = complex(real(v), -imag(v))
		}
		p.butterfliesDIT(blk)
		m := l
		if n-start < m {
			m = n - start
		}
		dst := out[start : start+m]
		src := blk[lh-1 : lh-1+m]
		for t := range dst {
			v := src[t]
			dst[t] = complex(real(v)*inv, -imag(v)*inv)
		}
	}
}

// fillBlock loads blk with x[lo:lo+len(blk)], zero-padding out-of-range
// positions, using bulk copies instead of a per-sample bounds check.
func fillBlock(blk, x []complex128, lo int) {
	b := len(blk)
	zhead := 0
	if lo < 0 {
		zhead = -lo
		if zhead > b {
			zhead = b
		}
		clear(blk[:zhead])
	}
	s := lo + zhead
	if s < len(x) {
		ncpy := b - zhead
		if avail := len(x) - s; ncpy > avail {
			ncpy = avail
		}
		copy(blk[zhead:zhead+ncpy], x[s:s+ncpy])
		clear(blk[zhead+ncpy:])
	} else {
		clear(blk[zhead:])
	}
}

// FIRFFT is a streaming block filter: the frequency-domain counterpart of
// FIR.Process for long filters. It holds the kernel spectrum (computed
// once) and the lh−1 samples of history that give block calls the same
// causal streaming semantics as sample-by-sample filtering. Output equals
// FIR.Process up to FFT rounding (~1e−12 relative).
//
// Like FIR, a FIRFFT is single-stream state and not safe for concurrent
// use.
type FIRFFT struct {
	taps []float64
	b    int          // FFT block size
	hf   []complex128 // b-point spectrum of taps
	hist []complex128 // last len(taps)−1 inputs
}

// NewFIRFFT builds the frequency-domain filter from an existing FIR's
// taps (shared, not copied — FIR taps are immutable after construction).
func NewFIRFFT(f *FIR) *FIRFFT {
	return NewFIRFFTTaps(f.TapsView())
}

// NewFIRFFTTaps builds the frequency-domain filter from raw taps. The
// slice is retained; callers must not modify it afterwards.
func NewFIRFFTTaps(taps []float64) *FIRFFT {
	nt := len(taps)
	if nt == 0 {
		return &FIRFFT{}
	}
	b := NextPowerOfTwo(8 * nt)
	if b < 8 {
		b = 8
	}
	hf := make([]complex128, b)
	for i, t := range taps {
		hf[i] = complex(t, 0)
	}
	newPow2Plan(b).forwardDIF(hf)
	return &FIRFFT{taps: taps, b: b, hf: hf, hist: make([]complex128, nt-1)}
}

// Reset clears the streaming history (the equivalent of FIR.Reset).
func (ff *FIRFFT) Reset() {
	clear(ff.hist)
}

// ProcessWS filters one block, returning len(x) output samples in a
// workspace buffer valid until the next ws.Reset. Streaming semantics:
// history carries across calls exactly like FIR.Process. Zero
// allocations once the ws FFT plans exist.
func (ff *FIRFFT) ProcessWS(ws *Workspace, x []complex128) []complex128 {
	nt := len(ff.taps)
	if nt == 0 {
		out := ws.Complex(len(x))
		copy(out, x)
		return out
	}
	if len(x) == 0 {
		return ws.Complex(0)
	}
	nh := nt - 1
	ext := ws.Complex(nh + len(x))
	copy(ext, ff.hist)
	copy(ext[nh:], x)
	// Full convolution of ext with the taps, keeping the causal window:
	// y[t] = Σ taps[i]·ext[nh+t−i] is full-conv position nh+t.
	full := ws.Complex(len(ext) + nh)
	convOS(ws, ext, ff.hf, nt, full)
	out := full[nh : nh+len(x)]
	// Carry the last nh inputs into the next call's history.
	copy(ff.hist, ext[len(ext)-nh:])
	return out
}

// XCorrWS computes XCorr (r[k] = Σ_n x[n+k]·conj(y[n]), lags
// k = 0…len(x)−len(y)) choosing between the direct loop and FFT-based
// circular correlation by estimated cost. The direct path skips exact-zero
// reference taps, so sparse templates (e.g. an upsampled preamble) pay
// only for their nonzero chips and produce bit-identical sums to a strided
// loop over those chips. The returned slice is owned by ws and valid
// until the next ws.Reset.
func XCorrWS(ws *Workspace, x, y []complex128) []complex128 {
	if len(y) == 0 || len(x) < len(y) {
		return nil
	}
	lags := len(x) - len(y) + 1
	nnz := 0
	for _, v := range y {
		if v != 0 {
			nnz++
		}
	}
	if xcorrDirectCheaper(lags, nnz, len(x)) {
		out := ws.Complex(lags)
		if nnz == len(y) {
			for k := 0; k < lags; k++ {
				var acc complex128
				for n, yv := range y {
					acc += x[k+n] * complex(real(yv), -imag(yv))
				}
				out[k] = acc
			}
			return out
		}
		// Gather the nonzero taps once (conjugated, ascending index) so a
		// sparse template pays per lag only for its nonzero chips — the
		// same summands in the same order as the dense loop, hence
		// bit-identical, at the cost of a strided loop over the chips.
		cv := ws.Complex(nnz)
		ci := ws.Float(nnz)
		j := 0
		for n, yv := range y {
			if yv == 0 {
				continue
			}
			cv[j] = complex(real(yv), -imag(yv))
			ci[j] = float64(n)
			j++
		}
		for k := 0; k < lags; k++ {
			var acc complex128
			for j, v := range cv {
				acc += x[k+int(ci[j])] * v
			}
			out[k] = acc
		}
		return out
	}
	// Circular correlation: IFFT(FFT(x)·conj(FFT(y))) at size ≥ len(x)
	// is aliasing-free for all valid lags. Runs in DIF-scrambled order
	// with fused conjugations, like convOS.
	nf := NextPowerOfTwo(len(x))
	p := ws.pow2Plan(nf)
	xf := ws.Complex(nf)
	yf := ws.Complex(nf)
	copy(xf, x)
	copy(yf, y)
	p.forwardDIF(xf)
	p.forwardDIF(yf)
	for i := range xf {
		// conj(X·conj(Y)), feeding the conjugate-trick inverse transform.
		v := xf[i] * complex(real(yf[i]), -imag(yf[i]))
		xf[i] = complex(real(v), -imag(v))
	}
	p.butterfliesDIT(xf)
	inv := 1 / float64(nf)
	out := xf[:lags]
	for i, v := range out {
		out[i] = complex(real(v)*inv, -imag(v)*inv)
	}
	return out
}

// XCorrRealWS is XCorrWS for real-valued signals (e.g. OOK envelopes
// against a real preamble template): the FFT path runs on the packed
// real-input transform, halving the transform work.
func XCorrRealWS(ws *Workspace, x, y []float64) []float64 {
	if len(y) == 0 || len(x) < len(y) {
		return nil
	}
	lags := len(x) - len(y) + 1
	nnz := 0
	for _, v := range y {
		if v != 0 {
			nnz++
		}
	}
	if xcorrDirectCheaper(lags, nnz, len(x)) {
		out := ws.Float(lags)
		if nnz == len(y) {
			for k := 0; k < lags; k++ {
				var acc float64
				for n, yv := range y {
					acc += x[k+n] * yv
				}
				out[k] = acc
			}
			return out
		}
		// As in XCorrWS: gather the nonzero chips once, keeping the dense
		// loop's ascending-index summation order (bit-identical results).
		cv := ws.Float(nnz)
		ci := ws.Float(nnz)
		j := 0
		for n, yv := range y {
			if yv == 0 {
				continue
			}
			cv[j] = yv
			ci[j] = float64(n)
			j++
		}
		for k := 0; k < lags; k++ {
			var acc float64
			for j, v := range cv {
				acc += x[k+int(ci[j])] * v
			}
			out[k] = acc
		}
		return out
	}
	nf := NextPowerOfTwo(len(x))
	if nf < 2 {
		nf = 2
	}
	xp := ws.Float(nf)
	yp := ws.Float(nf)
	copy(xp, x)
	copy(yp, y)
	xf := RFFTWS(ws, xp)
	yf := RFFTWS(ws, yp)
	for i := range xf {
		xf[i] *= complex(real(yf[i]), -imag(yf[i]))
	}
	r := IRFFTWS(ws, xf, nf)
	return r[:lags]
}

// xcorrDirectCheaper estimates whether the direct O(lags·nnz) loop beats
// the three-transform FFT path at size NextPowerOfTwo(lx). The constant
// balances one complex multiply-accumulate against one FFT butterfly and
// was calibrated on the benchmarks in bench_test.go.
func xcorrDirectCheaper(lags, nnz, lx int) bool {
	direct := float64(lags) * float64(nnz)
	nf := float64(NextPowerOfTwo(lx))
	return direct <= 2*3*nf*math.Log2(nf)
}
