package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// convDirect is the O(n·m) reference convolution.
func convDirect(x, h []complex128) []complex128 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	out := make([]complex128, len(x)+len(h)-1)
	for i, xv := range x {
		for j, hv := range h {
			out[i+j] += xv * hv
		}
	}
	return out
}

// TestConvOSMatchesDirect pins overlap-save convolution against the
// direct loop across kernel/signal length combinations spanning single-
// block and many-block regimes.
func TestConvOSMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := NewWorkspace()
	cases := []struct{ lx, lh int }{
		{1, 1}, {5, 3}, {17, 9}, {64, 64}, {100, 65},
		{500, 63}, {4096, 63}, {4096, 129}, {1000, 333}, {257, 1024},
	}
	for _, c := range cases {
		x := randComplex(rng, c.lx)
		h := randComplex(rng, c.lh)
		want := convDirect(x, h)
		got := ConvOSWS(w, x, h)
		if len(got) != len(want) {
			t.Fatalf("conv %dx%d: length %d want %d", c.lx, c.lh, len(got), len(want))
		}
		scale := MaxAbs(want) + 1
		for i := range want {
			if d := cmplx.Abs(got[i] - want[i]); d > 1e-10*scale*float64(c.lh) {
				t.Fatalf("conv %dx%d sample %d: got %v want %v", c.lx, c.lh, i, got[i], want[i])
			}
		}
		// ConvWS must agree too (it delegates here for long kernels).
		got2 := ConvWS(w, x, h)
		for i := range want {
			if d := cmplx.Abs(got2[i] - want[i]); d > 1e-10*scale*float64(c.lh) {
				t.Fatalf("ConvWS %dx%d sample %d: got %v want %v", c.lx, c.lh, i, got2[i], want[i])
			}
		}
		w.Reset()
	}
}

// TestFIRFFTMatchesFIRStreaming runs the same sample stream through the
// time-domain FIR and the frequency-domain FIRFFT in mismatched block
// sizes and requires matching output, exercising the history carry.
func TestFIRFFTMatchesFIRStreaming(t *testing.T) {
	taps, err := DesignLowpass(0.23, 63, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	fir := NewFIR(taps)
	ff := NewFIRFFTTaps(taps)
	w := NewWorkspace()
	rng := rand.New(rand.NewSource(5))
	stream := randComplex(rng, 3000)
	var got, want []complex128
	for _, blk := range []int{1, 7, 64, 500, 1000, 1428} {
		if blk > len(stream) {
			blk = len(stream)
		}
		x := stream[:blk]
		stream = stream[blk:]
		want = append(want, fir.Process(x)...)
		got = append(got, append([]complex128(nil), ff.ProcessWS(w, x)...)...)
		w.Reset()
	}
	if len(got) != len(want) {
		t.Fatalf("length mismatch %d vs %d", len(got), len(want))
	}
	for i := range want {
		if d := cmplx.Abs(got[i] - want[i]); d > 1e-10 {
			t.Fatalf("sample %d: fft-path %v, direct %v (diff %g)", i, got[i], want[i], d)
		}
	}
}

// TestFIRProcessWSBitIdentical: the linearized block path must reproduce
// the per-sample ring path bit for bit, including streaming state across
// odd block boundaries.
func TestFIRProcessWSBitIdentical(t *testing.T) {
	taps, err := DesignLowpass(0.3, 31, Hann)
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewFIR(taps), NewFIR(taps)
	w := NewWorkspace()
	rng := rand.New(rand.NewSource(9))
	for _, blk := range []int{13, 1, 40, 31, 7, 200} {
		x := randComplex(rng, blk)
		want := a.Process(x)
		got := b.ProcessWS(w, x)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("block %d sample %d: ProcessWS %v != Process %v", blk, i, got[i], want[i])
			}
		}
		w.Reset()
	}
}

// TestXCorrWSMatchesXCorr pins both XCorrWS paths (direct for sparse/
// short, FFT for long dense) against the reference XCorr.
func TestXCorrWSMatchesXCorr(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	w := NewWorkspace()
	cases := []struct{ lx, ly int }{
		{8, 3}, {100, 13}, {1000, 52}, {4096, 512}, {2500, 49}, {5000, 2000},
	}
	for _, c := range cases {
		x := randComplex(rng, c.lx)
		y := randComplex(rng, c.ly)
		// Sparsify some references to exercise the zero-skip path.
		if c.ly >= 49 {
			for i := range y {
				if i%4 != 0 {
					y[i] = 0
				}
			}
		}
		want := XCorr(x, y)
		got := XCorrWS(w, x, y)
		if len(got) != len(want) {
			t.Fatalf("xcorr %dx%d: %d lags want %d", c.lx, c.ly, len(got), len(want))
		}
		scale := MaxAbs(want) + 1
		for i := range want {
			if d := cmplx.Abs(got[i] - want[i]); d > 1e-9*scale {
				t.Fatalf("xcorr %dx%d lag %d: got %v want %v", c.lx, c.ly, i, got[i], want[i])
			}
		}
		w.Reset()
	}
}

// TestXCorrRealWSMatchesReference pins the real-input correlation (both
// paths) against a direct float loop.
func TestXCorrRealWSMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	w := NewWorkspace()
	for _, c := range []struct{ lx, ly int }{{20, 5}, {300, 49}, {2500, 49}, {6000, 2048}} {
		x := make([]float64, c.lx)
		y := make([]float64, c.ly)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		if c.ly >= 2048 {
			// force the FFT path by keeping the reference dense & long
		}
		lags := c.lx - c.ly + 1
		want := make([]float64, lags)
		for k := 0; k < lags; k++ {
			var acc float64
			for n := 0; n < c.ly; n++ {
				acc += x[k+n] * y[n]
			}
			want[k] = acc
		}
		got := XCorrRealWS(w, x, y)
		scale := 0.0
		for _, v := range want {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		for i := range want {
			if d := math.Abs(got[i] - want[i]); d > 1e-9*(scale+1) {
				t.Fatalf("real xcorr %dx%d lag %d: got %g want %g", c.lx, c.ly, i, got[i], want[i])
			}
		}
		w.Reset()
	}
}

// TestConvXCorrZeroAlloc: the frequency-domain paths stay allocation-free
// on a warm workspace.
func TestConvXCorrZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	w := NewWorkspace()
	x := randComplex(rng, 4096)
	h := randComplex(rng, 129)
	xr := make([]float64, 4096)
	yr := make([]float64, 2048)
	for i := range xr {
		xr[i] = rng.NormFloat64()
	}
	for i := range yr {
		yr[i] = rng.NormFloat64()
	}
	taps, _ := DesignLowpass(0.25, 63, Hamming)
	fir := NewFIR(taps)
	ff := NewFIRFFTTaps(taps)

	warm := func() {
		ConvOSWS(w, x, h)
		XCorrWS(w, x, h)
		XCorrRealWS(w, xr, yr)
		fir.ProcessWS(w, x)
		ff.ProcessWS(w, x)
		w.Reset()
	}
	warm()
	warm()
	if n := testing.AllocsPerRun(50, warm); n != 0 {
		t.Fatalf("frequency-domain paths allocate %v/op on warm workspace, want 0", n)
	}
}
