package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// naiveDFT is the O(n²) reference transform.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var acc complex128
		for t := 0; t < n; t++ {
			acc += x[t] * cmplx.Rect(1, sign*2*math.Pi*float64(k)*float64(t)/float64(n))
		}
		if inverse {
			acc /= complex(float64(n), 0)
		}
		out[k] = acc
	}
	return out
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxAbsDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// TestPow2PlanMatchesReferences pins the radix-4 plan against both the
// radix-2 kernel and the naive DFT across power-of-two lengths covering
// even and odd log2(n), forward and inverse.
func TestPow2PlanMatchesReferences(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048} {
		x := randComplex(rng, n)
		want := naiveDFT(x, false)

		r2 := append([]complex128(nil), x...)
		radix2(r2, false)
		if d := maxAbsDiff(r2, want); d > 1e-8*float64(n) {
			t.Fatalf("radix2 n=%d: max diff %g vs naive DFT", n, d)
		}

		p := newPow2Plan(n)
		r4 := append([]complex128(nil), x...)
		p.forward(r4)
		if d := maxAbsDiff(r4, want); d > 1e-8*float64(n) {
			t.Fatalf("radix4 n=%d: max diff %g vs naive DFT", n, d)
		}
		if d := maxAbsDiff(r4, r2); d > 1e-8*float64(n) {
			t.Fatalf("radix4 n=%d: max diff %g vs radix2", n, d)
		}

		// Inverse round-trips through the conjugation identity.
		p.inverse(r4)
		if d := maxAbsDiff(r4, x); d > 1e-9*float64(n) {
			t.Fatalf("radix4 n=%d: inverse round-trip diff %g", n, d)
		}
	}
}

// TestForwardDIFScramble: forwardDIF must produce the same spectrum as
// forward, scrambled by the plan's decimation permutation, and
// butterfliesDIT must consume exactly that order (the convolution
// round-trip identity).
func TestForwardDIFScramble(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, n := range []int{4, 8, 16, 32, 64, 512, 1024} {
		p := newPow2Plan(n)
		x := randComplex(rng, n)
		nat := append([]complex128(nil), x...)
		p.forward(nat)
		scr := append([]complex128(nil), x...)
		p.forwardDIF(scr)
		for i, j := range p.perm {
			if d := cmplx.Abs(scr[i] - nat[j]); d > 1e-8*float64(n) {
				t.Fatalf("n=%d: forwardDIF[%d] = %v, want forward[%d] = %v", n, i, scr[i], j, nat[j])
			}
		}
		// Inverse round trip without any permutation pass.
		for i := range scr {
			scr[i] = complex(real(scr[i]), -imag(scr[i]))
		}
		p.butterfliesDIT(scr)
		inv := 1 / float64(n)
		for i := range scr {
			scr[i] = complex(real(scr[i])*inv, -imag(scr[i])*inv)
		}
		if d := maxAbsDiff(scr, x); d > 1e-9*float64(n) {
			t.Fatalf("n=%d: DIF→DIT round trip diff %g", n, d)
		}
	}
}

// TestWorkspaceFFTAllLengths pins Workspace.FFTInPlace (radix-4 for
// large powers of two, radix-2 below the plan threshold, Bluestein
// elsewhere) against the naive DFT across pow2, odd, and prime lengths.
func TestWorkspaceFFTAllLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w := NewWorkspace()
	for _, n := range []int{1, 2, 3, 5, 7, 8, 13, 16, 27, 31, 64, 97, 100, 128, 1000, 1024} {
		x := randComplex(rng, n)
		want := naiveDFT(x, false)
		got := append([]complex128(nil), x...)
		w.FFTInPlace(got)
		if d := maxAbsDiff(got, want); d > 1e-7*float64(n) {
			t.Fatalf("ws fft n=%d: max diff %g vs naive DFT", n, d)
		}
		w.IFFTInPlace(got)
		if d := maxAbsDiff(got, x); d > 1e-8*float64(n) {
			t.Fatalf("ws fft n=%d: round-trip diff %g", n, d)
		}
		w.Reset()
	}
}

// TestRFFTMatchesComplexFFT: RFFTWS on a real signal must agree with the
// full complex FFT bin-for-bin on the non-redundant half, and IRFFTWS
// must invert it.
func TestRFFTMatchesComplexFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	w := NewWorkspace()
	for _, n := range []int{2, 4, 6, 8, 10, 32, 64, 100, 256, 1000, 1024, 4096} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		cx := make([]complex128, n)
		for i := range cx {
			cx[i] = complex(x[i], 0)
		}
		want := FFT(cx)

		half := RFFTWS(w, x)
		if len(half) != n/2+1 {
			t.Fatalf("rfft n=%d: got %d bins, want %d", n, len(half), n/2+1)
		}
		for k := 0; k <= n/2; k++ {
			if d := cmplx.Abs(half[k] - want[k]); d > 1e-8*float64(n) {
				t.Fatalf("rfft n=%d bin %d: got %v want %v (diff %g)", n, k, half[k], want[k], d)
			}
		}

		back := IRFFTWS(w, half, n)
		for i := range x {
			if d := math.Abs(back[i] - x[i]); d > 1e-9*float64(n) {
				t.Fatalf("irfft n=%d sample %d: got %g want %g", n, i, back[i], x[i])
			}
		}
		w.Reset()
	}
}

// TestWorkspaceFFTZeroAlloc: once plans exist, the workspace transforms
// (complex and real) run without allocating.
func TestWorkspaceFFTZeroAlloc(t *testing.T) {
	w := NewWorkspace()
	x := randComplex(rand.New(rand.NewSource(1)), 1024)
	r := make([]float64, 4096)
	for i := range r {
		r[i] = math.Sin(float64(i) / 7)
	}
	// Warm the plan caches.
	w.FFTInPlace(x)
	w.IFFTInPlace(x)
	RFFTWS(w, r)
	w.Reset()

	if n := testing.AllocsPerRun(100, func() {
		w.FFTInPlace(x)
		w.IFFTInPlace(x)
	}); n != 0 {
		t.Fatalf("workspace complex FFT pair allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		spec := RFFTWS(w, r)
		IRFFTWS(w, spec, len(r))
		w.Reset()
	}); n != 0 {
		t.Fatalf("workspace RFFT round trip allocates %v/op, want 0", n)
	}
}
