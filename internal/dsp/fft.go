// Package dsp implements the complex-baseband signal processing the
// simulator is built on: FFT/IFFT, window functions, FIR filter design and
// filtering, pulse shaping, correlation, resampling, spectrum estimation
// and related vector operations. Everything is written from scratch on the
// standard library — there is no external numeric dependency.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPowerOfTwo returns the smallest power of two ≥ n (and ≥ 1).
func NextPowerOfTwo(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// FFT returns the discrete Fourier transform of x. For power-of-two
// lengths it runs the iterative radix-2 Cooley–Tukey algorithm; any other
// length is handled by Bluestein's chirp-z transform. The input is not
// modified.
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, false)
	return out
}

// IFFT returns the inverse DFT of x, normalized by 1/N so that
// IFFT(FFT(x)) == x. The input is not modified.
func IFFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, true)
	return out
}

// FFTInPlace computes the DFT of x in place. len(x) must be a power of
// two; it panics otherwise (use FFT for arbitrary lengths).
func FFTInPlace(x []complex128) {
	if !IsPowerOfTwo(len(x)) {
		panic(fmt.Sprintf("dsp: FFTInPlace requires power-of-two length, got %d", len(x)))
	}
	radix2(x, false)
}

// IFFTInPlace computes the normalized inverse DFT of x in place. len(x)
// must be a power of two.
func IFFTInPlace(x []complex128) {
	if !IsPowerOfTwo(len(x)) {
		panic(fmt.Sprintf("dsp: IFFTInPlace requires power-of-two length, got %d", len(x)))
	}
	radix2(x, true)
}

func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if IsPowerOfTwo(n) {
		radix2(x, inverse)
		return
	}
	bluestein(x, inverse)
}

// radix2 is an iterative in-place decimation-in-time FFT.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := 2 * math.Pi / float64(size) * sign
		wStep := cmplx.Rect(1, step)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// bluestein computes an arbitrary-length DFT as a convolution, using
// power-of-two FFTs internally. This is the allocating compatibility
// path: it builds a throwaway plan per call. Workspace FFTs cache the
// plan per (length, direction) instead — same arithmetic, zero
// steady-state allocations, and one radix-2 pass fewer (the kernel FFT
// is precomputed).
func bluestein(x []complex128, inverse bool) {
	newFFTPlan(len(x), inverse).transform(x, inverse)
}

// FFTShift rotates a spectrum so the zero-frequency bin sits in the
// middle, matching the conventional plotting order. Returns a new slice.
func FFTShift(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	half := (n + 1) / 2
	copy(out, x[half:])
	copy(out[n-half:], x[:half])
	return out
}

// FFTShiftFloats is FFTShift for real-valued per-bin data (e.g. a
// periodogram's power bins), rotating zero frequency to the middle.
// Returns a new slice.
func FFTShiftFloats(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	half := (n + 1) / 2
	copy(out, x[half:])
	copy(out[n-half:], x[:half])
	return out
}

// FFTShiftFloatsInto is FFTShiftFloats writing into dst (len(dst) must
// be ≥ len(x), dst must not alias x) and returning dst[:len(x)] — the
// allocation-free form for callers with a reusable buffer.
func FFTShiftFloatsInto(dst, x []float64) []float64 {
	n := len(x)
	dst = dst[:n]
	half := (n + 1) / 2
	copy(dst, x[half:])
	copy(dst[n-half:], x[:half])
	return dst
}

// FFTFreqs returns the frequency in Hz of each FFT bin for an N-point
// transform at the given sample rate, in natural (unshifted) bin order.
func FFTFreqs(n int, sampleRate float64) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		k := i
		if k >= (n+1)/2 {
			k -= n
		}
		out[i] = float64(k) * sampleRate / float64(n)
	}
	return out
}
