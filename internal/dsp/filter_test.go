package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestWindowsEndpoints(t *testing.T) {
	n := 33
	for _, w := range []Window{Hann, Blackman} {
		win := MakeWindow(w, n)
		if math.Abs(win[0]) > 1e-12 || math.Abs(win[n-1]) > 1e-12 {
			t.Errorf("%v window should reach ~0 at the ends: %g %g", w, win[0], win[n-1])
		}
	}
	// All windows peak at (or near) 1 in the middle and are symmetric.
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman, Kaiser} {
		win := MakeWindow(w, n)
		if math.Abs(win[n/2]-1) > 0.01 {
			t.Errorf("%v window center %g, want ≈1", w, win[n/2])
		}
		for i := 0; i < n/2; i++ {
			if math.Abs(win[i]-win[n-1-i]) > 1e-12 {
				t.Errorf("%v window asymmetric at %d", w, i)
			}
		}
	}
}

func TestWindowSinglePoint(t *testing.T) {
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman, Kaiser} {
		win := MakeWindow(w, 1)
		if len(win) != 1 || win[0] != 1 {
			t.Errorf("%v single-point window: %v", w, win)
		}
	}
}

func TestBesselI0(t *testing.T) {
	// Reference values: I0(0)=1, I0(1)=1.2660658..., I0(5)=27.239871...
	cases := map[float64]float64{0: 1, 1: 1.2660658777520084, 5: 27.239871823604442}
	for x, want := range cases {
		if got := besselI0(x); math.Abs(got-want) > 1e-9*want {
			t.Errorf("I0(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestLowpassDesign(t *testing.T) {
	taps, err := DesignLowpass(0.1, 101, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	// DC gain 1.
	if g := cmplx.Abs(FrequencyResponse(taps, 0)); math.Abs(g-1) > 1e-9 {
		t.Errorf("DC gain %g", g)
	}
	// Passband ~1, stopband strongly attenuated.
	if g := cmplx.Abs(FrequencyResponse(taps, 0.05)); math.Abs(g-1) > 0.05 {
		t.Errorf("passband gain %g", g)
	}
	if g := cmplx.Abs(FrequencyResponse(taps, 0.25)); g > 0.01 {
		t.Errorf("stopband gain %g", g)
	}
	// −6 dB point near the cutoff.
	if g := cmplx.Abs(FrequencyResponse(taps, 0.1)); math.Abs(g-0.5) > 0.05 {
		t.Errorf("cutoff gain %g, want ≈0.5", g)
	}
}

func TestLowpassErrors(t *testing.T) {
	if _, err := DesignLowpass(0, 11, Hamming); err == nil {
		t.Error("cutoff 0 should fail")
	}
	if _, err := DesignLowpass(0.6, 11, Hamming); err == nil {
		t.Error("cutoff above Nyquist should fail")
	}
	if _, err := DesignLowpass(0.1, 0, Hamming); err == nil {
		t.Error("0 taps should fail")
	}
}

func TestFIRStreamingMatchesBlock(t *testing.T) {
	taps, _ := DesignLowpass(0.2, 31, Hann)
	x := testSignal(200)
	f1 := NewFIR(taps)
	block := f1.Process(x)
	f2 := NewFIR(taps)
	stream := make([]complex128, 0, len(x))
	for _, chunk := range [][]complex128{x[:13], x[13:50], x[50:]} {
		stream = append(stream, f2.Process(chunk)...)
	}
	complexNear(t, stream, block, 1e-12, "streaming vs block filtering")
}

func TestFIRImpulseResponse(t *testing.T) {
	taps := []float64{0.5, 0.25, 0.125}
	f := NewFIR(taps)
	x := make([]complex128, 5)
	x[0] = 1
	y := f.Process(x)
	want := []complex128{0.5, 0.25, 0.125, 0, 0}
	complexNear(t, y, want, 1e-15, "impulse response")
}

func TestFIRReset(t *testing.T) {
	f := NewFIR([]float64{1, 1})
	f.ProcessSample(5)
	f.Reset()
	if y := f.ProcessSample(1); y != 1 {
		t.Errorf("after reset: %v", y)
	}
}

func TestFIREmptyTaps(t *testing.T) {
	f := NewFIR(nil)
	if y := f.ProcessSample(3 + 1i); y != 3+1i {
		t.Errorf("empty filter should pass through, got %v", y)
	}
}

func TestRaisedCosineNyquist(t *testing.T) {
	// Raised cosine must be 1 at t=0 and 0 at every other symbol instant.
	sps, span := 8, 6
	h, err := RaisedCosine(0.35, sps, span)
	if err != nil {
		t.Fatal(err)
	}
	mid := (len(h) - 1) / 2
	if math.Abs(h[mid]-1) > 1e-12 {
		t.Errorf("center %g", h[mid])
	}
	for k := 1; k <= span/2; k++ {
		if v := math.Abs(h[mid+k*sps]); v > 1e-9 {
			t.Errorf("ISI at symbol %+d: %g", k, v)
		}
		if v := math.Abs(h[mid-k*sps]); v > 1e-9 {
			t.Errorf("ISI at symbol %+d: %g", -k, v)
		}
	}
}

func TestRaisedCosineBetaEdges(t *testing.T) {
	for _, beta := range []float64{0, 0.5, 1} {
		if _, err := RaisedCosine(beta, 4, 4); err != nil {
			t.Errorf("beta %g: %v", beta, err)
		}
	}
	if _, err := RaisedCosine(1.5, 4, 4); err == nil {
		t.Error("beta > 1 should fail")
	}
	if _, err := RaisedCosine(0.3, 0, 4); err == nil {
		t.Error("sps 0 should fail")
	}
}

func TestRRCPairIsNyquist(t *testing.T) {
	// RRC convolved with itself is (approximately) a raised cosine: zero
	// ISI at symbol instants.
	sps, span := 8, 10
	h, err := RootRaisedCosine(0.35, sps, span)
	if err != nil {
		t.Fatal(err)
	}
	hc := make([]complex128, len(h))
	for i, v := range h {
		hc[i] = complex(v, 0)
	}
	rc := Conv(hc, hc)
	mid := (len(rc) - 1) / 2
	peak := cmplx.Abs(rc[mid])
	for k := 1; k <= 3; k++ {
		if v := cmplx.Abs(rc[mid+k*sps]) / peak; v > 2e-3 {
			t.Errorf("RRC pair ISI at symbol %d: %g", k, v)
		}
	}
	// Unit energy.
	var e float64
	for _, v := range h {
		e += v * v
	}
	if math.Abs(e-1) > 1e-12 {
		t.Errorf("RRC energy %g", e)
	}
}

func TestShapeSymbolsCenters(t *testing.T) {
	// After group-delay compensation, sample k·sps must equal symbol k for
	// a Nyquist pulse.
	sps := 4
	h, _ := RaisedCosine(0.25, sps, 8)
	syms := []complex128{1, 0, 1, 1, 0, 1, 0, 0, 1, 1}
	x := ShapeSymbols(syms, h, sps)
	if len(x) != len(syms)*sps {
		t.Fatalf("length %d, want %d", len(x), len(syms)*sps)
	}
	for k, s := range syms {
		if cmplx.Abs(x[k*sps]-s) > 1e-6 {
			t.Errorf("symbol %d center: got %v, want %v", k, x[k*sps], s)
		}
	}
}

func TestRectPulse(t *testing.T) {
	p := RectPulse(5)
	if len(p) != 5 {
		t.Fatal("length")
	}
	for _, v := range p {
		if v != 1 {
			t.Fatal("rect pulse not flat")
		}
	}
}

func TestUpsampleImpulses(t *testing.T) {
	u := UpsampleImpulses([]complex128{1, 2}, 3)
	want := []complex128{1, 0, 0, 2, 0, 0}
	complexNear(t, u, want, 0, "upsample")
}

func TestDecimateInterpolate(t *testing.T) {
	x := testSignal(64)
	d, err := Decimate(x, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 16 || d[0] != x[1] || d[1] != x[5] {
		t.Errorf("decimate wrong: %v", d[:2])
	}
	if _, err := Decimate(x, 0, 0); err == nil {
		t.Error("factor 0 should fail")
	}
	if _, err := Decimate(x, 4, 4); err == nil {
		t.Error("offset == factor should fail")
	}
}

func TestInterpolateRecoversBandlimited(t *testing.T) {
	// A slow tone survives interpolate→decimate.
	n := 128
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Rect(1, 2*math.Pi*0.02*float64(i))
	}
	up, err := Interpolate(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	down, err := Decimate(up, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the middle (away from filter edge effects).
	for i := 20; i < 80 && i < len(down); i++ {
		if cmplx.Abs(down[i]-x[i]) > 0.02 {
			t.Fatalf("interpolation error at %d: %v vs %v", i, down[i], x[i])
		}
	}
}

func TestDecimateFilteredLength(t *testing.T) {
	x := testSignal(256)
	y, err := DecimateFiltered(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) == 0 || len(y) > 64 {
		t.Errorf("decimated length %d", len(y))
	}
	same, err := DecimateFiltered(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	complexNear(t, same, x, 0, "factor-1 decimation")
}

func TestGoertzelMatchesFFT(t *testing.T) {
	x := testSignal(128)
	X := FFT(x)
	for _, k := range []int{0, 1, 5, 63, 127} {
		g := Goertzel(x, float64(k)/128)
		if cmplx.Abs(g-X[k]) > 1e-7 {
			t.Errorf("Goertzel bin %d: %v vs FFT %v", k, g, X[k])
		}
	}
}

func TestPeriodogramTonePower(t *testing.T) {
	// A unit-amplitude tone has total power 1; the periodogram integrates
	// to (approximately) the signal power.
	n := 256
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Rect(1, 2*math.Pi*10*float64(i)/float64(n))
	}
	p := Periodogram(x, Rectangular)
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("periodogram total power %g, want 1", sum)
	}
	// Peak bin at 10.
	best, bestV := 0, 0.0
	for i, v := range p {
		if v > bestV {
			best, bestV = i, v
		}
	}
	if best != 10 {
		t.Errorf("peak bin %d, want 10", best)
	}
}

func TestWelch(t *testing.T) {
	x := testSignal(1024)
	p, err := Welch(x, 128, Hann)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 128 {
		t.Fatalf("Welch length %d", len(p))
	}
	if _, err := Welch(x[:10], 128, Hann); err == nil {
		t.Error("short signal should fail")
	}
	if _, err := Welch(x, 0, Hann); err == nil {
		t.Error("zero segment should fail")
	}
}

func TestAGCReachesTarget(t *testing.T) {
	a := &AGC{Target: 1, Alpha: 1}
	x := Scale(testSignal(512), 7)
	y := a.Process(x)
	if p := Power(y); math.Abs(p-1) > 0.01 {
		t.Errorf("AGC output power %g", p)
	}
	a.Reset()
	z := make([]complex128, 16) // all zero: must not divide by zero
	a.Process(z)
	if z[0] != 0 {
		t.Error("AGC on zero signal changed it")
	}
}

func TestWindowNames(t *testing.T) {
	names := map[Window]string{Rectangular: "rectangular", Hann: "hann", Hamming: "hamming", Blackman: "blackman", Kaiser: "kaiser", Window(99): "unknown"}
	for w, want := range names {
		if got := w.String(); got != want {
			t.Errorf("window name %d: %q", w, got)
		}
	}
}

func TestKaiserBetaZeroIsRect(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := 2 + int(nRaw)%30
		w := KaiserWindow(n, 0)
		for _, v := range w {
			if math.Abs(v-1) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFIRTapsReturnsCopy(t *testing.T) {
	taps, err := DesignLowpass(0.25, 7, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFIR(taps)
	got := f.Taps()
	if len(got) != len(taps) {
		t.Fatalf("len %d, want %d", len(got), len(taps))
	}
	got[0] = 1e9 // mutating the copy must not corrupt the filter
	again := f.Taps()
	if again[0] == 1e9 {
		t.Fatal("Taps returned interior state, not a copy")
	}
	for i := range again {
		if again[i] != taps[i] {
			t.Fatalf("tap %d = %g, want %g", i, again[i], taps[i])
		}
	}
}

func TestAGCDefaultsAndEdges(t *testing.T) {
	// Zero Target/Alpha take the documented defaults; an all-zero block
	// passes through untouched (no division by zero).
	var a AGC
	zero := make([]complex128, 8)
	if got := a.Process(zero); &got[0] != &zero[0] {
		t.Fatal("zero-power block must return the input slice")
	}
	x := []complex128{2, 2, 2, 2}
	y := a.Process(x)
	if p := Power(y); math.Abs(p-1) > 1e-9 {
		t.Fatalf("default target power: %g, want 1", p)
	}
	// Successive blocks converge via the smoothed estimate branch.
	for i := 0; i < 4; i++ {
		x2 := []complex128{3, 3, 3, 3}
		a.Process(x2)
	}
	a.Reset()
	if a.est != 0 {
		t.Fatal("Reset did not clear the estimate")
	}
}
