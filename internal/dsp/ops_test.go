package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestEnergyPower(t *testing.T) {
	x := []complex128{3 + 4i, 0, 1}
	if e := Energy(x); e != 26 {
		t.Errorf("energy %g", e)
	}
	if p := Power(x); math.Abs(p-26.0/3) > 1e-12 {
		t.Errorf("power %g", p)
	}
	if Power(nil) != 0 {
		t.Error("empty power should be 0")
	}
}

func TestScaleAndNormalize(t *testing.T) {
	x := []complex128{1, 2i, -3}
	Scale(x, 2)
	if x[2] != -6 {
		t.Errorf("scale: %v", x)
	}
	Normalize(x)
	if p := Power(x); math.Abs(p-1) > 1e-12 {
		t.Errorf("normalized power %g", p)
	}
	z := []complex128{0, 0}
	Normalize(z) // must not NaN
	if z[0] != 0 {
		t.Error("normalizing zero signal changed it")
	}
}

func TestMixShiftsFrequency(t *testing.T) {
	// Mixing a DC signal by f places a tone at f.
	n := 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = 1
	}
	Mix(x, 5.0/float64(n), 0)
	X := FFT(x)
	if cmplx.Abs(X[5]) < float64(n)-1e-6 {
		t.Errorf("tone not at bin 5: |X[5]|=%v", cmplx.Abs(X[5]))
	}
}

func TestDelay(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	y := Delay(x, 2)
	want := []complex128{0, 0, 1, 2}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("delay: %v", y)
		}
	}
	if z := Delay(x, 10); z[3] != 0 {
		t.Error("over-delay should zero everything")
	}
}

func TestConvMatchesDirect(t *testing.T) {
	// FFT path (long kernel) must agree with the direct path.
	x := testSignal(300)
	h := testSignal(100)
	got := Conv(x, h)
	// Direct reference.
	want := make([]complex128, len(x)+len(h)-1)
	for i, xv := range x {
		for j, hv := range h {
			want[i+j] += xv * hv
		}
	}
	complexNear(t, got, want, 1e-7, "conv FFT vs direct")
}

func TestConvIdentity(t *testing.T) {
	x := testSignal(20)
	got := Conv(x, []complex128{1})
	complexNear(t, got, x, 1e-12, "conv with delta")
}

func TestConvCommutative(t *testing.T) {
	f := func(seedA, seedB uint8) bool {
		a := testSignal(3 + int(seedA)%20)
		b := testSignal(3 + int(seedB)%20)
		ab := Conv(a, b)
		ba := Conv(b, a)
		for i := range ab {
			if cmplx.Abs(ab[i]-ba[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXCorrFindsDelay(t *testing.T) {
	ref := testSignal(32)
	x := make([]complex128, 100)
	copy(x[17:], ref)
	r := XCorr(x, ref)
	if peak := PeakIndex(r); peak != 17 {
		t.Errorf("correlation peak at %d, want 17", peak)
	}
}

func TestXCorrZeroLagIsEnergy(t *testing.T) {
	x := testSignal(40)
	r := XCorr(x, x)
	if math.Abs(real(r[0])-Energy(x)) > 1e-9 || math.Abs(imag(r[0])) > 1e-9 {
		t.Errorf("zero-lag autocorrelation %v, want energy %g", r[0], Energy(x))
	}
}

func TestPeakIndexEmpty(t *testing.T) {
	if PeakIndex(nil) != -1 {
		t.Error("empty peak index should be -1")
	}
}

func TestMovingAverage(t *testing.T) {
	x := []complex128{2, 4, 6, 8}
	y := MovingAverage(x, 2)
	want := []complex128{2, 3, 5, 7}
	complexNear(t, y, want, 1e-12, "moving average")
	// Window 1 is identity.
	complexNear(t, MovingAverage(x, 1), x, 0, "window-1 moving average")
}

func TestMovingAverageConstantSignal(t *testing.T) {
	f := func(w uint8) bool {
		win := 1 + int(w)%16
		x := make([]complex128, 40)
		for i := range x {
			x[i] = 5 - 2i
		}
		y := MovingAverage(x, win)
		for _, v := range y {
			if cmplx.Abs(v-(5-2i)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddAndMagnitudes(t *testing.T) {
	x := []complex128{1, 2}
	Add(x, []complex128{10, 20, 30})
	if x[0] != 11 || x[1] != 22 {
		t.Errorf("add: %v", x)
	}
	m := Magnitudes([]complex128{3 + 4i, -1})
	if m[0] != 5 || m[1] != 1 {
		t.Errorf("magnitudes: %v", m)
	}
}

func TestMaxAbs(t *testing.T) {
	if MaxAbs([]complex128{1, -3i, 2 + 2i}) != 3 {
		t.Error("MaxAbs wrong")
	}
	if MaxAbs(nil) != 0 {
		t.Error("MaxAbs(nil) should be 0")
	}
}

func TestScaleCComplexGain(t *testing.T) {
	x := []complex128{1, 2i, -3}
	got := ScaleC(x, 2i)
	want := []complex128{2i, -4, -6i}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("slot %d: %v, want %v", i, got[i], want[i])
		}
	}
	if &got[0] != &x[0] {
		t.Fatal("ScaleC must scale in place")
	}
}

func TestDelayEdgeCases(t *testing.T) {
	x := []complex128{1, 2, 3}
	// Negative delays clamp to zero (a pure copy).
	if got := Delay(x, -2); got[0] != 1 || got[2] != 3 {
		t.Fatalf("negative delay: %v", got)
	}
	// A delay past the end yields all zeros of the same length.
	got := Delay(x, 5)
	if len(got) != 3 || got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("over-length delay: %v", got)
	}
}
