package dsp

import (
	"fmt"
	"math"
)

// Biquad is a second-order IIR section in direct form II transposed,
// operating on complex samples with real coefficients. Transfer function
//
//	H(z) = (b0 + b1·z⁻¹ + b2·z⁻²) / (1 + a1·z⁻¹ + a2·z⁻²).
type Biquad struct {
	B0, B1, B2 float64
	A1, A2     float64

	z1, z2 complex128
}

// ProcessSample pushes one sample through the section.
func (q *Biquad) ProcessSample(x complex128) complex128 {
	y := complex(q.B0, 0)*x + q.z1
	q.z1 = complex(q.B1, 0)*x - complex(q.A1, 0)*y + q.z2
	q.z2 = complex(q.B2, 0)*x - complex(q.A2, 0)*y
	return y
}

// Process filters a block in place and returns it.
func (q *Biquad) Process(x []complex128) []complex128 {
	for i, v := range x {
		x[i] = q.ProcessSample(v)
	}
	return x
}

// Reset clears the section's state.
func (q *Biquad) Reset() { q.z1, q.z2 = 0, 0 }

// Response evaluates the section's frequency response at normalized
// frequency f (cycles/sample).
func (q *Biquad) Response(f float64) complex128 {
	w := 2 * math.Pi * f
	z1 := complex(math.Cos(-w), math.Sin(-w))
	z2 := z1 * z1
	num := complex(q.B0, 0) + complex(q.B1, 0)*z1 + complex(q.B2, 0)*z2
	den := complex(1, 0) + complex(q.A1, 0)*z1 + complex(q.A2, 0)*z2
	return num / den
}

// NewLowpassBiquad designs a Butterworth-style lowpass biquad with −3 dB
// cutoff at normalized frequency fc (0 < fc < 0.5), RBJ cookbook form
// with Q = 1/√2.
func NewLowpassBiquad(fc float64) (*Biquad, error) {
	if fc <= 0 || fc >= 0.5 {
		return nil, fmt.Errorf("dsp: biquad cutoff %v out of (0, 0.5)", fc)
	}
	w0 := 2 * math.Pi * fc
	alpha := math.Sin(w0) / math.Sqrt2
	cw := math.Cos(w0)
	a0 := 1 + alpha
	return &Biquad{
		B0: (1 - cw) / 2 / a0,
		B1: (1 - cw) / a0,
		B2: (1 - cw) / 2 / a0,
		A1: -2 * cw / a0,
		A2: (1 - alpha) / a0,
	}, nil
}

// NewHighpassBiquad designs the complementary highpass section.
func NewHighpassBiquad(fc float64) (*Biquad, error) {
	if fc <= 0 || fc >= 0.5 {
		return nil, fmt.Errorf("dsp: biquad cutoff %v out of (0, 0.5)", fc)
	}
	w0 := 2 * math.Pi * fc
	alpha := math.Sin(w0) / math.Sqrt2
	cw := math.Cos(w0)
	a0 := 1 + alpha
	return &Biquad{
		B0: (1 + cw) / 2 / a0,
		B1: -(1 + cw) / a0,
		B2: (1 + cw) / 2 / a0,
		A1: -2 * cw / a0,
		A2: (1 - alpha) / a0,
	}, nil
}

// DCBlocker is the classic one-pole DC-notch y[n] = x[n] − x[n−1] +
// r·y[n−1], used by backscatter readers to strip the static TX-leakage
// term. r close to 1 gives a narrow notch (long settling); 0.995 settles
// in a few hundred samples.
type DCBlocker struct {
	// R is the pole radius in (0, 1); 0 selects the 0.995 default.
	R float64

	xPrev, yPrev complex128
}

// ProcessSample pushes one sample through the notch.
func (d *DCBlocker) ProcessSample(x complex128) complex128 {
	r := d.R
	if r == 0 {
		r = 0.995
	}
	y := x - d.xPrev + complex(r, 0)*d.yPrev
	d.xPrev = x
	d.yPrev = y
	return y
}

// Process filters a block in place and returns it.
func (d *DCBlocker) Process(x []complex128) []complex128 {
	for i, v := range x {
		x[i] = d.ProcessSample(v)
	}
	return x
}

// Reset clears the notch's state.
func (d *DCBlocker) Reset() { d.xPrev, d.yPrev = 0, 0 }
