package dsp

import (
	"math"
	"testing"
)

func floatNear(t *testing.T, got, want []float64, tol float64, msg string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", msg, len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("%s: index %d: got %v, want %v", msg, i, got[i], want[i])
		}
	}
}

// TestWorkspaceCheckoutZeroed pins the make-equivalence contract: a
// checked-out buffer is zeroed even when it recycles a dirtied buffer
// from a previous frame, so nil-workspace wrappers and workspace paths
// see identical initial contents.
func TestWorkspaceCheckoutZeroed(t *testing.T) {
	ws := NewWorkspace()
	c := ws.Complex(16)
	f := ws.Float(16)
	bs := ws.Bytes(16)
	for i := range c {
		c[i] = complex(1, 2)
		f[i] = 3
		bs[i] = 4
	}
	ws.Reset()
	for i, v := range ws.Complex(16) {
		if v != 0 {
			t.Fatalf("recycled complex[%d] = %v, want 0", i, v)
		}
	}
	for i, v := range ws.Float(16) {
		if v != 0 {
			t.Fatalf("recycled float[%d] = %v, want 0", i, v)
		}
	}
	for i, v := range ws.Bytes(16) {
		if v != 0 {
			t.Fatalf("recycled byte[%d] = %v, want 0", i, v)
		}
	}
}

// TestWorkspaceRecyclesBackingArrays verifies Reset actually recycles:
// the second frame's checkout reuses the first frame's backing array.
func TestWorkspaceRecyclesBackingArrays(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Complex(64)
	ws.Reset()
	b := ws.Complex(64)
	if &a[0] != &b[0] {
		t.Fatal("Reset did not recycle the backing array")
	}
}

// TestWorkspaceNilFallsBackToMake checks the nil-receiver compatibility
// path used by every allocating wrapper.
func TestWorkspaceNilFallsBackToMake(t *testing.T) {
	var ws *Workspace
	if got := ws.Complex(8); len(got) != 8 {
		t.Fatalf("nil Complex length %d", len(got))
	}
	if got := ws.Float(8); len(got) != 8 {
		t.Fatalf("nil Float length %d", len(got))
	}
	if got := ws.Bytes(8); len(got) != 8 {
		t.Fatalf("nil Bytes length %d", len(got))
	}
	ws.Reset() // must not panic
}

// TestWorkspaceFFTMatchesPackageFFT pins the workspace transform to the
// allocating package functions for power-of-two and Bluestein lengths,
// forward and inverse: the plan-based path performs the identical
// arithmetic, so the outputs must agree to rounding.
func TestWorkspaceFFTMatchesPackageFFT(t *testing.T) {
	ws := NewWorkspace()
	for _, n := range []int{4, 16, 64, 3, 5, 12, 100, 241} {
		x := testSignal(n)
		want := FFT(x)
		got := append([]complex128{}, x...)
		ws.FFTInPlace(got)
		complexNear(t, got, want, 1e-9, "forward")

		wantInv := IFFT(x)
		gotInv := append([]complex128{}, x...)
		ws.IFFTInPlace(gotInv)
		complexNear(t, gotInv, wantInv, 1e-9, "inverse")

		// Round trip through the cached plans recovers the input.
		rt := append([]complex128{}, x...)
		ws.FFTInPlace(rt)
		ws.IFFTInPlace(rt)
		complexNear(t, rt, x, 1e-9, "round trip")
	}
}

// TestPlanSurvivesReset: FFT plans are immutable length-keyed caches and
// must not be dropped by the frame Reset.
func TestPlanSurvivesReset(t *testing.T) {
	ws := NewWorkspace()
	x := testSignal(100)
	ws.FFTInPlace(append([]complex128{}, x...))
	p1 := ws.plan(100, false)
	ws.Reset()
	if p2 := ws.plan(100, false); p1 != p2 {
		t.Fatal("plan was rebuilt after Reset")
	}
}

// TestConvWSMatchesConv covers both ConvWS paths (direct for short
// inputs, FFT overlap for long) against the allocating wrapper.
func TestConvWSMatchesConv(t *testing.T) {
	ws := NewWorkspace()
	for _, sizes := range [][2]int{{8, 5}, {100, 65}, {130, 70}} {
		x := testSignal(sizes[0])
		h := testSignal(sizes[1])
		want := Conv(x, h)
		got := ConvWS(ws, x, h)
		complexNear(t, got, want, 1e-9, "conv")
		ws.Reset()
	}
}

// TestShapeSymbolsWSMatchesShapeSymbols: the workspaced pulse shaper must
// be sample-identical to the allocating one.
func TestShapeSymbolsWSMatchesShapeSymbols(t *testing.T) {
	ws := NewWorkspace()
	pulse, err := RaisedCosine(0.35, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	syms := testSignal(33)
	want := ShapeSymbols(syms, pulse, 4)
	got := ShapeSymbolsWS(ws, syms, pulse, 4)
	complexNear(t, got, want, 0, "shape")
	// Second frame over recycled buffers must still match.
	ws.Reset()
	got2 := ShapeSymbolsWS(ws, syms, pulse, 4)
	complexNear(t, got2, want, 0, "shape after reset")
}

// TestPeriodogramWSMatchesPeriodogram covers power-of-two and Bluestein
// FFT lengths through the workspace spectral path.
func TestPeriodogramWSMatchesPeriodogram(t *testing.T) {
	ws := NewWorkspace()
	for _, n := range []int{64, 100} {
		x := testSignal(n)
		want := Periodogram(x, Hann)
		got := PeriodogramWS(ws, x, Hann)
		floatNear(t, got, want, 1e-12, "periodogram")
		ws.Reset()
	}
	if got := PeriodogramWS(ws, nil, Hann); got != nil {
		t.Fatal("empty input should yield nil")
	}
}

// TestMakeWindowIntoMatchesMakeWindow: the in-place window fill against
// the allocating form for every window type.
func TestMakeWindowIntoMatchesMakeWindow(t *testing.T) {
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman, Kaiser} {
		want := MakeWindow(w, 33)
		dst := make([]float64, 33)
		for i := range dst {
			dst[i] = math.NaN() // must be fully overwritten
		}
		got := MakeWindowInto(dst, w)
		floatNear(t, got, want, 0, w.String())
	}
}

// TestMovingAverageIntoMatchesMovingAverage pins the in-place moving
// average (which must not alias its input — it re-reads x[i−w]) to the
// allocating form.
func TestMovingAverageIntoMatchesMovingAverage(t *testing.T) {
	x := testSignal(50)
	for _, w := range []int{1, 4, 7} {
		want := MovingAverage(x, w)
		got := MovingAverageInto(make([]complex128, len(x)), x, w)
		complexNear(t, got, want, 0, "moving average")
	}
}

// TestMagnitudesIntoMatchesMagnitudes pins the in-place magnitude fill.
func TestMagnitudesIntoMatchesMagnitudes(t *testing.T) {
	x := testSignal(40)
	want := Magnitudes(x)
	got := MagnitudesInto(make([]float64, len(x)), x)
	floatNear(t, got, want, 0, "magnitudes")
}

// TestFIRProcessInPlaceMatchesProcess: filtering a block in place must
// produce the same samples as the allocating block filter.
func TestFIRProcessInPlaceMatchesProcess(t *testing.T) {
	taps, err := DesignLowpass(0.2, 31, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	x := testSignal(128)
	ref := NewFIR(taps)
	want := ref.Process(x)
	f := NewFIR(taps)
	got := f.ProcessInPlace(append([]complex128{}, x...))
	complexNear(t, got, want, 0, "fir in place")
}

// TestSteadyStateAllocs is the alloc-regression tripwire the issue asks
// for: once warmed, the workspace FFT paths (radix-2 and Bluestein), the
// in-place FIR, and the Into-style kernels must not allocate at all.
// A regression here fails plain `go test ./...` before the benchmark
// gate ever runs.
func TestSteadyStateAllocs(t *testing.T) {
	ws := NewWorkspace()
	pow2 := testSignal(1024)
	blue := testSignal(1000)
	// Warm the Bluestein plans (forward and inverse).
	ws.FFTInPlace(blue)
	ws.IFFTInPlace(blue)

	if n := testing.AllocsPerRun(10, func() {
		ws.FFTInPlace(pow2)
		ws.IFFTInPlace(pow2)
	}); n != 0 {
		t.Errorf("radix-2 workspace FFT: %v allocs/run, want 0", n)
	}
	if n := testing.AllocsPerRun(10, func() {
		ws.FFTInPlace(blue)
		ws.IFFTInPlace(blue)
	}); n != 0 {
		t.Errorf("warmed Bluestein workspace FFT: %v allocs/run, want 0", n)
	}

	taps, err := DesignLowpass(0.25, 63, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	fir := NewFIR(taps)
	block := testSignal(4096)
	if n := testing.AllocsPerRun(10, func() {
		fir.ProcessInPlace(block)
	}); n != 0 {
		t.Errorf("FIR.ProcessInPlace: %v allocs/run, want 0", n)
	}

	mags := make([]float64, 256)
	avg := make([]complex128, 256)
	src := testSignal(256)
	if n := testing.AllocsPerRun(10, func() {
		MagnitudesInto(mags, src)
		MovingAverageInto(avg, src, 8)
	}); n != 0 {
		t.Errorf("Into kernels: %v allocs/run, want 0", n)
	}

	// Steady-state frame loop: after the first frame sizes the pools,
	// checkout + Reset cycles are allocation-free.
	ws2 := NewWorkspace()
	frame := func() {
		_ = ws2.Complex(512)
		_ = ws2.Float(512)
		_ = ws2.Bytes(512)
		ws2.Reset()
	}
	frame()
	if n := testing.AllocsPerRun(10, frame); n != 0 {
		t.Errorf("workspace frame loop: %v allocs/run, want 0", n)
	}
}

// TestDecimateOffsets covers the resample entry points' argument
// validation and the offset semantics.
func TestDecimateOffsets(t *testing.T) {
	x := testSignal(10)
	if _, err := Decimate(x, 0, 0); err == nil {
		t.Fatal("factor 0 should fail")
	}
	if _, err := Decimate(x, 3, 3); err == nil {
		t.Fatal("offset ≥ factor should fail")
	}
	if _, err := Decimate(x, 3, -1); err == nil {
		t.Fatal("negative offset should fail")
	}
	got, err := Decimate(x, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{x[1], x[4], x[7]}
	complexNear(t, got, want, 0, "offset decimation")

	if _, err := DecimateFiltered(x, 0); err == nil {
		t.Fatal("filtered factor 0 should fail")
	}
	same, err := DecimateFiltered(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	complexNear(t, same, x, 0, "factor-1 decimation is a copy")
	if &same[0] == &x[0] {
		t.Fatal("factor-1 decimation must copy, not alias")
	}

	if _, err := Interpolate(x, 0); err == nil {
		t.Fatal("interpolate factor 0 should fail")
	}
	up, err := Interpolate(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	complexNear(t, up, x, 0, "factor-1 interpolation is a copy")
}

// TestRootRaisedCosineUnitEnergy: the RRC pulse is normalized so its
// matched-filter pair has unit gain at the symbol instant.
func TestRootRaisedCosineUnitEnergy(t *testing.T) {
	h, err := RootRaisedCosine(0.25, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	var e float64
	for _, v := range h {
		e += v * v
	}
	if math.Abs(e-1) > 1e-12 {
		t.Fatalf("RRC energy %v, want 1", e)
	}
	if _, err := RootRaisedCosine(1.5, 8, 6); err == nil {
		t.Fatal("beta out of range should fail")
	}
	if _, err := RootRaisedCosine(0.25, 0, 6); err == nil {
		t.Fatal("sps 0 should fail")
	}
}

// TestApplyWindowShorterPrefix: mismatched lengths use the common
// prefix and leave the tail untouched.
func TestApplyWindowShorterPrefix(t *testing.T) {
	x := []complex128{1, 1, 1, 1}
	w := []float64{0.5, 0.25}
	ApplyWindow(x, w)
	want := []complex128{0.5, 0.25, 1, 1}
	complexNear(t, x, want, 0, "prefix window")
}
