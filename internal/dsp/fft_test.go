package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// dftDirect is a reference O(N²) DFT for validating the FFT.
func dftDirect(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for t := 0; t < n; t++ {
			acc += x[t] * cmplx.Rect(1, -2*math.Pi*float64(k*t)/float64(n))
		}
		out[k] = acc
	}
	return out
}

func complexNear(t *testing.T, got, want []complex128, tol float64, msg string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", msg, len(got), len(want))
	}
	for i := range got {
		if cmplx.Abs(got[i]-want[i]) > tol {
			t.Fatalf("%s: index %d: got %v, want %v", msg, i, got[i], want[i])
		}
	}
}

func testSignal(n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Sin(0.37*float64(i))+0.2, math.Cos(1.1*float64(i)))
	}
	return x
}

func TestFFTMatchesDirectDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 3, 5, 7, 12, 100, 241} {
		x := testSignal(n)
		got := FFT(x)
		want := dftDirect(x)
		complexNear(t, got, want, 1e-8*float64(n), "FFT vs direct DFT")
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 8, 64, 256, 3, 30, 100} {
		x := testSignal(n)
		y := IFFT(FFT(x))
		complexNear(t, y, x, 1e-9*float64(n+1), "IFFT∘FFT")
	}
}

func TestFFTRoundTripProperty(t *testing.T) {
	f := func(seed uint16) bool {
		n := 1 + int(seed)%96
		x := make([]complex128, n)
		s := float64(seed)
		for i := range x {
			x[i] = complex(math.Sin(s+float64(i)*1.7), math.Cos(s*0.3+float64(i)))
		}
		y := IFFT(FFT(x))
		for i := range x {
			if cmplx.Abs(y[i]-x[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseval(t *testing.T) {
	// Σ|x|² = (1/N)·Σ|X|².
	for _, n := range []int{16, 64, 37} {
		x := testSignal(n)
		X := FFT(x)
		te := Energy(x)
		fe := Energy(X) / float64(n)
		if math.Abs(te-fe) > 1e-8*te {
			t.Errorf("Parseval violated for n=%d: %g vs %g", n, te, fe)
		}
	}
}

func TestFFTLinearity(t *testing.T) {
	n := 32
	x := testSignal(n)
	y := make([]complex128, n)
	for i := range y {
		y[i] = complex(float64(i)*0.01, -0.5)
	}
	sum := make([]complex128, n)
	for i := range sum {
		sum[i] = 2*x[i] + 3i*y[i]
	}
	lhs := FFT(sum)
	fx, fy := FFT(x), FFT(y)
	rhs := make([]complex128, n)
	for i := range rhs {
		rhs[i] = 2*fx[i] + 3i*fy[i]
	}
	complexNear(t, lhs, rhs, 1e-9, "FFT linearity")
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 16)
	x[0] = 1
	for i, v := range FFT(x) {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT bin %d = %v", i, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A complex exponential at bin 3 concentrates all energy in bin 3.
	n := 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Rect(1, 2*math.Pi*3*float64(i)/float64(n))
	}
	X := FFT(x)
	if cmplx.Abs(X[3]-complex(float64(n), 0)) > 1e-9 {
		t.Errorf("tone bin: %v", X[3])
	}
	for i, v := range X {
		if i != 3 && cmplx.Abs(v) > 1e-9 {
			t.Errorf("leakage at bin %d: %v", i, v)
		}
	}
}

func TestFFTShift(t *testing.T) {
	x := []complex128{0, 1, 2, 3}
	got := FFTShift(x)
	want := []complex128{2, 3, 0, 1}
	complexNear(t, got, want, 0, "FFTShift even")
	x = []complex128{0, 1, 2, 3, 4}
	got = FFTShift(x)
	want = []complex128{3, 4, 0, 1, 2}
	complexNear(t, got, want, 0, "FFTShift odd")
}

func TestFFTFreqs(t *testing.T) {
	fs := FFTFreqs(4, 1000)
	want := []float64{0, 250, -500, -250}
	for i := range fs {
		if fs[i] != want[i] {
			t.Errorf("freq bin %d = %g, want %g", i, fs[i], want[i])
		}
	}
}

func TestInPlacePanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FFTInPlace should panic on non-power-of-two length")
		}
	}()
	FFTInPlace(make([]complex128, 12))
}

func TestNextPowerOfTwo(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPowerOfTwo(in); got != want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", in, got, want)
		}
	}
}

// TestFFTInPlaceMatchesFFT: the exported in-place radix-2 entry points
// must agree with the copying FFT/IFFT and reject non-power-of-two
// lengths by panicking.
func TestFFTInPlaceMatchesFFT(t *testing.T) {
	src := rand.New(rand.NewSource(5))
	x := make([]complex128, 64)
	for i := range x {
		x[i] = complex(src.NormFloat64(), src.NormFloat64())
	}
	want := FFT(x)
	got := append([]complex128{}, x...)
	FFTInPlace(got)
	for i := range got {
		if cmplx.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("FFTInPlace bin %d: %v, want %v", i, got[i], want[i])
		}
	}
	IFFTInPlace(got)
	for i := range got {
		if cmplx.Abs(got[i]-x[i]) > 1e-9 {
			t.Fatalf("IFFTInPlace round trip sample %d: %v, want %v", i, got[i], x[i])
		}
	}
	for _, fn := range []func([]complex128){FFTInPlace, IFFTInPlace} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("in-place transform accepted a non-power-of-two length")
				}
			}()
			fn(make([]complex128, 12))
		}()
	}
}
