package dsp

import (
	"fmt"
	"math"
)

// FIR is a finite-impulse-response filter with real taps, applied to
// complex signals. It keeps per-instance state so it can be used for
// streaming.
type FIR struct {
	taps  []float64
	state []complex128 // delay line, most recent sample last
	pos   int
}

// NewFIR returns a streaming FIR filter with the given taps.
func NewFIR(taps []float64) *FIR {
	t := make([]float64, len(taps))
	copy(t, taps)
	return &FIR{taps: t, state: make([]complex128, len(taps))}
}

// Taps returns a copy of the filter taps.
func (f *FIR) Taps() []float64 {
	out := make([]float64, len(f.taps))
	copy(out, f.taps)
	return out
}

// TapsView returns the filter's taps without copying. The slice is
// read-only: mutating it corrupts the filter. Used by FIRFFT and the
// alloc-free block paths where the Taps copy would dominate the cost.
func (f *FIR) TapsView() []float64 { return f.taps }

// Reset clears the filter's delay line.
func (f *FIR) Reset() {
	for i := range f.state {
		f.state[i] = 0
	}
	f.pos = 0
}

// ProcessSample pushes one sample through the filter and returns one
// output sample.
func (f *FIR) ProcessSample(x complex128) complex128 {
	n := len(f.taps)
	if n == 0 {
		return x
	}
	f.state[f.pos] = x
	var acc complex128
	idx := f.pos
	for i := 0; i < n; i++ {
		acc += f.state[idx] * complex(f.taps[i], 0)
		idx--
		if idx < 0 {
			idx = n - 1
		}
	}
	f.pos++
	if f.pos == n {
		f.pos = 0
	}
	return acc
}

// Process filters a whole block, returning a new slice of equal length
// (streaming semantics: the filter's internal state carries across calls).
func (f *FIR) Process(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = f.ProcessSample(v)
	}
	return out
}

// ProcessInPlace filters a whole block in place and returns x (streaming
// semantics, like Process, without the output allocation). Safe because
// each output sample depends only on the delay line and the current
// input, which ProcessSample consumes before the slot is overwritten.
func (f *FIR) ProcessInPlace(x []complex128) []complex128 {
	for i, v := range x {
		x[i] = f.ProcessSample(v)
	}
	return x
}

// ProcessWS filters a whole block into a workspace buffer, bit-identical
// to Process (same per-sample summation order) but without the
// per-sample ring-buffer arithmetic or the output allocation: the delay
// line is linearized once, the block is filtered with a flat inner loop,
// and the ring state is written back at the end. The returned slice is
// owned by ws and valid until the next ws.Reset. Zero allocations on a
// warm workspace.
func (f *FIR) ProcessWS(ws *Workspace, x []complex128) []complex128 {
	nt := len(f.taps)
	out := ws.Complex(len(x))
	if nt == 0 {
		copy(out, x)
		return out
	}
	if len(x) == 0 {
		return out
	}
	// ext = [nt−1 samples of history, oldest first][the new block], so
	// y[t] = Σ_i taps[i]·ext[nt−1+t−i] with no index wrapping.
	ext := ws.Complex(nt - 1 + len(x))
	for i := 1; i < nt; i++ {
		ext[nt-1-i] = f.state[((f.pos-i)%nt+nt)%nt]
	}
	copy(ext[nt-1:], x)
	for t := range x {
		var acc complex128
		base := nt - 1 + t
		for i := 0; i < nt; i++ {
			acc += ext[base-i] * complex(f.taps[i], 0)
		}
		out[t] = acc
	}
	// Write the last nt samples back into the ring so streaming picks up
	// exactly where ProcessSample would have left it.
	newPos := (f.pos + len(x)) % nt
	for i := 1; i <= nt && i <= len(ext); i++ {
		f.state[((newPos-i)%nt+nt)%nt] = ext[len(ext)-i]
	}
	f.pos = newPos
	return out
}

// GroupDelay returns the filter's nominal group delay in samples,
// (len(taps)−1)/2, exact for the linear-phase designs produced here.
func (f *FIR) GroupDelay() float64 { return float64(len(f.taps)-1) / 2 }

// DesignLowpass designs a linear-phase lowpass FIR by the window method.
// cutoffNorm is the −6 dB cutoff as a fraction of the sample rate
// (0 < cutoffNorm < 0.5); taps is the filter length (≥ 1). The response is
// normalized to unit DC gain.
func DesignLowpass(cutoffNorm float64, taps int, w Window) ([]float64, error) {
	if cutoffNorm <= 0 || cutoffNorm >= 0.5 {
		return nil, fmt.Errorf("dsp: lowpass cutoff %v out of (0, 0.5)", cutoffNorm)
	}
	if taps < 1 {
		return nil, fmt.Errorf("dsp: lowpass needs at least 1 tap, got %d", taps)
	}
	h := make([]float64, taps)
	win := MakeWindow(w, taps)
	mid := float64(taps-1) / 2
	for i := range h {
		t := float64(i) - mid
		h[i] = sinc(2*cutoffNorm*t) * 2 * cutoffNorm * win[i]
	}
	// Normalize DC gain to 1.
	var sum float64
	for _, v := range h {
		sum += v
	}
	if sum != 0 {
		for i := range h {
			h[i] /= sum
		}
	}
	return h, nil
}

// sinc is the normalized sinc function sin(πx)/(πx).
func sinc(x float64) float64 {
	if x == 0 {
		return 1
	}
	px := math.Pi * x
	return math.Sin(px) / px
}

// FrequencyResponse evaluates the filter's complex frequency response at
// the given normalized frequency (cycles/sample, −0.5 … 0.5).
func FrequencyResponse(taps []float64, freqNorm float64) complex128 {
	var re, im float64
	for n, h := range taps {
		ang := -2 * math.Pi * freqNorm * float64(n)
		re += h * math.Cos(ang)
		im += h * math.Sin(ang)
	}
	return complex(re, im)
}
