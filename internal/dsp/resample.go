package dsp

import "fmt"

// Decimate keeps every factor-th sample starting at offset. The caller is
// responsible for anti-alias filtering first (see DecimateFiltered).
func Decimate(x []complex128, factor, offset int) ([]complex128, error) {
	if factor < 1 {
		return nil, fmt.Errorf("dsp: decimation factor must be ≥ 1, got %d", factor)
	}
	if offset < 0 || (offset >= factor && len(x) > 0) {
		return nil, fmt.Errorf("dsp: decimation offset %d out of [0,%d)", offset, factor)
	}
	out := make([]complex128, 0, (len(x)+factor-1)/factor)
	for i := offset; i < len(x); i += factor {
		out = append(out, x[i])
	}
	return out, nil
}

// DecimateFiltered lowpass-filters x to the post-decimation Nyquist band
// and then decimates by factor. The lowpass is a 12·factor+1 tap
// Hamming-windowed sinc with cutoff 0.45/factor.
func DecimateFiltered(x []complex128, factor int) ([]complex128, error) {
	if factor < 1 {
		return nil, fmt.Errorf("dsp: decimation factor must be ≥ 1, got %d", factor)
	}
	if factor == 1 {
		out := make([]complex128, len(x))
		copy(out, x)
		return out, nil
	}
	taps, err := DesignLowpass(0.45/float64(factor), 12*factor+1, Hamming)
	if err != nil {
		return nil, err
	}
	f := NewFIR(taps)
	y := f.Process(x)
	// Compensate the filter's group delay so output sample k corresponds
	// to input sample k·factor.
	d := int(f.GroupDelay())
	if d < len(y) {
		y = y[d:]
	}
	return Decimate(y, factor, 0)
}

// Interpolate inserts factor−1 zeros after each sample and lowpass-filters
// to reconstruct the intermediate values (gain-compensated by factor).
func Interpolate(x []complex128, factor int) ([]complex128, error) {
	if factor < 1 {
		return nil, fmt.Errorf("dsp: interpolation factor must be ≥ 1, got %d", factor)
	}
	if factor == 1 {
		out := make([]complex128, len(x))
		copy(out, x)
		return out, nil
	}
	up := make([]complex128, len(x)*factor)
	for i, v := range x {
		up[i*factor] = v
	}
	taps, err := DesignLowpass(0.45/float64(factor), 12*factor+1, Hamming)
	if err != nil {
		return nil, err
	}
	for i := range taps {
		taps[i] *= float64(factor)
	}
	f := NewFIR(taps)
	y := f.Process(up)
	d := int(f.GroupDelay())
	if d < len(y) {
		y = y[d:]
	}
	return y, nil
}
