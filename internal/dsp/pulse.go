package dsp

import (
	"fmt"
	"math"
)

// RaisedCosine returns the impulse response of a raised-cosine pulse with
// roll-off beta ∈ [0, 1], sps samples per symbol, spanning span symbols
// (span·sps+1 taps, peak normalized to 1). Raised-cosine pulses are
// Nyquist: they are zero at every non-zero symbol instant, so they carry
// OOK/ASK symbols without inter-symbol interference.
func RaisedCosine(beta float64, sps, span int) ([]float64, error) {
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("dsp: raised-cosine beta %v out of [0,1]", beta)
	}
	if sps < 1 || span < 1 {
		return nil, fmt.Errorf("dsp: raised-cosine needs sps ≥ 1 and span ≥ 1")
	}
	n := span*sps + 1
	h := make([]float64, n)
	mid := float64(n-1) / 2
	for i := range h {
		t := (float64(i) - mid) / float64(sps) // time in symbols
		h[i] = rcValue(t, beta)
	}
	return h, nil
}

// rcValue evaluates the raised-cosine pulse at t symbol periods.
func rcValue(t, beta float64) float64 {
	if beta > 0 {
		// Singularity at t = ±1/(2β).
		if s := math.Abs(t) - 1/(2*beta); math.Abs(s) < 1e-9 {
			return math.Pi / 4 * sinc(1/(2*beta))
		}
	}
	den := 1 - (2*beta*t)*(2*beta*t)
	return sinc(t) * math.Cos(math.Pi*beta*t) / den
}

// RootRaisedCosine returns a root-raised-cosine pulse (matched-filter pair
// of itself; two cascaded RRCs make a raised cosine). Normalized to unit
// energy.
func RootRaisedCosine(beta float64, sps, span int) ([]float64, error) {
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("dsp: RRC beta %v out of [0,1]", beta)
	}
	if sps < 1 || span < 1 {
		return nil, fmt.Errorf("dsp: RRC needs sps ≥ 1 and span ≥ 1")
	}
	n := span*sps + 1
	h := make([]float64, n)
	mid := float64(n-1) / 2
	for i := range h {
		t := (float64(i) - mid) / float64(sps)
		h[i] = rrcValue(t, beta)
	}
	// Unit energy normalization.
	var e float64
	for _, v := range h {
		e += v * v
	}
	if e > 0 {
		s := 1 / math.Sqrt(e)
		for i := range h {
			h[i] *= s
		}
	}
	return h, nil
}

// rrcValue evaluates the root-raised-cosine pulse at t symbol periods
// (unnormalized).
func rrcValue(t, beta float64) float64 {
	if t == 0 {
		return 1 - beta + 4*beta/math.Pi
	}
	if beta > 0 {
		if s := math.Abs(t) - 1/(4*beta); math.Abs(s) < 1e-9 {
			return beta / math.Sqrt2 * ((1+2/math.Pi)*math.Sin(math.Pi/(4*beta)) +
				(1-2/math.Pi)*math.Cos(math.Pi/(4*beta)))
		}
	}
	pt := math.Pi * t
	num := math.Sin(pt*(1-beta)) + 4*beta*t*math.Cos(pt*(1+beta))
	den := pt * (1 - (4*beta*t)*(4*beta*t))
	return num / den
}

// RectPulse returns a rectangular pulse of sps unit samples — the shape of
// the paper's hard-switched OOK: the tag's RF switch is either on or off
// for the whole symbol.
func RectPulse(sps int) []float64 {
	h := make([]float64, sps)
	for i := range h {
		h[i] = 1
	}
	return h
}

// UpsampleImpulses places each symbol at the start of its sps-sample
// period with zeros between (impulse-train upsampling, to be shaped by a
// pulse filter).
func UpsampleImpulses(symbols []complex128, sps int) []complex128 {
	out := make([]complex128, len(symbols)*sps)
	for i, s := range symbols {
		out[i*sps] = s
	}
	return out
}

// ShapeSymbols upsamples symbols by sps and convolves with the pulse,
// returning exactly len(symbols)·sps samples aligned so that sample
// k·sps + delay corresponds to symbol k's pulse center, where delay is
// (len(pulse)-1)/2 truncated... To keep call sites simple the function
// compensates the pulse's group delay internally: output sample k·sps is
// the center of symbol k.
func ShapeSymbols(symbols []complex128, pulse []float64, sps int) []complex128 {
	return ShapeSymbolsWS(nil, symbols, pulse, sps)
}

// ShapeSymbolsWS is ShapeSymbols with every intermediate (impulse train,
// complex pulse, convolution scratch) and the output checked out of ws.
// The returned slice is valid until the next ws.Reset; a nil ws
// allocates.
func ShapeSymbolsWS(ws *Workspace, symbols []complex128, pulse []float64, sps int) []complex128 {
	up := ws.Complex(len(symbols) * sps)
	for i, s := range symbols {
		up[i*sps] = s
	}
	ph := ws.Complex(len(pulse))
	for i, v := range pulse {
		ph[i] = complex(v, 0)
	}
	full := ConvWS(ws, up, ph)
	delay := (len(pulse) - 1) / 2
	out := ws.Complex(len(symbols) * sps)
	for i := range out {
		j := i + delay
		if j < len(full) {
			out[i] = full[j]
		}
	}
	return out
}
