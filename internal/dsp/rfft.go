package dsp

import "math"

// rfftPlan caches the untangling twiddles of the packed real-input FFT
// for one even length n: tw[k] = exp(-2πik/n) for k = 0..n/2. Like the
// other plans it is immutable and survives Workspace.Reset.
type rfftPlan struct {
	n  int
	tw []complex128
}

func newRFFTPlan(n int) *rfftPlan {
	m := n / 2
	tw := make([]complex128, m+1)
	for k := 0; k <= m; k++ {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		tw[k] = complex(c, s)
	}
	return &rfftPlan{n: n, tw: tw}
}

// rfftPlanFor returns the cached untangle plan for even length n.
func (w *Workspace) rfftPlanFor(n int) *rfftPlan {
	if w == nil {
		return newRFFTPlan(n)
	}
	if p, ok := w.rffts[n]; ok {
		return p
	}
	if w.rffts == nil {
		w.rffts = make(map[int]*rfftPlan)
	}
	p := newRFFTPlan(n)
	w.rffts[n] = p
	return p
}

// RFFTWS computes the DFT of a real signal of even length n using one
// complex FFT of length n/2: consecutive sample pairs are packed into
// real/imaginary parts and the spectrum untangled afterwards, roughly
// halving the work of the complex transform. It returns the
// non-redundant half spectrum X[0..n/2] (n/2+1 bins, DC through Nyquist)
// in a workspace buffer valid until the next Reset; the remaining bins
// follow from conjugate symmetry X[n-k] = conj(X[k]).
//
// len(x) must be even and ≥ 2. Zero allocations once the plans for n/2
// exist. A nil workspace allocates.
func RFFTWS(w *Workspace, x []float64) []complex128 {
	n := len(x)
	if n < 2 || n%2 != 0 {
		panic("dsp: RFFTWS requires even input length >= 2")
	}
	m := n / 2
	z := w.Complex(m)
	for j := 0; j < m; j++ {
		z[j] = complex(x[2*j], x[2*j+1])
	}
	w.fft(z, false)
	out := w.Complex(m + 1)
	p := w.rfftPlanFor(n)
	// Untangle: with Z the transform of the packed sequence, the even-
	// and odd-sample sub-spectra are E(k) = (Z(k)+conj(Z(m-k)))/2 and
	// O(k) = -i(Z(k)-conj(Z(m-k)))/2, and X(k) = E(k) + tw[k]·O(k).
	for k := 0; k <= m; k++ {
		zk := z[k%m] // Z(m) wraps to Z(0)
		zc := z[(m-k)%m]
		zc = complex(real(zc), -imag(zc))
		e := (zk + zc) * 0.5
		d := (zk - zc) * 0.5
		o := complex(imag(d), -real(d)) // -i·(zk-zc)/2
		out[k] = e + p.tw[k]*o
	}
	return out
}

// IRFFTWS inverts RFFTWS: given the half spectrum spec (n/2+1 bins of a
// conjugate-symmetric DFT), it returns the length-n real signal in a
// workspace buffer valid until the next Reset. n must be even and
// len(spec) == n/2+1. Zero allocations once the plans exist.
func IRFFTWS(w *Workspace, spec []complex128, n int) []float64 {
	if n < 2 || n%2 != 0 || len(spec) != n/2+1 {
		panic("dsp: IRFFTWS requires even n with len(spec) == n/2+1")
	}
	m := n / 2
	z := w.Complex(m)
	p := w.rfftPlanFor(n)
	// Re-tangle: E(k) = (X(k)+conj(X(m-k)))/2, O(k) = conj(tw[k])·
	// (X(k)-conj(X(m-k)))/2, and the packed spectrum is Z(k) = E(k)+i·O(k).
	for k := 0; k < m; k++ {
		xk := spec[k]
		xc := spec[m-k]
		xc = complex(real(xc), -imag(xc))
		e := (xk + xc) * 0.5
		d := (xk - xc) * 0.5
		twc := p.tw[k]
		twc = complex(real(twc), -imag(twc))
		o := twc * d
		z[k] = e + complex(-imag(o), real(o)) // E + i·O
	}
	w.fft(z, true)
	out := w.Float(n)
	for j := 0; j < m; j++ {
		out[2*j] = real(z[j])
		out[2*j+1] = imag(z[j])
	}
	return out
}
