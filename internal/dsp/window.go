package dsp

import "math"

// Window identifies a tapering window function.
type Window int

// Supported windows.
const (
	Rectangular Window = iota
	Hann
	Hamming
	Blackman
	Kaiser // requires a beta parameter; see KaiserWindow
)

// String returns the window's name.
func (w Window) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	case Kaiser:
		return "kaiser"
	default:
		return "unknown"
	}
}

// MakeWindow returns the n-point window of the given type. Kaiser uses a
// default beta of 8.6 (≈ Blackman-like sidelobes); use KaiserWindow for an
// explicit beta.
func MakeWindow(w Window, n int) []float64 {
	return MakeWindowInto(make([]float64, n), w)
}

// MakeWindowInto fills dst with the len(dst)-point window of the given
// type and returns dst — the allocation-free form of MakeWindow.
func MakeWindowInto(dst []float64, w Window) []float64 {
	switch w {
	case Hann:
		return cosineWindowInto(dst, 0.5, 0.5, 0)
	case Hamming:
		return cosineWindowInto(dst, 0.54, 0.46, 0)
	case Blackman:
		return cosineWindowInto(dst, 0.42, 0.5, 0.08)
	case Kaiser:
		return kaiserWindowInto(dst, 8.6)
	default:
		for i := range dst {
			dst[i] = 1
		}
		return dst
	}
}

// cosineWindowInto fills dst with a0 − a1·cos(2πi/(n−1)) + a2·cos(4πi/(n−1)).
func cosineWindowInto(dst []float64, a0, a1, a2 float64) []float64 {
	n := len(dst)
	if n == 1 {
		dst[0] = 1
		return dst
	}
	for i := range dst {
		x := 2 * math.Pi * float64(i) / float64(n-1)
		dst[i] = a0 - a1*math.Cos(x) + a2*math.Cos(2*x)
	}
	return dst
}

// KaiserWindow returns an n-point Kaiser window with shape parameter beta.
func KaiserWindow(n int, beta float64) []float64 {
	return kaiserWindowInto(make([]float64, n), beta)
}

func kaiserWindowInto(dst []float64, beta float64) []float64 {
	n := len(dst)
	if n == 1 {
		dst[0] = 1
		return dst
	}
	den := besselI0(beta)
	m := float64(n - 1)
	for i := range dst {
		t := 2*float64(i)/m - 1
		dst[i] = besselI0(beta*math.Sqrt(1-t*t)) / den
	}
	return dst
}

// besselI0 is the zeroth-order modified Bessel function of the first kind,
// evaluated by its power series (converges quickly for the beta range used
// in window design).
func besselI0(x float64) float64 {
	sum := 1.0
	term := 1.0
	half := x / 2
	for k := 1; k < 64; k++ {
		term *= half * half / (float64(k) * float64(k))
		sum += term
		if term < 1e-18*sum {
			break
		}
	}
	return sum
}

// ApplyWindow multiplies x by the window in place and returns x. The
// window and signal must be the same length; the shorter prefix is used
// otherwise.
func ApplyWindow(x []complex128, w []float64) []complex128 {
	n := min(len(x), len(w))
	for i := 0; i < n; i++ {
		x[i] *= complex(w[i], 0)
	}
	return x
}
