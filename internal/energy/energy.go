// Package energy models the "batteryless" premise of the paper's
// abstract: the tag's operating energy "is low enough that it can be
// harvested from the environment without having a battery". It provides
// harvester models (RF rectification of the reader's own carrier, plus
// ambient light and motion sources), a storage-capacitor model, and a
// duty-cycle planner that converts a harvest budget into a sustainable
// backscatter throughput.
package energy

import (
	"fmt"
	"math"

	"github.com/mmtag/mmtag/internal/units"
)

// Harvester is any ambient energy source.
type Harvester interface {
	// Name identifies the source.
	Name() string
	// PowerW returns the continuous harvest power in watts.
	PowerW() float64
}

// RFHarvester rectifies the reader's incident carrier — the classic
// RFID-style supply, and the only one that needs no extra transducer.
type RFHarvester struct {
	// IncidentDBm is the RF power captured by the tag's aperture.
	IncidentDBm float64
	// Efficiency is the rectifier's RF→DC conversion efficiency at this
	// input level (modern 24 GHz rectennas: 0.05–0.35 depending on
	// drive).
	Efficiency float64
	// SensitivityDBm is the rectifier's turn-on threshold; below it the
	// harvest is zero (typical CMOS rectifiers: −20 dBm).
	SensitivityDBm float64
}

// Name implements Harvester.
func (RFHarvester) Name() string { return "RF (reader carrier)" }

// PowerW implements Harvester.
func (h RFHarvester) PowerW() float64 {
	if h.IncidentDBm < h.SensitivityDBm {
		return 0
	}
	return units.DBmToWatts(h.IncidentDBm) * h.Efficiency
}

// IncidentAtTagDBm returns the one-way power the tag's aperture captures
// from a reader with EIRP eirpDBm at range r: Friis with the tag's
// aperture gain.
func IncidentAtTagDBm(eirpDBm, tagGainDBi, rangeM, lambda float64) float64 {
	return eirpDBm + tagGainDBi - units.FSPLDB(rangeM, lambda)
}

// LightHarvester is a small photovoltaic cell under indoor illuminance.
type LightHarvester struct {
	// AreaCM2 is the cell area in cm².
	AreaCM2 float64
	// IndoorLux is the ambient illuminance (office: 300–500 lux).
	IndoorLux float64
	// EfficiencyUWPerCM2PerKLux is the cell's indoor figure of merit
	// (amorphous Si: ~10 µW/cm²/klux).
	EfficiencyUWPerCM2PerKLux float64
}

// Name implements Harvester.
func (LightHarvester) Name() string { return "photovoltaic" }

// PowerW implements Harvester.
func (h LightHarvester) PowerW() float64 {
	return h.AreaCM2 * (h.IndoorLux / 1000) * h.EfficiencyUWPerCM2PerKLux * 1e-6
}

// MotionHarvester is a piezo/electromagnetic scavenger on a moving host.
type MotionHarvester struct {
	// AverageUW is the long-run average harvest in µW (wearables:
	// 10–100 µW).
	AverageUW float64
}

// Name implements Harvester.
func (MotionHarvester) Name() string { return "motion" }

// PowerW implements Harvester.
func (h MotionHarvester) PowerW() float64 { return h.AverageUW * 1e-6 }

// Composite sums several sources.
type Composite []Harvester

// Name implements Harvester.
func (Composite) Name() string { return "composite" }

// PowerW implements Harvester.
func (c Composite) PowerW() float64 {
	var p float64
	for _, h := range c {
		p += h.PowerW()
	}
	return p
}

// Storage is the tag's energy buffer (a capacitor — batteryless by
// construction).
type Storage struct {
	// CapacitanceF is the storage capacitance.
	CapacitanceF float64
	// VMax is the charged rail voltage.
	VMax float64
	// VMin is the brown-out voltage below which logic stops.
	VMin float64
}

// UsableJ returns the energy between full and brown-out:
// ½C(Vmax²−Vmin²).
func (s Storage) UsableJ() float64 {
	return 0.5 * s.CapacitanceF * (s.VMax*s.VMax - s.VMin*s.VMin)
}

// ChargeTimeS returns the time to charge from brown-out to full at the
// given harvest power.
func (s Storage) ChargeTimeS(harvestW float64) float64 {
	if harvestW <= 0 {
		return math.Inf(1)
	}
	return s.UsableJ() / harvestW
}

// Budget plans duty-cycled operation: harvest continuously, burst when
// the capacitor allows.
type Budget struct {
	Harvest Harvester
	Store   Storage
	// ActiveW is the tag's power draw while modulating (from
	// tag.EnergyModel.PowerAtBitrateW).
	ActiveW float64
}

// DutyCycle returns the sustainable fraction of time the tag can be
// active: harvest/active, capped at 1. Zero active draw returns 1.
func (b Budget) DutyCycle() float64 {
	if b.ActiveW <= 0 {
		return 1
	}
	d := b.Harvest.PowerW() / b.ActiveW
	if d > 1 {
		return 1
	}
	return d
}

// SustainableThroughput returns the long-run average throughput when the
// instantaneous link rate is linkBps: linkBps × duty cycle.
func (b Budget) SustainableThroughput(linkBps float64) float64 {
	return linkBps * b.DutyCycle()
}

// BurstSeconds returns how long one fully-charged burst lasts, and the
// recharge time after it. A duty cycle of 1 returns (+Inf, 0).
func (b Budget) BurstSeconds() (active, recharge float64) {
	if b.DutyCycle() >= 1 {
		return math.Inf(1), 0
	}
	net := b.ActiveW - b.Harvest.PowerW()
	active = b.Store.UsableJ() / net
	recharge = b.Store.ChargeTimeS(b.Harvest.PowerW())
	return active, recharge
}

// Validate checks the budget's parameters.
func (b Budget) Validate() error {
	if b.Harvest == nil {
		return fmt.Errorf("energy: nil harvester")
	}
	if b.Store.CapacitanceF < 0 || b.Store.VMax < b.Store.VMin || b.Store.VMin < 0 {
		return fmt.Errorf("energy: invalid storage %+v", b.Store)
	}
	if b.ActiveW < 0 {
		return fmt.Errorf("energy: negative active power")
	}
	return nil
}

// DefaultStorage returns a 100 µF / 3.0→1.8 V buffer — a typical
// batteryless sensor supply.
func DefaultStorage() Storage {
	return Storage{CapacitanceF: 100e-6, VMax: 3.0, VMin: 1.8}
}

// DefaultRectifier returns a 24 GHz rectenna model: 20% efficiency,
// −20 dBm sensitivity.
func DefaultRectifier(incidentDBm float64) RFHarvester {
	return RFHarvester{IncidentDBm: incidentDBm, Efficiency: 0.20, SensitivityDBm: -20}
}
