package energy

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/mmtag/mmtag/internal/units"
)

func TestRFHarvesterThreshold(t *testing.T) {
	h := DefaultRectifier(-30) // below the −20 dBm sensitivity
	if h.PowerW() != 0 {
		t.Error("below-sensitivity harvest should be zero")
	}
	h = DefaultRectifier(-10) // 100 µW incident × 20% = 20 µW
	if got := h.PowerW(); math.Abs(got-20e-6) > 1e-9 {
		t.Errorf("harvest %g W, want 20 µW", got)
	}
}

func TestIncidentAtTag(t *testing.T) {
	// Reader EIRP = 13 dBm + 20 dBi = 33 dBm; tag gain 12.8 dBi; at 1 m
	// FSPL(24 GHz) ≈ 60.1 dB ⇒ incident ≈ −14.3 dBm.
	lambda := units.Wavelength(24e9)
	got := IncidentAtTagDBm(33, 12.8, 1, lambda)
	if math.Abs(got-(-14.3)) > 0.2 {
		t.Errorf("incident %g dBm, want ≈ −14.3", got)
	}
	// One-way decay: 20 dB/decade.
	d := IncidentAtTagDBm(33, 12.8, 1, lambda) - IncidentAtTagDBm(33, 12.8, 10, lambda)
	if math.Abs(d-20) > 1e-9 {
		t.Errorf("one-way slope %g dB/decade", d)
	}
}

func TestLightAndMotion(t *testing.T) {
	// 4 cm² cell at 400 lux, 10 µW/cm²/klux ⇒ 16 µW.
	l := LightHarvester{AreaCM2: 4, IndoorLux: 400, EfficiencyUWPerCM2PerKLux: 10}
	if got := l.PowerW(); math.Abs(got-16e-6) > 1e-12 {
		t.Errorf("light harvest %g", got)
	}
	m := MotionHarvester{AverageUW: 50}
	if math.Abs(m.PowerW()-50e-6) > 1e-12 {
		t.Error("motion harvest")
	}
	c := Composite{l, m}
	if got := c.PowerW(); math.Abs(got-66e-6) > 1e-12 {
		t.Errorf("composite %g", got)
	}
	if l.Name() == "" || m.Name() == "" || c.Name() == "" {
		t.Error("names")
	}
}

func TestStorage(t *testing.T) {
	s := DefaultStorage()
	// ½·100µF·(9−3.24) = 288 µJ.
	if got := s.UsableJ(); math.Abs(got-288e-6) > 1e-9 {
		t.Errorf("usable energy %g J", got)
	}
	// Charging at 20 µW: 14.4 s.
	if got := s.ChargeTimeS(20e-6); math.Abs(got-14.4) > 0.01 {
		t.Errorf("charge time %g s", got)
	}
	if !math.IsInf(s.ChargeTimeS(0), 1) {
		t.Error("zero harvest should never charge")
	}
}

func TestDutyCycle(t *testing.T) {
	b := Budget{
		Harvest: MotionHarvester{AverageUW: 68},
		Store:   DefaultStorage(),
		ActiveW: 136e-6, // 10 Mb/s modulation draw from tag.DefaultEnergyModel
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := b.DutyCycle(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("duty cycle %g, want 0.5", got)
	}
	// Sustainable throughput at a 10 Mb/s link: 5 Mb/s.
	if got := b.SustainableThroughput(10e6); math.Abs(got-5e6) > 1 {
		t.Errorf("sustainable %g", got)
	}
	// Burst/recharge: active burns net 68 µW from 288 µJ ⇒ 4.24 s;
	// recharge 288µJ/68µW ⇒ 4.24 s.
	act, rec := b.BurstSeconds()
	if math.Abs(act-4.235) > 0.01 || math.Abs(rec-4.235) > 0.01 {
		t.Errorf("burst %g s, recharge %g s", act, rec)
	}
}

func TestDutyCycleCaps(t *testing.T) {
	rich := Budget{Harvest: MotionHarvester{AverageUW: 1000}, Store: DefaultStorage(), ActiveW: 10e-6}
	if rich.DutyCycle() != 1 {
		t.Error("surplus harvest should cap at duty 1")
	}
	act, rec := rich.BurstSeconds()
	if !math.IsInf(act, 1) || rec != 0 {
		t.Error("surplus harvest should burst forever")
	}
	free := Budget{Harvest: MotionHarvester{}, Store: DefaultStorage(), ActiveW: 0}
	if free.DutyCycle() != 1 {
		t.Error("zero draw should be duty 1")
	}
}

func TestDutyCycleMonotoneInHarvest(t *testing.T) {
	f := func(raw float64) bool {
		uw := math.Abs(math.Mod(raw, 200))
		b1 := Budget{Harvest: MotionHarvester{AverageUW: uw}, Store: DefaultStorage(), ActiveW: 136e-6}
		b2 := Budget{Harvest: MotionHarvester{AverageUW: uw + 10}, Store: DefaultStorage(), ActiveW: 136e-6}
		return b2.DutyCycle() >= b1.DutyCycle()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	if (Budget{}).Validate() == nil {
		t.Error("nil harvester should fail")
	}
	b := Budget{Harvest: MotionHarvester{}, Store: Storage{CapacitanceF: -1}}
	if b.Validate() == nil {
		t.Error("negative capacitance should fail")
	}
	b = Budget{Harvest: MotionHarvester{}, Store: Storage{VMax: 1, VMin: 2}}
	if b.Validate() == nil {
		t.Error("inverted voltages should fail")
	}
	b = Budget{Harvest: MotionHarvester{}, Store: DefaultStorage(), ActiveW: -1}
	if b.Validate() == nil {
		t.Error("negative draw should fail")
	}
}

func TestRFHarvestingRangeBehaviour(t *testing.T) {
	// RF harvest dies at the rectifier sensitivity: with 33 dBm EIRP and
	// a 12.8 dBi tag, −20 dBm incident is crossed near 1.9 m.
	lambda := units.Wavelength(24e9)
	nearIn := IncidentAtTagDBm(33, 12.8, 1.0, lambda)
	farIn := IncidentAtTagDBm(33, 12.8, 3.0, lambda)
	if DefaultRectifier(nearIn).PowerW() <= 0 {
		t.Error("1 m RF harvest should be alive")
	}
	if DefaultRectifier(farIn).PowerW() != 0 {
		t.Errorf("3 m RF harvest should be below sensitivity (incident %.1f dBm)", farIn)
	}
}
