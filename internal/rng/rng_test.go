package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("seeds 1 and 2 produced %d identical outputs of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("sibling splits produced the same first output")
	}
	// Splitting must be reproducible.
	p2 := New(7)
	d1 := p2.Split()
	d2 := p2.Split()
	e1 := New(7).Split()
	if e1.Uint64() != d1.Uint64() {
		t.Error("split is not reproducible")
	}
	_ = d2
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean %g too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	counts := make([]int, 7)
	const n = 70000
	for i := 0; i < n; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/7.0) > 0.05*n/7.0 {
			t.Errorf("Intn bucket %d count %d deviates >5%% from uniform", i, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(6)
	const n = 300000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("Gaussian mean %g too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Gaussian variance %g too far from 1", variance)
	}
}

func TestComplexNormPower(t *testing.T) {
	s := New(8)
	const n = 200000
	var p float64
	var iq float64
	for i := 0; i < n; i++ {
		z := s.ComplexNorm()
		p += real(z)*real(z) + imag(z)*imag(z)
		iq += real(z) * imag(z)
	}
	if avg := p / n; math.Abs(avg-1) > 0.02 {
		t.Errorf("complex Gaussian power %g, want 1", avg)
	}
	if corr := iq / n; math.Abs(corr) > 0.01 {
		t.Errorf("I/Q correlation %g, want ~0", corr)
	}
}

func TestAWGNPower(t *testing.T) {
	s := New(9)
	x := make([]complex128, 100000)
	s.AWGN(x, 0.25)
	var p float64
	for _, v := range x {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	if avg := p / float64(len(x)); math.Abs(avg-0.25) > 0.01 {
		t.Errorf("AWGN power %g, want 0.25", avg)
	}
}

func TestExpMean(t *testing.T) {
	s := New(10)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(3.0)
	}
	if mean := sum / n; math.Abs(mean-3) > 0.05 {
		t.Errorf("exponential mean %g, want 3", mean)
	}
}

func TestBitsAndBytes(t *testing.T) {
	s := New(11)
	bits := s.Bits(make([]byte, 1000))
	ones := 0
	for _, b := range bits {
		if b != 0 && b != 1 {
			t.Fatalf("bit value %d", b)
		}
		ones += int(b)
	}
	if ones < 400 || ones > 600 {
		t.Errorf("ones count %d of 1000 is not plausibly fair", ones)
	}
	raw := s.Bytes(make([]byte, 37))
	if len(raw) != 37 {
		t.Fatal("Bytes changed length")
	}
	// Byte output should not be all identical.
	allSame := true
	for _, b := range raw[1:] {
		if b != raw[0] {
			allSame = false
			break
		}
	}
	if allSame {
		t.Error("Bytes produced a constant run")
	}
}

func TestShufflePermutes(t *testing.T) {
	s := New(12)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("duplicate %d after shuffle", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatal("shuffle lost elements")
	}
}
