// Package rng provides the deterministic random-number machinery used by
// every stochastic part of the simulator: a xoshiro256★★ generator with
// SplitMix64 seeding, splittable sub-streams so each experiment and each
// entity draws from an independent reproducible sequence, and Gaussian /
// complex-AWGN sampling for noise injection.
//
// The package deliberately avoids math/rand so that results are stable
// across Go releases and so streams can be split hierarchically.
package rng

import "math"

// Source is a xoshiro256★★ pseudo-random generator. The zero value is not
// usable; construct with New.
type Source struct {
	s [4]uint64
	// cached spare Gaussian sample for the polar method
	spare    float64
	hasSpare bool
}

// splitMix64 advances x and returns the next SplitMix64 output. It is used
// to expand seeds into full generator state, as recommended by the
// xoshiro authors.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds give statistically
// independent streams.
func New(seed uint64) *Source {
	var s Source
	x := seed
	for i := range s.s {
		s.s[i] = splitMix64(&x)
	}
	// xoshiro must not start from the all-zero state; SplitMix64 cannot
	// produce four zeros from any seed, but guard anyway.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 1
	}
	return &s
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Split derives an independent child stream from this one. The parent
// advances; the child is seeded from the parent's output so that the two
// sequences do not overlap in practice.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0xd3833e804f4c574b)
}

// Sequence is a deterministic family of sub-streams keyed by index: the
// splitting contract parallel shards need. At(i) depends only on the
// Sequence and i — not on how many times or in what order At has been
// called — so shards can be claimed by any number of workers in any
// order and still draw identical randomness.
type Sequence struct {
	base uint64
}

// SplitSeq consumes exactly one draw from the parent and returns the
// derived Sequence. Two SplitSeq calls on the same parent yield
// unrelated families; the parent advances by one Uint64 regardless of
// how many sub-streams are later materialized.
func (s *Source) SplitSeq() Sequence {
	return Sequence{base: s.Uint64() ^ 0x9fb21c651e98df25}
}

// NewSequence builds a Sequence directly from a seed, for call sites
// that have no parent stream.
func NewSequence(seed uint64) Sequence {
	var x = seed
	return Sequence{base: splitMix64(&x) ^ 0x9fb21c651e98df25}
}

// At returns sub-stream i of the family. Calls are idempotent and
// order-independent: At(i) always returns a generator in the same
// state, and distinct indices give statistically independent streams.
func (q Sequence) At(i uint64) *Source {
	// Mix the index through SplitMix64 before handing it to New (which
	// SplitMix64-expands again) so consecutive indices land far apart.
	x := q.base + (i+1)*0x9e3779b97f4a7c15
	return New(splitMix64(&x))
}

// Float64 returns a uniform sample in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless method would be overkill here; modulo
	// bias is negligible for the small n used by the simulator, but use
	// rejection sampling anyway for exactness.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := s.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Bool returns a fair coin flip.
func (s *Source) Bool() bool { return s.Uint64()&1 == 1 }

// Bit returns a fair random bit as a byte (0 or 1).
func (s *Source) Bit() byte { return byte(s.Uint64() & 1) }

// Bits fills dst with fair random bits (each byte 0 or 1) and returns it.
func (s *Source) Bits(dst []byte) []byte {
	for i := range dst {
		dst[i] = s.Bit()
	}
	return dst
}

// Bytes fills dst with uniform random bytes and returns it.
func (s *Source) Bytes(dst []byte) []byte {
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		v := s.Uint64()
		for j := 0; j < 8; j++ {
			dst[i+j] = byte(v >> (8 * j))
		}
	}
	if i < len(dst) {
		v := s.Uint64()
		for ; i < len(dst); i++ {
			dst[i] = byte(v)
			v >>= 8
		}
	}
	return dst
}

// Norm returns a standard Gaussian sample (mean 0, variance 1) using the
// Marsaglia polar method with a cached spare.
func (s *Source) Norm() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			f := math.Sqrt(-2 * math.Log(q) / q)
			s.spare = v * f
			s.hasSpare = true
			return u * f
		}
	}
}

// NormScaled returns a Gaussian sample with the given mean and standard
// deviation.
func (s *Source) NormScaled(mean, sigma float64) float64 {
	return mean + sigma*s.Norm()
}

// ComplexNorm returns a circularly-symmetric complex Gaussian sample with
// total variance 1 (each of I and Q has variance 1/2). Scale by σ to get
// complex AWGN of power σ².
func (s *Source) ComplexNorm() complex128 {
	const invSqrt2 = 0.7071067811865476
	return complex(s.Norm()*invSqrt2, s.Norm()*invSqrt2)
}

// AWGN adds complex white Gaussian noise of the given power (variance per
// sample) to x in place and returns it.
func (s *Source) AWGN(x []complex128, noisePower float64) []complex128 {
	sigma := math.Sqrt(noisePower)
	for i := range x {
		x[i] += complex(sigma, 0) * s.ComplexNorm()
	}
	return x
}

// Exp returns an exponentially distributed sample with the given mean.
// Used by the MAC simulator for random backoff and arrival processes.
func (s *Source) Exp(mean float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Shuffle performs a Fisher–Yates shuffle of n elements via swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
