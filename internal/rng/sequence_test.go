package rng

import "testing"

func TestSequenceAtIsIdempotent(t *testing.T) {
	seq := New(42).SplitSeq()
	a := seq.At(7)
	b := seq.At(7)
	for i := 0; i < 64; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("At(7) not idempotent at draw %d", i)
		}
	}
}

func TestSequenceAtIsOrderIndependent(t *testing.T) {
	parent := New(9)
	seq := parent.SplitSeq()
	// Materialize in one order...
	first := make(map[uint64]uint64)
	for _, i := range []uint64{0, 1, 2, 3, 4} {
		first[i] = seq.At(i).Uint64()
	}
	// ...and again in a scrambled order; the draws must match.
	for _, i := range []uint64{3, 0, 4, 2, 1} {
		if got := seq.At(i).Uint64(); got != first[i] {
			t.Fatalf("At(%d) depends on call order: %d vs %d", i, got, first[i])
		}
	}
}

func TestSequenceIndicesAreDistinct(t *testing.T) {
	seq := NewSequence(1)
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 1000; i++ {
		v := seq.At(i).Uint64()
		if j, dup := seen[v]; dup {
			t.Fatalf("streams %d and %d share their first draw %#x", i, j, v)
		}
		seen[v] = i
	}
}

func TestSplitSeqAdvancesParentOnce(t *testing.T) {
	a, b := New(5), New(5)
	a.SplitSeq()
	b.Uint64()
	if a.Uint64() != b.Uint64() {
		t.Fatal("SplitSeq must consume exactly one parent draw")
	}
}

func TestSplitSeqFamiliesAreUnrelated(t *testing.T) {
	parent := New(17)
	s1 := parent.SplitSeq()
	s2 := parent.SplitSeq()
	if s1.At(0).Uint64() == s2.At(0).Uint64() {
		t.Fatal("two SplitSeq families share stream 0")
	}
}

func TestNewSequenceMatchesSeed(t *testing.T) {
	if NewSequence(3).At(0).Uint64() != NewSequence(3).At(0).Uint64() {
		t.Fatal("NewSequence not deterministic")
	}
	if NewSequence(3).At(0).Uint64() == NewSequence(4).At(0).Uint64() {
		t.Fatal("distinct seeds collide on stream 0")
	}
}

// TestSequenceStreamsLookGaussianHealthy runs a light sanity check that
// index-keyed streams are statistically usable: the per-stream means of
// a few hundred Gaussian draws should themselves average near zero.
func TestSequenceStreamsLookGaussianHealthy(t *testing.T) {
	seq := NewSequence(123)
	var grand float64
	const streams = 64
	for i := uint64(0); i < streams; i++ {
		src := seq.At(i)
		var m float64
		for k := 0; k < 256; k++ {
			m += src.Norm()
		}
		grand += m / 256
	}
	grand /= streams
	if grand > 0.02 || grand < -0.02 {
		t.Fatalf("grand mean of keyed streams %.4f, want ≈ 0", grand)
	}
}
