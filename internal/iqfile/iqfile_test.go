package iqfile

import (
	"bytes"
	"math"
	"math/cmplx"
	"strings"
	"testing"
	"testing/quick"

	"github.com/mmtag/mmtag/internal/rng"
)

func TestRoundTrip(t *testing.T) {
	src := rng.New(1)
	samples := make([]complex128, 1000)
	src.AWGN(samples, 1)
	hdr := Header{SampleRateHz: 400e6, CarrierHz: 24e9, Samples: 1000}
	var buf bytes.Buffer
	if err := Write(&buf, hdr, samples); err != nil {
		t.Fatal(err)
	}
	got, out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != hdr {
		t.Errorf("header %+v", got)
	}
	if len(out) != len(samples) {
		t.Fatalf("sample count %d", len(out))
	}
	// float32 storage: expect ~1e-7 relative precision.
	for i := range out {
		if cmplx.Abs(out[i]-samples[i]) > 1e-6*(1+cmplx.Abs(samples[i])) {
			t.Fatalf("sample %d: %v vs %v", i, out[i], samples[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw) % 512
		src := rng.New(seed)
		samples := make([]complex128, n)
		src.AWGN(samples, 0.5)
		hdr := Header{SampleRateHz: 1e6, CarrierHz: 24e9, Samples: uint64(n)}
		var buf bytes.Buffer
		if err := Write(&buf, hdr, samples); err != nil {
			return false
		}
		got, out, err := Read(&buf)
		return err == nil && got.Samples == uint64(n) && len(out) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestWriteValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Header{SampleRateHz: 1e6, Samples: 5}, make([]complex128, 3)); err == nil {
		t.Error("count mismatch should fail")
	}
	if err := Write(&buf, Header{SampleRateHz: 0, Samples: 0}, nil); err == nil {
		t.Error("zero sample rate should fail")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"bad magic": "NOPE" + strings.Repeat("\x00", 64),
		"short":     "MMIQ\x01",
	}
	for name, data := range cases {
		if _, _, err := Read(strings.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Bad version.
	good := validCapture(t, 4)
	good[4] = 9
	if _, _, err := Read(bytes.NewReader(good)); err == nil {
		t.Error("bad version should fail")
	}
	// Truncated samples.
	good = validCapture(t, 4)
	if _, _, err := Read(bytes.NewReader(good[:len(good)-3])); err == nil {
		t.Error("truncated samples should fail")
	}
	// Absurd sample count.
	good = validCapture(t, 4)
	for i := 24; i < 32; i++ {
		good[i] = 0xFF
	}
	if _, _, err := Read(bytes.NewReader(good)); err == nil {
		t.Error("absurd count should fail")
	}
	// NaN sample rate.
	good = validCapture(t, 4)
	nan := math.Float64bits(math.NaN())
	for i := 0; i < 8; i++ {
		good[8+i] = byte(nan >> (8 * i))
	}
	if _, _, err := Read(bytes.NewReader(good)); err == nil {
		t.Error("NaN sample rate should fail")
	}
}

func validCapture(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, Header{SampleRateHz: 1e6, CarrierHz: 24e9, Samples: uint64(n)}, make([]complex128, n)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEmptyCapture(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Header{SampleRateHz: 1e6, Samples: 0}, nil); err != nil {
		t.Fatal(err)
	}
	hdr, out, err := Read(&buf)
	if err != nil || hdr.Samples != 0 || len(out) != 0 {
		t.Errorf("empty capture: %+v %d %v", hdr, len(out), err)
	}
}
