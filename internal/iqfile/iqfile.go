// Package iqfile defines a small binary container for complex-baseband
// captures — the simulator's equivalent of a pcap file: the reader can
// persist a received burst and decode it later (or a real SDR capture
// could be converted in). Format:
//
//	magic "MMIQ" | version u8 | flags u8 | reserved u16
//	sampleRate f64 | carrierHz f64 | sampleCount u64
//	sampleCount × (I f32, Q f32)   — little endian
//
// Samples are stored as float32 pairs, the de-facto SDR interchange
// precision.
package iqfile

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Magic identifies an IQ capture file.
const Magic = "MMIQ"

// Version is the current format version.
const Version = 1

// MaxSamples bounds a single capture (guards against corrupt headers).
const MaxSamples = 1 << 30

// Header describes a capture.
type Header struct {
	// SampleRateHz is the complex sample rate.
	SampleRateHz float64
	// CarrierHz is the RF center frequency the baseband was mixed from.
	CarrierHz float64
	// Samples is the sample count.
	Samples uint64
}

// Write serializes a capture.
func Write(w io.Writer, hdr Header, samples []complex128) error {
	if uint64(len(samples)) != hdr.Samples {
		return fmt.Errorf("iqfile: header says %d samples, got %d", hdr.Samples, len(samples))
	}
	if hdr.Samples > MaxSamples {
		return fmt.Errorf("iqfile: %d samples exceeds max %d", hdr.Samples, MaxSamples)
	}
	if hdr.SampleRateHz <= 0 {
		return fmt.Errorf("iqfile: non-positive sample rate")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	if err := bw.WriteByte(Version); err != nil {
		return err
	}
	// flags + reserved
	if _, err := bw.Write([]byte{0, 0, 0}); err != nil {
		return err
	}
	var buf [8]byte
	put := func(v uint64) error {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, err := bw.Write(buf[:])
		return err
	}
	if err := put(math.Float64bits(hdr.SampleRateHz)); err != nil {
		return err
	}
	if err := put(math.Float64bits(hdr.CarrierHz)); err != nil {
		return err
	}
	if err := put(hdr.Samples); err != nil {
		return err
	}
	var sb [8]byte
	for _, s := range samples {
		binary.LittleEndian.PutUint32(sb[0:4], math.Float32bits(float32(real(s))))
		binary.LittleEndian.PutUint32(sb[4:8], math.Float32bits(float32(imag(s))))
		if _, err := bw.Write(sb[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Encode serializes a capture to an in-memory byte slice — the
// flight-recorder path, where captures are handed to the run-directory
// manifest writer rather than streamed to disk directly.
func Encode(hdr Header, samples []complex128) ([]byte, error) {
	var b bytes.Buffer
	b.Grow(24 + 8*len(samples) + 8)
	if err := Write(&b, hdr, samples); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// Read parses a capture.
func Read(r io.Reader) (Header, []complex128, error) {
	br := bufio.NewReader(r)
	var hdr Header
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return hdr, nil, fmt.Errorf("iqfile: short magic: %w", err)
	}
	if string(magic) != Magic {
		return hdr, nil, fmt.Errorf("iqfile: bad magic %q", magic)
	}
	meta := make([]byte, 4)
	if _, err := io.ReadFull(br, meta); err != nil {
		return hdr, nil, err
	}
	if meta[0] != Version {
		return hdr, nil, fmt.Errorf("iqfile: unsupported version %d", meta[0])
	}
	var buf [8]byte
	get := func() (uint64, error) {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	v, err := get()
	if err != nil {
		return hdr, nil, err
	}
	hdr.SampleRateHz = math.Float64frombits(v)
	if v, err = get(); err != nil {
		return hdr, nil, err
	}
	hdr.CarrierHz = math.Float64frombits(v)
	if hdr.Samples, err = get(); err != nil {
		return hdr, nil, err
	}
	if hdr.Samples > MaxSamples {
		return hdr, nil, fmt.Errorf("iqfile: sample count %d exceeds max", hdr.Samples)
	}
	if hdr.SampleRateHz <= 0 || math.IsNaN(hdr.SampleRateHz) {
		return hdr, nil, fmt.Errorf("iqfile: invalid sample rate %v", hdr.SampleRateHz)
	}
	out := make([]complex128, hdr.Samples)
	var sb [8]byte
	for i := range out {
		if _, err := io.ReadFull(br, sb[:]); err != nil {
			return hdr, nil, fmt.Errorf("iqfile: truncated at sample %d: %w", i, err)
		}
		re := math.Float32frombits(binary.LittleEndian.Uint32(sb[0:4]))
		im := math.Float32frombits(binary.LittleEndian.Uint32(sb[4:8]))
		out[i] = complex(float64(re), float64(im))
	}
	return hdr, out, nil
}
