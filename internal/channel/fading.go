package channel

import (
	"fmt"
	"math"

	"github.com/mmtag/mmtag/internal/rng"
)

// Fading models small-scale variation on top of the deterministic ray
// gains. mmWave links with a dominant (retro-reflected) path are Rician:
// a fixed specular component plus diffuse scatter.
type Fading struct {
	// KdB is the Rician K-factor in dB: the power ratio of the dominant
	// path to the diffuse sum. Typical mmWave LOS: 8–15 dB; K → ∞ is no
	// fading.
	KdB float64
	// DopplerHz sets the fading rate (two-way Doppler spread); the
	// autocorrelation follows Clarke's model.
	DopplerHz float64
}

// Sample returns one complex fading gain (unit mean power).
func (f Fading) Sample(src *rng.Source) complex128 {
	k := math.Pow(10, f.KdB/10)
	// Dominant amplitude and diffuse power normalizing total to 1.
	los := math.Sqrt(k / (k + 1))
	diff := math.Sqrt(1 / (k + 1))
	return complex(los, 0) + complex(diff, 0)*src.ComplexNorm()
}

// Series generates n correlated fading samples at the given sample rate
// using a first-order Gauss–Markov approximation of Clarke's spectrum:
//
//	g[i] = ρ·g[i−1] + √(1−ρ²)·w[i],  ρ = J0(2π·fd·Ts) ≈ exp(−(π·fd·Ts)²)
//
// then offset by the Rician dominant component. Mean power is 1.
func (f Fading) Series(n int, sampleRateHz float64, src *rng.Source) ([]complex128, error) {
	if n <= 0 {
		return nil, fmt.Errorf("channel: fading series length %d", n)
	}
	if sampleRateHz <= 0 {
		return nil, fmt.Errorf("channel: non-positive sample rate")
	}
	k := math.Pow(10, f.KdB/10)
	los := complex(math.Sqrt(k/(k+1)), 0)
	diffAmp := math.Sqrt(1 / (k + 1))
	x := math.Pi * f.DopplerHz / sampleRateHz
	rho := math.Exp(-x * x)
	if f.DopplerHz <= 0 {
		rho = 1
	}
	drive := math.Sqrt(1 - rho*rho)
	out := make([]complex128, n)
	g := src.ComplexNorm()
	for i := 0; i < n; i++ {
		if i > 0 {
			g = complex(rho, 0)*g + complex(drive, 0)*src.ComplexNorm()
		}
		out[i] = los + complex(diffAmp, 0)*g
	}
	return out, nil
}

// CoherenceTimeS returns the approximate channel coherence time
// 0.423/fd (Clarke), or +Inf for a static link.
func (f Fading) CoherenceTimeS() float64 {
	if f.DopplerHz <= 0 {
		return math.Inf(1)
	}
	return 0.423 / f.DopplerHz
}

// FadeMarginDB returns the extra link margin needed so that the received
// power stays above threshold for the given outage probability
// (e.g. 0.01 = 1% outage), computed numerically from the Rician CDF via
// Monte-Carlo sampling (deterministic for a fixed source).
func (f Fading) FadeMarginDB(outage float64, src *rng.Source) (float64, error) {
	if outage <= 0 || outage >= 1 {
		return 0, fmt.Errorf("channel: outage %v out of (0,1)", outage)
	}
	const n = 20000
	powers := make([]float64, n)
	for i := range powers {
		g := f.Sample(src)
		powers[i] = real(g)*real(g) + imag(g)*imag(g)
	}
	// The outage quantile of the power distribution.
	sortFloats(powers)
	q := powers[int(outage*float64(n))]
	if q <= 0 {
		return math.Inf(1), nil
	}
	return -10 * math.Log10(q), nil
}

// sortFloats sorts ascending (heapsort: O(n log n), in place).
func sortFloats(x []float64) {
	n := len(x)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(x, i, n)
	}
	for i := n - 1; i > 0; i-- {
		x[0], x[i] = x[i], x[0]
		siftDown(x, 0, i)
	}
}

func siftDown(x []float64, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && x[child+1] > x[child] {
			child++
		}
		if x[root] >= x[child] {
			return
		}
		x[root], x[child] = x[child], x[root]
		root = child
	}
}

// Apply multiplies a fading series into a signal in place (the shorter
// prefix when lengths differ) and returns it.
func Apply(signal, fading []complex128) []complex128 {
	n := len(signal)
	if len(fading) < n {
		n = len(fading)
	}
	for i := 0; i < n; i++ {
		signal[i] *= fading[i]
	}
	return signal
}

// MeanPower returns the mean power of a fading series (≈ 1 for a
// well-normalized model).
func MeanPower(series []complex128) float64 {
	if len(series) == 0 {
		return 0
	}
	var p float64
	for _, g := range series {
		p += real(g)*real(g) + imag(g)*imag(g)
	}
	return p / float64(len(series))
}
