package channel

import (
	"math"
	"math/cmplx"
	"testing"

	"github.com/mmtag/mmtag/internal/rng"
)

func TestFadingUnitMeanPower(t *testing.T) {
	src := rng.New(1)
	for _, k := range []float64{0, 6, 12, 30} {
		f := Fading{KdB: k}
		var p float64
		const n = 100000
		for i := 0; i < n; i++ {
			g := f.Sample(src)
			p += real(g)*real(g) + imag(g)*imag(g)
		}
		if mean := p / n; math.Abs(mean-1) > 0.02 {
			t.Errorf("K=%g dB: mean power %g, want 1", k, mean)
		}
	}
}

func TestHighKApproachesStatic(t *testing.T) {
	src := rng.New(2)
	f := Fading{KdB: 40}
	for i := 0; i < 100; i++ {
		g := f.Sample(src)
		if cmplx.Abs(g-1) > 0.1 {
			t.Fatalf("K=40 dB sample %v too far from the static gain", g)
		}
	}
}

func TestSeriesCorrelation(t *testing.T) {
	src := rng.New(3)
	// Slow fading: adjacent samples nearly identical. Fast fading:
	// decorrelated.
	slow, err := (Fading{KdB: 0, DopplerHz: 1}).Series(4000, 1e6, src)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := (Fading{KdB: 0, DopplerHz: 4e5}).Series(4000, 1e6, src)
	if err != nil {
		t.Fatal(err)
	}
	// Correlate the *diffuse* part: subtract the series mean so the
	// static Rician dominant term doesn't mask the decorrelation.
	corr := func(x []complex128) float64 {
		var mean complex128
		for _, v := range x {
			mean += v
		}
		mean /= complex(float64(len(x)), 0)
		var num, den complex128
		for i := 1; i < len(x); i++ {
			num += (x[i] - mean) * cmplx.Conj(x[i-1]-mean)
			den += (x[i-1] - mean) * cmplx.Conj(x[i-1]-mean)
		}
		return real(num) / real(den)
	}
	if c := corr(slow); c < 0.99 {
		t.Errorf("slow fading lag-1 correlation %g, want ≈1", c)
	}
	if c := corr(fast); c > 0.35 {
		t.Errorf("fast fading lag-1 correlation %g, want low", c)
	}
	// Mean power ≈ 1 holds in expectation; a fast series averages over
	// many coherence intervals so it converges (a slow one is a single
	// coherence blob and does not).
	if p := MeanPower(fast); math.Abs(p-1) > 0.15 {
		t.Errorf("fast series mean power %g", p)
	}
}

func TestSeriesValidation(t *testing.T) {
	src := rng.New(4)
	if _, err := (Fading{}).Series(0, 1e6, src); err == nil {
		t.Error("zero length should fail")
	}
	if _, err := (Fading{}).Series(10, 0, src); err == nil {
		t.Error("zero sample rate should fail")
	}
}

func TestCoherenceTime(t *testing.T) {
	f := Fading{DopplerHz: 160} // ~1 m/s at 24 GHz two-way
	if got := f.CoherenceTimeS(); math.Abs(got-0.423/160) > 1e-12 {
		t.Errorf("coherence %g", got)
	}
	if !math.IsInf((Fading{}).CoherenceTimeS(), 1) {
		t.Error("static channel coherence should be infinite")
	}
}

func TestFadeMargin(t *testing.T) {
	src := rng.New(5)
	// Strong LOS (K=12 dB): small margin. Rayleigh (K=-inf… use K=-20):
	// large margin at 1% outage (~20 dB for Rayleigh).
	strong, err := (Fading{KdB: 12}).FadeMarginDB(0.01, src)
	if err != nil {
		t.Fatal(err)
	}
	weak, err := (Fading{KdB: -20}).FadeMarginDB(0.01, src)
	if err != nil {
		t.Fatal(err)
	}
	if strong > 6 {
		t.Errorf("K=12 dB margin %g dB too big", strong)
	}
	if weak < 15 {
		t.Errorf("near-Rayleigh margin %g dB too small (theory ≈20)", weak)
	}
	if weak <= strong {
		t.Error("weaker K must need more margin")
	}
	if _, err := (Fading{}).FadeMarginDB(0, src); err == nil {
		t.Error("zero outage should fail")
	}
	if _, err := (Fading{}).FadeMarginDB(1, src); err == nil {
		t.Error("unit outage should fail")
	}
}

func TestApplyAndMeanPower(t *testing.T) {
	sig := []complex128{1, 1, 1}
	fade := []complex128{2, 3i}
	Apply(sig, fade)
	if sig[0] != 2 || sig[1] != 3i || sig[2] != 1 {
		t.Errorf("apply: %v", sig)
	}
	if MeanPower(nil) != 0 {
		t.Error("empty mean power")
	}
}

func TestSortFloats(t *testing.T) {
	x := []float64{3, 1, 2, -5, 10, 0}
	sortFloats(x)
	for i := 1; i < len(x); i++ {
		if x[i] < x[i-1] {
			t.Fatalf("not sorted: %v", x)
		}
	}
}
