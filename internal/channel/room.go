package channel

import (
	"fmt"

	"github.com/mmtag/mmtag/internal/geom"
)

// Material describes a wall's reflection loss.
type Material struct {
	Name   string
	LossDB float64
}

// Common wall materials (one-way bounce loss at 24 GHz).
var (
	Metal    = Material{Name: "metal", LossDB: 1}
	Drywall  = Material{Name: "drywall", LossDB: 6}
	Concrete = Material{Name: "concrete", LossDB: 12}
	Glass    = Material{Name: "glass", LossDB: 8}
)

// NewRoom returns an environment bounded by a w×h rectangular room whose
// four walls are reflectors of the given material. The room spans
// x ∈ [x0, x0+w], y ∈ [y0, y0+h]; place the reader and tags inside it.
// Every wall reflects, so any indoor scene has the §4 NLOS fallbacks
// built in.
func NewRoom(x0, y0, w, h float64, mat Material) (*Environment, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("channel: room %gx%g must have positive extent", w, h)
	}
	env := NewFreeSpace()
	corners := []geom.Vec{
		{X: x0, Y: y0},
		{X: x0 + w, Y: y0},
		{X: x0 + w, Y: y0 + h},
		{X: x0, Y: y0 + h},
	}
	for i := range corners {
		env.Reflectors = append(env.Reflectors, Reflector{
			Surface: geom.Segment{A: corners[i], B: corners[(i+1)%4]},
			LossDB:  mat.LossDB,
		})
	}
	return env, nil
}

// AddObstacle drops a blocking segment (cabinet, person, pillar) into the
// environment.
func (e *Environment) AddObstacle(a, b geom.Vec) {
	e.Blockers = append(e.Blockers, geom.Segment{A: a, B: b})
}

// RayCount classifies the resolved paths between two points.
func (e *Environment) RayCount(src, dst geom.Vec) (los, nlos int) {
	for _, r := range e.Rays(src, dst) {
		if r.Kind == LOS {
			los++
		} else {
			nlos++
		}
	}
	return los, nlos
}
