// Package channel models mmWave propagation for the backscatter link:
// free-space one-way and two-way (reader → tag → reader) path gains with
// carrier phase, single-bounce NLOS rays built by the image method
// (paper §4: "when the line-of-sight path is blocked, the tag and the
// reader chooses an NLOS path to communicate"), blockage, atmospheric
// absorption, and thermal noise parameters for the receiver.
package channel

import (
	"fmt"
	"math"
	"math/cmplx"

	"github.com/mmtag/mmtag/internal/geom"
	"github.com/mmtag/mmtag/internal/units"
)

// Environment is the propagation scene: frequency, reflectors, blockers
// and atmospheric loss.
type Environment struct {
	// FreqHz is the carrier frequency (paper: 24 GHz).
	FreqHz float64
	// Reflectors are surfaces that create single-bounce NLOS paths.
	Reflectors []Reflector
	// Blockers are obstacles that cut any ray crossing them.
	Blockers []geom.Segment
	// AtmosphericDBpKm is the extra absorption in dB/km (≈ 0.1 dB/km at
	// 24 GHz; only matters at long range but modeled for completeness).
	AtmosphericDBpKm float64
}

// Reflector is a wall or panel with a reflection loss.
type Reflector struct {
	Surface geom.Segment
	// LossDB is the power lost at the bounce (6 dB drywall, ~1 dB metal).
	LossDB float64
}

// NewFreeSpace returns an empty 24 GHz environment.
func NewFreeSpace() *Environment {
	return &Environment{FreqHz: 24e9}
}

// Wavelength returns the carrier wavelength in meters.
func (e *Environment) Wavelength() float64 { return units.Wavelength(e.FreqHz) }

// Ray is one resolved propagation path between two points.
type Ray struct {
	// Kind distinguishes the direct path from bounces.
	Kind RayKind
	// LengthM is the total traversed distance.
	LengthM float64
	// Gain is the complex amplitude gain of the path, including spreading
	// loss, bounce loss, absorption and carrier phase.
	Gain complex128
	// DepartureRad and ArrivalRad are the ray's angles at the two
	// endpoints (global frame), needed to apply antenna patterns.
	DepartureRad float64
	ArrivalRad   float64
	// Via is the bounce point for NLOS rays.
	Via geom.Vec
}

// RayKind labels a ray.
type RayKind int

// Ray kinds.
const (
	LOS RayKind = iota
	NLOS
)

// String returns the ray kind name.
func (k RayKind) String() string {
	if k == LOS {
		return "LOS"
	}
	return "NLOS"
}

// pathAmplitude returns the one-way complex gain for a path of length l:
// (λ/4πl)·e^{−j2πl/λ}, times absorption.
func (e *Environment) pathAmplitude(l float64) complex128 {
	if l <= 0 {
		return 0
	}
	lambda := e.Wavelength()
	amp := lambda / (4 * math.Pi * l)
	if e.AtmosphericDBpKm > 0 {
		amp *= math.Pow(10, -e.AtmosphericDBpKm*(l/1000)/20)
	}
	return cmplx.Rect(amp, -2*math.Pi*l/lambda)
}

// blocked reports whether the straight segment p→q is cut by any blocker.
func (e *Environment) blocked(p, q geom.Vec) bool {
	for _, b := range e.Blockers {
		if b.Blocks(p, q) {
			return true
		}
	}
	return false
}

// Rays resolves all propagation paths from src to dst: the direct ray (if
// unblocked) plus one ray per reflector with a valid, unblocked bounce.
func (e *Environment) Rays(src, dst geom.Vec) []Ray {
	var rays []Ray
	if !e.blocked(src, dst) {
		d := dst.Sub(src)
		l := d.Norm()
		if l > 0 {
			rays = append(rays, Ray{
				Kind:         LOS,
				LengthM:      l,
				Gain:         e.pathAmplitude(l),
				DepartureRad: d.Angle(),
				ArrivalRad:   d.Scale(-1).Angle(),
			})
		}
	}
	for _, r := range e.Reflectors {
		pt, ok := r.Surface.ReflectionPoint(src, dst)
		if !ok {
			continue
		}
		if e.blocked(src, pt) || e.blocked(pt, dst) {
			continue
		}
		l := src.Dist(pt) + pt.Dist(dst)
		g := e.pathAmplitude(l) * complex(math.Pow(10, -r.LossDB/20), 0)
		rays = append(rays, Ray{
			Kind:         NLOS,
			LengthM:      l,
			Gain:         g,
			DepartureRad: pt.Sub(src).Angle(),
			ArrivalRad:   pt.Sub(dst).Angle(),
			Via:          pt,
		})
	}
	return rays
}

// BestRay returns the strongest ray from src to dst, or ok=false if the
// link is completely severed.
func (e *Environment) BestRay(src, dst geom.Vec) (Ray, bool) {
	rays := e.Rays(src, dst)
	if len(rays) == 0 {
		return Ray{}, false
	}
	best := rays[0]
	for _, r := range rays[1:] {
		if cmplx.Abs(r.Gain) > cmplx.Abs(best.Gain) {
			best = r
		}
	}
	return best, true
}

// OneWayGainDB returns the total power gain in dB of the best path between
// two points (−∞ if severed).
func (e *Environment) OneWayGainDB(src, dst geom.Vec) float64 {
	r, ok := e.BestRay(src, dst)
	if !ok {
		return math.Inf(-1)
	}
	return 20 * math.Log10(cmplx.Abs(r.Gain))
}

// TwoWayGain composes the backscatter round trip over a single ray choice:
// the forward ray's complex gain times the reverse ray's. By reciprocity
// the reverse ray retraces the forward one — this symmetry is exactly why
// the Van Atta tag's "reflect toward the arrival direction" solves beam
// alignment (paper §5.2: "due to the symmetry of forward and backward
// channels in backscatter communication, the best direction for these two
// beams are the same").
func (e *Environment) TwoWayGain(reader, tag geom.Vec) (complex128, Ray, bool) {
	r, ok := e.BestRay(reader, tag)
	if !ok {
		return 0, Ray{}, false
	}
	return r.Gain * r.Gain, r, true
}

// Validate checks the environment for obvious misconfiguration.
func (e *Environment) Validate() error {
	if e.FreqHz <= 0 {
		return fmt.Errorf("channel: non-positive carrier frequency %v", e.FreqHz)
	}
	for i, r := range e.Reflectors {
		if r.Surface.Length() == 0 {
			return fmt.Errorf("channel: reflector %d has zero extent", i)
		}
		if r.LossDB < 0 {
			return fmt.Errorf("channel: reflector %d has negative loss", i)
		}
	}
	return nil
}

// DopplerHz returns the two-way Doppler shift for a tag moving with
// radial velocity v m/s (positive = receding): f_d = −2v/λ.
func (e *Environment) DopplerHz(radialVelocity float64) float64 {
	return -2 * radialVelocity / e.Wavelength()
}
