package channel

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"github.com/mmtag/mmtag/internal/geom"
	"github.com/mmtag/mmtag/internal/units"
)

func TestLOSGainMatchesFriis(t *testing.T) {
	e := NewFreeSpace()
	src := geom.Vec{X: 0, Y: 0}
	for _, d := range []float64{0.5, 1, 2, 5} {
		dst := geom.Vec{X: d, Y: 0}
		got := e.OneWayGainDB(src, dst)
		want := -units.FSPLDB(d, e.Wavelength())
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("d=%g: %g vs Friis %g", d, got, want)
		}
	}
}

func TestPathPhaseAdvances(t *testing.T) {
	e := NewFreeSpace()
	lambda := e.Wavelength()
	// Moving the endpoint by λ/2 flips the carrier phase by π.
	r1, _ := e.BestRay(geom.Vec{}, geom.Vec{X: 1, Y: 0})
	r2, _ := e.BestRay(geom.Vec{}, geom.Vec{X: 1 + lambda/2, Y: 0})
	dphi := math.Abs(geomWrap(cmplx.Phase(r2.Gain) - cmplx.Phase(r1.Gain)))
	if math.Abs(dphi-math.Pi) > 1e-6 {
		t.Errorf("phase advance %g, want π", dphi)
	}
}

func geomWrap(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

func TestTwoWayGainIsSquared(t *testing.T) {
	e := NewFreeSpace()
	reader := geom.Vec{}
	f := func(raw float64) bool {
		d := 0.3 + math.Mod(math.Abs(raw), 5)
		tag := geom.Vec{X: d, Y: 0}
		g2, _, ok := e.TwoWayGain(reader, tag)
		if !ok {
			return false
		}
		r, _ := e.BestRay(reader, tag)
		return cmplx.Abs(g2-r.Gain*r.Gain) < 1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTwoWaySlope40dBPerDecade(t *testing.T) {
	e := NewFreeSpace()
	g1, _, _ := e.TwoWayGain(geom.Vec{}, geom.Vec{X: 1, Y: 0})
	g10, _, _ := e.TwoWayGain(geom.Vec{}, geom.Vec{X: 10, Y: 0})
	slope := 20 * math.Log10(cmplx.Abs(g1)/cmplx.Abs(g10))
	if math.Abs(slope-40) > 1e-6 {
		t.Errorf("two-way slope %g dB/decade, want 40", slope)
	}
}

func TestBlockageSeversLOS(t *testing.T) {
	e := NewFreeSpace()
	e.Blockers = []geom.Segment{{A: geom.Vec{X: 1, Y: -1}, B: geom.Vec{X: 1, Y: 1}}}
	if _, ok := e.BestRay(geom.Vec{}, geom.Vec{X: 2, Y: 0}); ok {
		t.Error("blocked link should have no rays")
	}
	if g := e.OneWayGainDB(geom.Vec{}, geom.Vec{X: 2, Y: 0}); !math.IsInf(g, -1) {
		t.Errorf("blocked gain %g", g)
	}
}

func TestNLOSRescuesBlockedLink(t *testing.T) {
	// Paper §4: with LOS blocked, communication continues via a
	// reflector.
	e := NewFreeSpace()
	e.Blockers = []geom.Segment{{A: geom.Vec{X: 1, Y: -0.5}, B: geom.Vec{X: 1, Y: 0.5}}}
	e.Reflectors = []Reflector{{
		Surface: geom.Segment{A: geom.Vec{X: -5, Y: 2}, B: geom.Vec{X: 7, Y: 2}},
		LossDB:  6,
	}}
	ray, ok := e.BestRay(geom.Vec{}, geom.Vec{X: 2, Y: 0})
	if !ok {
		t.Fatal("NLOS path should exist")
	}
	if ray.Kind != NLOS {
		t.Fatalf("expected NLOS ray, got %v", ray.Kind)
	}
	// Bounce point on the wall, path longer than direct.
	if math.Abs(ray.Via.Y-2) > 1e-9 {
		t.Errorf("bounce at %v, want on the y=2 wall", ray.Via)
	}
	if ray.LengthM <= 2 {
		t.Errorf("NLOS length %g should exceed direct 2 m", ray.LengthM)
	}
	// NLOS gain = spreading at full path length + bounce loss.
	wantDB := -units.FSPLDB(ray.LengthM, e.Wavelength()) - 6
	gotDB := 20 * math.Log10(cmplx.Abs(ray.Gain))
	if math.Abs(gotDB-wantDB) > 1e-9 {
		t.Errorf("NLOS gain %g, want %g", gotDB, wantDB)
	}
}

func TestLOSBeatsNLOSWhenBothExist(t *testing.T) {
	e := NewFreeSpace()
	e.Reflectors = []Reflector{{
		Surface: geom.Segment{A: geom.Vec{X: -5, Y: 3}, B: geom.Vec{X: 7, Y: 3}},
		LossDB:  1,
	}}
	ray, ok := e.BestRay(geom.Vec{}, geom.Vec{X: 2, Y: 0})
	if !ok || ray.Kind != LOS {
		t.Errorf("LOS should win: %+v ok=%v", ray, ok)
	}
	if len(e.Rays(geom.Vec{}, geom.Vec{X: 2, Y: 0})) != 2 {
		t.Error("both rays should be resolved")
	}
}

func TestRayAngles(t *testing.T) {
	e := NewFreeSpace()
	ray, _ := e.BestRay(geom.Vec{}, geom.Vec{X: 1, Y: 1})
	if math.Abs(ray.DepartureRad-math.Pi/4) > 1e-12 {
		t.Errorf("departure %g", ray.DepartureRad)
	}
	if math.Abs(geomWrap(ray.ArrivalRad-(-3*math.Pi/4))) > 1e-12 {
		t.Errorf("arrival %g", ray.ArrivalRad)
	}
}

func TestAtmosphericLoss(t *testing.T) {
	dry := NewFreeSpace()
	wet := NewFreeSpace()
	wet.AtmosphericDBpKm = 1000 // absurdly lossy to make it visible at 3 m
	g1 := dry.OneWayGainDB(geom.Vec{}, geom.Vec{X: 3, Y: 0})
	g2 := wet.OneWayGainDB(geom.Vec{}, geom.Vec{X: 3, Y: 0})
	if math.Abs((g1-g2)-3) > 1e-9 {
		t.Errorf("absorption over 3 m at 1000 dB/km: %g dB, want 3", g1-g2)
	}
}

func TestValidate(t *testing.T) {
	e := NewFreeSpace()
	if err := e.Validate(); err != nil {
		t.Errorf("clean env: %v", err)
	}
	e.FreqHz = 0
	if err := e.Validate(); err == nil {
		t.Error("zero frequency should fail")
	}
	e = NewFreeSpace()
	e.Reflectors = []Reflector{{Surface: geom.Segment{}}}
	if err := e.Validate(); err == nil {
		t.Error("degenerate reflector should fail")
	}
	e.Reflectors = []Reflector{{Surface: geom.Segment{B: geom.Vec{X: 1}}, LossDB: -2}}
	if err := e.Validate(); err == nil {
		t.Error("negative loss should fail")
	}
}

func TestDoppler(t *testing.T) {
	e := NewFreeSpace()
	// 1 m/s receding at 24 GHz: f_d = −2·1/0.0125 ≈ −160 Hz.
	fd := e.DopplerHz(1)
	if math.Abs(fd+160.1) > 0.5 {
		t.Errorf("Doppler %g Hz, want ≈ −160", fd)
	}
	if e.DopplerHz(-1) != -fd {
		t.Error("Doppler should be antisymmetric in velocity")
	}
}

func TestZeroDistance(t *testing.T) {
	e := NewFreeSpace()
	if rays := e.Rays(geom.Vec{}, geom.Vec{}); len(rays) != 0 {
		t.Error("coincident endpoints should yield no rays")
	}
}

func TestRayKindString(t *testing.T) {
	if LOS.String() != "LOS" || NLOS.String() != "NLOS" {
		t.Fatalf("RayKind names: %q %q", LOS.String(), NLOS.String())
	}
}
