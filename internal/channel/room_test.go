package channel

import (
	"math"
	"testing"

	"github.com/mmtag/mmtag/internal/geom"
)

func TestNewRoom(t *testing.T) {
	env, err := NewRoom(-1, -2, 6, 4, Drywall)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(env.Reflectors) != 4 {
		t.Fatalf("walls %d", len(env.Reflectors))
	}
	for _, r := range env.Reflectors {
		if r.LossDB != Drywall.LossDB {
			t.Error("wall material not applied")
		}
	}
	// Interior link: 1 LOS + 4 single-bounce NLOS paths.
	los, nlos := env.RayCount(geom.Vec{X: 0, Y: 0}, geom.Vec{X: 3, Y: 0.5})
	if los != 1 {
		t.Errorf("LOS count %d", los)
	}
	if nlos != 4 {
		t.Errorf("NLOS count %d, want 4 (one per wall)", nlos)
	}
	if _, err := NewRoom(0, 0, 0, 4, Metal); err == nil {
		t.Error("degenerate room should fail")
	}
}

func TestRoomObstacleFallsBackToWalls(t *testing.T) {
	env, _ := NewRoom(-1, -2, 8, 4, Metal)
	src := geom.Vec{X: 0, Y: 0}
	dst := geom.Vec{X: 4, Y: 0}
	env.AddObstacle(geom.Vec{X: 2, Y: -0.5}, geom.Vec{X: 2, Y: 0.5})
	los, nlos := env.RayCount(src, dst)
	if los != 0 {
		t.Error("obstacle should cut LOS")
	}
	if nlos == 0 {
		t.Error("walls should still provide bounces")
	}
	best, ok := env.BestRay(src, dst)
	if !ok || best.Kind != NLOS {
		t.Fatalf("best ray: %+v ok=%v", best, ok)
	}
	// The bounce must be longer than the direct 4 m but bounded by the
	// room geometry.
	if best.LengthM <= 4 || best.LengthM > 12 {
		t.Errorf("bounce length %g", best.LengthM)
	}
}

func TestMaterialsOrdering(t *testing.T) {
	// Loss ordering: metal < drywall < glass < concrete.
	if !(Metal.LossDB < Drywall.LossDB && Drywall.LossDB < Glass.LossDB && Glass.LossDB < Concrete.LossDB) {
		t.Error("material losses out of order")
	}
	for _, m := range []Material{Metal, Drywall, Glass, Concrete} {
		if m.Name == "" || m.LossDB < 0 {
			t.Errorf("material %+v", m)
		}
	}
}

func TestRoomLinkBudgetSanity(t *testing.T) {
	// In a metal room the strongest wall bounce is within ~20 dB of LOS
	// for a short link (geometry-dependent but bounded).
	env, _ := NewRoom(-1, -2, 6, 4, Metal)
	src := geom.Vec{X: 0, Y: 0}
	dst := geom.Vec{X: 2, Y: 0}
	rays := env.Rays(src, dst)
	var losDB, bestNLOSDB float64
	bestNLOSDB = math.Inf(-1)
	for _, r := range rays {
		db := 20 * math.Log10(absC(r.Gain))
		if r.Kind == LOS {
			losDB = db
		} else if db > bestNLOSDB {
			bestNLOSDB = db
		}
	}
	if losDB <= bestNLOSDB {
		t.Error("LOS should beat every bounce")
	}
	if losDB-bestNLOSDB > 25 {
		t.Errorf("best bounce %g dB below LOS — implausible in a small metal room", losDB-bestNLOSDB)
	}
}

func absC(c complex128) float64 {
	re, im := real(c), imag(c)
	return math.Hypot(re, im)
}
