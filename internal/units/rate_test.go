package units

import (
	"math"
	"testing"
)

func TestPaperBandwidthRates(t *testing.T) {
	// The three Fig. 7 annotations: 2 GHz ⇒ 1 Gb/s, 200 MHz ⇒ 100 Mb/s,
	// 20 MHz ⇒ 10 Mb/s.
	want := map[string]float64{
		"2 GHz":   1e9,
		"200 MHz": 1e8,
		"20 MHz":  1e7,
	}
	for _, b := range PaperBandwidths() {
		if got := b.BitRate(); got != want[b.Label] {
			t.Errorf("%s: rate %g, want %g", b.Label, got, want[b.Label])
		}
	}
}

func TestAchievableRateThresholds(t *testing.T) {
	bws := PaperBandwidths()
	// Exactly at the 2 GHz threshold (floor −75.8 + 7 dB ≈ −68.8 dBm) the
	// link must carry 1 Gb/s.
	thresh2G := NoiseFloorDBm(RoomTemperatureK, 2*GHz, 5) + ASKRequiredSNRdB
	rate, bw, ok := AchievableRate(thresh2G+0.01, RoomTemperatureK, 5, bws)
	if !ok || rate != 1e9 || bw.Label != "2 GHz" {
		t.Errorf("just above 2GHz threshold: got %v %v %v", rate, bw.Label, ok)
	}
	// Just below it, the best is 100 Mb/s.
	rate, bw, ok = AchievableRate(thresh2G-0.01, RoomTemperatureK, 5, bws)
	if !ok || rate != 1e8 || bw.Label != "200 MHz" {
		t.Errorf("just below 2GHz threshold: got %v %v %v", rate, bw.Label, ok)
	}
	// Below even the 20 MHz threshold there is no link.
	thresh20M := NoiseFloorDBm(RoomTemperatureK, 20*MHz, 5) + ASKRequiredSNRdB
	if _, _, ok := AchievableRate(thresh20M-0.01, RoomTemperatureK, 5, bws); ok {
		t.Error("expected no link below the narrowest-bandwidth threshold")
	}
}

func TestContinuousRateEnvelope(t *testing.T) {
	// The continuous rate must always be ≥ the discrete table's rate and
	// scale 10× per 10 dB of extra signal power.
	bws := PaperBandwidths()
	for pr := -95.0; pr <= -40; pr += 2.5 {
		cont := ContinuousAchievableRate(pr, RoomTemperatureK, 5)
		disc, _, ok := AchievableRate(pr, RoomTemperatureK, 5, bws)
		if ok && cont < disc {
			t.Errorf("pr=%g: continuous %g < discrete %g", pr, cont, disc)
		}
	}
	r1 := ContinuousAchievableRate(-70, RoomTemperatureK, 5)
	r2 := ContinuousAchievableRate(-60, RoomTemperatureK, 5)
	if math.Abs(r2/r1-10) > 1e-9 {
		t.Errorf("continuous rate should scale 10x per 10 dB: %g vs %g", r1, r2)
	}
}

func TestFormatRate(t *testing.T) {
	cases := []struct {
		bps  float64
		want string
	}{
		{0, "no link"},
		{1e9, "1.00 Gb/s"},
		{1e8, "100.00 Mb/s"},
		{1e7, "10.00 Mb/s"},
		{2500, "2.50 kb/s"},
		{300, "300 b/s"},
		// A NaN rate (a driver bug upstream) must render as a
		// placeholder, never leak "NaN b/s" into a table cell.
		{math.NaN(), "n/a"},
	}
	for _, c := range cases {
		if got := FormatRate(c.bps); got != c.want {
			t.Errorf("FormatRate(%g) = %q, want %q", c.bps, got, c.want)
		}
	}
}

func TestShannonCapacity(t *testing.T) {
	// At 0 dB SNR: exactly 1 bit/s/Hz.
	if got := ShannonCapacityBps(1e6, 0); math.Abs(got-1e6) > 1 {
		t.Errorf("0 dB capacity %g", got)
	}
	// The paper's operating point: 2 GHz at 7 dB ⇒ log2(1+5.01) ≈ 2.59
	// bits/s/Hz ⇒ ≈5.18 Gb/s ceiling vs the OOK table's 1 Gb/s (the
	// backscatter-modulator gap).
	c := ShannonCapacityBps(2e9, 7)
	if c < 5.0e9 || c > 5.4e9 {
		t.Errorf("2 GHz @7 dB capacity %g", c)
	}
	if ShannonCapacityBps(2e9, 7) <= 1e9 {
		t.Error("Shannon must upper-bound the OOK table")
	}
	if ShannonCapacityBps(0, 10) != 0 {
		t.Error("zero bandwidth")
	}
	// Monotone in both arguments.
	if ShannonCapacityBps(1e6, 10) <= ShannonCapacityBps(1e6, 5) {
		t.Error("not monotone in SNR")
	}
	if ShannonCapacityBps(2e6, 5) <= ShannonCapacityBps(1e6, 5) {
		t.Error("not monotone in bandwidth")
	}
}
