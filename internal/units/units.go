// Package units provides the physical units, constants and radio-frequency
// arithmetic used throughout the mmtag simulator: decibel conversions,
// power and frequency units, wavelength and wavenumber helpers, thermal
// noise, path-loss equations (one-way Friis and two-way backscatter), and
// the Gaussian tail functions needed for analytic bit-error rates.
//
// Conventions:
//   - Linear power quantities are in watts, powers in dB-milliwatt are
//     explicitly named dBm.
//   - Ratios named "dB" are power ratios (10·log10); amplitude ratios use
//     the explicit Amp variants (20·log10).
//   - Distances are in meters unless a function name says feet.
package units

import "math"

// Physical constants (SI).
const (
	// SpeedOfLight is the speed of light in vacuum, m/s.
	SpeedOfLight = 299_792_458.0
	// Boltzmann is the Boltzmann constant, J/K.
	Boltzmann = 1.380649e-23
	// RoomTemperatureK is the reference temperature used by the paper's
	// noise-floor computation (300 K).
	RoomTemperatureK = 300.0
)

// Frequency helpers.
const (
	Hz  = 1.0
	KHz = 1e3
	MHz = 1e6
	GHz = 1e9
)

// Distance conversion.
const (
	// MetersPerFoot converts feet to meters.
	MetersPerFoot = 0.3048
)

// FeetToMeters converts a distance in feet to meters.
func FeetToMeters(ft float64) float64 { return ft * MetersPerFoot }

// MetersToFeet converts a distance in meters to feet.
func MetersToFeet(m float64) float64 { return m / MetersPerFoot }

// Wavelength returns the free-space wavelength in meters for frequency f
// in Hz.
func Wavelength(f float64) float64 { return SpeedOfLight / f }

// Wavenumber returns the free-space wavenumber K0 = 2π/λ in rad/m for
// frequency f in Hz (the K0 of paper Eq. 1).
func Wavenumber(f float64) float64 { return 2 * math.Pi / Wavelength(f) }

// DB converts a linear power ratio to decibels.
func DB(ratio float64) float64 { return 10 * math.Log10(ratio) }

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }

// AmpDB converts a linear amplitude ratio to decibels (20·log10).
func AmpDB(ratio float64) float64 { return 20 * math.Log10(ratio) }

// FromAmpDB converts decibels to a linear amplitude ratio.
func FromAmpDB(db float64) float64 { return math.Pow(10, db/20) }

// WattsToDBm converts power in watts to dBm.
func WattsToDBm(w float64) float64 { return 10 * math.Log10(w*1000) }

// DBmToWatts converts power in dBm to watts.
func DBmToWatts(dbm float64) float64 { return math.Pow(10, dbm/10) / 1000 }

// ThermalNoiseDensityDBmHz returns the one-sided thermal noise power
// spectral density kT in dBm/Hz at temperature t kelvin.
// At 300 K this is ≈ −173.83 dBm/Hz.
func ThermalNoiseDensityDBmHz(t float64) float64 {
	return WattsToDBm(Boltzmann * t)
}

// NoiseFloorDBm returns the receiver noise floor in dBm for a bandwidth of
// bw Hz, temperature t kelvin and a receiver noise figure nfDB in dB:
//
//	N = kTB · NF.
//
// This is exactly the quantity plotted as "Noise Floor" in paper Fig. 7
// (NF = 5 dB, T = 300 K).
func NoiseFloorDBm(t, bw, nfDB float64) float64 {
	return ThermalNoiseDensityDBmHz(t) + DB(bw) + nfDB
}

// FSPLDB returns the one-way free-space path loss in dB for range r meters
// at wavelength lambda meters: (4πr/λ)².
func FSPLDB(r, lambda float64) float64 {
	if r <= 0 {
		return 0
	}
	return 20 * math.Log10(4*math.Pi*r/lambda)
}

// FriisReceivedDBm returns the one-way received power in dBm:
//
//	Pr = Pt + Gt + Gr − FSPL(r).
//
// ptDBm is the transmit power, gtDB/grDB the antenna gains in dBi.
func FriisReceivedDBm(ptDBm, gtDB, grDB, r, lambda float64) float64 {
	return ptDBm + gtDB + grDB - FSPLDB(r, lambda)
}

// BackscatterReceivedDBm returns the two-way (reader → tag → reader)
// received power in dBm for a monostatic backscatter link:
//
//	Pr = Pt + Gt + Gr + 2·Gtag + 40·log10(λ/4π) − 40·log10(r) − Ltag
//
// where gtagDB is the tag's retrodirective aperture gain (appearing twice:
// once on receive, once on re-radiation) and tagLossDB lumps the tag's
// conversion, modulation and implementation losses. The R⁻⁴ decay is the
// defining shape of paper Fig. 7.
func BackscatterReceivedDBm(ptDBm, gtDB, grDB, gtagDB, tagLossDB, r, lambda float64) float64 {
	if r <= 0 {
		r = 1e-9
	}
	return ptDBm + gtDB + grDB + 2*gtagDB +
		40*math.Log10(lambda/(4*math.Pi)) - 40*math.Log10(r) - tagLossDB
}

// BackscatterRangeForPowerM inverts BackscatterReceivedDBm: it returns the
// range r in meters at which the two-way received power equals prDBm.
func BackscatterRangeForPowerM(ptDBm, gtDB, grDB, gtagDB, tagLossDB, prDBm, lambda float64) float64 {
	exp := (ptDBm + gtDB + grDB + 2*gtagDB + 40*math.Log10(lambda/(4*math.Pi)) - tagLossDB - prDBm) / 40
	return math.Pow(10, exp)
}

// RadarCrossSectionReceivedDBm returns the two-way received power using the
// classical radar range equation with an explicit radar cross section σ
// (m²) instead of a tag gain:
//
//	Pr = Pt·Gt·Gr·λ²·σ / ((4π)³·r⁴)
func RadarCrossSectionReceivedDBm(ptDBm, gtDB, grDB, sigma, r, lambda float64) float64 {
	if r <= 0 {
		r = 1e-9
	}
	return ptDBm + gtDB + grDB + DB(lambda*lambda*sigma) -
		DB(math.Pow(4*math.Pi, 3)) - 40*math.Log10(r)
}

// ApertureGainDB returns the gain in dBi of an effective aperture a (m²)
// at wavelength lambda: G = 4πA/λ².
func ApertureGainDB(a, lambda float64) float64 {
	return DB(4 * math.Pi * a / (lambda * lambda))
}

// GainToApertureM2 returns the effective aperture (m²) of an antenna with
// gain gDB dBi at wavelength lambda: A = Gλ²/4π.
func GainToApertureM2(gDB, lambda float64) float64 {
	return FromDB(gDB) * lambda * lambda / (4 * math.Pi)
}

// Q is the Gaussian tail function Q(x) = P(N(0,1) > x).
func Q(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// QInv returns the inverse of the Gaussian tail function: x such that
// Q(x) = p, for 0 < p < 1. It uses bisection on the monotone Q and is
// accurate to ~1e-12, more than enough for BER thresholds.
func QInv(p float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	if p >= 1 {
		return math.Inf(-1)
	}
	lo, hi := -40.0, 40.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if Q(mid) > p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// SNRdB returns the signal-to-noise ratio in dB given signal and noise
// powers in dBm.
func SNRdB(signalDBm, noiseDBm float64) float64 { return signalDBm - noiseDBm }

// DegToRad converts degrees to radians.
func DegToRad(d float64) float64 { return d * math.Pi / 180 }

// RadToDeg converts radians to degrees.
func RadToDeg(r float64) float64 { return r * 180 / math.Pi }

// FCC Part 15.249 field-strength limit for the 24.0–24.25 GHz ISM band,
// expressed as EIRP: 2500 mV/m at 3 m corresponds to ≈ +32.7 dBm EIRP
// (the paper's §1 cites Title 47 [6] as the regulatory basis for the
// band).
const FCC15249EIRPLimitDBm = 32.7

// EIRPdBm returns the effective isotropic radiated power of a
// transmitter with output ptDBm behind an antenna of gain gDBi.
func EIRPdBm(ptDBm, gDBi float64) float64 { return ptDBm + gDBi }

// FCCCompliant24GHz reports whether a 24 GHz ISM transmitter meets the
// Part 15.249 EIRP limit.
func FCCCompliant24GHz(ptDBm, gDBi float64) bool {
	return EIRPdBm(ptDBm, gDBi) <= FCC15249EIRPLimitDBm
}
