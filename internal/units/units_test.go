package units

import (
	"math"
	"testing"
	"testing/quick"
)

func near(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %g, want %g (±%g)", msg, got, want, tol)
	}
}

func TestDBRoundTrip(t *testing.T) {
	f := func(db float64) bool {
		db = math.Mod(db, 200) // keep in a numerically sane range
		return math.Abs(DB(FromDB(db))-db) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAmpDBRoundTrip(t *testing.T) {
	f := func(db float64) bool {
		db = math.Mod(db, 200)
		return math.Abs(AmpDB(FromAmpDB(db))-db) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDBmRoundTrip(t *testing.T) {
	f := func(dbm float64) bool {
		dbm = math.Mod(dbm, 200)
		return math.Abs(WattsToDBm(DBmToWatts(dbm))-dbm) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKnownPowers(t *testing.T) {
	near(t, WattsToDBm(0.020), 13.01, 0.01, "20 mW (the paper's reader TX power)")
	near(t, WattsToDBm(1), 30, 1e-12, "1 W")
	near(t, DBmToWatts(0), 0.001, 1e-15, "0 dBm")
}

func TestFeetMeters(t *testing.T) {
	near(t, FeetToMeters(10), 3.048, 1e-12, "10 ft")
	f := func(ft float64) bool {
		ft = math.Mod(ft, 1e6)
		return math.Abs(MetersToFeet(FeetToMeters(ft))-ft) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWavelength24GHz(t *testing.T) {
	lambda := Wavelength(24 * GHz)
	near(t, lambda, 0.012491, 1e-5, "24 GHz wavelength")
	// K0·(λ/2)·sin(θ) must reduce to π·sin(θ): the simplification behind
	// paper Eq. 2.
	k0 := Wavenumber(24 * GHz)
	near(t, k0*lambda/2, math.Pi, 1e-9, "K0·d with d = λ/2")
}

func TestThermalNoise(t *testing.T) {
	// kT at 300 K ≈ −173.83 dBm/Hz.
	near(t, ThermalNoiseDensityDBmHz(300), -173.83, 0.02, "kT at 300 K")
	// Paper Fig. 7 noise floors (T = 300 K, NF = 5 dB).
	near(t, NoiseFloorDBm(300, 20*MHz, 5), -95.8, 0.1, "20 MHz floor")
	near(t, NoiseFloorDBm(300, 200*MHz, 5), -85.8, 0.1, "200 MHz floor")
	near(t, NoiseFloorDBm(300, 2*GHz, 5), -75.8, 0.1, "2 GHz floor")
}

func TestFSPLMonotone(t *testing.T) {
	lambda := Wavelength(24 * GHz)
	prev := FSPLDB(0.1, lambda)
	for r := 0.2; r < 100; r *= 2 {
		cur := FSPLDB(r, lambda)
		if cur <= prev {
			t.Fatalf("FSPL not increasing at r=%g", r)
		}
		// Doubling range adds exactly 6.02 dB.
		near(t, cur-prev, 6.0206, 1e-3, "FSPL slope per octave")
		prev = cur
	}
}

func TestBackscatterSlopeR4(t *testing.T) {
	lambda := Wavelength(24 * GHz)
	p1 := BackscatterReceivedDBm(13, 20, 20, 12, 24, 1, lambda)
	p2 := BackscatterReceivedDBm(13, 20, 20, 12, 24, 2, lambda)
	// Two-way link: doubling range costs 40·log10(2) ≈ 12.04 dB.
	near(t, p1-p2, 12.0412, 1e-3, "R⁻⁴ slope")
}

func TestBackscatterRangeInverse(t *testing.T) {
	lambda := Wavelength(24 * GHz)
	f := func(rRaw float64) bool {
		r := 0.5 + math.Mod(math.Abs(rRaw), 10)
		pr := BackscatterReceivedDBm(13, 20, 20, 12, 24, r, lambda)
		rBack := BackscatterRangeForPowerM(13, 20, 20, 12, 24, pr, lambda)
		return math.Abs(rBack-r) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApertureGainRoundTrip(t *testing.T) {
	lambda := Wavelength(24 * GHz)
	f := func(gRaw float64) bool {
		g := math.Mod(math.Abs(gRaw), 40)
		a := GainToApertureM2(g, lambda)
		return math.Abs(ApertureGainDB(a, lambda)-g) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQFunction(t *testing.T) {
	near(t, Q(0), 0.5, 1e-12, "Q(0)")
	near(t, Q(3.0902), 1e-3, 2e-5, "Q(3.09) ≈ 1e-3")
	if Q(5) >= Q(4) {
		t.Error("Q must be decreasing")
	}
	// Inverse round trip.
	for _, p := range []float64{0.4, 1e-2, 1e-3, 1e-6} {
		x := QInv(p)
		near(t, Q(x), p, p*1e-6+1e-15, "Q(QInv(p))")
	}
}

func TestDegRadRoundTrip(t *testing.T) {
	f := func(d float64) bool {
		d = math.Mod(d, 1e4)
		return math.Abs(RadToDeg(DegToRad(d))-d) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRadarCrossSectionEquation(t *testing.T) {
	// The RCS form and the gain form must agree when σ = Gtag²λ²/4π and
	// tag loss is zero.
	lambda := Wavelength(24 * GHz)
	gtag := 12.0
	sigma := FromDB(2*gtag) * lambda * lambda / (4 * math.Pi)
	for _, r := range []float64{0.5, 1, 2, 4} {
		a := BackscatterReceivedDBm(13, 20, 20, gtag, 0, r, lambda)
		b := RadarCrossSectionReceivedDBm(13, 20, 20, sigma, r, lambda)
		near(t, a, b, 1e-9, "gain-form vs RCS-form radar equation")
	}
}

func TestFCCCompliance(t *testing.T) {
	// The paper's reader: 13 dBm + 20 dBi horn = 33 dBm EIRP — right at
	// (just over) the Part 15.249 limit; at 19 dBi it complies.
	if got := EIRPdBm(13.01, 20); math.Abs(got-33.01) > 0.01 {
		t.Errorf("EIRP %g", got)
	}
	if FCCCompliant24GHz(13.01, 20) {
		t.Error("33 dBm EIRP exceeds the 32.7 dBm limit")
	}
	if !FCCCompliant24GHz(13.01, 19) {
		t.Error("32 dBm EIRP should comply")
	}
	if !FCCCompliant24GHz(13.01, 19.69) {
		t.Error("exactly at the limit should comply")
	}
}
