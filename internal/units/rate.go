package units

import (
	"fmt"
	"math"
)

// ASKRequiredSNRdB is the SNR an ASK/OOK link needs to reach BER 10⁻³,
// as used by the paper's data-rate mapping ("ASK modulation requires SNR
// of 7 dB to achieve BER of 10⁻³", citing Grami, Introduction to Digital
// Communications). All of Fig. 7's rate annotations derive from this
// constant.
const ASKRequiredSNRdB = 7.0

// TargetBER is the bit-error-rate target behind ASKRequiredSNRdB.
const TargetBER = 1e-3

// OOKSpectralEfficiency is the net bits/s/Hz assumed by the paper's rate
// table: on-off keying at one bit per symbol with a symbol rate of half
// the occupied RF bandwidth (2 GHz receiver bandwidth ⇒ 1 Gb/s, 200 MHz ⇒
// 100 Mb/s, 20 MHz ⇒ 10 Mb/s).
const OOKSpectralEfficiency = 0.5

// ReaderBandwidth describes one of the paper's spectrum-analyzer
// resolution-bandwidth settings and the OOK data rate it carries.
type ReaderBandwidth struct {
	// BandwidthHz is the receiver (noise) bandwidth.
	BandwidthHz float64
	// Label is a human-readable name, e.g. "2 GHz".
	Label string
}

// BitRate returns the OOK bit rate carried in this bandwidth.
func (b ReaderBandwidth) BitRate() float64 {
	return b.BandwidthHz * OOKSpectralEfficiency
}

// PaperBandwidths are the three receiver bandwidths whose noise floors are
// drawn in paper Fig. 7, widest first.
func PaperBandwidths() []ReaderBandwidth {
	return []ReaderBandwidth{
		{BandwidthHz: 2 * GHz, Label: "2 GHz"},
		{BandwidthHz: 200 * MHz, Label: "200 MHz"},
		{BandwidthHz: 20 * MHz, Label: "20 MHz"},
	}
}

// AchievableRate maps a received tag power to the paper's "standard data
// rate table": the largest of the candidate bandwidths in which the link
// still clears ASKRequiredSNRdB above the noise floor determines the rate.
// Returns 0 if even the narrowest bandwidth fails.
//
// tempK and nfDB set the noise floor (paper: 300 K, NF = 5 dB).
func AchievableRate(prDBm, tempK, nfDB float64, candidates []ReaderBandwidth) (bps float64, chosen ReaderBandwidth, ok bool) {
	best := ReaderBandwidth{}
	for _, c := range candidates {
		floor := NoiseFloorDBm(tempK, c.BandwidthHz, nfDB)
		if prDBm-floor >= ASKRequiredSNRdB && c.BitRate() > best.BitRate() {
			best = c
		}
	}
	if best.BandwidthHz == 0 {
		return 0, ReaderBandwidth{}, false
	}
	return best.BitRate(), best, true
}

// ContinuousAchievableRate returns the OOK rate achievable if the receiver
// bandwidth could be tuned continuously: the largest B with
// SNR(B) ≥ ASKRequiredSNRdB, times the OOK spectral efficiency.
// This is the envelope of the discrete table used in Fig. 7.
func ContinuousAchievableRate(prDBm, tempK, nfDB float64) float64 {
	// SNR(B) = Pr − (kT + 10log10 B + NF) ≥ 7  ⇒
	// 10log10 B ≤ Pr − kT − NF − 7.
	maxDB := prDBm - ThermalNoiseDensityDBmHz(tempK) - nfDB - ASKRequiredSNRdB
	if maxDB <= 0 {
		return 0
	}
	return math.Pow(10, maxDB/10) * OOKSpectralEfficiency
}

// FormatRate renders a bit rate with engineering units ("1.00 Gb/s").
func FormatRate(bps float64) string {
	switch {
	case math.IsNaN(bps):
		// A NaN rate is a driver bug upstream; render a placeholder
		// instead of the "NaN b/s" the default branch used to emit.
		return "n/a"
	case bps <= 0:
		return "no link"
	case bps >= 1e9:
		return fmt.Sprintf("%.2f Gb/s", bps/1e9)
	case bps >= 1e6:
		return fmt.Sprintf("%.2f Mb/s", bps/1e6)
	case bps >= 1e3:
		return fmt.Sprintf("%.2f kb/s", bps/1e3)
	default:
		return fmt.Sprintf("%.0f b/s", bps)
	}
}

// ShannonCapacityBps returns the AWGN channel capacity B·log2(1+SNR) for
// a bandwidth bw Hz at the given SNR (dB) — the information-theoretic
// ceiling the paper's OOK table sits below (OOK at SNR 7 dB uses 0.5 of
// the ≈2.6 bits/s/Hz Shannon allows; the gap is the price of a
// backscatter-feasible modulator).
func ShannonCapacityBps(bw, snrDB float64) float64 {
	if bw <= 0 {
		return 0
	}
	return bw * math.Log2(1+FromDB(snrDB))
}
