package plot

import (
	"fmt"
	"math"
	"strings"
)

// Sparkline renders values (oldest first) as a minimal inline SVG: a
// single polyline with no axes, plus a dot on the latest value. It is
// the dashboard's compact trend widget. Non-finite values are skipped;
// fewer than two finite values render an empty frame.
func Sparkline(values []float64, w, h int) string {
	if w <= 0 {
		w = 240
	}
	if h <= 0 {
		h = 40
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="#fafafa" stroke="#ddd"/>`)

	lo, hi := math.Inf(1), math.Inf(-1)
	finite := 0
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
		finite++
	}
	if finite >= 2 {
		if hi <= lo {
			// Flat series: center it.
			lo, hi = lo-1, hi+1
		}
		pad := (hi - lo) * 0.1
		lo, hi = lo-pad, hi+pad
		const inset = 3.0
		sx := func(i int) float64 {
			return inset + float64(i)/float64(len(values)-1)*(float64(w)-2*inset)
		}
		sy := func(v float64) float64 {
			return inset + (1-(v-lo)/(hi-lo))*(float64(h)-2*inset)
		}
		var pts []string
		lastIdx := -1
		for i, v := range values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx(i), sy(v)))
			lastIdx = i
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="#1f77b4" stroke-width="1.5"/>`,
			strings.Join(pts, " "))
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="#d62728"/>`,
			sx(lastIdx), sy(values[lastIdx]))
	}
	b.WriteString(`</svg>`)
	return b.String()
}
