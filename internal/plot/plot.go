// Package plot renders simple line charts as SVG using only the standard
// library, so the paper's figures can be regenerated as images
// (`mmtag fig7 -svg > fig7.svg`) without any plotting dependency.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one polyline (or point cloud, when Points is set).
type Series struct {
	Name string
	X, Y []float64
	// Dashed draws the series with a dash pattern (used for noise
	// floors / reference lines).
	Dashed bool
	// Points draws markers instead of a connected polyline — used for
	// scatter plots such as the dashboard's constellation snapshot.
	Points bool
}

// Chart is a 2-D line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width/Height in pixels; defaults 720×480.
	Width, Height int
}

// palette holds line colors (colorblind-safe-ish defaults).
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// SVG renders the chart.
func (c Chart) SVG() (string, error) {
	if len(c.Series) == 0 {
		return "", fmt.Errorf("plot: no series")
	}
	w, h := c.Width, c.Height
	if w == 0 {
		w = 720
	}
	if h == 0 {
		h = 480
	}
	const mLeft, mRight, mTop, mBottom = 70, 160, 40, 50
	pw, ph := w-mLeft-mRight, h-mTop-mBottom
	if pw <= 0 || ph <= 0 {
		return "", fmt.Errorf("plot: chart too small")
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("plot: series %q length mismatch", s.Name)
		}
		if len(s.X) == 0 {
			return "", fmt.Errorf("plot: series %q empty", s.Name)
		}
		for i := range s.X {
			if math.IsInf(s.Y[i], 0) || math.IsNaN(s.Y[i]) {
				continue
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if minX >= maxX {
		maxX = minX + 1
	}
	if minY >= maxY {
		maxY = minY + 1
	}
	// A little vertical headroom.
	pad := (maxY - minY) * 0.05
	minY -= pad
	maxY += pad

	sx := func(x float64) float64 { return float64(mLeft) + (x-minX)/(maxX-minX)*float64(pw) }
	sy := func(y float64) float64 { return float64(mTop) + (1-(y-minY)/(maxY-minY))*float64(ph) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		mLeft, escape(c.Title))

	// Axes + grid.
	for _, t := range ticks(minX, maxX, 6) {
		x := sx(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ddd"/>`+"\n", x, mTop, x, mTop+ph)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, mTop+ph+16, fmtTick(t))
	}
	for _, t := range ticks(minY, maxY, 6) {
		y := sy(t)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n", mLeft, y, mLeft+pw, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			mLeft-6, y+4, fmtTick(t))
	}
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#333"/>`+"\n", mLeft, mTop, pw, ph)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		mLeft+pw/2, h-10, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		mTop+ph/2, mTop+ph/2, escape(c.YLabel))

	// Series + legend.
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		if s.Points {
			for j := range s.X {
				if math.IsInf(s.Y[j], 0) || math.IsNaN(s.Y[j]) {
					continue
				}
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s" fill-opacity="0.6"/>`+"\n",
					sx(s.X[j]), sy(s.Y[j]), color)
			}
		} else {
			var pts []string
			for j := range s.X {
				if math.IsInf(s.Y[j], 0) || math.IsNaN(s.Y[j]) {
					continue
				}
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx(s.X[j]), sy(s.Y[j])))
			}
			dash := ""
			if s.Dashed {
				dash = ` stroke-dasharray="6,4"`
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"%s/>`+"\n",
				strings.Join(pts, " "), color, dash)
		}
		ly := mTop + 14 + i*18
		if s.Points {
			fmt.Fprintf(&b, `<circle cx="%d" cy="%d" r="3" fill="%s"/>`+"\n",
				mLeft+pw+22, ly-4, color)
		} else {
			dash := ""
			if s.Dashed {
				dash = ` stroke-dasharray="6,4"`
			}
			fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"%s/>`+"\n",
				mLeft+pw+10, ly-4, mLeft+pw+34, ly-4, color, dash)
		}
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			mLeft+pw+38, ly, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// ticks returns ~n round tick positions covering [lo, hi].
func ticks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	span := hi - lo
	raw := span / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	for _, m := range []float64{1, 2, 2.5, 5, 10} {
		step = m * mag
		if step >= raw {
			break
		}
	}
	start := math.Ceil(lo/step) * step
	var out []float64
	for t := start; t <= hi+1e-9*span; t += step {
		out = append(out, t)
	}
	sort.Float64s(out)
	return out
}

func fmtTick(t float64) string {
	if t == math.Trunc(t) && math.Abs(t) < 1e7 {
		return fmt.Sprintf("%.0f", t)
	}
	return fmt.Sprintf("%.3g", t)
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
