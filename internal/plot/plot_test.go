package plot

import (
	"math"
	"strings"
	"testing"
)

func demoChart() Chart {
	return Chart{
		Title:  "demo <chart> & stuff",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}},
			{Name: "b", X: []float64{0, 1, 2}, Y: []float64{4, 1, 0}, Dashed: true},
		},
	}
}

func TestSVGWellFormed(t *testing.T) {
	svg, err := demoChart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "stroke-dasharray",
		"demo &lt;chart&gt; &amp; stuff",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q", want)
		}
	}
	// Two polylines, two legend entries.
	if strings.Count(svg, "<polyline") != 2 {
		t.Errorf("polyline count %d", strings.Count(svg, "<polyline"))
	}
	// Balanced tags (rough check).
	if strings.Count(svg, "<svg") != strings.Count(svg, "</svg>") {
		t.Error("unbalanced svg tags")
	}
}

func TestSVGValidation(t *testing.T) {
	if _, err := (Chart{}).SVG(); err == nil {
		t.Error("no series should fail")
	}
	bad := Chart{Series: []Series{{Name: "x", X: []float64{1, 2}, Y: []float64{1}}}}
	if _, err := bad.SVG(); err == nil {
		t.Error("length mismatch should fail")
	}
	empty := Chart{Series: []Series{{Name: "x"}}}
	if _, err := empty.SVG(); err == nil {
		t.Error("empty series should fail")
	}
	tiny := demoChart()
	tiny.Width, tiny.Height = 10, 10
	if _, err := tiny.SVG(); err == nil {
		t.Error("too-small chart should fail")
	}
}

func TestSVGToleratesInfinities(t *testing.T) {
	c := Chart{Series: []Series{{
		Name: "with holes",
		X:    []float64{0, 1, 2, 3},
		Y:    []float64{1, math.Inf(-1), math.NaN(), 2},
	}}}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Error("non-finite values leaked into the SVG")
	}
}

func TestSVGDegenerateRanges(t *testing.T) {
	// Constant series must not divide by zero.
	c := Chart{Series: []Series{{Name: "flat", X: []float64{5, 5}, Y: []float64{3, 3}}}}
	if _, err := c.SVG(); err != nil {
		t.Fatalf("flat series: %v", err)
	}
}

func TestTicks(t *testing.T) {
	ts := ticks(0, 10, 6)
	if len(ts) < 3 {
		t.Fatalf("ticks: %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatal("ticks not increasing")
		}
	}
	if ts[0] < 0 || ts[len(ts)-1] > 10.001 {
		t.Errorf("ticks out of range: %v", ts)
	}
	// Negative spans too.
	ts = ticks(-110, -40, 6)
	if len(ts) < 3 || ts[0] < -110 {
		t.Errorf("negative ticks: %v", ts)
	}
}
