package plot

import (
	"math"
	"strings"
	"testing"
)

func TestSparklineWellFormed(t *testing.T) {
	svg := Sparkline([]float64{1, 3, 2, 5, 4}, 240, 40)
	for _, want := range []string{
		`<svg xmlns="http://www.w3.org/2000/svg" width="240" height="40"`,
		"<polyline points=",
		"<circle",
		"</svg>",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("sparkline missing %q:\n%s", want, svg)
		}
	}
	if strings.Count(svg, "<svg") != 1 || strings.Count(svg, "</svg>") != 1 {
		t.Error("sparkline is not a single SVG document")
	}
}

func TestSparklineDefaults(t *testing.T) {
	svg := Sparkline([]float64{0, 1}, 0, 0)
	if !strings.Contains(svg, `width="240" height="40"`) {
		t.Errorf("non-positive dims did not fall back to defaults:\n%s", svg)
	}
}

func TestSparklineSkipsNonFinite(t *testing.T) {
	svg := Sparkline([]float64{1, math.NaN(), 3, math.Inf(1), 2}, 120, 30)
	if !strings.Contains(svg, "<polyline") {
		t.Fatal("three finite values should still draw a polyline")
	}
	// The polyline carries exactly the three finite points.
	start := strings.Index(svg, `points="`) + len(`points="`)
	end := strings.Index(svg[start:], `"`)
	if n := len(strings.Fields(svg[start : start+end])); n != 3 {
		t.Errorf("polyline has %d points, want 3", n)
	}
}

func TestSparklineTooFewValues(t *testing.T) {
	for name, values := range map[string][]float64{
		"empty":      nil,
		"single":     {5},
		"one_finite": {5, math.NaN()},
		"all_nonfin": {math.NaN(), math.Inf(-1)},
	} {
		svg := Sparkline(values, 100, 20)
		if strings.Contains(svg, "<polyline") || strings.Contains(svg, "<circle") {
			t.Errorf("%s: rendered data with <2 finite values:\n%s", name, svg)
		}
		if !strings.Contains(svg, "</svg>") {
			t.Errorf("%s: not a closed SVG frame", name)
		}
	}
}

func TestSparklineFlatSeries(t *testing.T) {
	// A constant series must not divide by zero — it renders centered.
	svg := Sparkline([]float64{2, 2, 2, 2}, 100, 20)
	if !strings.Contains(svg, "<polyline") {
		t.Fatal("flat series did not render")
	}
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Fatalf("flat series produced non-finite coordinates:\n%s", svg)
	}
}

func TestChartPointsSeries(t *testing.T) {
	c := Chart{
		Title: "constellation",
		Series: []Series{{
			Name:   "decisions",
			X:      []float64{0.1, 0.9, 0.12, 0.95},
			Y:      []float64{0, 0.01, -0.01, 0},
			Points: true,
		}},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	// Point series draw one marker per sample (plus one legend marker),
	// and no connecting polyline for the data.
	if got := strings.Count(svg, "<circle"); got != 5 {
		t.Errorf("point series drew %d circles, want 4 data + 1 legend", got)
	}
	if strings.Contains(svg, "<polyline") {
		t.Errorf("point series drew a polyline:\n%s", svg)
	}
}
