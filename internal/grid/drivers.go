package grid

import (
	"fmt"
	"sort"

	"github.com/mmtag/mmtag/internal/dsp"
	"github.com/mmtag/mmtag/internal/experiments"
)

// Params are the knobs a grid cell hands its driver. Zero values mean
// "driver default", matching the cmd/mmtag flag semantics.
type Params struct {
	// Points is the sweep resolution (fig6/fig7/retro/...), the frame
	// count (arq) or unused, driver depending.
	Points int
	// Bits is the Monte-Carlo size (ber, coded).
	Bits int
	// Seed is the cell's derived seed.
	Seed uint64
}

// runFunc executes one experiment and reduces it to a rendered table
// plus named summary metrics (the values grid-report aggregates over
// repeats). ws is the executing worker's reusable DSP workspace; drivers
// without a waveform stage ignore it.
type runFunc func(p Params, ws *dsp.Workspace) (experiments.Table, map[string]float64, error)

// drivers is the registry: every cmd/mmtag experiment that makes sense
// as a grid cell. The summary metrics are the result structs' headline
// scalars — the quantities the paper's claims hang on.
var drivers = map[string]runFunc{
	"fig6": func(p Params, _ *dsp.Workspace) (experiments.Table, map[string]float64, error) {
		r, err := experiments.Figure6(p.Points)
		if err != nil {
			return experiments.Table{}, nil, err
		}
		return r.Table(), map[string]float64{
			"carrier_off_db": r.CarrierOffDB,
			"carrier_on_db":  r.CarrierOnDB,
		}, nil
	},
	"fig7": func(p Params, _ *dsp.Workspace) (experiments.Table, map[string]float64, error) {
		r, err := experiments.Figure7(p.Points)
		if err != nil {
			return experiments.Table{}, nil, err
		}
		return r.Table(), map[string]float64{
			"rate_at_4ft_bps":  r.RateAt4ft,
			"rate_at_10ft_bps": r.RateAt10ft,
		}, nil
	},
	"retro": func(p Params, _ *dsp.Workspace) (experiments.Table, map[string]float64, error) {
		r, err := experiments.Retrodirectivity(p.Points)
		if err != nil {
			return experiments.Table{}, nil, err
		}
		return r.Table(), map[string]float64{
			"worst_error_deg":    r.WorstErrorDeg,
			"fixed_collapse_deg": r.FixedBeamCollapseDeg,
		}, nil
	},
	"beamwidth": func(p Params, _ *dsp.Workspace) (experiments.Table, map[string]float64, error) {
		n := p.Points
		if n == 0 {
			n = 6
		}
		r, err := experiments.Beamwidth(n)
		if err != nil {
			return experiments.Table{}, nil, err
		}
		return r.Table(), map[string]float64{"hpbw_deg": r.HPBWDeg}, nil
	},
	"compare": func(_ Params, _ *dsp.Workspace) (experiments.Table, map[string]float64, error) {
		r, err := experiments.Comparison()
		if err != nil {
			return experiments.Table{}, nil, err
		}
		return r.Table(), map[string]float64{
			"mmtag_rate_4ft_bps":  r.MmTagAt4ft,
			"mmtag_rate_10ft_bps": r.MmTagAt10ft,
		}, nil
	},
	"ber": func(p Params, _ *dsp.Workspace) (experiments.Table, map[string]float64, error) {
		r, err := experiments.BERValidation(p.Bits, p.Seed)
		if err != nil {
			return experiments.Table{}, nil, err
		}
		m := map[string]float64{"snr_for_target_db": r.SNRForTarget}
		// The Monte-Carlo sample at 8 dB is the seed-dependent scalar —
		// the one whose grouped std over repeats is meaningful.
		for _, pt := range r.Points {
			if pt.SNRdB == 8 {
				m["mc_ber_8db"] = pt.MonteCarlo
			}
		}
		return r.Table(), m, nil
	},
	"mac": func(p Params, _ *dsp.Workspace) (experiments.Table, map[string]float64, error) {
		r, err := experiments.MultiTag(nil, p.Seed)
		if err != nil {
			return experiments.Table{}, nil, err
		}
		m := map[string]float64{}
		if n := len(r.Points); n > 0 {
			last := r.Points[n-1]
			m["aggregate_bps"] = last.AggregateBps
			m["fairness"] = last.Fairness
		}
		return r.Table(), m, nil
	},
	"selfint": func(p Params, ws *dsp.Workspace) (experiments.Table, map[string]float64, error) {
		r, err := experiments.SelfInterferenceWS(ws, p.Seed)
		if err != nil {
			return experiments.Table{}, nil, err
		}
		return r.Table(), map[string]float64{
			"min_working_isolation_db": r.MinWorkingIsolationDB,
		}, nil
	},
	"energy": func(p Params, _ *dsp.Workspace) (experiments.Table, map[string]float64, error) {
		r, err := experiments.EnergyFeasibility(p.Points)
		if err != nil {
			return experiments.Table{}, nil, err
		}
		return r.Table(), map[string]float64{"batteryless_range_ft": r.BatterylessRangeFt}, nil
	},
	"anticol": func(p Params, _ *dsp.Workspace) (experiments.Table, map[string]float64, error) {
		r, err := experiments.AntiCollision(nil, p.Points, p.Seed)
		if err != nil {
			return experiments.Table{}, nil, err
		}
		m := map[string]float64{}
		if n := len(r.Points); n > 0 {
			last := r.Points[n-1]
			m["aloha_eff"] = last.AlohaEff
			m["tree_eff"] = last.TreeEff
		}
		return r.Table(), m, nil
	},
	"blockage": func(_ Params, _ *dsp.Workspace) (experiments.Table, map[string]float64, error) {
		r, err := experiments.Blockage()
		if err != nil {
			return experiments.Table{}, nil, err
		}
		m := map[string]float64{"los_rate_bps": r.LOSRateBps}
		for i, pt := range r.Points {
			if i == 0 || pt.RateBps < m["nlos_rate_min_bps"] {
				m["nlos_rate_min_bps"] = pt.RateBps
			}
		}
		return r.Table(), m, nil
	},
	"rateadapt": func(p Params, _ *dsp.Workspace) (experiments.Table, map[string]float64, error) {
		r, err := experiments.RateAdaptation(p.Points)
		if err != nil {
			return experiments.Table{}, nil, err
		}
		return r.Table(), map[string]float64{
			"peak_rate_bps": r.PeakRateBps,
			"crossover_ft":  r.CrossoverFt,
		}, nil
	},
	"fading": func(p Params, ws *dsp.Workspace) (experiments.Table, map[string]float64, error) {
		r, err := experiments.FadingMarginWS(ws, p.Seed)
		if err != nil {
			return experiments.Table{}, nil, err
		}
		m := map[string]float64{}
		for i, pt := range r.Points {
			if i == 0 || pt.GbpsRangeFt < m["gbps_range_min_ft"] {
				m["gbps_range_min_ft"] = pt.GbpsRangeFt
			}
		}
		return r.Table(), m, nil
	},
	"bands": func(_ Params, _ *dsp.Workspace) (experiments.Table, map[string]float64, error) {
		r, err := experiments.BandScaling()
		if err != nil {
			return experiments.Table{}, nil, err
		}
		m := map[string]float64{}
		if len(r.Points) > 0 {
			m["gbps_range_24ghz_ft"] = r.Points[0].GbpsRangeFt
			m["gbps_range_hiband_ft"] = r.Points[len(r.Points)-1].GbpsRangeFt
		}
		return r.Table(), m, nil
	},
	"coded": func(p Params, _ *dsp.Workspace) (experiments.Table, map[string]float64, error) {
		r, err := experiments.CodedBER(p.Bits, p.Seed)
		if err != nil {
			return experiments.Table{}, nil, err
		}
		return r.Table(), map[string]float64{"coding_gain_db": r.CodingGainDB}, nil
	},
	"arq": func(p Params, _ *dsp.Workspace) (experiments.Table, map[string]float64, error) {
		r, err := experiments.ARQGoodput(p.Points, p.Seed)
		if err != nil {
			return experiments.Table{}, nil, err
		}
		m := map[string]float64{}
		for i, pt := range r.Points {
			if i == 0 || pt.GoodputBps > m["goodput_peak_bps"] {
				m["goodput_peak_bps"] = pt.GoodputBps
			}
			m["residual_total"] += float64(pt.Residual)
		}
		return r.Table(), m, nil
	},
	"planar": func(_ Params, _ *dsp.Workspace) (experiments.Table, map[string]float64, error) {
		r, err := experiments.PlanarTag()
		if err != nil {
			return experiments.Table{}, nil, err
		}
		return r.Table(), map[string]float64{
			"linear_gain_dbi": r.LinearGainDBi,
			"planar_gain_dbi": r.PlanarGainDBi,
		}, nil
	},
	"arraysize": func(_ Params, _ *dsp.Workspace) (experiments.Table, map[string]float64, error) {
		r, err := experiments.ArraySizeAblation(nil)
		if err != nil {
			return experiments.Table{}, nil, err
		}
		m := map[string]float64{}
		if n := len(r.Points); n > 0 {
			m["gbps_range_max_ft"] = r.Points[n-1].GbpsRangeFt
		}
		return r.Table(), m, nil
	},
	"impair": func(p Params, _ *dsp.Workspace) (experiments.Table, map[string]float64, error) {
		r, err := experiments.ImpairmentAblation(nil, p.Points, p.Seed)
		if err != nil {
			return experiments.Table{}, nil, err
		}
		m := map[string]float64{"depth_clean_db": r.DepthCleanDB}
		if n := len(r.Points); n > 0 {
			m["retro_loss_max_db"] = r.Points[n-1].RetroLossDB
		}
		return r.Table(), m, nil
	},
	"stream": func(p Params, _ *dsp.Workspace) (experiments.Table, map[string]float64, error) {
		r, err := experiments.StreamThroughput(p.Points, p.Seed)
		if err != nil {
			return experiments.Table{}, nil, err
		}
		return r.Table(), map[string]float64{
			"session_goodput_bps": r.Session.GoodputBps,
			"session_decoded":     float64(r.Session.Decoded),
			"peak_delivered_fps":  r.PeakDeliveredFPS(),
			"capacity_fps":        r.CapacityFPS,
		}, nil
	},
}

// Drivers lists the registered driver names, sorted.
func Drivers() []string {
	names := make([]string, 0, len(drivers))
	for name := range drivers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// runCell executes one cell on the given workspace.
func runCell(c Cell, ws *dsp.Workspace) (experiments.Table, map[string]float64, error) {
	fn, ok := drivers[c.Driver]
	if !ok {
		return experiments.Table{}, nil, fmt.Errorf("grid: unknown driver %q", c.Driver)
	}
	tab, metrics, err := fn(Params{Points: c.Points, Bits: c.Bits, Seed: c.Seed}, ws)
	if err != nil {
		return experiments.Table{}, nil, fmt.Errorf("grid: cell %s: %w", c.ID, err)
	}
	return tab, metrics, nil
}
