package grid

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/obs/manifest"
)

// testSpec is a cheap grid exercising repeats, a points sweep and a
// Monte-Carlo driver.
func testSpec() *Spec {
	return &Spec{
		Schema: SpecSchema,
		Name:   "test",
		Seed:   7,
		Cells: []CellSpec{
			{Driver: "beamwidth"},
			{Driver: "retro", Points: []int{5, 9}},
			{Driver: "ber", Repeats: 2, Bits: []int{2000}},
		},
	}
}

// deterministicFiles walks a grid run directory and returns the
// relative path and contents of every file except the manifest.json
// quarantine (the only file allowed to carry wall-clock state).
func deterministicFiles(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || info.Name() == "manifest.json" {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out[rel] = string(data)
		return nil
	})
	if err != nil {
		t.Fatalf("walk %s: %v", dir, err)
	}
	return out
}

func TestGridWorkerCountInvariance(t *testing.T) {
	spec := testSpec()
	dir1 := t.TempDir()
	dir4 := t.TempDir()
	if _, err := Run(spec, dir1, 1); err != nil {
		t.Fatalf("Run(workers=1): %v", err)
	}
	if _, err := Run(spec, dir4, 4); err != nil {
		t.Fatalf("Run(workers=4): %v", err)
	}
	f1 := deterministicFiles(t, dir1)
	f4 := deterministicFiles(t, dir4)
	if len(f1) == 0 {
		t.Fatal("no deterministic files archived")
	}
	if len(f1) != len(f4) {
		t.Fatalf("file sets differ: %d vs %d files", len(f1), len(f4))
	}
	for rel, want := range f1 {
		got, ok := f4[rel]
		if !ok {
			t.Fatalf("workers=4 run is missing %s", rel)
		}
		if got != want {
			t.Errorf("%s differs between worker counts", rel)
		}
	}
}

func TestGridCellManifestsVerify(t *testing.T) {
	dir := t.TempDir()
	idx, err := Run(testSpec(), dir, 2)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := 1 + 2 + 2; len(idx.Cells) != want {
		t.Fatalf("expanded to %d cells, want %d", len(idx.Cells), want)
	}
	for _, c := range idx.Cells {
		if err := manifest.Verify(filepath.Join(dir, c.Dir)); err != nil {
			t.Errorf("cell %s: %v", c.ID, err)
		}
	}
	if !IsGridDir(dir) {
		t.Error("IsGridDir = false for a grid run directory")
	}
	if err := VerifyDir(dir); err != nil {
		t.Errorf("VerifyDir: %v", err)
	}
	// Corrupt one archived table: VerifyDir must now fail.
	victim := filepath.Join(dir, idx.Cells[0].Dir, "table.txt")
	if err := os.WriteFile(victim, []byte("tampered\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifyDir(dir); err == nil {
		t.Error("VerifyDir passed a tampered cell archive")
	}
}

func TestSeedSubsetStability(t *testing.T) {
	full := testSpec()
	fullCells, err := full.Expand()
	if err != nil {
		t.Fatalf("Expand(full): %v", err)
	}
	// Re-declare only the ber block: its cells must keep the exact seeds
	// they had inside the full grid.
	sub := &Spec{Schema: SpecSchema, Name: "test", Seed: 7,
		Cells: []CellSpec{{Driver: "ber", Repeats: 2, Bits: []int{2000}}}}
	subCells, err := sub.Expand()
	if err != nil {
		t.Fatalf("Expand(sub): %v", err)
	}
	seeds := map[string]uint64{}
	for _, c := range fullCells {
		seeds[c.ID] = c.Seed
	}
	for _, c := range subCells {
		want, ok := seeds[c.ID]
		if !ok {
			t.Fatalf("subset cell %s not in the full expansion", c.ID)
		}
		if c.Seed != want {
			t.Errorf("cell %s: subset seed %d != full-grid seed %d", c.ID, c.Seed, want)
		}
	}
	// Distinct repeats of the same cell block must get distinct seeds.
	if len(subCells) == 2 && subCells[0].Seed == subCells[1].Seed {
		t.Error("repeat cells share a seed")
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"bad schema", Spec{Schema: "nope/9", Name: "x",
			Cells: []CellSpec{{Driver: "beamwidth"}}}, "schema"},
		{"no name", Spec{Schema: SpecSchema,
			Cells: []CellSpec{{Driver: "beamwidth"}}}, "name"},
		{"no cells", Spec{Schema: SpecSchema, Name: "x"}, "no cells"},
		{"unknown driver", Spec{Schema: SpecSchema, Name: "x",
			Cells: []CellSpec{{Driver: "warpdrive"}}}, "unknown driver"},
		{"duplicate cells", Spec{Schema: SpecSchema, Name: "x",
			Cells: []CellSpec{{Driver: "beamwidth"}, {Driver: "beamwidth"}}}, "duplicate"},
		{"negative repeats", Spec{Schema: SpecSchema, Name: "x",
			Cells: []CellSpec{{Driver: "beamwidth", Repeats: -1}}}, "negative repeats"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil {
			t.Errorf("%s: Validate passed", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if err := testSpec().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestDriversRegistryCoversCLI(t *testing.T) {
	// Every experiment cmd/mmtag dispatches (minus the chart-only and
	// archival subcommands) should be runnable as a grid cell.
	want := []string{"fig6", "fig7", "retro", "beamwidth", "compare", "ber",
		"mac", "selfint", "energy", "anticol", "blockage", "rateadapt",
		"fading", "bands", "coded", "arq", "planar", "arraysize", "impair",
		"stream"}
	have := map[string]bool{}
	for _, d := range Drivers() {
		have[d] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("driver %q missing from the registry", w)
		}
	}
	if len(want) != len(have) {
		t.Errorf("registry has %d drivers, the CLI dispatch has %d", len(have), len(want))
	}
}

func TestReportDeterministicArtifacts(t *testing.T) {
	run := t.TempDir()
	if _, err := Run(testSpec(), run, 2); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep1 := t.TempDir()
	rep2 := t.TempDir()
	if err := Report(run, rep1); err != nil {
		t.Fatalf("Report: %v", err)
	}
	if err := Report(run, rep2); err != nil {
		t.Fatalf("Report (second pass): %v", err)
	}
	for _, name := range []string{"summary_cells.csv", "summary_grouped.csv", "tables.md", "tables.tex"} {
		a, err := os.ReadFile(filepath.Join(rep1, name))
		if err != nil {
			t.Fatalf("missing report artifact %s: %v", name, err)
		}
		b, err := os.ReadFile(filepath.Join(rep2, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s differs between report passes", name)
		}
		if len(a) == 0 {
			t.Errorf("%s is empty", name)
		}
	}
	// The retro points sweep varies, so its metrics must be plotted.
	if _, err := os.Stat(filepath.Join(rep1, "plots", "retro_worst_error_deg.svg")); err != nil {
		t.Errorf("expected retro plot: %v", err)
	}
	// The grouped CSV aggregates ber repeats: n=2 for its metrics.
	data, err := os.ReadFile(filepath.Join(rep1, "summary_grouped.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "ber,0,2000,mc_ber_8db,2,") {
		t.Errorf("grouped CSV lacks the aggregated ber row:\n%s", data)
	}
}

// sampledSpec is a cheap grid with virtual-time sampling on.
func sampledSpec() *Spec {
	return &Spec{
		Schema:   SpecSchema,
		Name:     "sampled",
		Seed:     7,
		SampleDT: 1e-6,
		Cells: []CellSpec{
			{Driver: "arq", Points: []int{4}},
			{Driver: "beamwidth"},
		},
	}
}

func TestSampledGridArchivesTimeseriesAndAlerts(t *testing.T) {
	spec := sampledSpec()
	dir := t.TempDir()
	idx, err := Run(spec, dir, 2)
	if err != nil {
		t.Fatalf("Run(sampled): %v", err)
	}
	for _, c := range idx.Cells {
		for _, name := range []string{"timeseries.json", "alerts.jsonl"} {
			if _, err := os.Stat(filepath.Join(dir, c.Dir, name)); err != nil {
				t.Fatalf("cell %s: %s not archived: %v", c.ID, name, err)
			}
		}
		if _, ok := c.Metrics["alerts_total"]; !ok {
			t.Fatalf("cell %s: alerts_total metric missing: %v", c.ID, c.Metrics)
		}
		if _, ok := c.Metrics["alerts_fired"]; !ok {
			t.Fatalf("cell %s: alerts_fired metric missing: %v", c.ID, c.Metrics)
		}
	}
	ts, err := os.ReadFile(filepath.Join(dir, "cells", "arq_p4_b0_r0", "timeseries.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(ts), `"name":"mac_arq_frame_latency_seconds"`) {
		t.Fatalf("arq cell timeseries missing latency series:\n%.300s", ts)
	}
	if err := VerifyDir(dir); err != nil {
		t.Fatalf("sampled grid verify: %v", err)
	}
}

func TestSampledGridWorkerCountInvariance(t *testing.T) {
	spec := sampledSpec()
	dir1 := t.TempDir()
	dir4 := t.TempDir()
	if _, err := Run(spec, dir1, 1); err != nil {
		t.Fatalf("Run(workers=1): %v", err)
	}
	if _, err := Run(spec, dir4, 4); err != nil {
		t.Fatalf("Run(workers=4): %v", err)
	}
	f1, f4 := deterministicFiles(t, dir1), deterministicFiles(t, dir4)
	if len(f1) != len(f4) {
		t.Fatalf("file sets differ: %d vs %d", len(f1), len(f4))
	}
	for rel, a := range f1 {
		b, ok := f4[rel]
		if !ok {
			t.Fatalf("%s missing at workers=4", rel)
		}
		if a != b {
			t.Fatalf("%s differs between 1 and 4 workers", rel)
		}
	}
}

func TestSampledGridLeavesGlobalObsDisabled(t *testing.T) {
	if obs.Enabled() {
		t.Fatal("precondition: global obs must be off")
	}
	if _, err := Run(sampledSpec(), t.TempDir(), 2); err != nil {
		t.Fatal(err)
	}
	if obs.Enabled() {
		t.Fatal("sampled grid run leaked the global registry")
	}
}
