package grid

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/mmtag/mmtag/internal/dsp"
	"github.com/mmtag/mmtag/internal/obs/manifest"
	"github.com/mmtag/mmtag/internal/par"
)

// IndexSchema identifies the grid run-index format (grid.json).
const IndexSchema = "mmtag-grid-run/1"

// indexName / cellsDir name the run-directory layout.
const (
	indexName = "grid.json"
	cellsDir  = "cells"
)

// CellResult is one executed cell as recorded in the run index.
type CellResult struct {
	Cell
	// Dir is the cell's run directory, relative to the grid root.
	Dir string `json:"dir"`
	// Metrics are the driver's summary scalars.
	Metrics map[string]float64 `json:"metrics"`
}

// Index is the grid.json body: the deterministic record of a grid run.
// It carries no wall-clock fields — those live in the per-cell
// manifest.json — so two runs of the same spec are byte-identical here.
type Index struct {
	Schema string `json:"schema"`
	Name   string `json:"name"`
	Seed   uint64 `json:"seed"`
	// Cells are sorted by ID.
	Cells []CellResult `json:"cells"`
}

// Run expands the spec and executes every cell across the worker pool,
// one reusable dsp.Workspace per worker. Each cell is archived under
// outDir/cells/<id>/ as a manifest run directory holding table.txt,
// table.csv and cell.json (all digest-verified); outDir/grid.json is the
// deterministic index the analyzer reads.
//
// Determinism: the caller must not have global observability (obs,
// event, signal) enabled — concurrent cells would interleave into the
// shared stores and drivers that read obs.Active() would emit
// worker-count-dependent notes. The cmd/mmtag grid subcommand runs
// before its observability setup for exactly this reason.
func Run(spec *Spec, outDir string, workers int) (*Index, error) {
	cells, err := spec.Expand()
	if err != nil {
		return nil, fmt.Errorf("grid: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(outDir, cellsDir), 0o755); err != nil {
		return nil, fmt.Errorf("grid: %w", err)
	}
	started := time.Now()
	results := make([]CellResult, len(cells))
	err = par.DoErrWith(workers, len(cells),
		dsp.NewWorkspace,
		func(ws *dsp.Workspace, i int) error {
			c := cells[i]
			tab, metrics, err := runCell(c, ws)
			if err != nil {
				return err
			}
			if metrics == nil {
				metrics = map[string]float64{}
			}
			rel := filepath.Join(cellsDir, c.ID)
			cellJSON, err := json.MarshalIndent(CellResult{Cell: c, Dir: rel, Metrics: metrics}, "", "  ")
			if err != nil {
				return fmt.Errorf("grid: cell %s: %w", c.ID, err)
			}
			info := manifest.RunInfo{
				Experiment: c.Driver,
				Seed:       c.Seed,
				Workers:    workers,
				Started:    started,
				Extra: map[string]string{
					"grid":   spec.Name,
					"cell":   c.ID,
					"points": fmt.Sprintf("%d", c.Points),
					"bits":   fmt.Sprintf("%d", c.Bits),
					"repeat": fmt.Sprintf("%d", c.Repeat),
				},
			}
			// nil registry / event log: the cell archive holds only the
			// deterministic artifacts plus manifest.json (the one file
			// allowed to differ between runs).
			_, err = manifest.Write(filepath.Join(outDir, rel), info, nil, nil,
				manifest.ExtraFile{Name: "table.txt", Data: []byte(tab.Render())},
				manifest.ExtraFile{Name: "table.csv", Data: []byte(tab.CSV())},
				manifest.ExtraFile{Name: "cell.json", Data: append(cellJSON, '\n')},
			)
			if err != nil {
				return err
			}
			results[i] = CellResult{Cell: c, Dir: rel, Metrics: metrics}
			return nil
		})
	if err != nil {
		return nil, err
	}
	idx := &Index{Schema: IndexSchema, Name: spec.Name, Seed: spec.Seed, Cells: results}
	data, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("grid: %w", err)
	}
	if err := os.WriteFile(filepath.Join(outDir, indexName), append(data, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("grid: %w", err)
	}
	return idx, nil
}

// ReadIndex loads a grid run directory's index.
func ReadIndex(dir string) (*Index, error) {
	data, err := os.ReadFile(filepath.Join(dir, indexName))
	if err != nil {
		return nil, fmt.Errorf("grid: %w", err)
	}
	var idx Index
	if err := json.Unmarshal(data, &idx); err != nil {
		return nil, fmt.Errorf("grid: %s: %w", dir, err)
	}
	if idx.Schema != IndexSchema {
		return nil, fmt.Errorf("grid: %s: schema %q, want %q", dir, idx.Schema, IndexSchema)
	}
	return &idx, nil
}

// IsGridDir reports whether dir looks like a grid run directory (has a
// grid.json index). cmd/mmtag verify uses it to route between the
// single-run and grid verifiers.
func IsGridDir(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, indexName))
	return err == nil
}

// VerifyDir checks a grid run directory end to end: the index parses,
// every indexed cell directory exists, and every cell manifest's digests
// match the archived bytes. Cells are checked in sorted order so the
// first error is deterministic.
func VerifyDir(dir string) error {
	idx, err := ReadIndex(dir)
	if err != nil {
		return err
	}
	cells := append([]CellResult(nil), idx.Cells...)
	sort.Slice(cells, func(i, j int) bool { return cells[i].ID < cells[j].ID })
	for _, c := range cells {
		if err := manifest.Verify(filepath.Join(dir, c.Dir)); err != nil {
			return fmt.Errorf("grid: cell %s: %w", c.ID, err)
		}
	}
	return nil
}
