package grid

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/mmtag/mmtag/internal/dsp"
	"github.com/mmtag/mmtag/internal/experiments"
	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/obs/alert"
	"github.com/mmtag/mmtag/internal/obs/manifest"
	"github.com/mmtag/mmtag/internal/obs/tsdb"
	"github.com/mmtag/mmtag/internal/par"
)

// IndexSchema identifies the grid run-index format (grid.json).
const IndexSchema = "mmtag-grid-run/1"

// indexName / cellsDir name the run-directory layout.
const (
	indexName = "grid.json"
	cellsDir  = "cells"
)

// CellResult is one executed cell as recorded in the run index.
type CellResult struct {
	Cell
	// Dir is the cell's run directory, relative to the grid root.
	Dir string `json:"dir"`
	// Metrics are the driver's summary scalars.
	Metrics map[string]float64 `json:"metrics"`
}

// Index is the grid.json body: the deterministic record of a grid run.
// It carries no wall-clock fields — those live in the per-cell
// manifest.json — so two runs of the same spec are byte-identical here.
type Index struct {
	Schema string `json:"schema"`
	Name   string `json:"name"`
	Seed   uint64 `json:"seed"`
	// Cells are sorted by ID.
	Cells []CellResult `json:"cells"`
}

// Run expands the spec and executes every cell across the worker pool,
// one reusable dsp.Workspace per worker. Each cell is archived under
// outDir/cells/<id>/ as a manifest run directory holding table.txt,
// table.csv and cell.json (all digest-verified); outDir/grid.json is the
// deterministic index the analyzer reads.
//
// Determinism: the caller must not have global observability (obs,
// event, signal) enabled — concurrent cells would interleave into the
// shared stores and drivers that read obs.Active() would emit
// worker-count-dependent notes. The cmd/mmtag grid subcommand runs
// before its observability setup for exactly this reason. With
// spec.SampleDT > 0 each cell briefly owns the process-wide registry
// (fresh per cell, serialized by sampleMu) so its driver's metric
// updates fold into a cell-local time-series store; the registry is
// dropped again before the next cell starts.
func Run(spec *Spec, outDir string, workers int) (*Index, error) {
	cells, err := spec.Expand()
	if err != nil {
		return nil, fmt.Errorf("grid: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(outDir, cellsDir), 0o755); err != nil {
		return nil, fmt.Errorf("grid: %w", err)
	}
	started := time.Now()
	results := make([]CellResult, len(cells))
	err = par.DoErrWith(workers, len(cells),
		dsp.NewWorkspace,
		func(ws *dsp.Workspace, i int) error {
			c := cells[i]
			var (
				tab     experiments.Table
				metrics map[string]float64
				sampled []manifest.ExtraFile
				cellErr error
			)
			if spec.SampleDT > 0 {
				tab, metrics, sampled, cellErr = runCellSampled(spec, c, ws)
			} else {
				tab, metrics, cellErr = runCell(c, ws)
			}
			if cellErr != nil {
				return cellErr
			}
			if metrics == nil {
				metrics = map[string]float64{}
			}
			rel := filepath.Join(cellsDir, c.ID)
			cellJSON, err := json.MarshalIndent(CellResult{Cell: c, Dir: rel, Metrics: metrics}, "", "  ")
			if err != nil {
				return fmt.Errorf("grid: cell %s: %w", c.ID, err)
			}
			info := manifest.RunInfo{
				Experiment: c.Driver,
				Seed:       c.Seed,
				Workers:    workers,
				Started:    started,
				Extra: map[string]string{
					"grid":   spec.Name,
					"cell":   c.ID,
					"points": fmt.Sprintf("%d", c.Points),
					"bits":   fmt.Sprintf("%d", c.Bits),
					"repeat": fmt.Sprintf("%d", c.Repeat),
				},
			}
			// nil registry / event log: the cell archive holds only the
			// deterministic artifacts plus manifest.json (the one file
			// allowed to differ between runs).
			extra := []manifest.ExtraFile{
				{Name: "table.txt", Data: []byte(tab.Render())},
				{Name: "table.csv", Data: []byte(tab.CSV())},
				{Name: "cell.json", Data: append(cellJSON, '\n')},
			}
			extra = append(extra, sampled...)
			if _, err := manifest.Write(filepath.Join(outDir, rel), info, nil, nil, extra...); err != nil {
				return err
			}
			results[i] = CellResult{Cell: c, Dir: rel, Metrics: metrics}
			return nil
		})
	if err != nil {
		return nil, err
	}
	idx := &Index{Schema: IndexSchema, Name: spec.Name, Seed: spec.Seed, Cells: results}
	data, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("grid: %w", err)
	}
	if err := os.WriteFile(filepath.Join(outDir, indexName), append(data, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("grid: %w", err)
	}
	return idx, nil
}

// sampleMu serializes sampled cells: the simulation's instrumentation
// reports to the one process-wide registry, so each sampled cell must
// own it exclusively while it runs.
var sampleMu sync.Mutex

// runCellSampled executes one cell against a fresh registry + sampler
// and returns the cell's timeseries.json / alerts.jsonl artifacts plus
// alerts_fired / alerts_total summary metrics. The registry is global
// only for the duration of the cell (see sampleMu); the caller's
// no-global-observability contract is restored on return.
func runCellSampled(spec *Spec, c Cell, ws *dsp.Workspace) (experiments.Table, map[string]float64, []manifest.ExtraFile, error) {
	sampleMu.Lock()
	defer sampleMu.Unlock()
	reg := obs.NewRegistry()
	smp, err := tsdb.Attach(reg, spec.SampleDT)
	if err != nil {
		return experiments.Table{}, nil, nil, fmt.Errorf("grid: cell %s: %w", c.ID, err)
	}
	obs.EnableWith(reg)
	defer obs.Disable()
	tab, metrics, err := runCell(c, ws)
	if err != nil {
		return experiments.Table{}, nil, nil, err
	}
	if metrics == nil {
		metrics = map[string]float64{}
	}
	eng := alert.Default()
	trans, states := eng.Evaluate(smp.Snapshot())
	fired := 0
	for _, st := range states {
		if st.Fired > 0 {
			fired++
		}
	}
	metrics["alerts_fired"] = float64(fired)
	metrics["alerts_total"] = float64(len(states))
	extra := []manifest.ExtraFile{
		{Name: "timeseries.json", Data: smp.JSON()},
		{Name: "alerts.jsonl", Data: alert.EncodeJSONL(trans)},
	}
	return tab, metrics, extra, nil
}

// ReadIndex loads a grid run directory's index.
func ReadIndex(dir string) (*Index, error) {
	data, err := os.ReadFile(filepath.Join(dir, indexName))
	if err != nil {
		return nil, fmt.Errorf("grid: %w", err)
	}
	var idx Index
	if err := json.Unmarshal(data, &idx); err != nil {
		return nil, fmt.Errorf("grid: %s: %w", dir, err)
	}
	if idx.Schema != IndexSchema {
		return nil, fmt.Errorf("grid: %s: schema %q, want %q", dir, idx.Schema, IndexSchema)
	}
	return &idx, nil
}

// IsGridDir reports whether dir looks like a grid run directory (has a
// grid.json index). cmd/mmtag verify uses it to route between the
// single-run and grid verifiers.
func IsGridDir(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, indexName))
	return err == nil
}

// VerifyDir checks a grid run directory end to end: the index parses,
// every indexed cell directory exists, and every cell manifest's digests
// match the archived bytes. Cells are checked in sorted order so the
// first error is deterministic.
func VerifyDir(dir string) error {
	idx, err := ReadIndex(dir)
	if err != nil {
		return err
	}
	cells := append([]CellResult(nil), idx.Cells...)
	sort.Slice(cells, func(i, j int) bool { return cells[i].ID < cells[j].ID })
	for _, c := range cells {
		if err := manifest.Verify(filepath.Join(dir, c.Dir)); err != nil {
			return fmt.Errorf("grid: cell %s: %w", c.ID, err)
		}
	}
	return nil
}
