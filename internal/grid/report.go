package grid

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/mmtag/mmtag/internal/plot"
	"github.com/mmtag/mmtag/internal/render"
)

// fmtG is the report's number formatter: shortest round-trip decimal,
// so the CSVs are deterministic and lossless.
func fmtG(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// group is one (driver, points, bits, metric) aggregate over repeats.
type group struct {
	Driver string
	Points int
	Bits   int
	Metric string
	N      int
	Mean   float64
	Std    float64
}

// groupKey orders groups deterministically.
func (g group) key() string {
	return fmt.Sprintf("%s|%09d|%09d|%s", g.Driver, g.Points, g.Bits, g.Metric)
}

// Report reduces an archived grid run (outDir of Run) into analysis
// artifacts under reportDir:
//
//	summary_cells.csv    every (cell, metric, value) in long form
//	summary_grouped.csv  mean/std per (driver, points, bits, metric)
//	tables.md            the grouped stats as markdown, one table/driver
//	tables.tex           the same tables as booktabs LaTeX
//	plots/<d>_<m>.svg    mean vs the varying sweep axis, where one varies
//
// Every artifact is deterministic: cells and groups are sorted, numbers
// use shortest round-trip formatting, and nothing carries a timestamp.
func Report(runDir, reportDir string) error {
	idx, err := ReadIndex(runDir)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(reportDir, 0o755); err != nil {
		return fmt.Errorf("grid: %w", err)
	}
	cells := append([]CellResult(nil), idx.Cells...)
	sort.Slice(cells, func(i, j int) bool { return cells[i].ID < cells[j].ID })

	// summary_cells.csv: the raw long-form record.
	cellTab := render.New("",
		render.Col("cell"), render.Col("driver"),
		render.Column{Header: "points", Align: render.Right, Format: render.Int()},
		render.Column{Header: "bits", Align: render.Right, Format: render.Int()},
		render.Column{Header: "repeat", Align: render.Right, Format: render.Int()},
		render.Col("seed"),
		render.Col("metric"),
		render.Column{Header: "value", Align: render.Right, Format: render.FloatFunc(fmtG)},
	)
	for _, c := range cells {
		for _, m := range sortedKeys(c.Metrics) {
			cellTab.Add(c.ID, c.Driver, c.Points, c.Bits, c.Repeat,
				strconv.FormatUint(c.Seed, 10), m, c.Metrics[m])
		}
	}
	if err := writeFile(reportDir, "summary_cells.csv", cellTab.CSV()); err != nil {
		return err
	}

	// Aggregate over repeats.
	acc := map[string][]float64{}
	meta := map[string]group{}
	for _, c := range cells {
		for _, m := range sortedKeys(c.Metrics) {
			g := group{Driver: c.Driver, Points: c.Points, Bits: c.Bits, Metric: m}
			acc[g.key()] = append(acc[g.key()], c.Metrics[m])
			meta[g.key()] = g
		}
	}
	groups := make([]group, 0, len(acc))
	for _, k := range sortedKeys(acc) {
		g := meta[k]
		g.N = len(acc[k])
		g.Mean, g.Std = meanStd(acc[k])
		groups = append(groups, g)
	}

	groupTab := render.New("",
		render.Col("driver"),
		render.Column{Header: "points", Align: render.Right, Format: render.Int()},
		render.Column{Header: "bits", Align: render.Right, Format: render.Int()},
		render.Col("metric"),
		render.Column{Header: "n", Align: render.Right, Format: render.Int()},
		render.Column{Header: "mean", Align: render.Right, Format: render.FloatFunc(fmtG)},
		render.Column{Header: "std", Align: render.Right, Format: render.FloatFunc(fmtG)},
	)
	for _, g := range groups {
		groupTab.Add(g.Driver, g.Points, g.Bits, g.Metric, g.N, g.Mean, g.Std)
	}
	if err := writeFile(reportDir, "summary_grouped.csv", groupTab.CSV()); err != nil {
		return err
	}

	// Per-driver tables, markdown and LaTeX.
	var md, tex strings.Builder
	fmt.Fprintf(&md, "# Grid report: %s\n\n", idx.Name)
	fmt.Fprintf(&tex, "%% Grid report: %s\n", idx.Name)

	// Alerts overview: one row per cell with a fired/total summary, only
	// when the grid ran sampled (sample_dt > 0 archives alert state).
	hasAlerts := false
	for _, c := range cells {
		if _, ok := c.Metrics["alerts_total"]; ok {
			hasAlerts = true
			break
		}
	}
	if hasAlerts {
		alertTab := render.New("cells — SLO alert summary",
			render.Col("cell"), render.Col("driver"),
			render.Column{Header: "points", Align: render.Right, Format: render.Int()},
			render.Column{Header: "bits", Align: render.Right, Format: render.Int()},
			render.Column{Header: "repeat", Align: render.Right, Format: render.Int()},
			render.Column{Header: "alerts", Align: render.Right},
		)
		for _, c := range cells {
			total, ok := c.Metrics["alerts_total"]
			summary := "n/a"
			if ok {
				summary = fmt.Sprintf("%d/%d", int(c.Metrics["alerts_fired"]), int(total))
			}
			alertTab.Add(c.ID, c.Driver, c.Points, c.Bits, c.Repeat, summary)
		}
		if err := writeFile(reportDir, "summary_alerts.csv", alertTab.CSV()); err != nil {
			return err
		}
		md.WriteString(alertTab.Markdown())
		md.WriteString("\n")
	}
	for _, d := range driverOrder(groups) {
		t := render.New(fmt.Sprintf("%s — grouped over repeats", d),
			render.Column{Header: "points", Align: render.Right, Format: render.Int()},
			render.Column{Header: "bits", Align: render.Right, Format: render.Int()},
			render.Col("metric"),
			render.Column{Header: "n", Align: render.Right, Format: render.Int()},
			render.Column{Header: "mean", Align: render.Right, Format: render.FloatFunc(fmtG)},
			render.Column{Header: "std", Align: render.Right, Format: render.FloatFunc(fmtG)},
		)
		for _, g := range groups {
			if g.Driver == d {
				t.Add(g.Points, g.Bits, g.Metric, g.N, g.Mean, g.Std)
			}
		}
		md.WriteString(t.Markdown())
		md.WriteString("\n")
		tex.WriteString(t.LaTeX())
		tex.WriteString("\n")
	}
	if err := writeFile(reportDir, "tables.md", md.String()); err != nil {
		return err
	}
	if err := writeFile(reportDir, "tables.tex", tex.String()); err != nil {
		return err
	}

	// Plots: one SVG per (driver, metric) whose points or bits axis
	// varies across groups.
	plotsDir := filepath.Join(reportDir, "plots")
	for _, dm := range driverMetricOrder(groups) {
		var sub []group
		for _, g := range groups {
			if g.Driver == dm.driver && g.Metric == dm.metric {
				sub = append(sub, g)
			}
		}
		axis, label := plotAxis(sub)
		if axis == nil {
			continue
		}
		if err := os.MkdirAll(plotsDir, 0o755); err != nil {
			return fmt.Errorf("grid: %w", err)
		}
		ys := make([]float64, len(sub))
		for i, g := range sub {
			ys[i] = g.Mean
		}
		c := plot.Chart{
			Title:  fmt.Sprintf("%s: %s", dm.driver, dm.metric),
			XLabel: label,
			YLabel: dm.metric,
			Series: []plot.Series{{Name: "mean", X: axis, Y: ys}},
		}
		svg, err := c.SVG()
		if err != nil {
			return fmt.Errorf("grid: plot %s/%s: %w", dm.driver, dm.metric, err)
		}
		name := fmt.Sprintf("%s_%s.svg", dm.driver, dm.metric)
		if err := os.WriteFile(filepath.Join(plotsDir, name), []byte(svg), 0o644); err != nil {
			return fmt.Errorf("grid: %w", err)
		}
	}
	return nil
}

// plotAxis picks the sweep axis for a (driver, metric) group set: the
// points or bits coordinate, whichever varies (points wins when both
// do). Nil means nothing varies — no plot.
func plotAxis(sub []group) ([]float64, string) {
	if len(sub) < 2 {
		return nil, ""
	}
	varies := func(get func(group) int) bool {
		for _, g := range sub[1:] {
			if get(g) != get(sub[0]) {
				return true
			}
		}
		return false
	}
	switch {
	case varies(func(g group) int { return g.Points }):
		xs := make([]float64, len(sub))
		for i, g := range sub {
			xs[i] = float64(g.Points)
		}
		return xs, "points"
	case varies(func(g group) int { return g.Bits }):
		xs := make([]float64, len(sub))
		for i, g := range sub {
			xs[i] = float64(g.Bits)
		}
		return xs, "bits"
	}
	return nil, ""
}

// writeFile writes one report artifact.
func writeFile(dir, name, content string) error {
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		return fmt.Errorf("grid: %w", err)
	}
	return nil
}

type driverMetric struct{ driver, metric string }

// driverOrder lists the distinct drivers in group order.
func driverOrder(groups []group) []string {
	var out []string
	seen := map[string]bool{}
	for _, g := range groups {
		if !seen[g.Driver] {
			seen[g.Driver] = true
			out = append(out, g.Driver)
		}
	}
	return out
}

// driverMetricOrder lists the distinct (driver, metric) pairs in group
// order.
func driverMetricOrder(groups []group) []driverMetric {
	var out []driverMetric
	seen := map[driverMetric]bool{}
	for _, g := range groups {
		dm := driverMetric{g.Driver, g.Metric}
		if !seen[dm] {
			seen[dm] = true
			out = append(out, dm)
		}
	}
	return out
}

// sortedKeys returns the sorted keys of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// meanStd returns the mean and sample standard deviation (0 for n < 2).
func meanStd(xs []float64) (mean, std float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / (n - 1))
}
