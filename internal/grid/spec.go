// Package grid runs declared experiment grids reproducibly: a JSON spec
// names the cells (driver × repeats × sweep sizes), the runner fans the
// cells across the internal/par worker pool with one dsp.Workspace per
// worker, every cell is archived as a digest-verified obs/manifest run
// directory, and the analyzer reduces the archived metrics to grouped
// CSVs, markdown/LaTeX tables and SVG plots.
//
// Two determinism guarantees carry the whole package:
//
//  1. Worker invariance. A grid's deterministic artifacts (everything
//     except manifest.json, which quarantines wall-clock fields) are
//     byte-identical for any -workers count — CI diffs a 1-worker run
//     against an 8-worker run to enforce it.
//  2. Subset stability. A cell's seed is derived by hashing its identity
//     (driver, points, bits, repeat) into the spec-seed's rng.Sequence,
//     not by its position in the expansion, so deleting cells from the
//     spec — or re-running one cell alone — reproduces the surviving
//     cells byte-for-byte.
package grid

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"sort"

	"github.com/mmtag/mmtag/internal/rng"
)

// SpecSchema identifies the grid spec format.
const SpecSchema = "mmtag-grid/1"

// Spec is the declared experiment grid (experiments.json).
type Spec struct {
	Schema string `json:"schema"`
	// Name labels the grid in reports and the run index.
	Name string `json:"name"`
	// Seed is the grid master seed; every cell derives its own seed from
	// it by identity hashing (see Expand).
	Seed uint64 `json:"seed"`
	// SampleDT, when positive, samples every cell's metrics into a
	// virtual-time series store at this interval (seconds): each cell
	// runs against its own fresh registry + sampler and archives
	// timeseries.json and alerts.jsonl (default SLO rules) alongside its
	// tables, and the run index gains alerts_fired / alerts_total
	// metrics per cell. Sampled cells execute serially — the simulation
	// instrumentation reports to one process-wide registry, so
	// concurrent cells would interleave (the artifacts stay
	// worker-count-invariant either way).
	SampleDT float64 `json:"sample_dt,omitempty"`
	// Cells declare the grid axes.
	Cells []CellSpec `json:"cells"`
}

// CellSpec is one declared block of cells: a driver crossed with sweep
// sizes and repeats.
type CellSpec struct {
	// Driver names the experiment (one of Drivers()).
	Driver string `json:"driver"`
	// Repeats runs each (points, bits) combination this many times with
	// distinct derived seeds. Zero means 1.
	Repeats int `json:"repeats,omitempty"`
	// Points are the sweep resolutions to cross (0 = driver default).
	// Empty means [0].
	Points []int `json:"points,omitempty"`
	// Bits are the Monte-Carlo sizes to cross (0 = driver default).
	// Empty means [0].
	Bits []int `json:"bits,omitempty"`
}

// Cell is one expanded grid cell with its derived seed.
type Cell struct {
	// ID is the filesystem-safe cell name (cells/<ID>/ in the run dir).
	ID string `json:"id"`
	// Driver / Points / Bits / Repeat are the cell coordinates.
	Driver string `json:"driver"`
	Points int    `json:"points"`
	Bits   int    `json:"bits"`
	Repeat int    `json:"repeat"`
	// Seed is derived from the spec seed by hashing the cell identity,
	// so any subset of the grid re-runs byte-identically.
	Seed uint64 `json:"seed"`
}

// identity is the stable string the cell seed is keyed by. It must never
// change across versions, or archived grids stop being reproducible.
func (c Cell) identity() string {
	return fmt.Sprintf("%s|p%d|b%d|r%d", c.Driver, c.Points, c.Bits, c.Repeat)
}

// Load reads and validates a grid spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("grid: %w", err)
	}
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("grid: %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("grid: %s: %w", path, err)
	}
	return &s, nil
}

// Validate checks the spec against the driver registry.
func (s *Spec) Validate() error {
	if s.Schema != SpecSchema {
		return fmt.Errorf("schema %q, want %q", s.Schema, SpecSchema)
	}
	if s.Name == "" {
		return fmt.Errorf("grid name is empty")
	}
	if len(s.Cells) == 0 {
		return fmt.Errorf("no cells declared")
	}
	if math.IsNaN(s.SampleDT) || math.IsInf(s.SampleDT, 0) || s.SampleDT < 0 {
		return fmt.Errorf("sample_dt %g: must be a finite interval >= 0", s.SampleDT)
	}
	for i, c := range s.Cells {
		if _, ok := drivers[c.Driver]; !ok {
			return fmt.Errorf("cell %d: unknown driver %q (have %v)", i, c.Driver, Drivers())
		}
		if c.Repeats < 0 {
			return fmt.Errorf("cell %d (%s): negative repeats %d", i, c.Driver, c.Repeats)
		}
		for _, p := range c.Points {
			if p < 0 {
				return fmt.Errorf("cell %d (%s): negative points %d", i, c.Driver, p)
			}
		}
		for _, b := range c.Bits {
			if b < 0 {
				return fmt.Errorf("cell %d (%s): negative bits %d", i, c.Driver, b)
			}
		}
	}
	if _, err := s.Expand(); err != nil {
		return err
	}
	return nil
}

// Expand crosses every CellSpec into concrete cells, derives the
// identity-keyed seeds, and rejects duplicate cells (two blocks
// expanding to the same coordinates would silently shadow each other in
// the run directory). The result is sorted by ID, which is the run
// order.
func (s *Spec) Expand() ([]Cell, error) {
	seq := rng.NewSequence(s.Seed)
	var cells []Cell
	seen := map[string]bool{}
	for _, cs := range s.Cells {
		repeats := cs.Repeats
		if repeats <= 0 {
			repeats = 1
		}
		points := cs.Points
		if len(points) == 0 {
			points = []int{0}
		}
		bits := cs.Bits
		if len(bits) == 0 {
			bits = []int{0}
		}
		for _, p := range points {
			for _, b := range bits {
				for r := 0; r < repeats; r++ {
					c := Cell{
						ID:     fmt.Sprintf("%s_p%d_b%d_r%d", cs.Driver, p, b, r),
						Driver: cs.Driver,
						Points: p,
						Bits:   b,
						Repeat: r,
					}
					if seen[c.ID] {
						return nil, fmt.Errorf("duplicate cell %s", c.ID)
					}
					seen[c.ID] = true
					// Key the seed by identity, not expansion position:
					// FNV-1a of the identity string indexes the master
					// sequence, so a cell's seed survives any re-slicing
					// of the spec around it.
					h := fnv.New64a()
					h.Write([]byte(c.identity()))
					c.Seed = seq.At(h.Sum64()).Uint64()
					cells = append(cells, c)
				}
			}
		}
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].ID < cells[j].ID })
	return cells, nil
}
