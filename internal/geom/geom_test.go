package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecBasics(t *testing.T) {
	v := Vec{3, 4}
	if v.Norm() != 5 {
		t.Errorf("norm: %g", v.Norm())
	}
	if got := v.Add(Vec{1, 1}); got != (Vec{4, 5}) {
		t.Errorf("add: %v", got)
	}
	if got := v.Sub(Vec{1, 1}); got != (Vec{2, 3}) {
		t.Errorf("sub: %v", got)
	}
	if got := v.Scale(2); got != (Vec{6, 8}) {
		t.Errorf("scale: %v", got)
	}
	if got := v.Dot(Vec{-4, 3}); got != 0 {
		t.Errorf("dot orthogonal: %g", got)
	}
	if got := (Vec{1, 0}).Cross(Vec{0, 1}); got != 1 {
		t.Errorf("cross: %g", got)
	}
}

func TestRotationPreservesNorm(t *testing.T) {
	f := func(x, y, theta float64) bool {
		x = math.Mod(x, 1e6)
		y = math.Mod(y, 1e6)
		theta = math.Mod(theta, 100)
		v := Vec{x, y}
		return approx(v.Rotate(theta).Norm(), v.Norm(), 1e-6*(1+v.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRotateComposition(t *testing.T) {
	v := Vec{1, 2}
	got := v.Rotate(0.3).Rotate(0.7)
	want := v.Rotate(1.0)
	if !approx(got.X, want.X, 1e-12) || !approx(got.Y, want.Y, 1e-12) {
		t.Errorf("rotation composition: %v vs %v", got, want)
	}
}

func TestFromPolarRoundTrip(t *testing.T) {
	f := func(r, theta float64) bool {
		r = 0.1 + math.Mod(math.Abs(r), 1e3)
		theta = math.Mod(theta, math.Pi) // keep away from the ±π seam
		v := FromPolar(r, theta)
		return approx(v.Norm(), r, 1e-9*r) && approx(WrapAngle(v.Angle()-theta), 0, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrapAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-3 * math.Pi / 2, math.Pi / 2},
	}
	for _, c := range cases {
		if got := WrapAngle(c.in); !approx(got, c.want, 1e-12) {
			t.Errorf("WrapAngle(%g) = %g, want %g", c.in, got, c.want)
		}
	}
	f := func(a float64) bool {
		a = math.Mod(a, 1e4)
		w := WrapAngle(a)
		return w > -math.Pi-1e-12 && w <= math.Pi+1e-12 &&
			approx(math.Sin(w), math.Sin(a), 1e-6) && approx(math.Cos(w), math.Cos(a), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPoseBearing(t *testing.T) {
	// A reader at origin facing +X sees a point on +X at bearing 0 and a
	// point on +Y at +90°.
	o := Pose{Pos: Vec{0, 0}, Heading: 0}
	if b := o.BearingTo(Vec{5, 0}); !approx(b, 0, 1e-12) {
		t.Errorf("boresight bearing: %g", b)
	}
	if b := o.BearingTo(Vec{0, 5}); !approx(b, math.Pi/2, 1e-12) {
		t.Errorf("left bearing: %g", b)
	}
	// Rotating the pose rotates bearings the other way.
	o.Heading = math.Pi / 4
	if b := o.BearingTo(Vec{5, 0}); !approx(b, -math.Pi/4, 1e-12) {
		t.Errorf("rotated bearing: %g", b)
	}
}

func TestMirror(t *testing.T) {
	wall := Segment{A: Vec{0, 1}, B: Vec{10, 1}} // horizontal wall at y=1
	img := wall.Mirror(Vec{3, 0})
	if !approx(img.X, 3, 1e-12) || !approx(img.Y, 2, 1e-12) {
		t.Errorf("mirror image: %v", img)
	}
	// Mirroring twice is the identity.
	f := func(x, y float64) bool {
		x = math.Mod(x, 100)
		y = math.Mod(y, 100)
		p := Vec{x, y}
		q := wall.Mirror(wall.Mirror(p))
		return approx(p.X, q.X, 1e-9) && approx(p.Y, q.Y, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntersect(t *testing.T) {
	s := Segment{A: Vec{0, 0}, B: Vec{0, 10}}
	pt, ok := s.Intersect(Vec{-5, 5}, Vec{5, 5})
	if !ok || !approx(pt.X, 0, 1e-12) || !approx(pt.Y, 5, 1e-12) {
		t.Errorf("intersect: %v %v", pt, ok)
	}
	if _, ok := s.Intersect(Vec{-5, 11}, Vec{5, 11}); ok {
		t.Error("should miss above the segment")
	}
	if _, ok := s.Intersect(Vec{1, 0}, Vec{1, 10}); ok {
		t.Error("parallel lines should not intersect")
	}
}

func TestReflectionPointEqualAngles(t *testing.T) {
	// Specular reflection: angle of incidence equals angle of reflection.
	wall := Segment{A: Vec{-100, 2}, B: Vec{100, 2}}
	src := Vec{-3, 0}
	dst := Vec{5, 0}
	pt, ok := wall.ReflectionPoint(src, dst)
	if !ok {
		t.Fatal("no reflection point")
	}
	if !approx(pt.Y, 2, 1e-9) {
		t.Fatalf("reflection point off the wall: %v", pt)
	}
	inc := pt.Sub(src).Angle()
	out := dst.Sub(pt).Angle()
	// Angles measured from the wall normal must be equal and opposite.
	if !approx(inc, -out+0, 1e-9) && !approx(WrapAngle(inc+out), 0, 1e-9) {
		t.Errorf("not specular: inc %g out %g", inc, out)
	}
	// Path length via the image equals direct distance to the image.
	l, _ := wall.PathLengthVia(src, dst)
	img := wall.Mirror(src)
	if !approx(l, img.Dist(dst), 1e-9) {
		t.Errorf("image path length mismatch: %g vs %g", l, img.Dist(dst))
	}
}

func TestBlocks(t *testing.T) {
	wall := Segment{A: Vec{2, -1}, B: Vec{2, 1}}
	if !wall.Blocks(Vec{0, 0}, Vec{4, 0}) {
		t.Error("wall should block the straight path")
	}
	if wall.Blocks(Vec{0, 0}, Vec{1, 0}) {
		t.Error("short path should not be blocked")
	}
	if wall.Blocks(Vec{0, 5}, Vec{4, 5}) {
		t.Error("path above the wall should not be blocked")
	}
}

func TestUnitZeroVector(t *testing.T) {
	if got := (Vec{}).Unit(); got != (Vec{}) {
		t.Errorf("unit of zero vector: %v", got)
	}
	v := Vec{3, -7}.Unit()
	if !approx(v.Norm(), 1, 1e-12) {
		t.Errorf("unit norm: %g", v.Norm())
	}
}

func TestPoseForwardAndSegmentLength(t *testing.T) {
	p := Pose{Heading: math.Pi / 2}
	f := p.Forward()
	if math.Abs(f.X) > 1e-12 || math.Abs(f.Y-1) > 1e-12 {
		t.Fatalf("Forward at π/2 = %+v", f)
	}
	if d := AngleDiff(0.1, -0.1); math.Abs(d-0.2) > 1e-12 {
		t.Fatalf("AngleDiff = %g", d)
	}
	s := Segment{A: Vec{0, 0}, B: Vec{3, 4}}
	if l := s.Length(); math.Abs(l-5) > 1e-12 {
		t.Fatalf("Length = %g", l)
	}
}
