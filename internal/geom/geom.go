// Package geom provides the small amount of 2-D planar geometry the
// simulator needs: vectors, points, headings, angle arithmetic, and the
// image-method reflection used to construct non-line-of-sight rays.
//
// The scene lives in the horizontal plane (the plane the paper's reader
// steers its beam in); angles follow the antenna-array convention where
// 0 rad is array boresight and positive angles rotate counter-clockwise.
package geom

import "math"

// Vec is a 2-D vector (also used as a point).
type Vec struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y} }

// Sub returns v − w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s} }

// Dot returns the dot product v·w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the scalar (z-component) cross product v×w.
func (v Vec) Cross(w Vec) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vec) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the distance between points v and w.
func (v Vec) Dist(w Vec) float64 { return v.Sub(w).Norm() }

// Unit returns v normalized to length 1. The zero vector is returned
// unchanged.
func (v Vec) Unit() Vec {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Angle returns the angle of v measured from the +X axis, in (−π, π].
func (v Vec) Angle() float64 { return math.Atan2(v.Y, v.X) }

// Rotate returns v rotated counter-clockwise by theta radians.
func (v Vec) Rotate(theta float64) Vec {
	c, s := math.Cos(theta), math.Sin(theta)
	return Vec{v.X*c - v.Y*s, v.X*s + v.Y*c}
}

// FromPolar returns the vector with the given length and angle from +X.
func FromPolar(r, theta float64) Vec {
	return Vec{r * math.Cos(theta), r * math.Sin(theta)}
}

// WrapAngle reduces an angle to (−π, π].
func WrapAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a > math.Pi {
		a -= 2 * math.Pi
	} else if a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// AngleDiff returns the signed smallest rotation taking angle b to angle a,
// in (−π, π].
func AngleDiff(a, b float64) float64 { return WrapAngle(a - b) }

// Pose is a position plus an orientation (the boresight heading of an
// antenna aperture, radians from +X).
type Pose struct {
	Pos     Vec
	Heading float64
}

// BearingTo returns the angle of arrival/departure of point p as seen in
// this pose's local frame: 0 means p lies on boresight, positive means p
// is counter-clockwise of boresight. This is the θ of paper Eq. 1.
func (o Pose) BearingTo(p Vec) float64 {
	return WrapAngle(p.Sub(o.Pos).Angle() - o.Heading)
}

// Forward returns the unit vector along the pose's boresight.
func (o Pose) Forward() Vec { return FromPolar(1, o.Heading) }

// Segment is a wall or reflector between two endpoints.
type Segment struct {
	A, B Vec
}

// Length returns the segment length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Mirror returns the reflection of point p across the infinite line
// through the segment (the image-source location used for NLOS rays).
func (s Segment) Mirror(p Vec) Vec {
	d := s.B.Sub(s.A).Unit()
	ap := p.Sub(s.A)
	proj := d.Scale(ap.Dot(d))
	perp := ap.Sub(proj)
	return p.Sub(perp.Scale(2))
}

// Intersect returns the point where the segment from p to q crosses this
// segment, if any.
func (s Segment) Intersect(p, q Vec) (Vec, bool) {
	r := q.Sub(p)
	d := s.B.Sub(s.A)
	denom := r.Cross(d)
	if denom == 0 {
		return Vec{}, false // parallel
	}
	t := s.A.Sub(p).Cross(d) / denom
	u := s.A.Sub(p).Cross(r) / denom
	const eps = 1e-12
	if t < -eps || t > 1+eps || u < -eps || u > 1+eps {
		return Vec{}, false
	}
	return p.Add(r.Scale(t)), true
}

// ReflectionPoint returns the point on the reflector where a single-bounce
// ray from src to dst hits, and whether such a geometric bounce exists
// (i.e. the line from the image of src to dst crosses the segment).
func (s Segment) ReflectionPoint(src, dst Vec) (Vec, bool) {
	img := s.Mirror(src)
	return s.Intersect(img, dst)
}

// PathLengthVia returns the total length of the single-bounce path
// src → reflection point → dst, and whether the bounce exists.
func (s Segment) PathLengthVia(src, dst Vec) (float64, bool) {
	pt, ok := s.ReflectionPoint(src, dst)
	if !ok {
		return 0, false
	}
	return src.Dist(pt) + pt.Dist(dst), true
}

// Blocks reports whether this segment blocks the straight path from p to
// q (used for LOS blockage checks). Touching an endpoint counts as
// blocking.
func (s Segment) Blocks(p, q Vec) bool {
	_, ok := s.Intersect(p, q)
	return ok
}
