// Package par is the repo-wide deterministic fan-out engine: a
// stdlib-only worker pool that runs an indexed job set across a
// configurable number of goroutines while guaranteeing that the results
// are byte-identical for any worker count.
//
// The determinism contract has three legs:
//
//  1. Work is identified by index, never by arrival order. Each index
//     writes only its own output slot, so scheduling cannot reorder
//     results.
//  2. Randomness is derived *outside* the pool: callers either
//     pre-split their rng.Source sequentially (preserving the exact
//     draw order of the old single-goroutine loops) or key shard
//     streams by index through rng.Sequence, which is order-independent
//     by construction. Worker goroutines never share a generator.
//  3. Failure selection is positional. When several shards error or
//     panic, the one with the lowest index wins — the same one a
//     sequential loop would have hit first — so even the failure path
//     is worker-count invariant.
//
// workers == 1 bypasses the pool entirely and runs the loop on the
// caller's goroutine: that inline loop is the reference stream every
// other worker count must reproduce.
//
// The pool reports into the internal/obs registry when one is enabled
// (shard timing, queue depth, item/run counters) and costs one atomic
// load per run when observability is off.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mmtag/mmtag/internal/obs"
)

// Metric families exposed by the pool.
const (
	// MetricItems counts items executed across all runs.
	MetricItems = "par_items_total"
	// MetricRuns counts ForEach/Do invocations that used the pool.
	MetricRuns = "par_runs_total"
	// MetricShardSeconds is the per-item execution time histogram.
	MetricShardSeconds = "par_shard_seconds"
	// MetricQueueDepth gauges items not yet claimed by a worker.
	MetricQueueDepth = "par_queue_depth"
	// MetricWorkers gauges the worker count of the most recent run.
	MetricWorkers = "par_workers"
)

func init() {
	obs.RegisterBuckets(MetricShardSeconds,
		1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10)
}

// defaultWorkers holds the process-wide worker count used by ForEach,
// ForEachErr and Map. Zero means "not set yet"; Workers resolves that to
// runtime.NumCPU().
var defaultWorkers atomic.Int64

// Workers returns the current default worker count. Until SetWorkers is
// called it is runtime.NumCPU().
func Workers() int {
	if w := defaultWorkers.Load(); w > 0 {
		return int(w)
	}
	return runtime.NumCPU()
}

// SetWorkers sets the default worker count and returns the previous
// value. n <= 0 resets the default back to runtime.NumCPU(). The -workers
// flag of cmd/mmtag and the examples lands here.
func SetWorkers(n int) int {
	prev := Workers()
	if n <= 0 {
		defaultWorkers.Store(0)
	} else {
		defaultWorkers.Store(int64(n))
	}
	return prev
}

// shardFailure records a panic raised inside a shard.
type shardFailure struct {
	index int
	value any
}

// Error satisfies error so a recovered panic can ride the same channel
// as ForEachErr errors internally; it is re-panicked, not returned.
func (f *shardFailure) Error() string {
	return fmt.Sprintf("par: shard %d panicked: %v", f.index, f.value)
}

// ForEach runs fn(i) for every i in [0, n) across Workers() goroutines
// and returns when all calls have finished. fn must confine its writes
// to per-index state. Panics inside fn propagate to the caller; when
// several shards panic, the lowest index is re-raised.
func ForEach(n int, fn func(i int)) { Do(Workers(), n, fn) }

// Do is ForEach with an explicit worker count, for call sites (tests,
// benchmarks) that must pin parallelism regardless of the global
// default.
func Do(workers, n int, fn func(i int)) {
	err := DoErr(workers, n, func(i int) error {
		fn(i)
		return nil
	})
	if err != nil {
		// fn cannot return an error, so the only possible failure is a
		// propagated shard panic.
		panic(err)
	}
}

// ForEachErr is ForEach for fallible shards: it runs fn(i) for every i
// in [0, n) and returns the error of the lowest failing index, matching
// what a sequential loop would have returned first. After any shard
// fails, no new shards are started (in-flight ones finish).
func ForEachErr(n int, fn func(i int) error) error { return DoErr(Workers(), n, fn) }

// DoErr is ForEachErr with an explicit worker count.
//
// Determinism of the failure path: indexes are claimed in increasing
// order, and a claimed shard always runs to completion. Therefore the
// lowest failing index is always executed and recorded before the stop
// flag can starve it, and "lowest recorded failure" is exactly "lowest
// failing index" — independent of worker count and scheduling.
func DoErr(workers, n int, fn func(i int) error) error {
	return DoErrWith(workers, n, func() struct{} { return struct{}{} },
		func(_ struct{}, i int) error { return fn(i) })
}

// ForEachWith is ForEach with per-worker state: newR runs once on each
// worker goroutine (once total on the workers == 1 inline path) and its
// result is handed to every fn call that worker executes. This is how
// sweeps give each shard its own dsp.Workspace — reused across the items
// a worker processes, never shared between goroutines. State must not
// leak results between items in any order-dependent way; determinism
// requires fn(r, i) to compute the same answer regardless of which
// worker runs it after how many prior items (scratch buffers qualify,
// accumulators do not).
func ForEachWith[R any](n int, newR func() R, fn func(r R, i int)) {
	DoWith(Workers(), n, newR, fn)
}

// DoWith is ForEachWith with an explicit worker count.
func DoWith[R any](workers, n int, newR func() R, fn func(r R, i int)) {
	err := DoErrWith(workers, n, newR, func(r R, i int) error {
		fn(r, i)
		return nil
	})
	if err != nil {
		// fn cannot return an error, so the only possible failure is a
		// propagated shard panic.
		panic(err)
	}
}

// ForEachErrWith is ForEachErr with per-worker state (see ForEachWith).
func ForEachErrWith[R any](n int, newR func() R, fn func(r R, i int) error) error {
	return DoErrWith(Workers(), n, newR, fn)
}

// DoErrWith is the generic core of the pool: DoErr with per-worker state
// constructed by newR (see ForEachWith for the state contract).
func DoErrWith[R any](workers, n int, newR func() R, fn func(r R, i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Reference stream: the plain loop every worker count must
		// reproduce. Runs on the caller's goroutine, aborts on first
		// error like the pre-pool code did.
		return forEachInline(n, newR, fn)
	}

	rec := obs.Default()
	enabled := rec.Enabled()
	if enabled {
		rec.Add(MetricRuns, 1)
		rec.Set(MetricWorkers, float64(workers))
		rec.Set(MetricQueueDepth, float64(n))
	}

	var (
		next    atomic.Int64 // next index to claim
		stopped atomic.Bool  // a shard failed; stop claiming
		mu      sync.Mutex
		failIdx = n // lowest failing index so far
		failErr error
		wg      sync.WaitGroup
	)
	record := func(i int, err error) {
		stopped.Store(true)
		mu.Lock()
		if i < failIdx {
			failIdx, failErr = i, err
		}
		mu.Unlock()
	}
	runShard := func(r R, i int) {
		defer func() {
			if v := recover(); v != nil {
				record(i, &shardFailure{index: i, value: v})
			}
		}()
		if enabled {
			start := time.Now()
			defer func() {
				rec.Observe(MetricShardSeconds, time.Since(start).Seconds())
				rec.Add(MetricItems, 1)
			}()
		}
		if err := fn(r, i); err != nil {
			record(i, err)
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			r := newR()
			for {
				if stopped.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if enabled {
					rec.Set(MetricQueueDepth, float64(n-i-1))
				}
				runShard(r, i)
			}
		}()
	}
	wg.Wait()
	if enabled {
		rec.Set(MetricQueueDepth, 0)
	}
	if failErr != nil {
		if f, ok := failErr.(*shardFailure); ok {
			panic(f.value)
		}
		return failErr
	}
	return nil
}

// forEachInline is the workers == 1 path: a plain sequential loop on the
// caller's goroutine with a single per-worker state instance.
func forEachInline[R any](n int, newR func() R, fn func(r R, i int) error) error {
	rec := obs.Default()
	enabled := rec.Enabled()
	if enabled {
		rec.Add(MetricRuns, 1)
		rec.Set(MetricWorkers, 1)
	}
	r := newR()
	for i := 0; i < n; i++ {
		var start time.Time
		if enabled {
			start = time.Now()
		}
		if err := fn(r, i); err != nil {
			return err
		}
		if enabled {
			rec.Observe(MetricShardSeconds, time.Since(start).Seconds())
			rec.Add(MetricItems, 1)
		}
	}
	return nil
}

// Map runs fn(i) for every i in [0, n) across Workers() goroutines and
// returns the results in index order.
func Map[T any](n int, fn func(i int) T) []T { return MapN[T](Workers(), n, fn) }

// MapN is Map with an explicit worker count.
func MapN[T any](workers, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	Do(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr runs fn(i) for every i in [0, n), collecting results in index
// order; on failure it returns the lowest failing index's error and no
// results.
func MapErr[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return MapErrN[T](Workers(), n, fn)
}

// MapErrN is MapErr with an explicit worker count.
func MapErrN[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	err := DoErr(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
