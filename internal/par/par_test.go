package par

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/rng"
)

// shardWork simulates a Monte-Carlo shard: a few hundred draws from an
// index-keyed sub-stream folded into one value. Any scheduling
// dependence would show up as a differing fold.
func shardWork(seq rng.Sequence, i int) float64 {
	src := seq.At(uint64(i))
	var acc float64
	for k := 0; k < 257; k++ {
		acc += src.Norm()
	}
	return acc
}

func TestDoWorkerCountInvariance(t *testing.T) {
	const n = 41
	seq := rng.NewSequence(7)
	ref := make([]float64, n)
	Do(1, n, func(i int) { ref[i] = shardWork(seq, i) })
	// Worker counts the issue calls out: 1, 2, NumCPU, and more workers
	// than items.
	for _, w := range []int{1, 2, runtime.NumCPU(), n + 9} {
		got := make([]float64, n)
		Do(w, n, func(i int) { got[i] = shardWork(seq, i) })
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: shard %d = %v, want %v (reference stream)", w, i, got[i], ref[i])
			}
		}
	}
}

func TestMapNMatchesSequential(t *testing.T) {
	const n = 17
	want := MapN(1, n, func(i int) int { return i * i })
	got := MapN(5, n, func(i int) int { return i * i })
	if len(got) != n {
		t.Fatalf("len %d", len(got))
	}
	for i := range got {
		if got[i] != want[i] || got[i] != i*i {
			t.Fatalf("slot %d: got %d want %d", i, got[i], i*i)
		}
	}
}

func TestZeroAndNegativeItems(t *testing.T) {
	calls := 0
	Do(4, 0, func(int) { calls++ })
	Do(4, -3, func(int) { calls++ })
	if err := DoErr(4, 0, func(int) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if out := MapN(4, 0, func(i int) int { calls++; return i }); out != nil {
		t.Fatalf("MapN on zero items returned %v", out)
	}
	if calls != 0 {
		t.Fatalf("fn ran %d times on empty input", calls)
	}
}

func TestPanicPropagation(t *testing.T) {
	for _, w := range []int{1, 4} {
		func() {
			defer func() {
				v := recover()
				if v == nil {
					t.Fatalf("workers=%d: panic did not propagate", w)
				}
				if s, ok := v.(string); !ok || s != "boom-3" {
					t.Fatalf("workers=%d: recovered %v, want boom-3", w, v)
				}
			}()
			Do(w, 8, func(i int) {
				if i == 3 {
					panic(fmt.Sprintf("boom-%d", i))
				}
			})
		}()
	}
}

func TestLowestPanicIndexWins(t *testing.T) {
	// Indexes 2 and 9 both panic; the pool must re-raise index 2's value
	// for every worker count, like the sequential loop would.
	for _, w := range []int{1, 2, 6} {
		func() {
			defer func() {
				if v := recover(); v != "boom-2" {
					t.Fatalf("workers=%d: recovered %v, want boom-2", w, v)
				}
			}()
			Do(w, 12, func(i int) {
				if i == 2 || i == 9 {
					panic(fmt.Sprintf("boom-%d", i))
				}
			})
		}()
	}
}

func TestErrLowestIndexWins(t *testing.T) {
	errA := errors.New("fail-5")
	errB := errors.New("fail-11")
	for _, w := range []int{1, 2, 4, 16} {
		err := DoErr(w, 20, func(i int) error {
			switch i {
			case 5:
				return errA
			case 11:
				return errB
			default:
				return nil
			}
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: got %v, want lowest-index error %v", w, err, errA)
		}
	}
}

func TestErrStopsSchedulingNewShards(t *testing.T) {
	var ran atomic.Int64
	err := DoErr(2, 10_000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("early")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got == 10_000 {
		t.Fatal("all shards ran despite an index-0 failure")
	}
}

func TestMapErrDiscardsResultsOnFailure(t *testing.T) {
	out, err := MapErrN(3, 9, func(i int) (int, error) {
		if i == 4 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("got (%v, %v), want (nil, error)", out, err)
	}
}

func TestSetWorkers(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0)
	if Workers() != runtime.NumCPU() {
		t.Fatalf("Workers() = %d after reset, want NumCPU %d", Workers(), runtime.NumCPU())
	}
}

// TestDoWithWorkerState checks the With-variants' per-worker state
// contract: newR runs at most once per worker goroutine (exactly once on
// the inline path), every shard receives its worker's value, and results
// are identical across worker counts when the state is pure scratch.
func TestDoWithWorkerState(t *testing.T) {
	type scratch struct{ buf []float64 }
	for _, w := range []int{1, 2, 4} {
		var news atomic.Int64
		const n = 23
		out := make([]float64, n)
		seq := rng.NewSequence(7)
		DoWith(w, n, func() *scratch {
			news.Add(1)
			return &scratch{buf: make([]float64, 257)}
		}, func(r *scratch, i int) {
			if len(r.buf) != 257 {
				t.Errorf("worker state missing on shard %d", i)
			}
			out[i] = shardWork(seq, i)
		})
		if got := news.Load(); got < 1 || got > int64(w) {
			t.Fatalf("workers=%d: newR ran %d times, want 1..%d", w, got, w)
		}
		ref := make([]float64, n)
		Do(1, n, func(i int) { ref[i] = shardWork(seq, i) })
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("workers=%d: shard %d diverged with worker state", w, i)
			}
		}
	}
}

// TestDoErrWithPropagatesLowestError: the With pool keeps DoErr's
// lowest-index error semantics.
func TestDoErrWithPropagatesLowestError(t *testing.T) {
	errA := errors.New("fail-2")
	errB := errors.New("fail-7")
	for _, w := range []int{1, 4} {
		err := DoErrWith(w, 10, func() int { return 0 }, func(_ int, i int) error {
			switch i {
			case 2:
				return errA
			case 7:
				return errB
			default:
				return nil
			}
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: got %v, want %v", w, err, errA)
		}
	}
}

// TestForEachWithUsesDefaultWorkers: the package-level With helpers
// resolve the process-wide worker count.
func TestForEachWithUsesDefaultWorkers(t *testing.T) {
	prev := SetWorkers(2)
	defer SetWorkers(prev)
	var ran atomic.Int64
	ForEachWith(9, func() struct{} { return struct{}{} }, func(_ struct{}, i int) {
		ran.Add(1)
	})
	if ran.Load() != 9 {
		t.Fatalf("ran %d shards, want 9", ran.Load())
	}
	if err := ForEachErrWith(9, func() struct{} { return struct{}{} }, func(_ struct{}, i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 18 {
		t.Fatalf("ran %d shards total, want 18", ran.Load())
	}
}

// TestDoWithPanicPropagation: panics inside a With shard re-raise like
// the plain pool's.
func TestDoWithPanicPropagation(t *testing.T) {
	for _, w := range []int{1, 4} {
		func() {
			defer func() {
				if v := recover(); v != "with-boom-3" {
					t.Fatalf("workers=%d: recovered %v, want with-boom-3", w, v)
				}
			}()
			DoWith(w, 8, func() int { return 0 }, func(_ int, i int) {
				if i == 3 {
					panic("with-boom-3")
				}
			})
		}()
	}
}

// TestRaceStressWithObs hammers the pool with the observability registry
// enabled so `go test -race` exercises the shared registry, the queue
// gauge and the shard histogram from many goroutines at once.
func TestRaceStressWithObs(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	seq := rng.NewSequence(99)
	for round := 0; round < 8; round++ {
		const n = 64
		out := make([]float64, n)
		Do(8, n, func(i int) {
			obs.Inc("par_test_shards_total", obs.L("round", fmt.Sprint(round%2)))
			out[i] = shardWork(seq, i)
		})
		ref := make([]float64, n)
		Do(1, n, func(i int) { ref[i] = shardWork(seq, i) })
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("round %d shard %d diverged under load", round, i)
			}
		}
	}
}

func BenchmarkDoOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Do(4, 16, func(int) {})
	}
}

// TestPackageLevelHelpers covers the Workers()-resolving convenience
// wrappers: ForEach/ForEachErr/Map/MapErr must match their explicit
// -count siblings.
func TestPackageLevelHelpers(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	out := make([]int, 11)
	ForEach(11, func(i int) { out[i] = i * 2 })
	for i := range out {
		if out[i] != i*2 {
			t.Fatalf("ForEach slot %d = %d", i, out[i])
		}
	}
	if err := ForEachErr(5, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("helper-3")
	if err := ForEachErr(5, func(i int) error {
		if i == 3 {
			return wantErr
		}
		return nil
	}); !errors.Is(err, wantErr) {
		t.Fatalf("ForEachErr returned %v", err)
	}
	m := Map(6, func(i int) int { return i * i })
	for i := range m {
		if m[i] != i*i {
			t.Fatalf("Map slot %d = %d", i, m[i])
		}
	}
	me, err := MapErr(6, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := range me {
		if me[i] != i+1 {
			t.Fatalf("MapErr slot %d = %d", i, me[i])
		}
	}
	if _, err := MapErr(4, func(i int) (int, error) { return 0, wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("MapErr error path returned %v", err)
	}
	// shardFailure.Error renders the panic message the pool re-raises.
	f := &shardFailure{index: 2, value: "boom"}
	if got := f.Error(); !strings.Contains(got, "shard 2") || !strings.Contains(got, "boom") {
		t.Fatalf("shardFailure.Error() = %q", got)
	}
}
